//! Golden proofs for the cycle-accounting profiler:
//!
//! 1. **Observation does not perturb** — running any pipeline under a
//!    live `CycleProfiler` yields byte-identical reports (and departure
//!    schedules) to the unprofiled run.
//! 2. **Off means free** — with the profiler disabled the simulations
//!    perform exactly as many heap allocations as they ever did: the
//!    instrumentation is a branch on `enabled()` and nothing else.
//! 3. **The charges add up** — profiler totals reconcile exactly with
//!    the reports' own busy-time counters, and folded stacks render
//!    deterministically.

use hni_atm::VcId;
use hni_core::e2esim::{run_e2e, run_e2e_profiled};
use hni_core::rxsim::{run_rx, run_rx_profiled, run_rx_traced, RxConfig, RxWorkload};
use hni_core::txsim::{greedy_workload, run_tx, run_tx_profiled, run_tx_traced, TxConfig};
use hni_sim::Duration;
use hni_sonet::LineRate;
use hni_telemetry::{Activity, Component, CycleProfiler, NullProfiler};

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    let n = ALLOCS.load(Ordering::Relaxed) - before;
    (out, n)
}

fn tx_cfg() -> TxConfig {
    TxConfig::paper(LineRate::Oc12)
}

fn rx_parts() -> (RxConfig, RxWorkload) {
    let cfg = RxConfig::paper(LineRate::Oc12);
    let wl = RxWorkload::uniform(LineRate::Oc12, hni_aal::AalType::Aal5, 4, 5, 9180, 1.0);
    (cfg, wl)
}

#[test]
fn profiled_tx_run_is_byte_identical() {
    let cfg = tx_cfg();
    let wl = greedy_workload(12, 9180, VcId::new(0, 32));
    let plain = run_tx(&cfg, &wl);
    let (dep_plain_report, dep_plain) = run_tx_traced(&cfg, &wl);
    let mut prof = CycleProfiler::new();
    let (profiled, dep_prof) = run_tx_profiled(&cfg, &wl, &mut prof);
    assert_eq!(format!("{plain:?}"), format!("{profiled:?}"));
    assert_eq!(format!("{dep_plain_report:?}"), format!("{profiled:?}"));
    assert_eq!(format!("{dep_plain:?}"), format!("{dep_prof:?}"));
}

#[test]
fn profiled_rx_run_is_byte_identical() {
    let (cfg, wl) = rx_parts();
    let plain = run_rx(&cfg, &wl);
    let (traced_report, done_plain) = run_rx_traced(&cfg, &wl);
    let mut prof = CycleProfiler::new();
    let (profiled, done_prof) = run_rx_profiled(&cfg, &wl, &mut prof);
    assert_eq!(format!("{plain:?}"), format!("{profiled:?}"));
    assert_eq!(format!("{traced_report:?}"), format!("{profiled:?}"));
    assert_eq!(done_plain, done_prof);
}

#[test]
fn profiled_e2e_run_is_byte_identical() {
    let txc = tx_cfg();
    let rxc = RxConfig::paper(LineRate::Oc12);
    let wl = greedy_workload(8, 9180, VcId::new(0, 32));
    let prop = Duration::from_us(5);
    let plain = run_e2e(&txc, &rxc, &wl, prop);
    let mut prof = CycleProfiler::new();
    let profiled = run_e2e_profiled(&txc, &rxc, &wl, prop, &mut prof);
    assert_eq!(format!("{plain:?}"), format!("{profiled:?}"));
}

#[test]
fn disabled_profiler_adds_zero_allocations() {
    let cfg = tx_cfg();
    let wl = greedy_workload(12, 9180, VcId::new(0, 32));
    // Warm up once (lazy statics, first-touch growth). Baseline against
    // run_tx_traced, which collects the same departures vector the
    // profiled entry returns — identical work minus the profiler.
    let _ = run_tx_traced(&cfg, &wl);
    let (_, base) = allocs_during(|| run_tx_traced(&cfg, &wl));
    // The NullProfiler path must allocate *exactly* what the plain run
    // does — the gate compiles to a constant-false branch.
    let (_, gated) = allocs_during(|| {
        let mut off = NullProfiler;
        run_tx_profiled(&cfg, &wl, &mut off)
    });
    assert_eq!(base, gated, "NullProfiler run allocated {gated} vs {base}");
    // And the run itself is allocation-deterministic (the comparison
    // above is meaningful).
    let (_, again) = allocs_during(|| run_tx_traced(&cfg, &wl));
    assert_eq!(base, again);

    let (rcfg, rwl) = rx_parts();
    let _ = run_rx_traced(&rcfg, &rwl);
    let (_, rbase) = allocs_during(|| run_rx_traced(&rcfg, &rwl));
    let (_, rgated) = allocs_during(|| {
        let mut off = NullProfiler;
        run_rx_profiled(&rcfg, &rwl, &mut off)
    });
    assert_eq!(rbase, rgated);
}

#[test]
fn tx_profile_reconciles_with_report_counters() {
    let cfg = tx_cfg();
    let wl = greedy_workload(12, 9180, VcId::new(0, 32));
    let mut prof = CycleProfiler::new();
    let (r, _) = run_tx_profiled(&cfg, &wl, &mut prof);
    let p = prof.snapshot(r.finished_at);
    // Engine busy: the profiler charged exactly the report's counter.
    assert_eq!(p.total(Component::TxEngine, Activity::Busy), r.engine_busy);
    // Bus: transfer + arbitration partition the bus busy time exactly.
    let bus = p.total(Component::TxBus, Activity::Transfer)
        + p.total(Component::TxBus, Activity::Arbitration);
    assert_eq!(bus, r.bus_busy);
    // Link: one cell slot of transfer per cell put on the line.
    assert_eq!(
        p.total(Component::TxLink, Activity::Transfer),
        cfg.rate.cell_slot_time() * r.cells_sent
    );
    // Activity split is exhaustive: active + stalls + idle cover every
    // charged pair (nothing charged outside the enum).
    assert!(p.active_time(Component::TxEngine) >= r.engine_busy);
}

#[test]
fn rx_profile_reconciles_with_report_counters() {
    let (cfg, wl) = rx_parts();
    let mut prof = CycleProfiler::new();
    let (r, _) = run_rx_profiled(&cfg, &wl, &mut prof);
    let p = prof.snapshot(r.run_end);
    // Link transfer: one slot per offered cell.
    assert_eq!(
        p.total(Component::RxLink, Activity::Transfer),
        cfg.rate.cell_slot_time() * r.cells_offered
    );
    // Pool gauge agrees with the report's peak.
    assert_eq!(p.gauge(Component::RxPool).peak, r.pool_peak);
    // Fifo gauge saw the same peak the report counted.
    assert_eq!(p.gauge(Component::RxFifo).peak, r.fifo_peak);
}

#[test]
fn folded_stacks_render_deterministically() {
    let render = || {
        let cfg = tx_cfg();
        let wl = greedy_workload(8, 9180, VcId::new(0, 32));
        let mut prof = CycleProfiler::new();
        let (r, _) = run_tx_profiled(&cfg, &wl, &mut prof);
        prof.snapshot(r.finished_at).folded_stacks()
    };
    let a = render();
    let b = render();
    assert_eq!(a, b);
    assert!(a.lines().any(|l| l.starts_with("tx.engine;busy ")), "{a}");
    assert!(a.lines().any(|l| l.starts_with("tx.link;transfer ")), "{a}");
}
