//! Golden guarantee of the telemetry layer: turning tracing on must not
//! change a single simulated outcome. Every instrumented pipeline is run
//! twice — once through its plain API (NullTracer inside) and once with
//! a recording tracer — and the reports are compared byte for byte via
//! their `Debug` rendering (which includes every counter, time and
//! statistic they carry).

use hni_aal::AalType;
use hni_atm::VcId;
use hni_core::e2esim::{run_e2e, run_e2e_instrumented};
use hni_core::rxsim::{run_rx_instrumented, run_rx_traced, RxConfig, RxWorkload};
use hni_core::txsim::{greedy_workload, run_tx_instrumented, run_tx_traced, TxConfig};
use hni_host::{DriverCosts, HostCpu, InterruptMode, RxHostModel};
use hni_sim::{Duration, Time};
use hni_sonet::LineRate;
use hni_telemetry::VecTracer;

#[test]
fn tx_report_identical_with_tracing_on() {
    let cfg = TxConfig::paper(LineRate::Oc12);
    let wl = greedy_workload(15, 9180, VcId::new(0, 32));
    let (plain_report, plain_departures) = run_tx_traced(&cfg, &wl);
    let mut tracer = VecTracer::new();
    let (traced_report, traced_departures) = run_tx_instrumented(&cfg, &wl, &mut tracer);
    assert!(!tracer.is_empty(), "instrumented run must record events");
    assert_eq!(format!("{plain_report:?}"), format!("{traced_report:?}"));
    assert_eq!(
        format!("{plain_departures:?}"),
        format!("{traced_departures:?}")
    );
}

#[test]
fn rx_report_identical_with_tracing_on() {
    let cfg = RxConfig::paper(LineRate::Oc12);
    let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 6, 9180, 1.0);
    let (plain_report, plain_done) = run_rx_traced(&cfg, &wl);
    let mut tracer = VecTracer::new();
    let (traced_report, traced_done) = run_rx_instrumented(&cfg, &wl, &mut tracer);
    assert!(!tracer.is_empty());
    assert_eq!(format!("{plain_report:?}"), format!("{traced_report:?}"));
    assert_eq!(format!("{plain_done:?}"), format!("{traced_done:?}"));
}

#[test]
fn e2e_report_identical_with_tracing_on() {
    let txc = TxConfig::paper(LineRate::Oc12);
    let rxc = RxConfig::paper(LineRate::Oc12);
    let wl = greedy_workload(8, 9180, VcId::new(0, 32));
    let prop = Duration::from_us(5);
    let plain = run_e2e(&txc, &rxc, &wl, prop);
    let mut tracer = VecTracer::new();
    let traced = run_e2e_instrumented(&txc, &rxc, &wl, prop, &mut tracer);
    assert!(!tracer.is_empty());
    assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
}

#[test]
fn host_model_report_identical_with_tracing_on() {
    let model = RxHostModel {
        cpu: HostCpu::workstation(),
        costs: DriverCosts::default(),
        interrupts: InterruptMode::Coalesced {
            max_packets: 8,
            max_delay: Duration::from_ms(1),
        },
    };
    let arrivals: Vec<(Time, usize)> = (0..40).map(|i| (Time::from_us(10 * i), 9180)).collect();
    let plain = model.process(&arrivals);
    let mut tracer = VecTracer::new();
    let traced = model.process_instrumented(&arrivals, &mut tracer);
    assert!(!tracer.is_empty());
    assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
}

#[test]
fn functional_driver_identical_with_tracing_on() {
    use hni_core::{DriverConfig, HostDriver, Nic, NicConfig};
    use hni_telemetry::Stage;

    let run = |tracer: &mut dyn hni_telemetry::Tracer| {
        let cfg = NicConfig::paper(LineRate::Oc3);
        let mut a = HostDriver::new(Nic::new(cfg.clone()), DriverConfig::default());
        let mut b = HostDriver::new(Nic::new(cfg), DriverConfig::default());
        let vc = VcId::new(0, 66);
        a.nic_mut().open_vc(vc).unwrap();
        b.nic_mut().open_vc(vc).unwrap();
        for _ in 0..12 {
            let f = a.frame_tick(Time::ZERO);
            b.receive_line_octets(&f, Time::ZERO);
        }
        for i in 0..5u8 {
            a.send(vc, vec![i; 500], Time::ZERO).unwrap();
        }
        let mut got = Vec::new();
        for i in 0..20u64 {
            let now = Time::from_us(125 * i);
            let f = a.frame_tick_instrumented(now, tracer);
            b.receive_line_octets_instrumented(&f, now, tracer);
            while let Some(p) = b.poll_rx() {
                got.push(p);
            }
        }
        (got, b.interrupts())
    };

    let plain = run(&mut hni_telemetry::NullTracer);
    let mut tracer = VecTracer::new();
    let traced = run(&mut tracer);
    assert_eq!(format!("{plain:?}"), format!("{traced:?}"));
    // The recorded stream covers the functional receive boundaries.
    for stage in [
        Stage::RxHec,
        Stage::RxCamLookup,
        Stage::RxReasmComplete,
        Stage::CompletionPush,
        Stage::Isr,
        Stage::HostDeliver,
    ] {
        assert!(
            tracer.events().iter().any(|e| e.stage == stage),
            "missing {stage:?} in driver trace"
        );
    }
}

#[test]
fn rerunning_the_trace_is_deterministic() {
    // Same workload, two recordings: identical event streams, so the
    // JSONL export is byte-identical too.
    let txc = TxConfig::paper(LineRate::Oc12);
    let rxc = RxConfig::paper(LineRate::Oc12);
    let wl = greedy_workload(3, 9180, VcId::new(0, 32));
    let prop = Duration::from_us(5);
    let mut t1 = VecTracer::new();
    let mut t2 = VecTracer::new();
    run_e2e_instrumented(&txc, &rxc, &wl, prop, &mut t1);
    run_e2e_instrumented(&txc, &rxc, &wl, prop, &mut t2);
    assert_eq!(
        hni_telemetry::jsonl::to_jsonl(t1.events()),
        hni_telemetry::jsonl::to_jsonl(t2.events())
    );
}
