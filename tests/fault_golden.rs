//! Golden proofs for the fault-injection layer:
//!
//! 1. **Faultless means free** — with `FaultPlan::NONE` every injection
//!    point (link, bus, receive pipeline, end-to-end composition) makes
//!    *zero* RNG draws: the clean path never pays for the machinery.
//! 2. **Faultless means identical** — a `NONE`-plan run produces
//!    byte-identical reports to the plain entry points, so enabling the
//!    fault layer cannot perturb any published number.
//! 3. **Seeds pin everything** — a faulted run is a pure function of
//!    (plan, seed): same inputs, same ledger, same report; different
//!    seeds genuinely differ.

use hni_atm::VcId;
use hni_core::e2esim::{run_e2e, run_e2e_faulted};
use hni_core::rxsim::{run_rx, run_rx_faulted, RxConfig, RxWorkload};
use hni_core::txsim::{greedy_workload, TxConfig};
use hni_core::{Bus, BusConfig};
use hni_sim::{BusFaultPlan, Duration, FaultInjector, FaultPlan, Link, LinkDelivery, Rng, Time};
use hni_sonet::LineRate;

#[test]
fn faultless_injector_never_touches_the_rng() {
    let mut inj = FaultInjector::seeded(FaultPlan::NONE, 1234);
    for _ in 0..10_000 {
        let fate = inj.fate(424);
        assert!(!fate.lost && !fate.duplicated);
        assert_eq!(fate.displaced, 0);
        assert!(fate.flipped_bits.is_empty());
    }
    assert_eq!(inj.rng_draws(), 0);
}

#[test]
fn faultless_link_never_touches_the_rng() {
    let mut link = Link::new(
        622.08e6,
        Duration::from_us(25),
        FaultPlan::NONE,
        Rng::new(99),
    );
    let mut t = Time::ZERO;
    for _ in 0..5_000 {
        assert!(matches!(link.send(t, 424), LinkDelivery::Delivered { .. }));
        t = link.next_free();
    }
    assert_eq!(link.rng_draws(), 0);
    assert_eq!(link.lost_units(), 0);
}

#[test]
fn faultless_bus_never_touches_the_rng() {
    let cfg = BusConfig::default();
    let mut plain = Bus::new(cfg);
    let mut gated = Bus::with_faults(cfg, BusFaultPlan::NONE);
    let mut now = Time::ZERO;
    for i in 0..2_000u32 {
        let a = plain.grant(now, 32, 128);
        let b = gated.grant(now, 32, 128);
        assert_eq!(a, b, "grant {i} diverged");
        now = a;
    }
    assert_eq!(gated.fault_rng_draws(), 0);
    assert_eq!(gated.stalls(), 0);
    assert_eq!(gated.retries(), 0);
}

#[test]
fn faultless_rx_run_is_byte_identical_and_draw_free() {
    let cfg = RxConfig::paper(LineRate::Oc12);
    let wl = RxWorkload::uniform(LineRate::Oc12, hni_aal::AalType::Aal5, 8, 6, 9180, 0.95);
    let plain = run_rx(&cfg, &wl);
    let (faulted, lf) = run_rx_faulted(&cfg, &wl, &FaultPlan::NONE, 7);
    assert_eq!(lf.rng_draws, 0, "faultless rx path drew randomness");
    assert_eq!(lf.dropped + lf.corrupted + lf.duplicated + lf.reordered, 0);
    assert_eq!(format!("{plain:?}"), format!("{faulted:?}"));
    assert!(faulted.ledger.reconciles(), "{:?}", faulted.ledger);
}

#[test]
fn faultless_e2e_run_is_byte_identical_and_draw_free() {
    let txc = TxConfig::paper(LineRate::Oc12);
    let rxc = RxConfig::paper(LineRate::Oc12);
    let pkts = greedy_workload(16, 9180, VcId::new(0, 32));
    let prop = Duration::from_us(5);
    let plain = run_e2e(&txc, &rxc, &pkts, prop);
    let (faulted, lf) = run_e2e_faulted(&txc, &rxc, &pkts, prop, &FaultPlan::NONE, 3);
    assert_eq!(lf.rng_draws, 0, "faultless e2e path drew randomness");
    assert_eq!(format!("{plain:?}"), format!("{faulted:?}"));
}

#[test]
fn faulted_runs_are_pure_functions_of_plan_and_seed() {
    let cfg = RxConfig::paper(LineRate::Oc12);
    let wl = RxWorkload::uniform(LineRate::Oc12, hni_aal::AalType::Aal5, 8, 6, 9180, 0.95);
    let plan = FaultPlan::iid(0.01, 1e-6)
        .with_duplication(0.01)
        .with_reorder(0.02, 4);
    let (a, la) = run_rx_faulted(&cfg, &wl, &plan, 42);
    let (b, lb) = run_rx_faulted(&cfg, &wl, &plan, 42);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(la, lb);
    let (_, lc) = run_rx_faulted(&cfg, &wl, &plan, 43);
    assert_ne!(la, lc, "different seeds must produce different faults");
    assert!(a.ledger.reconciles(), "{:?}", a.ledger);
}
