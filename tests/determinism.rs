//! Reproducibility: identical seeds and configurations must yield
//! bit-identical results across every layer of the workspace — the
//! property EXPERIMENTS.md numbers rest on.

use hni_aal::AalType;
use hni_atm::VcId;
use hni_bench::experiments::{rf7_delineation, rt4_pacing};
use hni_core::rxsim::{run_rx, RxConfig, RxWorkload};
use hni_core::txsim::{greedy_workload, run_tx, TxConfig};
use hni_sim::{FaultPlan, Link, LinkDelivery, Rng, Time};
use hni_sonet::LineRate;

#[test]
fn tx_pipeline_deterministic() {
    let cfg = TxConfig::paper(LineRate::Oc12);
    let wl = greedy_workload(25, 9180, VcId::new(0, 32));
    let a = run_tx(&cfg, &wl);
    let b = run_tx(&cfg, &wl);
    assert_eq!(a.cells_sent, b.cells_sent);
    assert_eq!(a.finished_at, b.finished_at);
    assert_eq!(a.engine_busy, b.engine_busy);
    assert_eq!(a.bus_busy, b.bus_busy);
    assert_eq!(a.fifo_peak, b.fifo_peak);
}

#[test]
fn rx_pipeline_deterministic() {
    let cfg = RxConfig::paper(LineRate::Oc12);
    let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 8, 6, 4096, 0.95);
    let a = run_rx(&cfg, &wl);
    let b = run_rx(&cfg, &wl);
    assert_eq!(a.delivered_packets, b.delivered_packets);
    assert_eq!(a.dropped_fifo, b.dropped_fifo);
    assert_eq!(a.finished_at, b.finished_at);
    assert_eq!(a.pool_peak, b.pool_peak);
}

#[test]
fn lossy_link_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut link = Link::new(
            622.08e6,
            hni_sim::Duration::from_us(25),
            FaultPlan::iid(0.01, 1e-6),
            Rng::new(seed),
        );
        let mut t = Time::ZERO;
        let mut outcomes = Vec::new();
        for _ in 0..2000 {
            outcomes.push(match link.send(t, 424) {
                LinkDelivery::Delivered {
                    at, flipped_bits, ..
                } => (true, at.as_ps(), flipped_bits),
                LinkDelivery::Lost => (false, 0, vec![]),
            });
            t = link.next_free();
        }
        outcomes
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds must differ");
}

#[test]
fn experiment_outputs_are_reproducible() {
    // Rendered experiment reports are pure functions of their inputs.
    let a = rt4_pacing::run();
    let b = rt4_pacing::run();
    assert_eq!(a, b);
    let c = rf7_delineation::measure(1e-4, 1500, 77);
    let d = rf7_delineation::measure(1e-4, 1500, 77);
    assert_eq!(c.delivered, d.delivered);
    assert_eq!(c.corrected, d.corrected);
}

#[test]
fn functional_path_deterministic() {
    use hni_core::{Nic, NicConfig, NicEvent};
    let run = || {
        let cfg = NicConfig::paper(LineRate::Oc3);
        let mut a = Nic::new(cfg.clone());
        let mut b = Nic::new(cfg);
        let vc = VcId::new(0, 40);
        a.open_vc(vc).unwrap();
        b.open_vc(vc).unwrap();
        let mut trace = Vec::new();
        for _ in 0..12 {
            let f = a.frame_tick();
            b.receive_line_octets(&f, Time::ZERO);
        }
        for i in 0..10u32 {
            a.send(vc, vec![i as u8; 1000], Time::ZERO).unwrap();
        }
        for _ in 0..20 {
            let f = a.frame_tick();
            trace.extend_from_slice(&f[..8]); // sample of the line bytes
            b.receive_line_octets(&f, Time::ZERO);
            while let Some(e) = b.poll() {
                if let NicEvent::PacketReceived { data, .. } = e {
                    trace.push(data.len() as u8);
                }
            }
        }
        trace
    };
    assert_eq!(run(), run());
}
