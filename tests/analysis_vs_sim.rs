//! Cross-validation: the closed-form analysis against the discrete-event
//! simulations, and the analytic loss model against the byte-exact path.
//! Two independent evaluation methods must meet.

use hni_aal::AalType;
use hni_analysis::loss::goodput_under_loss;
use hni_analysis::throughput::{predict_rx, predict_tx};
use hni_atm::VcId;
use hni_bench::experiments::rf5_loss::functional_survival;
use hni_core::engine::HwPartition;
use hni_core::rxsim::{run_rx, RxConfig, RxWorkload};
use hni_core::txsim::{greedy_workload, run_tx, TxConfig};
use hni_sonet::LineRate;

#[test]
fn tx_sim_tracks_analysis_across_the_grid() {
    for rate in [LineRate::Oc3, LineRate::Oc12] {
        for partition in [HwPartition::all_software(), HwPartition::paper_split()] {
            for len in [1024usize, 9180, 65000] {
                let mut cfg = TxConfig::paper(rate);
                cfg.partition = partition;
                let sim = run_tx(&cfg, &greedy_workload(15, len, VcId::new(0, 32)));
                let ana = predict_tx(len, &partition, cfg.mips, &cfg.bus, rate, cfg.aal);
                let ratio = sim.goodput_bps / ana.achievable_bps;
                assert!(
                    (0.50..=1.02).contains(&ratio),
                    "{rate:?}/{}/{len}: sim {:.1} Mb/s vs analytic {:.1} Mb/s",
                    partition.name,
                    sim.goodput_bps / 1e6,
                    ana.achievable_bps / 1e6
                );
            }
        }
    }
}

#[test]
fn rx_sim_tracks_analysis_for_engine_bound_configs() {
    // All-software receive at OC-12: analysis says the engine bounds
    // goodput near mips/instr-per-cell; the sim's delivered goodput must
    // land in the same regime (it also loses cells, so ≤).
    let partition = HwPartition::all_software();
    let len = 9180;
    let ana = predict_rx(
        len,
        &partition,
        25.0,
        &hni_core::bus::BusConfig::default(),
        LineRate::Oc12,
        AalType::Aal5,
    );
    assert_eq!(ana.bottleneck, "engine");

    let mut cfg = RxConfig::paper(LineRate::Oc12);
    cfg.partition = partition;
    // Offer at half the engine-bound rate: no loss expected, goodput =
    // offered.
    let offered_fraction = 0.5 * ana.achievable_bps / LineRate::Oc12.payload_bps();
    let wl = RxWorkload::uniform(
        LineRate::Oc12,
        AalType::Aal5,
        2,
        10,
        len,
        offered_fraction.min(1.0),
    );
    let r = run_rx(&cfg, &wl);
    assert_eq!(r.failed_packets, 0, "below the engine bound nothing drops");
    // Offer at full line rate: the sim must not exceed the analytic
    // engine bound by more than per-packet accounting slack.
    let wl_full = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 2, 10, len, 1.0);
    let r_full = run_rx(&cfg, &wl_full);
    assert!(
        r_full.goodput_bps < 1.10 * ana.achievable_bps,
        "sim {:.1} vs bound {:.1} Mb/s",
        r_full.goodput_bps / 1e6,
        ana.achievable_bps / 1e6
    );
}

#[test]
fn loss_model_matches_functional_path_grid() {
    // Survival probabilities from the analytic model vs frames pushed
    // through real segmentation/reassembly over a lossy link.
    for (loss, len, tol) in [(1e-3, 9180, 0.15), (5e-3, 2048, 0.12)] {
        let model = goodput_under_loss(LineRate::Oc12, AalType::Aal5, len, loss).frame_survival;
        let measured = functional_survival(AalType::Aal5, len, loss, 120, 31);
        assert!(
            (measured - model).abs() < tol,
            "loss {loss} len {len}: measured {measured} vs model {model}"
        );
    }
}

#[test]
fn partition_ordering_consistent_between_methods() {
    // Both methods must rank the partitions identically at OC-12.
    let len = 9180;
    let mut sim_rank = Vec::new();
    let mut ana_rank = Vec::new();
    for partition in [
        HwPartition::all_software(),
        HwPartition::paper_split(),
        HwPartition::full_hardware(),
    ] {
        let mut cfg = TxConfig::paper(LineRate::Oc12);
        cfg.partition = partition;
        let sim = run_tx(&cfg, &greedy_workload(15, len, VcId::new(0, 32)));
        let ana = predict_tx(len, &partition, cfg.mips, &cfg.bus, LineRate::Oc12, cfg.aal);
        sim_rank.push((partition.name, sim.goodput_bps));
        ana_rank.push((partition.name, ana.achievable_bps));
    }
    // all-software must be strictly worst in both.
    assert!(sim_rank[0].1 < sim_rank[1].1 && sim_rank[0].1 < sim_rank[2].1);
    assert!(ana_rank[0].1 < ana_rank[1].1 && ana_rank[0].1 < ana_rank[2].1);
}
