//! Structural golden tests for the report: every experiment's rendering
//! must keep its identifying header, its table shape, and the invariant
//! facts the evaluation narrative quotes. Guards against silent
//! rendering regressions (a renamed column, a dropped row) that unit
//! tests of the underlying numbers would not catch.

use hni_bench::{run_experiment, EXPERIMENT_IDS};

#[test]
fn all_experiments_render_with_headers_and_tables() {
    for id in EXPERIMENT_IDS {
        let out = run_experiment(id).unwrap_or_else(|| panic!("{id} missing"));
        assert!(
            out.starts_with(&id.to_uppercase()),
            "{id}: report must start with its id header"
        );
        assert!(out.contains("---"), "{id}: table separator missing");
        assert!(out.lines().count() >= 7, "{id}: suspiciously short");
    }
}

#[test]
fn rt1_quotes_the_headline_budgets() {
    let out = run_experiment("r-t1").unwrap();
    assert!(out.contains("681.6 ns"), "OC-12 cell time");
    assert!(out.contains("2726.3 ns"), "OC-3 cell time");
    assert!(out.contains("17.7"), "25 MIPS OC-12 budget");
}

#[test]
fn rt2_quotes_the_partition_verdicts() {
    let out = run_experiment("r-t2").unwrap();
    for needle in ["all-software", "paper-split", "full-hardware", "yes", "no"] {
        assert!(out.contains(needle), "missing {needle}");
    }
}

#[test]
fn rf1_has_every_size_and_partition() {
    let out = run_experiment("r-f1").unwrap();
    for size in ["64", "9180", "65000"] {
        assert!(out.contains(size), "missing size {size}");
    }
    assert!(
        out.contains("link") && out.contains("engine"),
        "bottleneck column"
    );
}

#[test]
fn rt5_quotes_the_waterfall_endpoints() {
    let out = run_experiment("r-t5").unwrap();
    assert!(out.contains("622.1 Mb/s"));
    assert!(out.contains("599.0 Mb/s"));
    assert!(out.contains("540.4 Mb/s"));
}

#[test]
fn ra2_quotes_the_mips_minimums() {
    let out = run_experiment("r-a2").unwrap();
    assert!(out.contains("21.2"), "paper-split OC-12 minimum MIPS");
    assert!(out.contains("285.4"), "all-software OC-12 minimum MIPS");
}

#[test]
fn experiment_list_is_complete_and_ordered() {
    assert_eq!(EXPERIMENT_IDS.len(), 20);
    assert!(EXPERIMENT_IDS.starts_with(&["r-t1", "r-t2"]));
    assert!(EXPERIMENT_IDS.ends_with(&["r-w1", "r-s1"]));
}

#[test]
fn rw1_quotes_the_closed_loop_verdict() {
    let out = run_experiment("r-w1").unwrap();
    for needle in [
        "satellite",
        "Overload leg",
        "WAN leg",
        "retx",
        "golden verdict: PASS",
    ] {
        assert!(out.contains(needle), "missing {needle}:\n{out}");
    }
}

#[test]
fn rs1_quotes_the_scale_verdict() {
    let out = run_experiment("r-s1").unwrap();
    for needle in [
        "1000000",
        "B/idle VC",
        "probes/lookup",
        "golden verdict: PASS",
    ] {
        assert!(out.contains(needle), "missing {needle}:\n{out}");
    }
}

#[test]
fn rr1_quotes_the_policy_comparison() {
    let out = run_experiment("r-r1").unwrap();
    for needle in ["drop-tail", "EPD", "PPD", "pool demand", "cell loss"] {
        assert!(out.contains(needle), "missing {needle}");
    }
    // The collapse and the recovery must both be visible in the table:
    // drop-tail at zero in overload, graceful policies delivering.
    assert!(out.contains("0 b/s"), "drop-tail collapse missing");
    assert!(out.contains("Mb/s"), "graceful-policy goodput missing");
}

#[test]
fn ro2_quotes_the_blame_and_verdict() {
    let out = run_experiment("r-o2").unwrap();
    assert!(out.contains("baseline verdict"), "baseline row missing");
    assert!(out.contains("injected verdict"), "injected row missing");
    assert!(out.contains("deliver dma"), "planted stage missing");
    assert!(out.contains("analytic floor"), "cross-check missing");
    assert!(out.contains("PASS"), "machine check failed:\n{out}");
}

#[test]
fn ro1_quotes_the_saturation_order() {
    let out = run_experiment("r-o1").unwrap();
    assert!(out.contains("measured bottleneck"), "sweep tables missing");
    assert!(
        out.contains("saturates first"),
        "saturation-order statement missing"
    );
    assert!(out.contains("engine") && out.contains("link") && out.contains("bus"));
}
