//! Chaos invariants: randomly generated (but seeded) fault plans pushed
//! through the receive pipeline and the end-to-end composition must
//! never panic, and every injected cell must reconcile to exactly one
//! fate — delivered, dropped(reason) or discarded(reason) — both in the
//! run's own [`CellLedger`] and in the metrics registry derived from
//! the telemetry stream.
//!
//! Seeds come from `HNI_CHAOS_SEEDS` (comma-separated) when set — ci.sh
//! pins two — and default to a small sweep otherwise. Every seed is
//! printed on failure, so any counterexample is a one-line repro.

use hni_core::e2esim::run_e2e_faulted;
use hni_core::rxsim::{run_rx_faulted_instrumented, RxConfig, RxWorkload};
use hni_core::txsim::{greedy_workload, TxConfig};
use hni_core::DiscardPolicy;
use hni_faults::chaos;
use hni_sim::Duration;
use hni_sonet::LineRate;
use hni_telemetry::{Metric, MetricsRegistry, VecTracer};

fn seeds() -> Vec<u64> {
    match std::env::var("HNI_CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|x| x.trim().parse().expect("HNI_CHAOS_SEEDS: bad seed"))
            .collect(),
        Err(_) => (0..24).collect(),
    }
}

/// Vary the degradation policy and pool pressure with the seed so the
/// chaos sweep exercises drop-tail, EPD and PPD under both roomy and
/// starved pools.
fn rx_cfg_for(seed: u64) -> RxConfig {
    let mut cfg = RxConfig::paper(LineRate::Oc12);
    cfg.policy = match seed % 3 {
        0 => DiscardPolicy::DropTail,
        1 => DiscardPolicy::Epd { threshold: 2 },
        _ => DiscardPolicy::Ppd,
    };
    if seed % 2 == 1 {
        cfg.pool.total_buffers = 16;
    }
    if seed % 4 == 2 {
        cfg.bus_faults = chaos::random_bus_plan(seed);
    }
    cfg
}

fn counter(reg: &MetricsRegistry, name: &str) -> (u64, u64) {
    match reg.get(name) {
        Some(Metric::Counter(c)) => (c.events(), c.bytes()),
        None => (0, 0),
        other => panic!("{name}: unexpected metric {other:?}"),
    }
}

#[test]
fn chaotic_rx_runs_reconcile_ledger_and_registry() {
    let wl = RxWorkload::uniform(LineRate::Oc12, hni_aal::AalType::Aal5, 16, 4, 9180, 1.0);
    for seed in seeds() {
        let cfg = rx_cfg_for(seed);
        let plan = chaos::random_plan(seed);
        let mut tracer = VecTracer::new();
        let (report, lf) = run_rx_faulted_instrumented(&cfg, &wl, &plan, seed, &mut tracer);
        let l = report.ledger;
        assert!(
            l.reconciles(),
            "seed {seed}: ledger does not balance: {l:?}"
        );
        assert_eq!(
            l.injected,
            lf.offered + lf.duplicated,
            "seed {seed}: injected ≠ offered+duplicated"
        );
        assert_eq!(l.dropped_link, lf.dropped, "seed {seed}");

        // The registry is a query over the telemetry stream; it must
        // agree with the run's own accounting cell for cell.
        let reg = MetricsRegistry::from_trace(tracer.events(), report.run_end);
        let (cells, _) = counter(&reg, "nic.rx.cells");
        assert_eq!(
            cells,
            l.injected - l.dropped_link,
            "seed {seed}: nic.rx.cells ≠ cells reaching the interface"
        );
        let (fifo, _) = counter(&reg, "nic.rx.drops.fifo");
        assert_eq!(fifo, l.dropped_fifo, "seed {seed}: fifo drops");
        let (pool, _) = counter(&reg, "nic.rx.drops.pool");
        assert_eq!(pool, l.dropped_pool, "seed {seed}: pool drops");
        let (_, epd) = counter(&reg, "nic.rx.discards.epd");
        assert_eq!(epd, l.discarded_epd, "seed {seed}: EPD discards");
        let (_, ppd) = counter(&reg, "nic.rx.discards.ppd");
        assert_eq!(ppd, l.discarded_ppd, "seed {seed}: PPD discards");
        let (_, stale) = counter(&reg, "nic.rx.discards.stale");
        assert_eq!(stale, l.discarded_stale, "seed {seed}: stale discards");
        let (_, expired) = counter(&reg, "nic.rx.discards.expired");
        assert_eq!(expired, l.discarded_expired, "seed {seed}: expiries");
        let (validate_fails, _) = counter(&reg, "nic.rx.validate.failures");
        if l.discarded_crc > 0 {
            assert!(
                validate_fails > 0,
                "seed {seed}: crc discards without validate failures"
            );
        }

        // Packet conservation on top of cell conservation.
        assert!(
            report.delivered_packets + report.failed_packets <= wl.pkts.len() as u64,
            "seed {seed}: more packet outcomes than packets"
        );
    }
}

#[test]
fn chaotic_e2e_runs_never_panic_and_conserve_packets() {
    let txc = TxConfig::paper(LineRate::Oc12);
    let pkts = greedy_workload(30, 9180, hni_atm::VcId::new(0, 32));
    for seed in seeds() {
        let rxc = rx_cfg_for(seed);
        let plan = chaos::random_plan(seed);
        let (r, lf) = run_e2e_faulted(&txc, &rxc, &pkts, Duration::from_us(25), &plan, seed);
        assert!(
            r.rx.ledger.reconciles(),
            "seed {seed}: e2e ledger does not balance: {:?}",
            r.rx.ledger
        );
        assert_eq!(
            r.delivered + r.rx.failed_packets,
            r.offered,
            "seed {seed}: every offered packet must be delivered or failed"
        );
        assert_eq!(r.rx.ledger.dropped_link, lf.dropped, "seed {seed}");
        assert!(
            r.rx.ledger.delivered_cells <= r.rx.ledger.injected,
            "seed {seed}: delivered more cells than injected"
        );
    }
}

/// With the closed-loop transport enabled, recovery *re-injects* cells
/// — retransmitted frames and late duplicates of already-delivered
/// ones — and the ledger must still reconcile every injected cell to
/// exactly one fate, with `injected_retx` carrying the provenance and
/// `discarded_superseded` the fate of redundant deliveries.
#[test]
fn chaotic_transport_runs_conserve_cells_with_retransmission() {
    use hni_faults::{scenarios, DelayModel};
    use hni_transport::{run_transport, TransportConfig};
    for seed in seeds() {
        let mut cfg = TransportConfig::paper(LineRate::Oc12);
        cfg.n_vcs = 2;
        cfg.frames_per_vc = 6;
        cfg.frame_len = 1536;
        cfg.policy = match seed % 3 {
            0 => DiscardPolicy::DropTail,
            1 => DiscardPolicy::Epd { threshold: 2 },
            _ => DiscardPolicy::Ppd,
        };
        if seed % 2 == 1 {
            cfg.pool.total_buffers = 8;
        }
        cfg.fwd_plan = chaos::random_plan(seed);
        cfg.rev_plan = chaos::random_plan(seed ^ 0x5EED);
        cfg.seed = seed;
        let path = match seed % 4 {
            0 => DelayModel::NONE,
            1 => scenarios::lan_path(),
            _ => scenarios::wan_path(),
        };
        let cfg = cfg.with_path(path);
        let r = run_transport(&cfg);
        let l = &r.ledger;
        assert!(
            l.reconciles(),
            "seed {seed}: ledger does not balance: {l:?}"
        );
        assert!(
            l.injected_retx <= l.injected,
            "seed {seed}: more retransmitted cells than cells: {l:?}"
        );
        // Every retransmitted frame contributes its full cell count to
        // the provenance bucket; wire duplication of a retransmitted
        // cell can only push it higher.
        let retx_cells = r.retransmits * cfg.cells_per_frame() as u64;
        assert!(
            l.injected_retx >= retx_cells,
            "seed {seed}: retransmit provenance lost cells: {} < {retx_cells}",
            l.injected_retx
        );
        assert!(
            retx_cells > 0 || l.injected_retx == 0,
            "seed {seed}: retransmit provenance without retransmissions"
        );
        if r.duplicate_frames > 0 {
            assert!(
                l.discarded_superseded > 0,
                "seed {seed}: duplicate deliveries left no superseded cells: {l:?}"
            );
        }
        // Frame conservation above cell conservation: the sender must
        // resolve every offered frame, one way or the other.
        assert!(r.completed, "seed {seed}: transfer did not terminate");
        assert_eq!(
            r.acked_frames + r.abandoned_frames,
            r.offered_frames,
            "seed {seed}: every offered frame must be acked or abandoned"
        );
    }
}

#[test]
fn chaos_is_reproducible_per_seed() {
    let wl = RxWorkload::uniform(LineRate::Oc12, hni_aal::AalType::Aal5, 8, 4, 9180, 1.0);
    for seed in [3u64, 17] {
        let cfg = rx_cfg_for(seed);
        let plan = chaos::random_plan(seed);
        let mut t1 = VecTracer::new();
        let mut t2 = VecTracer::new();
        let (a, la) = run_rx_faulted_instrumented(&cfg, &wl, &plan, seed, &mut t1);
        let (b, lb) = run_rx_faulted_instrumented(&cfg, &wl, &plan, seed, &mut t2);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
        assert_eq!(la, lb, "seed {seed}");
        assert_eq!(t1.events(), t2.events(), "seed {seed}: traces diverged");
    }
}
