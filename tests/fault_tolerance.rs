//! Fault-tolerance integration: the full path under line damage. No
//! corrupt data may ever be delivered, and the path must recover.

use hni_aal::AalType;
use hni_atm::VcId;
use hni_core::{Nic, NicConfig, NicEvent};
use hni_sim::{link::apply_bit_errors, Rng, Time};
use hni_sonet::LineRate;

fn pair(aal: AalType) -> (Nic, Nic, VcId) {
    let mut cfg = NicConfig::paper(LineRate::Oc3);
    cfg.aal = aal;
    let mut a = Nic::new(cfg.clone());
    let mut b = Nic::new(cfg);
    let vc = VcId::new(0, 55);
    a.open_vc(vc).unwrap();
    b.open_vc(vc).unwrap();
    for _ in 0..12 {
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
    }
    (a, b, vc)
}

/// Flip bits at `ber` over a frame, deterministically per `rng`.
fn damage(frame: &mut [u8], ber: f64, rng: &mut Rng) {
    if ber <= 0.0 {
        return;
    }
    let bits = frame.len() as u64 * 8;
    let mut pos = 0u64;
    let mut flips = Vec::new();
    loop {
        pos += rng.geometric(ber);
        if pos > bits {
            break;
        }
        flips.push(pos - 1);
    }
    apply_bit_errors(frame, &flips);
}

#[test]
fn no_corrupt_delivery_under_bit_errors_aal5() {
    no_corrupt_delivery(AalType::Aal5, 1e-5);
}

#[test]
fn no_corrupt_delivery_under_bit_errors_aal34() {
    no_corrupt_delivery(AalType::Aal34, 1e-5);
}

fn no_corrupt_delivery(aal: AalType, ber: f64) {
    let (mut a, mut b, vc) = pair(aal);
    let mut rng = Rng::new(404);
    let mut sent = Vec::new();
    for i in 0..100u32 {
        let payload: Vec<u8> = (0..3000).map(|j| ((i + j) % 256) as u8).collect();
        sent.push(payload.clone());
        a.send(vc, payload, Time::ZERO).unwrap();
    }
    let mut delivered = 0;
    let mut failures = 0;
    while a.tx_backlog_cells() > 0 {
        let mut f = a.frame_tick();
        damage(&mut f, ber, &mut rng);
        b.receive_line_octets(&f, Time::ZERO);
        while let Some(e) = b.poll() {
            match e {
                NicEvent::PacketReceived { data, .. } => {
                    // Whatever arrives must be byte-exact one of the sent
                    // payloads, in order.
                    assert!(
                        sent.contains(&data),
                        "corrupt frame delivered ({} octets)",
                        data.len()
                    );
                    delivered += 1;
                }
                NicEvent::ReceiveError(_) => failures += 1,
                NicEvent::UnknownVc(_) | NicEvent::OamLoopbackReply { .. } => {
                    // A header hit that survived HEC *correction* with a
                    // wrong VCI (or had its PTI flipped into the OAM
                    // range) would land here; at 1e-5 it's essentially
                    // impossible, but it is a legal outcome, not
                    // corruption.
                }
            }
        }
    }
    assert!(
        delivered > 50,
        "most frames should survive 1e-5 ({delivered})"
    );
    assert!(
        delivered + failures >= 90,
        "delivered {delivered} + failed {failures} should account for most frames"
    );
}

#[test]
fn delineation_recovers_after_line_hit() {
    // A burst of garbage long enough to drop both frame alignment and
    // cell delineation; both must re-acquire and traffic must resume.
    let (mut a, mut b, vc) = pair(AalType::Aal5);

    a.send(vc, b"before".to_vec(), Time::ZERO).unwrap();
    let mut got_before = false;
    for _ in 0..20 {
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
        while let Some(e) = b.poll() {
            if let NicEvent::PacketReceived { data, .. } = e {
                assert_eq!(data, b"before");
                got_before = true;
            }
        }
    }
    assert!(got_before);

    // The hit: five frames of noise.
    let mut rng = Rng::new(1);
    for _ in 0..5 {
        let noise: Vec<u8> = (0..LineRate::Oc3.frame_octets())
            .map(|_| rng.next_u64() as u8)
            .collect();
        b.receive_line_octets(&noise, Time::ZERO);
    }
    while b.poll().is_some() {}

    // Recovery: clean frames resynchronize, then data flows again.
    for _ in 0..15 {
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
    }
    assert!(
        b.tc_receiver().aligner().is_synced(),
        "frame alignment back"
    );
    assert!(b.tc_receiver().delineator().is_synced(), "delineation back");

    a.send(vc, b"after".to_vec(), Time::ZERO).unwrap();
    let mut got_after = false;
    for _ in 0..20 {
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
        while let Some(e) = b.poll() {
            if let NicEvent::PacketReceived { data, .. } = e {
                assert_eq!(data, b"after");
                got_after = true;
            }
        }
    }
    assert!(got_after, "traffic must resume after resync");
}

#[test]
fn sonet_parity_counts_scale_with_ber() {
    let (mut a, mut b, vc) = pair(AalType::Aal5);
    let mut rng = Rng::new(5);
    for i in 0..50u32 {
        a.send(vc, vec![i as u8; 2000], Time::ZERO).unwrap();
    }
    while a.tx_backlog_cells() > 0 {
        let mut f = a.frame_tick();
        damage(&mut f, 1e-5, &mut rng);
        b.receive_line_octets(&f, Time::ZERO);
        while b.poll().is_some() {}
    }
    let p = b.tc_receiver().parser();
    // B1 covers everything: with ~2430×8 bits per frame at 1e-5, roughly
    // one bit in five frames — dozens over this run.
    assert!(p.total_b1_errors() > 0, "B1 must register line damage");
    // B1 ≥ B3: section parity covers a superset of the path payload.
    assert!(p.total_b1_errors() >= p.total_b3_errors());
}
