//! The span index and exemplar reservoir under adversity: link fault
//! plans duplicate, drop and reorder cells between the two adaptors,
//! and the tail-anatomy layer must stay coherent — duplicated cells
//! must not corrupt a packet's stage edges, lost packets must leave
//! attributable partial spans rather than poisoning the index, and the
//! always-on reservoir must keep naming the histogram's exact maximum.

use hni_atm::VcId;
use hni_core::e2esim::{run_e2e_faulted_instrumented, run_e2e_instrumented};
use hni_core::rxsim::RxConfig;
use hni_core::txsim::{greedy_workload, TxConfig, TxPacket};
use hni_sim::{Duration, FaultPlan};
use hni_sonet::LineRate;
use hni_telemetry::{attribute_tail, PacketSpans, VecTracer};

const PROPAGATION: Duration = Duration::from_us(5);

fn workload(n: usize) -> Vec<TxPacket> {
    greedy_workload(n, 9180, VcId::new(0, 32))
}

/// Duplication only: every cell survives, some arrive twice. Every
/// packet still completes, and the duplicate deliveries — which hit the
/// reassembler mid-SDU and are counted as errors there — must not
/// perturb the span index's edge capture (first-wins/last-wins fields
/// absorb the extra events without double counting).
#[test]
fn duplicated_cells_keep_every_span_telescoping() {
    // Rate chosen so the seeded run both duplicates cells AND leaves
    // survivors: a duplicate landing mid-SDU corrupts that reassembly
    // (extra cell → length/CRC mismatch), so at high rates every SDU
    // dies and there is nothing left to index.
    let plan = FaultPlan {
        duplication: 0.002,
        ..FaultPlan::NONE
    };
    let mut tracer = VecTracer::new();
    let (report, lf) = run_e2e_faulted_instrumented(
        &TxConfig::paper(LineRate::Oc12),
        &RxConfig::paper(LineRate::Oc12),
        &workload(12),
        PROPAGATION,
        &plan,
        0xd0b1e5,
        &mut tracer,
    );
    assert!(lf.duplicated > 0, "plan must actually duplicate: {lf:?}");
    let spans = PacketSpans::from_events(&tracer.into_events());
    assert_eq!(spans.len(), 12);
    let mut complete = 0;
    for p in spans.packets() {
        let life = spans.life(p).expect("every packet was traced");
        if !life.is_complete() {
            continue;
        }
        complete += 1;
        let total = life.total().expect("complete life has a total");
        let sum: Duration = life
            .breakdown()
            .iter()
            .map(|s| s.total())
            .fold(Duration::ZERO, |a, b| a + b);
        assert_eq!(sum, total, "pkt {p}: stages must telescope to total");
        let w = spans.waterfall(p).expect("complete life renders");
        assert_eq!(w.total, total);
    }
    // Duplicates alone kill no SDU whose extra copy lands as an error
    // cell *after* reassembly already completed — but copies landing
    // mid-SDU can. The run must still complete packets to attribute.
    assert!(complete > 0, "duplication-only run completed no packets");
    assert_eq!(complete as u64, report.latency_hist.pcts().count);
}

/// Heavy loss: some packets never complete. Their lives must stay in
/// the index with attributable transmit-side spans (the waterfall
/// refuses to render, but the breakdown names the stages that did run)
/// and the cohort attributor must simply exclude them.
#[test]
fn lost_packets_leave_partial_but_attributable_spans() {
    let plan = FaultPlan::loss(0.05);
    let mut tracer = VecTracer::new();
    let (report, lf) = run_e2e_faulted_instrumented(
        &TxConfig::paper(LineRate::Oc12),
        &RxConfig::paper(LineRate::Oc12),
        &workload(20),
        PROPAGATION,
        &plan,
        0x10557,
        &mut tracer,
    );
    assert!(lf.dropped > 0, "plan must actually drop: {lf:?}");
    let spans = PacketSpans::from_events(&tracer.into_events());
    let incomplete: Vec<u32> = spans
        .packets()
        .filter(|&p| spans.life(p).is_some_and(|l| !l.is_complete()))
        .collect();
    assert!(
        !incomplete.is_empty(),
        "5% cell loss over 20 SDUs should kill at least one"
    );
    for &p in &incomplete {
        let life = spans.life(p).unwrap();
        assert!(spans.waterfall(p).is_none(), "pkt {p} must not render");
        assert!(life.total().is_none());
        // The transmit side ran to the wire regardless of what the link
        // did, so the partial breakdown reaches at least serialization.
        let stages = life.breakdown();
        assert!(
            stages.iter().any(|s| s.label == "serialize"),
            "pkt {p}: tx-side spans missing from partial life: {stages:?}"
        );
    }
    // The attributor sees only completed lives; with survivors present
    // it must still produce a (possibly empty) verdict without panic.
    let survivors = spans.len() - incomplete.len();
    assert_eq!(survivors as u64, report.latency_hist.pcts().count);
    if survivors >= 2 {
        let _ = attribute_tail(&spans);
    }
}

/// The reservoir rides inside the report: its slowest exemplar must
/// name the exact packet behind the histogram's exact max, under faults
/// and cleanly, and byte-identically across reruns.
#[test]
fn reservoir_names_the_histogram_max_and_reruns_identically() {
    let run = || {
        let mut tracer = VecTracer::new();
        let r = run_e2e_instrumented(
            &TxConfig::paper(LineRate::Oc12),
            &RxConfig::paper(LineRate::Oc12),
            &workload(20),
            PROPAGATION,
            &mut tracer,
        );
        (r, tracer.into_events())
    };
    let (a, events) = run();
    let (b, _) = run();
    assert_eq!(a.tail.slowest(), b.tail.slowest(), "reservoir not stable");
    assert_eq!(a.tail.sampled(), b.tail.sampled());
    let slowest = a.tail.slowest();
    assert_eq!(
        slowest.first().map(|e| e.latency_ps),
        Some(a.latency_hist.pcts().max),
        "slowest exemplar must carry the histogram's exact max"
    );
    // And the exemplar's identity resolves back through the span index
    // to the same latency, tying reservoir, histogram and spans to one
    // measurement.
    let spans = PacketSpans::from_events(&events);
    let top = slowest[0];
    let life = spans.life(top.pkt).expect("exemplar is indexed");
    assert_eq!(
        life.total().map(|d| d.as_ps()),
        Some(top.latency_ps),
        "span total disagrees with reservoir for pkt {}",
        top.pkt
    );
}

/// Zero-length SDUs through the real faulted path: the span index's
/// setup-edge fallback must hold outside the unit tests too.
#[test]
fn zero_length_packets_survive_the_faulted_path() {
    let mut wl = workload(4);
    for p in wl.iter_mut().take(2) {
        p.len = 0;
    }
    let mut tracer = VecTracer::new();
    let (_, lf) = run_e2e_faulted_instrumented(
        &TxConfig::paper(LineRate::Oc12),
        &RxConfig::paper(LineRate::Oc12),
        &wl,
        PROPAGATION,
        &FaultPlan {
            duplication: 0.02,
            ..FaultPlan::NONE
        },
        0x1e43,
        &mut tracer,
    );
    assert_eq!(lf.dropped, 0, "duplication-only plan must not drop");
    let spans = PacketSpans::from_events(&tracer.into_events());
    for p in spans.packets() {
        if let Some(w) = spans.waterfall(p) {
            assert!(w.total >= Duration::ZERO);
            assert!(!w.stages.is_empty());
        }
    }
    assert!(
        spans
            .packets()
            .filter_map(|p| spans.life(p))
            .any(|l| l.is_complete()),
        "at least the non-empty SDUs must complete"
    );
}
