//! Golden guarantees for the perf work: the fast paths may be faster,
//! but they must be *invisible* — same bytes, same reports, no
//! steady-state allocation.
//!
//! 1. The slab segmentation path emits byte-identical cells to the
//!    allocating `Vec<Cell>` path, for AAL5 and AAL3/4 alike.
//! 2. `par_sweep` produces byte-identical results at every worker
//!    count — the parallel report is the serial report.
//! 3. The steady-state segmentation → link → reassembly loop performs
//!    zero heap allocations and zero slab growth after warm-up,
//!    proven by a counting global allocator.
//!
//! The allocation counter is thread-filtered (a `const`-initialised
//! thread-local flag, which itself never allocates) so the other tests
//! in this binary — which allocate freely on their own harness threads —
//! cannot pollute the zero-alloc window.

use hni_aal::aal34::Aal34Segmenter;
use hni_aal::aal5::{self, Aal5Reassembler};
use hni_atm::{CellSlab, VcId};
use hni_bench::experiments::{rf1_tx_throughput, rt3_memory, rt4_pacing};
use hni_bench::par_sweep_with_jobs;
use hni_sim::{Duration, FaultPlan, Link, LinkDelivery, Rng, Time};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell as StdCell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TRACKING: StdCell<bool> = const { StdCell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.with(|t| t.get()) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.with(|t| t.get()) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Heap allocations performed *by this thread* while `f` runs.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    f();
    TRACKING.with(|t| t.set(false));
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn slab_fast_path_byte_identical_to_vec_path() {
    let vc = VcId::new(0, 77);
    let sizes = [1usize, 40, 48, 49, 96, 1500, 9180, 65_000];

    // AAL5: free function, stateless across frames.
    for &len in &sizes {
        let sdu: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
        let vec_cells = aal5::segment(vc, &sdu, 0);
        let mut slab = CellSlab::new();
        let mut refs = Vec::new();
        aal5::segment_into(vc, &sdu, 0, &mut slab, &mut refs);
        assert_eq!(vec_cells.len(), refs.len(), "len {len}");
        for (cell, &r) in vec_cells.iter().zip(&refs) {
            assert_eq!(cell.as_bytes(), slab.get(r).as_bytes(), "len {len}");
        }
    }

    // AAL3/4: the segmenter carries SN/BTag state, so drive two fresh
    // segmenters through the same SDU sequence and diff every cell.
    let mut vec_seg = Aal34Segmenter::new();
    let mut slab_seg = Aal34Segmenter::new();
    let mut slab = CellSlab::new();
    for &len in &sizes {
        let sdu: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();
        let vec_cells = vec_seg.segment(vc, 5, &sdu);
        let mut refs = Vec::new();
        slab_seg.segment_into(vc, 5, &sdu, &mut slab, &mut refs);
        assert_eq!(vec_cells.len(), refs.len(), "len {len}");
        for (cell, &r) in vec_cells.iter().zip(&refs) {
            assert_eq!(cell.as_bytes(), slab.get(r).as_bytes(), "len {len}");
        }
        slab.free_all(&refs);
    }
}

/// Render R-F1 sweep points to a canonical string (full float precision
/// via `{:?}` — any drift at all must show).
fn rf1_fingerprint(points: &[rf1_tx_throughput::Point]) -> String {
    points
        .iter()
        .map(|p| {
            format!(
                "{:?}|{}|{}|{:?}|{:?}|{:?}|{}\n",
                p.rate, p.partition, p.len, p.sim_bps, p.analytic_bps, p.bubble_bps, p.bottleneck
            )
        })
        .collect()
}

#[test]
fn par_sweep_byte_identical_across_worker_counts() {
    // The R-F1 grid through its own jobs-parameterised entry point.
    let serial = rf1_fingerprint(&rf1_tx_throughput::sweep_with_jobs(4, 1));
    for jobs in 2..=4 {
        let par = rf1_fingerprint(&rf1_tx_throughput::sweep_with_jobs(4, jobs));
        assert_eq!(serial, par, "r-f1 sweep diverged at jobs={jobs}");
    }

    // The R-T3 measured-occupancy grid through the generic runner.
    let grid = [(1usize, 1usize), (1, 32), (16, 1), (16, 32)];
    let serial = par_sweep_with_jobs(1, &grid, |&(n, k)| rt3_memory::measured_peak(n, k));
    for jobs in 2..=4 {
        let par = par_sweep_with_jobs(jobs, &grid, |&(n, k)| rt3_memory::measured_peak(n, k));
        assert_eq!(serial, par, "r-t3 grid diverged at jobs={jobs}");
    }

    // The R-T4 pacing pair: float-exact across worker counts.
    let fp = |jobs| {
        par_sweep_with_jobs(jobs, &[false, true], |&pacing| rt4_pacing::measure(pacing))
            .iter()
            .map(|p| {
                format!(
                    "{}|{:?}|{:?}|{:?}\n",
                    p.pacing, p.mean_us, p.sd_us, p.max_us
                )
            })
            .collect::<String>()
    };
    let serial = fp(1);
    for jobs in 2..=4 {
        assert_eq!(serial, fp(jobs), "r-t4 diverged at jobs={jobs}");
    }
}

#[test]
fn telemetry_plane_zero_alloc_in_steady_state() {
    use hni_telemetry::{
        HdrHist, NullTracer, SamplingTracer, Stage, TopK, TraceEvent, Tracer, VcMetrics,
    };

    // Histogram: record + quantile + merge never touch the heap (the
    // 64 buckets are inline arrays).
    let mut h = HdrHist::new();
    let mut h2 = HdrHist::new();
    let n = allocs_during(|| {
        for i in 0..10_000u64 {
            h.record(i * 37 + 1);
            h2.record(i * 91 + 5);
        }
        h.merge(&h2);
        std::hint::black_box(h.quantile(0.99));
        std::hint::black_box(h.pcts());
    });
    assert_eq!(n, 0, "HdrHist allocated {n} times in steady state");

    // Per-VC metrics: the top-K table is sized once at construction;
    // offers — hits, misses, and space-saving evictions alike — are
    // in-place.
    let mut m = VcMetrics::default();
    let n = allocs_during(|| {
        for i in 0..10_000u64 {
            m.record_cell((i % 4096) as u32, 53);
        }
    });
    assert_eq!(n, 0, "VcMetrics allocated {n} times in steady state");
    let mut k = TopK::new(8);
    let n = allocs_during(|| {
        for i in 0..10_000u64 {
            k.offer((i % 100) as u32, 1);
        }
    });
    assert_eq!(n, 0, "TopK allocated {n} times under eviction churn");

    // Sampling decisions are pure hashing; a kept event through the
    // NullTracer sink costs nothing either.
    let mut s = SamplingTracer::new(NullTracer, 1024, 42);
    let n = allocs_during(|| {
        for i in 0..10_000u32 {
            std::hint::black_box(s.keeps(i % 7, i / 13, i));
            s.record(TraceEvent::instant(Time::ZERO, Stage::TxSetup).pkt(i as usize));
        }
    });
    assert_eq!(n, 0, "SamplingTracer allocated {n} times in steady state");
}

#[test]
fn always_on_metrics_do_not_perturb_the_simulation() {
    // The telemetry plane is observational: every pre-existing report
    // field must be exactly what it was before the histograms and VC
    // counters rode along. Two identical runs agree trivially — the
    // real check is that the metrics-carrying report still satisfies
    // the cross-invariants the seed established.
    let r = rf1_tx_throughput::canonical_run();
    assert_eq!(
        r.latency_hist.count() as usize,
        20,
        "one histogram sample per completed packet"
    );
    assert_eq!(
        r.vc_cells.shards.total_cells(),
        r.cells_sent,
        "per-VC cell accounting must agree with the simulator's own count"
    );
    assert!(
        (r.latency_hist.mean() / 1e6 - r.packet_latency_us.mean()).abs()
            / r.packet_latency_us.mean()
            < 0.01,
        "histogram mean {} µs vs summary mean {} µs",
        r.latency_hist.mean() / 1e6,
        r.packet_latency_us.mean()
    );
    // And the histogram itself is recorded outside the event loop's
    // timing: re-running produces float-identical goodput.
    let again = rf1_tx_throughput::canonical_run();
    assert_eq!(r.goodput_bps.to_bits(), again.goodput_bps.to_bits());
    assert_eq!(r.cells_sent, again.cells_sent);
}

#[test]
fn steady_state_e2e_zero_allocations_zero_slab_growth() {
    let vc = VcId::new(0, 32);
    let n_sdus = 4usize;
    let len = 9180usize;
    let cells_per_sdu = hni_aal::AalType::Aal5.cells_for_sdu(len);
    let burst_cells = n_sdus * cells_per_sdu;

    let sdu: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
    let sdus: Vec<&[u8]> = (0..n_sdus).map(|_| sdu.as_slice()).collect();

    let mut slab = CellSlab::with_capacity(burst_cells);
    let mut refs: Vec<_> = Vec::with_capacity(burst_cells);
    let mut deliveries: Vec<LinkDelivery> = Vec::with_capacity(burst_cells);
    let mut done = Vec::with_capacity(n_sdus);
    let mut reasm = Aal5Reassembler::new(65_535, Duration::from_ms(100));
    let mut link = Link::new(622e6, Duration::from_us(10), FaultPlan::NONE, Rng::new(1));

    let round = |slab: &mut CellSlab,
                 refs: &mut Vec<hni_atm::CellRef>,
                 deliveries: &mut Vec<LinkDelivery>,
                 done: &mut Vec<_>,
                 reasm: &mut Aal5Reassembler,
                 link: &mut Link| {
        refs.clear();
        aal5::segment_burst(vc, &sdus, 0, slab, refs);
        deliveries.clear();
        link.send_burst(Time::ZERO, 424, refs.len(), deliveries);
        done.clear();
        reasm.deliver_burst(refs, slab, Time::ZERO, done);
        slab.free_all(refs);
        let mut delivered = 0;
        for r in done.drain(..) {
            let sdu = r.expect("clean path reassembles");
            delivered += 1;
            reasm.recycle(sdu.data);
        }
        delivered
    };

    // Warm-up: fills the slab free list, the reassembler's spare-buffer
    // pool, the link delivery vec and every scratch Vec's capacity.
    for _ in 0..3 {
        let d = round(
            &mut slab,
            &mut refs,
            &mut deliveries,
            &mut done,
            &mut reasm,
            &mut link,
        );
        assert_eq!(d, n_sdus);
    }
    let growth_before = slab.growth_events();
    let high_water = slab.high_water();

    // Steady state: many rounds, zero allocations on this thread, zero
    // slab growth.
    let n = allocs_during(|| {
        for _ in 0..50 {
            let d = round(
                &mut slab,
                &mut refs,
                &mut deliveries,
                &mut done,
                &mut reasm,
                &mut link,
            );
            assert_eq!(d, n_sdus);
        }
    });
    assert_eq!(n, 0, "steady-state e2e allocated {n} times");
    assert_eq!(
        slab.growth_events(),
        growth_before,
        "slab grew after warm-up"
    );
    assert_eq!(slab.high_water(), high_water, "slab high-water moved");
}
