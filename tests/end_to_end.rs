//! End-to-end integration: host A → NIC → SONET line → NIC → host B,
//! through every layer of the byte-exact data path.

use hni_aal::AalType;
use hni_atm::VcId;
use hni_core::{Nic, NicConfig, NicEvent};
use hni_sim::{Rng, Time};
use hni_sonet::LineRate;

/// Build a synchronized NIC pair.
fn pair(rate: LineRate, aal: AalType) -> (Nic, Nic) {
    let mut cfg = NicConfig::paper(rate);
    cfg.aal = aal;
    let mut a = Nic::new(cfg.clone());
    let mut b = Nic::new(cfg);
    for _ in 0..12 {
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
    }
    assert!(b.tc_receiver().aligner().is_synced());
    assert!(b.tc_receiver().delineator().is_synced());
    (a, b)
}

fn pump_until(a: &mut Nic, b: &mut Nic, want: usize, max_frames: usize) -> Vec<NicEvent> {
    let mut evs = Vec::new();
    let mut got = 0;
    for _ in 0..max_frames {
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
        while let Some(e) = b.poll() {
            if matches!(e, NicEvent::PacketReceived { .. }) {
                got += 1;
            }
            evs.push(e);
        }
        if got >= want {
            break;
        }
    }
    evs
}

#[test]
fn bulk_transfer_oc3_aal5() {
    bulk_transfer(LineRate::Oc3, AalType::Aal5);
}

#[test]
fn bulk_transfer_oc12_aal5() {
    bulk_transfer(LineRate::Oc12, AalType::Aal5);
}

#[test]
fn bulk_transfer_oc3_aal34() {
    bulk_transfer(LineRate::Oc3, AalType::Aal34);
}

fn bulk_transfer(rate: LineRate, aal: AalType) {
    let (mut a, mut b) = pair(rate, aal);
    let vc = VcId::new(1, 333);
    a.open_vc(vc).unwrap();
    b.open_vc(vc).unwrap();

    let mut rng = Rng::new(2024);
    let payloads: Vec<Vec<u8>> = (0..40)
        .map(|_| {
            let len = rng.range(0, 20_000) as usize;
            (0..len).map(|_| rng.next_u64() as u8).collect()
        })
        .collect();
    for p in &payloads {
        a.send(vc, p.clone(), Time::ZERO).unwrap();
    }
    let evs = pump_until(&mut a, &mut b, payloads.len(), 4000);
    let received: Vec<Vec<u8>> = evs
        .into_iter()
        .filter_map(|e| match e {
            NicEvent::PacketReceived { data, .. } => Some(data),
            _ => None,
        })
        .collect();
    assert_eq!(received.len(), payloads.len(), "{rate:?}/{aal}");
    // In-order, byte-exact delivery.
    assert_eq!(received, payloads, "{rate:?}/{aal}");
}

#[test]
fn many_vcs_interleave_on_one_line() {
    let (mut a, mut b) = pair(LineRate::Oc12, AalType::Aal5);
    let vcs: Vec<VcId> = (0..32).map(|i| VcId::new(i / 16, 100 + i)).collect();
    for &vc in &vcs {
        a.open_vc(vc).unwrap();
        b.open_vc(vc).unwrap();
    }
    for (i, &vc) in vcs.iter().enumerate() {
        a.send(vc, vec![i as u8; 1000 + i * 100], Time::ZERO)
            .unwrap();
    }
    let evs = pump_until(&mut a, &mut b, vcs.len(), 200);
    let mut seen = 0;
    for e in evs {
        if let NicEvent::PacketReceived { vc, data, .. } = e {
            let i = vcs.iter().position(|&v| v == vc).expect("known vc");
            assert_eq!(data.len(), 1000 + i * 100);
            assert!(data.iter().all(|&x| x == i as u8));
            seen += 1;
        }
    }
    assert_eq!(seen, vcs.len());
}

#[test]
fn aal34_mid_multiplexing_end_to_end() {
    let (mut a, mut b) = pair(LineRate::Oc3, AalType::Aal34);
    let vc = VcId::new(0, 70);
    a.open_vc(vc).unwrap();
    b.open_vc(vc).unwrap();
    // Ten "sources" share one VC via MIDs.
    for mid in 0..10u16 {
        a.send_with_mid(vc, mid, vec![mid as u8; 2000], Time::ZERO)
            .unwrap();
    }
    let evs = pump_until(&mut a, &mut b, 10, 200);
    let mut mids = Vec::new();
    for e in evs {
        if let NicEvent::PacketReceived { mid, data, .. } = e {
            assert_eq!(data, vec![mid as u8; 2000]);
            mids.push(mid);
        }
    }
    mids.sort_unstable();
    assert_eq!(mids, (0..10).collect::<Vec<_>>());
}

#[test]
fn byte_capacity_accounting_is_exact() {
    // Conservation law: every octet the framer pulls is a cell octet —
    // (data cells + idle cells) × 53 − still-queued backlog must equal
    // frames pulled × payload octets per frame.
    let cfg = NicConfig::paper(LineRate::Oc3);
    let mut a = Nic::new(cfg);
    let vc = VcId::new(0, 44);
    a.open_vc(vc).unwrap();
    a.send(vc, vec![1; 10_000], Time::ZERO).unwrap();
    let frames = 20u64;
    for _ in 0..frames {
        let f = a.frame_tick();
        assert_eq!(f.len(), LineRate::Oc3.frame_octets());
    }
    let tx = a.tc_transmitter();
    // 10_000 octets AAL5 → 209 cells.
    assert_eq!(tx.data_cells(), 209);
    let queued_octets = (tx.data_cells() + tx.idle_cells()) * 53;
    let pulled = queued_octets - tx.backlog_octets() as u64;
    assert_eq!(
        pulled,
        frames * LineRate::Oc3.payload_octets_per_frame() as u64
    );
}

#[test]
fn duplex_operation() {
    // Traffic flows both directions simultaneously over two fibres.
    let (mut a, mut b) = pair(LineRate::Oc3, AalType::Aal5);
    // Synchronize the reverse path too.
    for _ in 0..12 {
        let f = b.frame_tick();
        a.receive_line_octets(&f, Time::ZERO);
    }
    let vc = VcId::new(0, 80);
    a.open_vc(vc).unwrap();
    b.open_vc(vc).unwrap();

    a.send(vc, b"a to b".to_vec(), Time::ZERO).unwrap();
    b.send(vc, b"b to a".to_vec(), Time::ZERO).unwrap();
    let mut got_ab = None;
    let mut got_ba = None;
    for _ in 0..30 {
        let fa = a.frame_tick();
        let fb = b.frame_tick();
        b.receive_line_octets(&fa, Time::ZERO);
        a.receive_line_octets(&fb, Time::ZERO);
        while let Some(e) = b.poll() {
            if let NicEvent::PacketReceived { data, .. } = e {
                got_ab = Some(data);
            }
        }
        while let Some(e) = a.poll() {
            if let NicEvent::PacketReceived { data, .. } = e {
                got_ba = Some(data);
            }
        }
    }
    assert_eq!(got_ab.as_deref(), Some(&b"a to b"[..]));
    assert_eq!(got_ba.as_deref(), Some(&b"b to a"[..]));
}

#[test]
fn reassembly_timeout_recovers_the_vc() {
    let (mut a, mut b) = pair(LineRate::Oc3, AalType::Aal5);
    let vc = VcId::new(0, 90);
    a.open_vc(vc).unwrap();
    b.open_vc(vc).unwrap();

    // Deliver only the first frame of a large SDU, then stop (simulates
    // the transmitter dying mid-packet).
    a.send(vc, vec![9; 30_000], Time::ZERO).unwrap();
    let f = a.frame_tick();
    b.receive_line_octets(&f, Time::ZERO);
    // Time passes; the timeout (10 ms) fires.
    b.expire(Time::from_ms(50));
    let mut saw_timeout = false;
    while let Some(e) = b.poll() {
        if let NicEvent::ReceiveError(f) = e {
            assert_eq!(f.error, hni_aal::ReassemblyError::Timeout);
            saw_timeout = true;
        }
    }
    assert!(saw_timeout);

    // The VC must work again afterwards: flush the stale tail cells of
    // the dead SDU first (they will be rejected), then send fresh.
    while a.tx_backlog_cells() > 0 {
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::from_ms(50));
    }
    while b.poll().is_some() {}
    a.send(vc, b"fresh".to_vec(), Time::from_ms(51)).unwrap();
    let evs = pump_until(&mut a, &mut b, 1, 50);
    let delivered: Vec<_> = evs
        .iter()
        .filter_map(|e| match e {
            NicEvent::PacketReceived { data, .. } => Some(data.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(delivered, vec![b"fresh".to_vec()]);
}

#[test]
fn through_a_switch_hop_with_label_translation() {
    // host A ─OC-3─► switch node (VC 0/60 → 5/500) ─OC-3─► host B
    use hni_switch::{RouteEntry, SwitchConfig, SwitchNode};

    let rate = LineRate::Oc3;
    let cfg = NicConfig::paper(rate);
    let mut a = Nic::new(cfg.clone());
    let mut b = Nic::new(cfg);
    let mut node = SwitchNode::new(
        SwitchConfig {
            ports: 2,
            output_queue_cells: 1024,
            clp_threshold: 1024,
            efci_threshold: 1024,
        },
        rate,
    );
    let vc_in = VcId::new(0, 60);
    let vc_out = VcId::new(5, 500);
    a.open_vc(vc_in).unwrap();
    b.open_vc(vc_out).unwrap();
    node.fabric().add_route(
        0,
        vc_in,
        RouteEntry {
            out_port: 1,
            out_vc: vc_out,
        },
    );

    // Warm up both hops.
    for _ in 0..14 {
        let f = a.frame_tick();
        node.receive_frame(0, &f, Time::ZERO);
        let out = node.frame_tick(1, Time::ZERO);
        b.receive_line_octets(&out, Time::ZERO);
    }
    assert!(b.tc_receiver().delineator().is_synced());

    let payloads: Vec<Vec<u8>> = (0..10)
        .map(|i| (0..2000 + i * 333).map(|j| ((i + j) % 256) as u8).collect())
        .collect();
    for p in &payloads {
        a.send(vc_in, p.clone(), Time::ZERO).unwrap();
    }
    let mut received = Vec::new();
    for _ in 0..80 {
        let f = a.frame_tick();
        node.receive_frame(0, &f, Time::ZERO);
        let out = node.frame_tick(1, Time::ZERO);
        b.receive_line_octets(&out, Time::ZERO);
        while let Some(e) = b.poll() {
            if let NicEvent::PacketReceived { vc, data, .. } = e {
                assert_eq!(vc, vc_out, "label must arrive translated");
                received.push(data);
            }
        }
        if received.len() == payloads.len() {
            break;
        }
    }
    assert_eq!(received, payloads);
    // The switch's input card saw real delineation; nothing unroutable.
    assert_eq!(node.fabric().unroutable(), 0);
}
