//! Golden proofs for the closed-loop transport and the delay/jitter
//! link models, mirroring `tests/fault_golden.rs`:
//!
//! 1. **Jitterless means free** — a fixed-delay (or zero-delay) line
//!    makes *zero* RNG draws, and a faultless, jitterless closed-loop
//!    run draws no randomness anywhere (fault fates, jitter, timers).
//! 2. **Seeds pin everything** — a transport run is a pure function of
//!    (config, seed): byte-identical reports across reruns, on every
//!    delay preset, including the ≥ 560 ms-RTT satellite path.
//! 3. **Worker counts are invisible** — the R-W1 sweep is identical
//!    under `HNI_JOBS` 1 and 4: parallelism must never leak into a
//!    published number.

use hni_bench::experiments::rw1_transport;
use hni_faults::{scenarios, DelayLine, DelayModel, FaultPlan};
use hni_sim::Duration;
use hni_sonet::LineRate;
use hni_transport::{run_transport, TransportConfig};

fn small_cfg() -> TransportConfig {
    let mut cfg = TransportConfig::paper(LineRate::Oc3);
    cfg.n_vcs = 2;
    cfg.frames_per_vc = 8;
    cfg.frame_len = 512;
    cfg
}

#[test]
fn jitterless_delay_lines_never_touch_the_rng() {
    for model in [
        DelayModel::NONE,
        DelayModel::fixed(Duration::from_us(5)),
        scenarios::lan_path(), // fixed 5 µs: the LAN preset is jitterless
    ] {
        let mut line = DelayLine::seeded(model, 1234);
        for _ in 0..10_000 {
            assert_eq!(line.delay(), model.base);
        }
        assert_eq!(line.rng_draws(), 0, "{model:?} drew randomness");
    }
}

#[test]
fn jittered_delay_lines_are_pure_functions_of_model_and_seed() {
    for model in [scenarios::wan_path(), scenarios::satellite_path()] {
        let mut a = DelayLine::seeded(model, 42);
        let mut b = DelayLine::seeded(model, 42);
        let mut c = DelayLine::seeded(model, 43);
        let mut diverged = false;
        for _ in 0..10_000 {
            let da = a.delay();
            assert_eq!(da, b.delay(), "same seed must replay the same jitter");
            assert!(da >= model.base && da <= model.max_delay());
            diverged |= da != c.delay();
        }
        assert!(a.rng_draws() > 0, "jitter without randomness");
        assert!(diverged, "different seeds must produce different jitter");
    }
}

#[test]
fn faultless_jitterless_transport_draws_nothing() {
    for path in [DelayModel::NONE, scenarios::lan_path()] {
        let cfg = small_cfg().with_path(path);
        let r = run_transport(&cfg);
        assert_eq!(r.rng_draws, 0, "{path:?}: clean path drew randomness");
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.delivered_frames, r.offered_frames);
        assert!(r.ledger.reconciles(), "{:?}", r.ledger);
        assert_eq!(r.ledger.injected_retx, 0);
    }
}

#[test]
fn transport_runs_are_pure_functions_of_config_and_seed() {
    for path in [
        scenarios::lan_path(),
        scenarios::wan_path(),
        scenarios::satellite_path(),
    ] {
        let mut cfg = small_cfg();
        cfg.fwd_plan = FaultPlan::loss(0.02);
        cfg.rev_plan = FaultPlan::loss(0.02);
        let cfg = cfg.with_path(path);
        let a = run_transport(&cfg);
        let b = run_transport(&cfg);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "{path:?}: reruns diverged"
        );
        let mut other = cfg;
        other.seed = cfg.seed ^ 1;
        let c = run_transport(&other);
        assert_ne!(
            format!("{a:?}"),
            format!("{c:?}"),
            "{path:?}: seeds do not matter"
        );
    }
}

#[test]
fn wan_sweep_is_identical_across_worker_counts() {
    let serial = rw1_transport::sweep_wan_with_jobs(1);
    let parallel = rw1_transport::sweep_wan_with_jobs(4);
    assert_eq!(serial, parallel, "HNI_JOBS leaked into the R-W1 WAN sweep");
}

#[test]
fn overload_point_is_identical_across_worker_counts() {
    // One overload point exercised both ways; ci.sh compares the whole
    // rendered report across HNI_JOBS on top of this.
    let a = rw1_transport::measure_overload(rw1_transport::OVERLOAD_LOSSES[0], 8);
    let b = rw1_transport::measure_overload(rw1_transport::OVERLOAD_LOSSES[0], 8);
    assert_eq!(a, b, "overload measurement is not reproducible");
}
