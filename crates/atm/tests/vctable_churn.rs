//! Chaos churn for the [`VcTable`] slab arena's generation counters.
//!
//! Thousands of seeded open/close/lookup operations, model-checked
//! against a `std` HashMap reference. The property under attack is the
//! no-ABA guarantee: a handle taken before its connection closes must
//! miss forever afterwards — even when the arena entry has been
//! recycled for a different connection — and a live handle must always
//! dereference to *its* connection's state, never a neighbour's.
//!
//! Every inserted value carries a globally unique stamp, so any
//! aliasing (stale handle resolving, probe chain corrupted by
//! backward-shift deletion, recycled entry leaking) produces a visible
//! wrong stamp rather than a silently plausible value.

use hni_atm::{VcHandle, VcTable};
use hni_sim::Rng;
use std::collections::HashMap;

const SEEDS: [u64; 4] = [1991, 20260808, 0xDEAD_BEEF, 7];
const OPS: usize = 30_000;
const KEY_SPACE: u64 = 512; // small key space → heavy recycle pressure

#[test]
fn churn_never_aliases_and_matches_reference_model() {
    for seed in SEEDS {
        churn(seed);
    }
}

fn churn(seed: u64) {
    let mut rng = Rng::new(seed);
    let mut table: VcTable<u64> = VcTable::new();
    // Reference model: key → stamp for live keys.
    let mut model: HashMap<u64, u64> = HashMap::new();
    // Live handle per key, taken at open time.
    let mut live: HashMap<u64, VcHandle> = HashMap::new();
    // Every handle ever issued, with the stamp it was issued for.
    // Once its key closes, the handle joins the stale set forever.
    let mut stale: Vec<(VcHandle, u64)> = Vec::new();
    let mut next_stamp: u64 = 0;

    for op in 0..OPS {
        let key = rng.below(KEY_SPACE);
        match rng.below(10) {
            // open (or reopen) — 40%
            0..=3 => {
                let stamp = next_stamp;
                next_stamp += 1;
                let h = table.insert(key, stamp).expect("unbounded insert");
                if let Some(old) = live.insert(key, h) {
                    // Upsert: same connection, handle must be unchanged.
                    assert_eq!(old, h, "seed {seed} op {op}: upsert moved the entry");
                }
                model.insert(key, stamp);
            }
            // close — 30%
            4..=6 => {
                let removed = table.remove(key);
                assert_eq!(
                    removed,
                    model.remove(&key),
                    "seed {seed} op {op}: remove disagrees with model"
                );
                if let Some(h) = live.remove(&key) {
                    let stamp = removed.expect("model said it was live");
                    stale.push((h, stamp));
                }
            }
            // lookup — 30%
            _ => {
                assert_eq!(
                    table.get_by_key(key),
                    model.get(&key),
                    "seed {seed} op {op}: lookup disagrees with model"
                );
            }
        }

        // Every live handle resolves to exactly its own stamp.
        if op % 512 == 0 {
            for (k, &h) in &live {
                assert_eq!(
                    table.get(h),
                    model.get(k),
                    "seed {seed} op {op}: live handle wrong for key {k}"
                );
            }
        }
        // Every stale handle misses — forever, across recycling.
        if op % 128 == 0 {
            for &(h, stamp) in &stale {
                assert_eq!(
                    table.get(h),
                    None,
                    "seed {seed} op {op}: stale handle (stamp {stamp}) resolved \
                     — generation counter failed, ABA aliasing"
                );
            }
        }
    }

    // Final full sweep: model equivalence both ways.
    assert_eq!(table.len(), model.len(), "seed {seed}: final size");
    for (k, v) in &model {
        assert_eq!(table.get_by_key(*k), Some(v), "seed {seed}: final key {k}");
    }
    let mut from_table: Vec<(u64, u64)> = table.iter().map(|(k, &v)| (k, v)).collect();
    let mut from_model: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    from_table.sort_unstable();
    from_model.sort_unstable();
    assert_eq!(from_table, from_model, "seed {seed}: iteration set");
    for (h, _) in stale {
        assert_eq!(table.get(h), None, "seed {seed}: stale handle at end");
    }
    // The tight key space must actually have exercised recycling.
    assert!(
        table.stats().recycled > 0,
        "seed {seed}: churn never recycled an arena entry"
    );
}

#[test]
fn stale_handle_misses_across_many_recycles_of_same_slot() {
    // One key, closed and reopened many times: a handle from each
    // epoch must keep missing through every later epoch, including
    // generation values far from where the handle was issued.
    let mut table: VcTable<u32> = VcTable::new();
    let mut old_handles = Vec::new();
    for epoch in 0..1000u32 {
        let h = table.insert(42, epoch).expect("insert");
        for &(oh, oe) in &old_handles {
            assert_eq!(
                table.get(oh),
                None,
                "epoch {epoch}: handle from epoch {oe} resolved"
            );
        }
        assert_eq!(table.get(h), Some(&epoch));
        table.remove(42);
        old_handles.push((h, epoch));
    }
}
