//! Fuzz equivalence: the delineator's burst fast path (`push_slice`)
//! must be **byte-identical** to the bit-exact reference loop
//! (`push_bytes`) — same cells, same counters, same final state — over
//! random streams containing clean cells, garbage bursts, bit-shifted
//! (non-byte-aligned) sections and random bit errors, regardless of how
//! the input is chunked.

use hni_atm::{Cell, Delineator, HeaderRepr, SyncState, VcId, PAYLOAD_SIZE};

/// Tiny deterministic generator (xorshift), no dev-dep needed.
struct Xs(u64);

impl Xs {
    fn new(seed: u64) -> Self {
        Xs(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_cell(rng: &mut Xs) -> Cell {
    let vci = 32 + (rng.next() % 2000) as u16;
    let mut payload = [0u8; PAYLOAD_SIZE];
    for b in payload.iter_mut() {
        *b = rng.next() as u8;
    }
    Cell::new(&HeaderRepr::data(VcId::new(0, vci), false), &payload).unwrap()
}

/// Shift a stream right by `shift` bits (prepending zero bits).
fn shift_bits(bytes: &[u8], shift: usize) -> Vec<u8> {
    let mut out = vec![0u8; 0];
    let mut carry = 0u16;
    let mut nbits = shift % 8;
    for &b in bytes {
        carry = (carry << 8) | b as u16;
        nbits += 8;
        while nbits >= 8 {
            out.push((carry >> (nbits - 8)) as u8);
            nbits -= 8;
            carry &= (1 << nbits) - 1;
        }
    }
    if nbits > 0 {
        out.push((carry << (8 - nbits)) as u8);
    }
    out
}

/// A stream of random sections: clean cell runs, garbage bursts,
/// bit-shifted cell runs, plus sparse random bit flips over the whole
/// thing.
fn random_stream(rng: &mut Xs) -> Vec<u8> {
    let mut stream = Vec::new();
    for _ in 0..2 + rng.below(4) {
        match rng.below(3) {
            0 => {
                // Clean aligned cells.
                for _ in 0..10 + rng.below(30) {
                    stream.extend_from_slice(random_cell(rng).as_bytes());
                }
            }
            1 => {
                // Garbage burst (drives SYNC loss and HUNT churn).
                for _ in 0..rng.below(300) {
                    stream.push(rng.next() as u8);
                }
            }
            _ => {
                // Bit-shifted cell run: non-byte-aligned acquisition.
                let mut run = Vec::new();
                for _ in 0..10 + rng.below(20) {
                    run.extend_from_slice(random_cell(rng).as_bytes());
                }
                stream.extend_from_slice(&shift_bits(&run, 1 + rng.below(7)));
            }
        }
    }
    // Sparse random bit errors (~1e-4), exercising HEC correction,
    // detection-mode discards and ALPHA loss runs.
    let total_bits = stream.len() * 8;
    for _ in 0..total_bits / 10_000 {
        let bit = rng.below(total_bits);
        stream[bit / 8] ^= 0x80 >> (bit % 8);
    }
    stream
}

fn assert_equivalent(stream: &[u8], rng: &mut Xs, emit_idle: bool, seed: u64) {
    let (mut bit, mut burst) = if emit_idle {
        (
            Delineator::new().with_idle_cells(),
            Delineator::new().with_idle_cells(),
        )
    } else {
        (Delineator::new(), Delineator::new())
    };
    let (mut out_bit, mut out_burst) = (Vec::new(), Vec::new());
    bit.push_bytes(stream, &mut out_bit);
    // Feed the burst side in random ragged chunks: equivalence must not
    // depend on where call boundaries fall.
    let mut i = 0;
    while i < stream.len() {
        let n = (1 + rng.below(97)).min(stream.len() - i);
        burst.push_slice(&stream[i..i + n], &mut out_burst);
        i += n;
    }

    assert_eq!(out_bit.len(), out_burst.len(), "seed {seed}: cell count");
    for (k, (a, b)) in out_bit.iter().zip(&out_burst).enumerate() {
        assert_eq!(a.as_bytes(), b.as_bytes(), "seed {seed}: cell {k}");
    }
    assert_eq!(bit.state(), burst.state(), "seed {seed}");
    assert_eq!(bit.bits_consumed(), burst.bits_consumed(), "seed {seed}");
    assert_eq!(bit.acquisitions(), burst.acquisitions(), "seed {seed}");
    assert_eq!(bit.losses(), burst.losses(), "seed {seed}");
    assert_eq!(
        bit.last_acquisition_bits(),
        burst.last_acquisition_bits(),
        "seed {seed}"
    );
    assert_eq!(bit.delivered(), burst.delivered(), "seed {seed}");
    assert_eq!(
        bit.discarded_in_sync(),
        burst.discarded_in_sync(),
        "seed {seed}"
    );
    assert_eq!(
        bit.hec_receiver().accepted(),
        burst.hec_receiver().accepted(),
        "seed {seed}"
    );
    assert_eq!(
        bit.hec_receiver().corrected(),
        burst.hec_receiver().corrected(),
        "seed {seed}"
    );
    assert_eq!(
        bit.hec_receiver().discarded(),
        burst.hec_receiver().discarded(),
        "seed {seed}"
    );
}

#[test]
fn burst_path_equals_bit_path_over_random_streams() {
    for seed in 0..60u64 {
        let mut rng = Xs::new(seed);
        let stream = random_stream(&mut rng);
        assert_equivalent(&stream, &mut rng, seed % 2 == 0, seed);
    }
}

#[test]
fn burst_path_equals_bit_path_on_heavily_errored_stream() {
    // Dense errors: ALPHA loss runs, re-hunts, straddled reacquisitions.
    for seed in 100..115u64 {
        let mut rng = Xs::new(seed);
        let mut stream = Vec::new();
        for _ in 0..200 {
            stream.extend_from_slice(random_cell(&mut rng).as_bytes());
        }
        let total_bits = stream.len() * 8;
        for _ in 0..total_bits / 400 {
            let bit = rng.below(total_bits);
            stream[bit / 8] ^= 0x80 >> (bit % 8);
        }
        assert_equivalent(&stream, &mut rng, false, seed);
    }
}

#[test]
fn burst_path_equals_bit_path_byte_by_byte() {
    // Degenerate chunking: push_slice one byte at a time must still
    // match (the fast path engages per byte once aligned in SYNC).
    let mut rng = Xs::new(42);
    let mut stream = Vec::new();
    for _ in 0..40 {
        stream.extend_from_slice(random_cell(&mut rng).as_bytes());
    }
    let (mut bit, mut burst) = (Delineator::new(), Delineator::new());
    let (mut out_bit, mut out_burst) = (Vec::new(), Vec::new());
    bit.push_bytes(&stream, &mut out_bit);
    for &b in &stream {
        burst.push_slice(std::slice::from_ref(&b), &mut out_burst);
    }
    assert_eq!(out_bit.len(), out_burst.len());
    for (a, b) in out_bit.iter().zip(&out_burst) {
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
    assert_eq!(bit.bits_consumed(), burst.bits_consumed());
    assert_eq!(bit.state(), burst.state());
}

#[test]
fn sync_state_is_comparable() {
    // SyncState is part of the equivalence contract; pin its variants.
    assert_eq!(SyncState::Hunt, SyncState::Hunt);
    assert_ne!(SyncState::Hunt, SyncState::Presync { good: 0 });
}
