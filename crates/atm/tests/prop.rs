//! Property-based tests for the ATM cell layer.

use hni_atm::{
    cell::{HeaderFormat, HeaderRepr, Pti},
    hec, Cell, Delineator, Descrambler, Gcra, Scrambler, VcId, CELL_SIZE, PAYLOAD_SIZE,
};
use hni_sim::{Duration, Time};
use proptest::prelude::*;

fn arb_header() -> impl Strategy<Value = HeaderRepr> {
    (0u8..16, 0u16..256, any::<u16>(), 0u8..8, any::<bool>()).prop_map(
        |(gfc, vpi, vci, pti_bits, clp)| HeaderRepr {
            format: HeaderFormat::Uni,
            gfc,
            vpi,
            vci,
            pti: Pti::from_bits(pti_bits),
            clp,
        },
    )
}

proptest! {
    /// Any in-range header emits and re-parses identically.
    #[test]
    fn header_roundtrip(h in arb_header()) {
        let mut bytes = [0u8; 5];
        h.emit(&mut bytes).unwrap();
        let parsed = HeaderRepr::parse(&bytes, HeaderFormat::Uni).unwrap();
        prop_assert_eq!(parsed, h);
    }

    /// NNI headers (12-bit VPI) also roundtrip.
    #[test]
    fn header_roundtrip_nni(vpi in 0u16..4096, vci in any::<u16>(), clp in any::<bool>()) {
        let h = HeaderRepr {
            format: HeaderFormat::Nni,
            gfc: 0,
            vpi,
            vci,
            pti: Pti::UserData { congestion: false, last: true },
            clp,
        };
        let mut bytes = [0u8; 5];
        h.emit(&mut bytes).unwrap();
        prop_assert_eq!(HeaderRepr::parse(&bytes, HeaderFormat::Nni).unwrap(), h);
    }

    /// The HEC corrects every single-bit error on any valid header.
    #[test]
    fn hec_corrects_any_single_bit(h in arb_header(), bit in 0u8..40) {
        let mut bytes = [0u8; 5];
        h.emit(&mut bytes).unwrap();
        let good = bytes;
        hec::flip_bit(&mut bytes, bit);
        match hec::check(&bytes) {
            hec::HecResult::SingleBit { bit: b } => prop_assert_eq!(b, bit),
            other => prop_assert!(false, "expected SingleBit, got {:?}", other),
        }
        hec::flip_bit(&mut bytes, bit);
        prop_assert_eq!(bytes, good);
    }

    /// No double-bit error on a valid header is ever accepted or
    /// "corrected" into silence: check() must return Uncorrectable.
    #[test]
    fn hec_detects_any_double_bit(h in arb_header(), b1 in 0u8..40, b2 in 0u8..40) {
        prop_assume!(b1 != b2);
        let mut bytes = [0u8; 5];
        h.emit(&mut bytes).unwrap();
        hec::flip_bit(&mut bytes, b1);
        hec::flip_bit(&mut bytes, b2);
        prop_assert_eq!(hec::check(&bytes), hec::HecResult::Uncorrectable);
    }

    /// Scramble → descramble is the identity for any data, any chunking.
    #[test]
    fn scrambler_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096),
                           chunk in 1usize..97) {
        let mut s = Scrambler::new();
        let mut d = Descrambler::new();
        let mut buf = data.clone();
        for piece in buf.chunks_mut(chunk) {
            s.scramble(piece);
        }
        for piece in buf.chunks_mut(chunk) {
            d.descramble(piece);
        }
        prop_assert_eq!(buf, data);
    }

    /// The delineator acquires sync on any cell stream at any bit
    /// offset, and every delivered cell is one of the originals.
    #[test]
    fn delineation_from_any_bit_offset(
        fills in proptest::collection::vec(any::<u8>(), 12..30),
        offset_bits in 0usize..48,
    ) {
        let cells: Vec<Cell> = fills
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                Cell::new(
                    &HeaderRepr::data(VcId::new(0, 32 + (i as u16 % 100)), false),
                    &[f; PAYLOAD_SIZE],
                )
                .unwrap()
            })
            .collect();
        let mut bits: Vec<u8> = Vec::new();
        // `offset_bits` leading zero bits, then the cells, bit-packed.
        let mut acc: u32 = 0;
        let mut n = offset_bits % 8;
        // Leading zero bytes for the whole-byte part of the offset.
        bits.resize(offset_bits / 8, 0);
        for cell in &cells {
            for &byte in cell.as_bytes().iter() {
                acc = (acc << 8) | byte as u32;
                n += 8;
                while n >= 8 {
                    bits.push((acc >> (n - 8)) as u8);
                    n -= 8;
                    acc &= (1 << n) - 1;
                }
            }
        }
        if n > 0 {
            bits.push((acc << (8 - n)) as u8);
        }
        let mut d = Delineator::new();
        let mut out = Vec::new();
        d.push_bytes(&bits, &mut out);
        prop_assert!(d.is_synced(), "must sync on a clean stream");
        // Everything delivered must be an original cell, in order.
        let originals: Vec<&[u8; CELL_SIZE]> = cells.iter().map(|c| c.as_bytes()).collect();
        let mut cursor = 0;
        for got in &out {
            let pos = originals[cursor..]
                .iter()
                .position(|o| *o == got.as_bytes());
            prop_assert!(pos.is_some(), "delivered cell not among originals (in order)");
            cursor += pos.unwrap() + 1;
        }
        // At most 7 cells consumed by acquisition.
        prop_assert!(out.len() + 7 >= cells.len());
    }

    /// A GCRA-shaped departure stream always conforms at a policer with
    /// the same parameters, regardless of source readiness pattern.
    #[test]
    fn shaped_stream_conforms(
        t_ns in 50u64..5000,
        tau_ns in 0u64..10_000,
        gaps in proptest::collection::vec(0u64..10_000, 1..200),
    ) {
        let t = Duration::from_ns(t_ns);
        let tau = Duration::from_ns(tau_ns);
        let mut shaper = Gcra::new(t, tau);
        let mut policer = Gcra::new(t, tau);
        let mut now = Time::ZERO;
        for gap in gaps {
            now += Duration::from_ns(gap);
            let at = shaper.earliest_conforming(now);
            shaper.stamp(at);
            prop_assert!(policer.conforms(at));
        }
    }

    /// Cells always hold their payload verbatim.
    #[test]
    fn cell_payload_verbatim(payload in proptest::collection::vec(any::<u8>(), PAYLOAD_SIZE)) {
        let mut p = [0u8; PAYLOAD_SIZE];
        p.copy_from_slice(&payload);
        let cell = Cell::new(&HeaderRepr::data(VcId::new(1, 99), true), &p).unwrap();
        prop_assert_eq!(cell.payload(), &payload[..]);
    }
}
