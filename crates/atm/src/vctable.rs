//! The million-VC connection table: a sharded, cache-conscious map from
//! the packed VPI/VCI key to per-connection state.
//!
//! The paper answers "which connection owns this cell?" every ~708 ns
//! with a small CAM — all entries compared in parallel, bounded
//! capacity, a handful of VCs. Scaling that question three orders of
//! magnitude (the ROADMAP's "millions of users") needs a software
//! structure with the same properties the CAM bought in silicon:
//! *flat* lookup cost regardless of population, *bounded* memory per
//! idle connection, and *O(1)* open/close so connection churn never
//! stalls the cell path. `std::collections::HashMap` gives none of
//! these guarantees per entry: SipHash per probe, ~48+ bytes of
//! overhead per occupied bucket, and amortised-but-spiky growth.
//!
//! [`VcTable`] provides them with three pieces:
//!
//! * **Open addressing with an 8-bit tag array.** Each shard keeps a
//!   separate `tags` byte array (one byte per slot: empty, or occupied
//!   with a 7-bit key fingerprint). A probe touches the dense tag
//!   array first — one cache line filters 64 slots, the same
//!   SIMD-friendly layout Swiss tables use — and only compares the
//!   full key on a fingerprint match. Linear probing with
//!   backward-shift deletion keeps probe chains short with no
//!   tombstone accumulation.
//! * **Slab arenas with generation-counted handles.** Connection state
//!   lives in a flat entry arena; the index arrays store 32-bit entry
//!   ids. Closing a connection pushes its entry on a free list and
//!   bumps the entry's generation, so a [`VcHandle`] held across a
//!   close/reopen can never alias the new occupant (no ABA): a stale
//!   handle simply misses.
//! * **Power-of-two sharding by key hash.** The key space is split
//!   across [`SHARDS`] independent sub-tables selected by the low
//!   hash bits. Today this bounds rehash pauses (a shard doubles, not
//!   the world); tomorrow it is the unit of ownership for multi-lane
//!   parallel simulation (one lane owns a shard subset, no sharing).
//!
//! Keys are `u64` so one table type serves both the 24-bit
//! [`crate::VcId::cam_key`] space and composite keys like AAL3/4's
//! (VC, MID) pairs. The hash is a fixed SplitMix64 finalizer —
//! deterministic across runs, platforms and worker counts, which the
//! byte-identical-report contract requires (a `HashMap`'s per-process
//! random seed would at minimum randomise iteration order).

/// Number of independent shards (power of two).
pub const SHARDS: usize = 16;

/// Slots a fresh shard starts with (power of two).
const MIN_SHARD_SLOTS: usize = 8;

/// Grow a shard once it is more than 7/8 full.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// Tag byte for an empty slot. Occupied slots store `0x80 | fp7`.
const EMPTY: u8 = 0;

/// SplitMix64 finalizer: the fixed, seedless mix every key goes
/// through. Full-avalanche, so the low bits (shard select) and the
/// remaining bits (slot index, fingerprint) are independent.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// 7-bit key fingerprint with the occupancy bit set.
#[inline]
fn fingerprint(h: u64) -> u8 {
    ((h >> 57) as u8) | 0x80
}

/// A generation-counted handle to an entry in a [`VcTable`].
///
/// Handles stay valid until the connection they name is removed; after
/// that they *miss* forever, even if the arena slot is recycled for a
/// new connection (the generation check). Cheap to copy and store —
/// eight bytes — so data paths can hold handles instead of re-probing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VcHandle {
    idx: u32,
    gen: u32,
}

impl VcHandle {
    /// The raw arena index (stable for the handle's lifetime).
    pub fn index(self) -> usize {
        self.idx as usize
    }
    /// The generation this handle was issued under.
    pub fn generation(self) -> u32 {
        self.gen
    }
}

/// One arena entry: the slot's current generation plus the value.
/// `val` is `None` only while the entry sits on the free list.
struct Entry<T> {
    gen: u32,
    val: Option<T>,
}

/// One open-addressing sub-table: parallel tag/key/entry-id arrays.
struct Shard {
    tags: Vec<u8>,
    keys: Vec<u64>,
    ids: Vec<u32>,
    len: usize,
}

impl Shard {
    fn with_slots(slots: usize) -> Self {
        debug_assert!(slots.is_power_of_two());
        Shard {
            tags: vec![EMPTY; slots],
            keys: vec![0; slots],
            ids: vec![0; slots],
            len: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.tags.len() - 1
    }

    /// Home slot for a hashed key (the shard-select bits are the low
    /// bits of `h`; slot position uses the bits above them).
    #[inline]
    fn home(&self, h: u64) -> usize {
        ((h >> SHARDS.trailing_zeros()) as usize) & self.mask()
    }

    /// Probe for `key`. Returns `(slot, probes)` where `slot` is
    /// `Ok(i)` on a hit and `Err(i)` at the first empty slot on a miss.
    #[inline]
    fn probe(&self, h: u64, key: u64) -> (Result<usize, usize>, u64) {
        let fp = fingerprint(h);
        let mask = self.mask();
        let mut i = self.home(h);
        let mut probes = 1u64;
        loop {
            let tag = self.tags[i];
            if tag == EMPTY {
                return (Err(i), probes);
            }
            if tag == fp && self.keys[i] == key {
                return (Ok(i), probes);
            }
            i = (i + 1) & mask;
            probes += 1;
        }
    }

    /// Insert into a slot `probe` reported empty.
    fn fill(&mut self, slot: usize, h: u64, key: u64, id: u32) {
        debug_assert_eq!(self.tags[slot], EMPTY);
        self.tags[slot] = fingerprint(h);
        self.keys[slot] = key;
        self.ids[slot] = id;
        self.len += 1;
    }

    /// Remove the occupant of `slot` with backward-shift deletion:
    /// subsequent probe-chain members whose home slot precedes the gap
    /// slide back one position, so chains stay dense and no tombstones
    /// are needed.
    fn evict(&mut self, slot: usize) -> u32 {
        let id = self.ids[slot];
        let mask = self.mask();
        let mut gap = slot;
        let mut i = (slot + 1) & mask;
        while self.tags[i] != EMPTY {
            let home = self.home(mix64(self.keys[i]));
            // Distance from the occupant's home to its current slot,
            // and to the gap; if the gap is on the way home, shift.
            let cur_dist = i.wrapping_sub(home) & mask;
            let gap_dist = gap.wrapping_sub(home) & mask;
            if gap_dist <= cur_dist {
                self.tags[gap] = self.tags[i];
                self.keys[gap] = self.keys[i];
                self.ids[gap] = self.ids[i];
                gap = i;
            }
            i = (i + 1) & mask;
        }
        self.tags[gap] = EMPTY;
        self.len -= 1;
        id
    }

    /// Whether one more entry would push past the load factor.
    #[inline]
    fn needs_growth(&self) -> bool {
        (self.len + 1) * LOAD_DEN > self.tags.len() * LOAD_NUM
    }

    /// Double the slot count and re-place every occupant.
    fn grow(&mut self) {
        let new_slots = self.tags.len() * 2;
        let old_tags = std::mem::replace(&mut self.tags, vec![EMPTY; new_slots]);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_slots]);
        let old_ids = std::mem::replace(&mut self.ids, vec![0; new_slots]);
        self.len = 0;
        for (i, &tag) in old_tags.iter().enumerate() {
            if tag != EMPTY {
                let key = old_keys[i];
                let h = mix64(key);
                let (slot, _) = self.probe(h, key);
                let slot = slot.expect_err("rehash target must be empty");
                self.fill(slot, h, key, old_ids[i]);
            }
        }
    }

    fn slot_bytes(&self) -> usize {
        self.tags.len()
            * (std::mem::size_of::<u8>() + std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
    }
}

/// Aggregate table statistics (for reports and shape tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TableStats {
    /// Entries currently installed.
    pub len: usize,
    /// Lookups performed (hits and misses).
    pub lookups: u64,
    /// Total probe steps across all lookups (`probes / lookups` is the
    /// mean probe-chain length; 1.0 means every lookup hit its home
    /// slot).
    pub probes: u64,
    /// Arena entries recycled off the free list (each is one
    /// generation bump — an open that reused a closed connection's
    /// slot in O(1)).
    pub recycled: u64,
    /// Resident bytes: index arrays plus entry arena plus free list.
    pub memory_bytes: usize,
}

impl TableStats {
    /// Mean probe steps per lookup (1.0 = every lookup home-slot direct).
    pub fn mean_probes(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.probes as f64 / self.lookups as f64
        }
    }
}

/// Sharded open-addressing map: packed VC key → connection state.
///
/// See the [module docs](self) for the design. Unless constructed with
/// [`VcTable::bounded`], the table grows shard-by-shard as needed; a
/// bounded table refuses inserts past its capacity — the CAM semantics
/// `hni_core::cam::Cam` builds on.
pub struct VcTable<T> {
    shards: Vec<Shard>,
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    max_entries: Option<usize>,
    lookups: u64,
    probes: u64,
    recycled: u64,
}

impl<T> Default for VcTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> VcTable<T> {
    /// An empty, unbounded table (grows as connections open).
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An unbounded table pre-sized so the first `capacity` inserts
    /// trigger no shard growth.
    pub fn with_capacity(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS);
        // Smallest power of two that keeps `per_shard` under load.
        let mut slots = MIN_SHARD_SLOTS;
        while per_shard * LOAD_DEN > slots * LOAD_NUM {
            slots *= 2;
        }
        VcTable {
            shards: (0..SHARDS).map(|_| Shard::with_slots(slots)).collect(),
            entries: Vec::with_capacity(capacity),
            free: Vec::new(),
            max_entries: None,
            lookups: 0,
            probes: 0,
            recycled: 0,
        }
    }

    /// A capacity-bounded table: inserts of new keys fail once
    /// `max_entries` connections are installed (the CAM's "full"
    /// condition).
    pub fn bounded(max_entries: usize) -> Self {
        let mut t = Self::with_capacity(max_entries);
        t.max_entries = Some(max_entries);
        t
    }

    /// Entries currently installed.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len).sum()
    }

    /// Whether no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.len == 0)
    }

    /// The capacity bound, if this table has one.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    #[inline]
    fn shard_of(h: u64) -> usize {
        (h as usize) & (SHARDS - 1)
    }

    /// Look up `key`, returning a generation-counted handle on a hit.
    /// Counts one lookup and its probe steps.
    #[inline]
    pub fn find(&mut self, key: u64) -> Option<VcHandle> {
        let h = mix64(key);
        let shard = &self.shards[Self::shard_of(h)];
        let (slot, probes) = shard.probe(h, key);
        self.lookups += 1;
        self.probes += probes;
        match slot {
            Ok(i) => {
                let idx = shard.ids[i];
                Some(VcHandle {
                    idx,
                    gen: self.entries[idx as usize].gen,
                })
            }
            Err(_) => None,
        }
    }

    /// Look up `key` and borrow its state.
    #[inline]
    pub fn get_by_key(&mut self, key: u64) -> Option<&T> {
        let h = self.find(key)?;
        self.entries[h.idx as usize].val.as_ref()
    }

    /// Look up `key` and mutably borrow its state.
    #[inline]
    pub fn get_mut_by_key(&mut self, key: u64) -> Option<&mut T> {
        let h = self.find(key)?;
        self.entries[h.idx as usize].val.as_mut()
    }

    /// Dereference a handle. Returns `None` if the connection it names
    /// has been closed since (generation mismatch), even if the arena
    /// slot now holds a different connection — the no-ABA guarantee.
    #[inline]
    pub fn get(&self, h: VcHandle) -> Option<&T> {
        let e = self.entries.get(h.idx as usize)?;
        if e.gen == h.gen {
            e.val.as_ref()
        } else {
            None
        }
    }

    /// Mutable [`VcTable::get`].
    #[inline]
    pub fn get_mut(&mut self, h: VcHandle) -> Option<&mut T> {
        let e = self.entries.get_mut(h.idx as usize)?;
        if e.gen == h.gen {
            e.val.as_mut()
        } else {
            None
        }
    }

    /// Install `key → val`, replacing any existing state for the key
    /// in place (same handle, same generation). Returns `None` — and
    /// installs nothing — only when the key is new and the table is at
    /// its capacity bound.
    pub fn insert(&mut self, key: u64, val: T) -> Option<VcHandle> {
        let h = mix64(key);
        let si = Self::shard_of(h);
        let (slot, probes) = self.shards[si].probe(h, key);
        self.lookups += 1;
        self.probes += probes;
        match slot {
            Ok(i) => {
                let idx = self.shards[si].ids[i];
                let e = &mut self.entries[idx as usize];
                e.val = Some(val);
                Some(VcHandle { idx, gen: e.gen })
            }
            Err(mut empty) => {
                if let Some(max) = self.max_entries {
                    if self.len() >= max {
                        return None;
                    }
                }
                if self.shards[si].needs_growth() {
                    self.shards[si].grow();
                    let (slot, _) = self.shards[si].probe(h, key);
                    empty = slot.expect_err("key cannot appear during growth");
                }
                let handle = match self.free.pop() {
                    Some(idx) => {
                        self.recycled += 1;
                        let e = &mut self.entries[idx as usize];
                        debug_assert!(e.val.is_none());
                        e.val = Some(val);
                        VcHandle { idx, gen: e.gen }
                    }
                    None => {
                        let idx = self.entries.len() as u32;
                        self.entries.push(Entry {
                            gen: 0,
                            val: Some(val),
                        });
                        VcHandle { idx, gen: 0 }
                    }
                };
                self.shards[si].fill(empty, h, key, handle.idx);
                Some(handle)
            }
        }
    }

    /// Borrow `key`'s state, installing `default()` first if absent.
    /// `None` only at a capacity bound (like [`VcTable::insert`]).
    pub fn get_or_insert_with(
        &mut self,
        key: u64,
        default: impl FnOnce() -> T,
    ) -> Option<(VcHandle, &mut T)> {
        let h = match self.find(key) {
            Some(h) => h,
            None => self.insert(key, default())?,
        };
        let e = &mut self.entries[h.idx as usize];
        Some((h, e.val.as_mut().expect("live entry has state")))
    }

    /// Close a connection: remove `key`, returning its state. The
    /// arena entry's generation is bumped and the entry joins the free
    /// list, so the next open recycles it in O(1) and every
    /// outstanding handle to the old connection goes stale.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let h = mix64(key);
        let si = Self::shard_of(h);
        let (slot, probes) = self.shards[si].probe(h, key);
        self.lookups += 1;
        self.probes += probes;
        let slot = slot.ok()?;
        let idx = self.shards[si].evict(slot);
        let e = &mut self.entries[idx as usize];
        e.gen = e.gen.wrapping_add(1);
        let val = e.val.take();
        self.free.push(idx);
        val
    }

    /// Iterate `(key, &state)` in deterministic shard/slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.shards.iter().flat_map(move |s| {
            s.tags.iter().enumerate().filter_map(move |(i, &tag)| {
                if tag == EMPTY {
                    None
                } else {
                    let e = &self.entries[s.ids[i] as usize];
                    Some((s.keys[i], e.val.as_ref().expect("occupied slot has state")))
                }
            })
        })
    }

    /// Snapshot of the table's accounting counters and memory.
    pub fn stats(&self) -> TableStats {
        TableStats {
            len: self.len(),
            lookups: self.lookups,
            probes: self.probes,
            recycled: self.recycled,
            memory_bytes: self.memory_bytes(),
        }
    }

    /// Resident bytes: every shard's index arrays, the entry arena and
    /// the free list. This is the number the "bytes per idle VC"
    /// figure divides — *state* memory, not transient allocator slack.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(Shard::slot_bytes).sum::<usize>()
            + self.entries.capacity() * std::mem::size_of::<Entry<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t: VcTable<u32> = VcTable::new();
        let h = t.insert(0x00AB_CDEF, 7).unwrap();
        assert_eq!(t.get(h), Some(&7));
        assert_eq!(t.get_by_key(0x00AB_CDEF), Some(&7));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(0x00AB_CDEF), Some(7));
        assert_eq!(t.get(h), None, "stale handle must miss");
        assert_eq!(t.get_by_key(0x00AB_CDEF), None);
        assert!(t.is_empty());
    }

    #[test]
    fn upsert_replaces_in_place_with_same_handle() {
        let mut t: VcTable<u32> = VcTable::new();
        let a = t.insert(42, 1).unwrap();
        let b = t.insert(42, 2).unwrap();
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(a), Some(&2));
    }

    #[test]
    fn capacity_bound_enforced_but_upsert_allowed() {
        let mut t: VcTable<u32> = VcTable::bounded(2);
        assert!(t.insert(1, 10).is_some());
        assert!(t.insert(2, 20).is_some());
        assert!(t.insert(3, 30).is_none(), "third key must be refused");
        assert!(t.insert(1, 11).is_some(), "upsert at capacity is allowed");
        assert_eq!(t.len(), 2);
        // Freeing one slot re-admits a new key.
        assert_eq!(t.remove(2), Some(20));
        assert!(t.insert(3, 30).is_some());
    }

    #[test]
    fn generation_counters_kill_stale_handles_across_recycle() {
        let mut t: VcTable<u64> = VcTable::new();
        let h_old = t.insert(100, 0xAAAA).unwrap();
        t.remove(100);
        // Recycles the same arena entry for a different connection.
        let h_new = t.insert(200, 0xBBBB).unwrap();
        assert_eq!(h_old.index(), h_new.index(), "slot must be recycled");
        assert_ne!(h_old.generation(), h_new.generation());
        assert_eq!(t.get(h_old), None, "stale handle must never alias");
        assert_eq!(t.get(h_new), Some(&0xBBBB));
        assert_eq!(t.stats().recycled, 1);
    }

    #[test]
    fn grows_past_initial_capacity_when_unbounded() {
        let mut t: VcTable<usize> = VcTable::new();
        let n = 10_000;
        for k in 0..n {
            t.insert(k as u64 * 2654435761, k).unwrap();
        }
        assert_eq!(t.len(), n);
        for k in 0..n {
            assert_eq!(t.get_by_key(k as u64 * 2654435761), Some(&k), "key {k}");
        }
    }

    #[test]
    fn backward_shift_deletion_keeps_chains_reachable() {
        // Force collisions into a tiny table by inserting many keys,
        // then delete half and verify the rest still resolve.
        let mut t: VcTable<u64> = VcTable::new();
        let keys: Vec<u64> = (0..2000u64).map(|k| k.wrapping_mul(0x9E37_79B9)).collect();
        for &k in &keys {
            t.insert(k, k ^ 0xFFFF).unwrap();
        }
        for &k in keys.iter().step_by(2) {
            assert_eq!(t.remove(k), Some(k ^ 0xFFFF));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(t.get_by_key(k), None);
            } else {
                assert_eq!(t.get_by_key(k), Some(&(k ^ 0xFFFF)), "key {k}");
            }
        }
    }

    #[test]
    fn probe_accounting_counts_lookups() {
        let mut t: VcTable<u8> = VcTable::new();
        t.insert(1, 1);
        t.insert(2, 2);
        let before = t.stats();
        t.get_by_key(1);
        t.get_by_key(3);
        let after = t.stats();
        assert_eq!(after.lookups - before.lookups, 2);
        assert!(after.probes > before.probes);
        assert!(after.mean_probes() >= 1.0);
    }

    #[test]
    fn iteration_is_deterministic_and_complete() {
        let build = || {
            let mut t: VcTable<u64> = VcTable::new();
            for k in 0..500u64 {
                t.insert(k * 7919, k);
            }
            t.remove(7919 * 3);
            t
        };
        let a: Vec<(u64, u64)> = build().iter().map(|(k, &v)| (k, v)).collect();
        let b: Vec<(u64, u64)> = build().iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(a, b, "iteration order must be a pure function of history");
        assert_eq!(a.len(), 499);
    }

    #[test]
    fn memory_accounting_is_positive_and_scales() {
        let mut small: VcTable<u64> = VcTable::with_capacity(100);
        for k in 0..100u64 {
            small.insert(k, k);
        }
        let mut big: VcTable<u64> = VcTable::with_capacity(100_000);
        for k in 0..100_000u64 {
            big.insert(k, k);
        }
        assert!(small.memory_bytes() > 0);
        assert!(big.memory_bytes() > small.memory_bytes());
        // Bytes per entry stays bounded (the idle-VC memory claim).
        let per = big.memory_bytes() as f64 / 100_000.0;
        assert!(per < 128.0, "bytes/entry {per}");
    }

    #[test]
    fn full_24_bit_corner_keys_stay_distinct() {
        // The cam_key corners: max VPI, max VCI, and the 16/24-bit
        // boundaries — the hash must not truncate any of them.
        let corners: [u64; 6] = [
            0x0000_0000,
            0x0000_FFFF,
            0x0001_0000,
            0x00FF_0000,
            0x00FF_FFFF,
            0x0100_0000,
        ];
        let mut t: VcTable<u64> = VcTable::new();
        for (i, &k) in corners.iter().enumerate() {
            t.insert(k, i as u64);
        }
        assert_eq!(t.len(), corners.len());
        for (i, &k) in corners.iter().enumerate() {
            assert_eq!(t.get_by_key(k), Some(&(i as u64)), "corner {k:#x}");
        }
    }
}
