//! Cell delineation: finding cell boundaries in an undifferentiated bit
//! stream, using the HEC as the framing code (ITU-T I.432 §4.5).
//!
//! The receiver runs a three-state machine:
//!
//! ```text
//!            bit-by-bit                 cell-by-cell
//!   HUNT ────────────────► PRESYNC ────────────────► SYNC
//!     ▲   correct HEC         │   DELTA consecutive    │
//!     │                       │   correct HECs         │
//!     └───────────────────────┘                        │
//!     ▲        one incorrect HEC                       │
//!     └────────────────────────────────────────────────┘
//!               ALPHA consecutive incorrect HECs
//! ```
//!
//! * **HUNT**: the last 40 bits are checked for a valid HEC after every
//!   bit. On a hit, the machine assumes that window was a header and moves
//!   to PRESYNC aligned to it.
//! * **PRESYNC**: alignment is checked cell-by-cell (every 424 bits). One
//!   bad HEC sends the machine back to HUNT; [`DELTA`] consecutive good
//!   ones confirm the alignment → SYNC. Cells seen during PRESYNC are not
//!   delivered.
//! * **SYNC**: cells are delivered. Headers go through the
//!   [`HecReceiver`] correction/detection machine; a run of [`ALPHA`]
//!   consecutive uncorrectable headers declares loss of delineation
//!   (back to HUNT).
//!
//! With random data the probability of a false HUNT hit is 2⁻⁸ per bit
//! position, but DELTA consecutive confirmations make a false SYNC
//! vanishingly unlikely (≈ 2⁻⁴⁸); the payload scrambler exists precisely
//! to make user data look random to this process.
//!
//! Two entry points feed the machine: [`Delineator::push_bytes`] runs
//! the bit-exact reference loop, and [`Delineator::push_slice`] is the
//! burst fast path (whole-cell copies + fused HEC fold while SYNC and
//! byte-aligned) proven byte-identical to it by the fuzz equivalence
//! tests in `tests/delineation_equiv.rs`.

use crate::cell::{Cell, CELL_SIZE};
use crate::hec::{self, HecReceiver, HecVerdict};

/// Consecutive bad HECs in SYNC before declaring loss of delineation.
pub const ALPHA: u32 = 7;
/// Consecutive good HECs in PRESYNC before declaring delineation.
pub const DELTA: u32 = 6;

const CELL_BITS: u32 = (CELL_SIZE * 8) as u32; // 424

/// Delineation state, exposed for instrumentation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncState {
    /// Searching bit-by-bit for a header.
    Hunt,
    /// Candidate alignment found; confirming. `good` headers seen so far.
    Presync { good: u32 },
    /// Delineated. `bad` is the current run of consecutive bad headers.
    Sync { bad: u32 },
}

/// The cell delineation engine. Feed it the raw bit stream (as bytes, in
/// transmission order); it emits delineated, HEC-accepted cells.
#[derive(Clone, Debug)]
pub struct Delineator {
    state: SyncState,
    /// Last 40 bits observed (HUNT window), most recent bit in bit 0.
    window: u64,
    /// Bits consumed since construction.
    bits_consumed: u64,
    /// Bit position where the current hunt began (for acquisition-time stats).
    hunt_started_at: u64,
    /// Candidate cell being accumulated in PRESYNC/SYNC.
    cellbuf: [u8; CELL_SIZE],
    /// Bits accumulated into `cellbuf`.
    cellbuf_bits: u32,
    /// The candidate in `cellbuf` is the cell whose header caused the
    /// HUNT hit; its header re-check must not count as a PRESYNC
    /// confirmation (I.432 counts DELTA *subsequent* headers).
    first_candidate: bool,
    /// Whether idle/unassigned cells are delivered to the caller (the
    /// SONET TC layer needs them to keep its payload descrambler state
    /// aligned; most callers don't).
    emit_idle: bool,
    hec_rx: HecReceiver,
    // statistics
    acquisitions: u64,
    losses: u64,
    last_acquisition_bits: u64,
    delivered: u64,
    discarded_in_sync: u64,
}

impl Default for Delineator {
    fn default() -> Self {
        Self::new()
    }
}

impl Delineator {
    /// A delineator in HUNT state.
    pub fn new() -> Self {
        Delineator {
            state: SyncState::Hunt,
            window: 0,
            bits_consumed: 0,
            hunt_started_at: 0,
            cellbuf: [0; CELL_SIZE],
            cellbuf_bits: 0,
            first_candidate: false,
            emit_idle: false,
            hec_rx: HecReceiver::new(),
            acquisitions: 0,
            losses: 0,
            last_acquisition_bits: 0,
            delivered: 0,
            discarded_in_sync: 0,
        }
    }

    /// Builder: also deliver idle/unassigned cells (default: suppressed).
    pub fn with_idle_cells(mut self) -> Self {
        self.emit_idle = true;
        self
    }

    /// Current state.
    pub fn state(&self) -> SyncState {
        self.state
    }
    /// Whether delineation is currently established.
    pub fn is_synced(&self) -> bool {
        matches!(self.state, SyncState::Sync { .. })
    }
    /// Times SYNC has been (re-)acquired.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }
    /// Times SYNC has been lost after having been acquired.
    pub fn losses(&self) -> u64 {
        self.losses
    }
    /// Bits consumed from hunt start to the most recent acquisition —
    /// the delineation acquisition time, in bit times.
    pub fn last_acquisition_bits(&self) -> u64 {
        self.last_acquisition_bits
    }
    /// Cells delivered while in SYNC.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
    /// Cells discarded in SYNC due to uncorrectable headers.
    pub fn discarded_in_sync(&self) -> u64 {
        self.discarded_in_sync
    }
    /// Total bits consumed.
    pub fn bits_consumed(&self) -> u64 {
        self.bits_consumed
    }
    /// Access to the embedded HEC receiver's counters.
    pub fn hec_receiver(&self) -> &HecReceiver {
        &self.hec_rx
    }

    /// Feed one byte (8 bits, MSB first); delineated cells are appended
    /// to `out`.
    pub fn push_byte(&mut self, byte: u8, out: &mut Vec<Cell>) {
        for i in (0..8).rev() {
            self.push_bit((byte >> i) & 1, out);
        }
    }

    /// Feed a buffer of bytes through the bit-exact reference loop.
    ///
    /// Every bit goes through [`push_bit`](Self::push_byte) individually.
    /// This is the I.432 state machine transcribed literally; the burst
    /// entry point [`push_slice`](Self::push_slice) is proven
    /// byte-identical to it (cells *and* counters) by the fuzz
    /// equivalence tests and should be preferred on hot paths.
    pub fn push_bytes(&mut self, bytes: &[u8], out: &mut Vec<Cell>) {
        for &b in bytes {
            self.push_byte(b, out);
        }
    }

    /// Feed a buffer of bytes through the burst fast path.
    ///
    /// While the machine is in SYNC **and** the cell phase is
    /// byte-aligned with the input, whole runs of cell bytes are copied
    /// straight out of the slice and the header is judged with the fused
    /// HEC table fold — O(bytes) steady state instead of O(bits). HUNT,
    /// PRESYNC, and non-byte-aligned SYNC phases (tracked by
    /// `cellbuf_bits % 8`, which at an input-byte boundary *is* the
    /// cell-to-input phase) fall back to the bit loop, so bit-shifted
    /// streams still delineate exactly as before.
    pub fn push_slice(&mut self, bytes: &[u8], out: &mut Vec<Cell>) {
        let mut i = 0;
        while i < bytes.len() {
            if matches!(self.state, SyncState::Sync { .. }) && self.cellbuf_bits.is_multiple_of(8) {
                let need = ((CELL_BITS - self.cellbuf_bits) / 8) as usize;
                let take = need.min(bytes.len() - i);
                let dst = (self.cellbuf_bits / 8) as usize;
                self.cellbuf[dst..dst + take].copy_from_slice(&bytes[i..i + take]);
                self.cellbuf_bits += (take * 8) as u32;
                self.bits_consumed += (take * 8) as u64;
                self.shift_window_bytes(&bytes[i..i + take]);
                i += take;
                if self.cellbuf_bits == CELL_BITS {
                    self.complete_cell(out);
                }
            } else {
                // Bit-exact path: HUNT, PRESYNC, or a bit-shifted phase.
                self.push_byte(bytes[i], out);
                i += 1;
            }
        }
    }

    /// Advance the 40-bit HUNT window over `new` whole bytes — the same
    /// value 8·`new.len()` calls to `push_bit` would leave behind. The
    /// window must stay current even in SYNC: on a sync loss HUNT
    /// examines it immediately (no dead zone).
    #[inline]
    fn shift_window_bytes(&mut self, new: &[u8]) {
        if let [.., a, b, c, d, e] = *new {
            self.window = ((a as u64) << 32)
                | ((b as u64) << 24)
                | ((c as u64) << 16)
                | ((d as u64) << 8)
                | e as u64;
        } else {
            for &b in new {
                self.window = ((self.window << 8) | b as u64) & ((1u64 << 40) - 1);
            }
        }
    }

    fn window_header(&self) -> [u8; 5] {
        let w = self.window;
        [
            (w >> 32) as u8,
            (w >> 24) as u8,
            (w >> 16) as u8,
            (w >> 8) as u8,
            w as u8,
        ]
    }

    fn push_bit(&mut self, bit: u8, out: &mut Vec<Cell>) {
        self.bits_consumed += 1;
        self.window = ((self.window << 1) | bit as u64) & ((1u64 << 40) - 1);

        match self.state {
            SyncState::Hunt => {
                // The window is usable as soon as 40 bits have *ever*
                // been consumed: after a sync loss it already holds 39
                // valid stream bits, and I.432 HUNT must examine every
                // bit position. (The old guard demanded 40 bits since
                // `hunt_started_at`, creating a 39-bit dead zone after
                // re-entry that silently skipped any header straddling
                // the loss boundary and delayed reacquisition.)
                if self.bits_consumed >= 40 {
                    let hdr = self.window_header();
                    if hec::syndrome(&hdr) == 0 {
                        // Assume this window is a header; the rest of the
                        // candidate cell follows.
                        self.cellbuf = [0; CELL_SIZE];
                        self.cellbuf[..5].copy_from_slice(&hdr);
                        self.cellbuf_bits = 40;
                        self.first_candidate = true;
                        self.state = SyncState::Presync { good: 0 };
                    }
                }
            }
            SyncState::Presync { .. } | SyncState::Sync { .. } => {
                // Accumulate the bit into the candidate cell.
                let idx = (self.cellbuf_bits / 8) as usize;
                self.cellbuf[idx] = (self.cellbuf[idx] << 1) | bit;
                self.cellbuf_bits += 1;
                if self.cellbuf_bits == CELL_BITS {
                    self.complete_cell(out);
                }
            }
        }
    }

    /// A full 424-bit candidate cell has been accumulated; judge it.
    fn complete_cell(&mut self, out: &mut Vec<Cell>) {
        let mut header = [0u8; 5];
        header.copy_from_slice(&self.cellbuf[..5]);
        match self.state {
            SyncState::Presync { good } => {
                if self.first_candidate {
                    // The hit cell itself: header already known good.
                    self.first_candidate = false;
                    self.cellbuf_bits = 0;
                    return;
                }
                if hec::syndrome(&header) == 0 {
                    let good = good + 1;
                    if good >= DELTA {
                        self.state = SyncState::Sync { bad: 0 };
                        self.acquisitions += 1;
                        self.last_acquisition_bits = self.bits_consumed - self.hunt_started_at;
                    } else {
                        self.state = SyncState::Presync { good };
                    }
                } else {
                    self.enter_hunt(false);
                }
            }
            SyncState::Sync { bad } => {
                match self.hec_rx.receive(&mut header) {
                    HecVerdict::Accept | HecVerdict::AcceptCorrected => {
                        self.cellbuf[..5].copy_from_slice(&header);
                        let cell = Cell::from_bytes(self.cellbuf);
                        // Idle/unassigned cells are a TC-layer artefact;
                        // they confirmed delineation but carry no data —
                        // unless the caller asked for them (see
                        // `with_idle_cells`).
                        if self.emit_idle || (!cell.is_idle() && !cell.is_unassigned()) {
                            self.delivered += 1;
                            out.push(cell);
                        }
                        self.state = SyncState::Sync { bad: 0 };
                    }
                    HecVerdict::Discard => {
                        self.discarded_in_sync += 1;
                        let bad = bad + 1;
                        if bad >= ALPHA {
                            self.enter_hunt(true);
                        } else {
                            self.state = SyncState::Sync { bad };
                        }
                    }
                }
            }
            SyncState::Hunt => unreachable!("complete_cell only runs when aligned"),
        }
        self.cellbuf_bits = 0;
    }

    fn enter_hunt(&mut self, was_synced: bool) {
        if was_synced {
            self.losses += 1;
        }
        self.state = SyncState::Hunt;
        self.hunt_started_at = self.bits_consumed;
        self.cellbuf_bits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{HeaderRepr, PAYLOAD_SIZE};
    use crate::vc::VcId;

    fn data_cell(vci: u16, fill: u8) -> Cell {
        let payload = [fill; PAYLOAD_SIZE];
        Cell::new(&HeaderRepr::data(VcId::new(0, vci), false), &payload).unwrap()
    }

    /// Serialize cells to a byte stream.
    fn stream(cells: &[Cell]) -> Vec<u8> {
        cells
            .iter()
            .flat_map(|c| c.as_bytes().iter().copied())
            .collect()
    }

    #[test]
    fn acquires_sync_on_aligned_stream() {
        let cells: Vec<Cell> = (0..10).map(|i| data_cell(32 + i, i as u8)).collect();
        let mut d = Delineator::new();
        let mut out = Vec::new();
        d.push_bytes(&stream(&cells), &mut out);
        assert!(d.is_synced());
        assert_eq!(d.acquisitions(), 1);
        // Cell 0 consumed by HUNT hit; cells 1..=6 consumed by PRESYNC
        // (DELTA=6); cells 7..9 delivered.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].header().unwrap().vci, 32 + 7);
    }

    #[test]
    fn acquires_from_arbitrary_byte_offset() {
        let cells: Vec<Cell> = (0..12).map(|i| data_cell(100 + i, i as u8)).collect();
        let mut bytes = stream(&cells);
        // Prepend garbage that is NOT a valid header prefix.
        let mut prefixed = vec![0x13u8, 0x57, 0x9B];
        prefixed.append(&mut bytes);
        let mut d = Delineator::new();
        let mut out = Vec::new();
        d.push_bytes(&prefixed, &mut out);
        assert!(d.is_synced());
        assert!(!out.is_empty());
        // Delivered cells must be intact original cells.
        for c in &out {
            let h = c.header().unwrap();
            assert!(h.vci >= 100 && h.vci < 112);
            let fill = (h.vci - 100) as u8;
            assert!(c.payload().iter().all(|&b| b == fill));
        }
    }

    #[test]
    fn acquires_from_arbitrary_bit_offset() {
        // Shift the whole stream by 3 bits.
        let cells: Vec<Cell> = (0..12).map(|i| data_cell(200 + i, 0xEE)).collect();
        let bytes = stream(&cells);
        let shift = 3;
        let mut shifted = Vec::with_capacity(bytes.len() + 1);
        let mut carry = 0u16;
        let mut nbits = shift;
        for &b in &bytes {
            carry = (carry << 8) | b as u16;
            nbits += 8;
            while nbits >= 8 {
                shifted.push((carry >> (nbits - 8)) as u8);
                nbits -= 8;
                carry &= (1 << nbits) - 1;
            }
        }
        // shifted stream starts with `shift` zero bits then the cells.
        let mut d = Delineator::new();
        let mut out = Vec::new();
        d.push_bytes(&shifted, &mut out);
        assert!(d.is_synced(), "must sync at a non-byte-aligned offset");
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| c.payload().iter().all(|&b| b == 0xEE)));
    }

    #[test]
    fn idle_cells_maintain_sync_but_are_not_delivered() {
        let mut cells = vec![Cell::idle(); 8];
        cells.push(data_cell(50, 1));
        cells.push(Cell::idle());
        cells.push(data_cell(51, 2));
        let mut d = Delineator::new();
        let mut out = Vec::new();
        d.push_bytes(&stream(&cells), &mut out);
        assert!(d.is_synced());
        let vcis: Vec<u16> = out.iter().map(|c| c.header().unwrap().vci).collect();
        assert_eq!(vcis, vec![50, 51]);
    }

    #[test]
    fn loses_sync_after_alpha_bad_headers() {
        let good: Vec<Cell> = (0..10).map(|i| data_cell(60 + i, 0)).collect();
        let mut d = Delineator::new();
        let mut out = Vec::new();
        d.push_bytes(&stream(&good), &mut out);
        assert!(d.is_synced());

        // Feed ALPHA cells with garbage headers. HecReceiver is already in
        // correction mode; garbage headers are (overwhelmingly) uncorrectable.
        let mut bad_cell = data_cell(61, 0);
        bad_cell.as_bytes_mut()[0] ^= 0xFF;
        bad_cell.as_bytes_mut()[2] ^= 0xFF; // multi-bit damage
        let bad = vec![bad_cell; ALPHA as usize];
        d.push_bytes(&stream(&bad), &mut out);
        assert!(!d.is_synced(), "ALPHA bad headers must drop delineation");
        assert_eq!(d.losses(), 1);
    }

    #[test]
    fn single_bad_header_does_not_lose_sync() {
        let good: Vec<Cell> = (0..10).map(|i| data_cell(60 + i, 0)).collect();
        let mut d = Delineator::new();
        let mut out = Vec::new();
        d.push_bytes(&stream(&good), &mut out);
        let delivered_before = d.delivered();

        let mut bad_cell = data_cell(61, 0);
        bad_cell.as_bytes_mut()[0] ^= 0xFF;
        bad_cell.as_bytes_mut()[2] ^= 0xFF;
        d.push_bytes(bad_cell.as_bytes(), &mut out);
        assert!(d.is_synced());

        d.push_bytes(data_cell(62, 3).as_bytes(), &mut out);
        assert!(d.is_synced());
        assert_eq!(d.delivered(), delivered_before + 1);
    }

    #[test]
    fn reacquires_after_loss() {
        let good: Vec<Cell> = (0..10).map(|i| data_cell(70 + i, 0)).collect();
        let mut d = Delineator::new();
        let mut out = Vec::new();
        d.push_bytes(&stream(&good), &mut out);
        // Drop sync with garbage (odd length to also shift alignment).
        let garbage: Vec<u8> = (0..53 * ALPHA as usize + 7)
            .map(|i| (i as u8).wrapping_mul(97).wrapping_add(13))
            .collect();
        d.push_bytes(&garbage, &mut out);
        // Feed a clean stream again.
        let more: Vec<Cell> = (0..10).map(|i| data_cell(80 + i, 1)).collect();
        d.push_bytes(&stream(&more), &mut out);
        assert!(d.is_synced(), "must reacquire after garbage");
        assert!(d.acquisitions() >= 2);
    }

    #[test]
    fn hunt_reentry_has_no_dead_zone() {
        // Regression for the HUNT dead zone: a valid header that *begins
        // before* a sync loss (its first 32 bits are the last 4 octets
        // the machine consumed while losing SYNC) must be found as soon
        // as its final bits arrive — the window already holds those 32
        // bits at re-entry. The old guard waited 40 fresh bits and
        // silently skipped it, delaying reacquisition by a full cell.
        let good: Vec<Cell> = (0..10).map(|i| data_cell(70 + i, 0)).collect();
        let mut d = Delineator::new();
        let mut out = Vec::new();
        d.push_bytes(&stream(&good), &mut out);
        assert!(d.is_synced());

        // ALPHA uncorrectable-header cells force the loss; the LAST one
        // carries the first 4 octets of the idle-cell header (00 00 00
        // 01, HEC 0x52) as its final payload octets, so the header
        // straddles the loss boundary.
        let mut bad_cell = data_cell(71, 0xA7);
        bad_cell.as_bytes_mut()[0] ^= 0xFF;
        bad_cell.as_bytes_mut()[2] ^= 0xFF;
        let mut bad = vec![bad_cell; ALPHA as usize];
        let last = bad.last_mut().unwrap().as_bytes_mut();
        last[49..53].copy_from_slice(&[0x00, 0x00, 0x00, 0x01]);
        d.push_bytes(&stream(&bad), &mut out);
        assert!(!d.is_synced());
        assert_eq!(d.losses(), 1);

        // Post-loss stream: the header's HEC octet, the candidate cell's
        // 48 payload octets, then clean cells for PRESYNC confirmation.
        let mut tail = vec![0x52u8];
        tail.extend_from_slice(&[0u8; PAYLOAD_SIZE]);
        d.push_bytes(&tail, &mut out);
        let more: Vec<Cell> = (0..8).map(|i| data_cell(80 + i, 1)).collect();
        d.push_bytes(&stream(&more), &mut out);
        assert!(d.is_synced(), "must reacquire on the straddling header");
        assert_eq!(d.acquisitions(), 2);
        // Acquisition cost: 8 bits (the HEC octet completes the window
        // hit), 384 bits of candidate payload, DELTA confirmation cells.
        // The skipped-header behaviour measured 424 bits more.
        assert_eq!(d.last_acquisition_bits(), 8 + 384 + 6 * 424);
    }

    #[test]
    fn push_slice_matches_push_bytes_on_clean_stream() {
        let cells: Vec<Cell> = (0..20).map(|i| data_cell(32 + i, i as u8)).collect();
        let bytes = stream(&cells);
        let mut bit = Delineator::new();
        let mut burst = Delineator::new();
        let (mut out_bit, mut out_burst) = (Vec::new(), Vec::new());
        bit.push_bytes(&bytes, &mut out_bit);
        // Feed the burst side in ragged chunks to cross cell boundaries.
        for chunk in bytes.chunks(61) {
            burst.push_slice(chunk, &mut out_burst);
        }
        assert_eq!(out_bit.len(), out_burst.len());
        for (a, b) in out_bit.iter().zip(&out_burst) {
            assert_eq!(a.as_bytes(), b.as_bytes());
        }
        assert_eq!(bit.state(), burst.state());
        assert_eq!(bit.bits_consumed(), burst.bits_consumed());
        assert_eq!(bit.delivered(), burst.delivered());
    }

    #[test]
    fn acquisition_time_counted_in_bits() {
        let cells: Vec<Cell> = (0..10).map(|i| data_cell(90 + i, 0)).collect();
        let mut d = Delineator::new();
        let mut out = Vec::new();
        d.push_bytes(&stream(&cells), &mut out);
        // Acquisition: 40 bits (first header) + 384 (rest of cell 0)
        // + 6×424 (PRESYNC cells) = 2968 bits.
        assert_eq!(d.last_acquisition_bits(), 40 + 384 + 6 * 424);
    }
}
