//! The x⁴³ + 1 self-synchronising payload scrambler (ITU-T I.432.1).
//!
//! In SDH-based transmission the 48-octet cell *payload* is scrambled
//! before transmission so that user data cannot counterfeit the header
//! patterns that cell delineation locks onto, and to guarantee bit
//! transitions for the line. The scrambler is *self-synchronising*: the
//! transmitter XORs each input bit with its own output from 43 bits ago;
//! the descrambler XORs each received bit with the *received* stream from
//! 43 bits ago. After any corruption or resynchronisation, the
//! descrambler recovers as soon as 43 clean bits have passed — no state
//! exchange required. The price of self-synchronisation is error
//! multiplication: one line bit error corrupts two descrambled bits
//! (the direct hit, and its echo 43 bits later).
//!
//! Bits are processed MSB-first within each octet, matching the ATM/SONET
//! transmission order.

/// Length of the scrambler shift register, in bits.
pub const REGISTER_BITS: u32 = 43;

/// 43-bit shift register: bit 0 is the most recent bit, bit 42 the bit
/// from 43 clocks ago (the feedback tap).
#[derive(Clone, Copy, Debug, Default)]
struct Register(u64);

impl Register {
    /// The feedback tap: the bit shifted in [`REGISTER_BITS`] clocks ago.
    /// The single tap implementation — both scrambler and descrambler
    /// read through here, so register width and tap position can never
    /// diverge between the two sides.
    #[inline]
    fn tap(&self) -> u8 {
        ((self.0 >> (REGISTER_BITS - 1)) & 1) as u8
    }

    /// Shift in a new bit, returning the tap observed before the shift.
    #[inline]
    fn clock(&mut self, bit: u8) -> u8 {
        let tap = self.tap();
        self.0 = ((self.0 << 1) | bit as u64) & ((1u64 << REGISTER_BITS) - 1);
        tap
    }
}

/// Transmit-side scrambler.
#[derive(Clone, Debug, Default)]
pub struct Scrambler {
    reg: Register,
}

impl Scrambler {
    /// New scrambler with an all-zero register.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scramble a buffer in place.
    pub fn scramble(&mut self, buf: &mut [u8]) {
        for byte in buf {
            let mut out = 0u8;
            for bit_idx in (0..8).rev() {
                let in_bit = (*byte >> bit_idx) & 1;
                // Output = input ⊕ (own output 43 bits ago). The tap is
                // read *before* clocking the output bit in, via the same
                // `Register::tap` the descrambler's `clock` uses.
                let out_bit = in_bit ^ self.reg.tap();
                self.reg.clock(out_bit);
                out = (out << 1) | out_bit;
            }
            *byte = out;
        }
    }
}

/// Receive-side descrambler.
#[derive(Clone, Debug, Default)]
pub struct Descrambler {
    reg: Register,
}

impl Descrambler {
    /// New descrambler with an all-zero register.
    pub fn new() -> Self {
        Self::default()
    }

    /// Descramble a buffer in place.
    pub fn descramble(&mut self, buf: &mut [u8]) {
        for byte in buf {
            let mut out = 0u8;
            for bit_idx in (0..8).rev() {
                let rx_bit = (*byte >> bit_idx) & 1;
                // Output = received ⊕ (received 43 bits ago): the register
                // holds the *received* stream.
                let tap = self.reg.clock(rx_bit);
                out = (out << 1) | (rx_bit ^ tap);
            }
            *byte = out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_restores_data() {
        let original: Vec<u8> = (0..480).map(|i| (i * 37 % 251) as u8).collect();
        let mut buf = original.clone();
        let mut s = Scrambler::new();
        let mut d = Descrambler::new();
        s.scramble(&mut buf);
        assert_ne!(buf, original, "scrambling must change the data");
        d.descramble(&mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn roundtrip_across_multiple_calls() {
        // Scrambler state must carry across cell boundaries.
        let cells: Vec<Vec<u8>> = (0..10)
            .map(|c| (0..48).map(|i| ((c * 48 + i) % 256) as u8).collect())
            .collect();
        let mut s = Scrambler::new();
        let mut d = Descrambler::new();
        for cell in &cells {
            let mut buf = cell.clone();
            s.scramble(&mut buf);
            d.descramble(&mut buf);
            assert_eq!(&buf, cell);
        }
    }

    #[test]
    fn all_zeros_becomes_nonzero_eventually() {
        // A long run of zeros must not stay all-zero once the register has
        // non-zero content (the point of scrambling). Prime the register
        // with some data first.
        let mut s = Scrambler::new();
        let mut primer = vec![0xFFu8; 8];
        s.scramble(&mut primer);
        let mut zeros = vec![0u8; 48];
        s.scramble(&mut zeros);
        assert!(zeros.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_register_passes_zeros_through() {
        // With an all-zero register and all-zero input, output is zero —
        // the scrambler is linear with no additive constant.
        let mut s = Scrambler::new();
        let mut buf = vec![0u8; 16];
        s.scramble(&mut buf);
        assert_eq!(buf, vec![0u8; 16]);
    }

    #[test]
    fn descrambler_self_synchronises() {
        // Start the descrambler with a garbage register; after 43 clean
        // bits (6 octets) it must track exactly.
        let data: Vec<u8> = (0..64).map(|i| (i * 11 % 256) as u8).collect();
        let mut s = Scrambler::new();
        let mut tx = data.clone();
        s.scramble(&mut tx);

        let mut d = Descrambler::new();
        d.reg.0 = 0x3FF_FFFF_FFFF; // garbage state
        let mut rx = tx.clone();
        d.descramble(&mut rx);
        // First ⌈43/8⌉ = 6 octets may be corrupt; everything after must match.
        assert_eq!(&rx[6..], &data[6..]);
        assert_ne!(
            &rx[..6],
            &data[..6],
            "garbage state should corrupt the prefix"
        );
    }

    #[test]
    fn single_bit_error_multiplies_to_two() {
        let data = vec![0u8; 32];
        let mut s = Scrambler::new();
        // Prime with nonzero so the stream isn't degenerate.
        let mut primer = vec![0xA5u8; 8];
        s.scramble(&mut primer);
        let mut tx = data.clone();
        s.scramble(&mut tx);

        // Matching descrambler state: feed it the primer too.
        let mut d = Descrambler::new();
        let mut p = primer.clone();
        d.descramble(&mut p);

        // Flip one bit in flight: bit 40 of the payload (octet 5, MSB).
        tx[5] ^= 0x80;
        let mut rx = tx.clone();
        d.descramble(&mut rx);
        let error_bits: u32 = rx
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(
            error_bits, 2,
            "self-sync scrambler doubles isolated bit errors"
        );
    }
}
