//! A slab allocator for cells: fixed-size slots, index handles, zero
//! steady-state heap traffic.
//!
//! The per-cell fast path (segmentation → link → reassembly) must not
//! allocate per cell — the same discipline the paper's hardware path
//! applies to per-cell protocol work. [`CellSlab`] owns a growable pool
//! of 53-octet cell slots (5-octet header + the fixed 48-octet payload);
//! callers hold [`CellRef`] index handles and move `&[CellRef]` slices
//! between batched entry points instead of owned `Vec<Cell>`s.
//!
//! Growth only happens when the free list is empty; a warmed-up slab
//! (every slot visited once) never grows again, which
//! [`CellSlab::growth_events`] lets tests assert.

use crate::cell::Cell;

/// An index handle into a [`CellSlab`].
///
/// Handles are plain indices: cheap to copy, cheap to move in slices,
/// and stable for the lifetime of the slot (until [`CellSlab::free`]).
/// A handle is only meaningful against the slab that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellRef(u32);

impl CellRef {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A growable arena of cell slots with a free list.
///
/// `alloc` pops the free list when possible and only extends the
/// backing storage when it is empty. `free` pushes the slot back. The
/// slab never shrinks; `high_water` and `growth_events` expose the
/// allocation behaviour for perf assertions.
#[derive(Debug, Default)]
pub struct CellSlab {
    slots: Vec<Cell>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    growth_events: u64,
}

impl CellSlab {
    /// An empty slab. The first allocations grow it.
    pub fn new() -> Self {
        CellSlab::default()
    }

    /// A slab pre-warmed with `capacity` slots, so the first `capacity`
    /// concurrent cells cause no growth.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut slab = CellSlab {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
            high_water: 0,
            growth_events: 0,
        };
        for i in 0..capacity {
            slab.slots.push(Cell::idle());
            slab.free.push(i as u32);
        }
        slab
    }

    /// Allocate a slot initialised with `cell`'s bytes.
    pub fn alloc(&mut self, cell: Cell) -> CellRef {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = cell;
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.growth_events += 1;
                self.slots.push(cell);
                idx
            }
        };
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        CellRef(idx)
    }

    /// Allocate an uninitialised (idle-patterned) slot and hand back a
    /// mutable reference for in-place construction.
    pub fn alloc_mut(&mut self) -> (CellRef, &mut Cell) {
        let r = self.alloc(Cell::idle());
        let cell = &mut self.slots[r.index()];
        (r, cell)
    }

    /// Read a slot.
    pub fn get(&self, r: CellRef) -> &Cell {
        &self.slots[r.index()]
    }

    /// Mutate a slot (e.g. fault injection on the wire).
    pub fn get_mut(&mut self, r: CellRef) -> &mut Cell {
        &mut self.slots[r.index()]
    }

    /// Return a slot to the free list.
    pub fn free(&mut self, r: CellRef) {
        debug_assert!(r.index() < self.slots.len());
        self.free.push(r.0);
        self.live -= 1;
    }

    /// Return every slot in `refs` to the free list.
    pub fn free_all(&mut self, refs: &[CellRef]) {
        for &r in refs {
            self.free(r);
        }
    }

    /// Currently allocated (live) slots.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no slots are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots ever created (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Maximum simultaneously-live slots observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Times the slab had to grow because the free list was empty. A
    /// steady-state workload on a warmed-up slab keeps this constant.
    pub fn growth_events(&self) -> u64 {
        self.growth_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{HeaderRepr, PAYLOAD_SIZE};
    use crate::vc::VcId;

    fn cell(tag: u8) -> Cell {
        let payload = [tag; PAYLOAD_SIZE];
        Cell::new(&HeaderRepr::data(VcId::new(0, 64), false), &payload).unwrap()
    }

    #[test]
    fn alloc_get_free_roundtrip() {
        let mut slab = CellSlab::new();
        let a = slab.alloc(cell(1));
        let b = slab.alloc(cell(2));
        assert_eq!(slab.get(a).payload()[0], 1);
        assert_eq!(slab.get(b).payload()[0], 2);
        assert_eq!(slab.len(), 2);
        slab.free(a);
        assert_eq!(slab.len(), 1);
        // The freed slot is recycled.
        let c = slab.alloc(cell(3));
        assert_eq!(c, a);
        assert_eq!(slab.get(c).payload()[0], 3);
    }

    #[test]
    fn warmed_slab_never_grows() {
        let mut slab = CellSlab::with_capacity(8);
        assert_eq!(slab.growth_events(), 0);
        assert_eq!(slab.capacity(), 8);
        for round in 0..100 {
            let refs: Vec<_> = (0..8).map(|i| slab.alloc(cell(round ^ i))).collect();
            assert_eq!(slab.len(), 8);
            slab.free_all(&refs);
        }
        assert_eq!(slab.growth_events(), 0);
        assert_eq!(slab.capacity(), 8);
        assert_eq!(slab.high_water(), 8);
    }

    #[test]
    fn cold_slab_grows_once_then_stabilises() {
        let mut slab = CellSlab::new();
        // Warm-up round: every slot is a growth event.
        let refs: Vec<_> = (0..16).map(|i| slab.alloc(cell(i))).collect();
        assert_eq!(slab.growth_events(), 16);
        slab.free_all(&refs);
        // Steady state: no further growth.
        for round in 0..50 {
            let refs: Vec<_> = (0..16).map(|i| slab.alloc(cell(round ^ i))).collect();
            slab.free_all(&refs);
        }
        assert_eq!(slab.growth_events(), 16);
        assert_eq!(slab.high_water(), 16);
    }

    #[test]
    fn alloc_mut_in_place_construction() {
        let mut slab = CellSlab::new();
        let (r, c) = slab.alloc_mut();
        c.payload_mut()[0] = 0xAB;
        assert_eq!(slab.get(r).payload()[0], 0xAB);
    }
}
