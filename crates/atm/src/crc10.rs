//! CRC-10: g(x) = x¹⁰ + x⁹ + x⁵ + x⁴ + x + 1, no init, no final XOR.
//!
//! Used twice in the ATM stack, which is why it lives at this layer:
//! the AAL3/4 SAR-PDU trailer (`hni-aal` re-exports these functions) and
//! the OAM cell trailer ([`crate::oam`]). Both place the 10 CRC bits
//! immediately after the protected bits, so a received PDU checks to
//! zero; generation needs bit granularity because the protected region
//! is not byte-aligned (it ends 10 bits before a byte boundary).
//!
//! A bit-by-bit reference implementation is kept alongside the
//! table-driven one and cross-checked in tests.

/// CRC-10 polynomial, low 10 bits (x¹⁰ implicit).
pub const POLY10: u16 = 0x233;

/// Bit-by-bit CRC-10 reference.
pub fn crc10_reference(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &byte in data {
        for i in (0..8).rev() {
            let bit = (byte >> i) & 1;
            let top = ((crc >> 9) & 1) as u8;
            crc = (crc << 1) & 0x3FF;
            if top ^ bit != 0 {
                crc ^= POLY10;
            }
        }
    }
    crc
}

const CRC10_TABLE: [u16; 256] = {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u16) << 2;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 0x200 != 0 {
                ((crc << 1) ^ POLY10) & 0x3FF
            } else {
                (crc << 1) & 0x3FF
            };
            b += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Second-level table for the fused two-byte step: `CRC10_TABLE2[b]` is
/// the contribution of byte value `b` one position earlier in the
/// stream — `CRC10_TABLE[b]` advanced through one zero byte. Because
/// the 10-bit state is fully shifted out by 16 data bits, two bytes
/// reduce to two *independent* lookups (the old state XORs into the
/// data, `state·x¹⁶ ≡ (state≪6)·x¹⁰ mod g`).
const CRC10_TABLE2: [u16; 256] = {
    let mut t = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let c = CRC10_TABLE[i];
        t[i] = ((c << 8) & 0x3FF) ^ CRC10_TABLE[(c >> 2) as usize];
        i += 1;
    }
    t
};

/// Table-driven CRC-10, fused two bytes per step.
pub fn crc10(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    let mut chunks = data.chunks_exact(2);
    for pair in &mut chunks {
        crc = CRC10_TABLE2[(((crc >> 2) as u8) ^ pair[0]) as usize]
            ^ CRC10_TABLE[((((crc & 3) << 6) as u8) ^ pair[1]) as usize];
    }
    for &byte in chunks.remainder() {
        let idx = (((crc >> 2) as u8) ^ byte) as usize;
        crc = ((crc << 8) & 0x3FF) ^ CRC10_TABLE[idx];
    }
    crc
}

/// CRC-10 over the first `nbits` bits of `data` (MSB-first) — the
/// bit-granular form generation needs.
pub fn crc10_bits(data: &[u8], nbits: usize) -> u16 {
    debug_assert!(nbits <= data.len() * 8);
    let full_bytes = nbits / 8;
    let mut crc = crc10(&data[..full_bytes]);
    for i in 0..(nbits % 8) {
        let bit = (data[full_bytes] >> (7 - i)) & 1;
        let top = ((crc >> 9) & 1) as u8;
        crc = (crc << 1) & 0x3FF;
        if top ^ bit != 0 {
            crc ^= POLY10;
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn table_matches_reference() {
        for seed in 0..40u64 {
            let data = pseudo_bytes(seed, (seed as usize % 96) + 1);
            assert_eq!(crc10(&data), crc10_reference(&data));
        }
    }

    #[test]
    fn bits_form_byte_aligned_matches() {
        let data = pseudo_bytes(9, 48);
        assert_eq!(crc10_bits(&data, 48 * 8), crc10(&data));
    }

    /// The table is data, and data rots silently: pin its contents
    /// against the published CRC-10/ATM check value and hand-picked
    /// entries, independently of the in-repo reference implementation.
    #[test]
    fn table_pinned_to_known_good_vectors() {
        // CRC-10/ATM check value (poly 0x633, no init, no xorout).
        assert_eq!(crc10(b"123456789"), 0x199);
        assert_eq!(crc10_reference(b"123456789"), 0x199);
        assert_eq!(crc10(&[0xFF; 8]), 0x071);
        assert_eq!(crc10(&[0x00; 4]), 0x000);
        // Spot entries and a whole-table sum (the xor-fold of a linear
        // code's table is trivially zero, so sum instead).
        assert_eq!(CRC10_TABLE[0], 0x000);
        assert_eq!(CRC10_TABLE[1], POLY10);
        assert_eq!(CRC10_TABLE[255], 0x0E1);
        let sum: u32 = CRC10_TABLE.iter().map(|&e| e as u32).sum();
        assert_eq!(sum, 130_944);
    }

    #[test]
    fn codeword_checks_to_zero() {
        // message ∥ CRC (bit-adjacent) is a codeword.
        let msg = pseudo_bytes(3, 46);
        let mut whole = msg.clone();
        whole.push(0);
        whole.push(0);
        let c = crc10_bits(&whole, 46 * 8 + 6);
        let n = whole.len();
        whole[n - 2] |= (c >> 8) as u8;
        whole[n - 1] = c as u8;
        assert_eq!(crc10(&whole), 0);
    }
}
