//! OAM cells (ITU-T I.610): in-band operations and maintenance.
//!
//! On a permanent virtual connection there is no signalling channel to
//! ask "is this circuit alive?" — the question travels *inside* the
//! connection as OAM cells, distinguished by PTI codepoints (F5 flows:
//! segment = PTI 100, end-to-end = PTI 101). The 48-octet payload:
//!
//! ```text
//! ┌──────────┬──────────────┬──────────────────────┬──────┬────────┐
//! │ OAM type │ function     │ function-specific    │ rsvd │ CRC-10 │
//! │   4b     │    4b        │     45 octets        │  6b  │  10b   │
//! └──────────┴──────────────┴──────────────────────┴──────┴────────┘
//! ```
//!
//! Implemented functions (fault management):
//!
//! * **Loopback** — the function the host interface actually uses: a
//!   cell with "loopback indication = 1" and a correlation tag; whoever
//!   loops it clears the indication and sends it back. Connectivity
//!   verified end to end, no control plane required.
//! * **AIS / RDI** — alarm indication & remote defect indication cells
//!   (encode/decode; generation policy is the transmission plant's
//!   concern and out of scope here).
//! * **Continuity check** — heartbeat cells for idle connections.
//!
//! The CRC-10 trailer covers the preceding 374 bits, same convention as
//! the AAL3/4 SAR trailer ([`crate::crc10`]).

use crate::cell::{Cell, HeaderRepr, Pti, PAYLOAD_SIZE};
use crate::crc10::{crc10, crc10_bits};
use crate::vc::VcId;
use core::fmt;

/// OAM type field codepoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OamType {
    /// Fault management (0001).
    FaultManagement,
    /// Performance management (0010).
    PerformanceManagement,
    /// Activation/deactivation (1000).
    ActivationDeactivation,
}

impl OamType {
    fn to_bits(self) -> u8 {
        match self {
            OamType::FaultManagement => 0b0001,
            OamType::PerformanceManagement => 0b0010,
            OamType::ActivationDeactivation => 0b1000,
        }
    }
    fn from_bits(b: u8) -> Option<Self> {
        match b {
            0b0001 => Some(OamType::FaultManagement),
            0b0010 => Some(OamType::PerformanceManagement),
            0b1000 => Some(OamType::ActivationDeactivation),
            _ => None,
        }
    }
}

/// Fault-management function codepoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OamFunction {
    /// Alarm indication signal (0000).
    Ais,
    /// Remote defect indication (0001).
    Rdi,
    /// Continuity check (0100).
    ContinuityCheck,
    /// Loopback (1000).
    Loopback,
}

impl OamFunction {
    fn to_bits(self) -> u8 {
        match self {
            OamFunction::Ais => 0b0000,
            OamFunction::Rdi => 0b0001,
            OamFunction::ContinuityCheck => 0b0100,
            OamFunction::Loopback => 0b1000,
        }
    }
    fn from_bits(b: u8) -> Option<Self> {
        match b {
            0b0000 => Some(OamFunction::Ais),
            0b0001 => Some(OamFunction::Rdi),
            0b0100 => Some(OamFunction::ContinuityCheck),
            0b1000 => Some(OamFunction::Loopback),
            _ => None,
        }
    }
}

/// Which F5 flow an OAM cell belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OamScope {
    /// Segment flow (PTI 100): processed by the next maintenance node.
    Segment,
    /// End-to-end flow (PTI 101): processed only by the far endpoint.
    EndToEnd,
}

/// Why an OAM cell failed to parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OamError {
    /// The cell's PTI is not an OAM codepoint.
    NotOam,
    /// CRC-10 over the payload failed.
    Crc,
    /// Unknown type/function codepoint.
    UnknownCodepoint,
}

impl fmt::Display for OamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OamError::NotOam => write!(f, "not an OAM cell"),
            OamError::Crc => write!(f, "OAM payload CRC-10 mismatch"),
            OamError::UnknownCodepoint => write!(f, "unknown OAM codepoint"),
        }
    }
}

/// A decoded OAM cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OamCell {
    /// F5 flow scope.
    pub scope: OamScope,
    /// OAM type.
    pub oam_type: OamType,
    /// Function within the type.
    pub function: OamFunction,
    /// Loopback indication: `true` = please loop this back (only
    /// meaningful for [`OamFunction::Loopback`]).
    pub loopback_indication: bool,
    /// Correlation tag (loopback) — matches replies to requests.
    pub tag: u32,
}

impl OamCell {
    /// A loopback request on the end-to-end flow.
    pub fn loopback_request(tag: u32) -> Self {
        OamCell {
            scope: OamScope::EndToEnd,
            oam_type: OamType::FaultManagement,
            function: OamFunction::Loopback,
            loopback_indication: true,
            tag,
        }
    }

    /// The reply to a loopback request (indication cleared, tag kept).
    pub fn loopback_reply(&self) -> Self {
        OamCell {
            loopback_indication: false,
            ..self.clone()
        }
    }

    /// Encode into a cell on `vc`.
    pub fn emit(&self, vc: VcId) -> Cell {
        let mut payload = [0x6Au8; PAYLOAD_SIZE];
        payload[0] = (self.oam_type.to_bits() << 4) | self.function.to_bits();
        payload[1] = self.loopback_indication as u8;
        payload[2..6].copy_from_slice(&self.tag.to_be_bytes());
        payload[46] = 0;
        payload[47] = 0;
        let c = crc10_bits(&payload, 46 * 8 + 6);
        payload[46] |= (c >> 8) as u8;
        payload[47] = c as u8;
        let pti = match self.scope {
            OamScope::Segment => Pti::OamSegment,
            OamScope::EndToEnd => Pti::OamEndToEnd,
        };
        let header = HeaderRepr {
            pti,
            ..HeaderRepr::data(vc, false)
        };
        Cell::new(&header, &payload).expect("user VC header encodable")
    }

    /// Decode a cell; the header must already be valid.
    pub fn parse(cell: &Cell) -> Result<OamCell, OamError> {
        let header = cell.header().map_err(|_| OamError::NotOam)?;
        let scope = match header.pti {
            Pti::OamSegment => OamScope::Segment,
            Pti::OamEndToEnd => OamScope::EndToEnd,
            _ => return Err(OamError::NotOam),
        };
        let payload = cell.payload();
        if crc10(payload) != 0 {
            return Err(OamError::Crc);
        }
        let oam_type = OamType::from_bits(payload[0] >> 4).ok_or(OamError::UnknownCodepoint)?;
        let function =
            OamFunction::from_bits(payload[0] & 0x0F).ok_or(OamError::UnknownCodepoint)?;
        Ok(OamCell {
            scope,
            oam_type,
            function,
            loopback_indication: payload[1] & 1 != 0,
            tag: u32::from_be_bytes([payload[2], payload[3], payload[4], payload[5]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VcId {
        VcId::new(0, 111)
    }

    #[test]
    fn loopback_roundtrip() {
        let req = OamCell::loopback_request(0xCAFE_F00D);
        let cell = req.emit(vc());
        let parsed = OamCell::parse(&cell).unwrap();
        assert_eq!(parsed, req);
        assert!(parsed.loopback_indication);
        assert_eq!(parsed.tag, 0xCAFE_F00D);
    }

    #[test]
    fn reply_clears_indication_keeps_tag() {
        let req = OamCell::loopback_request(42);
        let rep = req.loopback_reply();
        assert!(!rep.loopback_indication);
        assert_eq!(rep.tag, 42);
        let parsed = OamCell::parse(&rep.emit(vc())).unwrap();
        assert_eq!(parsed, rep);
    }

    #[test]
    fn all_codepoints_roundtrip() {
        for (t, f) in [
            (OamType::FaultManagement, OamFunction::Ais),
            (OamType::FaultManagement, OamFunction::Rdi),
            (OamType::FaultManagement, OamFunction::ContinuityCheck),
            (OamType::PerformanceManagement, OamFunction::Loopback),
            (OamType::ActivationDeactivation, OamFunction::Ais),
        ] {
            for scope in [OamScope::Segment, OamScope::EndToEnd] {
                let oc = OamCell {
                    scope,
                    oam_type: t,
                    function: f,
                    loopback_indication: false,
                    tag: 7,
                };
                assert_eq!(OamCell::parse(&oc.emit(vc())).unwrap(), oc);
            }
        }
    }

    #[test]
    fn corrupted_payload_rejected() {
        let mut cell = OamCell::loopback_request(1).emit(vc());
        cell.payload_mut()[10] ^= 0x01;
        assert_eq!(OamCell::parse(&cell), Err(OamError::Crc));
    }

    #[test]
    fn data_cells_are_not_oam() {
        let cell = Cell::new(&HeaderRepr::data(vc(), false), &[0u8; PAYLOAD_SIZE]).unwrap();
        assert_eq!(OamCell::parse(&cell), Err(OamError::NotOam));
    }

    #[test]
    fn unknown_codepoint_rejected() {
        let mut oc = OamCell::loopback_request(1).emit(vc());
        // Corrupt the type nibble and re-CRC so only the codepoint is bad.
        let payload = oc.payload_mut();
        payload[0] = 0xF8; // type 1111 invalid
        payload[46] = 0;
        payload[47] = 0;
        let c = crc10_bits(payload, 46 * 8 + 6);
        payload[46] |= (c >> 8) as u8;
        payload[47] = c as u8;
        assert_eq!(OamCell::parse(&oc), Err(OamError::UnknownCodepoint));
    }
}
