//! Header Error Control: CRC-8 over the first four header octets.
//!
//! ITU-T I.432 specifies the HEC as the remainder of the 32 header bits
//! multiplied by x⁸, divided by g(x) = x⁸ + x² + x + 1, XORed with the
//! fixed coset pattern `01010101` (0x55). The coset makes long runs of
//! zeros in the header produce a non-zero HEC, which the cell-delineation
//! process depends on.
//!
//! Because the code's minimum distance over the 40-bit codeword is 4, a
//! receiver can **correct any single-bit error** and **detect all double-
//! bit errors**. The receiver operates a two-mode state machine
//! (I.432 §4.3.2): in *correction mode* a single-bit error is corrected
//! (and the receiver drops to *detection mode*); in detection mode any
//! errored cell is discarded; an error-free cell returns the receiver to
//! correction mode. This protects against bursts: only the first error of
//! a burst is ever "corrected", the rest are discarded.
//!
//! Tables are built at compile time with `const fn`, so there is no lazy
//! initialisation on the hot path.

/// Number of bits covered by the HEC code (4 header octets + HEC octet).
pub const CODEWORD_BITS: u32 = 40;

/// The CRC-8 generator polynomial x⁸ + x² + x + 1 (low 8 bits).
pub const POLY: u8 = 0x07;

/// The coset pattern added to the CRC per I.432.
pub const COSET: u8 = 0x55;

/// Bitwise CRC-8 of one byte folded into `crc` (MSB first).
const fn crc8_byte(mut crc: u8, byte: u8) -> u8 {
    crc ^= byte;
    let mut i = 0;
    while i < 8 {
        crc = if crc & 0x80 != 0 {
            (crc << 1) ^ POLY
        } else {
            crc << 1
        };
        i += 1;
    }
    crc
}

/// 256-entry CRC-8 table, built at compile time.
const CRC8_TABLE: [u8; 256] = {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = crc8_byte(0, i as u8);
        i += 1;
    }
    table
};

/// Fused fold tables: `CRC8_FOLD[k][b]` is the CRC-8 contribution of
/// byte value `b` sitting `k` bytes before the end of the 4-octet
/// header — `CRC8_TABLE` applied `k+1` times, by linearity of the code
/// (advancing through a zero byte from state `s` is just `CRC8_TABLE[s]`).
/// Folding the four octets becomes four *independent* lookups XORed
/// together, with no serial table-walk dependency — the form the
/// delineation SYNC fast path wants.
const CRC8_FOLD: [[u8; 256]; 4] = {
    let mut t = [[0u8; 256]; 4];
    let mut i = 0;
    while i < 256 {
        t[0][i] = CRC8_TABLE[i];
        t[1][i] = CRC8_TABLE[t[0][i] as usize];
        t[2][i] = CRC8_TABLE[t[1][i] as usize];
        t[3][i] = CRC8_TABLE[t[2][i] as usize];
        i += 1;
    }
    t
};

/// Compute the HEC value for the first four header octets.
#[inline]
pub fn compute(header4: &[u8; 4]) -> u8 {
    CRC8_FOLD[3][header4[0] as usize]
        ^ CRC8_FOLD[2][header4[1] as usize]
        ^ CRC8_FOLD[1][header4[2] as usize]
        ^ CRC8_FOLD[0][header4[3] as usize]
        ^ COSET
}

/// The 8-bit syndrome of a received 5-octet header, as a fused 5-byte
/// table fold (four independent lookups, the HEC octet, the coset).
///
/// Zero iff the codeword is error-free. By linearity of the CRC the
/// syndrome of a corrupted header equals the syndrome of the error
/// pattern alone, which is what makes single-bit correction a table
/// lookup.
#[inline]
pub fn syndrome(header5: &[u8; 5]) -> u8 {
    CRC8_FOLD[3][header5[0] as usize]
        ^ CRC8_FOLD[2][header5[1] as usize]
        ^ CRC8_FOLD[1][header5[2] as usize]
        ^ CRC8_FOLD[0][header5[3] as usize]
        ^ COSET
        ^ header5[4]
}

/// Map from syndrome to the single flipped bit position (0..40, MSB of
/// octet 0 = bit 0), or 0xFF if the syndrome does not correspond to any
/// single-bit error. Built at compile time by flipping each bit of a
/// zero codeword and computing its syndrome — correct by linearity.
const SYNDROME_TO_BIT: [u8; 256] = {
    let mut map = [0xFFu8; 256];
    let mut bit = 0;
    while bit < 40 {
        // Build the error pattern e with only `bit` set.
        let mut e = [0u8; 5];
        e[bit / 8] = 0x80 >> (bit % 8);
        // Syndrome of pattern alone: CRC-8 of first 4 bytes XOR byte 5.
        // (Coset cancels: syndrome() applies it once to data and the
        // transmitter applied it once, so for the *error pattern* we must
        // not apply the coset — compute raw.)
        let mut crc = 0u8;
        let mut i = 0;
        while i < 4 {
            crc = crc8_byte(crc, e[i]);
            i += 1;
        }
        let s = crc ^ e[4];
        map[s as usize] = bit as u8;
        bit += 1;
    }
    map
};

/// Outcome of checking one header against its HEC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HecResult {
    /// Header is error-free.
    Valid,
    /// Exactly one bit appears flipped; `bit` is its position (0..40) and
    /// the caller may correct it by re-inverting.
    SingleBit { bit: u8 },
    /// More than one bit is in error; the header is unusable.
    Uncorrectable,
}

/// Classify a received 5-octet header.
#[inline]
pub fn check(header5: &[u8; 5]) -> HecResult {
    let s = syndrome(header5);
    if s == 0 {
        return HecResult::Valid;
    }
    match SYNDROME_TO_BIT[s as usize] {
        0xFF => HecResult::Uncorrectable,
        bit => HecResult::SingleBit { bit },
    }
}

/// Flip bit `bit` (0..40) of a 5-octet header in place.
#[inline]
pub fn flip_bit(header5: &mut [u8; 5], bit: u8) {
    debug_assert!(bit < 40);
    header5[(bit / 8) as usize] ^= 0x80 >> (bit % 8);
}

/// Receiver operating mode per I.432 §4.3.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HecRxMode {
    /// Single-bit errors are corrected; detecting any error switches the
    /// receiver to detection mode.
    #[default]
    Correction,
    /// All errored cells are discarded; an error-free cell returns the
    /// receiver to correction mode.
    Detection,
}

/// What the HEC receiver decided about one cell header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HecVerdict {
    /// Accept the cell; header unmodified.
    Accept,
    /// Accept the cell after the receiver corrected a single-bit error
    /// (the header passed in was modified in place).
    AcceptCorrected,
    /// Discard the cell.
    Discard,
}

/// Stateful HEC receiver implementing the correction/detection mode
/// state machine, with counters for the experiment harness.
#[derive(Clone, Debug, Default)]
pub struct HecReceiver {
    mode: HecRxMode,
    accepted: u64,
    corrected: u64,
    discarded: u64,
}

impl HecReceiver {
    /// New receiver in correction mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current mode.
    pub fn mode(&self) -> HecRxMode {
        self.mode
    }
    /// Cells accepted without modification.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
    /// Cells accepted after single-bit correction.
    pub fn corrected(&self) -> u64 {
        self.corrected
    }
    /// Cells discarded.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Run one header through the receiver. May modify `header5`
    /// (single-bit correction). Returns the verdict and updates mode.
    pub fn receive(&mut self, header5: &mut [u8; 5]) -> HecVerdict {
        let outcome = check(header5);
        match (self.mode, outcome) {
            (_, HecResult::Valid) => {
                self.mode = HecRxMode::Correction;
                self.accepted += 1;
                HecVerdict::Accept
            }
            (HecRxMode::Correction, HecResult::SingleBit { bit }) => {
                flip_bit(header5, bit);
                self.mode = HecRxMode::Detection;
                self.corrected += 1;
                HecVerdict::AcceptCorrected
            }
            (HecRxMode::Correction, HecResult::Uncorrectable)
            | (HecRxMode::Detection, HecResult::SingleBit { .. })
            | (HecRxMode::Detection, HecResult::Uncorrectable) => {
                self.mode = HecRxMode::Detection;
                self.discarded += 1;
                HecVerdict::Discard
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cell_hec_is_0x52() {
        // The canonical test vector: the idle-cell header 00 00 00 01 has
        // HEC 0x52 (widely published in I.432 implementations).
        assert_eq!(compute(&[0x00, 0x00, 0x00, 0x01]), 0x52);
    }

    #[test]
    fn all_zero_header_hec_is_coset() {
        // CRC of zeros is zero, so the HEC is exactly the coset.
        assert_eq!(compute(&[0, 0, 0, 0]), COSET);
    }

    /// Pin the CRC-8 table itself (poly 0x07, MSB-first) — spot entries
    /// plus the whole-table sum — and a published header vector.
    #[test]
    fn table_pinned_to_known_good_vectors() {
        assert_eq!(CRC8_TABLE[0], 0x00);
        assert_eq!(CRC8_TABLE[1], 0x07);
        assert_eq!(CRC8_TABLE[255], 0xF3);
        let sum: u32 = CRC8_TABLE.iter().map(|&e| e as u32).sum();
        assert_eq!(sum, 32_640);
        assert_eq!(compute(&[0x12, 0x34, 0x56, 0x78]), 0x49);
    }

    #[test]
    fn valid_header_has_zero_syndrome() {
        let h4 = [0x12, 0x34, 0x56, 0x78];
        let mut h5 = [0u8; 5];
        h5[..4].copy_from_slice(&h4);
        h5[4] = compute(&h4);
        assert_eq!(syndrome(&h5), 0);
        assert_eq!(check(&h5), HecResult::Valid);
    }

    #[test]
    fn every_single_bit_error_is_corrected_exhaustive() {
        // Exhaustive over all 40 bit positions for several headers.
        for &h4 in &[
            [0u8, 0, 0, 0],
            [0x12, 0x34, 0x56, 0x78],
            [0xFF, 0xFF, 0xFF, 0xFF],
            [0xA5, 0x5A, 0xC3, 0x3C],
        ] {
            let mut good = [0u8; 5];
            good[..4].copy_from_slice(&h4);
            good[4] = compute(&h4);
            for bit in 0..40u8 {
                let mut bad = good;
                flip_bit(&mut bad, bit);
                match check(&bad) {
                    HecResult::SingleBit { bit: b } => assert_eq!(b, bit),
                    other => panic!("bit {bit}: expected SingleBit, got {other:?}"),
                }
                // And correcting restores the original.
                let mut fixed = bad;
                flip_bit(&mut fixed, bit);
                assert_eq!(fixed, good);
            }
        }
    }

    #[test]
    fn every_double_bit_error_is_detected_exhaustive() {
        // d_min = 4, so no 2-bit error may alias to Valid or to a
        // *wrong* single-bit correction that silently corrupts. A 2-bit
        // error may legitimately map to SingleBit (miscorrection is
        // allowed by the code only if distance says so) — for this code,
        // distance 4 means a weight-2 error is at distance 2 from the
        // sent word and ≥2 from every other codeword, so it can never
        // produce syndrome 0, but it CAN look like a single-bit error of
        // a different codeword only if some weight-3 pattern is a
        // codeword, which distance 4 forbids. Hence: never Valid, never
        // SingleBit.
        let h4 = [0x13, 0x57, 0x9B, 0xDF];
        let mut good = [0u8; 5];
        good[..4].copy_from_slice(&h4);
        good[4] = compute(&h4);
        for b1 in 0..40u8 {
            for b2 in (b1 + 1)..40u8 {
                let mut bad = good;
                flip_bit(&mut bad, b1);
                flip_bit(&mut bad, b2);
                assert_eq!(
                    check(&bad),
                    HecResult::Uncorrectable,
                    "bits {b1},{b2} not detected as uncorrectable"
                );
            }
        }
    }

    #[test]
    fn receiver_mode_machine() {
        let h4 = [0x01, 0x02, 0x03, 0x04];
        let mut good = [0u8; 5];
        good[..4].copy_from_slice(&h4);
        good[4] = compute(&h4);

        let mut rx = HecReceiver::new();
        assert_eq!(rx.mode(), HecRxMode::Correction);

        // Clean cell: accepted, stays in correction.
        let mut h = good;
        assert_eq!(rx.receive(&mut h), HecVerdict::Accept);
        assert_eq!(rx.mode(), HecRxMode::Correction);

        // Single-bit error: corrected, drops to detection.
        let mut h = good;
        flip_bit(&mut h, 13);
        assert_eq!(rx.receive(&mut h), HecVerdict::AcceptCorrected);
        assert_eq!(h, good, "correction must restore the header");
        assert_eq!(rx.mode(), HecRxMode::Detection);

        // Second single-bit error while in detection: discarded.
        let mut h = good;
        flip_bit(&mut h, 2);
        assert_eq!(rx.receive(&mut h), HecVerdict::Discard);
        assert_eq!(rx.mode(), HecRxMode::Detection);

        // Clean cell returns to correction mode.
        let mut h = good;
        assert_eq!(rx.receive(&mut h), HecVerdict::Accept);
        assert_eq!(rx.mode(), HecRxMode::Correction);

        assert_eq!(rx.accepted(), 2);
        assert_eq!(rx.corrected(), 1);
        assert_eq!(rx.discarded(), 1);
    }

    #[test]
    fn multi_bit_error_in_correction_mode_discards() {
        let mut rx = HecReceiver::new();
        let h4 = [9, 9, 9, 9];
        let mut h = [0u8; 5];
        h[..4].copy_from_slice(&h4);
        h[4] = compute(&h4);
        flip_bit(&mut h, 0);
        flip_bit(&mut h, 1);
        flip_bit(&mut h, 2); // weight-3 error: overwhelmingly detected
        let v = rx.receive(&mut h);
        // A weight-3 pattern may alias to a single-bit syndrome of
        // another codeword (distance 4 allows it); both Discard and
        // AcceptCorrected are legal receiver behaviours. What must hold:
        // the receiver left correction mode.
        assert_ne!(v, HecVerdict::Accept);
        assert_eq!(rx.mode(), HecRxMode::Detection);
    }

    #[test]
    fn fused_fold_matches_serial_table_walk() {
        // The fold tables unroll the serial walk by linearity; prove the
        // fused `compute`/`syndrome` against the straight-line walk over
        // a sweep of headers (every byte position exercised through all
        // 256 values at least once).
        fn walk4(h: &[u8]) -> u8 {
            let mut crc = 0u8;
            for &b in h {
                crc = CRC8_TABLE[(crc ^ b) as usize];
            }
            crc
        }
        for seed in 0u32..1024 {
            let h4 = [
                seed as u8,
                seed.wrapping_mul(31).wrapping_add(7) as u8,
                seed.wrapping_mul(131).wrapping_add(89) as u8,
                seed.wrapping_mul(251).wrapping_add(193) as u8,
            ];
            assert_eq!(compute(&h4), walk4(&h4) ^ COSET, "{h4:?}");
            let mut h5 = [0u8; 5];
            h5[..4].copy_from_slice(&h4);
            h5[4] = (seed >> 3) as u8;
            assert_eq!(syndrome(&h5), walk4(&h4) ^ COSET ^ h5[4], "{h5:?}");
        }
    }

    #[test]
    fn table_matches_bitwise() {
        // CRC8_TABLE is definitionally crc8_byte; spot-check composition
        // over multi-byte inputs against a pure bitwise fold.
        fn bitwise(bytes: &[u8]) -> u8 {
            let mut crc = 0u8;
            for &b in bytes {
                crc = crc8_byte(crc, b);
            }
            crc
        }
        for seed in 0u32..256 {
            let h4 = [
                seed as u8,
                seed.wrapping_mul(31) as u8,
                seed.wrapping_mul(131) as u8,
                seed.wrapping_mul(251) as u8,
            ];
            assert_eq!(compute(&h4), bitwise(&h4) ^ COSET);
        }
    }
}
