//! The Generic Cell Rate Algorithm (ITU-T I.371 / ATM Forum UNI 3.1),
//! virtual-scheduling formulation.
//!
//! GCRA(T, τ) decides whether each cell of a connection *conforms* to a
//! traffic contract with cell inter-arrival increment `T` (one cell per T
//! = the sustained rate) and tolerance `τ`. It is used here in two roles:
//!
//! * **Policing** (UPC) — a network element marks or drops
//!   non-conforming cells.
//! * **Shaping / pacing** — the transmit pipeline of the host interface
//!   asks "when is the *earliest* conforming departure time for the next
//!   cell of this VC?" and schedules the cell then. Pacing cells of one
//!   packet apart from each other — rather than blasting them back to
//!   back — was a key host-interface design decision of the era: it keeps
//!   a single VC from monopolising switch buffers and reduces loss.
//!
//! The virtual-scheduling form keeps one state variable, the theoretical
//! arrival time **TAT**.

use hni_sim::{Duration, Time};

/// GCRA(T, τ) in virtual-scheduling form.
///
/// ```
/// use hni_atm::Gcra;
/// use hni_sim::{Duration, Time};
///
/// // Police one cell per 100 ns with no tolerance.
/// let mut policer = Gcra::new(Duration::from_ns(100), Duration::ZERO);
/// assert!(policer.conforms(Time::from_ns(0)));
/// assert!(!policer.conforms(Time::from_ns(50)));  // 50 ns early
/// assert!(policer.conforms(Time::from_ns(100)));
///
/// // Shape: ask when the next cell may leave, then commit.
/// let mut shaper = Gcra::new(Duration::from_ns(100), Duration::ZERO);
/// let t0 = shaper.earliest_conforming(Time::ZERO);
/// shaper.stamp(t0);
/// let t1 = shaper.earliest_conforming(t0);
/// assert_eq!(t1 - t0, Duration::from_ns(100));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Gcra {
    /// Increment: ideal inter-cell spacing (1 / sustained cell rate).
    t: Duration,
    /// Tolerance: how early a cell may arrive relative to its TAT.
    tau: Duration,
    /// Theoretical arrival time of the next cell.
    tat: Time,
}

impl Gcra {
    /// New GCRA with increment `t` and tolerance `tau`, starting idle.
    pub fn new(t: Duration, tau: Duration) -> Self {
        assert!(t > Duration::ZERO, "increment must be positive");
        Gcra {
            t,
            tau,
            tat: Time::ZERO,
        }
    }

    /// Build from a cell rate (cells/second) and a permitted burst of
    /// `cdvt_cells` back-to-back cells at line rate (tolerance expressed
    /// in cell increments).
    pub fn from_rate(cells_per_second: f64, tolerance_cells: f64) -> Self {
        assert!(cells_per_second > 0.0);
        let t = Duration::from_s_f64(1.0 / cells_per_second);
        let tau = Duration::from_s_f64(tolerance_cells / cells_per_second);
        Gcra::new(t, tau)
    }

    /// The increment T.
    pub fn increment(&self) -> Duration {
        self.t
    }
    /// The tolerance τ.
    pub fn tolerance(&self) -> Duration {
        self.tau
    }
    /// Current theoretical arrival time.
    pub fn tat(&self) -> Time {
        self.tat
    }

    /// Police a cell arriving at `now`: returns `true` (and advances
    /// state) if it conforms, `false` (state unchanged) if not.
    pub fn conforms(&mut self, now: Time) -> bool {
        // Non-conforming iff now < TAT − τ.
        if self.tat > now + self.tau {
            return false;
        }
        self.tat = self.tat.max(now) + self.t;
        true
    }

    /// Shaping query: the earliest time ≥ `now` at which a cell may be
    /// sent and conform. Does not change state.
    pub fn earliest_conforming(&self, now: Time) -> Time {
        let bound = Time::from_ps(self.tat.as_ps().saturating_sub(self.tau.as_ps()));
        now.max(bound)
    }

    /// Record that a cell was sent at `at` (which the caller guarantees
    /// conforms — typically obtained from [`Self::earliest_conforming`]).
    pub fn stamp(&mut self, at: Time) {
        debug_assert!(
            self.tat <= at + self.tau,
            "stamped a non-conforming departure"
        );
        self.tat = self.tat.max(at) + self.t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gcra_ns(t_ns: u64, tau_ns: u64) -> Gcra {
        Gcra::new(Duration::from_ns(t_ns), Duration::from_ns(tau_ns))
    }

    #[test]
    fn exactly_spaced_cells_conform() {
        let mut g = gcra_ns(100, 0);
        for i in 0..100 {
            assert!(g.conforms(Time::from_ns(i * 100)));
        }
    }

    #[test]
    fn early_cell_without_tolerance_fails() {
        let mut g = gcra_ns(100, 0);
        assert!(g.conforms(Time::from_ns(0)));
        assert!(!g.conforms(Time::from_ns(50)), "50ns early, τ=0");
        // State unchanged by the violation: a conforming cell at 100 passes.
        assert!(g.conforms(Time::from_ns(100)));
    }

    #[test]
    fn tolerance_admits_bounded_burst() {
        // τ = 3T admits a back-to-back burst of 4 cells (MBS = 1 + τ/T... for
        // back-to-back at infinite line rate: cells at t=0,0,0,0).
        let mut g = gcra_ns(100, 300);
        let t0 = Time::from_ns(1000);
        let mut admitted = 0;
        for _ in 0..10 {
            if g.conforms(t0) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 4);
    }

    #[test]
    fn slower_than_contract_always_conforms() {
        let mut g = gcra_ns(100, 0);
        for i in 0..50 {
            assert!(g.conforms(Time::from_ns(i * 150)));
        }
    }

    #[test]
    fn earliest_conforming_spaces_cells() {
        let mut g = gcra_ns(100, 0);
        let mut now = Time::ZERO;
        let mut departures = Vec::new();
        for _ in 0..5 {
            let at = g.earliest_conforming(now);
            g.stamp(at);
            departures.push(at);
            now = at; // greedy sender: ready immediately
        }
        assert_eq!(
            departures,
            vec![
                Time::from_ns(0),
                Time::from_ns(100),
                Time::from_ns(200),
                Time::from_ns(300),
                Time::from_ns(400)
            ]
        );
    }

    #[test]
    fn shaped_stream_conforms_at_policer() {
        // Whatever a shaper with GCRA(T,0) emits, a policer with the same
        // parameters must accept.
        let mut shaper = gcra_ns(273, 0);
        let mut policer = gcra_ns(273, 0);
        let mut now = Time::ZERO;
        for i in 0..1000 {
            let at = shaper.earliest_conforming(now);
            shaper.stamp(at);
            assert!(policer.conforms(at), "cell {i} rejected");
            // Sender becomes ready again at arbitrary (sometimes bursty) times.
            now = if i % 7 == 0 {
                at
            } else {
                at + Duration::from_ns((i % 5) * 50)
            };
        }
    }

    #[test]
    fn from_rate_matches_increment() {
        let g = Gcra::from_rate(1e6, 0.0); // 1M cells/s → T = 1 µs
        assert_eq!(g.increment(), Duration::from_us(1));
    }

    #[test]
    fn idle_connection_does_not_accumulate_credit_beyond_tau() {
        let mut g = gcra_ns(100, 0);
        assert!(g.conforms(Time::from_us(100))); // long idle
                                                 // Immediately after, still limited to one per T.
        assert!(!g.conforms(Time::from_us(100)));
    }
}
