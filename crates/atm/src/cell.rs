//! The 53-octet ATM cell: wire format wrapper and owned header
//! representation, in the smoltcp `Packet`/`Repr` idiom.
//!
//! Wire layout of the 5-octet header (UNI format):
//!
//! ```text
//!  octet 0:  GFC(4)        | VPI(11..8)
//!  octet 1:  VPI(7..4)     | VCI(15..12)
//!  octet 2:  VCI(11..4)
//!  octet 3:  VCI(3..0)     | PTI(3) | CLP(1)
//!  octet 4:  HEC
//! ```
//!
//! At the NNI the GFC field is an extra four high-order VPI bits. Both
//! formats are supported; the host interface under study sits at a UNI.

use crate::hec;
use crate::vc::VcId;
use core::fmt;

/// Total cell size on the wire, in octets.
pub const CELL_SIZE: usize = 53;
/// Header size, in octets.
pub const HEADER_SIZE: usize = 5;
/// Payload size, in octets.
pub const PAYLOAD_SIZE: usize = 48;

/// Which header layout is in use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HeaderFormat {
    /// User-network interface: 4-bit GFC, 8-bit VPI.
    #[default]
    Uni,
    /// Network-node interface: 12-bit VPI, no GFC.
    Nni,
}

/// Payload Type Indicator: the 3 PTI bits, decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pti {
    /// User data cell. `congestion` is the EFCI bit; `last` is the
    /// ATM-user-to-ATM-user indication bit — AAL5 uses it to mark the
    /// final cell of a CPCS-PDU.
    UserData { congestion: bool, last: bool },
    /// OAM F5 segment cell.
    OamSegment,
    /// OAM F5 end-to-end cell.
    OamEndToEnd,
    /// Resource management cell (e.g. ABR RM cells).
    ResourceManagement,
    /// Reserved PTI value 7.
    Reserved,
}

impl Pti {
    /// Decode from the 3 PTI bits.
    pub fn from_bits(bits: u8) -> Pti {
        match bits & 0b111 {
            0b000 => Pti::UserData {
                congestion: false,
                last: false,
            },
            0b001 => Pti::UserData {
                congestion: false,
                last: true,
            },
            0b010 => Pti::UserData {
                congestion: true,
                last: false,
            },
            0b011 => Pti::UserData {
                congestion: true,
                last: true,
            },
            0b100 => Pti::OamSegment,
            0b101 => Pti::OamEndToEnd,
            0b110 => Pti::ResourceManagement,
            _ => Pti::Reserved,
        }
    }

    /// Encode to the 3 PTI bits.
    pub fn to_bits(self) -> u8 {
        match self {
            Pti::UserData { congestion, last } => ((congestion as u8) << 1) | (last as u8),
            Pti::OamSegment => 0b100,
            Pti::OamEndToEnd => 0b101,
            Pti::ResourceManagement => 0b110,
            Pti::Reserved => 0b111,
        }
    }

    /// Whether this is a user-data cell.
    pub fn is_user_data(self) -> bool {
        matches!(self, Pti::UserData { .. })
    }

    /// Whether this user-data cell carries the end-of-frame indication
    /// (false for non-user-data cells).
    pub fn is_last(self) -> bool {
        matches!(self, Pti::UserData { last: true, .. })
    }
}

/// Errors from decoding a header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeaderError {
    /// HEC check failed uncorrectably.
    Hec,
    /// VPI exceeds the format's field width (emit only).
    VpiRange,
    /// GFC exceeds 4 bits (emit only).
    GfcRange,
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::Hec => write!(f, "uncorrectable HEC error"),
            HeaderError::VpiRange => write!(f, "VPI out of range for header format"),
            HeaderError::GfcRange => write!(f, "GFC out of range"),
        }
    }
}

impl std::error::Error for HeaderError {}

/// Owned, high-level representation of a cell header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeaderRepr {
    /// UNI or NNI layout.
    pub format: HeaderFormat,
    /// Generic flow control (UNI only; must be 0..16). Ignored at NNI.
    pub gfc: u8,
    /// Virtual path identifier (8 bits at UNI, 12 at NNI).
    pub vpi: u16,
    /// Virtual channel identifier (16 bits).
    pub vci: u16,
    /// Payload type.
    pub pti: Pti,
    /// Cell loss priority: `true` = low priority (discard-eligible).
    pub clp: bool,
}

impl HeaderRepr {
    /// A user-data header on `vc`, UNI format, high priority.
    pub fn data(vc: VcId, last: bool) -> Self {
        HeaderRepr {
            format: HeaderFormat::Uni,
            gfc: 0,
            vpi: vc.vpi,
            vci: vc.vci,
            pti: Pti::UserData {
                congestion: false,
                last,
            },
            clp: false,
        }
    }

    /// The VC this header addresses.
    pub fn vc(&self) -> VcId {
        VcId {
            vpi: self.vpi,
            vci: self.vci,
        }
    }

    /// Parse a 5-octet header. The HEC must already be valid (run
    /// [`hec::check`]/[`hec::HecReceiver`] first); this decodes fields
    /// only and fails if the stored HEC mismatches, as a safety net.
    pub fn parse(bytes: &[u8; HEADER_SIZE], format: HeaderFormat) -> Result<Self, HeaderError> {
        if hec::syndrome(bytes) != 0 {
            return Err(HeaderError::Hec);
        }
        let (gfc, vpi) = match format {
            HeaderFormat::Uni => (
                bytes[0] >> 4,
                (((bytes[0] & 0x0F) as u16) << 4) | ((bytes[1] >> 4) as u16),
            ),
            HeaderFormat::Nni => (0, ((bytes[0] as u16) << 4) | ((bytes[1] >> 4) as u16)),
        };
        let vci = (((bytes[1] & 0x0F) as u16) << 12)
            | ((bytes[2] as u16) << 4)
            | ((bytes[3] >> 4) as u16);
        let pti = Pti::from_bits((bytes[3] >> 1) & 0b111);
        let clp = bytes[3] & 1 != 0;
        Ok(HeaderRepr {
            format,
            gfc,
            vpi,
            vci,
            pti,
            clp,
        })
    }

    /// Emit the 5-octet header, computing the HEC.
    pub fn emit(&self, bytes: &mut [u8; HEADER_SIZE]) -> Result<(), HeaderError> {
        match self.format {
            HeaderFormat::Uni => {
                if self.gfc > 0x0F {
                    return Err(HeaderError::GfcRange);
                }
                if self.vpi > 0xFF {
                    return Err(HeaderError::VpiRange);
                }
                bytes[0] = (self.gfc << 4) | ((self.vpi >> 4) as u8);
            }
            HeaderFormat::Nni => {
                if self.vpi > 0xFFF {
                    return Err(HeaderError::VpiRange);
                }
                bytes[0] = (self.vpi >> 4) as u8;
            }
        }
        bytes[1] = (((self.vpi & 0x0F) as u8) << 4) | ((self.vci >> 12) as u8);
        bytes[2] = (self.vci >> 4) as u8;
        bytes[3] = (((self.vci & 0x0F) as u8) << 4) | (self.pti.to_bits() << 1) | (self.clp as u8);
        let mut h4 = [0u8; 4];
        h4.copy_from_slice(&bytes[..4]);
        bytes[4] = hec::compute(&h4);
        Ok(())
    }
}

/// An owned 53-octet cell.
///
/// The bytes are always a structurally complete cell; header-field access
/// goes through [`HeaderRepr`]. Payload access is direct.
#[derive(Clone, PartialEq, Eq)]
pub struct Cell {
    bytes: [u8; CELL_SIZE],
}

impl Cell {
    /// Build a cell from a header representation and exactly 48 payload
    /// octets.
    pub fn new(header: &HeaderRepr, payload: &[u8; PAYLOAD_SIZE]) -> Result<Self, HeaderError> {
        let mut bytes = [0u8; CELL_SIZE];
        let mut h = [0u8; HEADER_SIZE];
        header.emit(&mut h)?;
        bytes[..HEADER_SIZE].copy_from_slice(&h);
        bytes[HEADER_SIZE..].copy_from_slice(payload);
        Ok(Cell { bytes })
    }

    /// The standard idle cell (VPI=0, VCI=0, PTI=0, CLP=1, payload 0x6A).
    ///
    /// Idle cells are inserted by the transmission convergence sublayer
    /// when no assigned cell is available, to fill the synchronous
    /// payload.
    pub fn idle() -> Self {
        let mut bytes = [0x6A; CELL_SIZE];
        bytes[0] = 0x00;
        bytes[1] = 0x00;
        bytes[2] = 0x00;
        bytes[3] = 0x01;
        bytes[4] = 0x52; // HEC of 00 00 00 01
        Cell { bytes }
    }

    /// Whether this is the idle cell (header match only).
    pub fn is_idle(&self) -> bool {
        self.bytes[..4] == [0x00, 0x00, 0x00, 0x01]
    }

    /// Whether this cell is unassigned (VPI=0, VCI=0, CLP=0 pattern).
    pub fn is_unassigned(&self) -> bool {
        self.bytes[..4] == [0x00, 0x00, 0x00, 0x00]
    }

    /// Wrap 53 raw octets. No validation — call
    /// [`Cell::header`] to find out whether the header survives parsing.
    pub fn from_bytes(bytes: [u8; CELL_SIZE]) -> Self {
        Cell { bytes }
    }

    /// The raw 53 octets.
    pub fn as_bytes(&self) -> &[u8; CELL_SIZE] {
        &self.bytes
    }

    /// Mutable access to the raw octets (for fault injection).
    pub fn as_bytes_mut(&mut self) -> &mut [u8; CELL_SIZE] {
        &mut self.bytes
    }

    /// The 5 header octets.
    pub fn header_bytes(&self) -> [u8; HEADER_SIZE] {
        let mut h = [0u8; HEADER_SIZE];
        h.copy_from_slice(&self.bytes[..HEADER_SIZE]);
        h
    }

    /// Mutable view of the 5 header octets.
    pub fn header_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[..HEADER_SIZE]
    }

    /// Parse the header as UNI format.
    pub fn header(&self) -> Result<HeaderRepr, HeaderError> {
        HeaderRepr::parse(&self.header_bytes(), HeaderFormat::Uni)
    }

    /// Parse the header in the given format.
    pub fn header_as(&self, format: HeaderFormat) -> Result<HeaderRepr, HeaderError> {
        HeaderRepr::parse(&self.header_bytes(), format)
    }

    /// Overwrite the header (recomputes HEC).
    pub fn set_header(&mut self, header: &HeaderRepr) -> Result<(), HeaderError> {
        let mut h = [0u8; HEADER_SIZE];
        header.emit(&mut h)?;
        self.bytes[..HEADER_SIZE].copy_from_slice(&h);
        Ok(())
    }

    /// The 48 payload octets.
    pub fn payload(&self) -> &[u8] {
        &self.bytes[HEADER_SIZE..]
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[HEADER_SIZE..]
    }
}

impl fmt::Debug for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.header() {
            Ok(h) => write!(
                f,
                "Cell {{ vpi: {}, vci: {}, pti: {:?}, clp: {} }}",
                h.vpi, h.vci, h.pti, h.clp
            ),
            Err(_) => write!(f, "Cell {{ invalid header {:02X?} }}", &self.bytes[..5]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(vpi: u16, vci: u16) -> VcId {
        VcId { vpi, vci }
    }

    #[test]
    fn header_roundtrip_uni() {
        let h = HeaderRepr {
            format: HeaderFormat::Uni,
            gfc: 0xA,
            vpi: 0xBC,
            vci: 0xDEF1,
            pti: Pti::UserData {
                congestion: true,
                last: true,
            },
            clp: true,
        };
        let mut b = [0u8; 5];
        h.emit(&mut b).unwrap();
        let parsed = HeaderRepr::parse(&b, HeaderFormat::Uni).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn header_roundtrip_nni() {
        let h = HeaderRepr {
            format: HeaderFormat::Nni,
            gfc: 0,
            vpi: 0xABC, // needs 12 bits
            vci: 0x1234,
            pti: Pti::OamEndToEnd,
            clp: false,
        };
        let mut b = [0u8; 5];
        h.emit(&mut b).unwrap();
        let parsed = HeaderRepr::parse(&b, HeaderFormat::Nni).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn emit_range_checks() {
        let mut h = HeaderRepr::data(vc(0x100, 0), false); // VPI > 8 bits
        let mut b = [0u8; 5];
        assert_eq!(h.emit(&mut b), Err(HeaderError::VpiRange));
        h.vpi = 1;
        h.gfc = 16;
        assert_eq!(h.emit(&mut b), Err(HeaderError::GfcRange));
    }

    #[test]
    fn parse_rejects_bad_hec() {
        let h = HeaderRepr::data(vc(1, 42), false);
        let mut b = [0u8; 5];
        h.emit(&mut b).unwrap();
        b[4] ^= 0xFF;
        assert_eq!(
            HeaderRepr::parse(&b, HeaderFormat::Uni),
            Err(HeaderError::Hec)
        );
    }

    #[test]
    fn pti_bits_roundtrip() {
        for bits in 0..8u8 {
            assert_eq!(Pti::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn pti_semantics() {
        assert!(Pti::from_bits(0b001).is_last());
        assert!(!Pti::from_bits(0b000).is_last());
        assert!(!Pti::OamSegment.is_last());
        assert!(Pti::from_bits(0b011).is_user_data());
        assert!(!Pti::ResourceManagement.is_user_data());
    }

    #[test]
    fn idle_cell_is_valid_and_recognized() {
        let c = Cell::idle();
        assert!(c.is_idle());
        assert!(!c.is_unassigned());
        let h = c.header().unwrap();
        assert_eq!(h.vpi, 0);
        assert_eq!(h.vci, 0);
        assert!(h.clp);
        assert_eq!(c.payload()[0], 0x6A);
    }

    #[test]
    fn cell_build_and_payload() {
        let payload = [0x42u8; PAYLOAD_SIZE];
        let c = Cell::new(&HeaderRepr::data(vc(3, 77), true), &payload).unwrap();
        assert_eq!(c.payload(), &payload);
        let h = c.header().unwrap();
        assert_eq!(h.vc(), vc(3, 77));
        assert!(h.pti.is_last());
    }

    #[test]
    fn set_header_recomputes_hec() {
        let mut c = Cell::idle();
        c.set_header(&HeaderRepr::data(vc(9, 9), false)).unwrap();
        let h5 = c.header_bytes();
        assert_eq!(crate::hec::syndrome(&h5), 0);
        assert_eq!(c.header().unwrap().vc(), vc(9, 9));
    }

    #[test]
    fn vci_field_spans_octets() {
        // VCI bits straddle octets 1..3; verify a walking-ones pattern.
        for shift in 0..16 {
            let vci = 1u16 << shift;
            let h = HeaderRepr::data(vc(0, vci), false);
            let mut b = [0u8; 5];
            h.emit(&mut b).unwrap();
            let parsed = HeaderRepr::parse(&b, HeaderFormat::Uni).unwrap();
            assert_eq!(parsed.vci, vci);
        }
    }

    #[test]
    fn vpi_field_spans_octets_uni() {
        for shift in 0..8 {
            let vpi = 1u16 << shift;
            let h = HeaderRepr::data(vc(vpi, 0), false);
            let mut b = [0u8; 5];
            h.emit(&mut b).unwrap();
            assert_eq!(HeaderRepr::parse(&b, HeaderFormat::Uni).unwrap().vpi, vpi);
        }
    }
}
