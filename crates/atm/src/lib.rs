//! # hni-atm — the ATM cell layer
//!
//! Everything below the adaptation layer and above the SONET path:
//!
//! * [`cell`] — the 53-byte cell: typed wrapper over the wire bytes plus an
//!   owned [`cell::HeaderRepr`], in the smoltcp wrapper/repr idiom.
//! * [`hec`] — the Header Error Control byte: CRC-8 (x⁸+x²+x+1) with the
//!   0x55 coset, single-bit **correction**, multi-bit detection, and the
//!   ITU-T I.432 correction↔detection receiver mode state machine.
//! * [`delineation`] — HUNT / PRESYNC / SYNC cell delineation on an
//!   arbitrary (bit-aligned) byte stream, ALPHA = 7, DELTA = 6.
//! * [`scrambler`] — the x⁴³+1 self-synchronising payload scrambler.
//! * [`gcra`] — the Generic Cell Rate Algorithm (virtual scheduling form),
//!   used both to police and to *shape* (pace) per-VC cell streams.
//! * [`oam`] — I.610 OAM F5 cells: loopback (the PVC connectivity
//!   check), AIS/RDI, continuity check; CRC-10 protected.
//! * [`crc10`] — the CRC-10 shared by OAM trailers and (via re-export)
//!   the AAL3/4 SAR trailer.
//! * [`slab`] — a fixed-slot cell arena ([`CellSlab`]/[`CellRef`]) so the
//!   segmentation → link → reassembly fast path allocates nothing per cell.
//! * [`vc`] — virtual path/channel identifiers.
//! * [`vctable`] — the million-VC connection table: sharded open
//!   addressing with 8-bit probe tags over slab arenas with
//!   generation-counted handles ([`VcTable`]/[`VcHandle`]).
//!
//! ## Scope
//!
//! This crate is pure protocol logic: no I/O, no clocks of its own (time
//! comes in as [`hni_sim::Time`] where needed). Signalling (Q.2931), OAM
//! flows beyond loopback/AIS/RDI/CC codecs, and VP switching are out of
//! scope — the host-interface architecture under study sits on
//! provisioned PVCs, as the Aurora testbed did.

pub mod cell;
pub mod crc10;
pub mod delineation;
pub mod gcra;
pub mod hec;
pub mod oam;
pub mod scrambler;
pub mod slab;
pub mod vc;
pub mod vctable;

pub use cell::{
    Cell, HeaderError, HeaderFormat, HeaderRepr, Pti, CELL_SIZE, HEADER_SIZE, PAYLOAD_SIZE,
};
pub use delineation::{Delineator, SyncState, ALPHA, DELTA};
pub use gcra::Gcra;
pub use hec::{HecReceiver, HecResult, HecRxMode};
pub use oam::{OamCell, OamError, OamFunction, OamScope, OamType};
pub use scrambler::{Descrambler, Scrambler};
pub use slab::{CellRef, CellSlab};
pub use vc::VcId;
pub use vctable::{TableStats, VcHandle, VcTable};
