//! Virtual connection identifiers.

use core::fmt;

/// A virtual connection: the (VPI, VCI) pair that identifies a cell's
/// connection on a link.
///
/// VCI values 0–31 are reserved by ITU-T for layer functions (idle cells,
/// OAM, signalling, ILMI); user data connections use VCI ≥ 32 — see
/// [`VcId::FIRST_USER_VCI`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VcId {
    /// Virtual path identifier (8 bits at UNI, 12 at NNI).
    pub vpi: u16,
    /// Virtual channel identifier (16 bits).
    pub vci: u16,
}

impl VcId {
    /// The lowest VCI available to user connections.
    pub const FIRST_USER_VCI: u16 = 32;

    /// Reserved VC for point-to-point signalling (VCI 5).
    pub const SIGNALLING: VcId = VcId { vpi: 0, vci: 5 };
    /// Reserved VC for ILMI (VCI 16).
    pub const ILMI: VcId = VcId { vpi: 0, vci: 16 };

    /// Construct a VC identifier.
    pub const fn new(vpi: u16, vci: u16) -> Self {
        VcId { vpi, vci }
    }

    /// Whether this VC is in the user-data range.
    pub fn is_user(&self) -> bool {
        self.vci >= Self::FIRST_USER_VCI
    }

    /// The 24-bit concatenated VPI·VCI value used as a CAM search key in
    /// the receive pipeline (UNI: 8-bit VPI + 16-bit VCI).
    pub fn cam_key(&self) -> u32 {
        ((self.vpi as u32) << 16) | self.vci as u32
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.vpi, self.vci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_range() {
        assert!(!VcId::SIGNALLING.is_user());
        assert!(!VcId::ILMI.is_user());
        assert!(VcId::new(0, 32).is_user());
        assert!(VcId::new(3, 1000).is_user());
    }

    #[test]
    fn cam_key_packs() {
        let vc = VcId::new(0xAB, 0xCDEF);
        assert_eq!(vc.cam_key(), 0x00AB_CDEF);
    }

    #[test]
    fn cam_key_edges() {
        // Max UNI VPI (8-bit) with max VCI fills exactly 24 bits.
        assert_eq!(VcId::new(255, 65535).cam_key(), 0x00FF_FFFF);
        // Max VCI alone occupies the low 16 bits only.
        assert_eq!(VcId::new(0, 65535).cam_key(), 0x0000_FFFF);
        // Max VPI alone occupies bits 16..24 only.
        assert_eq!(VcId::new(255, 0).cam_key(), 0x00FF_0000);
        assert_eq!(VcId::new(0, 0).cam_key(), 0);
    }

    #[test]
    fn cam_key_16_bit_boundary_does_not_alias() {
        // (vpi=0, vci=65535) vs (vpi=1, vci=0): adjacent across the
        // 16-bit boundary — a packing that added instead of OR-ing, or
        // shifted by the wrong width, would collide them.
        assert_ne!(VcId::new(0, 65535).cam_key(), VcId::new(1, 0).cam_key());
        assert_eq!(VcId::new(1, 0).cam_key(), VcId::new(0, 65535).cam_key() + 1);
        // The 24-bit corner vs the would-be 25th bit pattern.
        assert_ne!(VcId::new(255, 65535).cam_key(), VcId::new(0, 0).cam_key());
    }

    #[test]
    fn cam_key_edge_pairs_distinct_in_table() {
        // The corner keys must survive the VcTable's hash round trip as
        // distinct entries (guards against silent truncation in any
        // future key transform).
        let corners = [
            VcId::new(0, 0),
            VcId::new(0, 65535),
            VcId::new(1, 0),
            VcId::new(255, 0),
            VcId::new(255, 65535),
        ];
        let mut t: crate::VcTable<usize> = crate::VcTable::new();
        for (i, vc) in corners.iter().enumerate() {
            t.insert(vc.cam_key() as u64, i);
        }
        assert_eq!(t.len(), corners.len());
        for (i, vc) in corners.iter().enumerate() {
            assert_eq!(t.get_by_key(vc.cam_key() as u64), Some(&i), "{vc}");
        }
    }

    #[test]
    fn display() {
        assert_eq!(VcId::new(1, 42).to_string(), "1/42");
    }

    #[test]
    fn ordering_is_vpi_major() {
        assert!(VcId::new(1, 0) > VcId::new(0, 65535));
    }
}
