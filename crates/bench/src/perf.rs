//! Wall-clock perf harness: how fast the *implementation* runs, as
//! opposed to the simulated-cycle numbers every `R-*` experiment
//! reports.
//!
//! Four hot loops are timed with the criterion shim's calibrated
//! sampler ([`criterion::measure`]) and normalised to cells per second
//! of real CPU time:
//!
//! * `aal5_sar_slab` — AAL5 segmentation of a 9180-octet SDU burst
//!   through the zero-alloc [`CellSlab`] fast path.
//! * `hec_delineation` — HEC checking + cell delineation over a synced
//!   byte stream.
//! * `rx_reassembly` — AAL5 reassembly of slab cells via
//!   `deliver_burst`, with SDU buffers recycled to the spare pool.
//! * `e2e_cells` — segment → deliver round trip per burst, the full
//!   steady-state fast path.
//! * `vc_lookup` — the per-cell "which connection?" probe against a
//!   fully-populated sharded [`VcTable`], Zipf-distributed keys — the
//!   wall-clock companion of R-S1's deterministic probe counts.
//!
//! A fifth measurement times the R-F1 report sweep serially
//! (`jobs = 1`) and under the `HNI_JOBS` worker pool, reporting the
//! observed speedup **and the machine's core count** — the speedup is a
//! property of the host, not the code; on a single-core machine it is
//! ~1× by physics (see README "Performance").
//!
//! Results are written as `BENCH_PERF.json` (schema
//! `hni-bench-perf/1`, hand-rolled writer — the workspace has no JSON
//! dependency). Wall-clock numbers are hardware-dependent and are NOT
//! golden: CI validates the schema and the serial/parallel report
//! equality, never the timings themselves.

use crate::experiments::rf1_tx_throughput;
use crate::par_sweep::{available_cores, jobs_from_env};
use criterion::{measure, BenchResult};
use hni_aal::aal5::{self, Aal5Reassembler};
use hni_atm::{CellSlab, Delineator, VcId, VcTable, CELL_SIZE};
use hni_sim::{Duration, Rng, Time, Zipf};
use hni_telemetry::{json, HdrHist, LoopSample, SentinelRecord, TailReservoir, VcMetrics};
use hni_transport::{RtoConfig, RtoEstimator, SendWindow};

/// One hot loop's timing, normalised to cell rate.
pub struct HotLoop {
    /// The shim's raw stats (median/min/max ns per op).
    pub result: BenchResult,
    /// Cells processed per timed op.
    pub cells_per_op: usize,
    /// Median cells per second of wall-clock time.
    pub cells_per_sec: f64,
}

/// Serial-vs-parallel sweep timing.
pub struct SweepTiming {
    /// Median wall time of the serial (`jobs = 1`) R-F1 sweep, ns.
    pub serial_ns: f64,
    /// Median wall time under `jobs` workers, ns.
    pub parallel_ns: f64,
    /// Worker count used for the parallel run.
    pub jobs: usize,
    /// serial / parallel (≥ 1 means the pool helped).
    pub speedup: f64,
}

/// The full perf report.
pub struct PerfReport {
    /// `"fast"` (CI smoke) or `"full"`.
    pub mode: &'static str,
    /// Cores the machine exposes — the ceiling on any speedup.
    pub cores: usize,
    /// Timed hot loops.
    pub hot_loops: Vec<HotLoop>,
    /// R-F1 sweep serial vs parallel.
    pub sweep: SweepTiming,
    /// Always-on-telemetry overhead on the e2e hot loop:
    /// `e2e_cells_telemetry` median / `e2e_cells` median − 1
    /// (0.03 means the histograms + top-K cost 3%; the acceptance
    /// budget is <5% — noisy on `fast` mode, nothing gates on it).
    pub telemetry_overhead: f64,
    /// Tail-exemplar-reservoir overhead on the e2e hot loop:
    /// `e2e_cells_reservoir` median / `e2e_cells` median − 1. The
    /// reservoir is measured in isolation (no histograms or top-K in
    /// the loop) so the ratio prices exactly what the always-on
    /// exemplars add per packet completion. Same <5% budget.
    pub reservoir_overhead: f64,
    /// Closed-loop transport bookkeeping overhead on the e2e hot loop:
    /// `e2e_cells_transport` median / `e2e_cells` median − 1. Per
    /// frame the data path completes, `hni-transport` runs one sliding-
    /// window take/ack cycle and one Jacobson RTO update — that control
    /// plane must stay in the data path's noise. Same <5% budget.
    pub transport_overhead: f64,
}

const SDU_LEN: usize = 9180;
const BURST_SDUS: usize = 8;

fn hot_loop(result: BenchResult, cells_per_op: usize) -> HotLoop {
    let cells_per_sec = cells_per_op as f64 * 1e9 / result.median_ns.max(1e-9);
    HotLoop {
        result,
        cells_per_op,
        cells_per_sec,
    }
}

/// Run every measurement. `fast` cuts samples and per-sample time so a
/// CI smoke finishes in seconds; timings then carry more noise, which
/// is fine — nothing gates on them.
pub fn run_perf(fast: bool) -> PerfReport {
    let (samples, sample_s) = if fast { (5, 2e-4) } else { (20, 5e-3) };
    let vc = VcId::new(0, 32);
    let cells_per_sdu = hni_aal::AalType::Aal5.cells_for_sdu(SDU_LEN);
    let burst_cells = cells_per_sdu * BURST_SDUS;
    let sdu: Vec<u8> = (0..SDU_LEN).map(|i| (i % 251) as u8).collect();
    let sdus: Vec<&[u8]> = (0..BURST_SDUS).map(|_| sdu.as_slice()).collect();

    // --- AAL5 SAR through the slab fast path ---
    let mut slab = CellSlab::with_capacity(burst_cells);
    let mut refs = Vec::with_capacity(burst_cells);
    let sar = measure("aal5_sar_slab", samples, sample_s, || {
        refs.clear();
        aal5::segment_burst(vc, &sdus, 0, &mut slab, &mut refs);
        slab.free_all(&refs);
        refs.len()
    });
    let sar = hot_loop(sar, burst_cells);

    // --- HEC + delineation over a synced stream ---
    refs.clear();
    aal5::segment_burst(vc, &sdus, 0, &mut slab, &mut refs);
    let mut stream = Vec::with_capacity(refs.len() * CELL_SIZE);
    for &r in &refs {
        stream.extend_from_slice(slab.get(r).as_bytes());
    }
    let mut delin = Delineator::new();
    let mut cells = Vec::with_capacity(refs.len());
    // Acquire SYNC once; the timed loop runs in steady state on the
    // burst fast path (whole-cell copies + fused HEC fold — the bit
    // loop only runs during HUNT/PRESYNC and at bit-shifted phases).
    delin.push_slice(&stream, &mut cells);
    assert!(delin.is_synced(), "delineator must sync on a clean stream");
    let hec = measure("hec_delineation", samples, sample_s, || {
        cells.clear();
        delin.push_slice(&stream, &mut cells);
        cells.len()
    });
    let hec = hot_loop(hec, burst_cells);

    // --- AAL5 reassembly via deliver_burst (slab path) ---
    let mut reasm = Aal5Reassembler::new(65_535, Duration::from_ms(100));
    let mut done = Vec::with_capacity(BURST_SDUS);
    let rx = measure("rx_reassembly", samples, sample_s, || {
        done.clear();
        reasm.deliver_burst(&refs, &slab, Time::ZERO, &mut done);
        let n = done.len();
        for sdu in done.drain(..).flatten() {
            reasm.recycle(sdu.data);
        }
        n
    });
    let rx = hot_loop(rx, burst_cells);
    slab.free_all(&refs);

    // --- full segment → deliver round trip ---
    let e2e = measure("e2e_cells", samples, sample_s, || {
        refs.clear();
        aal5::segment_burst(vc, &sdus, 0, &mut slab, &mut refs);
        done.clear();
        reasm.deliver_burst(&refs, &slab, Time::ZERO, &mut done);
        slab.free_all(&refs);
        for sdu in done.drain(..).flatten() {
            reasm.recycle(sdu.data);
        }
    });
    let e2e = hot_loop(e2e, burst_cells);

    // --- VC-table lookup under a Zipf key mix ---
    // One `get_by_key` per "cell" against a fully-populated table (2^20
    // VCs full mode, 2^16 fast), keys pre-drawn outside the timed loop
    // so the measurement prices the probe, not the sampler. The same
    // table shape R-S1 proves deterministic properties of; this loop is
    // its wall-clock ns/cell.
    let table_vcs: usize = if fast { 1 << 16 } else { 1 << 20 };
    let mut vct: VcTable<u32> = VcTable::with_capacity(table_vcs);
    for i in 0..table_vcs {
        vct.insert(i as u64, i as u32);
    }
    let lookup_keys: Vec<u64> = {
        let zipf = Zipf::new(table_vcs, 1.1);
        let mut rng = Rng::new(0x5157);
        (0..16_384).map(|_| zipf.sample(&mut rng) as u64).collect()
    };
    let vcl = measure("vc_lookup", samples, sample_s, || {
        let mut hits = 0usize;
        for &k in &lookup_keys {
            if std::hint::black_box(vct.get_by_key(k)).is_some() {
                hits += 1;
            }
        }
        hits
    });
    let vcl = hot_loop(vcl, lookup_keys.len());

    // --- the same round trip with the always-on telemetry attached ---
    // Per cell: one VcMetrics.record_cell (shard counters + top-K last
    // -hit cache). Per SDU: one HdrHist.record. That is exactly the
    // cadence the tx/rx simulators pay, so the ratio against the plain
    // `e2e_cells` loop IS the telemetry plane's overhead.
    let mut vc_metrics = VcMetrics::default();
    let mut lat_hist = HdrHist::new();
    let e2e_tel = measure("e2e_cells_telemetry", samples, sample_s, || {
        refs.clear();
        aal5::segment_burst(vc, &sdus, 0, &mut slab, &mut refs);
        for i in 0..refs.len() {
            vc_metrics.record_cell(vc.cam_key(), 53);
            // Keep the index live so the loop cannot be folded away.
            std::hint::black_box(i);
        }
        done.clear();
        reasm.deliver_burst(&refs, &slab, Time::ZERO, &mut done);
        slab.free_all(&refs);
        for (i, sdu) in done.drain(..).flatten().enumerate() {
            lat_hist.record((i as u64 + 1) * 1_000_000);
            reasm.recycle(sdu.data);
        }
    });
    let e2e_tel = hot_loop(e2e_tel, burst_cells);
    let telemetry_overhead = e2e_tel.result.median_ns / e2e.result.median_ns.max(1e-9) - 1.0;

    // --- the round trip plus the always-on tail reservoir ---
    // Per SDU: one TailReservoir.record — the cadence the simulators
    // pay at each packet completion. Measured without the histogram or
    // top-K calls so the ratio against `e2e_cells` isolates what the
    // exemplar reservoir alone adds.
    let mut tail = TailReservoir::paper();
    let e2e_res = measure("e2e_cells_reservoir", samples, sample_s, || {
        refs.clear();
        aal5::segment_burst(vc, &sdus, 0, &mut slab, &mut refs);
        done.clear();
        reasm.deliver_burst(&refs, &slab, Time::ZERO, &mut done);
        slab.free_all(&refs);
        for (i, sdu) in done.drain(..).flatten().enumerate() {
            let lat = Duration::from_ps((i as u64 + 1) * 1_000_000);
            tail.record(vc.cam_key(), i as u32, lat, Time::ZERO + lat);
            reasm.recycle(sdu.data);
        }
    });
    let e2e_res = hot_loop(e2e_res, burst_cells);
    let reservoir_overhead = e2e_res.result.median_ns / e2e.result.median_ns.max(1e-9) - 1.0;

    // --- the round trip plus the closed-loop transport bookkeeping ---
    // Per SDU: one sliding-window take/cum-ack cycle and one Jacobson
    // RTT sample + RTO read — the control-plane work `hni-transport`
    // adds for each frame the data path completes. Cells ride the same
    // slab fast path, so the ratio against `e2e_cells` prices exactly
    // the window/RTO tax.
    const WIN_FRAMES: usize = 1 << 16;
    let mut win = SendWindow::new(BURST_SDUS, WIN_FRAMES);
    let mut est = RtoEstimator::new(RtoConfig::DEFAULT);
    let e2e_tr = measure("e2e_cells_transport", samples, sample_s, || {
        refs.clear();
        aal5::segment_burst(vc, &sdus, 0, &mut slab, &mut refs);
        done.clear();
        reasm.deliver_burst(&refs, &slab, Time::ZERO, &mut done);
        slab.free_all(&refs);
        for (i, sdu) in done.drain(..).flatten().enumerate() {
            if !win.can_send_new() {
                // The scratch transfer ran dry; recreating it is rare
                // (every 2^16 frames) and amortises to nothing.
                win = SendWindow::new(BURST_SDUS, WIN_FRAMES);
            }
            let seq = win.take_next();
            est.sample(Duration::from_ps((i as u64 + 1) * 1_000_000));
            win.on_cum_ack(seq + 1);
            std::hint::black_box(est.rto());
            reasm.recycle(sdu.data);
        }
    });
    let e2e_tr = hot_loop(e2e_tr, burst_cells);
    let transport_overhead = e2e_tr.result.median_ns / e2e.result.median_ns.max(1e-9) - 1.0;

    // --- serial vs parallel R-F1 sweep ---
    let pkts = if fast { 3 } else { 12 };
    let sweep_samples = if fast { 3 } else { 7 };
    let jobs = jobs_from_env().max(2);
    let serial = measure("sweep_serial", sweep_samples, 0.0, || {
        rf1_tx_throughput::sweep_with_jobs(pkts, 1).len()
    });
    let parallel = measure("sweep_parallel", sweep_samples, 0.0, || {
        rf1_tx_throughput::sweep_with_jobs(pkts, jobs).len()
    });
    let sweep = SweepTiming {
        serial_ns: serial.median_ns,
        parallel_ns: parallel.median_ns,
        jobs,
        speedup: serial.median_ns / parallel.median_ns.max(1e-9),
    };

    PerfReport {
        mode: if fast { "fast" } else { "full" },
        cores: available_cores(),
        hot_loops: vec![sar, hec, rx, e2e, vcl, e2e_tel, e2e_res, e2e_tr],
        sweep,
        telemetry_overhead,
        reservoir_overhead,
        transport_overhead,
    }
}

/// Format an `f64` for JSON: finite, fixed-point, no NaN/inf leakage.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "0.0".to_string()
    }
}

/// [`jnum`] at ratio precision (overheads are small numbers).
fn jnum6(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_string()
    }
}

impl PerfReport {
    /// Serialise as the `hni-bench-perf/1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"hni-bench-perf/1\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        s.push_str(&format!("  \"cores\": {},\n", self.cores));
        s.push_str("  \"hot_loops\": [\n");
        for (i, h) in self.hot_loops.iter().enumerate() {
            s.push_str("    {");
            // One escaper for every JSON writer in the workspace.
            s.push_str(&format!("\"name\": {}, ", json::quote(&h.result.name)));
            s.push_str(&format!(
                "\"median_ns_per_op\": {}, ",
                jnum(h.result.median_ns)
            ));
            s.push_str(&format!("\"min_ns_per_op\": {}, ", jnum(h.result.min_ns)));
            s.push_str(&format!("\"max_ns_per_op\": {}, ", jnum(h.result.max_ns)));
            s.push_str(&format!("\"samples\": {}, ", h.result.samples));
            s.push_str(&format!("\"cells_per_op\": {}, ", h.cells_per_op));
            s.push_str(&format!("\"cells_per_sec\": {}", jnum(h.cells_per_sec)));
            s.push_str(if i + 1 < self.hot_loops.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"telemetry_overhead\": {},\n",
            jnum6(self.telemetry_overhead)
        ));
        s.push_str(&format!(
            "  \"reservoir_overhead\": {},\n",
            jnum6(self.reservoir_overhead)
        ));
        s.push_str(&format!(
            "  \"transport_overhead\": {},\n",
            jnum6(self.transport_overhead)
        ));
        s.push_str("  \"sweep\": {\n");
        s.push_str("    \"name\": \"r-f1\",\n");
        s.push_str(&format!(
            "    \"serial_ns\": {},\n",
            jnum(self.sweep.serial_ns)
        ));
        s.push_str(&format!(
            "    \"parallel_ns\": {},\n",
            jnum(self.sweep.parallel_ns)
        ));
        s.push_str(&format!("    \"jobs\": {},\n", self.sweep.jobs));
        s.push_str(&format!("    \"speedup\": {}\n", jnum(self.sweep.speedup)));
        s.push_str("  }\n");
        s.push_str("}\n");
        s
    }

    /// Human-readable summary for the terminal.
    pub fn render(&self) -> String {
        let mut t = crate::Table::new(["hot loop", "median ns/op", "cells/op", "cells/sec"]);
        for h in &self.hot_loops {
            t.row([
                h.result.name.clone(),
                format!("{:.0}", h.result.median_ns),
                h.cells_per_op.to_string(),
                format!("{:.2e}", h.cells_per_sec),
            ]);
        }
        format!(
            "Wall-clock perf ({} mode, {} core{})\n\n{}\n\
             Always-on telemetry overhead (e2e_cells_telemetry vs e2e_cells): {:+.1}%\n\
             (budget <5% — histograms + per-VC top-K ride the hot loop by default)\n\
             Tail reservoir overhead (e2e_cells_reservoir vs e2e_cells): {:+.1}%\n\
             (same budget — the exemplar reservoir is always on too)\n\
             Transport overhead (e2e_cells_transport vs e2e_cells): {:+.1}%\n\
             (same budget — the closed loop's window/RTO bookkeeping per frame)\n\
             R-F1 sweep: serial {:.1} ms, parallel {:.1} ms at {} jobs → {:.2}x speedup\n\
             (speedup is bounded by the host's core count; simulated results\n\
              are byte-identical either way — see README \"Performance\")\n",
            self.mode,
            self.cores,
            if self.cores == 1 { "" } else { "s" },
            t.render(),
            self.telemetry_overhead * 100.0,
            self.reservoir_overhead * 100.0,
            self.transport_overhead * 100.0,
            self.sweep.serial_ns / 1e6,
            self.sweep.parallel_ns / 1e6,
            self.sweep.jobs,
            self.sweep.speedup,
        )
    }

    /// This run as a perf-sentinel history record: every hot loop's
    /// median, keyed by name, plus the serial sweep time. Appended to
    /// `BENCH_HISTORY.jsonl` by `report perf`; compared against the
    /// last same-mode record by `report perf --check`.
    pub fn sentinel_record(&self) -> SentinelRecord {
        let mut samples: Vec<LoopSample> = self
            .hot_loops
            .iter()
            .map(|h| LoopSample {
                name: h.result.name.clone(),
                median_ns: h.result.median_ns,
            })
            .collect();
        samples.push(LoopSample {
            name: "sweep_serial".into(),
            median_ns: self.sweep.serial_ns,
        });
        // The overhead ratios ride along as factors (1.0 + overhead):
        // a factor stays near 1, so the sentinel's multiplicative
        // tolerance reads naturally ("the telemetry tax grew 3×"),
        // where the raw overhead — a small number near zero — would
        // make any ratio meaningless. Older history lines without
        // these names are fine: comparison is by name and one-sided
        // names are ignored.
        samples.push(LoopSample {
            name: "telemetry_overhead_factor".into(),
            median_ns: 1.0 + self.telemetry_overhead,
        });
        samples.push(LoopSample {
            name: "reservoir_overhead_factor".into(),
            median_ns: 1.0 + self.reservoir_overhead,
        });
        samples.push(LoopSample {
            name: "transport_overhead_factor".into(),
            median_ns: 1.0 + self.transport_overhead,
        });
        SentinelRecord {
            mode: self.mode.to_string(),
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_perf_runs_and_serialises() {
        let r = run_perf(true);
        assert_eq!(r.mode, "fast");
        assert_eq!(r.hot_loops.len(), 8);
        for h in &r.hot_loops {
            assert!(h.cells_per_sec > 0.0, "{}", h.result.name);
            assert!(h.result.median_ns > 0.0, "{}", h.result.name);
        }
        assert!(r.sweep.speedup > 0.0);
        // Telemetry overhead is a ratio around zero; `fast` mode is
        // noisy, so only sanity-bound it (the <5% budget is checked on
        // full runs by eye and by the sentinel history).
        assert!(
            r.telemetry_overhead.is_finite() && r.telemetry_overhead > -1.0,
            "overhead {}",
            r.telemetry_overhead
        );
        assert!(
            r.reservoir_overhead.is_finite() && r.reservoir_overhead > -1.0,
            "reservoir overhead {}",
            r.reservoir_overhead
        );
        assert!(
            r.transport_overhead.is_finite() && r.transport_overhead > -1.0,
            "transport overhead {}",
            r.transport_overhead
        );
        let json = r.to_json();
        for key in [
            "\"schema\": \"hni-bench-perf/1\"",
            "\"hot_loops\"",
            "\"cells_per_sec\"",
            "\"speedup\"",
            "\"cores\"",
            "\"telemetry_overhead\"",
            "\"reservoir_overhead\"",
            "\"transport_overhead\"",
            "aal5_sar_slab",
            "hec_delineation",
            "rx_reassembly",
            "e2e_cells",
            "vc_lookup",
            "e2e_cells_telemetry",
            "e2e_cells_reservoir",
            "e2e_cells_transport",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Balanced braces/brackets — the writer is hand-rolled.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
        let text = r.render();
        assert!(text.contains("speedup"), "{text}");
        assert!(text.contains("telemetry overhead"), "{text}");
        assert!(text.contains("reservoir overhead"), "{text}");
        assert!(text.contains("Transport overhead"), "{text}");
        // The sentinel record round-trips through its own line format.
        let rec = r.sentinel_record();
        assert_eq!(
            rec.samples.len(),
            12,
            "8 hot loops + sweep_serial + 3 overhead factors"
        );
        assert!(rec
            .samples
            .iter()
            .any(|s| s.name == "reservoir_overhead_factor" && s.median_ns > 0.0));
        assert!(rec
            .samples
            .iter()
            .any(|s| s.name == "transport_overhead_factor" && s.median_ns > 0.0));
        let parsed = SentinelRecord::parse_line(&rec.to_line()).expect("own line parses");
        assert_eq!(parsed.mode, "fast");
        assert_eq!(parsed.samples.len(), rec.samples.len());
    }

    #[test]
    fn jnum_never_emits_non_finite() {
        assert_eq!(jnum(f64::NAN), "0.0");
        assert_eq!(jnum(f64::INFINITY), "0.0");
        assert_eq!(jnum(1.25), "1.2");
    }
}
