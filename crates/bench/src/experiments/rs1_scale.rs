//! R-S1: connection-state scale — a million terminated VCs through the
//! sharded [`VcTable`], under a Zipf arrival mix.
//!
//! The paper's CAM answers the per-cell "which connection?" question for
//! a handful of VCs; the ROADMAP's north star is millions. This
//! experiment opens 1k → 1M concurrent VCs, churns them with a
//! Zipf-weighted close/reopen mix (few hot connections, a long cold
//! tail — the distribution real VC populations have), then measures:
//!
//! * **probes per lookup** — the deterministic proxy for lookup cost.
//!   Open addressing at a bounded load factor keeps the mean probe
//!   chain flat as the population grows three orders of magnitude; a
//!   structure whose cost grew with population would show it here.
//! * **bytes per idle VC** — total resident table memory divided by the
//!   open-connection count. The slab arena and the dense tag/key/id
//!   index arrays bound this, where per-node heap structures balloon.
//! * **reassembly goodput vs VC count** — AAL5 frames on Zipf-chosen
//!   VCs, interleaved across distinct connections one cell per OC-12
//!   slot. Goodput is a *simulated* quantity and must not sag as the VC
//!   population grows: any table defect at scale (key aliasing, stale
//!   state after recycle, probe-chain corruption) merges or corrupts
//!   frames, fails their CRC, and collapses it.
//!
//! Wall-clock lookup cost is deliberately **not** reported here — the
//! report must be byte-identical across runs and `HNI_JOBS` worker
//! counts. The `vc_lookup` hot loop in `report perf` times the same
//! table shape against the wall clock and writes `cells_per_sec` into
//! BENCH_PERF.json.
//!
//! Every point reseeds its own RNG from [`SEED`] and the point's VC
//! count, so the parallel sweep schedule cannot leak into results.

use crate::table::{fmt_bps, Table};
use hni_aal::aal5::{segment, Aal5Reassembler};
use hni_atm::{VcId, VcTable};
use hni_sim::{Duration, Rng, Time, Zipf};
use hni_sonet::LineRate;

/// Base seed; each point derives `SEED ^ n_vcs`.
pub const SEED: u64 = 19911;

/// The VC-count sweep: three orders of magnitude up to one million
/// concurrent connections.
pub const VC_COUNTS: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Zipf exponent for the arrival mix (s > 1: a genuinely heavy head).
pub const ZIPF_S: f64 = 1.1;

/// AAL5 SDU octets per frame (88 + 8-octet trailer = exactly 2 cells).
pub const FRAME_LEN: usize = 88;

/// Frames of reassembly work offered per point.
pub const FRAMES_PER_POINT: usize = 2_000;

/// Frames kept in flight concurrently (each on a distinct VC — AAL5
/// cannot interleave two frames on one VC by construction).
const ACTIVE_FRAMES: usize = 32;

/// Zipf-weighted close/reopen operations per point (the churn that
/// exercises O(1) recycling and the generation counters).
const CHURN_OPS: usize = 10_000;

/// Uniform lookups per point for the probe-cost measurement.
const LOOKUPS_PER_POINT: usize = 100_000;

/// One point of the scale sweep.
pub struct Point {
    /// Concurrent open VCs.
    pub n_vcs: usize,
    /// Resident table bytes per idle (open, no frame in progress) VC.
    pub bytes_per_idle_vc: f64,
    /// Mean probe steps per lookup under the Zipf mix (1.0 = every
    /// lookup lands on its home slot).
    pub probes_per_lookup: f64,
    /// Arena entries recycled during the churn phase.
    pub recycled: u64,
    /// Simulated reassembly goodput, bits/s.
    pub goodput_bps: f64,
    /// Frames delivered intact.
    pub delivered: u64,
    /// Frames offered.
    pub offered: u64,
}

/// Deterministic VC identity for rank `i`: user-range VCIs (≥ 32),
/// rolling into the next VPI every 65504 ranks so a million ranks stay
/// inside the 8-bit UNI VPI space.
fn vc_for(i: usize) -> VcId {
    VcId::new((i / 65_504) as u16, 32 + (i % 65_504) as u16)
}

fn key_for(i: usize) -> u64 {
    vc_for(i).cam_key() as u64
}

/// Measure one point: open `n` VCs, churn them, count probe cost, then
/// drive the reassembly workload.
pub fn measure(n: usize) -> Point {
    let mut rng = Rng::new(SEED ^ n as u64);
    let zipf = Zipf::new(n, ZIPF_S);

    // Open n concurrent connections.
    let mut conns: VcTable<u32> = VcTable::new();
    for i in 0..n {
        conns.insert(key_for(i), i as u32);
    }
    assert_eq!(conns.len(), n, "every VC must open");
    let bytes_per_idle_vc = conns.memory_bytes() as f64 / n as f64;

    // Zipf-weighted close/reopen churn: hot connections cycle through
    // the free list, exercising recycling and generation bumps.
    for _ in 0..CHURN_OPS {
        let rank = zipf.sample(&mut rng);
        let key = key_for(rank);
        if conns.remove(key).is_some() {
            conns.insert(key, rank as u32);
        }
    }
    assert_eq!(conns.len(), n, "churn must conserve the population");

    // Probe-cost phase: uniform lookups across the whole population,
    // counted via table stats. (Uniform, not Zipf: a Zipf-weighted mean
    // is just the chain length of a few hot keys — a high-variance
    // sample of table quality, not a measure of it. The Zipf mix drives
    // the churn above and the frame arrivals below.)
    let before = conns.stats();
    for _ in 0..LOOKUPS_PER_POINT {
        let rank = rng.below(n as u64) as usize;
        let got = conns.get_by_key(key_for(rank));
        assert_eq!(got, Some(&(rank as u32)), "open VC must resolve");
    }
    let after = conns.stats();
    let probes_per_lookup =
        (after.probes - before.probes) as f64 / (after.lookups - before.lookups) as f64;

    // Reassembly phase: frames on Zipf-chosen VCs, ACTIVE_FRAMES
    // concurrent streams on distinct VCs, one cell per OC-12 slot.
    let slot = LineRate::Oc12.cell_slot_time();
    let mut reasm = Aal5Reassembler::new(FRAME_LEN, Duration::from_ms(100));
    let mut now = Time::ZERO;
    let mut active: Vec<(Vec<hni_atm::Cell>, usize, usize)> = Vec::new(); // (cells, next, rank)
    let mut launched = 0usize;
    let mut delivered = 0u64;
    let mut failed = 0u64;
    let mut payload_octets = 0u64;
    while delivered + failed < FRAMES_PER_POINT as u64 {
        while active.len() < ACTIVE_FRAMES && launched < FRAMES_PER_POINT {
            // Pick a VC with no frame in flight (AAL5 frames on one VC
            // are sequential on a real link).
            let rank = loop {
                let r = zipf.sample(&mut rng);
                if !active.iter().any(|(_, _, rank)| *rank == r) {
                    break r;
                }
            };
            let fill = (rank % 251) as u8;
            let cells = segment(vc_for(rank), &[fill; FRAME_LEN], 0);
            active.push((cells, 0, rank));
            launched += 1;
        }
        // One cell from each in-flight frame, round-robin.
        let mut i = 0;
        while i < active.len() {
            let (cells, next, rank) = &mut active[i];
            let outcome = reasm.push(&cells[*next], now);
            now += slot;
            *next += 1;
            match outcome {
                Some(Ok(sdu)) => {
                    assert_eq!(sdu.vc, vc_for(*rank), "frame must come back on its VC");
                    assert_eq!(sdu.data.len(), FRAME_LEN);
                    payload_octets += sdu.data.len() as u64;
                    delivered += 1;
                    active.swap_remove(i);
                }
                Some(Err(_)) => {
                    failed += 1;
                    active.swap_remove(i);
                }
                None => i += 1,
            }
        }
    }
    let goodput_bps = payload_octets as f64 * 8.0 / now.as_s_f64();

    Point {
        n_vcs: n,
        bytes_per_idle_vc,
        probes_per_lookup,
        recycled: conns.stats().recycled,
        goodput_bps,
        delivered,
        offered: FRAMES_PER_POINT as u64,
    }
}

/// The full sweep. Points run in parallel under the `HNI_JOBS` worker
/// pool; each reseeds from its grid coordinate, so the report is
/// byte-identical at any worker count.
pub fn sweep() -> Vec<Point> {
    crate::par_sweep(&VC_COUNTS, |&n| measure(n))
}

/// The golden shape invariants, as (name, pass) pairs:
/// lookup cost flat-ish across three orders of magnitude, memory per
/// idle VC bounded and flat-ish, goodput intact with every frame
/// delivered.
pub fn golden_checks(points: &[Point]) -> Vec<(&'static str, bool)> {
    let probes_max = points
        .iter()
        .map(|p| p.probes_per_lookup)
        .fold(0.0, f64::max);
    let probes_min = points
        .iter()
        .map(|p| p.probes_per_lookup)
        .fold(f64::INFINITY, f64::min);
    let mem_max = points
        .iter()
        .map(|p| p.bytes_per_idle_vc)
        .fold(0.0, f64::max);
    let mem_min = points
        .iter()
        .map(|p| p.bytes_per_idle_vc)
        .fold(f64::INFINITY, f64::min);
    let good_max = points.iter().map(|p| p.goodput_bps).fold(0.0, f64::max);
    let good_min = points
        .iter()
        .map(|p| p.goodput_bps)
        .fold(f64::INFINITY, f64::min);
    vec![
        (
            "lookup cost flat-ish (max <= 2.5x min, mean probes <= 6)",
            probes_max <= 2.5 * probes_min && probes_max <= 6.0,
        ),
        (
            "memory bounded (<= 128 B/idle VC) and flat-ish (max <= 2.5x min)",
            mem_max <= 128.0 && mem_max <= 2.5 * mem_min,
        ),
        (
            "goodput does not collapse (min >= 0.9x max)",
            good_min >= 0.9 * good_max,
        ),
        (
            "every offered frame delivered at every scale",
            points.iter().all(|p| p.delivered == p.offered),
        ),
        (
            "churn recycles arena entries at every scale",
            points.iter().all(|p| p.recycled > 0),
        ),
    ]
}

/// Render the R-S1 report.
pub fn run() -> String {
    let points = sweep();
    let mut t = Table::new([
        "VCs open",
        "B/idle VC",
        "probes/lookup",
        "recycled",
        "goodput",
        "frames",
    ]);
    for p in &points {
        t.row([
            p.n_vcs.to_string(),
            format!("{:.1}", p.bytes_per_idle_vc),
            format!("{:.3}", p.probes_per_lookup),
            p.recycled.to_string(),
            fmt_bps(p.goodput_bps),
            format!("{}/{}", p.delivered, p.offered),
        ]);
    }
    let checks = golden_checks(&points);
    let verdict = if checks.iter().all(|(_, ok)| *ok) {
        "PASS"
    } else {
        "FAIL"
    };
    let check_lines: String = checks
        .iter()
        .map(|(name, ok)| format!("  [{}] {name}\n", if *ok { "ok" } else { "FAIL" }))
        .collect();
    format!(
        "R-S1 — connection-state scale: 1k → 1M concurrent VCs under a Zipf mix\n\
         Sharded open-addressing VcTable, Zipf(s={ZIPF_S}) arrival mix, seed {SEED};\n\
         {CHURN_OPS} Zipf close/reopen churn ops, {LOOKUPS_PER_POINT} uniform lookups per point;\n\
         {FRAMES_PER_POINT} AAL5 frames of {FRAME_LEN} octets reassembled per point,\n\
         {ACTIVE_FRAMES} interleaved streams, one cell per OC-12 slot.\n\n{}\n\
         Probes/lookup is the deterministic lookup-cost proxy (1.0 = home-slot\n\
         direct); wall-clock ns/cell for the same table shape is the `vc_lookup`\n\
         hot loop in `report perf` (BENCH_PERF.json). Goodput is simulated and\n\
         collapses only if the table corrupts or aliases per-VC frame state.\n\n\
         {check_lines}golden verdict: {verdict}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_shape_holds() {
        let points = sweep();
        assert_eq!(points.len(), VC_COUNTS.len());
        for (name, ok) in golden_checks(&points) {
            assert!(ok, "golden check failed: {name}");
        }
    }

    #[test]
    fn million_vcs_open_and_deliver() {
        let p = measure(1_000_000);
        assert_eq!(p.n_vcs, 1_000_000);
        assert_eq!(p.delivered, p.offered);
        assert!(p.recycled > 0, "Zipf churn must recycle entries");
    }

    #[test]
    fn rendered_report_is_deterministic() {
        assert_eq!(run(), run());
    }
}
