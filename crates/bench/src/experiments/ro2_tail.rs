//! R-O2 (observability): cohort critical-path attribution
//! machine-checked against an injected bottleneck.
//!
//! R-O1 validates the *utilization* attribution (which resource is
//! busiest). This experiment validates the *tail* attribution (which
//! stage makes the p99 slow) the same way: derive the verdict from
//! measurement alone, then require it to match a bottleneck we planted
//! and can price analytically.
//!
//! The workload is deliberately tail-free: packets are paced far enough
//! apart that no pipeline stage queues, so the baseline cohorts are
//! (near-)identical and the attributor finds little or nothing to
//! blame. The injection is a *rare, huge* arbitration stall on the
//! receive host bus ([`STALL_CYCLES`] cycles at probability
//! [`STALL_PROBABILITY`], seeded — a handful of delivery-DMA grants in
//! the whole run lose milliseconds). A uniform slowdown would leave
//! the tail's *relative* anatomy unchanged; a rare one manufactures a
//! tail cohort of stall victims whose excess lives in exactly one
//! stage. The attributor, which never sees the fault plan, must blame
//! "deliver dma" — and the victim's measured span must contain at
//! least its own stalled grant, giving an exact analytic floor of
//! `STALL_CYCLES × cycle()` on the max deliver-DMA growth.

use crate::experiments::rf3_latency::PROPAGATION;
use crate::table::Table;
use hni_atm::VcId;
use hni_core::bus::BusConfig;
use hni_core::e2esim::run_e2e_instrumented;
use hni_core::rxsim::RxConfig;
use hni_core::txsim::{greedy_workload, TxConfig, TxPacket};
use hni_sim::{BusFaultPlan, Duration, Time};
use hni_sonet::LineRate;
use hni_telemetry::{attribute_tail, PacketSpans, TailAttribution, VecTracer};

/// Packets offered (same size as the R-F3 canonical point).
pub const PACKETS: usize = 20;
/// SDU length, octets.
pub const LEN: usize = 9180;
/// Inter-arrival spacing — beyond the ~120 µs per-packet service time,
/// so the baseline run queues nowhere.
pub const SPACING: Duration = Duration::from_us(150);
/// Bus cycles a stalled grant loses: 50k × 40 ns = 2 ms, dwarfing the
/// ~0.9 ms unloaded packet latency.
pub const STALL_CYCLES: u32 = 50_000;
/// Per-grant stall probability: ~1440 delivery grants per run × 0.003
/// ≈ a handful of victims — rare enough to stay a tail phenomenon.
pub const STALL_PROBABILITY: f64 = 0.003;

/// The paced workload: no transmit-side queueing, so the baseline has
/// no tail for the attributor to explain.
pub fn paced_workload() -> Vec<TxPacket> {
    greedy_workload(PACKETS, LEN, VcId::new(0, 32))
        .into_iter()
        .enumerate()
        .map(|(i, mut p)| {
            p.arrival = Time::ZERO + SPACING.times(i as u64);
            p
        })
        .collect()
}

/// The planted bottleneck: rare, seeded, milliseconds-long receive-bus
/// stalls.
pub fn injected_plan() -> BusFaultPlan {
    BusFaultPlan {
        stall_probability: STALL_PROBABILITY,
        stall_cycles: STALL_CYCLES,
        retry_probability: 0.0,
        seed: 0x0b5e_0002,
    }
}

/// Exact duration one stalled grant adds to the bus timeline, µs.
pub fn stall_us() -> f64 {
    BusConfig::default()
        .cycle()
        .times(STALL_CYCLES as u64)
        .as_us_f64()
}

/// Deliver-DMA span statistics over completed packets, µs.
#[derive(Clone, Copy, Debug)]
pub struct DmaStats {
    /// Mean "deliver dma" span.
    pub mean_us: f64,
    /// Largest "deliver dma" span (the victim, under injection).
    pub max_us: f64,
}

/// One attribution run: the paced workload with the given receive-bus
/// fault plan. Returns the blame table (`None` when the run is too
/// uniform to attribute — the expected baseline outcome) and the
/// deliver-DMA span stats.
pub fn attribution_with(plan: BusFaultPlan) -> (Option<TailAttribution>, DmaStats) {
    let mut rx = RxConfig::paper(LineRate::Oc12);
    rx.bus_faults = plan;
    let mut tracer = VecTracer::new();
    run_e2e_instrumented(
        &TxConfig::paper(LineRate::Oc12),
        &rx,
        &paced_workload(),
        PROPAGATION,
        &mut tracer,
    );
    let spans = PacketSpans::from_events(&tracer.into_events());
    let attr = attribute_tail(&spans);
    (attr, dma_stats(&spans))
}

fn dma_stats(spans: &PacketSpans) -> DmaStats {
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut n = 0u32;
    for p in spans.packets() {
        let Some(life) = spans.life(p) else { continue };
        if !life.is_complete() {
            continue;
        }
        if let Some(s) = life.breakdown().iter().find(|s| s.label == "deliver dma") {
            let us = s.total().as_us_f64();
            sum += us;
            max = max.max(us);
            n += 1;
        }
    }
    DmaStats {
        mean_us: sum / n.max(1) as f64,
        max_us: max,
    }
}

fn verdict_line(attr: &Option<TailAttribution>) -> String {
    match attr {
        Some(a) => a.headline(),
        None => "no attributable tail (cohorts indistinguishable)".to_string(),
    }
}

/// Render the experiment: baseline vs injected blame, and the analytic
/// cross-check on the planted stage's cost.
pub fn run() -> String {
    let (base, base_dma) = attribution_with(BusFaultPlan::NONE);
    let (inj, inj_dma) = attribution_with(injected_plan());
    let mut t = Table::new([
        "run",
        "blamed stage",
        "part",
        "share",
        "tail us",
        "median us",
        "max dma us",
    ]);
    for (name, a, dma) in [("baseline", &base, base_dma), ("injected", &inj, inj_dma)] {
        match a {
            Some(a) => {
                let b = a.blamed();
                t.row([
                    name.to_string(),
                    b.label.to_string(),
                    b.part.to_string(),
                    crate::table::fmt_pct(b.share),
                    format!("{:.1}", a.tail_total_us),
                    format!("{:.1}", a.median_total_us),
                    format!("{:.1}", dma.max_us),
                ]);
            }
            None => {
                t.row([
                    name.to_string(),
                    "(none)".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    format!("{:.1}", dma.max_us),
                ]);
            }
        }
    }
    let floor = stall_us();
    let grew = inj_dma.max_us - base_dma.max_us;
    let blamed_dma = inj
        .as_ref()
        .is_some_and(|a| a.blamed().label == "deliver dma");
    let verdict = if blamed_dma && grew >= floor {
        "PASS"
    } else {
        "FAIL"
    };
    format!(
        "R-O2 — Tail attribution vs an injected bottleneck ({PACKETS} x {LEN}-octet\n\
         packets paced {spacing:.0} us apart, OC-12; seeded rare stalls of\n\
         {STALL_CYCLES} bus cycles at p={STALL_PROBABILITY} on delivery-DMA grants)\n\n{}\n\
         baseline verdict: {}\n\
         injected verdict: {}\n\
         analytic floor: a victim's deliver-dma span contains its own stalled\n\
         grant, so max deliver-dma must grow >= {floor:.1} us; measured growth:\n\
         {grew:.1} us -> {verdict}: the attributor {} the planted stage\n",
        t.render(),
        verdict_line(&base),
        verdict_line(&inj),
        if verdict == "PASS" {
            "blames"
        } else {
            "missed"
        },
        spacing = SPACING.as_us_f64(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributor_blames_the_injected_bottleneck() {
        let (base, _) = attribution_with(BusFaultPlan::NONE);
        if let Some(base) = &base {
            assert_ne!(
                base.blamed().label,
                "deliver dma",
                "baseline tail must not already be delivery-DMA bound: {}",
                base.headline()
            );
        }
        let (inj, _) = attribution_with(injected_plan());
        let inj = inj.expect("injection must manufacture an attributable tail");
        assert_eq!(
            inj.blamed().label,
            "deliver dma",
            "attributor missed the planted stage: {}",
            inj.headline()
        );
        assert!(
            inj.blamed().share > 0.5,
            "planted stage should dominate the excess, got {}",
            inj.blamed().share
        );
    }

    #[test]
    fn stall_cost_is_bounded_by_the_analytic_model() {
        let (_, base_dma) = attribution_with(BusFaultPlan::NONE);
        let (_, inj_dma) = attribution_with(injected_plan());
        let floor = stall_us();
        let grew = inj_dma.max_us - base_dma.max_us;
        assert!(
            grew >= floor,
            "max deliver-dma grew {grew:.1} us < one stalled grant {floor:.1} us"
        );
        // Sanity ceiling: a victim can eat every stall in the run, but
        // the expectation is ~4 stalls total; 20 would mean the rare
        // injection stopped being rare.
        assert!(
            grew <= floor * 20.0,
            "growth {grew:.1} us exceeds 20 stalled grants — injection not rare"
        );
    }

    #[test]
    fn report_renders_with_pass_verdict() {
        let r = run();
        assert!(r.contains("R-O2"));
        assert!(r.contains("PASS"), "machine check failed:\n{r}");
        assert!(r.len() > 100);
    }
}
