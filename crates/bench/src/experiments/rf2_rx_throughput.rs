//! R-F2: receive goodput and loss versus packet size, per partition,
//! plus the host-side interrupt-coalescing comparison.

use crate::table::{fmt_bps, fmt_pct, Table};
use hni_aal::AalType;
use hni_core::engine::HwPartition;
use hni_core::rxsim::{run_rx, run_rx_instrumented, run_rx_profiled, RxConfig, RxWorkload};
use hni_host::{DriverCosts, HostCpu, InterruptMode, RxHostModel};
use hni_sim::{Duration, Time};
use hni_sonet::LineRate;
use hni_telemetry::{CycleProfiler, Profile, TraceEvent, VecTracer};

/// Packet sizes swept (octets).
pub const SIZES: [usize; 5] = [64, 1024, 4096, 9180, 65000];

/// One receive point.
pub struct Point {
    /// Partition name.
    pub partition: &'static str,
    /// Packet size.
    pub len: usize,
    /// Simulated goodput.
    pub sim_bps: f64,
    /// Cells dropped (FIFO + pool) as a fraction of offered.
    pub drop_fraction: f64,
    /// Packets delivered / offered.
    pub delivery_fraction: f64,
}

/// Sweep receive throughput at full line load, OC-12. Points run in
/// parallel under the `HNI_JOBS` worker pool; the output order is the
/// serial grid order.
pub fn sweep(pkts_per_vc: usize) -> Vec<Point> {
    let mut grid = Vec::new();
    for partition in [
        HwPartition::all_software(),
        HwPartition::paper_split(),
        HwPartition::full_hardware(),
    ] {
        for &len in &SIZES {
            grid.push((partition, len));
        }
    }
    crate::par_sweep(&grid, |&(partition, len)| {
        let mut cfg = RxConfig::paper(LineRate::Oc12);
        cfg.partition = partition;
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, pkts_per_vc, len, 1.0);
        let r = run_rx(&cfg, &wl);
        Point {
            partition: partition.name,
            len,
            sim_bps: r.goodput_bps,
            drop_fraction: (r.dropped_fifo + r.dropped_pool) as f64 / r.cells_offered.max(1) as f64,
            delivery_fraction: r.delivered_packets as f64 / wl.pkts.len() as f64,
        }
    })
}

/// The canonical run itself (paper split, OC-12 full line load,
/// 4 VCs × 9180-octet packets) — the always-on telemetry (latency
/// histogram, per-connection top-K) rides along in the report.
pub fn canonical_run() -> hni_core::rxsim::RxReport {
    let cfg = RxConfig::paper(LineRate::Oc12);
    let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 5, 9180, 1.0);
    run_rx(&cfg, &wl)
}

/// Capture the receive-pipeline event trace for the table's canonical
/// point: paper split, OC-12 full line load, 4 VCs × 9180-octet packets.
pub fn trace_run() -> Vec<TraceEvent> {
    let mut tracer = VecTracer::new();
    let cfg = RxConfig::paper(LineRate::Oc12);
    let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 5, 9180, 1.0);
    run_rx_instrumented(&cfg, &wl, &mut tracer);
    tracer.into_events()
}

/// Cycle-profile the same canonical point the trace capture uses.
/// Returns the profile and the run's goodput.
pub fn profile_run() -> (Profile, f64) {
    let cfg = RxConfig::paper(LineRate::Oc12);
    let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 5, 9180, 1.0);
    let mut prof = CycleProfiler::new();
    let (r, _) = run_rx_profiled(&cfg, &wl, &mut prof);
    (prof.snapshot(r.run_end), r.goodput_bps)
}

/// Host-side comparison: CPU utilization delivering 9180-octet packets
/// at the given fraction of OC-12 payload rate, per interrupt mode.
pub fn host_interrupt_comparison(load: f64) -> Vec<(String, f64, u64)> {
    let len = 9180usize;
    let rate_bps = LineRate::Oc12.payload_bps() * load;
    let pkts_per_s = rate_bps / (len as f64 * 8.0);
    let gap = Duration::from_s_f64(1.0 / pkts_per_s);
    let arrivals: Vec<(Time, usize)> = (0..400).map(|i| (Time::ZERO + gap * i, len)).collect();
    let modes: [(String, InterruptMode); 3] = [
        ("per-packet".into(), InterruptMode::PerPacket),
        (
            "coalesce 8 / 1 ms".into(),
            InterruptMode::Coalesced {
                max_packets: 8,
                max_delay: Duration::from_ms(1),
            },
        ),
        (
            "coalesce 32 / 4 ms".into(),
            InterruptMode::Coalesced {
                max_packets: 32,
                max_delay: Duration::from_ms(4),
            },
        ),
    ];
    modes
        .into_iter()
        .map(|(name, mode)| {
            let m = RxHostModel {
                cpu: HostCpu::workstation(),
                costs: DriverCosts::default(),
                interrupts: mode,
            };
            let r = m.process(&arrivals);
            (name, r.cpu_util, r.interrupts)
        })
        .collect()
}

/// Render the figure.
pub fn run() -> String {
    let mut t = Table::new([
        "partition",
        "pkt octets",
        "sim goodput",
        "cell drops",
        "pkts delivered",
    ]);
    for p in sweep(20) {
        t.row([
            p.partition.to_string(),
            p.len.to_string(),
            fmt_bps(p.sim_bps),
            fmt_pct(p.drop_fraction),
            fmt_pct(p.delivery_fraction),
        ]);
    }
    let mut h = Table::new(["interrupt mode", "host CPU util", "interrupts"]);
    for (name, util, ints) in host_interrupt_comparison(0.5) {
        h.row([name, fmt_pct(util), ints.to_string()]);
    }
    format!(
        "R-F2 — Receive goodput vs packet size at OC-12 line load\n\n{}\n\
         Host CPU cost of delivery at 50% OC-12 payload load (9180-octet packets):\n{}",
        t.render(),
        h.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_split_delivers_everything_software_does_not() {
        let pts = sweep(10);
        let split_big = pts
            .iter()
            .find(|p| p.partition == "paper-split" && p.len == 9180)
            .unwrap();
        assert!(split_big.delivery_fraction > 0.999);
        let sw_big = pts
            .iter()
            .find(|p| p.partition == "all-software" && p.len == 9180)
            .unwrap();
        assert!(
            sw_big.delivery_fraction < 0.5,
            "got {}",
            sw_big.delivery_fraction
        );
    }

    #[test]
    fn coalescing_lowers_cpu_util() {
        let rows = host_interrupt_comparison(0.5);
        let per_packet = rows[0].1;
        let coalesced = rows[2].1;
        assert!(coalesced < per_packet);
        assert!(rows[2].2 < rows[0].2 / 8);
    }
}
