//! R-T2: the hardware/software partition table and per-direction
//! sustainable cell rates.

use crate::table::Table;
use hni_analysis::partition::{partition_rows, stage_rates, standard_partitions};
use hni_sonet::LineRate;

const MIPS: f64 = 25.0;

/// Render the per-task cost table plus the stage-rate verdicts.
pub fn run() -> String {
    let partitions = standard_partitions();

    let mut per_task = Table::new(["partition", "task", "where", "instr", "engine ns"]);
    for r in partition_rows(&partitions, MIPS) {
        per_task.row([
            r.partition.to_string(),
            r.task.to_string(),
            if r.in_hardware {
                "hw".into()
            } else {
                "sw".into()
            },
            r.engine_instructions.to_string(),
            format!("{:.0}", r.engine_ns),
        ]);
    }

    let mut verdicts = Table::new([
        "rate",
        "partition",
        "tx instr/cell",
        "rx instr/cell",
        "tx Mcells/s",
        "rx Mcells/s",
        "keeps up?",
    ]);
    for rate in [LineRate::Oc3, LineRate::Oc12] {
        for s in stage_rates(&partitions, MIPS, rate) {
            verdicts.row([
                format!("{rate:?}"),
                s.partition.to_string(),
                s.tx_instr_per_cell.to_string(),
                s.rx_instr_per_cell.to_string(),
                format!("{:.2}", s.tx_cells_per_second / 1e6),
                format!("{:.2}", s.rx_cells_per_second / 1e6),
                match (s.tx_keeps_up, s.rx_keeps_up) {
                    (true, true) => "yes".into(),
                    (true, false) => "tx only".into(),
                    (false, true) => "rx only".into(),
                    (false, false) => "no".into(),
                },
            ]);
        }
    }

    format!(
        "R-T2 — Hardware/software partition ({MIPS} MIPS engine)\n\n\
         Per-task engine cost:\n{}\n\
         Sustainable per-direction cell rates vs link slot rate:\n{}",
        per_task.render(),
        verdicts.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn shows_the_design_verdict() {
        let out = super::run();
        assert!(out.contains("paper-split"));
        assert!(out.contains("all-software"));
        assert!(out.contains("yes"));
        assert!(out.contains("no"));
    }
}
