//! R-F4: host CPU utilization vs offered load — host-software SAR
//! against the adaptor architecture. The figure that justifies building
//! the interface at all.

use crate::table::{fmt_bps, fmt_pct, Table};
use hni_aal::AalType;
use hni_host::{DriverCosts, HostCpu, InterruptMode, RxHostModel, SoftSar};
use hni_sonet::LineRate;

/// Offered-load grid as fractions of the OC-3 payload rate.
pub const LOADS: [f64; 6] = [0.1, 0.25, 0.5, 0.75, 1.0, 4.0]; // 4.0 = OC-12 territory

/// One comparison point.
pub struct Point {
    /// Offered goodput, bits/s.
    pub offered_bps: f64,
    /// Host CPU utilization doing SAR in software (≥1 = infeasible).
    pub soft_sar_util: f64,
    /// Host CPU utilization with the adaptor doing SAR (driver costs
    /// only, per-packet interrupts), copy delivery.
    pub adaptor_util: f64,
    /// Same, with page-remap (zero-copy) delivery.
    pub adaptor_remap_util: f64,
}

/// Compute the comparison for 9180-octet packets.
pub fn sweep() -> Vec<Point> {
    let len = 9180usize;
    let cells = AalType::Aal5.cells_for_sdu(len);
    let soft = SoftSar::workstation();
    let host = RxHostModel {
        cpu: HostCpu::workstation(),
        costs: DriverCosts::default(),
        interrupts: InterruptMode::PerPacket,
    };
    let host_remap = RxHostModel {
        cpu: HostCpu::workstation(),
        costs: DriverCosts {
            copy_delivery: false,
            ..DriverCosts::default()
        },
        interrupts: InterruptMode::PerPacket,
    };
    // Adaptor case: host pays ISR + driver + stack + delivery per packet.
    let per_pkt = host.per_packet_time(len) + host.cpu.instr_time(host.costs.isr_instr);
    let per_pkt_remap =
        host_remap.per_packet_time(len) + host_remap.cpu.instr_time(host_remap.costs.isr_instr);
    LOADS
        .iter()
        .map(|&l| {
            let offered = LineRate::Oc3.payload_bps() * l;
            let pkts_per_s = offered / (len as f64 * 8.0);
            Point {
                offered_bps: offered,
                soft_sar_util: soft.cpu_util_at(offered, len, cells),
                adaptor_util: pkts_per_s * per_pkt.as_s_f64(),
                adaptor_remap_util: pkts_per_s * per_pkt_remap.as_s_f64(),
            }
        })
        .collect()
}

/// Render the figure.
pub fn run() -> String {
    let mut t = Table::new([
        "offered goodput",
        "host-SAR CPU",
        "adaptor (copy)",
        "adaptor (remap)",
        "host-SAR feasible?",
    ]);
    for p in sweep() {
        t.row([
            fmt_bps(p.offered_bps),
            fmt_pct(p.soft_sar_util),
            fmt_pct(p.adaptor_util),
            fmt_pct(p.adaptor_remap_util),
            if p.soft_sar_util <= 1.0 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let soft = SoftSar::workstation();
    let max = soft.max_goodput_bps(9180, AalType::Aal5.cells_for_sdu(9180));
    format!(
        "R-F4 — Host CPU utilization vs offered load (9180-octet packets)\n\
         host-software SAR saturates at {}; the adaptor architecture\n\
         leaves the CPU to the application.\n\n{}",
        fmt_bps(max),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptor_always_cheaper() {
        for p in sweep() {
            assert!(
                p.adaptor_util < p.soft_sar_util,
                "at {}: {} vs {}",
                p.offered_bps,
                p.adaptor_util,
                p.soft_sar_util
            );
        }
    }

    #[test]
    fn soft_sar_infeasible_at_oc3_line_rate() {
        let full = sweep()
            .into_iter()
            .find(|p| (p.offered_bps - LineRate::Oc3.payload_bps()).abs() < 1.0)
            .unwrap();
        assert!(full.soft_sar_util > 1.0);
        assert!(full.adaptor_util < 1.0);
    }

    #[test]
    fn factor_of_improvement_is_large() {
        let p = &sweep()[2]; // 50% OC-3
        assert!(p.soft_sar_util / p.adaptor_util > 2.0);
    }

    #[test]
    fn remap_delivery_makes_oc12_host_feasible() {
        // With copy delivery the host saturates even though the adaptor
        // does the SAR; page-remap removes the per-byte cost and OC-12
        // fits — the reason the interface reassembles frames contiguous
        // and page-aligned in host memory.
        let oc12 = sweep().into_iter().last().unwrap();
        assert!(
            oc12.adaptor_util > 1.0,
            "copy delivery saturates: {}",
            oc12.adaptor_util
        );
        assert!(
            oc12.adaptor_remap_util < 1.0,
            "remap must fit: {}",
            oc12.adaptor_remap_util
        );
    }
}
