//! R-T5: the overhead waterfall — where the 622 Mb/s goes.

use crate::table::{fmt_bps, fmt_pct, Table};
use hni_aal::AalType;
use hni_analysis::overhead::overhead_waterfall;
use hni_sonet::LineRate;

/// Render the waterfall for both rates and both AALs at the IP MTU.
pub fn run() -> String {
    let mut out = String::from("R-T5 — Layer-by-layer overhead waterfall (9180-octet frames)\n\n");
    for rate in [LineRate::Oc3, LineRate::Oc12] {
        for aal in [AalType::Aal5, AalType::Aal34] {
            let mut t = Table::new(["layer", "rate remaining", "fraction of line"]);
            for step in overhead_waterfall(rate, aal, 9180) {
                t.row([
                    step.label.clone(),
                    fmt_bps(step.rate_bps),
                    fmt_pct(step.fraction_of_line),
                ]);
            }
            out.push_str(&format!("{rate:?} / {aal}:\n{}\n", t.render()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_four_waterfalls() {
        let out = super::run();
        assert_eq!(out.matches("fraction of line").count(), 4);
        assert!(out.contains("AAL3/4"));
    }
}
