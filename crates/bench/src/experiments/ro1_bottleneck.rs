//! R-O1 (observability): automatic bottleneck attribution from the
//! cycle-accounting profiler, cross-checked against the closed forms.
//!
//! The throughput experiments (R-F1, R-A2) *predict* which resource
//! governs from the analytic bounds. This experiment derives the same
//! verdict from **measurement alone**: every simulated interval is
//! charged to a `(component, activity)` pair, utilizations are ranked,
//! and the top-ranked resource is declared the bottleneck — then the
//! two routes to the answer are required to agree at every swept point.
//!
//! Two sweeps reproduce the paper's operating-regime story:
//!
//! * **transmit, packet size** — small packets are per-packet-work
//!   (engine) bound; large packets hit the line rate (link bound). The
//!   measured flip must land on the same sizes the analysis puts it.
//! * **receive, engine MIPS** — below the R-A2 minimum the receive
//!   engine saturates first (utilization → 1) with the bus well below
//!   it — the architecture's motivating claim — and above the minimum
//!   the link takes over as the governing resource.

use crate::experiments::rf1_tx_throughput;
use crate::table::{fmt_bps, fmt_pct, Table};
use hni_aal::AalType;
use hni_analysis::throughput::predict_tx;
use hni_atm::VcId;
use hni_core::engine::HwPartition;
use hni_core::rxsim::{run_rx_profiled, RxConfig, RxWorkload};
use hni_core::txsim::{greedy_workload, run_tx_profiled, TxConfig};
use hni_sonet::LineRate;
use hni_telemetry::{attribute, Attribution, Component, CycleProfiler};

/// Engine speeds swept on the receive side (same grid as R-A2).
pub const MIPS_GRID: [f64; 6] = [12.5, 25.0, 50.0, 100.0, 200.0, 400.0];

/// Collapse a profiled component to the analytic resource axis
/// ("engine" / "bus" / "link") the closed forms rank.
pub fn resource_name(c: Component) -> &'static str {
    match c {
        Component::TxEngine | Component::RxEngine => "engine",
        Component::TxBus | Component::RxBus => "bus",
        Component::TxLink | Component::RxLink => "link",
        Component::TxFifo | Component::RxFifo => "fifo",
        Component::RxPool => "pool",
        Component::HostCpu => "host",
        Component::Switch => "switch",
    }
}

/// Profile one transmit run (paper split, OC-12, greedy backlog of
/// `packets` × `len`-octet packets) and attribute its bottleneck.
pub fn tx_attribution(len: usize, packets: usize) -> Attribution {
    let cfg = TxConfig::paper(LineRate::Oc12);
    let mut prof = CycleProfiler::new();
    let (r, _) = run_tx_profiled(
        &cfg,
        &greedy_workload(packets, len, VcId::new(0, 32)),
        &mut prof,
    );
    attribute(&prof.snapshot(r.finished_at), r.goodput_bps)
}

/// Profile one receive run at OC-12 line load (4 VCs × `pkts_per_vc`
/// packets of `len` octets) and attribute its bottleneck.
pub fn rx_attribution(
    partition: &HwPartition,
    mips: f64,
    len: usize,
    pkts_per_vc: usize,
) -> Attribution {
    let mut cfg = RxConfig::paper(LineRate::Oc12);
    cfg.partition = *partition;
    cfg.mips = mips;
    let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, pkts_per_vc, len, 1.0);
    let mut prof = CycleProfiler::new();
    let (r, _) = run_rx_profiled(&cfg, &wl, &mut prof);
    attribute(&prof.snapshot(r.run_end), r.goodput_bps)
}

/// One transmit sweep point: measured attribution vs analytic verdict.
pub struct TxPoint {
    /// Packet size, octets.
    pub len: usize,
    /// Measured bottleneck (top-ranked utilization), as a resource name.
    pub measured: &'static str,
    /// Its utilization.
    pub utilization: f64,
    /// Implied goodput ceiling from the attribution.
    pub ceiling_bps: f64,
    /// The analytic bound's verdict for the same point.
    pub analytic: &'static str,
}

/// Sweep the transmit attribution across the R-F1 packet sizes.
pub fn sweep_tx(packets: usize) -> Vec<TxPoint> {
    let cfg = TxConfig::paper(LineRate::Oc12);
    rf1_tx_throughput::SIZES
        .iter()
        .map(|&len| {
            let a = tx_attribution(len, packets);
            let top = a.ranked.first().expect("profiled run charges components");
            let p = predict_tx(
                len,
                &cfg.partition,
                cfg.mips,
                &cfg.bus,
                LineRate::Oc12,
                cfg.aal,
            );
            TxPoint {
                len,
                measured: resource_name(top.component),
                utilization: top.utilization,
                ceiling_bps: top.ceiling_bps,
                analytic: p.bottleneck,
            }
        })
        .collect()
}

/// One receive sweep point: full per-resource utilizations.
pub struct RxPoint {
    /// Partition name.
    pub partition: &'static str,
    /// Engine MIPS.
    pub mips: f64,
    /// Measured bottleneck resource name.
    pub measured: &'static str,
    /// Engine / bus / link utilizations at this point.
    pub engine_util: f64,
    /// Bus utilization.
    pub bus_util: f64,
    /// Link utilization.
    pub link_util: f64,
}

/// Sweep the receive attribution across partitions × the MIPS grid.
pub fn sweep_rx(pkts_per_vc: usize) -> Vec<RxPoint> {
    let mut out = Vec::new();
    for partition in [HwPartition::all_software(), HwPartition::paper_split()] {
        for &mips in &MIPS_GRID {
            let a = rx_attribution(&partition, mips, 9180, pkts_per_vc);
            let top = a.ranked.first().expect("profiled run charges components");
            let util = |c| a.share(c).map(|s| s.utilization).unwrap_or(0.0);
            out.push(RxPoint {
                partition: partition.name,
                mips,
                measured: resource_name(top.component),
                engine_util: util(Component::RxEngine),
                bus_util: util(Component::RxBus),
                link_util: util(Component::RxLink),
            });
        }
    }
    out
}

/// Render both sweeps plus the headline saturation-order statement.
pub fn run() -> String {
    let mut tx = Table::new([
        "pkt octets",
        "measured bottleneck",
        "utilization",
        "implied ceiling",
        "analytic bound",
    ]);
    for p in sweep_tx(20) {
        tx.row([
            p.len.to_string(),
            p.measured.to_string(),
            fmt_pct(p.utilization),
            fmt_bps(p.ceiling_bps),
            p.analytic.to_string(),
        ]);
    }
    let mut rx = Table::new([
        "partition",
        "MIPS",
        "measured bottleneck",
        "engine util",
        "bus util",
        "link util",
    ]);
    for p in sweep_rx(15) {
        rx.row([
            p.partition.to_string(),
            format!("{:.1}", p.mips),
            p.measured.to_string(),
            fmt_pct(p.engine_util),
            fmt_pct(p.bus_util),
            fmt_pct(p.link_util),
        ]);
    }
    let design = rx_attribution(&HwPartition::paper_split(), 25.0, 9180, 15);
    let eng = design.share(Component::RxEngine).expect("engine charged");
    let bus = design.share(Component::RxBus).expect("bus charged");
    format!(
        "R-O1 — Bottleneck attribution: profiler-measured vs analytic\n\
         (transmit: paper split at OC-12, greedy backlog; receive: OC-12\n\
          line load, 9180-octet packets — measured column is the top-ranked\n\
          utilization from the cycle profiler, no analytic input)\n\n\
         Transmit, by packet size:\n{}\n\
         Receive, by engine speed:\n{}\n\
         Saturation order at the design point (paper split, 25 MIPS): among\n\
         the adaptor's own resources the receive engine saturates first\n\
         ({} utilization), the bus second ({}).\n",
        tx.render(),
        rx.render(),
        fmt_pct(eng.utilization),
        fmt_pct(bus.utilization),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ra2_mips;

    #[test]
    fn tx_measurement_agrees_with_analysis_at_every_size() {
        let pts = sweep_tx(12);
        for p in &pts {
            assert_eq!(
                p.measured, p.analytic,
                "len {}: profiler says {}, analysis says {}",
                p.len, p.measured, p.analytic
            );
        }
        // And the regime flip the narrative quotes is actually present:
        // engine-bound at small sizes, link-bound at large.
        let at = |len: usize| pts.iter().find(|p| p.len == len).unwrap().measured;
        assert_eq!(at(64), "engine");
        assert_eq!(at(256), "engine");
        assert_eq!(at(1024), "link");
        assert_eq!(at(65000), "link");
    }

    #[test]
    fn tx_ceiling_is_utilization_scaled_goodput() {
        let a = tx_attribution(9180, 12);
        let top = a.ranked.first().unwrap();
        let implied = a.goodput_bps / top.utilization;
        assert!((top.ceiling_bps - implied).abs() < 1.0);
        // A bottleneck's ceiling is the tightest of the ranked set.
        for s in &a.ranked {
            assert!(s.ceiling_bps >= top.ceiling_bps - 1.0);
        }
    }

    #[test]
    fn rx_bottleneck_flips_at_the_r_a2_crossovers() {
        let pts = sweep_rx(15);
        let at = |part: &str, mips: f64| {
            pts.iter()
                .find(|p| p.partition == part && p.mips == mips)
                .unwrap()
        };
        // Paper split: analytic minimum is ≈21.2 MIPS (R-A2). Below it
        // the engine is the measured bottleneck; above it the link is.
        let m = ra2_mips::min_mips_rx(&HwPartition::paper_split(), LineRate::Oc12);
        assert!(12.5 < m && m < 25.0, "grid must bracket the minimum: {m}");
        assert_eq!(at("paper-split", 12.5).measured, "engine");
        assert_eq!(at("paper-split", 25.0).measured, "link");
        // All-software: minimum ≈285 MIPS — flip between 200 and 400.
        let m = ra2_mips::min_mips_rx(&HwPartition::all_software(), LineRate::Oc12);
        assert!(200.0 < m && m < 400.0, "grid must bracket the minimum: {m}");
        assert_eq!(at("all-software", 200.0).measured, "engine");
        assert_eq!(at("all-software", 400.0).measured, "link");
    }

    #[test]
    fn starved_engine_saturates_first_bus_second() {
        // The headline machine-checked: at 12.5 MIPS (paper split) the
        // receive engine is pinned at 100% while the bus — downstream
        // of the engine — starves along with everything else. Engine
        // first, bus second.
        let a = rx_attribution(&HwPartition::paper_split(), 12.5, 9180, 15);
        assert_eq!(a.bottleneck(), Some(Component::RxEngine));
        let eng = a.share(Component::RxEngine).unwrap();
        assert!(
            eng.utilization > 0.95,
            "starved engine should be pinned: {}",
            eng.utilization
        );
        // With every packet doomed, delivery DMA never runs: the bus is
        // strictly below the engine (here, entirely idle).
        let bus_util = a
            .share(Component::RxBus)
            .map(|s| s.utilization)
            .unwrap_or(0.0);
        assert!(eng.utilization > bus_util);
    }

    #[test]
    fn healthy_receive_ceilings_rank_engine_tighter_than_bus() {
        // At the design point goodput is nonzero, so the implied
        // ceilings are meaningful: the engine's is tighter than the
        // bus's — same order as the utilizations.
        let a = rx_attribution(&HwPartition::paper_split(), 25.0, 9180, 15);
        let eng = a.share(Component::RxEngine).unwrap();
        let bus = a.share(Component::RxBus).unwrap();
        assert!(a.goodput_bps > 0.0);
        assert!(eng.ceiling_bps < bus.ceiling_bps);
    }

    #[test]
    fn healthy_receive_still_ranks_engine_above_bus() {
        // At the design point (25 MIPS, paper split) the link governs,
        // but among the adaptor's own resources the engine still ranks
        // above the bus — the "engine saturates first, bus second" order
        // the architecture was provisioned around.
        let a = rx_attribution(&HwPartition::paper_split(), 25.0, 9180, 15);
        let eng = a.share(Component::RxEngine).unwrap();
        let bus = a.share(Component::RxBus).unwrap();
        assert!(
            eng.utilization > bus.utilization,
            "engine {} vs bus {}",
            eng.utilization,
            bus.utilization
        );
    }
}
