//! R-T4: per-VC pacing — cell-level jitter of a CBR stream multiplexed
//! with bulk traffic, with and without the transmit pacer.

use crate::table::Table;
use hni_atm::VcId;
use hni_core::txsim::{run_tx, TxConfig, TxPacket};
use hni_sim::{Duration, Time};
use hni_sonet::LineRate;

/// The CBR connection under observation.
pub fn cbr_vc() -> VcId {
    VcId::new(0, 200)
}

/// Jitter measurement for one configuration.
pub struct Point {
    /// Whether pacing was enabled.
    pub pacing: bool,
    /// Mean inter-departure of the CBR VC's cells, µs.
    pub mean_us: f64,
    /// Standard deviation (the jitter), µs.
    pub sd_us: f64,
    /// Worst-case gap, µs.
    pub max_us: f64,
}

/// A CBR stream (64 kb/s-voice-like: tiny frames at fixed intervals...
/// scaled up to something measurable: 480-octet frames every 250 µs ≈
/// 15.4 Mb/s) competing with greedy 64 kB bulk transfers on other VCs.
pub fn workload() -> Vec<TxPacket> {
    let mut pkts = Vec::new();
    // The CBR stream: 40 frames, 480 octets, every 250 µs, paced to its
    // own rate (11 cells per frame / 250 µs → 44k cells/s).
    for i in 0..40u64 {
        pkts.push(TxPacket {
            vc: cbr_vc(),
            len: 480,
            arrival: Time::ZERO + Duration::from_us(250) * i,
            pcr: Some(60_000.0),
        });
    }
    // Bulk competitors.
    for v in 0..3u16 {
        for _ in 0..2 {
            pkts.push(TxPacket {
                vc: VcId::new(0, 300 + v),
                len: 65_000,
                arrival: Time::ZERO,
                pcr: None,
            });
        }
    }
    pkts
}

/// Measure with or without pacing.
pub fn measure(pacing: bool) -> Point {
    let mut cfg = TxConfig::paper(LineRate::Oc12);
    cfg.pacing = pacing;
    let r = run_tx(&cfg, &workload());
    let s = &r.interdeparture_us[&cbr_vc()];
    Point {
        pacing,
        mean_us: s.mean(),
        sd_us: s.std_dev(),
        max_us: s.max(),
    }
}

/// Render the table.
pub fn run() -> String {
    let mut t = Table::new(["pacing", "mean gap (µs)", "jitter sd (µs)", "max gap (µs)"]);
    // The two configurations are independent transmit runs — sweep them
    // in parallel.
    for p in crate::par_sweep(&[false, true], |&pacing| measure(pacing)) {
        t.row([
            if p.pacing { "on" } else { "off" }.to_string(),
            format!("{:.2}", p.mean_us),
            format!("{:.2}", p.sd_us),
            format!("{:.2}", p.max_us),
        ]);
    }
    format!(
        "R-T4 — Per-VC pacing: CBR cell jitter under bulk competition\n\
         (480-octet CBR frames every 250 µs, three greedy bulk VCs, OC-12)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_reduces_jitter() {
        let unpaced = measure(false);
        let paced = measure(true);
        assert!(
            paced.sd_us < unpaced.sd_us,
            "paced sd {} vs unpaced sd {}",
            paced.sd_us,
            unpaced.sd_us
        );
    }

    #[test]
    fn paced_stream_spacing_matches_pcr() {
        let paced = measure(true);
        // 60k cells/s → 16.7 µs between cells; the inter-frame gaps pull
        // the mean up, so it must be ≥ the PCR spacing.
        assert!(paced.mean_us >= 16.0, "mean {}", paced.mean_us);
    }
}
