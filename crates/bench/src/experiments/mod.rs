//! The reconstructed experiments, one module each. See DESIGN.md §4 for
//! the index and EXPERIMENTS.md for expected shape vs measured output.

pub mod ra1_fifo_depth;
pub mod ra2_mips;
pub mod rf1_tx_throughput;
pub mod rf2_rx_throughput;
pub mod rf3_latency;
pub mod rf4_host_cpu;
pub mod rf5_loss;
pub mod rf6_bus;
pub mod rf7_delineation;
pub mod rf8_congestion;
pub mod ro1_bottleneck;
pub mod ro2_tail;
pub mod rr1_discard;
pub mod rs1_scale;
pub mod rt1_budget;
pub mod rt2_partition;
pub mod rt3_memory;
pub mod rt4_pacing;
pub mod rt5_overhead;
pub mod rw1_transport;
