//! R-F7: cell delineation under line bit errors — acquisition time and
//! in-sync behaviour of the HUNT/PRESYNC/SYNC machine, plus HEC
//! correction coverage.

use crate::table::Table;
use hni_atm::{Cell, Delineator, HeaderRepr, VcId, CELL_SIZE, PAYLOAD_SIZE};
use hni_sim::link::apply_bit_errors;
use hni_sim::Rng;

/// BER grid.
pub const BERS: [f64; 5] = [0.0, 1e-6, 1e-5, 1e-4, 1e-3];

/// One BER point.
pub struct Point {
    /// Bit error rate applied to the cell stream.
    pub ber: f64,
    /// Bits consumed to first acquisition.
    pub acquisition_bits: u64,
    /// Data cells delivered out of `offered`.
    pub delivered: u64,
    /// Cells offered after acquisition settled.
    pub offered: u64,
    /// Cells discarded while in SYNC (uncorrectable headers).
    pub discarded: u64,
    /// Single-bit header errors corrected.
    pub corrected: u64,
    /// Times delineation was lost.
    pub losses: u64,
}

fn cell_stream(n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * CELL_SIZE);
    for i in 0..n {
        let mut payload = [0u8; PAYLOAD_SIZE];
        for (j, b) in payload.iter_mut().enumerate() {
            *b = ((i * 13 + j * 7) % 256) as u8;
        }
        let cell = Cell::new(
            &HeaderRepr::data(VcId::new(0, 32 + (i % 64) as u16), false),
            &payload,
        )
        .unwrap();
        out.extend_from_slice(cell.as_bytes());
    }
    out
}

/// Run one BER point over `cells` cells.
pub fn measure(ber: f64, cells: usize, seed: u64) -> Point {
    let mut stream = cell_stream(cells);
    // Apply i.i.d. bit errors via geometric gap sampling.
    let mut rng = Rng::new(seed);
    if ber > 0.0 {
        let total_bits = stream.len() as u64 * 8;
        let mut pos = 0u64;
        let mut flips = Vec::new();
        loop {
            let gap = rng.geometric(ber);
            pos = match pos.checked_add(gap) {
                Some(p) if p <= total_bits => p,
                _ => break,
            };
            flips.push(pos - 1);
        }
        apply_bit_errors(&mut stream, &flips);
    }
    let mut d = Delineator::new();
    let mut out = Vec::new();
    d.push_bytes(&stream, &mut out);
    Point {
        ber,
        acquisition_bits: d.last_acquisition_bits(),
        delivered: d.delivered(),
        offered: cells as u64,
        discarded: d.discarded_in_sync(),
        corrected: d.hec_receiver().corrected(),
        losses: d.losses(),
    }
}

/// Render the figure.
pub fn run() -> String {
    let mut t = Table::new([
        "BER",
        "acquisition bits",
        "delivered",
        "offered",
        "discarded",
        "hec corrected",
        "sync losses",
    ]);
    for &ber in &BERS {
        let p = measure(ber, 3000, 1234);
        t.row([
            format!("{ber:.0e}"),
            p.acquisition_bits.to_string(),
            p.delivered.to_string(),
            p.offered.to_string(),
            p.discarded.to_string(),
            p.corrected.to_string(),
            p.losses.to_string(),
        ]);
    }
    format!(
        "R-F7 — Cell delineation vs line bit errors\n\
         (HUNT→PRESYNC→SYNC with ALPHA=7, DELTA=6; HEC correction mode)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_stream_delivers_everything_after_acquisition() {
        let p = measure(0.0, 1000, 9);
        // Acquisition consumes 7 cells (1 HUNT + 6 PRESYNC).
        assert_eq!(p.acquisition_bits, 2968);
        assert_eq!(p.delivered, 1000 - 7);
        assert_eq!(p.discarded, 0);
        assert_eq!(p.losses, 0);
    }

    #[test]
    fn moderate_ber_corrects_headers_and_keeps_sync() {
        // 3000 cells × 40 header bits × 1e-4 ≈ 12 expected header errors,
        // virtually all single-bit → corrected.
        let p = measure(1e-4, 3000, 10);
        assert!(p.corrected > 0, "some single-bit header errors expected");
        assert_eq!(p.losses, 0, "1e-4 must not drop delineation");
        assert!(p.delivered > p.offered * 95 / 100);
    }

    #[test]
    fn heavy_ber_discards_cells() {
        let p = measure(1e-3, 3000, 11);
        // At 1e-3, each 40-bit header sees an error with p ≈ 4%; double
        // hits and detection-mode discards follow.
        assert!(p.discarded > 0);
        assert!(p.delivered < p.offered);
    }

    #[test]
    fn degradation_is_monotone_in_ber() {
        let clean = measure(0.0, 2000, 12).delivered;
        let mid = measure(1e-4, 2000, 12).delivered;
        let heavy = measure(1e-3, 2000, 12).delivered;
        assert!(clean >= mid && mid >= heavy, "{clean} {mid} {heavy}");
    }
}
