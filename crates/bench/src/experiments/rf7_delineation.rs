//! R-F7: cell delineation under line bit errors — acquisition time and
//! in-sync behaviour of the HUNT/PRESYNC/SYNC machine, plus HEC
//! correction coverage.
//!
//! Three axes: the BER grid (byte-aligned), acquisition from
//! **non-byte-aligned** bit offsets under BER (the burst path must fall
//! back to the bit loop and still delineate), and **mid-stream sync
//! loss** — the reacquisition cost in bits after a garbage burst, the
//! axis that would have caught the HUNT re-entry dead zone (the
//! delineator must examine the 40-bit window at every bit after a loss;
//! it already holds up to 39 valid stream bits).

use crate::table::Table;
use hni_atm::{Cell, Delineator, HeaderRepr, VcId, CELL_SIZE, PAYLOAD_SIZE};
use hni_sim::link::apply_bit_errors;
use hni_sim::Rng;

/// BER grid.
pub const BERS: [f64; 5] = [0.0, 1e-6, 1e-5, 1e-4, 1e-3];

/// Bit offsets for the non-byte-aligned acquisition axis.
pub const SHIFTS: [usize; 3] = [1, 3, 7];

/// One BER point.
pub struct Point {
    /// Bit error rate applied to the cell stream.
    pub ber: f64,
    /// Bits consumed to first acquisition.
    pub acquisition_bits: u64,
    /// Data cells delivered out of `offered`.
    pub delivered: u64,
    /// Cells offered after acquisition settled.
    pub offered: u64,
    /// Cells discarded while in SYNC (uncorrectable headers).
    pub discarded: u64,
    /// Single-bit header errors corrected.
    pub corrected: u64,
    /// Times delineation was lost.
    pub losses: u64,
}

fn cell_stream(n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * CELL_SIZE);
    for i in 0..n {
        let mut payload = [0u8; PAYLOAD_SIZE];
        for (j, b) in payload.iter_mut().enumerate() {
            *b = ((i * 13 + j * 7) % 256) as u8;
        }
        let cell = Cell::new(
            &HeaderRepr::data(VcId::new(0, 32 + (i % 64) as u16), false),
            &payload,
        )
        .unwrap();
        out.extend_from_slice(cell.as_bytes());
    }
    out
}

/// Shift a byte stream right by `shift_bits` (prepending that many zero
/// bits), so cell boundaries no longer coincide with byte boundaries.
fn shift_stream(bytes: &[u8], shift_bits: usize) -> Vec<u8> {
    if shift_bits == 0 {
        return bytes.to_vec();
    }
    let mut out = Vec::with_capacity(bytes.len() + shift_bits / 8 + 1);
    let mut carry = 0u16;
    let mut nbits = shift_bits;
    for &b in bytes {
        carry = (carry << 8) | b as u16;
        nbits += 8;
        while nbits >= 8 {
            out.push((carry >> (nbits - 8)) as u8);
            nbits -= 8;
            carry &= (1 << nbits) - 1;
        }
    }
    if nbits > 0 {
        out.push((carry << (8 - nbits)) as u8);
    }
    out
}

fn apply_ber(stream: &mut [u8], ber: f64, rng: &mut Rng) {
    if ber <= 0.0 {
        return;
    }
    let total_bits = stream.len() as u64 * 8;
    let mut pos = 0u64;
    let mut flips = Vec::new();
    loop {
        let gap = rng.geometric(ber);
        pos = match pos.checked_add(gap) {
            Some(p) if p <= total_bits => p,
            _ => break,
        };
        flips.push(pos - 1);
    }
    apply_bit_errors(stream, &flips);
}

/// Run one BER point over `cells` cells, with the whole stream shifted
/// right by `shift_bits` (0 = byte-aligned).
pub fn measure_at_offset(ber: f64, cells: usize, seed: u64, shift_bits: usize) -> Point {
    let mut stream = shift_stream(&cell_stream(cells), shift_bits);
    // Apply i.i.d. bit errors via geometric gap sampling.
    let mut rng = Rng::new(seed);
    apply_ber(&mut stream, ber, &mut rng);
    let mut d = Delineator::new();
    let mut out = Vec::new();
    d.push_slice(&stream, &mut out);
    Point {
        ber,
        acquisition_bits: d.last_acquisition_bits(),
        delivered: d.delivered(),
        offered: cells as u64,
        discarded: d.discarded_in_sync(),
        corrected: d.hec_receiver().corrected(),
        losses: d.losses(),
    }
}

/// Run one byte-aligned BER point over `cells` cells.
pub fn measure(ber: f64, cells: usize, seed: u64) -> Point {
    measure_at_offset(ber, cells, seed, 0)
}

/// Mid-stream sync loss: reacquisition cost after a garbage burst.
pub struct ReacqPoint {
    /// Times delineation was lost (≥ 1 once the burst is long enough).
    pub losses: u64,
    /// Bits from the (final) loss to reacquisition — HUNT + candidate
    /// cell + DELTA confirmations, as counted by `last_acquisition_bits`.
    pub reacquisition_bits: u64,
    /// Cells delivered after the burst, out of `clean_after` offered.
    pub delivered_after: u64,
}

/// Sync on a clean stream, inject `garbage_bytes` of seeded noise
/// (a length not divisible by 53, so the resuming stream is also
/// phase-shifted), then resume clean cells and measure the
/// reacquisition cost in bits.
pub fn measure_reacquisition(garbage_bytes: usize, seed: u64) -> ReacqPoint {
    let mut d = Delineator::new();
    let mut out = Vec::new();
    d.push_slice(&cell_stream(60), &mut out);
    assert!(d.is_synced(), "must sync before the burst");
    let delivered_before = d.delivered();

    let mut rng = Rng::new(seed);
    let garbage: Vec<u8> = (0..garbage_bytes).map(|_| rng.next_u64() as u8).collect();
    d.push_slice(&garbage, &mut out);

    let clean_after = 200usize;
    d.push_slice(&cell_stream(clean_after), &mut out);
    ReacqPoint {
        losses: d.losses(),
        reacquisition_bits: d.last_acquisition_bits(),
        delivered_after: d.delivered() - delivered_before,
    }
}

/// Render the figure.
pub fn run() -> String {
    let mut t = Table::new([
        "BER",
        "acquisition bits",
        "delivered",
        "offered",
        "discarded",
        "hec corrected",
        "sync losses",
    ]);
    for &ber in &BERS {
        let p = measure(ber, 3000, 1234);
        t.row([
            format!("{ber:.0e}"),
            p.acquisition_bits.to_string(),
            p.delivered.to_string(),
            p.offered.to_string(),
            p.discarded.to_string(),
            p.corrected.to_string(),
            p.losses.to_string(),
        ]);
    }
    let mut shifted = Table::new([
        "bit offset",
        "BER",
        "acquisition bits",
        "delivered",
        "offered",
    ]);
    for &shift in &SHIFTS {
        let p = measure_at_offset(1e-4, 1000, 4321, shift);
        shifted.row([
            shift.to_string(),
            format!("{:.0e}", p.ber),
            p.acquisition_bits.to_string(),
            p.delivered.to_string(),
            p.offered.to_string(),
        ]);
    }
    let reacq = measure_reacquisition(200, 77);
    format!(
        "R-F7 — Cell delineation vs line bit errors\n\
         (HUNT→PRESYNC→SYNC with ALPHA=7, DELTA=6; HEC correction mode)\n\n{}\n\
         Acquisition from non-byte-aligned offsets (bit-loop fallback):\n\n{}\n\
         Mid-stream loss: 200-byte garbage burst → {} loss(es), \
         reacquired in {} bits\n\
         (HUNT re-examines the 40-bit window from the first post-loss \
         bit — no dead zone)\n",
        t.render(),
        shifted.render(),
        reacq.losses,
        reacq.reacquisition_bits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_stream_delivers_everything_after_acquisition() {
        let p = measure(0.0, 1000, 9);
        // Acquisition consumes 7 cells (1 HUNT + 6 PRESYNC).
        assert_eq!(p.acquisition_bits, 2968);
        assert_eq!(p.delivered, 1000 - 7);
        assert_eq!(p.discarded, 0);
        assert_eq!(p.losses, 0);
    }

    #[test]
    fn moderate_ber_corrects_headers_and_keeps_sync() {
        // 3000 cells × 40 header bits × 1e-4 ≈ 12 expected header errors,
        // virtually all single-bit → corrected.
        let p = measure(1e-4, 3000, 10);
        assert!(p.corrected > 0, "some single-bit header errors expected");
        assert_eq!(p.losses, 0, "1e-4 must not drop delineation");
        assert!(p.delivered > p.offered * 95 / 100);
    }

    #[test]
    fn heavy_ber_discards_cells() {
        let p = measure(1e-3, 3000, 11);
        // At 1e-3, each 40-bit header sees an error with p ≈ 4%; double
        // hits and detection-mode discards follow.
        assert!(p.discarded > 0);
        assert!(p.delivered < p.offered);
    }

    #[test]
    fn degradation_is_monotone_in_ber() {
        let clean = measure(0.0, 2000, 12).delivered;
        let mid = measure(1e-4, 2000, 12).delivered;
        let heavy = measure(1e-3, 2000, 12).delivered;
        assert!(clean >= mid && mid >= heavy, "{clean} {mid} {heavy}");
    }

    #[test]
    fn acquires_at_every_bit_offset_under_ber() {
        // The burst path must fall back to the bit loop at non-byte-
        // aligned phases; acquisition and delivery must survive a
        // realistic BER at every offset.
        for shift in 1..8usize {
            let p = measure_at_offset(1e-5, 1000, 100 + shift as u64, shift);
            assert_eq!(p.losses, 0, "shift {shift}");
            assert!(
                p.delivered > p.offered * 95 / 100,
                "shift {shift}: {} of {}",
                p.delivered,
                p.offered
            );
            // Acquisition cost: the shift delays the first header by
            // `shift` bits, nothing more.
            assert!(p.acquisition_bits >= 2968, "shift {shift}");
            assert!(p.acquisition_bits < 2968 + 424, "shift {shift}");
        }
    }

    #[test]
    fn mid_stream_loss_reacquires_and_counts_cost() {
        // This axis would have caught the HUNT dead zone: after a
        // garbage burst the machine loses SYNC mid-stream and must
        // reacquire on the resumed cells, paying at most ~7 cell times.
        let r = measure_reacquisition(200, 77);
        assert!(r.losses >= 1, "burst + misaligned resume must drop sync");
        // Lower bound: a straddling header (≥1 post-loss bit) + the
        // candidate cell's payload + DELTA confirmation cells. Upper
        // bound: garbage-induced false PRESYNC cycles plus full
        // reacquisition; generous but finite.
        assert!(r.reacquisition_bits >= 1 + 384 + 6 * 424);
        assert!(
            r.reacquisition_bits < 10 * 424 + 200 * 8,
            "{}",
            r.reacquisition_bits
        );
        assert!(r.delivered_after > 180, "{}", r.delivered_after);
    }

    #[test]
    fn reacquisition_is_deterministic() {
        let a = measure_reacquisition(200, 77);
        let b = measure_reacquisition(200, 77);
        assert_eq!(a.reacquisition_bits, b.reacquisition_bits);
        assert_eq!(a.losses, b.losses);
        assert_eq!(a.delivered_after, b.delivered_after);
    }
}
