//! R-F6: bus burst size — effective bandwidth, and where the host bus
//! becomes the bottleneck at OC-12.

use crate::table::{fmt_bps, fmt_pct, Table};
use hni_atm::VcId;
use hni_core::bus::BusConfig;
use hni_core::txsim::{greedy_workload, run_tx, TxConfig};
use hni_sonet::LineRate;

/// Burst sizes swept (words).
pub const BURSTS: [u32; 6] = [4, 8, 16, 32, 64, 128];

/// One burst-size point.
pub struct Point {
    /// Burst size in words.
    pub words: u32,
    /// Effective bus bandwidth at this burst size, bytes/s.
    pub effective_bytes_per_s: f64,
    /// Simulated transmit goodput with this bus.
    pub sim_bps: f64,
    /// Simulated bus utilization.
    pub bus_util: f64,
}

/// Sweep transmit goodput over burst sizes (large packets, OC-12,
/// paper partition — only the bus varies).
pub fn sweep(packets: usize) -> Vec<Point> {
    BURSTS
        .iter()
        .map(|&words| {
            let bus = BusConfig {
                max_burst_words: words,
                ..BusConfig::default()
            };
            let mut cfg = TxConfig::paper(LineRate::Oc12);
            cfg.bus = bus;
            let r = run_tx(&cfg, &greedy_workload(packets, 40_000, VcId::new(0, 32)));
            Point {
                words,
                effective_bytes_per_s: bus.effective_bytes_per_second(words),
                sim_bps: r.goodput_bps,
                bus_util: r.bus_util,
            }
        })
        .collect()
}

/// Render the figure.
pub fn run() -> String {
    let mut t = Table::new([
        "burst words",
        "bus effective",
        "sim goodput",
        "bus util",
        "bottleneck",
    ]);
    let payload_bytes = LineRate::Oc12.payload_bps() / 8.0;
    for p in sweep(15) {
        t.row([
            p.words.to_string(),
            fmt_bps(p.effective_bytes_per_s * 8.0),
            fmt_bps(p.sim_bps),
            fmt_pct(p.bus_util),
            if p.effective_bytes_per_s < payload_bytes {
                "bus"
            } else {
                "link"
            }
            .to_string(),
        ]);
    }
    format!(
        "R-F6 — DMA burst size vs deliverable throughput (OC-12, 40 kB packets)\n\
         (TURBOchannel-class bus: 25 MHz × 32-bit, 5+2 overhead cycles/burst)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_monotone_in_burst_size() {
        let pts = sweep(10);
        for w in pts.windows(2) {
            assert!(
                w[1].sim_bps >= w[0].sim_bps * 0.99,
                "burst {} → {}: {} vs {}",
                w[0].words,
                w[1].words,
                w[0].sim_bps,
                w[1].sim_bps
            );
        }
    }

    #[test]
    fn small_bursts_are_bus_bound_large_are_not() {
        let pts = sweep(10);
        let p4 = pts.iter().find(|p| p.words == 4).unwrap();
        let p64 = pts.iter().find(|p| p.words == 64).unwrap();
        // At 4 words the bus cannot carry OC-12 payload; sim goodput is
        // pinned near the bus limit and the bus is nearly saturated.
        assert!(p4.effective_bytes_per_s * 8.0 < LineRate::Oc12.payload_bps());
        assert!(p4.bus_util > 0.95);
        // Goodput at 4 words is pinned under the bus's effective rate.
        assert!(p4.sim_bps < p4.effective_bytes_per_s * 8.0);
        // At 64 words the link is the limit (540 vs 291 Mb/s ≈ 1.8×).
        assert!(p64.sim_bps > 1.5 * p4.sim_bps);
        assert!(p64.bus_util < 0.95);
    }
}
