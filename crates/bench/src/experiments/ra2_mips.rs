//! R-A2 (ablation): how fast must the protocol engine be?
//!
//! Sweeping engine MIPS for each partition answers the procurement
//! question behind the architecture: the paper split makes a ~20 MIPS
//! part sufficient at OC-12, while all-software needs an (unbuyable in
//! the era) ~300 MIPS. The analytic minimum is the per-cell instruction
//! count × the slot rate; the simulation column verifies delivery at
//! line load just above and below it.

use crate::table::{fmt_pct, Table};
use hni_aal::AalType;
use hni_core::engine::{HwPartition, ProtocolEngine};
use hni_core::rxsim::{run_rx, RxConfig, RxWorkload};
use hni_sonet::LineRate;

/// Analytic minimum MIPS to sustain the per-cell receive work at
/// `rate`'s slot rate under `partition`.
pub fn min_mips_rx(partition: &HwPartition, rate: LineRate) -> f64 {
    let e = ProtocolEngine::new(1.0, partition);
    e.rx_per_cell_instructions() as f64 * rate.cell_slots_per_second() / 1e6
}

/// One sweep point.
pub struct Point {
    /// Partition name.
    pub partition: &'static str,
    /// Engine MIPS simulated.
    pub mips: f64,
    /// Packets delivered / offered at OC-12 line load.
    pub delivery: f64,
}

/// Simulate delivery at line load for a MIPS grid per partition.
pub fn sweep() -> Vec<Point> {
    let mut out = Vec::new();
    for partition in [HwPartition::all_software(), HwPartition::paper_split()] {
        for &mips in &[12.5, 25.0, 50.0, 100.0, 200.0, 400.0] {
            let mut cfg = RxConfig::paper(LineRate::Oc12);
            cfg.partition = partition;
            cfg.mips = mips;
            let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 15, 9180, 1.0);
            let r = run_rx(&cfg, &wl);
            out.push(Point {
                partition: partition.name,
                mips,
                delivery: r.delivered_packets as f64 / wl.pkts.len() as f64,
            });
        }
    }
    out
}

/// Render the table.
pub fn run() -> String {
    let mut analytic = Table::new(["partition", "min MIPS @ OC-3", "min MIPS @ OC-12"]);
    for p in [
        HwPartition::all_software(),
        HwPartition::paper_split(),
        HwPartition::full_hardware(),
    ] {
        analytic.row([
            p.name.to_string(),
            format!("{:.1}", min_mips_rx(&p, LineRate::Oc3)),
            format!("{:.1}", min_mips_rx(&p, LineRate::Oc12)),
        ]);
    }
    let mut sim = Table::new(["partition", "MIPS", "pkts delivered @ OC-12 line load"]);
    for p in sweep() {
        sim.row([
            p.partition.to_string(),
            format!("{:.1}", p.mips),
            fmt_pct(p.delivery),
        ]);
    }
    format!(
        "R-A2 — Ablation: engine speed (receive direction, per-cell work)\n\n\
         Analytic minimum MIPS (per-cell work × slot rate):\n{}\n\
         Simulated delivery at OC-12 line load (9180-octet packets):\n{}",
        analytic.render(),
        sim.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_minimums() {
        // paper split: 15 instr × 1.4128 Mcells/s ≈ 21.2 MIPS at OC-12.
        let split = min_mips_rx(&HwPartition::paper_split(), LineRate::Oc12);
        assert!((split - 21.2).abs() < 0.2, "{split}");
        // all-software: 202 instr ≈ 285 MIPS.
        let sw = min_mips_rx(&HwPartition::all_software(), LineRate::Oc12);
        assert!((sw - 285.4).abs() < 1.0, "{sw}");
        assert_eq!(
            min_mips_rx(&HwPartition::full_hardware(), LineRate::Oc12),
            0.0
        );
    }

    #[test]
    fn sim_confirms_the_threshold() {
        let pts = sweep();
        let split_25 = pts
            .iter()
            .find(|p| p.partition == "paper-split" && p.mips == 25.0)
            .unwrap();
        assert_eq!(
            split_25.delivery, 1.0,
            "25 MIPS > 21.2 minimum: full delivery"
        );
        let split_12 = pts
            .iter()
            .find(|p| p.partition == "paper-split" && p.mips == 12.5)
            .unwrap();
        assert!(split_12.delivery < 1.0, "12.5 MIPS < minimum must lose");
        let sw_200 = pts
            .iter()
            .find(|p| p.partition == "all-software" && p.mips == 200.0)
            .unwrap();
        assert!(sw_200.delivery < 1.0, "200 MIPS still below 285");
        let sw_400 = pts
            .iter()
            .find(|p| p.partition == "all-software" && p.mips == 400.0)
            .unwrap();
        assert_eq!(sw_400.delivery, 1.0, "400 MIPS clears all-software");
    }
}
