//! R-F8: cell loss from real congestion — bursty sources converging on
//! one switch output port.
//!
//! R-F5 postulates a random cell-loss process; this experiment produces
//! loss the way networks actually do: several on/off sources share one
//! output line, and when their bursts coincide the output queue
//! overflows. The figure shows (a) the loss-vs-load knee around offered
//! load 1.0, (b) how buffer size moves the knee, and (c) space priority:
//! CLP=1 traffic absorbs the loss first, protecting CLP=0.

use crate::table::{fmt_pct, Table};
use hni_atm::{Cell, HeaderRepr, VcId, PAYLOAD_SIZE};
use hni_sim::{Duration, Rng, Time};
use hni_switch::{RouteEntry, Switch, SwitchConfig};

/// One measured point.
pub struct Point {
    /// Offered load (fraction of the output line rate).
    pub load: f64,
    /// Output queue capacity, cells.
    pub queue_cells: usize,
    /// Overall loss ratio.
    pub loss: f64,
    /// Loss ratio of CLP=0 (protected) traffic.
    pub loss_clp0: f64,
    /// Loss ratio of CLP=1 (discard-eligible) traffic.
    pub loss_clp1: f64,
    /// Mean output queue depth.
    pub mean_queue: f64,
    /// Peak output queue depth.
    pub peak_queue: u64,
}

/// Simulate `n_sources` on/off sources (mean burst `burst` cells, mean
/// idle scaled so aggregate offered load is `load`) converging on one
/// output for `slots` cell slots. Every second source marks its cells
/// CLP=1.
pub fn congested_port(
    load: f64,
    n_sources: usize,
    burst: f64,
    queue_cells: usize,
    slots: usize,
    seed: u64,
) -> Point {
    assert!(load > 0.0 && n_sources > 0);
    let mut sw = Switch::new(SwitchConfig {
        ports: 2,
        output_queue_cells: queue_cells,
        // Space priority kicks in at 3/4 occupancy.
        clp_threshold: (queue_cells * 3) / 4,
        efci_threshold: queue_cells / 2,
    });
    for s in 0..n_sources {
        sw.add_route(
            0,
            VcId::new(0, 100 + s as u16),
            RouteEntry {
                out_port: 1,
                out_vc: VcId::new(0, 100 + s as u16),
            },
        );
    }
    let mut rng = Rng::new(seed);
    // On/off: while "on", a source emits one cell per slot; mean on
    // period `burst` slots; idle sized so per-source load is load/n.
    let per_source = load / n_sources as f64;
    assert!(per_source < 1.0, "per-source load must be < 1");
    let mean_off = burst * (1.0 - per_source) / per_source;
    let p_on_end = 1.0 / burst;
    let p_off_end = 1.0 / mean_off;

    let mut on: Vec<bool> = (0..n_sources).map(|_| rng.chance(per_source)).collect();
    let mut offered = [0u64; 2]; // by CLP
    let mut dropped = [0u64; 2];
    let slot = Duration::from_ns(708); // OC-12-ish; absolute value irrelevant
    let mut now = Time::ZERO;
    let payload = [0u8; PAYLOAD_SIZE];

    for _ in 0..slots {
        for (s, state) in on.iter_mut().enumerate() {
            if *state {
                let clp = s % 2 == 1;
                let header = HeaderRepr {
                    clp,
                    ..HeaderRepr::data(VcId::new(0, 100 + s as u16), false)
                };
                let cell = Cell::new(&header, &payload).expect("valid header");
                offered[clp as usize] += 1;
                if !sw.offer(0, &cell, now) {
                    dropped[clp as usize] += 1;
                }
                if rng.chance(p_on_end) {
                    *state = false;
                }
            } else if rng.chance(p_off_end) {
                *state = true;
            }
        }
        let _ = sw.pull(1, now);
        now += slot;
    }

    let ratio = |d: u64, o: u64| if o == 0 { 0.0 } else { d as f64 / o as f64 };
    Point {
        load,
        queue_cells,
        loss: ratio(dropped[0] + dropped[1], offered[0] + offered[1]),
        loss_clp0: ratio(dropped[0], offered[0]),
        loss_clp1: ratio(dropped[1], offered[1]),
        mean_queue: sw.mean_queue(1, now),
        peak_queue: sw.peak_queue(1),
    }
}

/// Render the figure.
pub fn run() -> String {
    let mut t = Table::new([
        "offered load",
        "queue cells",
        "loss (all)",
        "loss CLP=0",
        "loss CLP=1",
        "mean queue",
        "peak queue",
    ]);
    for &queue in &[32usize, 128] {
        for &load in &[0.5, 0.7, 0.85, 0.95, 1.05, 1.2] {
            let p = congested_port(load, 8, 20.0, queue, 200_000, 42);
            t.row([
                format!("{load:.2}"),
                queue.to_string(),
                fmt_pct(p.loss),
                fmt_pct(p.loss_clp0),
                fmt_pct(p.loss_clp1),
                format!("{:.1}", p.mean_queue),
                p.peak_queue.to_string(),
            ]);
        }
    }
    format!(
        "R-F8 — Congestion loss at a switch output port\n\
         (8 on/off sources, mean burst 20 cells, space priority at 3/4 queue.\n\
          Note the era's key observation: with bursty sources, loss appears\n\
          well below full load — burst coincidence, not mean rate, fills queues.)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_rises_with_load() {
        // Burst coincidence makes even half load lossy with modest
        // buffers — the era's central observation about bursty traffic —
        // but overload is an order of magnitude worse.
        let low = congested_port(0.5, 8, 20.0, 64, 100_000, 1);
        let high = congested_port(1.2, 8, 20.0, 64, 100_000, 1);
        assert!(low.loss < 0.05, "half load: {}", low.loss);
        assert!(high.loss > 0.1, "overload must lose >10%: {}", high.loss);
        assert!(high.loss > 4.0 * low.loss);
    }

    #[test]
    fn smooth_traffic_at_half_load_is_lossless() {
        // The same load with burst length 1 (≈ Bernoulli arrivals)
        // produces essentially no loss: burstiness, not load, drives
        // loss below saturation.
        let smooth = congested_port(0.5, 8, 1.0, 64, 100_000, 5);
        let bursty = congested_port(0.5, 8, 20.0, 64, 100_000, 5);
        assert!(smooth.loss < 1e-3, "smooth: {}", smooth.loss);
        assert!(bursty.loss > smooth.loss);
    }

    #[test]
    fn bigger_buffers_absorb_bursts_below_saturation() {
        let small = congested_port(0.85, 8, 20.0, 32, 200_000, 2);
        let large = congested_port(0.85, 8, 20.0, 256, 200_000, 2);
        assert!(
            large.loss < small.loss,
            "large {} !< small {}",
            large.loss,
            small.loss
        );
    }

    #[test]
    fn clp_protects_high_priority() {
        let p = congested_port(1.0, 8, 20.0, 64, 200_000, 3);
        assert!(
            p.loss_clp1 > 3.0 * p.loss_clp0.max(1e-9),
            "CLP=1 {} should absorb losses, CLP=0 {}",
            p.loss_clp1,
            p.loss_clp0
        );
    }

    #[test]
    fn overload_cannot_be_buffered_away() {
        // Above load 1.0 loss is inevitable regardless of buffer size:
        // at 1.2 at least ~17% must drop.
        let p = congested_port(1.2, 8, 20.0, 1024, 200_000, 4);
        assert!(p.loss > 0.12, "{}", p.loss);
    }

    #[test]
    fn deterministic() {
        let a = congested_port(0.9, 4, 10.0, 32, 50_000, 9);
        let b = congested_port(0.9, 4, 10.0, 32, 50_000, 9);
        assert_eq!(a.peak_queue, b.peak_queue);
        assert_eq!(a.loss, b.loss);
    }
}
