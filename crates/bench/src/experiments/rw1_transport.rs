//! R-W1: closed-loop transport — goodput and retransmission-rate
//! surfaces vs RTT × loss, and discard-policy dominance with feedback.
//!
//! R-R1 measured the discard policies *open loop*: one pass of offered
//! frames, count what survives. Real hosts do not stop at one pass — a
//! transport above the adaptor retransmits what the pool discarded, so
//! a policy's true cost is the steady state its feedback loop settles
//! into. This experiment closes that loop with `hni-transport`
//! (sliding window, cumulative + selective acks on a reverse VC,
//! Jacobson/Karn adaptive RTO with capped exponential backoff) and
//! measures two surfaces:
//!
//! 1. **Overload leg** — the R-R1 overload scenario (9180-octet
//!    frames, 32-buffer pool, demand 1.5× and 3× the pool) rerun
//!    closed-loop for each policy, next to the open-loop numbers at
//!    the same loss point. Two opposed effects show up. Feedback
//!    *rescues* drop-tail from open-loop collapse (retransmission
//!    recovers what the pool discarded, so closed-loop drop-tail
//!    goodput is never zero), and where link loss — not the pool —
//!    gates progress, the recovery path washes the policy ranking
//!    out. But at the matched congestion point (deepest overload,
//!    zero link loss: every discard is the pool's own doing) the
//!    dominance *sharpens*: a drop-tail victim wastes pool buffers
//!    **and** a window slot until its timer fires, and that waste
//!    compounds across retransmission rounds, while an EPD-refused
//!    frame never held a buffer and a PPD-punted one returns its
//!    chain the instant an append fails. That point is the golden.
//! 2. **WAN leg** — goodput and retransmission rate across
//!    LAN/WAN/satellite delay presets × cell-loss rates, showing the
//!    adaptive RTO tracking three orders of magnitude of RTT and
//!    backoff keeping goodput nonzero (no livelock) at 10% loss on the
//!    ≥ 560 ms-RTT satellite path.
//!
//! Determinism: every point derives its config from the grid
//! coordinates and [`SEED`] alone, so the sweep is byte-identical
//! across reruns and `HNI_JOBS` worker counts.

use crate::table::{fmt_bps, fmt_pct, Table};
use hni_core::DiscardPolicy;
use hni_faults::{scenarios, DelayModel, FaultPlan};
use hni_sonet::LineRate;
use hni_transport::{run_transport, TransportConfig, TransportReport};

use super::rr1_discard;

/// Fault-plan seed — the R-R1 seed, so the open- and closed-loop
/// overload legs run paired fault processes.
pub const SEED: u64 = rr1_discard::SEED;

/// Overload leg: cell-loss rates shared with the R-R1 grid.
pub const OVERLOAD_LOSSES: [f64; 3] = [0.0, 0.001, 0.002];

/// Overload leg: concurrent VCs — R-R1's overloaded rows. The pool
/// sees one interleaving frame per VC (the window pipelines acks, not
/// receive-side concurrency), so demand is 1.5× and 3× the 32-buffer
/// pool exactly as open loop.
pub const OVERLOAD_VCS: [usize; 2] = [8, 16];

/// Overload leg: frames in flight per VC.
pub const OVERLOAD_WINDOW: usize = 2;

/// Overload leg: frames each VC must deliver.
const OVERLOAD_FRAMES_PER_VC: usize = 12;

/// WAN leg: forward/reverse cell-loss rates swept.
pub const WAN_LOSSES: [f64; 3] = [0.0, 0.01, 0.10];

/// WAN leg: delay presets swept (name, model).
pub fn wan_paths() -> [(&'static str, DelayModel); 3] {
    [
        ("lan", scenarios::lan_path()),
        ("wan", scenarios::wan_path()),
        ("satellite", scenarios::satellite_path()),
    ]
}

/// WAN leg: SDU octets per frame. Small frames (11 cells) keep per-
/// attempt survival meaningful at 10% cell loss (0.9^11 ≈ 0.31);
/// the overload leg's 9180-octet frames would survive with p ≈ 10^-9.
pub const WAN_FRAME_LEN: usize = 512;

/// One overload-leg grid point: closed-loop goodput next to the
/// open-loop R-R1 measurement at the same loss and pool demand.
#[derive(Clone, Debug, PartialEq)]
pub struct OverloadPoint {
    /// Link cell-loss probability (forward path).
    pub loss: f64,
    /// Concurrent VCs (each with [`OVERLOAD_WINDOW`] frames in flight).
    pub n_vcs: usize,
    /// Demand on the pool: in-flight frames × buffers/frame ÷ buffers.
    pub overcommit: f64,
    /// Closed-loop goodput per policy, bits/s.
    pub closed_dt_bps: f64,
    pub closed_epd_bps: f64,
    pub closed_ppd_bps: f64,
    /// Closed-loop retransmission rate per policy.
    pub retx_dt: f64,
    pub retx_epd: f64,
    pub retx_ppd: f64,
    /// Open-loop (R-R1) goodput per policy at the same loss/demand.
    pub open_dt_bps: f64,
    pub open_epd_bps: f64,
    pub open_ppd_bps: f64,
}

impl OverloadPoint {
    /// EPD's edge over drop-tail, closed loop, as a fraction of link
    /// payload capacity (capacity-normalised so open and closed runs —
    /// whose absolute goodputs differ — compare on one scale).
    pub fn closed_epd_dominance(&self) -> f64 {
        (self.closed_epd_bps - self.closed_dt_bps) / LineRate::Oc12.payload_bps()
    }

    /// PPD's edge over drop-tail, closed loop (capacity-normalised).
    pub fn closed_ppd_dominance(&self) -> f64 {
        (self.closed_ppd_bps - self.closed_dt_bps) / LineRate::Oc12.payload_bps()
    }

    /// EPD's edge over drop-tail, open loop (capacity-normalised).
    pub fn open_epd_dominance(&self) -> f64 {
        (self.open_epd_bps - self.open_dt_bps) / LineRate::Oc12.payload_bps()
    }

    /// PPD's edge over drop-tail, open loop (capacity-normalised).
    pub fn open_ppd_dominance(&self) -> f64 {
        (self.open_ppd_bps - self.open_dt_bps) / LineRate::Oc12.payload_bps()
    }

    /// Is this the matched congestion point the golden gates on —
    /// deepest overload at zero link loss, where every discard is the
    /// pool's own doing? (At lossy points the link-recovery path, not
    /// the discard policy, gates goodput, and retransmission *rescues*
    /// open-loop drop-tail's collapse — see the module docs.)
    pub fn is_congestion_point(&self) -> bool {
        self.loss == 0.0 && self.n_vcs == *OVERLOAD_VCS.iter().max().unwrap()
    }

    /// The golden predicate at the congestion point: closed-loop
    /// dominance at least as large as open loop, for EPD and for PPD,
    /// with the open-loop ranking itself preserved.
    pub fn dominance_sharpened(&self) -> bool {
        self.closed_epd_dominance() >= self.open_epd_dominance()
            && self.closed_ppd_dominance() >= self.open_ppd_dominance()
            && self.closed_epd_bps > self.closed_dt_bps
            && self.closed_ppd_bps > self.closed_dt_bps
    }
}

/// One WAN-leg grid point.
#[derive(Clone, Debug, PartialEq)]
pub struct WanPoint {
    /// Delay-preset name ("lan" / "wan" / "satellite").
    pub path: &'static str,
    /// Worst-case path RTT (ms) under the preset.
    pub rtt_ms: f64,
    /// Cell-loss probability (both directions).
    pub loss: f64,
    /// Goodput, bits/s (EPD policy; the pool is never the constraint).
    pub goodput_bps: f64,
    /// Retransmission rate: retransmissions / attempts.
    pub retx_rate: f64,
    /// Final mean smoothed RTT across VCs, µs (0 if never sampled).
    pub srtt_us: f64,
    /// Frames the transport gave up on.
    pub abandoned: u64,
    /// Sender finished (acked or abandoned every frame) in sim budget.
    pub completed: bool,
}

fn overload_cfg(n_vcs: usize, loss: f64, policy: DiscardPolicy) -> TransportConfig {
    let mut cfg = TransportConfig::paper(LineRate::Oc12);
    cfg.n_vcs = n_vcs;
    cfg.frames_per_vc = OVERLOAD_FRAMES_PER_VC;
    cfg.frame_len = rr1_discard::FRAME_LEN;
    cfg.window = OVERLOAD_WINDOW;
    cfg.pool.total_buffers = 32;
    cfg.pool.cells_per_buffer = 32;
    cfg.policy = policy;
    cfg.fwd_plan = if loss > 0.0 {
        FaultPlan::loss(loss)
    } else {
        FaultPlan::NONE
    };
    cfg.seed = SEED;
    // Phase VC starts one solo-frame serialization time apart, so
    // admission instants sample representative occupancy — the closed-
    // loop analogue of R-R1's staggered workload.
    cfg.start_stagger = LineRate::Oc12
        .cell_slot_time()
        .times(cfg.cells_per_frame() as u64);
    // Zero-propagation path: the RTO scales to serialization time.
    cfg.with_path(DelayModel::NONE)
}

/// Measure one overload-leg point: three closed-loop runs (one per
/// policy) plus the paired open-loop R-R1 measurement.
pub fn measure_overload(loss: f64, n_vcs: usize) -> OverloadPoint {
    let buffers_per_frame = rr1_discard::FRAME_LEN.div_ceil(48 * 32);
    let threshold = 32 - buffers_per_frame;
    let run = |policy: DiscardPolicy| -> TransportReport {
        let r = run_transport(&overload_cfg(n_vcs, loss, policy));
        debug_assert!(r.ledger.reconciles(), "{:?}", r.ledger);
        r
    };
    let dt = run(DiscardPolicy::DropTail);
    let epd = run(DiscardPolicy::Epd { threshold });
    let ppd = run(DiscardPolicy::Ppd);
    // The paired open-loop measurement: R-R1's own grid point at the
    // same loss and the same number of frames competing for the pool.
    let open = rr1_discard::measure(loss, n_vcs, (256 / n_vcs).max(12));
    OverloadPoint {
        loss,
        n_vcs,
        overcommit: (n_vcs * buffers_per_frame) as f64 / 32.0,
        closed_dt_bps: dt.goodput_bps,
        closed_epd_bps: epd.goodput_bps,
        closed_ppd_bps: ppd.goodput_bps,
        retx_dt: dt.retx_rate,
        retx_epd: epd.retx_rate,
        retx_ppd: ppd.retx_rate,
        open_dt_bps: open.drop_tail_bps,
        open_epd_bps: open.epd_bps,
        open_ppd_bps: open.ppd_bps,
    }
}

fn wan_cfg(path: DelayModel, loss: f64) -> TransportConfig {
    let mut cfg = TransportConfig::paper(LineRate::Oc3);
    cfg.n_vcs = 2;
    cfg.frames_per_vc = 16;
    cfg.frame_len = WAN_FRAME_LEN;
    cfg.window = 8;
    // Roomy pool + EPD: the path, not the pool, is the constraint here.
    cfg.policy = DiscardPolicy::Epd {
        threshold: cfg.pool.total_buffers - 1,
    };
    let plan = if loss > 0.0 {
        FaultPlan::loss(loss)
    } else {
        FaultPlan::NONE
    };
    cfg.fwd_plan = plan;
    cfg.rev_plan = plan;
    cfg.seed = SEED;
    let mut cfg = cfg.with_path(path);
    // Ten satellite-RTT backoff chains fit comfortably.
    cfg.max_sim_time = hni_sim::Duration::from_s(600);
    cfg
}

/// Measure one WAN-leg point.
pub fn measure_wan(path_name: &'static str, path: DelayModel, loss: f64) -> WanPoint {
    let cfg = wan_cfg(path, loss);
    let r = run_transport(&cfg);
    debug_assert!(r.ledger.reconciles(), "{:?}", r.ledger);
    WanPoint {
        path: path_name,
        rtt_ms: path.max_delay().times(2).as_s_f64() * 1e3,
        loss,
        goodput_bps: r.goodput_bps,
        retx_rate: r.retx_rate,
        srtt_us: r.srtt_us,
        abandoned: r.abandoned_frames,
        completed: r.completed,
    }
}

/// The overload-leg sweep under the `HNI_JOBS` worker pool.
pub fn sweep_overload() -> Vec<OverloadPoint> {
    sweep_overload_with_jobs(crate::jobs_from_env())
}

/// The overload-leg sweep with an explicit worker count.
pub fn sweep_overload_with_jobs(jobs: usize) -> Vec<OverloadPoint> {
    let mut grid = Vec::new();
    for &loss in &OVERLOAD_LOSSES {
        for &n_vcs in &OVERLOAD_VCS {
            grid.push((loss, n_vcs));
        }
    }
    crate::par_sweep_with_jobs(jobs, &grid, |&(loss, n_vcs)| measure_overload(loss, n_vcs))
}

/// The WAN-leg sweep under the `HNI_JOBS` worker pool.
pub fn sweep_wan() -> Vec<WanPoint> {
    sweep_wan_with_jobs(crate::jobs_from_env())
}

/// The WAN-leg sweep with an explicit worker count.
pub fn sweep_wan_with_jobs(jobs: usize) -> Vec<WanPoint> {
    let mut grid = Vec::new();
    for (name, path) in wan_paths() {
        for &loss in &WAN_LOSSES {
            grid.push((name, path, loss));
        }
    }
    crate::par_sweep_with_jobs(jobs, &grid, |&(name, path, loss)| {
        measure_wan(name, path, loss)
    })
}

/// The canonical closed-loop run backing `report hist r-w1`: the WAN
/// leg's satellite point at 1% loss — the regime where the frame-
/// latency distribution is bimodal (one RTT vs. RTO + retransmit).
pub fn canonical_run() -> TransportReport {
    run_transport(&wan_cfg(scenarios::satellite_path(), 0.01))
}

/// Render the R-W1 report.
pub fn run() -> String {
    let mut ot = Table::new([
        "cell loss",
        "VCs",
        "demand",
        "dt closed",
        "EPD closed",
        "PPD closed",
        "dt retx",
        "EPD retx",
        "dt open",
        "EPD open",
    ]);
    let overload = sweep_overload();
    for p in &overload {
        ot.row([
            format!("{:.1}%", p.loss * 100.0),
            p.n_vcs.to_string(),
            format!("{:.1}x", p.overcommit),
            fmt_bps(p.closed_dt_bps),
            fmt_bps(p.closed_epd_bps),
            fmt_bps(p.closed_ppd_bps),
            fmt_pct(p.retx_dt),
            fmt_pct(p.retx_epd),
            fmt_bps(p.open_dt_bps),
            fmt_bps(p.open_epd_bps),
        ]);
    }
    let mut wt = Table::new([
        "path",
        "RTT",
        "cell loss",
        "goodput",
        "retx rate",
        "srtt",
        "abandoned",
    ]);
    let wan = sweep_wan();
    for p in &wan {
        wt.row([
            p.path.to_string(),
            format!("{:.1} ms", p.rtt_ms),
            format!("{:.0}%", p.loss * 100.0),
            fmt_bps(p.goodput_bps),
            fmt_pct(p.retx_rate),
            format!("{:.1} ms", p.srtt_us / 1e3),
            p.abandoned.to_string(),
        ]);
    }
    // The golden verdict ci.sh gates on: dominance must sharpen with
    // feedback at the matched congestion point, and the satellite path
    // must keep moving at 10% loss.
    let sharpened = overload
        .iter()
        .filter(|p| p.is_congestion_point())
        .all(|p| p.dominance_sharpened())
        && overload.iter().any(|p| p.is_congestion_point());
    let sat = wan
        .iter()
        .find(|p| p.path == "satellite" && p.loss >= 0.10)
        .expect("satellite 10% point in grid");
    let no_livelock = sat.goodput_bps > 0.0 && sat.completed;
    let verdict = if sharpened && no_livelock {
        "PASS"
    } else {
        "FAIL"
    };
    format!(
        "R-W1 — closed-loop transport: policy dominance with feedback, and\n\
         goodput vs RTT x loss under adaptive retransmission\n\
         window/RTO: per-VC sliding window, cumulative + selective acks on a\n\
         reverse VC, Jacobson SRTT/RTTVAR, Karn's rule, backoff cap 2^6,\n\
         fast retransmit at 3 duplicate acks; fault seed {SEED}.\n\n\
         Overload leg — OC-12, {flen}-octet frames, 32-buffer pool, window {w}\n\
         (in-flight demand as in R-R1's 8- and 16-VC rows), open-loop R-R1\n\
         numbers at matched loss and demand alongside:\n{ot}\n\
         WAN leg — OC-3, {wflen}-octet frames over delay presets, loss on both\n\
         directions, EPD with a roomy pool (the path is the constraint):\n{wt}\n\
         Reading: feedback cuts both ways. Retransmission *rescues* drop-tail\n\
         from open-loop collapse (closed dt goodput is never the open loop's\n\
         zero), and at lossy points the link-recovery path gates goodput, so\n\
         the policy ranking washes out there. But at the matched congestion\n\
         point (3.0x demand, 0% link loss: every discard is the pool's own)\n\
         the ranking *sharpens* — drop-tail's doomed frames cost pool and\n\
         window time until a timer fires, compounding across retransmission\n\
         rounds (capacity-normalised dominance, closed >= open for EPD and\n\
         PPD). On the WAN leg the adaptive RTO tracks three decades of RTT;\n\
         at 10% cell loss on the >=560 ms satellite path, exponential backoff\n\
         keeps the loop live (goodput > 0, no livelock) while Karn's rule\n\
         keeps the estimator honest.\n\n\
         golden verdict: {verdict} (dominance sharpened: {sharpened}; \
         satellite 10% loss goodput {satbps}, completed: {satdone})",
        flen = rr1_discard::FRAME_LEN,
        w = OVERLOAD_WINDOW,
        wflen = WAN_FRAME_LEN,
        ot = ot.render(),
        wt = wt.render(),
        satbps = fmt_bps(sat.goodput_bps),
        satdone = sat.completed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole golden: at the matched congestion point — deepest
    /// overload, zero link loss, so every discard is the pool's own —
    /// closed-loop feedback must *sharpen* EPD/PPD dominance relative
    /// to the open-loop R-R1 measurement; and everywhere on the grid
    /// retransmission must rescue drop-tail from open-loop collapse.
    #[test]
    fn feedback_sharpens_policy_dominance() {
        let overload = sweep_overload();
        for p in &overload {
            assert!(p.overcommit > 1.0, "grid must stay in overload");
            // The rescue effect: open-loop drop-tail collapses under
            // overload, closed-loop drop-tail never does — the window
            // retransmits what the pool discarded.
            assert!(
                p.closed_dt_bps > 0.0,
                "closed-loop drop-tail collapsed at loss={} vcs={}",
                p.loss,
                p.n_vcs
            );
        }
        let congestion: Vec<_> = overload
            .iter()
            .filter(|p| p.is_congestion_point())
            .collect();
        assert_eq!(congestion.len(), 1, "exactly one matched congestion point");
        let p = congestion[0];
        assert!(
            p.closed_epd_dominance() >= p.open_epd_dominance(),
            "EPD dominance shrank with feedback: closed {:.4} < open {:.4}",
            p.closed_epd_dominance(),
            p.open_epd_dominance()
        );
        assert!(
            p.closed_ppd_dominance() >= p.open_ppd_dominance(),
            "PPD dominance shrank with feedback: closed {:.4} < open {:.4}",
            p.closed_ppd_dominance(),
            p.open_ppd_dominance()
        );
        assert!(p.dominance_sharpened());
        // Feedback preserves the R-R1 ranking itself, and drop-tail
        // pays for its buffer waste in recovery load.
        assert!(
            p.closed_ppd_bps > p.closed_epd_bps,
            "PPD <= EPD closed loop"
        );
        assert!(p.closed_epd_bps > p.closed_dt_bps, "EPD <= dt closed loop");
        assert!(p.retx_dt > p.retx_epd, "drop-tail must out-retransmit EPD");
        assert!(p.retx_epd > p.retx_ppd, "EPD must out-retransmit PPD");
        assert!(p.closed_dt_bps > p.open_dt_bps, "feedback must rescue dt");
    }

    /// The no-livelock golden: at 10% cell loss on the ≥560 ms-RTT
    /// satellite preset, capped backoff keeps goodput nonzero and the
    /// transfer terminates.
    #[test]
    fn satellite_backoff_never_livelocks() {
        for p in sweep_wan() {
            assert!(p.completed, "{} loss={} did not complete", p.path, p.loss);
            assert!(
                p.goodput_bps > 0.0,
                "{} loss={} moved nothing",
                p.path,
                p.loss
            );
            if p.loss == 0.0 {
                assert_eq!(p.abandoned, 0, "{}: clean path abandoned frames", p.path);
                assert_eq!(p.retx_rate, 0.0, "{}: clean path retransmitted", p.path);
            }
        }
        let wan = sweep_wan();
        let sat = wan
            .iter()
            .find(|p| p.path == "satellite" && p.loss >= 0.10)
            .unwrap();
        assert!(sat.rtt_ms >= 500.0, "satellite preset must be >=500ms RTT");
        assert!(sat.goodput_bps > 0.0);
    }

    /// The adaptive RTO must actually adapt: the smoothed RTT tracks the
    /// path across three orders of magnitude.
    #[test]
    fn srtt_tracks_the_path() {
        let wan = sweep_wan();
        let at = |path: &str| {
            wan.iter()
                .find(|p| p.path == path && p.loss == 0.0)
                .unwrap()
                .srtt_us
        };
        let (lan, wide, sat) = (at("lan"), at("wan"), at("satellite"));
        assert!(lan > 0.0 && wide > 0.0 && sat > 0.0, "{lan} {wide} {sat}");
        assert!(lan < wide && wide < sat, "{lan} !< {wide} !< {sat}");
        assert!(sat >= 560_000.0, "satellite srtt below the physics: {sat}");
    }

    #[test]
    fn rendered_report_is_deterministic_and_passes() {
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("golden verdict: PASS"), "{a}");
    }
}
