//! R-T3: reassembly memory — the analytic strategy table plus measured
//! pool occupancy under interleaving.

use crate::table::Table;
use hni_aal::AalType;
use hni_analysis::memory::memory_rows;
use hni_core::bufpool::PoolConfig;
use hni_core::rxsim::{run_rx, RxConfig, RxWorkload};
use hni_sonet::LineRate;

/// Measured pool peak for `n_vcs` interleaved 9180-octet frames.
pub fn measured_peak(n_vcs: usize, cells_per_buffer: usize) -> u64 {
    let mut cfg = RxConfig::paper(LineRate::Oc12);
    cfg.pool = PoolConfig {
        // Generous cap so the peak is a measurement, not the limit
        // (64 VCs × 192-cell frames × pipelining can chain >12k cells).
        total_buffers: 32_768,
        cells_per_buffer,
    };
    let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, n_vcs, 2, 9180, 1.0);
    run_rx(&cfg, &wl).pool_peak
}

/// Render both tables.
pub fn run() -> String {
    let mut t = Table::new([
        "strategy",
        "2-cell frame",
        "192-cell frame",
        "1366-cell frame",
        "O(1) access",
    ]);
    for r in memory_rows() {
        t.row([
            r.name.clone(),
            format!("{} B", r.small),
            format!("{} B", r.datagram),
            format!("{} B", r.max),
            if r.o1_access { "yes" } else { "no" }.to_string(),
        ]);
    }
    let mut m = Table::new([
        "interleaved VCs",
        "buffer org",
        "peak buffers",
        "peak octets",
    ]);
    let mut grid = Vec::new();
    for &n in &[1usize, 16, 64] {
        for &k in &[1usize, 32] {
            grid.push((n, k));
        }
    }
    // Grid points are independent receive runs — sweep them in parallel.
    let peaks = crate::par_sweep(&grid, |&(n, k)| measured_peak(n, k));
    for (&(n, k), peak) in grid.iter().zip(peaks) {
        m.row([
            n.to_string(),
            if k == 1 {
                "per-cell".to_string()
            } else {
                format!("{k}-cell containers")
            },
            peak.to_string(),
            (peak as usize * (k * 48 + 4 + k.div_ceil(8))).to_string(),
        ]);
    }
    format!(
        "R-T3 — Adaptor reassembly memory\n\n\
         Local octets per frame, by organisation (analytic):\n{}\n\
         Measured peak pool occupancy (9180-octet frames at OC-12 line rate):\n{}",
        t.render(),
        m.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_scales_measured_peak() {
        let one = measured_peak(1, 32);
        let sixteen = measured_peak(16, 32);
        assert!(sixteen >= 8 * one, "1 VC {one} vs 16 VCs {sixteen}");
    }

    #[test]
    fn containers_use_fewer_buffers_than_per_cell() {
        let cells = measured_peak(16, 1);
        let containers = measured_peak(16, 32);
        assert!(
            containers * 16 < cells,
            "containers {containers} cells {cells}"
        );
    }
}
