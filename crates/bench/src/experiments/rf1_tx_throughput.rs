//! R-F1: transmit goodput versus packet size — simulation against the
//! analytic bounds, per partition, at both line rates.

use crate::table::{fmt_bps, Table};
use hni_analysis::throughput::{predict_tx, predict_tx_with_bubble};
use hni_atm::VcId;
use hni_core::engine::HwPartition;
use hni_core::txsim::{greedy_workload, run_tx, run_tx_instrumented, run_tx_profiled, TxConfig};
use hni_sonet::LineRate;
use hni_telemetry::{CycleProfiler, Profile, TraceEvent, VecTracer};

/// Packet sizes swept (octets).
pub const SIZES: [usize; 7] = [64, 256, 1024, 4096, 9180, 32768, 65000];

/// One measured/predicted point.
pub struct Point {
    /// Line rate.
    pub rate: LineRate,
    /// Partition name.
    pub partition: &'static str,
    /// Packet size.
    pub len: usize,
    /// Simulated goodput.
    pub sim_bps: f64,
    /// Analytic goodput (plain resource bounds).
    pub analytic_bps: f64,
    /// Analytic goodput including the per-packet pipeline bubble.
    pub bubble_bps: f64,
    /// Analytic bottleneck.
    pub bottleneck: &'static str,
}

/// Run the sweep (`packets` controls run length; 20 is plenty for the
/// report, benches use fewer). Points run in parallel under the
/// `HNI_JOBS` worker pool; the output order is the serial grid order.
pub fn sweep(packets: usize) -> Vec<Point> {
    sweep_with_jobs(packets, crate::jobs_from_env())
}

/// [`sweep`] with an explicit worker count — the perf harness times the
/// serial (`jobs = 1`) and parallel grids against each other.
pub fn sweep_with_jobs(packets: usize, jobs: usize) -> Vec<Point> {
    let mut grid = Vec::new();
    for rate in [LineRate::Oc3, LineRate::Oc12] {
        for partition in [
            HwPartition::all_software(),
            HwPartition::paper_split(),
            HwPartition::full_hardware(),
        ] {
            for &len in &SIZES {
                grid.push((rate, partition, len));
            }
        }
    }
    crate::par_sweep_with_jobs(jobs, &grid, |&(rate, partition, len)| {
        let mut cfg = TxConfig::paper(rate);
        cfg.partition = partition;
        let r = run_tx(&cfg, &greedy_workload(packets, len, VcId::new(0, 32)));
        let p = predict_tx(len, &partition, cfg.mips, &cfg.bus, rate, cfg.aal);
        let bubble = predict_tx_with_bubble(len, &partition, cfg.mips, &cfg.bus, rate, cfg.aal);
        Point {
            rate,
            partition: partition.name,
            len,
            sim_bps: r.goodput_bps,
            analytic_bps: p.achievable_bps,
            bubble_bps: bubble,
            bottleneck: p.bottleneck,
        }
    })
}

/// The canonical steady-state run itself (paper split, OC-12, 20 ×
/// 9180-octet packets) — the always-on telemetry (latency histogram,
/// per-VC top-K) rides along in the report.
pub fn canonical_run() -> hni_core::txsim::TxReport {
    let cfg = TxConfig::paper(LineRate::Oc12);
    run_tx(&cfg, &greedy_workload(20, 9180, VcId::new(0, 32)))
}

/// Capture the transmit-pipeline event trace for the table's canonical
/// steady-state point: paper split, OC-12, 20 × 9180-octet packets.
pub fn trace_run() -> Vec<TraceEvent> {
    let mut tracer = VecTracer::new();
    let cfg = TxConfig::paper(LineRate::Oc12);
    run_tx_instrumented(
        &cfg,
        &greedy_workload(20, 9180, VcId::new(0, 32)),
        &mut tracer,
    );
    tracer.into_events()
}

/// Cycle-profile the same canonical steady-state point the trace
/// capture uses. Returns the profile and the run's goodput (the
/// attribution engine's ceiling denominator).
pub fn profile_run() -> (Profile, f64) {
    let cfg = TxConfig::paper(LineRate::Oc12);
    let mut prof = CycleProfiler::new();
    let (r, _) = run_tx_profiled(
        &cfg,
        &greedy_workload(20, 9180, VcId::new(0, 32)),
        &mut prof,
    );
    (prof.snapshot(r.finished_at), r.goodput_bps)
}

/// Render the figure as a table.
pub fn run() -> String {
    let mut t = Table::new([
        "rate",
        "partition",
        "pkt octets",
        "sim goodput",
        "plain bound",
        "bubble model",
        "bottleneck",
    ]);
    for p in sweep(20) {
        t.row([
            format!("{:?}", p.rate),
            p.partition.to_string(),
            p.len.to_string(),
            fmt_bps(p.sim_bps),
            fmt_bps(p.analytic_bps),
            fmt_bps(p.bubble_bps),
            p.bottleneck.to_string(),
        ]);
    }
    format!(
        "R-F1 — Transmit goodput vs packet size (simulation vs analysis)\n\
         ('plain bound' = perfect pipelining; 'bubble model' adds the\n\
          per-packet engine cycle — it tracks the simulation within ~12%)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubble_model_tracks_sim_everywhere() {
        for p in sweep(12) {
            let ratio = p.sim_bps / p.bubble_bps;
            assert!(
                (0.85..=1.15).contains(&ratio),
                "{:?}/{}/{}: sim {} vs bubble {}",
                p.rate,
                p.partition,
                p.len,
                p.sim_bps,
                p.bubble_bps
            );
        }
    }

    #[test]
    fn sim_and_analysis_agree_within_queueing_slack() {
        for p in sweep(12) {
            if p.analytic_bps > 0.0 && p.sim_bps > 0.0 {
                let ratio = p.sim_bps / p.analytic_bps;
                // The DES is below the closed form for mid-size packets:
                // the per-packet state machine cannot overlap packet N+1's
                // setup with packet N's tail (a real pipeline bubble the
                // analytic steady-state bound ignores — see
                // EXPERIMENTS.md R-F1). Never above by more than rounding.
                assert!(
                    (0.50..=1.05).contains(&ratio),
                    "{:?}/{}/{}: sim {} vs analytic {}",
                    p.rate,
                    p.partition,
                    p.len,
                    p.sim_bps,
                    p.analytic_bps
                );
            }
        }
    }

    #[test]
    fn large_packets_agree_tightly_with_analysis() {
        // Per-packet bubbles amortize away for large packets: within 10%.
        for p in sweep(12) {
            if p.len >= 32768 {
                let ratio = p.sim_bps / p.analytic_bps;
                assert!(
                    (0.90..=1.05).contains(&ratio),
                    "{:?}/{}/{}: ratio {ratio}",
                    p.rate,
                    p.partition,
                    p.len
                );
            }
        }
    }

    #[test]
    fn paper_split_saturates_oc12_for_large_packets() {
        let pts = sweep(12);
        let big = pts
            .iter()
            .find(|p| p.rate == LineRate::Oc12 && p.partition == "paper-split" && p.len == 65000)
            .unwrap();
        assert_eq!(big.bottleneck, "link");
        assert!(big.sim_bps > 0.85 * LineRate::Oc12.payload_bps());
    }
}
