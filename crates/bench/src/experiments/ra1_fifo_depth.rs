//! R-A1 (ablation): how deep must the receive input FIFO be?
//!
//! With the paper partition the engine's *per-cell* work fits a cell
//! slot — but per-*packet* work (validate, complete) steals the engine
//! for multiple slots at frame boundaries, during which arriving cells
//! must wait in the input FIFO. The smaller the packets, the more
//! boundaries per second, the deeper the transient queue. This ablation
//! sweeps the FIFO depth and packet size at full line load and reports
//! loss: the designed depth (16) is shown to carry margin, and depth 1–2
//! to be insufficient for small packets.

use crate::table::{fmt_pct, Table};
use hni_aal::AalType;
use hni_core::rxsim::{run_rx, RxConfig, RxWorkload};
use hni_sonet::LineRate;

/// One ablation point.
pub struct Point {
    /// FIFO depth in cells.
    pub fifo_cells: usize,
    /// Packet size, octets.
    pub len: usize,
    /// Cells dropped at the FIFO / offered.
    pub fifo_loss: f64,
    /// Peak FIFO occupancy observed.
    pub fifo_peak: u64,
    /// Packets delivered / offered.
    pub delivery: f64,
}

/// Sweep FIFO depth × packet size at OC-12 line load, paper partition.
pub fn sweep() -> Vec<Point> {
    let mut out = Vec::new();
    for &fifo in &[1usize, 2, 4, 8, 16] {
        for &len in &[64usize, 512, 9180] {
            let mut cfg = RxConfig::paper(LineRate::Oc12);
            cfg.fifo_cells = fifo;
            let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 60, len, 1.0);
            let r = run_rx(&cfg, &wl);
            out.push(Point {
                fifo_cells: fifo,
                len,
                fifo_loss: r.dropped_fifo as f64 / r.cells_offered.max(1) as f64,
                fifo_peak: r.fifo_peak,
                delivery: r.delivered_packets as f64 / wl.pkts.len() as f64,
            });
        }
    }
    out
}

/// Render the table.
pub fn run() -> String {
    let mut t = Table::new([
        "fifo cells",
        "pkt octets",
        "fifo loss",
        "fifo peak",
        "pkts delivered",
    ]);
    for p in sweep() {
        t.row([
            p.fifo_cells.to_string(),
            p.len.to_string(),
            fmt_pct(p.fifo_loss),
            p.fifo_peak.to_string(),
            fmt_pct(p.delivery),
        ]);
    }
    format!(
        "R-A1 — Ablation: receive input FIFO depth (OC-12 line load, paper split)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designed_depth_is_lossless_for_datagrams() {
        let pts = sweep();
        let p = pts
            .iter()
            .find(|p| p.fifo_cells == 16 && p.len == 9180)
            .unwrap();
        assert_eq!(p.fifo_loss, 0.0);
        assert_eq!(p.delivery, 1.0);
    }

    #[test]
    fn depth_one_loses_cells() {
        let pts = sweep();
        // With a 1-cell FIFO, any 2-slot engine occupancy drops a cell;
        // some size must show loss.
        assert!(
            pts.iter().any(|p| p.fifo_cells == 1 && p.fifo_loss > 0.0),
            "depth 1 should lose cells somewhere"
        );
    }

    #[test]
    fn loss_never_increases_with_depth() {
        let pts = sweep();
        for &len in &[64usize, 512, 9180] {
            let series: Vec<&Point> = pts.iter().filter(|p| p.len == len).collect();
            for w in series.windows(2) {
                assert!(
                    w[1].fifo_loss <= w[0].fifo_loss + 1e-12,
                    "len {len}: loss must be monotone non-increasing in depth"
                );
            }
        }
    }
}
