//! R-F5: goodput under cell loss — analytic curves validated by the
//! byte-exact functional path through a lossy link.

use crate::table::{fmt_bps, Table};
use hni_aal::AalType;
use hni_analysis::loss::{default_loss_grid, goodput_under_loss};
use hni_atm::VcId;
use hni_core::{Nic, NicConfig, NicEvent};
use hni_sim::{FaultPlan, Link, LinkDelivery, Rng, Time};
use hni_sonet::LineRate;

/// Functional validation of the analytic survival curve: `n_frames`
/// frames of `len` octets are segmented to real cells, each cell is
/// offered to a per-cell lossy [`Link`] (the loss process the analytic
/// model assumes — switch-buffer discard, not line damage), and the
/// survivors travel NIC A → SONET frames → NIC B through the byte-exact
/// TC/reassembly path.
///
/// Returns the fraction of frames delivered intact.
pub fn functional_survival(aal: AalType, len: usize, loss: f64, n_frames: usize, seed: u64) -> f64 {
    let mut cfg = NicConfig::paper(LineRate::Oc3);
    cfg.aal = aal;
    let mut a = Nic::new(cfg.clone());
    let mut b = Nic::new(cfg);
    let vc = VcId::new(0, 99);
    a.open_vc(vc).unwrap();
    b.open_vc(vc).unwrap();

    // Cell-level lossy link (rate irrelevant to survival). The loss
    // process is the degenerate one-state fault plan — i.i.d. loss and
    // nothing else — which is exactly what the analytic survival model
    // assumes; the full Gilbert–Elliott machinery sits idle here.
    let mut link = Link::new(
        1e9,
        hni_sim::Duration::ZERO,
        FaultPlan::loss(loss),
        Rng::new(seed),
    );
    let mut seg34 = hni_aal::aal34::Aal34Segmenter::new();

    // Warm both TC paths up via direct frames.
    for _ in 0..12 {
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
    }

    let mut delivered = 0usize;
    for i in 0..n_frames {
        let payload: Vec<u8> = (0..len).map(|j| ((i * 31 + j) % 256) as u8).collect();
        // Segment on a scratch NIC path: reuse `a`, but intercept at the
        // cell level by segmenting directly.
        let cells = match aal {
            AalType::Aal5 => hni_aal::aal5::segment(vc, &payload, 0),
            // One segmenter across the run keeps SN streams continuous,
            // as on a real VC.
            AalType::Aal34 => seg34.segment(vc, 0, &payload),
        };
        // Carry each cell across the lossy link; survivors go through
        // b's TC/reassembly via a private framing hop on `a`.
        let mut t = Time::ZERO;
        for cell in &cells {
            match link.send(t, 424) {
                LinkDelivery::Delivered { .. } => {
                    a.inject_cell(cell);
                }
                LinkDelivery::Lost => {}
            }
            t = link.next_free();
        }
        // Flush enough frames to move the surviving cells.
        let frames_needed = (cells.len() * 53) / LineRate::Oc3.payload_octets_per_frame() + 2;
        for _ in 0..frames_needed {
            let f = a.frame_tick();
            b.receive_line_octets(&f, Time::ZERO);
        }
        while let Some(ev) = b.poll() {
            if let NicEvent::PacketReceived { data, .. } = ev {
                if data == payload {
                    delivered += 1;
                }
            }
        }
    }
    delivered as f64 / n_frames as f64
}

/// Render the figure.
pub fn run() -> String {
    let mut t = Table::new([
        "cell loss p",
        "frame octets",
        "AAL",
        "survival (analytic)",
        "goodput (analytic)",
    ]);
    let mut grid = Vec::new();
    for &loss in &default_loss_grid() {
        for &len in &[256usize, 9180, 65000] {
            for aal in [AalType::Aal5, AalType::Aal34] {
                grid.push((loss, len, aal));
            }
        }
    }
    // Analytic points are pure functions of their coordinates — sweep
    // them in parallel.
    let points = crate::par_sweep(&grid, |&(loss, len, aal)| {
        goodput_under_loss(LineRate::Oc12, aal, len, loss)
    });
    for (&(loss, len, aal), p) in grid.iter().zip(points) {
        t.row([
            format!("{loss:.0e}"),
            len.to_string(),
            aal.to_string(),
            format!("{:.4}", p.frame_survival),
            fmt_bps(p.goodput_bps),
        ]);
    }
    // Functional spot-check at a heavy loss rate (kept small for speed).
    let p_model = goodput_under_loss(LineRate::Oc12, AalType::Aal5, 9180, 2e-3).frame_survival;
    let p_meas = functional_survival(AalType::Aal5, 9180, 2e-3, 60, 42);
    format!(
        "R-F5 — Goodput under random cell loss (no retransmission)\n\n{}\n\
         Functional spot-check (AAL5, 9180 octets, p=2e-3): analytic \
         survival {:.3}, measured through the byte-exact path {:.3}\n",
        t.render(),
        p_model,
        p_meas
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_survival_matches_model_aal5() {
        let loss = 5e-3;
        let len = 4096;
        let model = goodput_under_loss(LineRate::Oc12, AalType::Aal5, len, loss).frame_survival;
        let measured = functional_survival(AalType::Aal5, len, loss, 150, 7);
        assert!(
            (measured - model).abs() < 0.12,
            "measured {measured} vs model {model}"
        );
    }

    #[test]
    fn zero_loss_delivers_everything() {
        let measured = functional_survival(AalType::Aal5, 2048, 0.0, 20, 1);
        assert_eq!(measured, 1.0);
    }

    #[test]
    fn aal34_survives_like_model_under_loss() {
        let loss = 5e-3;
        let len = 4096;
        let model = goodput_under_loss(LineRate::Oc12, AalType::Aal34, len, loss).frame_survival;
        let measured = functional_survival(AalType::Aal34, len, loss, 150, 11);
        assert!(
            (measured - model).abs() < 0.12,
            "measured {measured} vs model {model}"
        );
    }
}
