//! R-F3: unloaded end-to-end latency breakdown versus packet size,
//! analytic decomposition cross-checked against the transmit DES.

use crate::table::Table;
use hni_aal::AalType;
use hni_analysis::latency::unloaded_latency;
use hni_atm::VcId;
use hni_core::bus::BusConfig;
use hni_core::e2esim::{run_e2e, run_e2e_instrumented, run_e2e_profiled};
use hni_core::engine::HwPartition;
use hni_core::rxsim::RxConfig;
use hni_core::txsim::{greedy_workload, run_tx, TxConfig};
use hni_sim::Duration;
use hni_sonet::LineRate;
use hni_telemetry::{CycleProfiler, Profile, TraceEvent, VecTracer};

/// Packet sizes swept.
pub const SIZES: [usize; 5] = [64, 1024, 9180, 32768, 65000];
/// Propagation delay assumed (≈ 1 km of fibre).
pub const PROPAGATION: Duration = Duration::from_us(5);
/// Canonical traced packet size (the IP-over-ATM default MTU row).
pub const TRACE_LEN: usize = 9180;

/// Capture the full event trace of one unloaded end-to-end run — the
/// raw material the waterfall reducer turns back into this experiment's
/// per-stage breakdown.
pub fn trace_run(len: usize) -> Vec<TraceEvent> {
    let mut tracer = VecTracer::new();
    run_e2e_instrumented(
        &TxConfig::paper(LineRate::Oc12),
        &RxConfig::paper(LineRate::Oc12),
        &greedy_workload(1, len, VcId::new(0, 32)),
        PROPAGATION,
        &mut tracer,
    );
    tracer.into_events()
}

/// The canonical loaded end-to-end run (20 × 9180-octet packets, the
/// same point `profile_run` uses) — the always-on telemetry (tx/rx/e2e
/// latency histograms, per-VC top-K) rides along in the report.
pub fn canonical_run() -> hni_core::e2esim::E2eReport {
    run_e2e(
        &TxConfig::paper(LineRate::Oc12),
        &RxConfig::paper(LineRate::Oc12),
        &greedy_workload(20, TRACE_LEN, VcId::new(0, 32)),
        PROPAGATION,
    )
}

/// The canonical loaded run with its full event trace captured: the
/// tail attribution joins the report's exemplar reservoir against the
/// span index of the *same* run, so it needs both. Tracing does not
/// perturb the simulation — the report equals [`canonical_run`]'s.
pub fn canonical_trace() -> (hni_core::e2esim::E2eReport, Vec<TraceEvent>) {
    let mut tracer = VecTracer::new();
    let r = run_e2e_instrumented(
        &TxConfig::paper(LineRate::Oc12),
        &RxConfig::paper(LineRate::Oc12),
        &greedy_workload(20, TRACE_LEN, VcId::new(0, 32)),
        PROPAGATION,
        &mut tracer,
    );
    (r, tracer.into_events())
}

/// Cycle-profile a loaded end-to-end run (20 × 9180-octet packets):
/// unlike the single-packet trace, a steady-state backlog gives every
/// path resource a meaningful utilization to rank. Returns the profile
/// and the run's goodput.
pub fn profile_run() -> (Profile, f64) {
    let mut prof = CycleProfiler::new();
    let r = run_e2e_profiled(
        &TxConfig::paper(LineRate::Oc12),
        &RxConfig::paper(LineRate::Oc12),
        &greedy_workload(20, TRACE_LEN, VcId::new(0, 32)),
        PROPAGATION,
        &mut prof,
    );
    (prof.snapshot(r.rx.run_end), r.goodput_bps)
}

/// Render the breakdown table.
pub fn run() -> String {
    let mut t = Table::new([
        "pkt octets",
        "tx setup",
        "tx 1st burst",
        "tx 1st cell",
        "serialize",
        "propagate",
        "rx cell",
        "validate",
        "deliver dma",
        "complete",
        "TOTAL",
        "tx sim (meas)",
        "e2e sim (meas)",
    ]);
    for &len in &SIZES {
        let b = unloaded_latency(
            len,
            &HwPartition::paper_split(),
            25.0,
            &BusConfig::default(),
            LineRate::Oc12,
            AalType::Aal5,
            PROPAGATION,
        );
        // Measured transmit-side latency of a single unloaded packet:
        // descriptor arrival → last cell on the line. Comparable to the
        // tx-side analytic terms (setup + first burst + first cell +
        // serialization).
        let cfg = TxConfig::paper(LineRate::Oc12);
        let sim = run_tx(&cfg, &greedy_workload(1, len, VcId::new(0, 32)));
        // And the full-path measurement: tx DES departures fed through
        // propagation into the rx DES (includes receive-side queueing the
        // analytic breakdown approximates term by term).
        let e2e = run_e2e(
            &cfg,
            &RxConfig::paper(LineRate::Oc12),
            &greedy_workload(1, len, VcId::new(0, 32)),
            PROPAGATION,
        );
        let us = |d: Duration| format!("{:.2}", d.as_us_f64());
        t.row([
            len.to_string(),
            us(b.tx_setup),
            us(b.tx_first_burst),
            us(b.tx_first_cell),
            us(b.serialization),
            us(b.propagation),
            us(b.rx_last_cell),
            us(b.rx_validate),
            us(b.rx_delivery_dma),
            us(b.rx_complete),
            us(b.total),
            format!("{:.2}", sim.packet_latency_us.mean()),
            format!("{:.2}", e2e.latency_us.mean()),
        ]);
    }
    // Percentile waterfall of the loaded canonical run: the unloaded
    // table above shows means; under a 20-packet backlog the tail is
    // the story, and the always-on histograms have it for free.
    let loaded = canonical_run();
    let mut w = Table::new([
        "loaded latency",
        "n",
        "mean us",
        "p50<=",
        "p90<=",
        "p99<=",
        "p999<=",
        "max us",
    ]);
    for (stage, h) in [
        ("tx", &loaded.tx.latency_hist),
        ("rx", &loaded.rx.latency_hist),
        ("e2e", &loaded.latency_hist),
    ] {
        let p = h.pcts();
        let us = |ps: u64| format!("{:.2}", ps as f64 / 1e6);
        w.row([
            stage.to_string(),
            p.count.to_string(),
            format!("{:.2}", p.mean / 1e6),
            us(p.p50),
            us(p.p90),
            us(p.p99),
            us(p.p999),
            us(p.max),
        ]);
    }
    format!(
        "R-F3 — Unloaded end-to-end latency breakdown (µs), OC-12, paper split\n\
         ('tx sim' = measured descriptor→line latency from the transmit DES;\n\
          'e2e sim' = full-path DES composition — compare against TOTAL)\n\n{}\n\
         Loaded percentile waterfall (20 × 9180-octet greedy burst, same path;\n\
          always-on histograms — p50/p99 bands are log2-bucket upper bounds,\n\
          max is exact; see EXPERIMENTS.md \"Percentile methodology\"):\n{}",
        t.render(),
        w.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2e_sim_close_to_analytic_total() {
        for &len in &SIZES {
            let b = unloaded_latency(
                len,
                &HwPartition::paper_split(),
                25.0,
                &BusConfig::default(),
                LineRate::Oc12,
                AalType::Aal5,
                PROPAGATION,
            );
            let e2e = run_e2e(
                &TxConfig::paper(LineRate::Oc12),
                &RxConfig::paper(LineRate::Oc12),
                &greedy_workload(1, len, VcId::new(0, 32)),
                PROPAGATION,
            );
            let measured = e2e.latency_us.mean();
            let analytic = b.total.as_us_f64();
            let rel = (measured - analytic).abs() / analytic;
            assert!(
                rel < 0.20,
                "len {len}: e2e sim {measured} vs analytic total {analytic}"
            );
        }
    }

    #[test]
    fn waterfall_reproduces_breakdown_within_tolerance() {
        use hni_telemetry::Waterfall;
        let events = trace_run(TRACE_LEN);
        let w = Waterfall::from_events(&events, 0).expect("packet 0 fully traced");
        let b = unloaded_latency(
            TRACE_LEN,
            &HwPartition::paper_split(),
            25.0,
            &BusConfig::default(),
            LineRate::Oc12,
            AalType::Aal5,
            PROPAGATION,
        );
        // The trace-derived total must sit within the same tolerance the
        // e2e simulation itself is held to against the analytic total.
        let measured = w.total.as_us_f64();
        let analytic = b.total.as_us_f64();
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.20,
            "waterfall total {measured} vs analytic {analytic}"
        );
        // Stage-level spot checks: propagation is exact by construction,
        // serialization is the dominant term and must match closely.
        let stage_us = |label: &str| w.stage(label).expect(label).as_us_f64();
        assert!((stage_us("propagate") - b.propagation.as_us_f64()).abs() < 1e-9);
        let ser = stage_us("serialize");
        let ser_analytic = b.serialization.as_us_f64();
        assert!(
            (ser - ser_analytic).abs() / ser_analytic < 0.20,
            "serialize {ser} vs analytic {ser_analytic}"
        );
        // And the telescoping invariant: the stages sum to the total.
        assert_eq!(w.stage_sum(), w.total);
    }

    #[test]
    fn sim_tx_latency_close_to_analytic_tx_terms() {
        for &len in &SIZES {
            let b = unloaded_latency(
                len,
                &HwPartition::paper_split(),
                25.0,
                &BusConfig::default(),
                LineRate::Oc12,
                AalType::Aal5,
                PROPAGATION,
            );
            let analytic_tx =
                (b.tx_setup + b.tx_first_burst + b.tx_first_cell + b.serialization).as_us_f64();
            let cfg = TxConfig::paper(LineRate::Oc12);
            let sim = run_tx(&cfg, &greedy_workload(1, len, VcId::new(0, 32)));
            let measured = sim.packet_latency_us.mean();
            let rel = (measured - analytic_tx).abs() / analytic_tx;
            assert!(
                rel < 0.30,
                "len {len}: sim {measured} vs analytic {analytic_tx}"
            );
        }
    }
}
