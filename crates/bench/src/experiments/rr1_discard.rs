//! R-R1: goodput under reassembly-pool overload and cell loss for the
//! three degradation policies — drop-tail, EPD, PPD.
//!
//! The adaptor's reassembly memory is the scarce resource the paper's
//! receive architecture is built around. When more VCs interleave
//! frames than the pool can hold, drop-tail sheds *cells* from frames
//! that have already consumed buffers — every such frame dies on the
//! AAL5 CRC anyway, so the buffers it held and the cells it keeps
//! accepting are pure waste (the classic goodput collapse). Early
//! Packet Discard refuses whole frames at the first cell while the pool
//! is tight; Partial Packet Discard cuts a frame loose the moment a
//! cell cannot be buffered and reclaims its chain immediately. Both
//! turn wasted buffer-hold time into delivered frames.
//!
//! The grid crosses link cell-loss rate with pool overcommit (frames
//! in flight × buffers per frame ÷ pool buffers). The same seeded
//! workload and fault plan drive all three policies at each point, so
//! every comparison is paired.

use crate::table::{fmt_bps, Table};
use hni_aal::AalType;
use hni_core::rxsim::{run_rx_faulted, CellArrival, RxConfig, RxPktMeta, RxWorkload};
use hni_core::DiscardPolicy;
use hni_sim::{Duration, FaultPlan, Time};
use hni_sonet::LineRate;

/// Link cell-loss rates swept. 0.2% already dooms ~32% of 192-cell
/// frames on survival alone — past that every policy starves.
pub const LOSSES: [f64; 3] = [0.0, 0.001, 0.002];

/// Concurrent-VC counts swept — one frame in flight per VC, so this is
/// the number of frames competing for the pool. Two VCs fit comfortably
/// (0.4× demand, the control row); the rest overcommit the pool.
pub const VCS: [usize; 4] = [2, 4, 8, 16];

/// Frame size (octets) — 6 pool buffers per frame at 32 cells/buffer.
pub const FRAME_LEN: usize = 9180;

/// Fault-plan seed: one seed, every policy, every point — paired runs.
pub const SEED: u64 = 11;

/// Pool size (buffers). 32 × 32-cell buffers holds ~5.3 frames, so the
/// 8- and 16-VC rows overcommit the pool 1.5× and 3×.
const POOL_BUFFERS: usize = 32;

/// One grid point: goodput under each policy.
pub struct Point {
    /// Link cell-loss probability.
    pub loss: f64,
    /// Concurrent VCs (interleaved frames).
    pub n_vcs: usize,
    /// Demand on the pool: frames in flight × buffers/frame ÷ buffers.
    pub overcommit: f64,
    /// Drop-tail goodput, bits/s.
    pub drop_tail_bps: f64,
    /// EPD goodput, bits/s.
    pub epd_bps: f64,
    /// PPD goodput, bits/s.
    pub ppd_bps: f64,
}

impl Point {
    /// Whether this point overcommits the reassembly pool.
    pub fn overloaded(&self) -> bool {
        self.overcommit > 1.0
    }
}

fn cfg_with(policy: DiscardPolicy) -> RxConfig {
    let mut cfg = RxConfig::paper(LineRate::Oc12);
    cfg.pool.total_buffers = POOL_BUFFERS;
    cfg.pool.cells_per_buffer = 32;
    cfg.policy = policy;
    cfg
}

/// A staggered workload: each VC carries `1/n_vcs` of the aggregate
/// cell rate and is phase-shifted by a fraction of a frame, so frame
/// boundaries spread uniformly in time instead of the lockstep
/// round-robin of [`RxWorkload::uniform`] (where every frame starts and
/// ends in the same burst — a pattern no admission policy can regulate,
/// because occupancy at every admission instant is unrepresentative).
fn staggered(n_vcs: usize, pkts_per_vc: usize, len: usize, load: f64) -> RxWorkload {
    let cells_per_pkt = AalType::Aal5.cells_for_sdu(len).max(1);
    let slot = LineRate::Oc12.cell_slot_time().as_s_f64();
    let per_vc = Duration::from_s_f64(slot * n_vcs as f64 / load);
    let frame_span = slot * cells_per_pkt as f64 / load;
    let mut pkts = Vec::with_capacity(n_vcs * pkts_per_vc);
    let mut arrivals = Vec::with_capacity(n_vcs * pkts_per_vc * cells_per_pkt);
    for v in 0..n_vcs {
        let phase = Duration::from_s_f64(frame_span * v as f64 / n_vcs as f64);
        for p in 0..pkts_per_vc {
            let pkt = pkts.len();
            pkts.push(RxPktMeta {
                conn: v as u16,
                len,
                cells: cells_per_pkt,
            });
            for c in 0..cells_per_pkt {
                arrivals.push(CellArrival {
                    at: Time::ZERO + phase + per_vc * (p * cells_per_pkt + c) as u64,
                    pkt,
                    is_last: c + 1 == cells_per_pkt,
                    corrupted: false,
                });
            }
        }
    }
    arrivals.sort_by_key(|a| a.at);
    RxWorkload { arrivals, pkts }
}

/// Measure one grid point. `pkts_per_vc` scales inversely with the VC
/// count so every point offers the same total work.
pub fn measure(loss: f64, n_vcs: usize, pkts_per_vc: usize) -> Point {
    let wl = staggered(n_vcs, pkts_per_vc, FRAME_LEN, 1.0);
    let plan = if loss > 0.0 {
        FaultPlan::loss(loss)
    } else {
        FaultPlan::NONE
    };
    let run = |policy: DiscardPolicy| {
        let (r, _) = run_rx_faulted(&cfg_with(policy), &wl, &plan, SEED);
        debug_assert!(r.ledger.reconciles(), "{:?}", r.ledger);
        r.goodput_bps
    };
    let buffers_per_frame = FRAME_LEN.div_ceil(48 * 32);
    // Classic EPD setting: refuse new frames once occupancy eats into
    // the headroom one full frame needs to finish, so admission is a
    // promise the pool can keep.
    let threshold = POOL_BUFFERS - buffers_per_frame;
    Point {
        loss,
        n_vcs,
        overcommit: (n_vcs * buffers_per_frame) as f64 / POOL_BUFFERS as f64,
        drop_tail_bps: run(DiscardPolicy::DropTail),
        epd_bps: run(DiscardPolicy::Epd { threshold }),
        ppd_bps: run(DiscardPolicy::Ppd),
    }
}

/// The full grid: 256 frames of offered work per point, but never fewer
/// than 12 frames per VC — occupancy-threshold admission needs a few
/// frame lifetimes to regulate after the cold-start cohort, and a run
/// that ends inside that transient measures the transient, not the
/// policy. Points run in parallel under the `HNI_JOBS` worker pool
/// (each point rebuilds its workload and fault RNG from the grid
/// coordinates and [`SEED`], so parallel order cannot leak in); the
/// output order is the serial grid order.
pub fn sweep() -> Vec<Point> {
    let mut grid = Vec::new();
    for &loss in &LOSSES {
        for &n_vcs in &VCS {
            grid.push((loss, n_vcs));
        }
    }
    crate::par_sweep(&grid, |&(loss, n_vcs)| {
        measure(loss, n_vcs, (256 / n_vcs).max(12))
    })
}

/// Render the R-R1 report.
pub fn run() -> String {
    let mut t = Table::new(["cell loss", "VCs", "pool demand", "drop-tail", "EPD", "PPD"]);
    for p in sweep() {
        t.row([
            format!("{:.1}%", p.loss * 100.0),
            p.n_vcs.to_string(),
            format!("{:.1}x", p.overcommit),
            fmt_bps(p.drop_tail_bps),
            fmt_bps(p.epd_bps),
            fmt_bps(p.ppd_bps),
        ]);
    }
    format!(
        "R-R1 — goodput under pool overload and cell loss, by discard policy\n\
         OC-12, {FRAME_LEN}-octet AAL5 frames, {POOL_BUFFERS}-buffer reassembly pool,\n\
         256 frames offered per point, fault seed {SEED}.\n\n{}\n\
         Reading: once concurrent frames overcommit the pool (demand > 1x),\n\
         drop-tail goodput collapses — buffers sit pinned under frames already\n\
         doomed by a mid-frame cell drop. EPD refuses new frames while the pool\n\
         is tight and PPD reclaims a frame's chain at the first lost cell, so\n\
         both hold goodput through overload and recover it under cell loss;\n\
         with a roomy pool all three policies measure identically.",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiment's headline claim, pinned as a golden invariant:
    /// graceful degradation never loses to drop-tail anywhere on the
    /// grid, and strictly beats it wherever the pool is overcommitted.
    #[test]
    fn epd_and_ppd_dominate_drop_tail() {
        for p in sweep() {
            assert!(
                p.epd_bps >= p.drop_tail_bps,
                "EPD below drop-tail at loss={} vcs={}: {} vs {}",
                p.loss,
                p.n_vcs,
                p.epd_bps,
                p.drop_tail_bps
            );
            assert!(
                p.ppd_bps >= p.drop_tail_bps,
                "PPD below drop-tail at loss={} vcs={}: {} vs {}",
                p.loss,
                p.n_vcs,
                p.ppd_bps,
                p.drop_tail_bps
            );
            if p.overloaded() {
                assert!(
                    p.epd_bps > p.drop_tail_bps,
                    "EPD not strictly better in overload at loss={} vcs={}",
                    p.loss,
                    p.n_vcs
                );
                assert!(
                    p.ppd_bps > p.drop_tail_bps,
                    "PPD not strictly better in overload at loss={} vcs={}",
                    p.loss,
                    p.n_vcs
                );
            }
        }
    }

    #[test]
    fn rendered_report_is_deterministic() {
        assert_eq!(run(), run());
    }
}
