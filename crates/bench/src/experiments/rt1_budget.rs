//! R-T1: per-cell instruction budgets — cell clocks at OC-3/OC-12
//! against engine speeds.

use crate::table::Table;
use hni_analysis::budget::{budget_rows, default_mips_grid};

/// Render the budget table.
pub fn run() -> String {
    let mut t = Table::new([
        "rate",
        "cell time (line)",
        "cell slot (payload)",
        "engine MIPS",
        "instr / slot",
    ]);
    for r in budget_rows(&default_mips_grid()) {
        t.row([
            format!("{:?}", r.rate),
            format!("{:.1} ns", r.cell_line_ns),
            format!("{:.1} ns", r.cell_slot_ns),
            format!("{:.1}", r.mips),
            format!("{:.1}", r.instructions_per_slot),
        ]);
    }
    format!(
        "R-T1 — Per-cell instruction budget\n\
         (engine instructions available in one payload cell slot)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_all_rows() {
        let out = super::run();
        assert!(out.contains("Oc3") && out.contains("Oc12"));
        assert!(out.lines().count() >= 12);
    }
}
