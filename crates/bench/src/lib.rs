//! # hni-bench — the evaluation harness
//!
//! One module per reconstructed experiment (see DESIGN.md §4 for the
//! index). Each `run()` returns a rendered text table/figure **and** the
//! underlying numbers, so the `report` binary prints them and the
//! Criterion benches time reduced versions of the same code paths.
//!
//! ```text
//! cargo run -p hni-bench --bin report --release            # all experiments
//! cargo run -p hni-bench --bin report --release -- r-f1    # one experiment
//! ```

pub mod experiments;
pub mod par_sweep;
pub mod perf;
pub mod table;

pub use par_sweep::{jobs_from_env, par_sweep, par_sweep_with_jobs};
pub use table::Table;

/// All experiment ids, in report order.
pub const EXPERIMENT_IDS: [&str; 17] = [
    "r-t1", "r-t2", "r-t3", "r-t4", "r-t5", "r-f1", "r-f2", "r-f3", "r-f4", "r-f5", "r-f6", "r-f7",
    "r-f8", "r-a1", "r-a2", "r-o1", "r-r1",
];

/// Experiment ids whose underlying runs can be captured as a trace
/// (`report --trace <id>` / `report metrics <id>`).
pub const TRACEABLE_IDS: [&str; 3] = ["r-f1", "r-f2", "r-f3"];

/// Experiment ids whose canonical runs can be cycle-profiled
/// (`report profile <id>` / `report bottleneck <id>` / `report prom <id>`).
pub const PROFILE_IDS: [&str; 3] = ["r-f1", "r-f2", "r-f3"];

/// Canonicalise a user-typed experiment id: lowercase, and accept the
/// hyphenless shorthand ("RF1", "ro1") for the `r-xN` family.
pub fn normalize_id(id: &str) -> String {
    let id = id.to_lowercase();
    if !id.contains('-') {
        if let Some(rest) = id.strip_prefix('r') {
            if !rest.is_empty() {
                return format!("r-{rest}");
            }
        }
    }
    id
}

/// Cycle-profile one experiment's canonical run. Returns the profile
/// and the run's goodput (bits/s), or `None` for unsupported ids.
pub fn profile_experiment(id: &str) -> Option<(hni_telemetry::Profile, f64)> {
    match id {
        "r-f1" => Some(experiments::rf1_tx_throughput::profile_run()),
        "r-f2" => Some(experiments::rf2_rx_throughput::profile_run()),
        "r-f3" => Some(experiments::rf3_latency::profile_run()),
        _ => None,
    }
}

/// Folded-stack rendering of an experiment's profile (one
/// `component;activity <ns>` line per charged pair — flamegraph food).
pub fn folded_report(id: &str) -> Option<String> {
    let (profile, _) = profile_experiment(id)?;
    Some(profile.folded_stacks())
}

/// Bottleneck-attribution rendering of an experiment's profile: the
/// utilization-ranked resource table plus implied throughput ceilings.
/// For R-F1 the attribution is additionally swept across every packet
/// size of the throughput figure, naming the saturating resource at
/// each point.
pub fn bottleneck_report(id: &str) -> Option<String> {
    use experiments::ro1_bottleneck;
    let (profile, goodput) = profile_experiment(id)?;
    let a = hni_telemetry::attribute(&profile, goodput);
    let mut out = a.render();
    if id == "r-f1" {
        let mut t = Table::new(["pkt octets", "bottleneck", "utilization", "implied ceiling"]);
        for p in ro1_bottleneck::sweep_tx(20) {
            t.row([
                p.len.to_string(),
                p.measured.to_string(),
                table::fmt_pct(p.utilization),
                table::fmt_bps(p.ceiling_bps),
            ]);
        }
        out = format!(
            "{out}\nSaturating resource at each swept packet size:\n{}",
            t.render()
        );
    }
    Some(out)
}

/// Prometheus text-exposition rendering of an experiment's profile.
pub fn prom_report(id: &str) -> Option<String> {
    let (profile, _) = profile_experiment(id)?;
    Some(hni_telemetry::expfmt::expose(&profile))
}

/// Capture the structured event trace of one experiment's canonical
/// run. Returns `None` for ids without trace support.
pub fn trace_experiment(id: &str) -> Option<Vec<hni_telemetry::TraceEvent>> {
    match id {
        "r-f1" => Some(experiments::rf1_tx_throughput::trace_run()),
        "r-f2" => Some(experiments::rf2_rx_throughput::trace_run()),
        "r-f3" => Some(experiments::rf3_latency::trace_run(
            experiments::rf3_latency::TRACE_LEN,
        )),
        _ => None,
    }
}

/// Derive and dump the metrics registry from an experiment's trace.
pub fn metrics_experiment(id: &str) -> Option<String> {
    let events = trace_experiment(id)?;
    let end = events
        .last()
        .map(|e| e.time)
        .unwrap_or(hni_telemetry::Time::ZERO);
    Some(hni_telemetry::MetricsRegistry::from_trace(&events, end).dump(end))
}

/// Run one experiment by id, returning its rendered report.
pub fn run_experiment(id: &str) -> Option<String> {
    match id {
        "r-t1" => Some(experiments::rt1_budget::run()),
        "r-t2" => Some(experiments::rt2_partition::run()),
        "r-t3" => Some(experiments::rt3_memory::run()),
        "r-t4" => Some(experiments::rt4_pacing::run()),
        "r-t5" => Some(experiments::rt5_overhead::run()),
        "r-f1" => Some(experiments::rf1_tx_throughput::run()),
        "r-f2" => Some(experiments::rf2_rx_throughput::run()),
        "r-f3" => Some(experiments::rf3_latency::run()),
        "r-f4" => Some(experiments::rf4_host_cpu::run()),
        "r-f5" => Some(experiments::rf5_loss::run()),
        "r-f6" => Some(experiments::rf6_bus::run()),
        "r-f7" => Some(experiments::rf7_delineation::run()),
        "r-f8" => Some(experiments::rf8_congestion::run()),
        "r-a1" => Some(experiments::ra1_fifo_depth::run()),
        "r-a2" => Some(experiments::ra2_mips::run()),
        "r-o1" => Some(experiments::ro1_bottleneck::run()),
        "r-r1" => Some(experiments::rr1_discard::run()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_runs_and_renders() {
        for id in EXPERIMENT_IDS {
            let out = run_experiment(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(out.len() > 100, "{id} output suspiciously short");
            assert!(out.contains(&id.to_uppercase()), "{id} header missing");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("r-f99").is_none());
    }

    #[test]
    fn ids_normalize_with_or_without_hyphen() {
        assert_eq!(normalize_id("r-f1"), "r-f1");
        assert_eq!(normalize_id("RF1"), "r-f1");
        assert_eq!(normalize_id("ro1"), "r-o1");
        assert_eq!(normalize_id("list"), "list"); // non-id words untouched
        assert_eq!(normalize_id("r"), "r");
    }

    #[test]
    fn profile_ids_yield_profiles_and_renderings() {
        for id in PROFILE_IDS {
            let (profile, goodput) =
                profile_experiment(id).unwrap_or_else(|| panic!("{id} unprofied"));
            assert!(profile.span() > hni_telemetry::Duration::ZERO, "{id}");
            assert!(goodput > 0.0, "{id}");
            let folded = folded_report(id).unwrap();
            assert!(
                folded.lines().count() >= 3,
                "{id} folded too thin:\n{folded}"
            );
            let bn = bottleneck_report(id).unwrap();
            assert!(bn.contains("bottleneck:"), "{id} verdict missing:\n{bn}");
            let prom = prom_report(id).unwrap();
            assert!(
                prom.contains("hni_component_utilization"),
                "{id} exposition missing family:\n{prom}"
            );
        }
        assert!(profile_experiment("r-t1").is_none());
        assert!(folded_report("nope").is_none());
        assert!(bottleneck_report("r-t1").is_none());
        assert!(prom_report("r-t1").is_none());
    }

    #[test]
    fn rf1_bottleneck_report_names_resource_at_every_size() {
        let bn = bottleneck_report("r-f1").unwrap();
        for size in experiments::rf1_tx_throughput::SIZES {
            assert!(bn.contains(&size.to_string()), "size {size} missing:\n{bn}");
        }
        assert!(bn.contains("engine") && bn.contains("link"), "{bn}");
    }

    #[test]
    fn traceable_ids_yield_events_and_metrics() {
        for id in TRACEABLE_IDS {
            let events = trace_experiment(id).unwrap_or_else(|| panic!("{id} untraceable"));
            assert!(events.len() > 50, "{id}: only {} events", events.len());
            // Times arrive in simulation order within each pipeline half.
            let dump = metrics_experiment(id).expect("metrics derivable");
            assert!(
                dump.lines().count() >= 5,
                "{id} metrics dump too thin:\n{dump}"
            );
        }
        assert!(trace_experiment("r-t1").is_none());
        assert!(metrics_experiment("nope").is_none());
    }
}
