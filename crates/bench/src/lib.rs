//! # hni-bench — the evaluation harness
//!
//! One module per reconstructed experiment (see DESIGN.md §4 for the
//! index). Each `run()` returns a rendered text table/figure **and** the
//! underlying numbers, so the `report` binary prints them and the
//! Criterion benches time reduced versions of the same code paths.
//!
//! ```text
//! cargo run -p hni-bench --bin report --release            # all experiments
//! cargo run -p hni-bench --bin report --release -- r-f1    # one experiment
//! ```

pub mod experiments;
pub mod par_sweep;
pub mod perf;
pub mod table;

pub use par_sweep::{jobs_from_env, par_sweep, par_sweep_with_jobs};
pub use table::Table;

/// All experiment ids, in report order.
pub const EXPERIMENT_IDS: [&str; 20] = [
    "r-t1", "r-t2", "r-t3", "r-t4", "r-t5", "r-f1", "r-f2", "r-f3", "r-f4", "r-f5", "r-f6", "r-f7",
    "r-f8", "r-a1", "r-a2", "r-o1", "r-o2", "r-r1", "r-w1", "r-s1",
];

/// Experiment ids whose underlying runs can be captured as a trace
/// (`report --trace <id>` / `report metrics <id>`).
pub const TRACEABLE_IDS: [&str; 3] = ["r-f1", "r-f2", "r-f3"];

/// Experiment ids whose canonical runs can be cycle-profiled
/// (`report profile <id>` / `report bottleneck <id>` / `report prom <id>`).
pub const PROFILE_IDS: [&str; 3] = ["r-f1", "r-f2", "r-f3"];

/// Experiment ids whose canonical runs report always-on latency
/// histograms (`report hist <id>`).
pub const HIST_IDS: [&str; 4] = ["r-f1", "r-f2", "r-f3", "r-w1"];

/// Experiment ids whose canonical runs report per-VC heavy hitters
/// (`report topvc <id>`).
pub const TOPVC_IDS: [&str; 3] = ["r-f1", "r-f2", "r-f3"];

/// Experiment ids supporting tail anatomy (`report tail <id>` /
/// `report exemplars <id>`). Only runs traced through *both* pipeline
/// halves qualify — the cohort attributor needs complete
/// descriptor→completion lives, which tx- or rx-only canonical runs
/// (r-f1, r-f2) cannot provide.
pub const TAIL_IDS: [&str; 1] = ["r-f3"];

/// Canonicalise a user-typed experiment id: lowercase, and accept the
/// hyphenless shorthand ("RF1", "ro1") for the `r-xN` family.
pub fn normalize_id(id: &str) -> String {
    let id = id.to_lowercase();
    if !id.contains('-') {
        if let Some(rest) = id.strip_prefix('r') {
            if !rest.is_empty() {
                return format!("r-{rest}");
            }
        }
    }
    id
}

/// Cycle-profile one experiment's canonical run. Returns the profile
/// and the run's goodput (bits/s), or `None` for unsupported ids.
pub fn profile_experiment(id: &str) -> Option<(hni_telemetry::Profile, f64)> {
    match id {
        "r-f1" => Some(experiments::rf1_tx_throughput::profile_run()),
        "r-f2" => Some(experiments::rf2_rx_throughput::profile_run()),
        "r-f3" => Some(experiments::rf3_latency::profile_run()),
        _ => None,
    }
}

/// Folded-stack rendering of an experiment's profile (one
/// `component;activity <ns>` line per charged pair — flamegraph food).
pub fn folded_report(id: &str) -> Option<String> {
    let (profile, _) = profile_experiment(id)?;
    Some(profile.folded_stacks())
}

/// Bottleneck-attribution rendering of an experiment's profile: the
/// utilization-ranked resource table plus implied throughput ceilings.
/// For R-F1 the attribution is additionally swept across every packet
/// size of the throughput figure, naming the saturating resource at
/// each point.
pub fn bottleneck_report(id: &str) -> Option<String> {
    use experiments::ro1_bottleneck;
    let (profile, goodput) = profile_experiment(id)?;
    let a = hni_telemetry::attribute(&profile, goodput);
    let mut out = a.render();
    if id == "r-f1" {
        let mut t = Table::new(["pkt octets", "bottleneck", "utilization", "implied ceiling"]);
        for p in ro1_bottleneck::sweep_tx(20) {
            t.row([
                p.len.to_string(),
                p.measured.to_string(),
                table::fmt_pct(p.utilization),
                table::fmt_bps(p.ceiling_bps),
            ]);
        }
        out = format!(
            "{out}\nSaturating resource at each swept packet size:\n{}",
            t.render()
        );
    }
    Some(out)
}

/// Prometheus text-exposition rendering of an experiment's profile.
pub fn prom_report(id: &str) -> Option<String> {
    let (profile, _) = profile_experiment(id)?;
    Some(hni_telemetry::expfmt::expose(&profile))
}

/// Render one stage's percentile band as a table row (µs).
fn pct_row(stage: &str, h: &hni_telemetry::HdrHist) -> [String; 8] {
    let p = h.pcts();
    let us = |ps: u64| format!("{:.2}", ps as f64 / 1e6);
    [
        stage.to_string(),
        p.count.to_string(),
        format!("{:.2}", p.mean / 1e6),
        us(p.p50),
        us(p.p90),
        us(p.p99),
        us(p.p999),
        us(p.max),
    ]
}

/// The always-on latency series of an experiment's canonical run:
/// a title plus `(stage label, histogram)` pairs. Shared by
/// [`hist_report`] and [`diff_report`].
fn hist_series(id: &str) -> Option<(&'static str, Vec<(&'static str, hni_telemetry::HdrHist)>)> {
    let mut series: Vec<(&'static str, hni_telemetry::HdrHist)> = Vec::new();
    let title = match id {
        "r-f1" => {
            let r = experiments::rf1_tx_throughput::canonical_run();
            series.push(("tx", r.latency_hist));
            "R-F1 canonical transmit run (descriptor -> last cell on line)"
        }
        "r-f2" => {
            let r = experiments::rf2_rx_throughput::canonical_run();
            series.push(("rx", r.latency_hist));
            "R-F2 canonical receive run (first cell -> completion)"
        }
        "r-f3" => {
            let r = experiments::rf3_latency::canonical_run();
            series.push(("tx", r.tx.latency_hist.clone()));
            series.push(("rx", r.rx.latency_hist.clone()));
            series.push(("e2e", r.latency_hist));
            "R-F3 canonical loaded end-to-end run (descriptor at A -> completion at B)"
        }
        "r-w1" => {
            let r = experiments::rw1_transport::canonical_run();
            series.push(("frame", r.frame_latency));
            "R-W1 canonical closed-loop run (satellite path, 1% loss; \
             first transmission -> unique delivery)"
        }
        _ => return None,
    };
    Some((title, series))
}

/// Always-on latency-histogram report for an experiment's canonical
/// run: percentile bands per pipeline stage (µs), plus the same data
/// as a Prometheus histogram family (picosecond `le` bounds) that the
/// `promlint` conformance validator can check.
pub fn hist_report(id: &str) -> Option<String> {
    let mut t = Table::new([
        "latency", "n", "mean us", "p50<=", "p90<=", "p99<=", "p999<=", "max us",
    ]);
    let (title, series) = hist_series(id)?;
    for (stage, h) in &series {
        t.row(pct_row(stage, h));
    }
    let mut prom = String::new();
    let label_sets: Vec<[(&str, &str); 1]> = series.iter().map(|(s, _)| [("stage", *s)]).collect();
    let fam: Vec<(&[(&str, &str)], &hni_sim::Histogram)> = series
        .iter()
        .zip(&label_sets)
        .map(|((_, h), ls)| (&ls[..], h.as_histogram()))
        .collect();
    hni_telemetry::expfmt::expose_histogram_family(
        &mut prom,
        "hni_latency_ps",
        "always-on packet latency distribution (picoseconds)",
        &fam,
    );
    Some(format!(
        "{title}\n(percentiles are log2-bucket upper bounds — at most 2x the true\n\
         order statistic; max is exact; see EXPERIMENTS.md \"Percentile methodology\")\n\n{}\n{prom}",
        t.render()
    ))
}

/// Per-VC heavy-hitter report for an experiment's canonical run: the
/// space-saving top-K by cell count, with overestimate bounds, plus
/// the exact sharded totals.
pub fn topvc_report(id: &str) -> Option<String> {
    let (title, m) = match id {
        "r-f1" => (
            "R-F1 canonical transmit run",
            experiments::rf1_tx_throughput::canonical_run().vc_cells,
        ),
        "r-f2" => (
            "R-F2 canonical receive run",
            experiments::rf2_rx_throughput::canonical_run().vc_cells,
        ),
        "r-f3" => {
            let r = experiments::rf3_latency::canonical_run();
            // End-to-end: the receive side saw every surviving cell.
            (
                "R-F3 canonical end-to-end run (receive side)",
                r.rx.vc_cells,
            )
        }
        _ => return None,
    };
    let total = m.shards.total_cells().max(1);
    let mut t = Table::new(["rank", "vc key", "cells (est)", "overest <=", "share"]);
    for (i, e) in m.top_cells.top().iter().enumerate() {
        t.row([
            (i + 1).to_string(),
            e.key.to_string(),
            e.count.to_string(),
            e.err.to_string(),
            table::fmt_pct(e.count as f64 / total as f64),
        ]);
    }
    Some(format!(
        "{title} — per-VC heavy hitters (top-{K} of unbounded VC space, O(K) memory)\n\
         exact totals: {cells} cells / {bytes} octets across {shards} shards (peak shard {peak})\n\
         guarantee: any VC with true count > {thr} is in the table;\n\
         each estimate overshoots its true count by at most its bound\n\n{}",
        t.render(),
        K = m.top_cells.k(),
        cells = m.shards.total_cells(),
        bytes = m.shards.total_bytes(),
        shards = hni_telemetry::topk::VC_SHARDS,
        peak = m.shards.max_shard_cells(),
        thr = m.top_cells.guaranteed_threshold(),
    ))
}

/// Tail-anatomy report: cohort critical-path attribution of an
/// experiment's canonical loaded run (`report tail <id>`). Renders the
/// blame headline, the tail-vs-median table, and the per-stage tail
/// shares as Prometheus gauges.
pub fn tail_report(id: &str) -> Option<String> {
    if !TAIL_IDS.contains(&id) {
        return None;
    }
    let (_, events) = experiments::rf3_latency::canonical_trace();
    let spans = hni_telemetry::PacketSpans::from_events(&events);
    let body = match hni_telemetry::attribute_tail(&spans) {
        Some(attr) => format!("{}\n{}", attr.render(), attr.prom()),
        None => "no attributable tail (uniform latency or <2 completed packets)\n".to_string(),
    };
    Some(format!(
        "R-F3 canonical loaded run — tail anatomy ({} packets indexed)\n\
         (cohorts are exact order statistics over traced totals; the\n\
          reservoir's p99+ cohort in `report exemplars` uses the log2-bucket\n\
          histogram bound instead — see EXPERIMENTS.md \"R-O2 methodology\")\n\n{body}",
        spans.len()
    ))
}

/// Tail exemplar report: the always-on reservoir's slowest-N packets
/// with their full span breakdowns, plus the deterministic p99+
/// cohort sample (`report exemplars <id>`).
pub fn exemplars_report(id: &str) -> Option<String> {
    if !TAIL_IDS.contains(&id) {
        return None;
    }
    let (report, events) = experiments::rf3_latency::canonical_trace();
    let spans = hni_telemetry::PacketSpans::from_events(&events);
    let mut t = Table::new(["rank", "vc key", "pkt", "latency us", "done us"]);
    let slowest = report.tail.slowest();
    for (i, e) in slowest.iter().enumerate() {
        t.row([
            (i + 1).to_string(),
            e.vc.to_string(),
            e.pkt.to_string(),
            format!("{:.3}", e.latency().as_us_f64()),
            format!("{:.3}", e.done_ps as f64 / 1e6),
        ]);
    }
    let mut out = format!(
        "R-F3 canonical loaded run — tail exemplars (always-on reservoir,\n\
         {} packets offered, identity sample 1-in-{})\n\n{}\n",
        report.tail.recorded(),
        report.tail.one_in(),
        t.render()
    );
    use std::fmt::Write as _;
    for e in &slowest {
        match spans.life(e.pkt).map(|l| l.breakdown()) {
            Some(b) if !b.is_empty() => {
                let _ = writeln!(out, "packet {} span breakdown (wait + service us):", e.pkt);
                for s in &b {
                    let _ = writeln!(
                        out,
                        "  {:<12} {:>10.3} + {:>10.3}",
                        s.label,
                        s.wait.as_us_f64(),
                        s.service.as_us_f64()
                    );
                }
            }
            _ => {
                let _ = writeln!(out, "packet {}: no spans indexed (not traced)", e.pkt);
            }
        }
    }
    // The p99+ cohort carved from the identity sample, using the
    // histogram's log2-bucket p99 bound as the threshold.
    let p99 = report.latency_hist.quantile(0.99);
    let cohort = report.tail.cohort(p99);
    let _ = writeln!(
        out,
        "\np99+ cohort (sampled identities >= histogram p99 bound {:.3} us): {}",
        p99 as f64 / 1e6,
        if cohort.is_empty() {
            "none sampled".to_string()
        } else {
            cohort
                .iter()
                .map(|e| format!("pkt {} ({:.3} us)", e.pkt, e.latency().as_us_f64()))
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    Some(out)
}

/// Side-by-side comparison of two run ids (`report diff <a> <b>`):
/// per-stage latency deltas from the always-on histograms, and the
/// profiled utilization/goodput deltas. `Err` on unsupported ids or
/// when the two runs' stage schemas differ (the caller exits 2).
pub fn diff_report(a: &str, b: &str) -> Result<String, String> {
    let (title_a, series_a) =
        hist_series(a).ok_or_else(|| format!("{a}: no always-on histogram support"))?;
    let (title_b, series_b) =
        hist_series(b).ok_or_else(|| format!("{b}: no always-on histogram support"))?;
    let stages_a: Vec<&str> = series_a.iter().map(|(s, _)| *s).collect();
    let stages_b: Vec<&str> = series_b.iter().map(|(s, _)| *s).collect();
    if stages_a != stages_b {
        return Err(format!(
            "schema mismatch: {a} reports stages {stages_a:?}, {b} reports {stages_b:?}"
        ));
    }
    let us = |ps: u64| ps as f64 / 1e6;
    let mut t = Table::new([
        "stage", "n a", "n b", "mean a", "mean b", "d mean", "p99 a", "p99 b", "d p99",
    ]);
    for ((stage, ha), (_, hb)) in series_a.iter().zip(&series_b) {
        let (pa, pb) = (ha.pcts(), hb.pcts());
        t.row([
            stage.to_string(),
            pa.count.to_string(),
            pb.count.to_string(),
            format!("{:.2}", pa.mean / 1e6),
            format!("{:.2}", pb.mean / 1e6),
            format!("{:+.2}", pb.mean / 1e6 - pa.mean / 1e6),
            format!("{:.2}", us(pa.p99)),
            format!("{:.2}", us(pb.p99)),
            format!("{:+.2}", us(pb.p99) - us(pa.p99)),
        ]);
    }
    let mut out = format!(
        "diff {a} vs {b}\n  a: {title_a}\n  b: {title_b}\n\n\
         Per-stage latency (us; log2-bucket p99 upper bounds):\n{}",
        t.render()
    );
    // Profiled side: goodput and per-resource utilization deltas.
    if let (Some((pa, ga)), Some((pb, gb))) = (profile_experiment(a), profile_experiment(b)) {
        let (ra, rb) = (
            hni_telemetry::attribute(&pa, ga),
            hni_telemetry::attribute(&pb, gb),
        );
        let mut p = Table::new(["resource", "util a", "util b", "d util"]);
        for sa in &ra.ranked {
            if let Some(sb) = ra_lookup(&rb, sa.component) {
                p.row([
                    sa.component.name().to_string(),
                    table::fmt_pct(sa.utilization),
                    table::fmt_pct(sb.utilization),
                    format!("{:+.1}pp", (sb.utilization - sa.utilization) * 100.0),
                ]);
            }
        }
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "\nProfiled utilization (resources charged in both runs):\n{}\
             goodput: a {} vs b {} ({:+.1}%)\n",
            p.render(),
            table::fmt_bps(ga),
            table::fmt_bps(gb),
            if ga > 0.0 {
                (gb / ga - 1.0) * 100.0
            } else {
                0.0
            },
        );
    }
    Ok(out)
}

fn ra_lookup(
    a: &hni_telemetry::Attribution,
    c: hni_telemetry::Component,
) -> Option<&hni_telemetry::ResourceShare> {
    a.ranked.iter().find(|s| s.component == c)
}

/// [`trace_experiment`] thinned by the deterministic sampler: keeps
/// events whose (vc, pkt, cell) identity hashes into the 1-in-`one_in`
/// keep set under `seed`. The decision is a pure function of identity,
/// so the sampled trace is byte-identical across reruns and
/// `HNI_JOBS` worker counts.
pub fn sampled_trace_experiment(
    id: &str,
    one_in: u64,
    seed: u64,
) -> Option<Vec<hni_telemetry::TraceEvent>> {
    let events = trace_experiment(id)?;
    let sampler = hni_telemetry::SamplingTracer::new(hni_telemetry::NullTracer, one_in, seed);
    Some(
        events
            .into_iter()
            .filter(|e| sampler.keeps(e.vc, e.pkt, e.cell))
            .collect(),
    )
}

/// Capture the structured event trace of one experiment's canonical
/// run. Returns `None` for ids without trace support.
pub fn trace_experiment(id: &str) -> Option<Vec<hni_telemetry::TraceEvent>> {
    match id {
        "r-f1" => Some(experiments::rf1_tx_throughput::trace_run()),
        "r-f2" => Some(experiments::rf2_rx_throughput::trace_run()),
        "r-f3" => Some(experiments::rf3_latency::trace_run(
            experiments::rf3_latency::TRACE_LEN,
        )),
        _ => None,
    }
}

/// Derive and dump the metrics registry from an experiment's trace.
pub fn metrics_experiment(id: &str) -> Option<String> {
    let events = trace_experiment(id)?;
    let end = events
        .last()
        .map(|e| e.time)
        .unwrap_or(hni_telemetry::Time::ZERO);
    Some(hni_telemetry::MetricsRegistry::from_trace(&events, end).dump(end))
}

/// Run one experiment by id, returning its rendered report.
pub fn run_experiment(id: &str) -> Option<String> {
    match id {
        "r-t1" => Some(experiments::rt1_budget::run()),
        "r-t2" => Some(experiments::rt2_partition::run()),
        "r-t3" => Some(experiments::rt3_memory::run()),
        "r-t4" => Some(experiments::rt4_pacing::run()),
        "r-t5" => Some(experiments::rt5_overhead::run()),
        "r-f1" => Some(experiments::rf1_tx_throughput::run()),
        "r-f2" => Some(experiments::rf2_rx_throughput::run()),
        "r-f3" => Some(experiments::rf3_latency::run()),
        "r-f4" => Some(experiments::rf4_host_cpu::run()),
        "r-f5" => Some(experiments::rf5_loss::run()),
        "r-f6" => Some(experiments::rf6_bus::run()),
        "r-f7" => Some(experiments::rf7_delineation::run()),
        "r-f8" => Some(experiments::rf8_congestion::run()),
        "r-a1" => Some(experiments::ra1_fifo_depth::run()),
        "r-a2" => Some(experiments::ra2_mips::run()),
        "r-o1" => Some(experiments::ro1_bottleneck::run()),
        "r-o2" => Some(experiments::ro2_tail::run()),
        "r-r1" => Some(experiments::rr1_discard::run()),
        "r-w1" => Some(experiments::rw1_transport::run()),
        "r-s1" => Some(experiments::rs1_scale::run()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_runs_and_renders() {
        for id in EXPERIMENT_IDS {
            let out = run_experiment(id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(out.len() > 100, "{id} output suspiciously short");
            assert!(out.contains(&id.to_uppercase()), "{id} header missing");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("r-f99").is_none());
    }

    #[test]
    fn ids_normalize_with_or_without_hyphen() {
        assert_eq!(normalize_id("r-f1"), "r-f1");
        assert_eq!(normalize_id("RF1"), "r-f1");
        assert_eq!(normalize_id("ro1"), "r-o1");
        assert_eq!(normalize_id("rw1"), "r-w1");
        assert_eq!(normalize_id("RW1"), "r-w1");
        assert_eq!(normalize_id("list"), "list"); // non-id words untouched
        assert_eq!(normalize_id("r"), "r");
    }

    #[test]
    fn profile_ids_yield_profiles_and_renderings() {
        for id in PROFILE_IDS {
            let (profile, goodput) =
                profile_experiment(id).unwrap_or_else(|| panic!("{id} unprofied"));
            assert!(profile.span() > hni_telemetry::Duration::ZERO, "{id}");
            assert!(goodput > 0.0, "{id}");
            let folded = folded_report(id).unwrap();
            assert!(
                folded.lines().count() >= 3,
                "{id} folded too thin:\n{folded}"
            );
            let bn = bottleneck_report(id).unwrap();
            assert!(bn.contains("bottleneck:"), "{id} verdict missing:\n{bn}");
            let prom = prom_report(id).unwrap();
            assert!(
                prom.contains("hni_component_utilization"),
                "{id} exposition missing family:\n{prom}"
            );
        }
        assert!(profile_experiment("r-t1").is_none());
        assert!(folded_report("nope").is_none());
        assert!(bottleneck_report("r-t1").is_none());
        assert!(prom_report("r-t1").is_none());
    }

    #[test]
    fn rf1_bottleneck_report_names_resource_at_every_size() {
        let bn = bottleneck_report("r-f1").unwrap();
        for size in experiments::rf1_tx_throughput::SIZES {
            assert!(bn.contains(&size.to_string()), "size {size} missing:\n{bn}");
        }
        assert!(bn.contains("engine") && bn.contains("link"), "{bn}");
    }

    #[test]
    fn hist_ids_render_bands_and_conformant_exposition() {
        for id in HIST_IDS {
            let out = hist_report(id).unwrap_or_else(|| panic!("{id} missing hist"));
            for band in ["p50<=", "p90<=", "p99<=", "p999<=", "max us"] {
                assert!(out.contains(band), "{id} missing {band}:\n{out}");
            }
            // The embedded Prometheus family must pass the conformance
            // validator (the same one `report promlint` runs).
            let prom_start = out
                .find("# HELP")
                .unwrap_or_else(|| panic!("{id} no exposition"));
            hni_telemetry::expfmt::validate(&out[prom_start..])
                .unwrap_or_else(|v| panic!("{id} exposition violations: {v:?}"));
        }
        assert!(hist_report("r-t1").is_none());
    }

    #[test]
    fn rf3_hist_report_has_all_three_stages() {
        let out = hist_report("r-f3").unwrap();
        for stage in [r#"stage="tx""#, r#"stage="rx""#, r#"stage="e2e""#] {
            assert!(out.contains(stage), "missing {stage}:\n{out}");
        }
    }

    #[test]
    fn topvc_ids_render_heavy_hitters() {
        for id in TOPVC_IDS {
            let out = topvc_report(id).unwrap_or_else(|| panic!("{id} missing topvc"));
            assert!(out.contains("vc key"), "{id}:\n{out}");
            assert!(out.contains("exact totals:"), "{id}:\n{out}");
        }
        // R-F2's canonical run spreads cells across 4 VCs — all tracked.
        let rx = topvc_report("r-f2").unwrap();
        assert!(
            rx.lines()
                .filter(|l| l.trim_start().starts_with(['1', '2', '3', '4']))
                .count()
                >= 4,
            "expected >=4 ranked VCs:\n{rx}"
        );
        assert!(topvc_report("r-t1").is_none());
    }

    #[test]
    fn hist_and_topvc_accept_hyphenless_ids() {
        // Regression: capability ids must pass through the same
        // normalization as plain experiment ids (`RF1` == `r-f1`).
        for raw in ["RF1", "rf1"] {
            let id = normalize_id(raw);
            assert!(HIST_IDS.contains(&id.as_str()), "{raw} -> {id}");
            assert!(TOPVC_IDS.contains(&id.as_str()), "{raw} -> {id}");
            assert!(hist_report(&id).is_some());
            assert!(topvc_report(&id).is_some());
        }
    }

    #[test]
    fn sampled_trace_is_deterministic_and_thinner() {
        let full = trace_experiment("r-f1").unwrap();
        let a = sampled_trace_experiment("r-f1", 64, 0xC0FFEE).unwrap();
        let b = sampled_trace_experiment("r-f1", 64, 0xC0FFEE).unwrap();
        assert_eq!(a, b, "sampling must be reproducible");
        assert!(a.len() < full.len(), "1-in-64 must actually thin the trace");
        assert!(!a.is_empty(), "some events must survive");
        // Sampling preserves relative order (it is a pure filter).
        let mut it = full.iter();
        for ev in &a {
            assert!(it.any(|e| e == ev), "sampled event out of order");
        }
        assert!(sampled_trace_experiment("r-t1", 64, 0).is_none());
    }

    #[test]
    fn traceable_ids_yield_events_and_metrics() {
        for id in TRACEABLE_IDS {
            let events = trace_experiment(id).unwrap_or_else(|| panic!("{id} untraceable"));
            assert!(events.len() > 50, "{id}: only {} events", events.len());
            // Times arrive in simulation order within each pipeline half.
            let dump = metrics_experiment(id).expect("metrics derivable");
            assert!(
                dump.lines().count() >= 5,
                "{id} metrics dump too thin:\n{dump}"
            );
        }
        assert!(trace_experiment("r-t1").is_none());
        assert!(metrics_experiment("nope").is_none());
    }
}
