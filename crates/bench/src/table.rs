//! Minimal fixed-width text tables for the experiment reports.

use std::fmt::Write;

/// A text table: headers plus string rows, rendered with column
/// auto-sizing, right-aligned numerics-style.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "{:>w$}", h, w = widths[i]);
            if i + 1 < cols {
                out.push_str("  ");
            }
        }
        out.push('\n');
        for (i, &w) in widths.iter().enumerate() {
            out.push_str(&"-".repeat(w));
            if i + 1 < cols {
                out.push_str("  ");
            }
        }
        out.push('\n');
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "{:>w$}", c, w = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Format bits/second with an adaptive unit.
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{:.2} Gb/s", bps / 1e9)
    } else if bps >= 1e6 {
        format!("{:.1} Mb/s", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.1} kb/s", bps / 1e3)
    } else {
        format!("{bps:.0} b/s")
    }
}

/// Format a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
        assert!(lines[1].chars().all(|c| c == '-' || c == ' '));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn bps_units() {
        assert_eq!(fmt_bps(1.5e9), "1.50 Gb/s");
        assert_eq!(fmt_bps(540.4e6), "540.4 Mb/s");
        assert_eq!(fmt_bps(12_500.0), "12.5 kb/s");
        assert_eq!(fmt_bps(900.0), "900 b/s");
    }

    #[test]
    fn pct() {
        assert_eq!(fmt_pct(0.1234), "12.3%");
    }
}
