//! Regenerate the evaluation: every table and figure, as text.
//!
//! ```text
//! cargo run -p hni-bench --bin report --release             # everything
//! cargo run -p hni-bench --bin report --release -- r-f1     # one experiment
//! cargo run -p hni-bench --bin report --release -- list     # ids + capabilities
//! cargo run -p hni-bench --bin report --release -- --trace r-f3      # JSONL trace
//! cargo run -p hni-bench --bin report --release -- trace r-f3 --sample 1024
//! cargo run -p hni-bench --bin report --release -- metrics r-f3      # metrics dump
//! cargo run -p hni-bench --bin report --release -- profile r-f1     # folded stacks
//! cargo run -p hni-bench --bin report --release -- bottleneck r-f1  # attribution
//! cargo run -p hni-bench --bin report --release -- prom r-f1        # Prometheus text
//! cargo run -p hni-bench --bin report --release -- hist r-f3        # latency bands
//! cargo run -p hni-bench --bin report --release -- topvc r-f2      # per-VC top-K
//! cargo run -p hni-bench --bin report --release -- tail r-f3       # tail blame table
//! cargo run -p hni-bench --bin report --release -- exemplars r-f3  # slowest packets
//! cargo run -p hni-bench --bin report --release -- diff r-f3 r-f3  # side-by-side
//! cargo run -p hni-bench --bin report --release -- promlint r-f1   # expfmt check
//! cargo run -p hni-bench --bin report --release -- perf             # wall-clock bench
//! cargo run -p hni-bench --bin report --release -- perf --fast out.json
//! cargo run -p hni-bench --bin report --release -- perf --check --tolerance 0.2
//! ```
//!
//! `perf` times the implementation's hot loops and the serial-vs-
//! parallel report sweep, writing `BENCH_PERF.json` (or the given
//! path); `--fast` is the reduced CI smoke. Wall-clock numbers are
//! hardware-dependent and not golden — but `perf --check` compares the
//! run against the last same-mode record in `BENCH_HISTORY.jsonl`
//! (`--history <path>` to override) and exits 2 if any hot loop
//! regressed beyond `--tolerance` (default 0.2 = 20%). The record is
//! appended to the history only when no check was requested or the
//! check passed, so a regressed run never becomes the new baseline.
//!
//! `trace` accepts `--sample <N>` (with optional `--seed <S>`) to thin
//! the JSONL deterministically — the kept set is a pure function of
//! each event's (vc, pkt, cell) identity, so it is byte-identical
//! across reruns and `HNI_JOBS` worker counts.
//!
//! Ids are case-insensitive and the hyphen is optional (`rf1` ≡ `r-f1`).

use hni_bench::{
    bottleneck_report, diff_report, exemplars_report, folded_report, hist_report,
    metrics_experiment, normalize_id, prom_report, run_experiment, sampled_trace_experiment,
    tail_report, topvc_report, trace_experiment, EXPERIMENT_IDS, HIST_IDS, PROFILE_IDS, TAIL_IDS,
    TOPVC_IDS, TRACEABLE_IDS,
};
use hni_telemetry::SentinelRecord;

/// Resolve `args[1]` as the id a capability subcommand operates on, or
/// exit 2 with a usage line naming the ids that support it.
fn capability_id_or_exit(args: &[String], what: &str, supported: &[&str]) -> String {
    match args.get(1) {
        Some(id) => normalize_id(id),
        None => {
            eprintln!("usage: report {what} <id>; supported ids: {supported:?}");
            std::process::exit(2);
        }
    }
}

/// Print a capability rendering, or exit 2 with the supported set.
fn print_or_exit(out: Option<String>, id: &str, what: &str, supported: &[&str]) {
    match out {
        Some(text) => print!("{text}"),
        None => {
            eprintln!("experiment '{id}' does not support '{what}'; supported ids: {supported:?}");
            std::process::exit(2);
        }
    }
}

/// Parse `--flag <value>` as a number, exiting 2 on malformed input.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let idx = args.iter().position(|a| a == flag)?;
    match args.get(idx + 1).and_then(|v| v.parse().ok()) {
        Some(v) => Some(v),
        None => {
            eprintln!("{flag} needs a numeric value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("all") => {
            for id in EXPERIMENT_IDS {
                println!("{}", "=".repeat(78));
                println!("{}", run_experiment(id).expect("known id"));
            }
        }
        Some("list") => {
            for id in EXPERIMENT_IDS {
                let mut caps = Vec::new();
                if TRACEABLE_IDS.contains(&id) {
                    caps.extend(["trace", "metrics"]);
                }
                if PROFILE_IDS.contains(&id) {
                    caps.extend(["profile", "bottleneck", "prom"]);
                }
                if HIST_IDS.contains(&id) {
                    caps.push("hist");
                }
                if TOPVC_IDS.contains(&id) {
                    caps.push("topvc");
                }
                if TAIL_IDS.contains(&id) {
                    caps.extend(["tail", "exemplars"]);
                }
                if caps.is_empty() {
                    println!("{id}");
                } else {
                    println!("{id}  [{}]", caps.join(" "));
                }
            }
        }
        Some("--trace" | "trace") => {
            let id = capability_id_or_exit(&args, "trace", &TRACEABLE_IDS);
            let events = match flag_value::<u64>(&args, "--sample") {
                Some(one_in) => {
                    let seed = flag_value::<u64>(&args, "--seed").unwrap_or(0);
                    sampled_trace_experiment(&id, one_in, seed)
                }
                None => trace_experiment(&id),
            };
            print_or_exit(
                events.map(|ev| hni_telemetry::jsonl::to_jsonl(&ev)),
                &id,
                "trace",
                &TRACEABLE_IDS,
            );
        }
        Some("metrics") => {
            let id = capability_id_or_exit(&args, "metrics", &TRACEABLE_IDS);
            print_or_exit(metrics_experiment(&id), &id, "metrics", &TRACEABLE_IDS);
        }
        Some("profile") => {
            let id = capability_id_or_exit(&args, "profile", &PROFILE_IDS);
            print_or_exit(folded_report(&id), &id, "profile", &PROFILE_IDS);
        }
        Some("bottleneck") => {
            let id = capability_id_or_exit(&args, "bottleneck", &PROFILE_IDS);
            print_or_exit(bottleneck_report(&id), &id, "bottleneck", &PROFILE_IDS);
        }
        Some("prom") => {
            let id = capability_id_or_exit(&args, "prom", &PROFILE_IDS);
            print_or_exit(prom_report(&id), &id, "prom", &PROFILE_IDS);
        }
        Some("hist") => {
            let id = capability_id_or_exit(&args, "hist", &HIST_IDS);
            print_or_exit(hist_report(&id), &id, "hist", &HIST_IDS);
        }
        Some("topvc") => {
            let id = capability_id_or_exit(&args, "topvc", &TOPVC_IDS);
            print_or_exit(topvc_report(&id), &id, "topvc", &TOPVC_IDS);
        }
        Some("tail") => {
            let id = capability_id_or_exit(&args, "tail", &TAIL_IDS);
            print_or_exit(tail_report(&id), &id, "tail", &TAIL_IDS);
        }
        Some("exemplars") => {
            let id = capability_id_or_exit(&args, "exemplars", &TAIL_IDS);
            print_or_exit(exemplars_report(&id), &id, "exemplars", &TAIL_IDS);
        }
        Some("diff") => {
            let (Some(a), Some(b)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: report diff <a> <b>; ids with histograms: {HIST_IDS:?}");
                std::process::exit(2);
            };
            match diff_report(&normalize_id(a), &normalize_id(b)) {
                Ok(out) => print!("{out}"),
                Err(e) => {
                    eprintln!("report diff: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("promlint") => {
            // Run every live exposition the id supports (`prom` profile
            // gauges, `hist` histogram families) through the expfmt
            // conformance validator; exit 2 on the first violation.
            let id = capability_id_or_exit(&args, "promlint", &PROFILE_IDS);
            let mut checked = 0usize;
            if let Some(text) = prom_report(&id) {
                lint_or_exit(&id, "prom", &text);
                checked += 1;
            }
            if let Some(out) = hist_report(&id) {
                // The hist report is a table followed by the exposition.
                if let Some(start) = out.find("# HELP") {
                    lint_or_exit(&id, "hist", &out[start..]);
                    checked += 1;
                }
            }
            if let Some(out) = tail_report(&id) {
                // Likewise: blame table, then the tail-share gauges.
                if let Some(start) = out.find("# HELP") {
                    lint_or_exit(&id, "tail", &out[start..]);
                    checked += 1;
                }
            }
            if checked == 0 {
                eprintln!(
                    "experiment '{id}' exposes no Prometheus text; supported ids: {PROFILE_IDS:?}"
                );
                std::process::exit(2);
            }
            println!("promlint {id}: {checked} exposition(s) conformant");
        }
        Some("perf") => {
            let fast = args.iter().any(|a| a == "--fast");
            let check = args.iter().any(|a| a == "--check");
            let tolerance: f64 = flag_value(&args, "--tolerance").unwrap_or(0.2);
            let history_path = {
                let idx = args.iter().position(|a| a == "--history");
                idx.and_then(|i| args.get(i + 1))
                    .cloned()
                    .unwrap_or_else(|| "BENCH_HISTORY.jsonl".to_string())
            };
            // First bare operand = output path; skip flags and the
            // values the value-taking flags swallow.
            let mut path = "BENCH_PERF.json";
            let mut i = 1;
            while i < args.len() {
                let a = args[i].as_str();
                if a == "--tolerance" || a == "--history" {
                    i += 2;
                } else if a.starts_with("--") {
                    i += 1;
                } else {
                    path = a;
                    break;
                }
            }
            let report = hni_bench::perf::run_perf(fast);
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            print!("{}", report.render());
            println!("wrote {path}");

            let record = report.sentinel_record();
            let history = std::fs::read_to_string(&history_path).unwrap_or_default();
            if check {
                let Some(baseline) =
                    SentinelRecord::last_in_history(&history, record.mode.as_str())
                else {
                    eprintln!(
                        "perf --check: no '{}'-mode baseline in {history_path}; \
                         run `report perf{}` once to record one",
                        record.mode,
                        if fast { " --fast" } else { "" }
                    );
                    std::process::exit(2);
                };
                let regs = hni_telemetry::sentinel::check(&baseline, &record, tolerance);
                if !regs.is_empty() {
                    eprint!(
                        "{}",
                        hni_telemetry::sentinel::render_regressions(&regs, tolerance)
                    );
                    eprintln!("perf --check FAILED against {history_path}");
                    std::process::exit(2);
                }
                println!(
                    "perf --check OK: no hot loop regressed beyond {:.0}% of the last {} baseline",
                    tolerance * 100.0,
                    record.mode
                );
            }
            // Append only non-regressed runs: a failing run must never
            // ratchet the baseline down to its own slower numbers.
            let mut line = record.to_line();
            line.push('\n');
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&history_path)
                .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()))
                .unwrap_or_else(|e| panic!("appending {history_path}: {e}"));
            println!("appended {history_path}");
        }
        Some(id) => match run_experiment(&normalize_id(id)) {
            Some(out) => println!("{out}"),
            None => {
                eprintln!("unknown experiment '{id}'; try: list");
                std::process::exit(2);
            }
        },
    }
}

/// Validate one exposition body, exiting 2 with the violations if it
/// fails conformance.
fn lint_or_exit(id: &str, which: &str, text: &str) {
    if let Err(violations) = hni_telemetry::expfmt::validate(text) {
        eprintln!(
            "promlint {id} ({which}): {} violation(s):",
            violations.len()
        );
        for v in violations {
            eprintln!("  - {v}");
        }
        std::process::exit(2);
    }
}
