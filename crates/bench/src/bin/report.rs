//! Regenerate the evaluation: every table and figure, as text.
//!
//! ```text
//! cargo run -p hni-bench --bin report --release             # everything
//! cargo run -p hni-bench --bin report --release -- r-f1     # one experiment
//! cargo run -p hni-bench --bin report --release -- list     # list ids
//! ```

use hni_bench::{run_experiment, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("all") => {
            for id in EXPERIMENT_IDS {
                println!("{}", "=".repeat(78));
                println!("{}", run_experiment(id).expect("known id"));
            }
        }
        Some("list") => {
            for id in EXPERIMENT_IDS {
                println!("{id}");
            }
        }
        Some(id) => match run_experiment(&id.to_lowercase()) {
            Some(out) => println!("{out}"),
            None => {
                eprintln!("unknown experiment '{id}'; try: list");
                std::process::exit(2);
            }
        },
    }
}
