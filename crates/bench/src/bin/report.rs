//! Regenerate the evaluation: every table and figure, as text.
//!
//! ```text
//! cargo run -p hni-bench --bin report --release             # everything
//! cargo run -p hni-bench --bin report --release -- r-f1     # one experiment
//! cargo run -p hni-bench --bin report --release -- list     # list ids
//! cargo run -p hni-bench --bin report --release -- --trace r-f3   # JSONL trace
//! cargo run -p hni-bench --bin report --release -- metrics r-f3   # metrics dump
//! ```

use hni_bench::{
    metrics_experiment, run_experiment, trace_experiment, EXPERIMENT_IDS, TRACEABLE_IDS,
};

fn traceable_id_or_exit(args: &[String], what: &str) -> String {
    match args.get(1) {
        Some(id) => id.to_lowercase(),
        None => {
            eprintln!("usage: report {what} <id>; traceable ids: {TRACEABLE_IDS:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("all") => {
            for id in EXPERIMENT_IDS {
                println!("{}", "=".repeat(78));
                println!("{}", run_experiment(id).expect("known id"));
            }
        }
        Some("list") => {
            for id in EXPERIMENT_IDS {
                let t = if TRACEABLE_IDS.contains(&id) {
                    "  [traceable]"
                } else {
                    ""
                };
                println!("{id}{t}");
            }
        }
        Some("--trace" | "trace") => {
            let id = traceable_id_or_exit(&args, "--trace");
            match trace_experiment(&id) {
                Some(events) => print!("{}", hni_telemetry::jsonl::to_jsonl(&events)),
                None => {
                    eprintln!(
                        "experiment '{id}' has no trace support; traceable: {TRACEABLE_IDS:?}"
                    );
                    std::process::exit(2);
                }
            }
        }
        Some("metrics") => {
            let id = traceable_id_or_exit(&args, "metrics");
            match metrics_experiment(&id) {
                Some(dump) => print!("{dump}"),
                None => {
                    eprintln!(
                        "experiment '{id}' has no trace support; traceable: {TRACEABLE_IDS:?}"
                    );
                    std::process::exit(2);
                }
            }
        }
        Some(id) => match run_experiment(&id.to_lowercase()) {
            Some(out) => println!("{out}"),
            None => {
                eprintln!("unknown experiment '{id}'; try: list");
                std::process::exit(2);
            }
        },
    }
}
