//! Regenerate the evaluation: every table and figure, as text.
//!
//! ```text
//! cargo run -p hni-bench --bin report --release             # everything
//! cargo run -p hni-bench --bin report --release -- r-f1     # one experiment
//! cargo run -p hni-bench --bin report --release -- list     # ids + capabilities
//! cargo run -p hni-bench --bin report --release -- --trace r-f3      # JSONL trace
//! cargo run -p hni-bench --bin report --release -- metrics r-f3      # metrics dump
//! cargo run -p hni-bench --bin report --release -- profile r-f1     # folded stacks
//! cargo run -p hni-bench --bin report --release -- bottleneck r-f1  # attribution
//! cargo run -p hni-bench --bin report --release -- prom r-f1        # Prometheus text
//! cargo run -p hni-bench --bin report --release -- perf             # wall-clock bench
//! cargo run -p hni-bench --bin report --release -- perf --fast out.json
//! ```
//!
//! `perf` times the implementation's hot loops and the serial-vs-
//! parallel report sweep, writing `BENCH_PERF.json` (or the given
//! path); `--fast` is the reduced CI smoke. Wall-clock numbers are
//! hardware-dependent and not golden.
//!
//! Ids are case-insensitive and the hyphen is optional (`rf1` ≡ `r-f1`).

use hni_bench::{
    bottleneck_report, folded_report, metrics_experiment, normalize_id, prom_report,
    run_experiment, trace_experiment, EXPERIMENT_IDS, PROFILE_IDS, TRACEABLE_IDS,
};

/// Resolve `args[1]` as the id a capability subcommand operates on, or
/// exit 2 with a usage line naming the ids that support it.
fn capability_id_or_exit(args: &[String], what: &str, supported: &[&str]) -> String {
    match args.get(1) {
        Some(id) => normalize_id(id),
        None => {
            eprintln!("usage: report {what} <id>; supported ids: {supported:?}");
            std::process::exit(2);
        }
    }
}

/// Print a capability rendering, or exit 2 with the supported set.
fn print_or_exit(out: Option<String>, id: &str, what: &str, supported: &[&str]) {
    match out {
        Some(text) => print!("{text}"),
        None => {
            eprintln!("experiment '{id}' does not support '{what}'; supported ids: {supported:?}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("all") => {
            for id in EXPERIMENT_IDS {
                println!("{}", "=".repeat(78));
                println!("{}", run_experiment(id).expect("known id"));
            }
        }
        Some("list") => {
            for id in EXPERIMENT_IDS {
                let mut caps = Vec::new();
                if TRACEABLE_IDS.contains(&id) {
                    caps.extend(["trace", "metrics"]);
                }
                if PROFILE_IDS.contains(&id) {
                    caps.extend(["profile", "bottleneck", "prom"]);
                }
                if caps.is_empty() {
                    println!("{id}");
                } else {
                    println!("{id}  [{}]", caps.join(" "));
                }
            }
        }
        Some("--trace" | "trace") => {
            let id = capability_id_or_exit(&args, "trace", &TRACEABLE_IDS);
            print_or_exit(
                trace_experiment(&id).map(|ev| hni_telemetry::jsonl::to_jsonl(&ev)),
                &id,
                "trace",
                &TRACEABLE_IDS,
            );
        }
        Some("metrics") => {
            let id = capability_id_or_exit(&args, "metrics", &TRACEABLE_IDS);
            print_or_exit(metrics_experiment(&id), &id, "metrics", &TRACEABLE_IDS);
        }
        Some("profile") => {
            let id = capability_id_or_exit(&args, "profile", &PROFILE_IDS);
            print_or_exit(folded_report(&id), &id, "profile", &PROFILE_IDS);
        }
        Some("bottleneck") => {
            let id = capability_id_or_exit(&args, "bottleneck", &PROFILE_IDS);
            print_or_exit(bottleneck_report(&id), &id, "bottleneck", &PROFILE_IDS);
        }
        Some("prom") => {
            let id = capability_id_or_exit(&args, "prom", &PROFILE_IDS);
            print_or_exit(prom_report(&id), &id, "prom", &PROFILE_IDS);
        }
        Some("perf") => {
            let fast = args.iter().any(|a| a == "--fast");
            let path = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .map(String::as_str)
                .unwrap_or("BENCH_PERF.json");
            let report = hni_bench::perf::run_perf(fast);
            std::fs::write(path, report.to_json())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            print!("{}", report.render());
            println!("wrote {path}");
        }
        Some(id) => match run_experiment(&normalize_id(id)) {
            Some(out) => println!("{out}"),
            None => {
                eprintln!("unknown experiment '{id}'; try: list");
                std::process::exit(2);
            }
        },
    }
}
