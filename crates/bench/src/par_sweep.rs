//! Deterministic parallel sweep runner.
//!
//! Every report sweep is a grid of *independent* simulation runs — each
//! point builds its own config, workload and RNG streams from the grid
//! coordinates alone, so points share no mutable state. That makes the
//! grid embarrassingly parallel: [`par_sweep`] fans the points out over
//! a worker pool (std scoped threads, no dependencies) and reassembles
//! the results **in input order**, so the rendered report is
//! byte-identical to the serial loop no matter how many workers ran or
//! how the OS interleaved them.
//!
//! The worker count comes from the `HNI_JOBS` environment variable
//! (default: the machine's available parallelism). `HNI_JOBS=1` is the
//! serial path — it runs the closure inline on the caller's thread with
//! no pool at all, which keeps single-threaded debugging and profiling
//! honest.
//!
//! Determinism contract: `f` must derive everything from its item (and
//! captured immutable state). The runner guarantees result *order*; it
//! cannot guarantee a closure that reads wall clocks or shared counters.
//! `tests/perf_golden.rs` pins the contract by diffing whole rendered
//! reports across `HNI_JOBS=1..4`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Worker count from `HNI_JOBS`, defaulting to the machine's available
/// parallelism. Values below 1 or unparseable values fall back to 1.
pub fn jobs_from_env() -> usize {
    match std::env::var("HNI_JOBS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => available_cores(),
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn available_cores() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` with the worker count from `HNI_JOBS`,
/// returning results in input order. See [`par_sweep_with_jobs`].
pub fn par_sweep<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_sweep_with_jobs(jobs_from_env(), items, f)
}

/// Map `f` over `items` using up to `jobs` worker threads, returning
/// results in input order (index `i` of the output is `f(&items[i])`).
///
/// Work is handed out through a shared atomic cursor, so uneven point
/// costs balance across workers automatically. With `jobs <= 1` (or one
/// item) the closure runs inline on the caller's thread.
///
/// A panic inside `f` on any worker propagates to the caller once the
/// scope joins, exactly as the serial loop would panic.
pub fn par_sweep_with_jobs<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(slots);

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                slots.lock().unwrap()[i] = Some(r);
            });
        }
    });

    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("worker completed every claimed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 3, 4, 16] {
            let got = par_sweep_with_jobs(jobs, &items, |&x| x * x);
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Make late items cheap and early items expensive so a naive
        // chunked split would finish out of order.
        let items: Vec<usize> = (0..40).collect();
        let got = par_sweep_with_jobs(4, &items, |&i| {
            let spin = (40 - i) * 1000;
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc & 1)
        });
        for (idx, (i, _)) in got.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn empty_and_single_item_sweeps() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_sweep_with_jobs(4, &empty, |&x| x).is_empty());
        assert_eq!(par_sweep_with_jobs(4, &[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_env_parsing() {
        // jobs_from_env reads a process-global; exercise the parsing
        // rules through a fresh helper rather than mutating the
        // environment (other tests run concurrently in this process).
        let parse = |v: &str| v.trim().parse::<usize>().unwrap_or(1).max(1);
        assert_eq!(parse("4"), 4);
        assert_eq!(parse(" 2 "), 2);
        assert_eq!(parse("0"), 1);
        assert_eq!(parse("nope"), 1);
        assert!(available_cores() >= 1);
    }
}
