//! Criterion benches for the table experiments (R-T1..R-T5): each group
//! times the code path that regenerates one table of the evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use hni_bench::experiments::{rt1_budget, rt2_partition, rt3_memory, rt4_pacing, rt5_overhead};
use std::hint::black_box;

fn bench_rt1(c: &mut Criterion) {
    c.bench_function("r-t1/budget-table", |b| {
        b.iter(|| black_box(rt1_budget::run()))
    });
}

fn bench_rt2(c: &mut Criterion) {
    c.bench_function("r-t2/partition-table", |b| {
        b.iter(|| black_box(rt2_partition::run()))
    });
}

fn bench_rt3(c: &mut Criterion) {
    let mut g = c.benchmark_group("r-t3");
    g.sample_size(10);
    g.bench_function("memory/measured-peak-16vc", |b| {
        b.iter(|| black_box(rt3_memory::measured_peak(16, 32)))
    });
    g.finish();
}

fn bench_rt4(c: &mut Criterion) {
    let mut g = c.benchmark_group("r-t4");
    g.sample_size(10);
    g.bench_function("pacing/jitter-paced", |b| {
        b.iter(|| black_box(rt4_pacing::measure(true).sd_us))
    });
    g.bench_function("pacing/jitter-unpaced", |b| {
        b.iter(|| black_box(rt4_pacing::measure(false).sd_us))
    });
    g.finish();
}

fn bench_rt5(c: &mut Criterion) {
    c.bench_function("r-t5/overhead-waterfall", |b| {
        b.iter(|| black_box(rt5_overhead::run()))
    });
}

criterion_group!(tables, bench_rt1, bench_rt2, bench_rt3, bench_rt4, bench_rt5);
criterion_main!(tables);
