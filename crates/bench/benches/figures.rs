//! Criterion benches for the figure experiments (R-F1..R-F7): each group
//! times the simulation that regenerates one figure, at a reduced but
//! representative workload size.

use criterion::{criterion_group, criterion_main, Criterion};
use hni_aal::AalType;
use hni_atm::VcId;
use hni_bench::experiments::{rf2_rx_throughput, rf5_loss, rf6_bus, rf7_delineation};
use hni_core::engine::HwPartition;
use hni_core::rxsim::{run_rx, RxConfig, RxWorkload};
use hni_core::txsim::{greedy_workload, run_tx, TxConfig};
use hni_sonet::LineRate;
use std::hint::black_box;

fn bench_rf1(c: &mut Criterion) {
    let mut g = c.benchmark_group("r-f1");
    g.sample_size(20);
    for (name, partition) in [
        ("tx-sweep/all-software", HwPartition::all_software()),
        ("tx-sweep/paper-split", HwPartition::paper_split()),
    ] {
        g.bench_function(name, |b| {
            let mut cfg = TxConfig::paper(LineRate::Oc12);
            cfg.partition = partition;
            let wl = greedy_workload(10, 9180, VcId::new(0, 32));
            b.iter(|| black_box(run_tx(&cfg, &wl).goodput_bps))
        });
    }
    g.finish();
}

fn bench_rf2(c: &mut Criterion) {
    let mut g = c.benchmark_group("r-f2");
    g.sample_size(10);
    g.bench_function("rx-line-rate/paper-split", |b| {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 8, 9180, 1.0);
        b.iter(|| black_box(run_rx(&cfg, &wl).goodput_bps))
    });
    g.bench_function("host-interrupt-comparison", |b| {
        b.iter(|| black_box(rf2_rx_throughput::host_interrupt_comparison(0.5)))
    });
    g.finish();
}

fn bench_rf3(c: &mut Criterion) {
    c.bench_function("r-f3/latency-single-packet", |b| {
        let cfg = TxConfig::paper(LineRate::Oc12);
        let wl = greedy_workload(1, 9180, VcId::new(0, 32));
        b.iter(|| black_box(run_tx(&cfg, &wl).packet_latency_us.mean()))
    });
}

fn bench_rf4(c: &mut Criterion) {
    c.bench_function("r-f4/host-cpu-sweep", |b| {
        b.iter(|| black_box(hni_bench::experiments::rf4_host_cpu::sweep()))
    });
}

fn bench_rf5(c: &mut Criterion) {
    let mut g = c.benchmark_group("r-f5");
    g.sample_size(10);
    g.bench_function("loss/functional-survival", |b| {
        b.iter(|| {
            black_box(rf5_loss::functional_survival(
                AalType::Aal5,
                4096,
                5e-3,
                20,
                3,
            ))
        })
    });
    g.finish();
}

fn bench_rf6(c: &mut Criterion) {
    let mut g = c.benchmark_group("r-f6");
    g.sample_size(10);
    g.bench_function("bus/burst-sweep", |b| {
        b.iter(|| black_box(rf6_bus::sweep(5)))
    });
    g.finish();
}

fn bench_rf7(c: &mut Criterion) {
    let mut g = c.benchmark_group("r-f7");
    g.sample_size(10);
    g.bench_function("delineation/clean", |b| {
        b.iter(|| black_box(rf7_delineation::measure(0.0, 1000, 1).delivered))
    });
    g.bench_function("delineation/ber-1e-4", |b| {
        b.iter(|| black_box(rf7_delineation::measure(1e-4, 1000, 1).delivered))
    });
    g.finish();
}

criterion_group!(
    figures, bench_rf1, bench_rf2, bench_rf3, bench_rf4, bench_rf5, bench_rf6, bench_rf7
);
criterion_main!(figures);
