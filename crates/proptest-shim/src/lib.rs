//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no access to a crates
//! registry, so the small slice of proptest's API that the test suites
//! actually use is reimplemented here: strategies over ranges, tuples,
//! `any`, `Just`, `prop_oneof!`, `collection::vec`, `sample::Index`,
//! `prop_map`, and the `proptest!` / `prop_assert*!` / `prop_assume!`
//! macros. Generation is driven by a splitmix64 PRNG seeded from the
//! test name and case number, so every run of every test is
//! reproducible. There is no shrinking: a failing case panics with the
//! standard assertion message plus the case number and seed.

use std::marker::PhantomData;

/// Deterministic generator handed to each test case.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of generated values. The tiny sibling of proptest's trait:
/// no shrinking, no `ValueTree`, just direct generation.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        strategy::Map { inner: self, f }
    }
}

pub mod strategy {
    //! Strategy combinators and primitive strategy impls.

    use super::{Strategy, TestRng};

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Box a strategy for storage in a [`Union`] (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice among alternative strategies of one value type.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from non-empty arms.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    (lo as u128 + (rng.next_u64() as u128 % span)) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Types that can be generated unconstrained via [`any`].
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing unconstrained values of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod sample {
    //! Index sampling, as in `proptest::sample`.

    use super::{Arbitrary, TestRng};

    /// An opaque index later resolved against a collection length.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies, as in `proptest::collection`.

    use super::{Strategy, TestRng};

    /// A length specification for [`vec()`]: an exact size or a range, as
    /// upstream's `Into<SizeRange>` bound accepts.
    pub struct SizeRange(core::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..*r.end() + 1)
        }
    }

    /// Strategy for `Vec`s with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(elem, lo..hi)` / `vec(elem, n)`: vectors of that many elements.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let SizeRange(size) = size.into();
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case loop behind the `proptest!` macro.

    use super::TestRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Cases per property unless `PROPTEST_CASES` overrides.
    pub const DEFAULT_CASES: u32 = 48;

    fn seed_for(name: &str, case: u32) -> u64 {
        // FNV-1a over the test name, mixed with the case number, so each
        // property gets an independent deterministic stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }

    /// Per-property configuration (`#![proptest_config(...)]`). Only the
    /// case count is honoured by the shim.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run for each property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: DEFAULT_CASES,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Run `f` for each case with a per-case deterministic generator.
    pub fn run<F: FnMut(&mut TestRng)>(name: &str, f: F) {
        run_with(name, ProptestConfig::default(), f)
    }

    /// As [`run`], with an explicit config (`PROPTEST_CASES` still wins).
    pub fn run_with<F: FnMut(&mut TestRng)>(name: &str, config: ProptestConfig, mut f: F) {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases);
        for case in 0..cases {
            let seed = seed_for(name, case);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut rng = TestRng::new(seed);
                f(&mut rng);
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest-shim: property '{name}' failed at case {case} (seed {seed:#018x})"
                );
                resume_unwind(payload);
            }
        }
    }
}

/// Define properties: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running [`test_runner::DEFAULT_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_with(stringify!($name), $cfg, |__ptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __ptest_rng);)+
                    $body
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__ptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __ptest_rng);)+
                    $body
                });
            }
        )*
    };
}

/// Assert within a property (no shrinking, so plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::Just;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, Strategy, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` path familiar from upstream (`prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1u8..=9, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=9).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map(k in prop_oneof![Just(1usize), Just(8)], s in (0u8..4).prop_map(|b| b as u32)) {
            prop_assert!(k == 1 || k == 8);
            prop_assert!(s < 4);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
