//! Minimal stand-in for the `criterion` bench harness.
//!
//! The workspace builds in environments with no access to a crates
//! registry, so the benches' API surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, `benchmark_group`,
//! `sample_size`, `Bencher::iter`) is reimplemented over
//! `std::time::Instant`. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints the median per-iteration
//! time. No statistics beyond that — these are smoke-timing runs, not a
//! measurement framework.

use std::time::Instant;

/// Passed to the closure of `bench_function`; drives the timed loop.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, recording per-iteration nanoseconds across samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up plus iteration-count calibration: aim for ~10 ms per
        // sample, at least one iteration.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.01 / once) as usize).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples
                .push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// Run one benchmark and print its median time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(20),
        };
        f(&mut b);
        report(name, &mut b.samples);
        self
    }

    /// Start a named group; the shim's groups only scope `sample_size`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            _parent: self,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &mut b.samples);
        self
    }

    /// End the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// One benchmark's summary statistics, for callers that want numbers
/// back instead of a printed line (the `hni-bench` perf harness).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations per sample after calibration.
    pub iters_per_sample: usize,
}

/// Time `f` with the shim's warm-up + calibration loop and return the
/// statistics instead of printing. `target_sample_s` sets the wall time
/// each sample aims for (the print path uses 10 ms); CI smoke runs pass
/// something far smaller to bound total runtime.
pub fn measure<R, F: FnMut() -> R>(
    name: &str,
    samples: usize,
    target_sample_s: f64,
    mut f: F,
) -> BenchResult {
    let samples = samples.max(1);
    // Warm-up plus iteration-count calibration.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((target_sample_s / once) as usize).clamp(1, 1_000_000);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        times.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    BenchResult {
        name: name.to_string(),
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        max_ns: times[times.len() - 1],
        samples,
        iters_per_sample: iters,
    }
}

fn report(name: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "bench {name}: median {median:.0} ns/iter (min {lo:.0}, max {hi:.0}, n={})",
        samples.len()
    );
}

/// Re-export so `use criterion::black_box` keeps working if added later.
pub use std::hint::black_box;

/// Group benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($f:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
    ($group:ident; $($rest:tt)*) => { compile_error!("config-form criterion_group! unsupported by shim") };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_ordered_stats() {
        let mut acc = 0u64;
        let r = measure("spin", 5, 1e-5, || {
            for k in 0..100u64 {
                acc = acc.wrapping_add(k);
            }
        });
        assert_eq!(r.name, "spin");
        assert_eq!(r.samples, 5);
        assert!(r.iters_per_sample >= 1);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.min_ns > 0.0);
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count > 0);
    }
}
