//! Per-VC sliding send window over frame sequence numbers.
//!
//! The window tracks which of a connection's `total` frames have been
//! handed to the wire and which are acknowledged, under a cap of
//! `cap` unacknowledged frames in flight. Acknowledgement arrives two
//! ways, as in TCP with SACK:
//!
//! * **cumulative** — everything below `cum` is delivered; the left
//!   edge (`una`) advances, skipping over frames already selectively
//!   acknowledged;
//! * **selective** — a frame above the left edge is delivered
//!   out of order; it is marked so recovery never resends it, but
//!   `una` holds at the missing frame.
//!
//! The window also counts duplicate cumulative acks — the signal the
//! transport's fast-retransmit machinery triggers on.

/// Send-window state for one connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SendWindow {
    cap: usize,
    total: usize,
    next: usize,
    una: usize,
    acked: Vec<bool>,
    dup_acks: u32,
}

impl SendWindow {
    /// A window of `cap` frames over a transfer of `total` frames.
    pub fn new(cap: usize, total: usize) -> Self {
        assert!(cap >= 1, "window of zero frames can never send");
        SendWindow {
            cap,
            total,
            next: 0,
            una: 0,
            acked: vec![false; total],
            dup_acks: 0,
        }
    }

    /// Lowest unacknowledged sequence (the window's left edge).
    pub fn una(&self) -> usize {
        self.una
    }

    /// Next never-sent sequence.
    pub fn next_seq(&self) -> usize {
        self.next
    }

    /// Total frames in the transfer.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Has `seq` been acknowledged (cumulatively or selectively)?
    pub fn is_acked(&self, seq: usize) -> bool {
        self.acked[seq]
    }

    /// May a *new* (never-sent) frame enter the window now?
    pub fn can_send_new(&self) -> bool {
        self.next < self.total && self.next < self.una + self.cap
    }

    /// Claim the next new sequence for transmission.
    pub fn take_next(&mut self) -> usize {
        assert!(self.can_send_new(), "window closed or transfer exhausted");
        let seq = self.next;
        self.next += 1;
        seq
    }

    /// Mark one sequence acknowledged (selective ack, or the transport
    /// abandoning a frame). Returns true if it was newly acknowledged.
    /// The left edge advances over any acknowledged prefix.
    pub fn mark_acked(&mut self, seq: usize) -> bool {
        if self.acked[seq] {
            return false;
        }
        self.acked[seq] = true;
        if seq == self.una {
            self.advance();
        }
        true
    }

    /// Apply a cumulative ack: every sequence below `cum` is delivered.
    /// Returns the previous left edge; the caller can inspect
    /// `[old_una, cum)` for RTT-sampling candidates. Resets the
    /// duplicate-ack counter iff the window actually advanced.
    pub fn on_cum_ack(&mut self, cum: usize) -> usize {
        let old = self.una;
        let cum = cum.min(self.total);
        for seq in self.una..cum {
            self.acked[seq] = true;
        }
        if cum > self.una {
            self.advance();
            self.dup_acks = 0;
        }
        old
    }

    /// Count one duplicate cumulative ack; returns the running count.
    pub fn dup_ack(&mut self) -> u32 {
        self.dup_acks += 1;
        self.dup_acks
    }

    /// Clear the duplicate-ack counter (after a fast retransmit fires).
    pub fn reset_dup_acks(&mut self) {
        self.dup_acks = 0;
    }

    /// Current duplicate-ack count.
    pub fn dup_acks(&self) -> u32 {
        self.dup_acks
    }

    /// Every frame acknowledged: the transfer is over.
    pub fn done(&self) -> bool {
        self.una == self.total
    }

    fn advance(&mut self) {
        while self.una < self.total && self.acked[self.una] {
            self.una += 1;
        }
        // The left edge never passes the send edge backwards; if acks
        // covered frames the window never sent (cannot happen with an
        // honest peer, but cheap to keep consistent), drag `next` along.
        if self.next < self.una {
            self.next = self.una;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_frames_in_flight() {
        let mut w = SendWindow::new(3, 10);
        assert!(w.can_send_new());
        assert_eq!(w.take_next(), 0);
        assert_eq!(w.take_next(), 1);
        assert_eq!(w.take_next(), 2);
        assert!(!w.can_send_new(), "window of 3 is full");
        w.on_cum_ack(1);
        assert_eq!(w.una(), 1);
        assert!(w.can_send_new(), "ack slides the window open");
        assert_eq!(w.take_next(), 3);
    }

    #[test]
    fn sack_holds_left_edge_then_cum_skips_over() {
        let mut w = SendWindow::new(4, 8);
        for _ in 0..4 {
            w.take_next();
        }
        // Frames 1 and 2 arrive out of order; 0 is missing.
        assert!(w.mark_acked(1));
        assert!(w.mark_acked(2));
        assert!(!w.mark_acked(2), "re-sack is not news");
        assert_eq!(w.una(), 0, "left edge holds at the hole");
        // The hole fills: una jumps past the sacked run in one step.
        w.on_cum_ack(1);
        assert_eq!(w.una(), 3);
    }

    #[test]
    fn dup_acks_count_and_reset_on_advance() {
        let mut w = SendWindow::new(4, 8);
        for _ in 0..4 {
            w.take_next();
        }
        assert_eq!(w.dup_ack(), 1);
        assert_eq!(w.dup_ack(), 2);
        assert_eq!(w.dup_ack(), 3);
        w.on_cum_ack(2);
        assert_eq!(w.dup_acks(), 0, "window advance clears the count");
        // A cumulative ack that does not advance leaves the count alone.
        w.dup_ack();
        w.on_cum_ack(2);
        assert_eq!(w.dup_acks(), 1);
    }

    #[test]
    fn done_when_every_frame_acked() {
        let mut w = SendWindow::new(2, 3);
        w.take_next();
        w.take_next();
        w.on_cum_ack(2);
        w.take_next();
        assert!(!w.done());
        w.mark_acked(2);
        assert!(w.done());
        assert_eq!(w.una(), 3);
    }
}
