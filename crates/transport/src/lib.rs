//! # hni-transport — closed-loop reliable transport over AAL5
//!
//! The paper's host interface ends at reassembled frames; everything
//! above it in the experiments so far has been **open loop** — offered
//! load in, deliveries and discards out, no feedback. This crate closes
//! the loop: a windowed, retransmitting transport running over the same
//! simulated receive interface, so the discard policies (drop-tail,
//! EPD, PPD) can be measured where they actually matter — in the
//! steady state a feedback loop settles into, not in a single pass.
//!
//! Three pieces:
//!
//! * [`SendWindow`] — per-VC sliding window over frame sequence
//!   numbers, with cumulative + selective acknowledgement and
//!   duplicate-ack counting;
//! * [`RtoEstimator`] — adaptive retransmission timeout: Jacobson
//!   SRTT/RTTVAR, Karn's rule (retransmitted frames never produce RTT
//!   samples), capped exponential backoff;
//! * [`run_transport`] and friends — the closed-loop simulator itself,
//!   driven off the cell-slot clock of a [`hni_sonet::LineRate`], with
//!   deterministic fault injection and propagation-delay models from
//!   `hni-faults` on both the forward and reverse paths.
//!
//! Determinism is load-bearing: the whole closed loop — fault fates,
//! jitter, timer interleavings — reproduces byte-identically from one
//! seed, and a faultless, jitterless run draws zero random values.

pub mod rto;
pub mod sim;
pub mod window;

pub use rto::{RtoConfig, RtoEstimator};
pub use sim::{
    run_transport, run_transport_full, run_transport_instrumented, TransportConfig, TransportReport,
};
pub use window::SendWindow;
