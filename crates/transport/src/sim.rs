//! The closed-loop simulator: windowed AAL5 transfer with
//! retransmission over the receive-side machinery of `hni-core`.
//!
//! `n_vcs` connections each push `frames_per_vc` AAL5 frames through a
//! shared cell-slot-clocked link into one receive interface. The
//! receive side is the real thing: cells land in an
//! [`hni_core::BufferPool`] under the configured
//! [`DiscardPolicy`] (drop-tail / EPD / PPD),
//! every cell reconciles into exactly one [`CellLedger`] fate, and the
//! same telemetry spans and profiler charges fire for a retransmitted
//! cell as for a first transmission. What is *new* relative to
//! `rxsim`'s open loop is the feedback path: completed frames generate
//! ack cells on a reverse VC (cumulative + 64-bit selective-ack
//! bitmap), and the sender runs a sliding window per VC with an
//! adaptive retransmission timer ([`RtoEstimator`]) — Jacobson
//! estimation, Karn's rule, capped exponential backoff, and
//! fast retransmit on duplicate acks.
//!
//! ## Determinism
//!
//! Four private RNG streams (forward faults, reverse faults, forward
//! jitter, reverse jitter) derive from the one config seed; ties in the
//! event queue break FIFO. Reports are byte-identical across reruns,
//! and with `FaultPlan::NONE` and jitterless delay models a run draws
//! **zero** random values ([`TransportReport::rng_draws`]).
//!
//! ## Abstractions
//!
//! Relative to `rxsim` the receive interface is simplified where
//! closed-loop dynamics do not care: cells are processed at arrival
//! (no input-FIFO or engine-instruction queueing) and delivered frames
//! skip the bus-burst model. At WAN and satellite scales the round
//! trip dominates those microseconds by three to six orders of
//! magnitude; the buffer pool — the resource the discard policies
//! govern — is modelled exactly.

use std::collections::VecDeque;

use hni_aal::AalType;
use hni_core::bufpool::{BufferPool, ChainKey, PoolConfig, PoolError};
use hni_core::rxsim::CellLedger;
use hni_core::DiscardPolicy;
use hni_faults::{DelayLine, DelayModel, FaultInjector, FaultPlan};
use hni_sim::{Duration, EventQueue, Time};
use hni_sonet::LineRate;
use hni_telemetry::{
    Activity, Component, HdrHist, NullProfiler, NullTracer, Profiler, Stage, TailReservoir,
    TraceEvent, Tracer, VcMetrics,
};

use crate::rto::{RtoConfig, RtoEstimator};
use crate::window::SendWindow;

/// Bits in one cell on the wire (53 octets).
const CELL_BITS: u64 = 424;

/// Everything a closed-loop run needs to be reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransportConfig {
    /// Line rate of the (shared) forward link.
    pub rate: LineRate,
    /// Concurrent connections.
    pub n_vcs: usize,
    /// Frames each connection must deliver.
    pub frames_per_vc: usize,
    /// SDU octets per frame (AAL5: +8 trailer octets, padded to 48).
    pub frame_len: usize,
    /// Sliding-window size, in frames in flight per VC.
    pub window: usize,
    /// Receive-side reassembly pool.
    pub pool: PoolConfig,
    /// Receive-side discard policy.
    pub policy: DiscardPolicy,
    /// Fault plan applied to forward (data) cells.
    pub fwd_plan: FaultPlan,
    /// Fault plan applied to reverse (ack) cells.
    pub rev_plan: FaultPlan,
    /// Propagation delay of the forward path.
    pub fwd_delay: DelayModel,
    /// Propagation delay of the reverse path.
    pub rev_delay: DelayModel,
    /// Retransmission-timer policy.
    pub rto: RtoConfig,
    /// Duplicate cumulative acks that trigger a fast retransmit.
    pub dupack_threshold: u32,
    /// Transmissions per frame before the sender gives up on it.
    pub max_attempts: u32,
    /// Receive-side reassembly-expiry timeout (idle chains are purged).
    pub reassembly_timeout: Duration,
    /// Hard stop: a run past this simulated time is cut off (and
    /// reported as not completed) rather than allowed to livelock.
    pub max_sim_time: Duration,
    /// Phase offset between VC start times: VC `v` may not transmit
    /// before `v × start_stagger`. Zero (the default) starts every VC
    /// in lockstep — which synchronises every frame boundary and makes
    /// occupancy at admission instants unrepresentative, the same
    /// pathology R-R1's staggered workload avoids open loop.
    pub start_stagger: Duration,
    /// Master seed; the four internal RNG streams derive from it.
    pub seed: u64,
}

impl TransportConfig {
    /// Paper-flavoured defaults on a zero-length path: OC-12-class
    /// pool (256 × 32-cell buffers), drop-tail, 4 VCs × 16 frames of
    /// 1536 octets, window 4, no faults, no propagation delay.
    pub fn paper(rate: LineRate) -> Self {
        TransportConfig {
            rate,
            n_vcs: 4,
            frames_per_vc: 16,
            frame_len: 1536,
            window: 4,
            pool: PoolConfig {
                total_buffers: 256,
                cells_per_buffer: 32,
            },
            policy: DiscardPolicy::DropTail,
            fwd_plan: FaultPlan::NONE,
            rev_plan: FaultPlan::NONE,
            fwd_delay: DelayModel::NONE,
            rev_delay: DelayModel::NONE,
            rto: RtoConfig::DEFAULT,
            dupack_threshold: 3,
            max_attempts: 10,
            reassembly_timeout: Duration::from_ms(10),
            max_sim_time: Duration::from_s(120),
            start_stagger: Duration::ZERO,
            seed: 11,
        }
    }

    /// AAL5 cells per frame under this configuration.
    pub fn cells_per_frame(&self) -> u32 {
        AalType::Aal5.cells_for_sdu(self.frame_len) as u32
    }

    /// Put the transfer on a path: both directions get `path`, and the
    /// RTO policy and reassembly timeout are retuned to the path's
    /// worst-case RTT plus the serialization time of one window's worth
    /// of every VC's frames (the LAN regime, where serialization — not
    /// propagation — sets the RTT).
    pub fn with_path(mut self, path: DelayModel) -> Self {
        self.fwd_delay = path;
        self.rev_delay = path;
        let serial = self
            .rate
            .cell_slot_time()
            .times(self.cells_per_frame() as u64 * self.n_vcs as u64 * self.window as u64);
        let rtt = path.max_delay().times(2) + serial;
        self.rto = RtoConfig::for_rtt(rtt);
        self.reassembly_timeout = rtt.max(Duration::from_ms(10));
        self
    }

    fn validate(&self) {
        assert!(self.n_vcs >= 1, "need at least one VC");
        assert!(self.frames_per_vc >= 1, "need at least one frame");
        assert!(self.frame_len >= 1, "empty frames carry nothing");
        assert!(self.window >= 1, "window of zero frames can never send");
        assert!(self.max_attempts >= 1, "frames need at least one attempt");
        assert!(
            self.reassembly_timeout > Duration::ZERO,
            "closed-loop runs need the expiry timer: lost tails would pin \
             pool buffers forever"
        );
        self.fwd_plan.validate();
        self.rev_plan.validate();
    }
}

/// What one closed-loop run did, sender and receiver sides together.
#[derive(Clone, Debug)]
pub struct TransportReport {
    /// Frames the sender was asked to deliver (`n_vcs × frames_per_vc`).
    pub offered_frames: u64,
    /// Frames the sender saw acknowledged (cumulative or selective).
    pub acked_frames: u64,
    /// Frames the sender gave up on after `max_attempts`.
    pub abandoned_frames: u64,
    /// Unique frames the receiver delivered to the host.
    pub delivered_frames: u64,
    /// Intact completions for frames an earlier copy had delivered.
    pub duplicate_frames: u64,
    /// Frame transmissions, first attempts included.
    pub attempts: u64,
    /// Transmissions beyond each frame's first (the recovery load).
    pub retransmits: u64,
    /// Retransmission-timer expiries that took action.
    pub timeouts: u64,
    /// Fast retransmits triggered by duplicate acks.
    pub fast_retransmits: u64,
    /// RTT samples fed to the estimators (Karn-filtered).
    pub rtt_samples: u64,
    /// Mean of the final per-VC smoothed RTTs, in µs (0 if unsampled).
    pub srtt_us: f64,
    /// Unique delivered SDU octets.
    pub delivered_octets: u64,
    /// Unique delivered SDU bits over the whole run span.
    pub goodput_bps: f64,
    /// `retransmits / attempts` — the retransmission rate.
    pub retx_rate: f64,
    /// Ack cells the receiver emitted.
    pub acks_sent: u64,
    /// Ack cells the reverse path destroyed (lost or corrupted).
    pub acks_lost: u64,
    /// Time of the last unique delivery.
    pub finished_at: Time,
    /// Time of the last processed event.
    pub run_end: Time,
    /// Every flow finished (acked or abandoned) before `max_sim_time`.
    pub completed: bool,
    /// Random values drawn across all four streams (0 on the clean,
    /// jitterless path).
    pub rng_draws: u64,
    /// Latency of unique deliveries, first transmission to delivery.
    pub frame_latency: HdrHist,
    /// Always-on exemplar reservoir over the same latencies.
    pub tail: TailReservoir,
    /// Always-on per-VC cell accounting at the receive interface.
    pub vc_cells: VcMetrics,
    /// Per-cell conservation ledger, retransmit provenance included.
    pub ledger: CellLedger,
}

/// One frame transmission in flight toward the receiver.
struct Attempt {
    vc: u32,
    seq: u32,
    cells: u32,
    seen: u32,
    retained: u32,
    started: bool,
    corrupt: bool,
    doomed: bool,
    resolved: bool,
    last_activity: Time,
}

#[derive(Clone, Copy, Debug, Default)]
struct FrameState {
    attempts: u32,
    first_sent: Time,
    /// Fully sent at least once and not yet acked/abandoned.
    outstanding: bool,
    retx_pending: bool,
    abandoned: bool,
}

struct CurTx {
    seq: usize,
    attempt: u32,
    next_cell: u32,
    retx: bool,
}

struct Flow {
    window: SendWindow,
    rto: RtoEstimator,
    frames: Vec<FrameState>,
    retx_q: VecDeque<usize>,
    cur: Option<CurTx>,
    timer_epoch: u32,
    timer_armed: bool,
    // Receiver side of the same connection.
    rcv_nxt: usize,
    delivered: Vec<bool>,
}

enum Ev {
    /// One transmit cell slot on the shared forward link.
    TxSlot,
    /// A data cell reaches the receive interface.
    Data {
        attempt: u32,
        cell: u32,
        is_last: bool,
        corrupted: bool,
    },
    /// An ack cell reaches the sender.
    Ack { vc: u32, cum: u32, sack: u64 },
    /// Per-VC retransmission-timer check.
    Timer { vc: u32, epoch: u32 },
    /// A staggered VC becomes eligible: poke the transmit clock.
    Kick,
    /// Receive-side reassembly-expiry sweep.
    Expire,
}

struct Stats {
    acked_frames: u64,
    abandoned_frames: u64,
    delivered_frames: u64,
    duplicate_frames: u64,
    attempts: u64,
    retransmits: u64,
    timeouts: u64,
    fast_retransmits: u64,
    rtt_samples: u64,
    delivered_octets: u64,
    acks_sent: u64,
    acks_lost: u64,
}

struct Sim {
    cfg: TransportConfig,
    slot: Duration,
    cells_per_frame: u32,
    q: EventQueue<Ev>,
    flows: Vec<Flow>,
    attempts: Vec<Attempt>,
    pool: BufferPool,
    fwd_inj: FaultInjector,
    rev_inj: FaultInjector,
    fwd_delay: DelayLine,
    rev_delay: DelayLine,
    ledger: CellLedger,
    stats: Stats,
    rr: usize,
    link_free: Time,
    fwd_horizon: Time,
    rev_horizon: Time,
    tx_scheduled: bool,
    tick_pending: bool,
    expire_floor: usize,
    last_event: Time,
    finished_at: Time,
    frame_latency: HdrHist,
    tail: TailReservoir,
    vc_cells: VcMetrics,
}

/// Run the closed loop with telemetry and profiling off.
pub fn run_transport(cfg: &TransportConfig) -> TransportReport {
    run_transport_full(cfg, &mut NullTracer, &mut NullProfiler)
}

/// Run the closed loop with a tracer attached (profiling off).
pub fn run_transport_instrumented<T: Tracer>(
    cfg: &TransportConfig,
    tracer: &mut T,
) -> TransportReport {
    run_transport_full(cfg, tracer, &mut NullProfiler)
}

/// Run the closed loop with both a tracer and a profiler attached. The
/// receive side charges the same components (`RxLink`, `RxPool`) and
/// emits the same stages a first transmission would in `rxsim` — a
/// retransmitted cell is indistinguishable on the telemetry plane.
pub fn run_transport_full<T: Tracer, P: Profiler>(
    cfg: &TransportConfig,
    tracer: &mut T,
    profiler: &mut P,
) -> TransportReport {
    cfg.validate();
    let mut sim = Sim::new(cfg);
    sim.run(tracer, profiler)
}

impl Sim {
    fn new(cfg: &TransportConfig) -> Self {
        let flows = (0..cfg.n_vcs)
            .map(|_| Flow {
                window: SendWindow::new(cfg.window, cfg.frames_per_vc),
                rto: RtoEstimator::new(cfg.rto),
                frames: vec![FrameState::default(); cfg.frames_per_vc],
                retx_q: VecDeque::new(),
                cur: None,
                timer_epoch: 0,
                timer_armed: false,
                rcv_nxt: 0,
                delivered: vec![false; cfg.frames_per_vc],
            })
            .collect();
        Sim {
            cfg: *cfg,
            slot: cfg.rate.cell_slot_time(),
            cells_per_frame: cfg.cells_per_frame(),
            q: EventQueue::new(),
            flows,
            attempts: Vec::new(),
            pool: BufferPool::with_policy(cfg.pool, cfg.policy),
            fwd_inj: FaultInjector::seeded(cfg.fwd_plan, cfg.seed ^ 0x7A11_DA7A_0000_0001),
            rev_inj: FaultInjector::seeded(cfg.rev_plan, cfg.seed ^ 0x7A11_ACC5_0000_0002),
            fwd_delay: DelayLine::seeded(cfg.fwd_delay, cfg.seed ^ 0x7A11_DE1A_0000_0003),
            rev_delay: DelayLine::seeded(cfg.rev_delay, cfg.seed ^ 0x7A11_DE1A_0000_0004),
            ledger: CellLedger::default(),
            stats: Stats {
                acked_frames: 0,
                abandoned_frames: 0,
                delivered_frames: 0,
                duplicate_frames: 0,
                attempts: 0,
                retransmits: 0,
                timeouts: 0,
                fast_retransmits: 0,
                rtt_samples: 0,
                delivered_octets: 0,
                acks_sent: 0,
                acks_lost: 0,
            },
            rr: 0,
            link_free: Time::ZERO,
            fwd_horizon: Time::ZERO,
            rev_horizon: Time::ZERO,
            tx_scheduled: false,
            tick_pending: false,
            expire_floor: 0,
            last_event: Time::ZERO,
            finished_at: Time::ZERO,
            frame_latency: HdrHist::new(),
            tail: TailReservoir::paper(),
            vc_cells: VcMetrics::new(),
        }
    }

    fn run<T: Tracer, P: Profiler>(&mut self, tracer: &mut T, profiler: &mut P) -> TransportReport {
        self.q.schedule(Time::ZERO, Ev::TxSlot);
        self.tx_scheduled = true;
        if self.cfg.start_stagger > Duration::ZERO {
            for vc in 1..self.cfg.n_vcs {
                self.q.schedule(self.vc_start(vc), Ev::Kick);
            }
        }
        let cap = Time::ZERO + self.cfg.max_sim_time;
        let mut overran = false;
        while let Some((now, ev)) = self.q.pop() {
            if now > cap {
                // Hard stop: anything still on the wire is abandoned in
                // flight so the ledger stays exact.
                overran = true;
                if let Ev::Data { .. } = ev {
                    self.ledger.discarded_abandoned += 1;
                }
                while let Some((_, ev)) = self.q.pop() {
                    if let Ev::Data { .. } = ev {
                        self.ledger.discarded_abandoned += 1;
                    }
                }
                break;
            }
            match ev {
                Ev::TxSlot => {
                    self.last_event = now;
                    self.on_tx_slot(now)
                }
                Ev::Data {
                    attempt,
                    cell,
                    is_last,
                    corrupted,
                } => {
                    self.last_event = now;
                    self.on_data(now, attempt, cell, is_last, corrupted, tracer, profiler)
                }
                Ev::Ack { vc, cum, sack } => {
                    self.last_event = now;
                    self.on_ack(now, vc as usize, cum as usize, sack)
                }
                Ev::Timer { vc, epoch } => {
                    // A superseded timer pop is a no-op; it must not
                    // stretch the reported run span.
                    if epoch == self.flows[vc as usize].timer_epoch {
                        self.last_event = now;
                    }
                    self.on_timer(now, vc as usize, epoch)
                }
                Ev::Expire => {
                    self.last_event = now;
                    self.on_expire(now, tracer, profiler)
                }
                Ev::Kick => {
                    self.last_event = now;
                    self.kick_tx(now)
                }
            }
        }
        // Whatever never resolved still owes a fate for its stored cells.
        for at in &mut self.attempts {
            if !at.resolved && at.retained > 0 {
                self.ledger.discarded_abandoned += at.retained as u64;
                at.retained = 0;
            }
        }
        let completed = !overran && self.flows.iter().all(|f| f.window.done());
        let offered = (self.cfg.n_vcs * self.cfg.frames_per_vc) as u64;
        let span_s = self.last_event.as_s_f64();
        let goodput = if span_s > 0.0 {
            self.stats.delivered_octets as f64 * 8.0 / span_s
        } else {
            0.0
        };
        let retx_rate = if self.stats.attempts > 0 {
            self.stats.retransmits as f64 / self.stats.attempts as f64
        } else {
            0.0
        };
        let sampled: Vec<f64> = self
            .flows
            .iter()
            .filter_map(|f| f.rto.srtt().map(|d| d.as_us_f64()))
            .collect();
        let srtt_us = if sampled.is_empty() {
            0.0
        } else {
            sampled.iter().sum::<f64>() / sampled.len() as f64
        };
        TransportReport {
            offered_frames: offered,
            acked_frames: self.stats.acked_frames,
            abandoned_frames: self.stats.abandoned_frames,
            delivered_frames: self.stats.delivered_frames,
            duplicate_frames: self.stats.duplicate_frames,
            attempts: self.stats.attempts,
            retransmits: self.stats.retransmits,
            timeouts: self.stats.timeouts,
            fast_retransmits: self.stats.fast_retransmits,
            rtt_samples: self.stats.rtt_samples,
            srtt_us,
            delivered_octets: self.stats.delivered_octets,
            goodput_bps: goodput,
            retx_rate,
            acks_sent: self.stats.acks_sent,
            acks_lost: self.stats.acks_lost,
            finished_at: self.finished_at,
            run_end: self.last_event,
            completed,
            rng_draws: self.fwd_inj.rng_draws()
                + self.rev_inj.rng_draws()
                + self.fwd_delay.rng_draws()
                + self.rev_delay.rng_draws(),
            frame_latency: self.frame_latency.clone(),
            tail: self.tail.clone(),
            vc_cells: self.vc_cells.clone(),
            ledger: self.ledger,
        }
    }

    // ---- sender side ----------------------------------------------

    /// When VC `vc` becomes eligible to transmit.
    fn vc_start(&self, vc: usize) -> Time {
        Time::ZERO + self.cfg.start_stagger.times(vc as u64)
    }

    /// Does `vc` have a cell it could put on the wire right now?
    /// Lazily drops retransmission-queue heads that got acknowledged
    /// (or abandoned) while queued.
    fn flow_sendable(&mut self, now: Time, vc: usize) -> bool {
        if now < self.vc_start(vc) {
            return false;
        }
        let f = &mut self.flows[vc];
        if f.cur.is_some() || f.window.can_send_new() {
            return true;
        }
        while let Some(&s) = f.retx_q.front() {
            if f.window.is_acked(s) {
                f.frames[s].retx_pending = false;
                f.retx_q.pop_front();
            } else {
                return true;
            }
        }
        false
    }

    fn any_sendable(&mut self, now: Time) -> bool {
        (0..self.cfg.n_vcs).any(|vc| self.flow_sendable(now, vc))
    }

    /// Re-arm the transmit clock after new work appeared (ack opened
    /// the window, timer queued a retransmission).
    fn kick_tx(&mut self, now: Time) {
        if !self.tx_scheduled && self.any_sendable(now) {
            let at = self.link_free.max(now);
            self.q.schedule(at, Ev::TxSlot);
            self.tx_scheduled = true;
        }
    }

    fn on_tx_slot(&mut self, now: Time) {
        let n = self.cfg.n_vcs;
        let mut served = false;
        for k in 0..n {
            let vc = (self.rr + k) % n;
            if self.flow_sendable(now, vc) {
                self.rr = (vc + 1) % n;
                self.emit_cell(now, vc);
                served = true;
                break;
            }
        }
        self.link_free = now + self.slot;
        if served && self.any_sendable(now) {
            self.q.schedule(self.link_free, Ev::TxSlot);
        } else {
            self.tx_scheduled = false;
        }
    }

    /// Put one cell of `vc`'s current (or next) frame attempt on the
    /// wire, running it through the forward fault plan and delay line.
    fn emit_cell(&mut self, now: Time, vc: usize) {
        let cells = self.cells_per_frame;
        let f = &mut self.flows[vc];
        if f.cur.is_none() {
            // Recovery outranks new data.
            let (seq, retx) = loop {
                match f.retx_q.front().copied() {
                    Some(s) if f.window.is_acked(s) => {
                        f.frames[s].retx_pending = false;
                        f.retx_q.pop_front();
                    }
                    Some(s) => {
                        f.frames[s].retx_pending = false;
                        f.retx_q.pop_front();
                        break (s, true);
                    }
                    None => {
                        let s = f.window.take_next();
                        f.frames[s].first_sent = now;
                        break (s, false);
                    }
                }
            };
            f.frames[seq].attempts += 1;
            f.frames[seq].outstanding = false;
            let attempt = self.attempts.len() as u32;
            self.attempts.push(Attempt {
                vc: vc as u32,
                seq: seq as u32,
                cells,
                seen: 0,
                retained: 0,
                started: false,
                corrupt: false,
                doomed: false,
                resolved: false,
                last_activity: now,
            });
            self.stats.attempts += 1;
            if retx {
                self.stats.retransmits += 1;
            }
            f.cur = Some(CurTx {
                seq,
                attempt,
                next_cell: 0,
                retx,
            });
        }
        let cur = f.cur.as_mut().expect("attempt just started");
        let cell = cur.next_cell;
        cur.next_cell += 1;
        let is_last = cur.next_cell == cells;
        let attempt = cur.attempt;
        let retx = cur.retx;
        let seq = cur.seq;
        if is_last {
            f.cur = None;
        }
        self.ledger.injected += 1;
        if retx {
            self.ledger.injected_retx += 1;
        }
        let fate = self.fwd_inj.fate(CELL_BITS);
        if fate.lost {
            self.ledger.dropped_link += 1;
        } else {
            let corrupted = !fate.flipped_bits.is_empty();
            // Jitter varies per-cell delay, but the wire is FIFO: an
            // ATM link never reorders cells, so each arrival is clamped
            // behind the previous one (jitter then models queueing
            // ahead). Displacement is a *fault* and deliberately lands
            // after the clamp, so it still reorders.
            let mut arrive = now + self.slot + self.fwd_delay.delay();
            arrive = arrive.max(self.fwd_horizon);
            self.fwd_horizon = arrive;
            arrive += self.slot.times(fate.displaced as u64);
            self.q.schedule(
                arrive,
                Ev::Data {
                    attempt,
                    cell,
                    is_last,
                    corrupted,
                },
            );
            if fate.duplicated {
                // The wire made a copy: it owes its own fate, arrives
                // one slot later and is never the frame's end (the
                // inflated cell count is validation's problem).
                self.ledger.injected += 1;
                if retx {
                    self.ledger.injected_retx += 1;
                }
                self.q.schedule(
                    arrive + self.slot,
                    Ev::Data {
                        attempt,
                        cell,
                        is_last: false,
                        corrupted,
                    },
                );
            }
        }
        if is_last {
            self.flows[vc].frames[seq].outstanding = true;
            if !self.flows[vc].timer_armed {
                self.arm_timer(now, vc);
            }
        }
    }

    fn arm_timer(&mut self, now: Time, vc: usize) {
        let f = &mut self.flows[vc];
        f.timer_epoch = f.timer_epoch.wrapping_add(1);
        f.timer_armed = true;
        let at = now + f.rto.rto();
        self.q.schedule(
            at,
            Ev::Timer {
                vc: vc as u32,
                epoch: f.timer_epoch,
            },
        );
    }

    fn on_timer(&mut self, now: Time, vc: usize, epoch: u32) {
        {
            let f = &mut self.flows[vc];
            if epoch != f.timer_epoch {
                return; // superseded by a restart
            }
            f.timer_armed = false;
            if f.window.done() {
                return;
            }
        }
        let una = self.flows[vc].window.una();
        let in_flight = una < self.flows[vc].window.next_seq();
        if in_flight {
            let fire = {
                let fr = &self.flows[vc].frames[una];
                fr.outstanding && !fr.retx_pending
            };
            if fire {
                self.stats.timeouts += 1;
                let f = &mut self.flows[vc];
                if f.frames[una].attempts >= self.cfg.max_attempts {
                    // Give up: the frame is lost to the application,
                    // the transfer moves on from the base RTO.
                    f.frames[una].abandoned = true;
                    f.frames[una].outstanding = false;
                    f.window.mark_acked(una);
                    self.stats.abandoned_frames += 1;
                    f.rto.on_cumulative_ack();
                } else {
                    f.frames[una].retx_pending = true;
                    f.retx_q.push_back(una);
                    f.rto.back_off();
                }
            }
            if !self.flows[vc].window.done() {
                self.arm_timer(now, vc);
            }
            self.kick_tx(now);
        }
    }

    fn on_ack(&mut self, now: Time, vc: usize, cum: usize, sack: u64) {
        let total = self.cfg.frames_per_vc;
        if self.flows[vc].window.done() {
            return;
        }
        let old_una = self.flows[vc].window.una();
        let advanced = cum > old_una;
        if advanced {
            // Newly covered frames: count them and pick the freshest
            // Karn-eligible RTT sample (transmitted exactly once).
            let mut sample = None;
            {
                let f = &mut self.flows[vc];
                for seq in old_una..cum.min(total) {
                    if !f.window.is_acked(seq) {
                        self.stats.acked_frames += 1;
                        f.frames[seq].outstanding = false;
                        if f.frames[seq].attempts == 1 {
                            sample = Some(now.saturating_since(f.frames[seq].first_sent));
                        }
                    }
                }
                f.window.on_cum_ack(cum);
                if let Some(rtt) = sample {
                    f.rto.sample(rtt);
                }
                f.rto.on_cumulative_ack();
            }
            if sample.is_some() {
                self.stats.rtt_samples += 1;
            }
            // Progress: restart the timer for the new oldest frame.
            if !self.flows[vc].window.done()
                && self.flows[vc].window.una() < self.flows[vc].window.next_seq()
            {
                self.arm_timer(now, vc);
            } else {
                // Nothing outstanding: quiesce (stale timers are
                // invalidated by the epoch bump).
                self.flows[vc].timer_epoch = self.flows[vc].timer_epoch.wrapping_add(1);
                self.flows[vc].timer_armed = false;
            }
        }
        // Selective acks sit above the cumulative edge.
        for i in 0..64u32 {
            if sack & (1u64 << i) != 0 {
                let seq = cum + 1 + i as usize;
                if seq < total && !self.flows[vc].window.is_acked(seq) {
                    self.flows[vc].window.mark_acked(seq);
                    self.flows[vc].frames[seq].outstanding = false;
                    self.stats.acked_frames += 1;
                }
            }
        }
        if !advanced && cum == self.flows[vc].window.una() {
            // Duplicate cumulative ack for the current hole.
            let count = self.flows[vc].window.dup_ack();
            if count == self.cfg.dupack_threshold {
                let una = self.flows[vc].window.una();
                let eligible = {
                    let fr = &self.flows[vc].frames[una];
                    una < total
                        && fr.outstanding
                        && !fr.retx_pending
                        && fr.attempts < self.cfg.max_attempts
                };
                if eligible {
                    let f = &mut self.flows[vc];
                    f.frames[una].retx_pending = true;
                    f.retx_q.push_back(una);
                    f.window.reset_dup_acks();
                    self.stats.fast_retransmits += 1;
                }
            }
        }
        self.kick_tx(now);
    }

    // ---- receiver side --------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn on_data<T: Tracer, P: Profiler>(
        &mut self,
        now: Time,
        attempt: u32,
        cell: u32,
        is_last: bool,
        corrupted: bool,
        tracer: &mut T,
        profiler: &mut P,
    ) {
        let ai = attempt as usize;
        let conn = self.attempts[ai].vc;
        let gidx = self.frame_id(ai);
        // Always-on per-VC accounting at the wire, as in `rxsim`.
        self.vc_cells.record_cell(conn, 53);
        if profiler.enabled() {
            let from = Time::from_ps(now.as_ps().saturating_sub(self.slot.as_ps()));
            profiler.charge(Component::RxLink, Activity::Transfer, from, self.slot);
        }
        if tracer.enabled() {
            tracer.record(
                TraceEvent::instant(now, Stage::RxCellArrive)
                    .vc(conn)
                    .pkt(gidx)
                    .cell(cell as u64),
            );
        }
        if self.attempts[ai].resolved {
            // Straggler for an attempt already resolved (late reordered
            // copy, duplicate, or a tail behind an expired chain).
            self.ledger.discarded_stale += 1;
            if tracer.enabled() {
                tracer.record(
                    TraceEvent::instant(now, Stage::RxStaleDiscard)
                        .vc(conn)
                        .pkt(gidx)
                        .cell(cell as u64)
                        .arg(1),
                );
            }
            return;
        }
        let starts_frame = {
            let at = &mut self.attempts[ai];
            let starts = !at.started;
            at.started = true;
            at.last_activity = now;
            at.seen += 1;
            if corrupted {
                at.corrupt = true;
            }
            starts
        };
        if starts_frame && !self.tick_pending {
            self.q
                .schedule(now + self.cfg.reassembly_timeout, Ev::Expire);
            self.tick_pending = true;
        }
        match self.pool.admit(attempt as ChainKey, starts_frame) {
            Err(why @ (PoolError::EarlyDiscard | PoolError::PartialDiscard)) => {
                let stage = if why == PoolError::EarlyDiscard {
                    self.ledger.discarded_epd += 1;
                    Stage::RxEpdDiscard
                } else {
                    self.ledger.discarded_ppd += 1;
                    Stage::RxPpdDiscard
                };
                self.attempts[ai].doomed = true;
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, stage)
                            .vc(conn)
                            .pkt(gidx)
                            .cell(cell as u64)
                            .arg(1),
                    );
                }
                if is_last {
                    // The frame's end came and went unseen: it can
                    // never validate. No ack — the sender's timer or
                    // later dup acks recover it.
                    self.resolve_failed(now, ai, profiler);
                }
            }
            // `admit` never reports Exhausted; drop-tail pressure shows
            // up at append time instead.
            Ok(()) | Err(PoolError::Exhausted) => {
                let result = self.pool.append_cell(now, attempt as ChainKey);
                let mut ppd_charge = 0u64;
                match result {
                    Ok(()) => self.attempts[ai].retained += 1,
                    Err(PoolError::Exhausted) => {
                        self.ledger.dropped_pool += 1;
                        self.attempts[ai].doomed = true;
                    }
                    Err(PoolError::PartialDiscard) => {
                        // On the triggering cell PPD reclaims the whole
                        // stored chain; the follow-ups cost one each.
                        let at = &mut self.attempts[ai];
                        ppd_charge = at.retained as u64 + 1;
                        self.ledger.discarded_ppd += ppd_charge;
                        at.retained = 0;
                        at.doomed = true;
                    }
                    Err(PoolError::EarlyDiscard) => {
                        self.ledger.discarded_epd += 1;
                        self.attempts[ai].doomed = true;
                    }
                }
                if profiler.enabled() {
                    profiler.gauge(Component::RxPool, now, self.pool.in_use() as u64);
                }
                if tracer.enabled() {
                    let (stage, arg) = match result {
                        Ok(()) => (Stage::RxReasmAppend, self.attempts[ai].seen as u64),
                        Err(PoolError::Exhausted) => {
                            (Stage::RxPoolDrop, self.attempts[ai].seen as u64)
                        }
                        Err(PoolError::PartialDiscard) => (Stage::RxPpdDiscard, ppd_charge),
                        Err(PoolError::EarlyDiscard) => (Stage::RxEpdDiscard, 1),
                    };
                    tracer.record(TraceEvent::instant(now, stage).vc(conn).pkt(gidx).arg(arg));
                }
                if is_last {
                    if self.attempts[ai].doomed {
                        // Abandon: free whatever was chained.
                        self.ledger.discarded_abandoned += self.attempts[ai].retained as u64;
                        self.attempts[ai].retained = 0;
                        self.resolve_failed(now, ai, profiler);
                    } else if self.attempts[ai].corrupt
                        || self.attempts[ai].seen != self.attempts[ai].cells
                    {
                        // The CRC-32 catch-all: damaged payload, or a
                        // cell count the length field contradicts.
                        let retained = self.attempts[ai].retained as u64;
                        self.ledger.discarded_crc += retained;
                        self.attempts[ai].retained = 0;
                        if tracer.enabled() {
                            tracer.record(
                                TraceEvent::instant(now, Stage::RxValidateFail)
                                    .vc(conn)
                                    .pkt(gidx)
                                    .arg(retained),
                            );
                        }
                        self.resolve_failed(now, ai, profiler);
                    } else {
                        self.complete_attempt(now, ai, tracer, profiler);
                    }
                }
            }
        }
    }

    /// Fail an attempt: release whatever it holds and mark it resolved.
    /// Callers must have moved `retained` into a ledger bucket first.
    fn resolve_failed<P: Profiler>(&mut self, now: Time, ai: usize, profiler: &mut P) {
        let freed = self.pool.release_chain(now, ai as ChainKey);
        if freed > 0 && profiler.enabled() {
            profiler.gauge(Component::RxPool, now, self.pool.in_use() as u64);
        }
        self.attempts[ai].resolved = true;
        self.attempts[ai].doomed = true;
    }

    /// An attempt reassembled and validated intact: deliver (or discard
    /// as superseded), then ack.
    fn complete_attempt<T: Tracer, P: Profiler>(
        &mut self,
        now: Time,
        ai: usize,
        tracer: &mut T,
        profiler: &mut P,
    ) {
        let conn = self.attempts[ai].vc;
        let gidx = self.frame_id(ai);
        self.pool.release_chain(now, ai as ChainKey);
        if profiler.enabled() {
            profiler.gauge(Component::RxPool, now, self.pool.in_use() as u64);
        }
        let retained = self.attempts[ai].retained as u64;
        self.attempts[ai].retained = 0;
        self.attempts[ai].resolved = true;
        if tracer.enabled() {
            tracer.record(
                TraceEvent::instant(now, Stage::RxReasmComplete)
                    .vc(conn)
                    .pkt(gidx)
                    .arg(self.attempts[ai].cells as u64),
            );
        }
        let vc = self.attempts[ai].vc as usize;
        let seq = self.attempts[ai].seq as usize;
        let f = &mut self.flows[vc];
        if f.delivered[seq] {
            // An earlier copy already reached the host: same cells,
            // second fate — the superseded bucket keeps it exact.
            self.ledger.discarded_superseded += retained;
            self.stats.duplicate_frames += 1;
        } else {
            f.delivered[seq] = true;
            while f.rcv_nxt < self.cfg.frames_per_vc && f.delivered[f.rcv_nxt] {
                f.rcv_nxt += 1;
            }
            self.ledger.delivered_cells += retained;
            self.stats.delivered_frames += 1;
            self.stats.delivered_octets += self.cfg.frame_len as u64;
            self.finished_at = now;
            let lat = now.saturating_since(f.frames[seq].first_sent);
            self.frame_latency.record_duration(lat);
            self.tail.record(conn, gidx as u32, lat, now);
            if tracer.enabled() {
                tracer.record(
                    TraceEvent::instant(now, Stage::CompletionPush)
                        .vc(conn)
                        .pkt(gidx)
                        .arg(self.cfg.frame_len as u64),
                );
            }
        }
        self.send_ack(now, vc);
    }

    /// Emit one ack cell on the reverse VC: cumulative edge plus a
    /// 64-frame selective-ack bitmap, through the reverse fault plan
    /// and delay line.
    fn send_ack(&mut self, now: Time, vc: usize) {
        let f = &self.flows[vc];
        let cum = f.rcv_nxt;
        let mut sack = 0u64;
        for i in 0..64usize {
            let s = cum + 1 + i;
            if s >= self.cfg.frames_per_vc {
                break;
            }
            if f.delivered[s] {
                sack |= 1u64 << i;
            }
        }
        self.stats.acks_sent += 1;
        let fate = self.rev_inj.fate(CELL_BITS);
        if fate.lost || !fate.flipped_bits.is_empty() {
            // A corrupted ack cell fails its checks at the sender and
            // is as good as lost.
            self.stats.acks_lost += 1;
            return;
        }
        let mut arrive = now + self.slot + self.rev_delay.delay();
        arrive = arrive.max(self.rev_horizon);
        self.rev_horizon = arrive;
        arrive += self.slot.times(fate.displaced as u64);
        let ev = Ev::Ack {
            vc: vc as u32,
            cum: cum as u32,
            sack,
        };
        self.q.schedule(arrive, ev);
        if fate.duplicated {
            self.q.schedule(
                arrive + self.slot,
                Ev::Ack {
                    vc: vc as u32,
                    cum: cum as u32,
                    sack,
                },
            );
        }
    }

    fn on_expire<T: Tracer, P: Profiler>(&mut self, now: Time, tracer: &mut T, profiler: &mut P) {
        let timeout = self.cfg.reassembly_timeout;
        let mut any_open = false;
        for ai in self.expire_floor..self.attempts.len() {
            if self.attempts[ai].resolved || !self.attempts[ai].started {
                continue;
            }
            if now.saturating_since(self.attempts[ai].last_activity) >= timeout {
                let retained = self.attempts[ai].retained as u64;
                self.ledger.discarded_expired += retained;
                self.attempts[ai].retained = 0;
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, Stage::RxReasmExpire)
                            .vc(self.attempts[ai].vc)
                            .pkt(self.frame_id(ai))
                            .arg(retained),
                    );
                }
                self.resolve_failed(now, ai, profiler);
            } else {
                any_open = true;
            }
        }
        while self.expire_floor < self.attempts.len()
            && (self.attempts[self.expire_floor].resolved
                || !self.attempts[self.expire_floor].started)
        {
            self.expire_floor += 1;
        }
        if any_open {
            self.q.schedule(now + timeout, Ev::Expire);
        } else {
            self.tick_pending = false;
        }
    }

    /// Stable frame identity for telemetry: global frame index.
    fn frame_id(&self, ai: usize) -> usize {
        let at = &self.attempts[ai];
        at.vc as usize * self.cfg.frames_per_vc + at.seq as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hni_faults::scenarios;

    fn small(rate: LineRate) -> TransportConfig {
        let mut cfg = TransportConfig::paper(rate);
        cfg.n_vcs = 2;
        cfg.frames_per_vc = 8;
        cfg.frame_len = 512;
        // Scale the RTO to the (zero-propagation) path so recovery is
        // ack-driven, not pinned to the LAN-default 10 ms initial RTO.
        cfg.with_path(DelayModel::NONE)
    }

    #[test]
    fn clean_run_delivers_everything_without_randomness() {
        let cfg = small(LineRate::Oc12);
        let rep = run_transport(&cfg);
        assert!(rep.completed);
        assert_eq!(rep.delivered_frames, rep.offered_frames);
        assert_eq!(rep.acked_frames, rep.offered_frames);
        assert_eq!(rep.abandoned_frames, 0);
        assert_eq!(rep.retransmits, 0, "nothing to recover on a clean path");
        assert_eq!(rep.timeouts, 0);
        assert_eq!(rep.rng_draws, 0, "clean jitterless path must be RNG-free");
        assert!(rep.ledger.reconciles(), "ledger: {:?}", rep.ledger);
        assert_eq!(rep.ledger.injected_retx, 0);
        assert!(rep.goodput_bps > 0.0);
        assert_eq!(rep.frame_latency.count(), rep.offered_frames);
    }

    #[test]
    fn lossy_path_recovers_by_retransmission() {
        let mut cfg = small(LineRate::Oc12);
        cfg.fwd_plan = FaultPlan::loss(0.02);
        cfg.seed = 7;
        let rep = run_transport(&cfg);
        assert!(rep.completed, "2% loss must not stall an 8-frame window");
        assert_eq!(
            rep.delivered_frames + rep.abandoned_frames,
            rep.offered_frames
        );
        assert!(rep.retransmits > 0, "loss with no recovery means no loop");
        assert!(rep.ledger.reconciles(), "ledger: {:?}", rep.ledger);
        assert!(rep.ledger.injected_retx > 0);
        assert!(rep.ledger.injected_retx <= rep.ledger.injected);
        assert!(rep.rng_draws > 0);
    }

    #[test]
    fn satellite_preset_survives_heavy_loss() {
        let mut cfg = small(LineRate::Oc3);
        cfg.window = 8;
        cfg.fwd_plan = FaultPlan::loss(0.10);
        cfg.rev_plan = FaultPlan::loss(0.10);
        cfg = cfg.with_path(scenarios::satellite_path());
        cfg.max_sim_time = Duration::from_s(600);
        cfg.seed = 42;
        let rep = run_transport(&cfg);
        assert!(rep.completed, "backoff must beat livelock at 10% loss");
        assert!(rep.delivered_frames > 0);
        assert!(rep.goodput_bps > 0.0);
        assert!(rep.ledger.reconciles(), "ledger: {:?}", rep.ledger);
        // The satellite path really is long: deliveries cannot beat the
        // one-way propagation delay.
        assert!(rep.finished_at.as_ps() > Duration::from_ms(280).as_ps());
    }

    #[test]
    fn reports_are_byte_identical_across_reruns() {
        let mut cfg = small(LineRate::Oc12);
        cfg.fwd_plan = FaultPlan::loss(0.05);
        cfg.rev_plan = FaultPlan::loss(0.01);
        cfg = cfg.with_path(scenarios::wan_path());
        cfg.seed = 1991;
        let a = run_transport(&cfg);
        let b = run_transport(&cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn duplicate_acks_trigger_exactly_at_threshold() {
        // Force a hole: heavy loss early in a deep window produces
        // out-of-order completions, whose acks repeat the cumulative
        // edge. The transport must fast-retransmit at the configured
        // duplicate count, not before.
        let mut cfg = small(LineRate::Oc12);
        cfg.n_vcs = 1;
        cfg.frames_per_vc = 64;
        cfg.window = 16;
        cfg.dupack_threshold = 3;
        cfg.fwd_plan = FaultPlan::loss(0.03);
        cfg.seed = 5;
        let rep = run_transport(&cfg);
        assert!(rep.completed);
        assert!(
            rep.fast_retransmits > 0,
            "a deep window over a lossy path must exercise fast retransmit: {rep:?}"
        );
        assert!(rep.ledger.reconciles());
    }

    #[test]
    fn abandonment_bounds_attempts_under_total_blackout() {
        // A dead forward path: every frame must be given up after
        // max_attempts, never retried forever.
        let mut cfg = small(LineRate::Oc12);
        cfg.n_vcs = 1;
        cfg.frames_per_vc = 2;
        cfg.fwd_plan = FaultPlan::loss(1.0);
        cfg.max_attempts = 4;
        let rep = run_transport(&cfg);
        assert!(rep.completed, "abandonment must terminate the transfer");
        assert_eq!(rep.delivered_frames, 0);
        assert_eq!(rep.abandoned_frames, rep.offered_frames);
        assert_eq!(rep.attempts, rep.offered_frames * 4);
        assert!(rep.ledger.reconciles(), "ledger: {:?}", rep.ledger);
        assert_eq!(rep.ledger.delivered_cells, 0);
        assert_eq!(rep.ledger.dropped_link, rep.ledger.injected);
    }

    #[test]
    fn karn_rule_keeps_samples_off_retransmitted_frames() {
        let mut cfg = small(LineRate::Oc12);
        cfg.fwd_plan = FaultPlan::loss(0.01);
        cfg.seed = 3;
        let rep = run_transport(&cfg);
        // Every sample comes from a single-attempt frame, so there can
        // be at most one per unique delivered frame.
        assert!(rep.rtt_samples <= rep.delivered_frames);
        assert!(rep.rtt_samples > 0, "clean frames must still be sampled");
    }
}
