//! Adaptive retransmission timer: Jacobson's SRTT/RTTVAR estimator with
//! Karn's rule and capped exponential backoff.
//!
//! The estimator is the textbook recipe, in integer picoseconds:
//!
//! * first sample: `SRTT = RTT`, `RTTVAR = RTT/2`;
//! * thereafter: `RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − RTT|`, then
//!   `SRTT = 7/8·SRTT + 1/8·RTT`;
//! * `RTO = clamp(SRTT + 4·RTTVAR, min, max)`, doubled per backoff
//!   step up to `2^max_backoff_exp` and never past `max`.
//!
//! **Karn's rule lives in the caller**: the estimator only ever sees
//! samples the transport took from frames transmitted exactly once
//! (`sample` must not be called for a retransmitted frame — an ack for
//! it is ambiguous about which copy it answers). What the estimator
//! owns is the other half of Karn's algorithm: the backed-off RTO is
//! *kept* for subsequent frames until an ack for a never-retransmitted
//! frame produces a fresh sample or a cumulative ack advances the
//! window ([`RtoEstimator::on_cumulative_ack`]).

use hni_sim::Duration;

/// Static retransmission-timer policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtoConfig {
    /// RTO used before the first RTT sample exists.
    pub initial: Duration,
    /// Floor: the RTO never drops below this (spurious-retransmit guard).
    pub min: Duration,
    /// Ceiling: backoff never pushes the RTO past this.
    pub max: Duration,
    /// Backoff exponent cap: the multiplier saturates at `2^this`.
    pub max_backoff_exp: u32,
}

impl RtoConfig {
    /// LAN-ish defaults: 10 ms initial, 200 µs floor, 4 s ceiling,
    /// backoff capped at 64× (2^6).
    pub const DEFAULT: RtoConfig = RtoConfig {
        initial: Duration::from_ms(10),
        min: Duration::from_us(200),
        max: Duration::from_s(4),
        max_backoff_exp: 6,
    };

    /// Scale the policy to a path with the given expected round-trip
    /// time: initial RTO 3× the RTT, floor at half the RTT, ceiling at
    /// 16× (but never under the defaults' floor/ceiling granularity).
    pub fn for_rtt(rtt: Duration) -> RtoConfig {
        let floor = Duration::from_us(50);
        RtoConfig {
            initial: (rtt.times(3)).max(floor),
            min: (rtt / 2).max(floor),
            max: rtt.times(16).max(Duration::from_ms(100)),
            max_backoff_exp: 6,
        }
    }
}

/// The per-connection timer state machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RtoEstimator {
    cfg: RtoConfig,
    srtt: Option<Duration>,
    rttvar: Duration,
    backoff_exp: u32,
}

impl RtoEstimator {
    /// Fresh estimator: no samples, no backoff.
    pub fn new(cfg: RtoConfig) -> Self {
        RtoEstimator {
            cfg,
            srtt: None,
            rttvar: Duration::ZERO,
            backoff_exp: 0,
        }
    }

    /// Feed one RTT sample from a frame transmitted exactly once
    /// (Karn's rule: the caller must not sample retransmitted frames).
    /// A fresh sample also clears any accumulated backoff.
    pub fn sample(&mut self, rtt: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let err = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar.times(3) + err) / 4;
                self.srtt = Some((srtt.times(7) + rtt) / 8);
            }
        }
        self.backoff_exp = 0;
    }

    /// The un-backed-off RTO: `clamp(SRTT + 4·RTTVAR, min, max)`, or
    /// `initial` (clamped) before any sample exists.
    pub fn base_rto(&self) -> Duration {
        let raw = match self.srtt {
            Some(srtt) => srtt + self.rttvar.times(4),
            None => self.cfg.initial,
        };
        raw.max(self.cfg.min).min(self.cfg.max)
    }

    /// The operative RTO, including exponential backoff, capped at
    /// `cfg.max`.
    pub fn rto(&self) -> Duration {
        let base = self.base_rto().as_ps();
        let mult = 1u64 << self.backoff_exp;
        Duration::from_ps(base.saturating_mul(mult)).min(self.cfg.max)
    }

    /// A retransmission timer fired: double the RTO (exponent saturates
    /// at `cfg.max_backoff_exp`).
    pub fn back_off(&mut self) {
        self.backoff_exp = (self.backoff_exp + 1).min(self.cfg.max_backoff_exp);
    }

    /// A cumulative ack advanced the window: progress is being made, so
    /// the backoff resets (the timer restarts from the base RTO).
    pub fn on_cumulative_ack(&mut self) {
        self.backoff_exp = 0;
    }

    /// Smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// Smoothed RTT deviation.
    pub fn rttvar(&self) -> Duration {
        self.rttvar
    }

    /// Current backoff exponent (0 = no backoff).
    pub fn backoff_exp(&self) -> u32 {
        self.backoff_exp
    }

    /// The static policy in force.
    pub fn config(&self) -> &RtoConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initialises_jacobson_state() {
        let mut est = RtoEstimator::new(RtoConfig::DEFAULT);
        assert_eq!(est.base_rto(), RtoConfig::DEFAULT.initial);
        est.sample(Duration::from_ms(4));
        assert_eq!(est.srtt(), Some(Duration::from_ms(4)));
        assert_eq!(est.rttvar(), Duration::from_ms(2));
        // SRTT + 4·RTTVAR = 4 + 8 = 12 ms.
        assert_eq!(est.base_rto(), Duration::from_ms(12));
    }

    #[test]
    fn steady_samples_tighten_the_variance() {
        let mut est = RtoEstimator::new(RtoConfig::DEFAULT);
        for _ in 0..50 {
            est.sample(Duration::from_ms(5));
        }
        assert_eq!(est.srtt(), Some(Duration::from_ms(5)));
        // With identical samples RTTVAR decays geometrically toward 0,
        // so the RTO converges on SRTT clamped to the floor.
        assert!(est.base_rto() < Duration::from_ms(6));
        assert!(est.base_rto() >= RtoConfig::DEFAULT.min);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = RtoConfig {
            initial: Duration::from_ms(10),
            min: Duration::from_ms(1),
            max: Duration::from_s(1),
            max_backoff_exp: 4,
        };
        let mut est = RtoEstimator::new(cfg);
        assert_eq!(est.rto(), Duration::from_ms(10));
        est.back_off();
        assert_eq!(est.rto(), Duration::from_ms(20));
        est.back_off();
        assert_eq!(est.rto(), Duration::from_ms(40));
        // Exponent saturates at 2^4 = 16×...
        for _ in 0..10 {
            est.back_off();
        }
        assert_eq!(est.backoff_exp(), 4);
        assert_eq!(est.rto(), Duration::from_ms(160));
        // ...and the ceiling clamps regardless of the exponent.
        let mut long = RtoEstimator::new(cfg);
        long.sample(Duration::from_ms(400));
        for _ in 0..4 {
            long.back_off();
        }
        assert_eq!(long.rto(), Duration::from_s(1));
    }

    #[test]
    fn cumulative_ack_restarts_from_base() {
        let mut est = RtoEstimator::new(RtoConfig::DEFAULT);
        est.sample(Duration::from_ms(2));
        let base = est.rto();
        est.back_off();
        est.back_off();
        assert_eq!(est.rto(), base.times(4));
        est.on_cumulative_ack();
        assert_eq!(est.backoff_exp(), 0);
        assert_eq!(est.rto(), base, "timer must restart from the base RTO");
    }

    #[test]
    fn fresh_sample_also_clears_backoff() {
        let mut est = RtoEstimator::new(RtoConfig::DEFAULT);
        est.sample(Duration::from_ms(2));
        est.back_off();
        assert_eq!(est.backoff_exp(), 1);
        est.sample(Duration::from_ms(2));
        assert_eq!(est.backoff_exp(), 0);
    }

    #[test]
    fn for_rtt_scales_with_the_path() {
        let lan = RtoConfig::for_rtt(Duration::from_us(20));
        let sat = RtoConfig::for_rtt(Duration::from_ms(560));
        assert!(lan.initial < sat.initial);
        assert!(sat.initial >= Duration::from_ms(560).times(3));
        assert!(sat.max >= sat.initial);
        assert!(lan.min >= Duration::from_us(50));
    }
}
