//! R-T5: where the 622 Mb/s goes — the layer-by-layer overhead
//! waterfall.
//!
//! Every layer shaves something off the line rate before application
//! data emerges:
//!
//! ```text
//! line rate → SONET TOH/POH/stuff → cell headers → AAL envelope → SDU
//! ```
//!
//! The waterfall makes explicit how much performance is committed before
//! the host interface has done anything at all — and therefore what the
//! actual target for the interface design is.

use hni_aal::AalType;
use hni_sonet::LineRate;

/// One step of the waterfall.
#[derive(Clone, Debug)]
pub struct OverheadStep {
    /// What the step represents.
    pub label: String,
    /// Rate remaining after this step, bits/s.
    pub rate_bps: f64,
    /// Fraction of the line rate remaining.
    pub fraction_of_line: f64,
}

/// The waterfall for a given rate, AAL and frame size.
pub fn overhead_waterfall(rate: LineRate, aal: AalType, len: usize) -> Vec<OverheadStep> {
    let line = rate.line_bps();
    let mut steps = Vec::new();
    let mut push = |label: String, bps: f64| {
        steps.push(OverheadStep {
            label,
            rate_bps: bps,
            fraction_of_line: bps / line,
        });
    };
    push(format!("{:?} line rate", rate), line);
    let payload = rate.payload_bps();
    push("after SONET overhead (TOH+POH+stuff)".into(), payload);
    let cell_payload = payload * 48.0 / 53.0;
    push("after ATM cell headers".into(), cell_payload);
    let sdu = cell_payload * aal.efficiency(len);
    push(format!("after {aal} envelope ({len}-octet frames)"), sdu);
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waterfall_is_decreasing() {
        let steps = overhead_waterfall(LineRate::Oc12, AalType::Aal5, 9180);
        for w in steps.windows(2) {
            assert!(w[1].rate_bps < w[0].rate_bps);
        }
    }

    #[test]
    fn oc12_aal5_datagram_net_rate() {
        let steps = overhead_waterfall(LineRate::Oc12, AalType::Aal5, 9180);
        let last = steps.last().unwrap();
        // 622.08 → 599.04 → 542.5 → ~540.4 Mb/s.
        assert!(
            (last.rate_bps / 1e6 - 540.4).abs() < 1.0,
            "{}",
            last.rate_bps
        );
        assert!((last.fraction_of_line - 0.868).abs() < 0.01);
    }

    #[test]
    fn aal34_waterfall_is_lower() {
        let a5 = overhead_waterfall(LineRate::Oc12, AalType::Aal5, 9180);
        let a34 = overhead_waterfall(LineRate::Oc12, AalType::Aal34, 9180);
        assert!(a34.last().unwrap().rate_bps < a5.last().unwrap().rate_bps);
    }
}
