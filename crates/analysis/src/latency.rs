//! R-F3: unloaded end-to-end latency, decomposed by component.
//!
//! One packet, idle system, host A application to host B application:
//!
//! ```text
//! tx engine setup → first DMA burst → first-cell segmentation
//!   → cells × link slot (serialization) → propagation
//!   → last-cell receive work → validate → delivery DMA → complete
//!   → host interrupt + stack + copy/remap
//! ```
//!
//! Store-and-forward happens at *cell* granularity in the interface (a
//! cell can be on the line while the next is still being fetched), so
//! the pipeline fill terms are one burst and one cell of work — not one
//! whole packet — on each side. Delivery to the host, in contrast, waits
//! for the whole frame (reassembly cannot hand over early), which is why
//! the receive-side DMA term scales with packet length.

use crate::throughput::ThroughputPrediction;
use hni_aal::AalType;
use hni_core::bus::BusConfig;
use hni_core::engine::{HwPartition, ProtocolEngine, TaskKind};
use hni_sim::Duration;
use hni_sonet::LineRate;

/// Latency decomposition for one packet.
#[derive(Clone, Copy, Debug)]
pub struct LatencyBreakdown {
    /// Packet length, octets.
    pub len: usize,
    /// Transmit engine: packet setup.
    pub tx_setup: Duration,
    /// First DMA burst (pipeline fill).
    pub tx_first_burst: Duration,
    /// First cell's segmentation work.
    pub tx_first_cell: Duration,
    /// Serialization: cells × payload slot.
    pub serialization: Duration,
    /// Light in the fibre.
    pub propagation: Duration,
    /// Last cell's receive-side work.
    pub rx_last_cell: Duration,
    /// Frame validation.
    pub rx_validate: Duration,
    /// Delivery DMA of the whole frame.
    pub rx_delivery_dma: Duration,
    /// Completion processing.
    pub rx_complete: Duration,
    /// Total.
    pub total: Duration,
}

impl LatencyBreakdown {
    /// The components as (label, duration) pairs, in path order.
    pub fn components(&self) -> [(&'static str, Duration); 9] {
        [
            ("tx setup", self.tx_setup),
            ("tx first burst", self.tx_first_burst),
            ("tx first cell", self.tx_first_cell),
            ("serialization", self.serialization),
            ("propagation", self.propagation),
            ("rx last cell", self.rx_last_cell),
            ("rx validate", self.rx_validate),
            ("rx delivery dma", self.rx_delivery_dma),
            ("rx complete", self.rx_complete),
        ]
    }
}

/// Compute the unloaded latency breakdown.
pub fn unloaded_latency(
    len: usize,
    partition: &HwPartition,
    mips: f64,
    bus: &BusConfig,
    rate: LineRate,
    aal: AalType,
    propagation: Duration,
) -> LatencyBreakdown {
    let e = ProtocolEngine::new(mips, partition);
    let cells = aal.cells_for_sdu(len).max(1);

    let tx_setup = e.task_time(TaskKind::TxPacketSetup);
    let tx_first_burst = if len == 0 {
        Duration::ZERO
    } else {
        e.task_time(TaskKind::TxDmaBurst) + bus.burst_time(bus.burst_words(len, 0))
    };
    let tx_first_cell = e.task_time(TaskKind::TxCellSegment)
        + e.task_time(TaskKind::TxCellCrc)
        + e.task_time(TaskKind::TxHec);
    let serialization = rate.cell_slot_time() * cells as u64;
    let rx_last_cell = e.task_time(TaskKind::RxHec)
        + e.task_time(TaskKind::RxVciLookup)
        + e.task_time(TaskKind::RxCellEnqueue)
        + e.task_time(TaskKind::RxCellCrc);
    let rx_validate = e.task_time(TaskKind::RxPacketValidate);
    let mut rx_delivery_dma = Duration::ZERO;
    if len > 0 {
        for b in 0..bus.bursts_for(len) {
            rx_delivery_dma +=
                e.task_time(TaskKind::RxDmaBurst) + bus.burst_time(bus.burst_words(len, b));
        }
    }
    let rx_complete = e.task_time(TaskKind::RxPacketComplete);

    let total = tx_setup
        + tx_first_burst
        + tx_first_cell
        + serialization
        + propagation
        + rx_last_cell
        + rx_validate
        + rx_delivery_dma
        + rx_complete;

    LatencyBreakdown {
        len,
        tx_setup,
        tx_first_burst,
        tx_first_cell,
        serialization,
        propagation,
        rx_last_cell,
        rx_validate,
        rx_delivery_dma,
        rx_complete,
        total,
    }
}

/// Convenience: is the prediction engine-limited? (Used by the report to
/// annotate latency rows with the throughput story.)
pub fn is_engine_limited(p: &ThroughputPrediction) -> bool {
    p.bottleneck == "engine"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(len: usize) -> LatencyBreakdown {
        unloaded_latency(
            len,
            &HwPartition::paper_split(),
            25.0,
            &BusConfig::default(),
            LineRate::Oc12,
            AalType::Aal5,
            Duration::from_us(5), // ~1 km of fibre
        )
    }

    #[test]
    fn total_is_sum_of_components() {
        let b = bd(9180);
        let sum: Duration = b.components().iter().map(|&(_, d)| d).sum();
        assert_eq!(sum, b.total);
    }

    #[test]
    fn serialization_dominates_large_packets() {
        let b = bd(65000);
        // 1355 cells × 708 ns ≈ 959 µs — far beyond every other term.
        assert!(b.serialization.as_us_f64() > 900.0);
        assert!(b.serialization.as_ps() > b.total.as_ps() / 2);
    }

    #[test]
    fn small_packet_latency_dominated_by_fixed_costs() {
        let b = bd(64);
        assert!(b.serialization < Duration::from_us(2)); // 2 cells
                                                         // Total still tens of µs due to fixed work + propagation.
        assert!(b.total > Duration::from_us(5));
        assert!(b.total < Duration::from_us(50));
    }

    #[test]
    fn oc3_serializes_4x_slower() {
        let b12 = bd(9180);
        let b3 = unloaded_latency(
            9180,
            &HwPartition::paper_split(),
            25.0,
            &BusConfig::default(),
            LineRate::Oc3,
            AalType::Aal5,
            Duration::from_us(5),
        );
        let ratio = b3.serialization.as_s_f64() / b12.serialization.as_s_f64();
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn delivery_dma_scales_with_length() {
        assert!(bd(65000).rx_delivery_dma > bd(1000).rx_delivery_dma * 20);
    }

    #[test]
    fn zero_length_packet_has_no_dma_terms() {
        let b = bd(0);
        assert_eq!(b.tx_first_burst, Duration::ZERO);
        assert_eq!(b.rx_delivery_dma, Duration::ZERO);
        assert!(b.total > Duration::ZERO);
    }
}
