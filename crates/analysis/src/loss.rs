//! R-F5: goodput under random cell loss — AAL5 vs AAL3/4, and the
//! frame-size crossover.
//!
//! Without link-level retransmission (the ATM position: recovery belongs
//! to the endpoints), a frame survives only if **every** cell survives:
//! `P = (1-p)^cells`. Two consequences the figure exhibits:
//!
//! * AAL5 beats AAL3/4 at any loss rate: fewer cells per frame (48 vs 44
//!   payload octets per cell) helps survival *and* efficiency. AAL3/4's
//!   per-cell CRC-10 buys earlier detection (buffer hygiene), not
//!   goodput.
//! * There is a frame-size crossover: big frames amortize per-frame
//!   overhead but die more often. As p grows, the goodput-optimal frame
//!   shrinks — at p = 1e-3, a 9180-octet frame beats a 65535-octet one.

use hni_aal::AalType;
use hni_sonet::LineRate;

/// One point of the loss figure.
#[derive(Clone, Copy, Debug)]
pub struct LossPoint {
    /// Cell loss probability.
    pub loss: f64,
    /// Frame size, octets.
    pub len: usize,
    /// Adaptation layer.
    pub aal: AalType,
    /// Probability a frame survives.
    pub frame_survival: f64,
    /// Expected goodput, bits/s, at full line load.
    pub goodput_bps: f64,
}

/// Goodput at cell-loss probability `loss` for `len`-octet frames on
/// `aal` over `rate`, offered at full payload load.
pub fn goodput_under_loss(rate: LineRate, aal: AalType, len: usize, loss: f64) -> LossPoint {
    assert!((0.0..=1.0).contains(&loss));
    let cells = aal.cells_for_sdu(len).max(1);
    let survival = (1.0 - loss).powi(cells as i32);
    // Offered cells occupy payload slots; goodput counts only SDU bits
    // of surviving frames.
    let cell_payload_fraction = 48.0 / 53.0;
    let goodput = rate.payload_bps() * cell_payload_fraction * aal.efficiency(len) * survival;
    LossPoint {
        loss,
        len,
        aal,
        frame_survival: survival,
        goodput_bps: goodput,
    }
}

/// The loss-rate sweep used by the report.
pub fn default_loss_grid() -> Vec<f64> {
    vec![0.0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_is_efficiency_ceiling() {
        let p = goodput_under_loss(LineRate::Oc12, AalType::Aal5, 9180, 0.0);
        assert_eq!(p.frame_survival, 1.0);
        let ceiling = LineRate::Oc12.payload_bps() * (48.0 / 53.0) * AalType::Aal5.efficiency(9180);
        assert!((p.goodput_bps - ceiling).abs() < 1.0);
    }

    #[test]
    fn aal5_beats_aal34_at_every_loss_rate() {
        for &loss in &default_loss_grid() {
            let a5 = goodput_under_loss(LineRate::Oc12, AalType::Aal5, 9180, loss);
            let a34 = goodput_under_loss(LineRate::Oc12, AalType::Aal34, 9180, loss);
            assert!(
                a5.goodput_bps > a34.goodput_bps,
                "loss {loss}: {} vs {}",
                a5.goodput_bps,
                a34.goodput_bps
            );
        }
    }

    #[test]
    fn survival_collapses_for_large_frames() {
        // 65535 octets = 1366 cells: at p = 1e-3, survival ≈ e^-1.37 ≈ 0.25.
        let p = goodput_under_loss(LineRate::Oc12, AalType::Aal5, 65535, 1e-3);
        assert!(
            p.frame_survival > 0.2 && p.frame_survival < 0.3,
            "{}",
            p.frame_survival
        );
    }

    #[test]
    fn frame_size_crossover_under_loss() {
        // At negligible loss, 65535 beats 9180 (less trailer overhead...
        // marginally); at 1e-3 the ordering flips decisively.
        let big_clean = goodput_under_loss(LineRate::Oc12, AalType::Aal5, 65535, 1e-7);
        let mid_clean = goodput_under_loss(LineRate::Oc12, AalType::Aal5, 9180, 1e-7);
        assert!(big_clean.goodput_bps > mid_clean.goodput_bps * 0.999);
        let big_lossy = goodput_under_loss(LineRate::Oc12, AalType::Aal5, 65535, 1e-3);
        let mid_lossy = goodput_under_loss(LineRate::Oc12, AalType::Aal5, 9180, 1e-3);
        assert!(
            mid_lossy.goodput_bps > 2.0 * big_lossy.goodput_bps,
            "mid {} big {}",
            mid_lossy.goodput_bps,
            big_lossy.goodput_bps
        );
    }

    #[test]
    fn goodput_monotone_decreasing_in_loss() {
        let mut prev = f64::INFINITY;
        for &loss in &default_loss_grid() {
            let p = goodput_under_loss(LineRate::Oc3, AalType::Aal5, 9180, loss);
            assert!(p.goodput_bps <= prev);
            prev = p.goodput_bps;
        }
    }
}
