//! R-T2: the hardware/software partition table and per-stage bottleneck
//! rates.
//!
//! For each candidate partition, what does each fast-path task cost the
//! engine, what is the total per-cell and per-packet engine work in each
//! direction, and — dividing into the engine's speed — what cell rate
//! can each direction sustain? Set against the link's slot rate, this
//! table says *which* partitions are viable at which line rate, which is
//! the design decision the architecture embodies.

use hni_core::engine::{HwPartition, ProtocolEngine, TaskKind};
use hni_sonet::LineRate;

/// Cost of one task under one partition.
#[derive(Clone, Debug)]
pub struct PartitionRow {
    /// Partition name.
    pub partition: &'static str,
    /// Task label.
    pub task: &'static str,
    /// Whether the task is in hardware under this partition.
    pub in_hardware: bool,
    /// Engine instructions it costs.
    pub engine_instructions: u32,
    /// Engine time at the given MIPS, ns.
    pub engine_ns: f64,
}

/// Per-direction aggregate rates for one partition.
#[derive(Clone, Debug)]
pub struct StageRates {
    /// Partition name.
    pub partition: &'static str,
    /// Engine instructions per transmitted cell.
    pub tx_instr_per_cell: u32,
    /// Engine instructions per received cell.
    pub rx_instr_per_cell: u32,
    /// Max cells/s the transmit engine sustains (per-cell work only).
    pub tx_cells_per_second: f64,
    /// Max cells/s the receive engine sustains (per-cell work only).
    pub rx_cells_per_second: f64,
    /// Whether each direction keeps up with the given line rate.
    pub tx_keeps_up: bool,
    /// Receive-direction verdict.
    pub rx_keeps_up: bool,
}

/// The standard three partitions.
pub fn standard_partitions() -> Vec<HwPartition> {
    vec![
        HwPartition::all_software(),
        HwPartition::paper_split(),
        HwPartition::full_hardware(),
    ]
}

/// Full per-task table for the given partitions at `mips`.
pub fn partition_rows(partitions: &[HwPartition], mips: f64) -> Vec<PartitionRow> {
    let mut rows = Vec::new();
    for p in partitions {
        let engine = ProtocolEngine::new(mips, p);
        for task in TaskKind::ALL {
            let instr = p.engine_instructions(&engine.costs, task);
            rows.push(PartitionRow {
                partition: p.name,
                task: task.label(),
                in_hardware: p.in_hardware(task),
                engine_instructions: instr,
                engine_ns: engine.instr_time(instr).as_ns_f64(),
            });
        }
    }
    rows
}

/// Aggregate per-direction rates for each partition at `mips`, judged
/// against `rate`'s payload slot rate.
pub fn stage_rates(partitions: &[HwPartition], mips: f64, rate: LineRate) -> Vec<StageRates> {
    let slot_rate = rate.cell_slots_per_second();
    partitions
        .iter()
        .map(|p| {
            let engine = ProtocolEngine::new(mips, p);
            let tx_i = engine.tx_per_cell_instructions();
            let rx_i = engine.rx_per_cell_instructions();
            let tx_rate = if tx_i == 0 {
                f64::INFINITY
            } else {
                mips * 1e6 / tx_i as f64
            };
            let rx_rate = if rx_i == 0 {
                f64::INFINITY
            } else {
                mips * 1e6 / rx_i as f64
            };
            StageRates {
                partition: p.name,
                tx_instr_per_cell: tx_i,
                rx_instr_per_cell: rx_i,
                tx_cells_per_second: tx_rate,
                rx_cells_per_second: rx_rate,
                tx_keeps_up: tx_rate >= slot_rate,
                rx_keeps_up: rx_rate >= slot_rate,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_dimensions() {
        let rows = partition_rows(&standard_partitions(), 25.0);
        assert_eq!(rows.len(), 3 * TaskKind::ALL.len());
    }

    #[test]
    fn hardware_rows_cost_zero() {
        let rows = partition_rows(&standard_partitions(), 25.0);
        for r in rows {
            if r.in_hardware {
                assert_eq!(r.engine_instructions, 0, "{} / {}", r.partition, r.task);
            }
        }
    }

    #[test]
    fn design_point_verdicts() {
        // The architecture's claim, as a table: at OC-12, all-software
        // fails both directions, the paper split passes both, full
        // hardware trivially passes.
        let rates = stage_rates(&standard_partitions(), 25.0, LineRate::Oc12);
        let by_name = |n: &str| rates.iter().find(|r| r.partition == n).unwrap();
        let sw = by_name("all-software");
        assert!(!sw.tx_keeps_up && !sw.rx_keeps_up);
        let split = by_name("paper-split");
        assert!(split.tx_keeps_up && split.rx_keeps_up);
        let hw = by_name("full-hardware");
        assert!(hw.tx_keeps_up && hw.rx_keeps_up);
    }

    #[test]
    fn all_software_fails_even_oc3() {
        let rates = stage_rates(&standard_partitions(), 25.0, LineRate::Oc3);
        let sw = rates
            .iter()
            .find(|r| r.partition == "all-software")
            .unwrap();
        assert!(
            !sw.rx_keeps_up,
            "202 instr/cell at 25 MIPS > 2.83 µs OC-3 slot"
        );
    }

    #[test]
    fn enough_mips_rescues_all_software_at_oc3() {
        // 202 instr per rx cell / 2.83 µs needs ≈ 71.4 MIPS.
        let rates = stage_rates(&standard_partitions(), 100.0, LineRate::Oc3);
        let sw = rates
            .iter()
            .find(|r| r.partition == "all-software")
            .unwrap();
        assert!(sw.rx_keeps_up && sw.tx_keeps_up);
    }
}
