//! R-F1 / R-F2 analytic overlays: goodput versus packet size from the
//! three resource bounds.
//!
//! In steady state with packets pipelining through the interface, each
//! serial resource imposes `len·8 / time_it_spends_per_packet` on the
//! goodput; the achievable rate is the minimum:
//!
//! * **engine**: per-packet work + cells × per-cell work (+ per-burst
//!   work if DMA management is in software);
//! * **bus**: bursts × burst time;
//! * **link**: cells × payload slot time.
//!
//! Small packets are per-packet-overhead-bound (engine), large packets
//! are link-bound if the partition is viable — the knee is the design
//! story. The simulations reproduce these curves with queueing effects
//! included; EXPERIMENTS.md overlays the two.

use hni_aal::AalType;
use hni_core::bus::BusConfig;
use hni_core::engine::{HwPartition, ProtocolEngine, TaskKind};
use hni_sonet::LineRate;

/// A predicted point with its governing bound.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputPrediction {
    /// Packet length, octets.
    pub len: usize,
    /// Cells per packet.
    pub cells: usize,
    /// Engine-bound goodput, bits/s.
    pub engine_bound_bps: f64,
    /// Bus-bound goodput, bits/s.
    pub bus_bound_bps: f64,
    /// Link-bound goodput, bits/s.
    pub link_bound_bps: f64,
    /// The achievable goodput (minimum of the three).
    pub achievable_bps: f64,
    /// Which bound governs: "engine", "bus" or "link".
    pub bottleneck: &'static str,
}

#[allow(clippy::too_many_arguments)]
fn predict(
    len: usize,
    per_packet_instr: u32,
    per_cell_instr: u32,
    per_burst_instr: u32,
    mips: f64,
    bus: &BusConfig,
    rate: LineRate,
    aal: AalType,
) -> ThroughputPrediction {
    let cells = aal.cells_for_sdu(len).max(1);
    let bursts = if len == 0 { 0 } else { bus.bursts_for(len) };

    // Engine seconds per packet.
    let instr = per_packet_instr as f64
        + cells as f64 * per_cell_instr as f64
        + bursts as f64 * per_burst_instr as f64;
    let t_engine = instr / (mips * 1e6);

    // Bus seconds per packet.
    let mut t_bus = 0.0;
    for b in 0..bursts {
        t_bus += bus.burst_time(bus.burst_words(len, b)).as_s_f64();
    }

    // Link seconds per packet.
    let t_link = cells as f64 * rate.cell_slot_time().as_s_f64();

    let bits = len as f64 * 8.0;
    let eb = if t_engine > 0.0 {
        bits / t_engine
    } else {
        f64::INFINITY
    };
    let bb = if t_bus > 0.0 {
        bits / t_bus
    } else {
        f64::INFINITY
    };
    let lb = if t_link > 0.0 {
        bits / t_link
    } else {
        f64::INFINITY
    };
    let (achievable, bottleneck) = if eb <= bb && eb <= lb {
        (eb, "engine")
    } else if bb <= lb {
        (bb, "bus")
    } else {
        (lb, "link")
    };
    ThroughputPrediction {
        len,
        cells,
        engine_bound_bps: eb,
        bus_bound_bps: bb,
        link_bound_bps: lb,
        achievable_bps: achievable,
        bottleneck,
    }
}

/// Transmit-direction prediction.
pub fn predict_tx(
    len: usize,
    partition: &HwPartition,
    mips: f64,
    bus: &BusConfig,
    rate: LineRate,
    aal: AalType,
) -> ThroughputPrediction {
    let e = ProtocolEngine::new(mips, partition);
    predict(
        len,
        e.tx_per_packet_instructions(),
        e.tx_per_cell_instructions(),
        partition.engine_instructions(&e.costs, TaskKind::TxDmaBurst),
        mips,
        bus,
        rate,
        aal,
    )
}

/// Receive-direction prediction.
pub fn predict_rx(
    len: usize,
    partition: &HwPartition,
    mips: f64,
    bus: &BusConfig,
    rate: LineRate,
    aal: AalType,
) -> ThroughputPrediction {
    let e = ProtocolEngine::new(mips, partition);
    predict(
        len,
        e.rx_per_packet_instructions(),
        e.rx_per_cell_instructions(),
        partition.engine_instructions(&e.costs, TaskKind::RxDmaBurst),
        mips,
        bus,
        rate,
        aal,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_tx(len: usize, rate: LineRate) -> ThroughputPrediction {
        predict_tx(
            len,
            &HwPartition::paper_split(),
            25.0,
            &BusConfig::default(),
            rate,
            AalType::Aal5,
        )
    }

    #[test]
    fn large_packets_link_bound_in_paper_config() {
        let p = paper_tx(65000, LineRate::Oc12);
        assert_eq!(p.bottleneck, "link");
        // Link bound = payload rate × (48-octet payload fraction of the
        // slot) × AAL efficiency. Sanity: between 70% and 100% of payload.
        assert!(p.achievable_bps > 0.7 * LineRate::Oc12.payload_bps());
        assert!(p.achievable_bps < LineRate::Oc12.payload_bps());
    }

    #[test]
    fn small_packets_engine_bound() {
        let p = paper_tx(64, LineRate::Oc12);
        assert_eq!(p.bottleneck, "engine");
        // 85 per-packet + 2×12 per-cell instructions at 25 MIPS bound a
        // 512-bit packet near 117 Mb/s — a fifth of the link payload.
        assert!(p.achievable_bps < 0.25 * LineRate::Oc12.payload_bps());
    }

    #[test]
    fn all_software_engine_bound_even_for_large() {
        let p = predict_tx(
            65000,
            &HwPartition::all_software(),
            25.0,
            &BusConfig::default(),
            LineRate::Oc12,
            AalType::Aal5,
        );
        assert_eq!(p.bottleneck, "engine");
        assert!(p.achievable_bps < 0.2 * LineRate::Oc12.payload_bps());
    }

    #[test]
    fn small_bursts_make_bus_the_bottleneck() {
        // Cripple the bus to 8-word bursts: 53 MB/s < OC-12 payload.
        let bus = BusConfig {
            max_burst_words: 8,
            ..BusConfig::default()
        };
        let p = predict_tx(
            65000,
            &HwPartition::paper_split(),
            25.0,
            &bus,
            LineRate::Oc12,
            AalType::Aal5,
        );
        assert_eq!(p.bottleneck, "bus");
    }

    #[test]
    fn monotone_in_len_until_link_bound() {
        let mut prev = 0.0;
        for len in [64, 256, 1024, 4096, 16384, 65000] {
            let p = paper_tx(len, LineRate::Oc12);
            assert!(p.achievable_bps >= prev, "len {len}");
            prev = p.achievable_bps;
        }
    }

    #[test]
    fn rx_is_costlier_than_tx_per_cell_all_software() {
        let tx = predict_tx(
            9180,
            &HwPartition::all_software(),
            25.0,
            &BusConfig::default(),
            LineRate::Oc12,
            AalType::Aal5,
        );
        let rx = predict_rx(
            9180,
            &HwPartition::all_software(),
            25.0,
            &BusConfig::default(),
            LineRate::Oc12,
            AalType::Aal5,
        );
        assert!(
            rx.achievable_bps < tx.achievable_bps,
            "receive per-cell work (202) exceeds transmit (172)"
        );
    }

    #[test]
    fn prediction_matches_simulation_when_link_bound() {
        // Cross-validation: analytic link-bound prediction vs the DES.
        let p = paper_tx(40_000, LineRate::Oc12);
        let cfg = hni_core::txsim::TxConfig::paper(LineRate::Oc12);
        let r = hni_core::txsim::run_tx(
            &cfg,
            &hni_core::txsim::greedy_workload(30, 40_000, hni_atm_vc()),
        );
        let rel = (r.goodput_bps - p.achievable_bps).abs() / p.achievable_bps;
        assert!(
            rel < 0.05,
            "sim {} vs analysis {}",
            r.goodput_bps,
            p.achievable_bps
        );
    }

    fn hni_atm_vc() -> hni_atm::VcId {
        hni_atm::VcId::new(0, 32)
    }
}

/// Steady-state goodput including the **per-packet pipeline bubble**.
///
/// The plain bounds above assume perfect pipelining across packets. In
/// the implemented transmit machine (as in the hardware it models) the
/// *engine* serializes one packet's control work with its own data
/// dependencies — setup, then a stall for the first DMA burst, then
/// per-cell work racing the remaining bursts, then completion — while
/// the output FIFO lets the *link* stream continuously across packet
/// boundaries. Steady-state cycle time per packet is therefore
///
/// ```text
///   t_cycle = max( t_link,                 -- cells × slot
///                  t_bus,                  -- all bursts end to end
///                  t_setup + t_fill        -- engine's serial cycle:
///                    + max(t_cells, t_bus_rest)
///                    + t_complete )
/// ```
///
/// For large packets the streaming terms dominate and the plain bound
/// re-emerges; for small packets the engine's serial cycle is most of
/// the time — the divergence EXPERIMENTS.md R-F1 documents, made
/// quantitative. `prediction_with_bubble_matches_simulation` verifies
/// this model tracks the DES within ~12% across the whole grid.
pub fn predict_tx_with_bubble(
    len: usize,
    partition: &HwPartition,
    mips: f64,
    bus: &BusConfig,
    rate: LineRate,
    aal: AalType,
) -> f64 {
    use hni_core::engine::{ProtocolEngine, TaskKind};
    let e = ProtocolEngine::new(mips, partition);
    let cells = aal.cells_for_sdu(len).max(1);
    let bursts = if len == 0 { 0 } else { bus.bursts_for(len) };

    let t_setup = e.task_time(TaskKind::TxPacketSetup).as_s_f64();
    let t_complete = e.task_time(TaskKind::TxPacketComplete).as_s_f64();
    let t_burst_engine = e.task_time(TaskKind::TxDmaBurst).as_s_f64();

    // Engine's serial cycle: setup, first-burst stall, then per-cell
    // work racing the remaining bursts, then completion.
    let t_fill = if bursts == 0 {
        0.0
    } else {
        t_burst_engine + bus.burst_time(bus.burst_words(len, 0)).as_s_f64()
    };
    let t_cells = e.tx_per_cell_instructions() as f64 * cells as f64 / (mips * 1e6)
        + t_burst_engine * bursts.saturating_sub(1) as f64;
    let mut t_bus_rest = 0.0;
    for b in 1..bursts {
        t_bus_rest += bus.burst_time(bus.burst_words(len, b)).as_s_f64();
    }
    let t_engine_cycle = t_setup + t_fill + t_cells.max(t_bus_rest) + t_complete;

    // Streaming bounds across packet boundaries (FIFO-decoupled).
    let t_link = cells as f64 * rate.cell_slot_time().as_s_f64();
    let t_bus = if bursts == 0 {
        0.0
    } else {
        bus.burst_time(bus.burst_words(len, 0)).as_s_f64() + t_bus_rest
    };

    let t_cycle = t_link.max(t_bus).max(t_engine_cycle);
    len as f64 * 8.0 / t_cycle
}

#[cfg(test)]
mod bubble_tests {
    use super::*;
    use hni_atm::VcId;
    use hni_core::txsim::{greedy_workload, run_tx, TxConfig};

    #[test]
    fn prediction_with_bubble_matches_simulation() {
        // The refined model must track the DES closely where the plain
        // bounds ran 35% high — across sizes, rates, partitions.
        for rate in [LineRate::Oc3, LineRate::Oc12] {
            for partition in [HwPartition::paper_split(), HwPartition::full_hardware()] {
                for len in [64usize, 256, 1024, 4096, 9180, 65000] {
                    let mut cfg = TxConfig::paper(rate);
                    cfg.partition = partition;
                    let sim = run_tx(&cfg, &greedy_workload(15, len, VcId::new(0, 32)));
                    let model =
                        predict_tx_with_bubble(len, &partition, cfg.mips, &cfg.bus, rate, cfg.aal);
                    let ratio = sim.goodput_bps / model;
                    assert!(
                        (0.88..=1.12).contains(&ratio),
                        "{rate:?}/{}/{len}: sim {:.1} vs bubble model {:.1} Mb/s (ratio {ratio:.3})",
                        partition.name,
                        sim.goodput_bps / 1e6,
                        model / 1e6
                    );
                }
            }
        }
    }

    #[test]
    fn bubble_model_never_exceeds_plain_bound() {
        for len in [64usize, 1024, 9180, 65000] {
            let p = predict_tx(
                len,
                &HwPartition::paper_split(),
                25.0,
                &BusConfig::default(),
                LineRate::Oc12,
                AalType::Aal5,
            );
            let b = predict_tx_with_bubble(
                len,
                &HwPartition::paper_split(),
                25.0,
                &BusConfig::default(),
                LineRate::Oc12,
                AalType::Aal5,
            );
            assert!(
                b <= p.achievable_bps * 1.001,
                "len {len}: {b} > {}",
                p.achievable_bps
            );
        }
    }
}
