//! R-T3: adaptor memory per frame under six buffer organisations.
//!
//! Reassembly memory must absorb frames of unknown length arriving
//! interleaved. The design space (first-principles arithmetic; pointer =
//! 4 octets, validity = 1 bit per cell, maximum AAL5 frame = 1366
//! cells):
//!
//! | strategy | idea | random cell access |
//! |---|---|---|
//! | per-cell linked list | one 48-octet buffer + next pointer per cell | O(n) walk |
//! | contiguous max | one max-frame slab per frame | O(1) |
//! | pointer array | 1366-slot pointer array per frame, cells allocated singly | O(1) |
//! | container list (k) | linked k-cell containers | O(n/k) walk |
//! | container array (k) | pointer array over k-cell containers | O(1) |
//! | host memory | cells land in host RAM; adaptor keeps control info only | O(1), but every touch crosses the bus |
//!
//! The figure of merit is local (adaptor SRAM) octets consumed per
//! frame, evaluated at the three canonical frame sizes: 2 cells (a small
//! message), 192 cells (a 9180-octet IP datagram), 1366 cells (the
//! largest AAL5 frame).

/// Pointer size in adaptor memory, octets.
pub const PTR: usize = 4;
/// Cell payload size, octets.
pub const CELL: usize = 48;
/// Largest AAL5 frame, cells.
pub const MAX_CELLS: usize = 1366;

/// The six organisations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryStrategy {
    /// Linked list of single-cell buffers.
    PerCellList,
    /// One contiguous maximum-size slab per frame.
    ContiguousMax,
    /// Per-frame array of per-cell pointers.
    PointerArray,
    /// Linked list of k-cell containers.
    ContainerList(usize),
    /// Per-frame pointer array over k-cell containers.
    ContainerArray(usize),
    /// Payload in host memory; adaptor holds control info only.
    HostMemory,
}

impl MemoryStrategy {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            MemoryStrategy::PerCellList => "per-cell linked list".into(),
            MemoryStrategy::ContiguousMax => "contiguous (max-size)".into(),
            MemoryStrategy::PointerArray => "pointer array".into(),
            MemoryStrategy::ContainerList(k) => format!("container list ({k})"),
            MemoryStrategy::ContainerArray(k) => format!("container array ({k})"),
            MemoryStrategy::HostMemory => "host memory".into(),
        }
    }

    /// Adaptor-local octets consumed by one frame of `cells` cells.
    pub fn local_octets(&self, cells: usize) -> usize {
        let valid_bitmap = MAX_CELLS.div_ceil(8); // sized for the worst case
        match *self {
            // Each cell: payload + next pointer + valid bit (byte-rounded
            // into the buffer header; charge 1 octet).
            MemoryStrategy::PerCellList => cells * (CELL + PTR + 1),
            // Whole slab regardless of actual length, plus one bitmap.
            MemoryStrategy::ContiguousMax => MAX_CELLS * CELL + valid_bitmap,
            // Fixed pointer array + bitmap, plus one 48-octet buffer per
            // actual cell.
            MemoryStrategy::PointerArray => MAX_CELLS * PTR + valid_bitmap + cells * CELL,
            // Containers hold k payloads + a k-bit map + next pointer.
            MemoryStrategy::ContainerList(k) => {
                let containers = cells.div_ceil(k).max(1);
                containers * (k * CELL + k.div_ceil(8) + PTR)
            }
            // Pointer array over containers (sized for the max frame),
            // plus the containers actually used.
            MemoryStrategy::ContainerArray(k) => {
                let containers = cells.div_ceil(k).max(1);
                MAX_CELLS.div_ceil(k) * PTR + containers * (k * CELL + k.div_ceil(8))
            }
            // Adaptor keeps: host-page pointer, bitmap, byte count.
            MemoryStrategy::HostMemory => PTR + valid_bitmap + 4,
        }
    }

    /// Whether a cell at a random index is reachable in constant time
    /// (false = a list walk is needed).
    pub fn constant_time_access(&self) -> bool {
        !matches!(
            self,
            MemoryStrategy::PerCellList | MemoryStrategy::ContainerList(_)
        )
    }
}

/// One row of the R-T3 table.
#[derive(Clone, Debug)]
pub struct StrategyRow {
    /// Strategy evaluated.
    pub strategy: MemoryStrategy,
    /// Display name.
    pub name: String,
    /// Octets per 2-cell frame.
    pub small: usize,
    /// Octets per 192-cell frame (9180-octet datagram).
    pub datagram: usize,
    /// Octets per 1366-cell frame (max AAL5).
    pub max: usize,
    /// Constant-time random access?
    pub o1_access: bool,
}

/// The canonical strategies evaluated at the canonical frame sizes.
pub fn memory_rows() -> Vec<StrategyRow> {
    let strategies = [
        MemoryStrategy::PerCellList,
        MemoryStrategy::ContiguousMax,
        MemoryStrategy::PointerArray,
        MemoryStrategy::ContainerList(32),
        MemoryStrategy::ContainerArray(32),
        MemoryStrategy::HostMemory,
    ];
    strategies
        .iter()
        .map(|&s| StrategyRow {
            strategy: s,
            name: s.name(),
            small: s.local_octets(2),
            datagram: s.local_octets(192),
            max: s.local_octets(1366),
            o1_access: s.constant_time_access(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_frames_favour_lists_over_slabs() {
        let list = MemoryStrategy::PerCellList.local_octets(2);
        let slab = MemoryStrategy::ContiguousMax.local_octets(2);
        assert!(list < slab / 100, "list {list} vs slab {slab}");
    }

    #[test]
    fn slab_size_is_constant() {
        let s = MemoryStrategy::ContiguousMax;
        assert_eq!(s.local_octets(2), s.local_octets(1366));
    }

    #[test]
    fn max_frames_make_strategies_converge() {
        // At 1366 cells every payload-in-SRAM strategy costs ≈ 65 KiB;
        // within 12% of each other.
        let all = [
            MemoryStrategy::PerCellList,
            MemoryStrategy::ContiguousMax,
            MemoryStrategy::PointerArray,
            MemoryStrategy::ContainerList(32),
            MemoryStrategy::ContainerArray(32),
        ];
        let sizes: Vec<usize> = all.iter().map(|s| s.local_octets(1366)).collect();
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max / min < 1.12, "spread {min}..{max}");
    }

    #[test]
    fn host_memory_is_tiny_and_constant() {
        let s = MemoryStrategy::HostMemory;
        assert!(s.local_octets(1366) < 200);
        assert_eq!(s.local_octets(2), s.local_octets(1366));
    }

    #[test]
    fn container_array_is_o1_list_is_not() {
        assert!(MemoryStrategy::ContainerArray(32).constant_time_access());
        assert!(!MemoryStrategy::ContainerList(32).constant_time_access());
        assert!(!MemoryStrategy::PerCellList.constant_time_access());
        assert!(MemoryStrategy::PointerArray.constant_time_access());
    }

    #[test]
    fn container_array_close_to_list_for_datagrams() {
        // The pointer-array overhead over containers is small: for a
        // 192-cell frame the two container strategies differ by < 5%.
        let list = MemoryStrategy::ContainerList(32).local_octets(192);
        let arr = MemoryStrategy::ContainerArray(32).local_octets(192);
        let rel = (arr as f64 - list as f64).abs() / list as f64;
        assert!(rel < 0.05, "list {list} arr {arr}");
    }

    #[test]
    fn rows_table_complete() {
        let rows = memory_rows();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.small <= r.max
                    || r.small == r.max
                    || r.strategy == MemoryStrategy::ContiguousMax
                    || r.strategy == MemoryStrategy::HostMemory
            );
        }
    }
}
