//! R-T1: the per-cell instruction budget table.
//!
//! The table that frames the whole design problem: how many engine
//! instructions fit inside one cell time, as a function of line rate and
//! engine speed. Everything else in the evaluation is a fight to get the
//! per-cell work under these numbers.

use hni_sonet::LineRate;

/// One row of the budget table.
#[derive(Clone, Copy, Debug)]
pub struct BudgetRow {
    /// Line rate.
    pub rate: LineRate,
    /// Cell time at raw line rate, ns.
    pub cell_line_ns: f64,
    /// Cell slot at payload rate, ns.
    pub cell_slot_ns: f64,
    /// Engine MIPS.
    pub mips: f64,
    /// Instructions available per payload cell slot.
    pub instructions_per_slot: f64,
}

/// The full grid: each line rate × each engine speed.
pub fn budget_rows(mips_grid: &[f64]) -> Vec<BudgetRow> {
    let mut rows = Vec::new();
    for rate in [LineRate::Oc3, LineRate::Oc12] {
        for &mips in mips_grid {
            let slot = rate.cell_slot_time();
            rows.push(BudgetRow {
                rate,
                cell_line_ns: rate.cell_line_time().as_ns_f64(),
                cell_slot_ns: slot.as_ns_f64(),
                mips,
                instructions_per_slot: mips * slot.as_s_f64() * 1e6,
            });
        }
    }
    rows
}

/// The canonical grid used by the report.
pub fn default_mips_grid() -> Vec<f64> {
    vec![12.5, 25.0, 50.0, 100.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions() {
        let rows = budget_rows(&default_mips_grid());
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn headline_values() {
        let rows = budget_rows(&[25.0]);
        let oc3 = rows.iter().find(|r| r.rate == LineRate::Oc3).unwrap();
        let oc12 = rows.iter().find(|r| r.rate == LineRate::Oc12).unwrap();
        assert!((oc3.cell_line_ns - 2726.3).abs() < 0.2);
        assert!((oc12.cell_line_ns - 681.6).abs() < 0.1);
        // 25 MIPS at OC-12: ~17.7 instructions per payload slot.
        assert!((oc12.instructions_per_slot - 17.69).abs() < 0.05);
        // OC-3 budget is 4× the OC-12 budget (rates are 4:1; slot times
        // round to the picosecond, so allow that rounding).
        assert!((oc3.instructions_per_slot / oc12.instructions_per_slot - 4.0).abs() < 1e-5);
    }

    #[test]
    fn budget_scales_linearly_with_mips() {
        let rows = budget_rows(&[10.0, 20.0]);
        let r10 = &rows[0];
        let r20 = &rows[1];
        assert!((r20.instructions_per_slot - 2.0 * r10.instructions_per_slot).abs() < 1e-9);
    }
}
