//! # hni-analysis — the closed-form side of the evaluation
//!
//! The paper's methodology is analysis first, implementation second:
//! count the instructions, divide by the MIPS, compare to the cell
//! clock. This crate is that analysis, over the **same** cost tables
//! (`hni_core::TaskCosts`) the discrete-event simulations consume — so
//! when EXPERIMENTS.md shows analysis and simulation agreeing, that is
//! two genuinely different evaluation methods meeting, and where they
//! *disagree* the delta is queueing (the thing closed forms can't see).
//!
//! * [`budget`] — R-T1: cell clocks vs engine instruction budgets.
//! * [`partition`] — R-T2: per-task costs under each hardware split and
//!   the resulting per-stage bottleneck cell rates.
//! * [`throughput`] — R-F1/R-F2 overlays: goodput vs packet size from
//!   the three resource bounds (engine, bus, link).
//! * [`latency`] — R-F3: unloaded end-to-end latency, by component.
//! * [`memory`] — R-T3: adaptor memory per frame under six buffer
//!   organisations.
//! * [`loss`] — R-F5: goodput vs cell-loss rate, AAL5 vs AAL3/4,
//!   frame-size crossovers.
//! * [`overhead`] — R-T5: where the 622 Mb/s goes (layer-by-layer
//!   overhead waterfall).

pub mod budget;
pub mod latency;
pub mod loss;
pub mod memory;
pub mod overhead;
pub mod partition;
pub mod throughput;

pub use budget::{budget_rows, BudgetRow};
pub use latency::{unloaded_latency, LatencyBreakdown};
pub use loss::{goodput_under_loss, LossPoint};
pub use memory::{memory_rows, MemoryStrategy, StrategyRow};
pub use overhead::{overhead_waterfall, OverheadStep};
pub use partition::{partition_rows, stage_rates, PartitionRow, StageRates};
pub use throughput::{predict_rx, predict_tx, ThroughputPrediction};
