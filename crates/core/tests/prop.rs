//! Property-based tests for the host-interface core.

use hni_aal::AalType;
use hni_atm::VcId;
use hni_core::bufpool::{BufferPool, PoolConfig};
use hni_core::engine::HwPartition;
use hni_core::rxsim::{run_rx, RxConfig, RxWorkload};
use hni_core::txsim::{run_tx, TxConfig, TxPacket};
use hni_sim::{Duration, Time};
use hni_sonet::LineRate;
use proptest::prelude::*;

fn arb_partition() -> impl Strategy<Value = HwPartition> {
    prop_oneof![
        Just(HwPartition::all_software()),
        Just(HwPartition::paper_split()),
        Just(HwPartition::full_hardware()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transmit conservation: every offered packet is sent exactly once,
    /// with exactly the AAL's cell count, under any workload/partition.
    #[test]
    fn tx_conservation(
        lens in proptest::collection::vec(0usize..20_000, 1..12),
        partition in arb_partition(),
        n_vcs in 1u16..5,
        pacing in any::<bool>(),
    ) {
        let mut cfg = TxConfig::paper(LineRate::Oc12);
        cfg.partition = partition;
        cfg.pacing = pacing;
        let packets: Vec<TxPacket> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| TxPacket {
                vc: VcId::new(0, 32 + (i as u16 % n_vcs)),
                len,
                arrival: Time::from_us(i as u64 * 3),
                pcr: if pacing { Some(200_000.0) } else { None },
            })
            .collect();
        let r = run_tx(&cfg, &packets);
        prop_assert_eq!(r.packets_sent, packets.len() as u64);
        let expected_cells: usize = lens
            .iter()
            .map(|&l| AalType::Aal5.cells_for_sdu(l).max(1))
            .sum();
        prop_assert_eq!(r.cells_sent, expected_cells as u64);
        prop_assert_eq!(r.payload_octets, lens.iter().map(|&l| l as u64).sum::<u64>());
        // Utilizations are sane fractions.
        prop_assert!(r.engine_util >= 0.0 && r.engine_util <= 1.0 + 1e-9);
        prop_assert!(r.link_util >= 0.0 && r.link_util <= 1.0 + 1e-9);
        prop_assert!(r.fifo_peak <= cfg.fifo_cells as u64);
    }

    /// Receive conservation: delivered + failed ≤ offered packets, and
    /// every loss is attributed to a counted cause.
    #[test]
    fn rx_conservation(
        n_vcs in 1usize..8,
        pkts_per_vc in 1usize..6,
        len in 0usize..12_000,
        load in 0.2f64..1.0,
        partition in arb_partition(),
    ) {
        let mut cfg = RxConfig::paper(LineRate::Oc12);
        cfg.partition = partition;
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, n_vcs, pkts_per_vc, len, load);
        let r = run_rx(&cfg, &wl);
        let offered = (n_vcs * pkts_per_vc) as u64;
        prop_assert!(r.delivered_packets + r.failed_packets <= offered + r.failed_packets);
        prop_assert!(r.delivered_packets <= offered);
        // A packet that is neither delivered nor failed does not exist
        // when no drops occurred.
        if r.dropped_fifo + r.dropped_pool == 0 {
            prop_assert_eq!(r.delivered_packets, offered);
            prop_assert_eq!(r.failed_packets, 0);
        }
        prop_assert_eq!(r.delivered_octets, r.delivered_packets * len as u64);
        prop_assert!(r.fifo_peak <= cfg.fifo_cells as u64);
        prop_assert!(r.pool_peak <= cfg.pool.total_buffers as u64);
    }

    /// Buffer-pool conservation against a reference count, under random
    /// operation sequences.
    #[test]
    fn pool_reference_model(
        total in 1usize..64,
        k in prop_oneof![Just(1usize), Just(8), Just(32)],
        ops in proptest::collection::vec((0u32..8, any::<bool>()), 1..300),
    ) {
        let mut pool = BufferPool::new(PoolConfig { total_buffers: total, cells_per_buffer: k });
        // Reference: per-chain cell counts.
        let mut chains: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for (chain, is_append) in ops {
            if is_append {
                let cells = chains.get(&chain).copied().unwrap_or(0);
                let buffers_needed_now = if cells % k == 0 { 1 } else { 0 };
                let in_use: usize = chains.values().map(|&c| c.div_ceil(k)).sum();
                let expect_ok = in_use + buffers_needed_now <= total
                    && (buffers_needed_now == 0 || in_use < total);
                let got = pool.append_cell(Time::ZERO, chain);
                prop_assert_eq!(got.is_ok(), expect_ok, "append chain {}", chain);
                if got.is_ok() {
                    *chains.entry(chain).or_insert(0) += 1;
                }
            } else {
                let expected_freed = chains.remove(&chain).map(|c| c.div_ceil(k)).unwrap_or(0);
                prop_assert_eq!(pool.release_chain(Time::ZERO, chain), expected_freed);
            }
            let in_use: usize = chains.values().map(|&c| c.div_ceil(k)).sum();
            prop_assert_eq!(pool.in_use(), in_use);
            for (&c, &cells) in &chains {
                prop_assert_eq!(pool.cells_of(c), cells);
            }
        }
    }

    /// Determinism under arbitrary workloads: two identical runs give
    /// identical reports.
    #[test]
    fn tx_determinism(lens in proptest::collection::vec(1usize..9000, 1..8)) {
        let cfg = TxConfig::paper(LineRate::Oc3);
        let packets: Vec<TxPacket> = lens
            .iter()
            .map(|&len| TxPacket { vc: VcId::new(0, 32), len, arrival: Time::ZERO, pcr: None })
            .collect();
        let a = run_tx(&cfg, &packets);
        let b = run_tx(&cfg, &packets);
        prop_assert_eq!(a.finished_at, b.finished_at);
        prop_assert_eq!(a.engine_busy, b.engine_busy);
        prop_assert_eq!(a.cells_sent, b.cells_sent);
    }

    /// Goodput never exceeds the link payload ceiling.
    #[test]
    fn tx_never_beats_the_link(lens in proptest::collection::vec(1usize..30_000, 1..10)) {
        let cfg = TxConfig::paper(LineRate::Oc12);
        let packets: Vec<TxPacket> = lens
            .iter()
            .map(|&len| TxPacket { vc: VcId::new(0, 32), len, arrival: Time::ZERO, pcr: None })
            .collect();
        let r = run_tx(&cfg, &packets);
        prop_assert!(r.goodput_bps <= LineRate::Oc12.payload_bps() * (48.0 / 53.0) + 1.0);
    }

    /// A paced VC's inter-departure gaps never violate its PCR by more
    /// than one slot of rounding.
    #[test]
    fn pacing_never_violates_pcr(pcr_kcells in 10u64..500, len in 480usize..5000) {
        let mut cfg = TxConfig::paper(LineRate::Oc12);
        cfg.pacing = true;
        let pcr = pcr_kcells as f64 * 1000.0;
        let packets = vec![TxPacket {
            vc: VcId::new(0, 40),
            len,
            arrival: Time::ZERO,
            pcr: Some(pcr),
        }];
        let r = run_tx(&cfg, &packets);
        if let Some(s) = r.interdeparture_us.get(&VcId::new(0, 40)) {
            if s.count() > 0 {
                let min_gap_us = 1e6 / pcr;
                let slot_us = Duration::from_ps(707_799).as_us_f64();
                prop_assert!(
                    s.min() + slot_us + 0.01 >= min_gap_us,
                    "min gap {} vs contract {}",
                    s.min(),
                    min_gap_us
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end composition conserves packets below saturation and
    /// never invents latency smaller than propagation.
    #[test]
    fn e2e_conservation(
        lens in proptest::collection::vec(1usize..9000, 1..8),
        prop_us in 1u64..1000,
    ) {
        use hni_core::e2esim::run_e2e;
        use hni_core::rxsim::RxConfig;
        let txc = TxConfig::paper(LineRate::Oc12);
        let rxc = RxConfig::paper(LineRate::Oc12);
        let packets: Vec<TxPacket> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| TxPacket {
                vc: VcId::new(0, 32 + (i % 3) as u16),
                len,
                arrival: Time::from_us(i as u64 * 11),
                pcr: None,
            })
            .collect();
        let propagation = Duration::from_us(prop_us);
        let r = run_e2e(&txc, &rxc, &packets, propagation);
        prop_assert_eq!(r.delivered, packets.len() as u64);
        prop_assert_eq!(r.latency_us.count(), packets.len() as u64);
        prop_assert!(
            r.latency_us.min() >= propagation.as_us_f64(),
            "latency {} < propagation {}",
            r.latency_us.min(),
            propagation.as_us_f64()
        );
    }
}
