//! The single configuration type the whole interface hangs off.

use crate::bufpool::{DiscardPolicy, PoolConfig};
use crate::bus::BusConfig;
use crate::engine::HwPartition;
use crate::rxsim::RxConfig;
use crate::txsim::TxConfig;
use hni_aal::AalType;
use hni_sim::{BusFaultPlan, Duration};
use hni_sonet::LineRate;

/// Full host-interface configuration: one struct feeds the timing
/// simulations ([`crate::txsim`], [`crate::rxsim`]) and the functional
/// data path ([`crate::nic`]).
#[derive(Clone, Debug)]
pub struct NicConfig {
    /// SONET line rate.
    pub rate: LineRate,
    /// Protocol engine speed, MIPS (per direction — the architecture
    /// provisions one engine each way).
    pub mips: f64,
    /// Hardware-assist partition.
    pub partition: HwPartition,
    /// Host bus parameters.
    pub bus: BusConfig,
    /// Transmit output FIFO, in cells.
    pub tx_fifo_cells: usize,
    /// Receive input FIFO, in cells.
    pub rx_fifo_cells: usize,
    /// Receive reassembly buffer pool.
    pub pool: PoolConfig,
    /// Adaptation layer for user VCs.
    pub aal: AalType,
    /// Per-VC GCRA pacing on transmit.
    pub pacing: bool,
    /// CAM capacity (simultaneous open VCs).
    pub cam_capacity: usize,
    /// Largest SDU accepted.
    pub max_sdu: usize,
    /// Receive reassembly timeout.
    pub reassembly_timeout: Duration,
}

impl NicConfig {
    /// The architecture's design point.
    pub fn paper(rate: LineRate) -> Self {
        NicConfig {
            rate,
            mips: 25.0,
            partition: HwPartition::paper_split(),
            bus: BusConfig::default(),
            tx_fifo_cells: 16,
            rx_fifo_cells: 16,
            pool: PoolConfig {
                total_buffers: 256,
                cells_per_buffer: 32,
            },
            aal: AalType::Aal5,
            pacing: false,
            cam_capacity: 256,
            max_sdu: 65535,
            reassembly_timeout: Duration::from_ms(10),
        }
    }

    /// Ablation: no hardware assists.
    pub fn all_software(rate: LineRate) -> Self {
        NicConfig {
            partition: HwPartition::all_software(),
            ..Self::paper(rate)
        }
    }

    /// Ablation: full per-cell hardware.
    pub fn full_hardware(rate: LineRate) -> Self {
        NicConfig {
            partition: HwPartition::full_hardware(),
            ..Self::paper(rate)
        }
    }

    /// Derive the transmit-simulation view of this configuration.
    pub fn tx_config(&self) -> TxConfig {
        TxConfig {
            rate: self.rate,
            mips: self.mips,
            partition: self.partition,
            bus: self.bus,
            fifo_cells: self.tx_fifo_cells,
            pacing: self.pacing,
            aal: self.aal,
        }
    }

    /// Derive the receive-simulation view of this configuration.
    pub fn rx_config(&self) -> RxConfig {
        RxConfig {
            rate: self.rate,
            mips: self.mips,
            partition: self.partition,
            bus: self.bus,
            fifo_cells: self.rx_fifo_cells,
            pool: self.pool,
            aal: self.aal,
            policy: DiscardPolicy::DropTail,
            reassembly_timeout: self.reassembly_timeout,
            bus_faults: BusFaultPlan::NONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_partition() {
        let p = NicConfig::paper(LineRate::Oc12);
        let s = NicConfig::all_software(LineRate::Oc12);
        let h = NicConfig::full_hardware(LineRate::Oc12);
        assert_eq!(p.mips, s.mips);
        assert_eq!(p.cam_capacity, h.cam_capacity);
        assert_ne!(p.partition, s.partition);
        assert_ne!(p.partition, h.partition);
    }

    #[test]
    fn derived_views_carry_fields() {
        let c = NicConfig::paper(LineRate::Oc3);
        assert_eq!(c.tx_config().fifo_cells, c.tx_fifo_cells);
        assert_eq!(c.rx_config().pool, c.pool);
        assert_eq!(c.tx_config().rate, LineRate::Oc3);
    }
}
