//! Discrete-event simulation of the **transmit pipeline**:
//!
//! ```text
//! host descriptor ─► engine: packet setup
//!                      │
//!        host memory ══╪═ DMA bursts over the bus ═► adaptor memory
//!                      │                                │
//!                      └► engine: per-cell segmentation ┘
//!                             (header, CRC, HEC)
//!                                   │ (per-VC pacer)
//!                                   ▼
//!                         output cell FIFO ─► framer slot every
//!                                             708 ns (OC-12) / 2.83 µs (OC-3)
//! ```
//!
//! Three serial resources can each be the bottleneck — the engine (one
//! task at a time), the bus (burst-granular, shared), and the link (one
//! cell per payload slot). The simulation lets them contend and
//! backpressure each other exactly as the hardware would:
//!
//! * at most one cell of a VC is "in flight" between segmentation and
//!   the FIFO — segmentation stalls when the FIFO is full;
//! * DMA bursts for a packet are issued serially and share the bus FCFS;
//! * multiple VCs segment concurrently (their engine tasks interleave),
//!   which is how per-VC *pacing* can hold one VC's cells back without
//!   idling the interface.
//!
//! The simulation works on packet metadata (lengths, VCs), not payload
//! octets: timing is what is under test here; the byte-exact data path
//! lives in [`crate::nic`] and is exercised by the integration tests.

use crate::bus::{Bus, BusConfig};
use crate::engine::{HwPartition, ProtocolEngine, TaskKind};
use hni_aal::AalType;
use hni_atm::{Gcra, VcId};
use hni_sim::{Duration, EventQueue, Summary, Time};
use hni_sonet::LineRate;
use hni_telemetry::{
    Activity, Component, HdrHist, NullProfiler, NullTracer, Profiler, Stage, TailReservoir,
    TraceEvent, Tracer, VcMetrics,
};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Transmit-pipeline configuration.
#[derive(Clone, Debug)]
pub struct TxConfig {
    /// Link rate the framer drains at.
    pub rate: LineRate,
    /// Engine speed in MIPS.
    pub mips: f64,
    /// Hardware/software split.
    pub partition: HwPartition,
    /// Bus parameters.
    pub bus: BusConfig,
    /// Output FIFO depth in cells.
    pub fifo_cells: usize,
    /// Whether per-VC GCRA pacing is enforced.
    pub pacing: bool,
    /// Adaptation layer (sets cells-per-packet arithmetic).
    pub aal: AalType,
}

impl TxConfig {
    /// The architecture's design point at a given rate.
    pub fn paper(rate: LineRate) -> Self {
        TxConfig {
            rate,
            mips: 25.0,
            partition: HwPartition::paper_split(),
            bus: BusConfig::default(),
            fifo_cells: 16,
            pacing: false,
            aal: AalType::Aal5,
        }
    }
}

/// One packet offered to the transmit path.
#[derive(Clone, Copy, Debug)]
pub struct TxPacket {
    /// Connection to send on.
    pub vc: VcId,
    /// SDU length in octets.
    pub len: usize,
    /// When the descriptor reaches the interface.
    pub arrival: Time,
    /// Peak cell rate for pacing (cells/s); `None` = line rate.
    pub pcr: Option<f64>,
}

/// Results of a transmit simulation run.
#[derive(Clone, Debug)]
pub struct TxReport {
    /// Packets fully transmitted.
    pub packets_sent: u64,
    /// Cells put on the line.
    pub cells_sent: u64,
    /// SDU octets carried by completed packets.
    pub payload_octets: u64,
    /// Time the last cell left the framer.
    pub finished_at: Time,
    /// Goodput in bits/second (SDU octets over the whole run).
    pub goodput_bps: f64,
    /// Engine busy time.
    pub engine_busy: Duration,
    /// Engine utilization.
    pub engine_util: f64,
    /// Bus busy time.
    pub bus_busy: Duration,
    /// Bus utilization.
    pub bus_util: f64,
    /// Fraction of framer slots that carried a data cell.
    pub link_util: f64,
    /// Packet latency (descriptor arrival → last cell on line), µs.
    pub packet_latency_us: Summary,
    /// Packet latency distribution (ps): always-on log₂ histogram with
    /// p50/p90/p99/p999 bands — the tail the mean above hides.
    pub latency_hist: HdrHist,
    /// Tail exemplars: identities of the slowest packets plus a
    /// deterministic identity sample — the histogram's tail, with
    /// names attached (always on, fixed capacity).
    pub tail: TailReservoir,
    /// Per-VC cell volume at bounded cardinality: exact sharded totals
    /// plus the space-saving heavy-hitter top-K (always on, O(K)).
    pub vc_cells: VcMetrics,
    /// Per-VC inter-departure times of cells, µs (jitter analysis).
    pub interdeparture_us: HashMap<VcId, Summary>,
    /// Peak output-FIFO occupancy.
    pub fifo_peak: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CellState {
    /// No cell being worked on (waiting for bytes or nothing left).
    Idle,
    /// A per-cell engine task is queued/running.
    EngineQueued,
    /// The cell is built, waiting for pacer/FIFO admission.
    BuiltWaiting,
}

struct Pkt {
    idx: usize,
    len: usize,
    cells_total: usize,
    bursts_total: u32,
    bursts_issued: u32,
    bytes_fetched: usize,
    cells_built: usize,
    cells_pushed: usize,
    cell_state: CellState,
}

struct VcCtx {
    /// Position of this context in the contexts vector (stable).
    index: usize,
    vc: VcId,
    waiting: VecDeque<usize>,
    cur: Option<Pkt>,
    gcra: Option<Gcra>,
    last_departure: Option<Time>,
}

#[derive(Clone, Copy, Debug)]
enum ETask {
    Setup(usize),
    Burst(usize),
    Cell(usize),
    Complete(usize),
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    Arrive(usize),
    EngineDone(ETask),
    BurstDone(usize),
    PacerRelease(usize),
    FramerSlot,
}

/// A cell departure observed at the framer (for end-to-end composition).
#[derive(Clone, Copy, Debug)]
pub struct CellDeparture {
    /// When the cell left on the line.
    pub at: Time,
    /// Index of its packet in the workload.
    pub pkt: usize,
    /// Whether it was the packet's final cell.
    pub is_last: bool,
}

/// Run the transmit pipeline over `packets` (need not be sorted).
pub fn run_tx(cfg: &TxConfig, packets: &[TxPacket]) -> TxReport {
    run_tx_inner(cfg, packets, &mut None, &mut NullTracer, &mut NullProfiler)
}

/// Like [`run_tx`], additionally returning every cell's departure time —
/// the input the end-to-end composition ([`crate::e2esim`]) feeds to the
/// receive pipeline.
pub fn run_tx_traced(cfg: &TxConfig, packets: &[TxPacket]) -> (TxReport, Vec<CellDeparture>) {
    let mut trace = Some(Vec::new());
    let report = run_tx_inner(cfg, packets, &mut trace, &mut NullTracer, &mut NullProfiler);
    (report, trace.expect("trace requested"))
}

/// Like [`run_tx_traced`], emitting a structured [`TraceEvent`] at every
/// pipeline stage boundary (descriptor fetch, setup span, DMA bursts,
/// segmentation spans, FIFO admission, framer hand-off) into `tracer`.
pub fn run_tx_instrumented(
    cfg: &TxConfig,
    packets: &[TxPacket],
    tracer: &mut dyn Tracer,
) -> (TxReport, Vec<CellDeparture>) {
    run_tx_full(cfg, packets, tracer, &mut NullProfiler)
}

/// Like [`run_tx_traced`], charging every simulated interval into the
/// cycle-accounting `profiler`: engine busy time and its classified
/// stalls (`tx.engine`), bus data and arbitration cycles (`tx.bus`),
/// framer cell slots (`tx.link`), and the output-FIFO occupancy gauge
/// (`tx.fifo`).
pub fn run_tx_profiled(
    cfg: &TxConfig,
    packets: &[TxPacket],
    profiler: &mut dyn Profiler,
) -> (TxReport, Vec<CellDeparture>) {
    run_tx_full(cfg, packets, &mut NullTracer, profiler)
}

/// Both observability sinks at once — what the end-to-end composition
/// runs so one pass can feed the tracer and the profiler.
pub(crate) fn run_tx_full(
    cfg: &TxConfig,
    packets: &[TxPacket],
    tracer: &mut dyn Tracer,
    profiler: &mut dyn Profiler,
) -> (TxReport, Vec<CellDeparture>) {
    let mut trace = Some(Vec::new());
    let report = run_tx_inner(cfg, packets, &mut trace, tracer, profiler);
    (report, trace.expect("trace requested"))
}

fn run_tx_inner(
    cfg: &TxConfig,
    packets: &[TxPacket],
    trace: &mut Option<Vec<CellDeparture>>,
    tracer: &mut dyn Tracer,
    profiler: &mut dyn Profiler,
) -> TxReport {
    let engine = ProtocolEngine::new(cfg.mips, &cfg.partition);
    let mut bus = Bus::new(cfg.bus);
    let slot = cfg.rate.cell_slot_time();

    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut ctxs: Vec<VcCtx> = Vec::new();
    // VC → context index through the sharded connection table: the TX
    // side's analogue of the receive CAM lookup.
    let mut ctx_of: hni_atm::VcTable<usize> = hni_atm::VcTable::new();

    // Sort arrivals into the event queue.
    let mut order: Vec<usize> = (0..packets.len()).collect();
    order.sort_by_key(|&i| packets[i].arrival);
    for i in order {
        q.schedule(packets[i].arrival, Ev::Arrive(i));
    }

    let mut engine_q: VecDeque<ETask> = VecDeque::new();
    let mut engine_busy = false;
    let mut engine_busy_total = Duration::ZERO;
    // Profiler bookkeeping. `bursts_in_flight` is maintained even with
    // the profiler off (one integer per burst, no behavioral effect) so
    // the hot path stays branch-identical; the idle marker only exists
    // while profiling.
    let mut bursts_in_flight: u32 = 0;
    let mut engine_idle_since: Option<(Time, Activity)> = None;

    let mut fifo: VecDeque<(usize, bool, usize)> = VecDeque::new(); // (ctx, is_last, pkt idx)
    let mut fifo_peak: u64 = 0;
    let mut pending_push: VecDeque<usize> = VecDeque::new();
    let mut framer_active = false;

    let mut packets_sent = 0u64;
    let mut cells_sent = 0u64;
    let mut payload_octets = 0u64;
    let mut finished_at = Time::ZERO;
    let mut packet_latency = Summary::new();
    let mut latency_hist = HdrHist::new();
    let mut tail = TailReservoir::paper();
    let mut vc_cells = VcMetrics::new();
    let mut interdeparture: HashMap<VcId, Summary> = HashMap::new();
    let mut slots_elapsed: u64 = 0;

    // Helper closures are impossible with this much shared state; a
    // small macro keeps the engine dispatch readable instead.
    macro_rules! kick_engine {
        ($q:expr, $now:expr) => {
            if !engine_busy {
                if let Some(task) = engine_q.pop_front() {
                    engine_busy = true;
                    let t = match task {
                        ETask::Setup(_) => engine.task_time(TaskKind::TxPacketSetup),
                        ETask::Burst(_) => engine.task_time(TaskKind::TxDmaBurst),
                        ETask::Cell(_) => {
                            engine.task_time(TaskKind::TxCellSegment)
                                + engine.task_time(TaskKind::TxCellCrc)
                                + engine.task_time(TaskKind::TxHec)
                        }
                        ETask::Complete(_) => engine.task_time(TaskKind::TxPacketComplete),
                    };
                    engine_busy_total += t;
                    if profiler.enabled() {
                        if let Some((since, cause)) = engine_idle_since.take() {
                            profiler.charge(
                                Component::TxEngine,
                                cause,
                                since,
                                $now.saturating_since(since),
                            );
                        }
                        profiler.charge(Component::TxEngine, Activity::Busy, $now, t);
                    }
                    if tracer.enabled() {
                        // Open a span for the engine's per-packet setup and
                        // per-cell segmentation work (closed at EngineDone).
                        let stage = match task {
                            ETask::Setup(_) => TaskKind::TxPacketSetup.trace_stage(),
                            ETask::Cell(_) => TaskKind::TxCellSegment.trace_stage(),
                            ETask::Complete(_) => TaskKind::TxPacketComplete.trace_stage(),
                            ETask::Burst(_) => None,
                        };
                        let (ETask::Setup(ci)
                        | ETask::Burst(ci)
                        | ETask::Cell(ci)
                        | ETask::Complete(ci)) = task;
                        if let (Some(stage), Some(pkt)) = (stage, ctxs[ci].cur.as_ref()) {
                            tracer.record(
                                TraceEvent::enter($now, stage)
                                    .vc(ctxs[ci].vc.cam_key())
                                    .pkt(pkt.idx),
                            );
                        }
                    }
                    $q.schedule_in(t, Ev::EngineDone(task));
                } else if profiler.enabled() && engine_idle_since.is_none() {
                    // The engine goes idle here; classify the cause at
                    // the moment the stall begins. Outstanding DMA means
                    // the next cell is waiting on the bus; a cell parked
                    // in `pending_push` means segmentation is blocked on
                    // FIFO space; otherwise there is simply no work.
                    let cause = if bursts_in_flight > 0 {
                        Activity::StalledBus
                    } else if !pending_push.is_empty() {
                        Activity::StalledFifo
                    } else {
                        Activity::Idle
                    };
                    engine_idle_since = Some(($now, cause));
                }
            }
        };
    }

    macro_rules! ensure_framer {
        ($q:expr) => {
            if !framer_active {
                framer_active = true;
                $q.schedule_in(slot, Ev::FramerSlot);
            }
        };
    }

    let payload_per_cell = cfg.aal.payload_per_cell();

    // --- main event loop ---
    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::Arrive(i) => {
                let p = &packets[i];
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, Stage::TxDescriptor)
                            .vc(p.vc.cam_key())
                            .pkt(i),
                    );
                }
                let ci = {
                    let ctxs = &mut ctxs;
                    *ctx_of
                        .get_or_insert_with(p.vc.cam_key() as u64, || {
                            ctxs.push(VcCtx {
                                index: ctxs.len(),
                                vc: p.vc,
                                waiting: VecDeque::new(),
                                cur: None,
                                gcra: None,
                                last_departure: None,
                            });
                            ctxs.len() - 1
                        })
                        .expect("unbounded table never refuses")
                        .1
                };
                ctxs[ci].waiting.push_back(i);
                if ctxs[ci].cur.is_none() {
                    start_next_packet(&mut ctxs[ci], packets, cfg, &mut engine_q);
                    kick_engine!(q, now);
                }
            }
            Ev::EngineDone(task) => {
                engine_busy = false;
                match task {
                    ETask::Setup(ci) => {
                        if tracer.enabled() {
                            let c = &ctxs[ci];
                            let idx = c.cur.as_ref().expect("setup without packet").idx;
                            tracer.record(
                                TraceEvent::exit(now, Stage::TxSetup)
                                    .vc(c.vc.cam_key())
                                    .pkt(idx),
                            );
                        }
                        let pkt = ctxs[ci].cur.as_mut().expect("setup without packet");
                        if pkt.bursts_total == 0 || pkt.len == 0 {
                            pkt.bytes_fetched = pkt.len;
                            try_start_cell(&mut ctxs[ci], &mut engine_q, payload_per_cell);
                        } else {
                            issue_burst(
                                ci,
                                &mut ctxs[ci],
                                cfg,
                                &engine,
                                &mut engine_q,
                                &mut bus,
                                now,
                                &mut q,
                                profiler,
                                &mut bursts_in_flight,
                            );
                        }
                    }
                    ETask::Burst(ci) => {
                        // Engine part done: burst occupies the bus now.
                        let pkt = ctxs[ci].cur.as_ref().expect("burst without packet");
                        let bi = pkt.bursts_issued - 1;
                        let words = cfg.bus.burst_words(pkt.len.max(1), bi);
                        let bytes =
                            (words as usize * cfg.bus.word_bytes).min(pkt.len.saturating_sub(
                                bi as usize * cfg.bus.max_burst_words as usize * cfg.bus.word_bytes,
                            ));
                        let done =
                            bus.grant_profiled(now, words, bytes, Component::TxBus, profiler);
                        bursts_in_flight += 1;
                        q.schedule(done, Ev::BurstDone(ci));
                    }
                    ETask::Cell(ci) => {
                        let pkt = ctxs[ci].cur.as_mut().expect("cell without packet");
                        pkt.cells_built += 1;
                        pkt.cell_state = CellState::BuiltWaiting;
                        if tracer.enabled() {
                            let c = &ctxs[ci];
                            let pkt = c.cur.as_ref().expect("cell without packet");
                            tracer.record(
                                TraceEvent::exit(now, Stage::TxSegment)
                                    .vc(c.vc.cam_key())
                                    .pkt(pkt.idx)
                                    .cell(pkt.cells_built as u64 - 1),
                            );
                        }
                        attempt_push(
                            ci,
                            &mut ctxs,
                            cfg,
                            now,
                            &mut q,
                            &mut fifo,
                            &mut fifo_peak,
                            &mut pending_push,
                            &mut engine_q,
                            payload_per_cell,
                            tracer,
                            profiler,
                        );
                        ensure_framer!(q);
                    }
                    ETask::Complete(ci) => {
                        if tracer.enabled() {
                            let c = &ctxs[ci];
                            let idx = c.cur.as_ref().expect("complete without packet").idx;
                            tracer.record(
                                TraceEvent::exit(now, Stage::TxComplete)
                                    .vc(c.vc.cam_key())
                                    .pkt(idx),
                            );
                        }
                        let ctx = &mut ctxs[ci];
                        ctx.cur = None;
                        if !ctx.waiting.is_empty() {
                            start_next_packet(ctx, packets, cfg, &mut engine_q);
                        }
                    }
                }
                kick_engine!(q, now);
            }
            Ev::BurstDone(ci) => {
                bursts_in_flight -= 1;
                let (more, added, idx) = {
                    let pkt = ctxs[ci].cur.as_mut().expect("burst done without packet");
                    let per = cfg.bus.max_burst_words as usize * cfg.bus.word_bytes;
                    let before = pkt.bytes_fetched;
                    pkt.bytes_fetched = (before + per).min(pkt.len);
                    (
                        pkt.bursts_issued < pkt.bursts_total,
                        pkt.bytes_fetched - before,
                        pkt.idx,
                    )
                };
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, Stage::TxDmaBurst)
                            .vc(ctxs[ci].vc.cam_key())
                            .pkt(idx)
                            .arg(added as u64),
                    );
                }
                if more {
                    issue_burst(
                        ci,
                        &mut ctxs[ci],
                        cfg,
                        &engine,
                        &mut engine_q,
                        &mut bus,
                        now,
                        &mut q,
                        profiler,
                        &mut bursts_in_flight,
                    );
                }
                try_start_cell(&mut ctxs[ci], &mut engine_q, payload_per_cell);
                kick_engine!(q, now);
            }
            Ev::PacerRelease(ci) => {
                attempt_push(
                    ci,
                    &mut ctxs,
                    cfg,
                    now,
                    &mut q,
                    &mut fifo,
                    &mut fifo_peak,
                    &mut pending_push,
                    &mut engine_q,
                    payload_per_cell,
                    tracer,
                    profiler,
                );
                ensure_framer!(q);
                kick_engine!(q, now);
            }
            Ev::FramerSlot => {
                slots_elapsed += 1;
                if let Some((ci, is_last, pkt_idx)) = fifo.pop_front() {
                    cells_sent += 1;
                    // Always-on per-VC accounting: O(K) scan, no alloc,
                    // purely observational (53 wire octets per cell).
                    vc_cells.record_cell(ctxs[ci].vc.cam_key(), 53);
                    if profiler.enabled() {
                        // The cell occupied the slot that just elapsed.
                        let from = Time::from_ps(now.as_ps().saturating_sub(slot.as_ps()));
                        profiler.charge(Component::TxLink, Activity::Transfer, from, slot);
                        profiler.gauge(Component::TxFifo, now, fifo.len() as u64);
                    }
                    if tracer.enabled() {
                        tracer.record(
                            TraceEvent::instant(now, Stage::TxFramer)
                                .vc(ctxs[ci].vc.cam_key())
                                .pkt(pkt_idx)
                                .cell(cells_sent - 1)
                                .arg(fifo.len() as u64),
                        );
                    }
                    if let Some(t) = trace.as_mut() {
                        t.push(CellDeparture {
                            at: now,
                            pkt: pkt_idx,
                            is_last,
                        });
                    }
                    finished_at = now;
                    let ctx = &mut ctxs[ci];
                    if let Some(prev) = ctx.last_departure {
                        interdeparture
                            .entry(ctx.vc)
                            .or_default()
                            .record_us(now.saturating_since(prev));
                    }
                    ctx.last_departure = Some(now);
                    if is_last {
                        packets_sent += 1;
                        payload_octets += packets[pkt_idx].len as u64;
                        let lat = now.saturating_since(packets[pkt_idx].arrival);
                        packet_latency.record_us(lat);
                        latency_hist.record_duration(lat);
                        tail.record(packets[pkt_idx].vc.cam_key(), pkt_idx as u32, lat, now);
                    }
                }
                // Admit waiting VCs into freed FIFO space.
                let mut rounds = pending_push.len();
                while rounds > 0 && fifo.len() < cfg.fifo_cells {
                    rounds -= 1;
                    if let Some(ci) = pending_push.pop_front() {
                        attempt_push(
                            ci,
                            &mut ctxs,
                            cfg,
                            now,
                            &mut q,
                            &mut fifo,
                            &mut fifo_peak,
                            &mut pending_push,
                            &mut engine_q,
                            payload_per_cell,
                            tracer,
                            profiler,
                        );
                    }
                }
                kick_engine!(q, now);
                // Keep the framer running while anything is in flight.
                let work_left = !fifo.is_empty()
                    || !pending_push.is_empty()
                    || ctxs
                        .iter()
                        .any(|c| c.cur.is_some() || !c.waiting.is_empty())
                    || !engine_q.is_empty()
                    || engine_busy
                    || !q.is_empty();
                if work_left {
                    q.schedule_in(slot, Ev::FramerSlot);
                } else {
                    framer_active = false;
                }
            }
        }
    }

    let end = finished_at.max(q.now());
    let elapsed_s = end.saturating_since(Time::ZERO).as_s_f64();
    TxReport {
        packets_sent,
        cells_sent,
        payload_octets,
        finished_at,
        goodput_bps: if elapsed_s > 0.0 {
            payload_octets as f64 * 8.0 / elapsed_s
        } else {
            0.0
        },
        engine_busy: engine_busy_total,
        engine_util: if elapsed_s > 0.0 {
            engine_busy_total.as_s_f64() / elapsed_s
        } else {
            0.0
        },
        bus_busy: bus.busy_time(),
        bus_util: bus.utilization(end),
        link_util: if slots_elapsed > 0 {
            cells_sent as f64 / slots_elapsed as f64
        } else {
            0.0
        },
        packet_latency_us: packet_latency,
        latency_hist,
        tail,
        vc_cells,
        interdeparture_us: interdeparture,
        fifo_peak,
    }
}

fn start_next_packet(
    ctx: &mut VcCtx,
    packets: &[TxPacket],
    cfg: &TxConfig,
    engine_q: &mut VecDeque<ETask>,
) {
    let idx = ctx.waiting.pop_front().expect("caller checked non-empty");
    let p = &packets[idx];
    let cells_total = cfg.aal.cells_for_sdu(p.len).max(1);
    let bursts_total = if p.len == 0 {
        0
    } else {
        cfg.bus.bursts_for(p.len)
    };
    if cfg.pacing {
        let pcr = p.pcr.unwrap_or_else(|| cfg.rate.cell_slots_per_second());
        // Fresh GCRA per VC, persistent across its packets.
        if ctx.gcra.is_none() {
            ctx.gcra = Some(Gcra::from_rate(pcr, 0.0));
        }
    }
    let ci = ctx.index;
    ctx.cur = Some(Pkt {
        idx,
        len: p.len,
        cells_total,
        bursts_total,
        bursts_issued: 0,
        bytes_fetched: 0,
        cells_built: 0,
        cells_pushed: 0,
        cell_state: CellState::Idle,
    });
    engine_q.push_back(ETask::Setup(ci));
}

#[allow(clippy::too_many_arguments)]
fn issue_burst(
    ci: usize,
    ctx: &mut VcCtx,
    cfg: &TxConfig,
    engine: &ProtocolEngine,
    engine_q: &mut VecDeque<ETask>,
    bus: &mut Bus,
    now: Time,
    q: &mut EventQueue<Ev>,
    profiler: &mut dyn Profiler,
    bursts_in_flight: &mut u32,
) {
    let pkt = ctx.cur.as_mut().expect("burst for missing packet");
    debug_assert!(pkt.bursts_issued < pkt.bursts_total);
    pkt.bursts_issued += 1;
    if engine.partition.in_hardware(TaskKind::TxDmaBurst) {
        // Hardware sequencer: straight to the bus.
        let bi = pkt.bursts_issued - 1;
        let words = cfg.bus.burst_words(pkt.len.max(1), bi);
        let base = bi as usize * cfg.bus.max_burst_words as usize * cfg.bus.word_bytes;
        let bytes = (words as usize * cfg.bus.word_bytes).min(pkt.len.saturating_sub(base));
        let done = bus.grant_profiled(now, words, bytes, Component::TxBus, profiler);
        *bursts_in_flight += 1;
        q.schedule(done, Ev::BurstDone(ci));
    } else {
        engine_q.push_back(ETask::Burst(ci));
    }
}

fn try_start_cell(ctx: &mut VcCtx, engine_q: &mut VecDeque<ETask>, payload_per_cell: usize) {
    let ci = ctx.index;
    let Some(pkt) = ctx.cur.as_mut() else { return };
    if pkt.cell_state != CellState::Idle {
        return;
    }
    if pkt.cells_built >= pkt.cells_total {
        return;
    }
    let needed = ((pkt.cells_built + 1) * payload_per_cell).min(pkt.len);
    if pkt.bytes_fetched < needed {
        return;
    }
    pkt.cell_state = CellState::EngineQueued;
    engine_q.push_back(ETask::Cell(ci));
}

#[allow(clippy::too_many_arguments)]
fn attempt_push(
    ci: usize,
    ctxs: &mut [VcCtx],
    cfg: &TxConfig,
    now: Time,
    q: &mut EventQueue<Ev>,
    fifo: &mut VecDeque<(usize, bool, usize)>,
    fifo_peak: &mut u64,
    pending_push: &mut VecDeque<usize>,
    engine_q: &mut VecDeque<ETask>,
    payload_per_cell: usize,
    tracer: &mut dyn Tracer,
    profiler: &mut dyn Profiler,
) {
    let ctx = &mut ctxs[ci];
    let Some(pkt) = ctx.cur.as_mut() else { return };
    if pkt.cell_state != CellState::BuiltWaiting {
        return;
    }
    // Pacer gate.
    if cfg.pacing {
        if let Some(g) = &ctx.gcra {
            let t = g.earliest_conforming(now);
            if t > now {
                q.schedule(t, Ev::PacerRelease(ci));
                return;
            }
        }
    }
    // FIFO gate.
    if fifo.len() >= cfg.fifo_cells {
        if !pending_push.contains(&ci) {
            pending_push.push_back(ci);
        }
        return;
    }
    // Push.
    let cell_idx = pkt.cells_pushed;
    let is_last = cell_idx + 1 == pkt.cells_total;
    fifo.push_back((ci, is_last, pkt.idx));
    *fifo_peak = (*fifo_peak).max(fifo.len() as u64);
    if profiler.enabled() {
        profiler.gauge(Component::TxFifo, now, fifo.len() as u64);
    }
    if tracer.enabled() {
        tracer.record(
            TraceEvent::instant(now, Stage::TxFifoEnqueue)
                .vc(ctx.vc.cam_key())
                .pkt(pkt.idx)
                .cell(cell_idx as u64)
                .arg(fifo.len() as u64),
        );
    }
    pkt.cells_pushed += 1;
    pkt.cell_state = CellState::Idle;
    if let Some(g) = ctx.gcra.as_mut() {
        if cfg.pacing {
            g.stamp(now);
        }
    }
    if pkt.cells_pushed == pkt.cells_total {
        engine_q.push_back(ETask::Complete(ci));
    } else {
        try_start_cell(ctx, engine_q, payload_per_cell);
    }
}

/// Convenience workload: `n` back-to-back packets of `len` octets on one VC.
pub fn greedy_workload(n: usize, len: usize, vc: VcId) -> Vec<TxPacket> {
    (0..n)
        .map(|_| TxPacket {
            vc,
            len,
            arrival: Time::ZERO,
            pcr: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VcId {
        VcId::new(0, 64)
    }

    #[test]
    fn single_packet_completes() {
        let cfg = TxConfig::paper(LineRate::Oc12);
        let r = run_tx(&cfg, &greedy_workload(1, 9180, vc()));
        assert_eq!(r.packets_sent, 1);
        assert_eq!(r.cells_sent, 192); // 9180-byte AAL5 frame
        assert!(r.finished_at > Time::ZERO);
        assert_eq!(r.payload_octets, 9180);
    }

    #[test]
    fn zero_length_packet_still_sends_trailer_cell() {
        let cfg = TxConfig::paper(LineRate::Oc12);
        let r = run_tx(&cfg, &greedy_workload(1, 0, vc()));
        assert_eq!(r.packets_sent, 1);
        assert_eq!(r.cells_sent, 1);
    }

    #[test]
    fn large_packets_approach_link_payload_rate() {
        // 64 KiB packets, paper config, OC-12: the link must be the
        // bottleneck, so goodput ≈ payload rate × AAL5 efficiency.
        let cfg = TxConfig::paper(LineRate::Oc12);
        let r = run_tx(&cfg, &greedy_workload(50, 65000, vc()));
        let ceiling = LineRate::Oc12.payload_bps();
        assert!(
            r.goodput_bps > 0.9 * ceiling,
            "goodput {} vs {ceiling}",
            r.goodput_bps
        );
        assert!(r.goodput_bps < ceiling);
        assert!(r.link_util > 0.95, "link util {}", r.link_util);
    }

    #[test]
    fn all_software_is_engine_bound_at_oc12() {
        let mut cfg = TxConfig::paper(LineRate::Oc12);
        cfg.partition = HwPartition::all_software();
        let r = run_tx(&cfg, &greedy_workload(50, 65000, vc()));
        // Per-cell software cost = (12+150+10)/25 MIPS = 6.88 µs per cell
        // ≫ 708 ns slot: engine-bound at roughly a tenth of the link.
        assert!(r.engine_util > 0.95, "engine util {}", r.engine_util);
        assert!(
            r.goodput_bps < 0.2 * LineRate::Oc12.payload_bps(),
            "goodput {}",
            r.goodput_bps
        );
    }

    #[test]
    fn small_packets_pay_per_packet_overhead() {
        let cfg = TxConfig::paper(LineRate::Oc12);
        let small = run_tx(&cfg, &greedy_workload(400, 64, vc()));
        let large = run_tx(&cfg, &greedy_workload(10, 40_000, vc()));
        assert!(
            small.goodput_bps < large.goodput_bps,
            "small {} !< large {}",
            small.goodput_bps,
            large.goodput_bps
        );
    }

    #[test]
    fn throughput_monotone_in_packet_size() {
        let cfg = TxConfig::paper(LineRate::Oc12);
        let mut prev = 0.0;
        for len in [64, 256, 1024, 4096, 16384, 65000] {
            let r = run_tx(&cfg, &greedy_workload(20, len, vc()));
            assert!(
                r.goodput_bps > prev,
                "len {len}: {} !> {prev}",
                r.goodput_bps
            );
            prev = r.goodput_bps;
        }
    }

    #[test]
    fn oc3_slower_than_oc12_when_link_bound() {
        let r3 = run_tx(
            &TxConfig::paper(LineRate::Oc3),
            &greedy_workload(20, 65000, vc()),
        );
        let r12 = run_tx(
            &TxConfig::paper(LineRate::Oc12),
            &greedy_workload(20, 65000, vc()),
        );
        assert!(r12.goodput_bps > 3.5 * r3.goodput_bps);
    }

    #[test]
    fn pacing_spaces_cells_of_a_slow_vc() {
        let mut cfg = TxConfig::paper(LineRate::Oc12);
        cfg.pacing = true;
        // One VC paced to 10k cells/s: inter-departure must be ≈100 µs.
        let pkts = vec![TxPacket {
            vc: vc(),
            len: 480, // 11 cells
            arrival: Time::ZERO,
            pcr: Some(10_000.0),
        }];
        let r = run_tx(&cfg, &pkts);
        assert_eq!(r.packets_sent, 1);
        let jitter = &r.interdeparture_us[&vc()];
        assert!(
            (jitter.mean() - 100.0).abs() < 2.0,
            "mean inter-departure {} µs",
            jitter.mean()
        );
    }

    #[test]
    fn unpaced_cells_go_back_to_back() {
        let cfg = TxConfig::paper(LineRate::Oc12);
        let r = run_tx(&cfg, &greedy_workload(1, 4800, vc()));
        let d = &r.interdeparture_us[&vc()];
        // Back-to-back at OC-12 payload slots: ~0.708 µs.
        assert!(
            (d.mean() - 0.7078).abs() < 0.02,
            "mean inter-departure {} µs",
            d.mean()
        );
    }

    #[test]
    fn two_vcs_interleave() {
        let cfg = TxConfig::paper(LineRate::Oc12);
        let pkts = vec![
            TxPacket {
                vc: VcId::new(0, 64),
                len: 9180,
                arrival: Time::ZERO,
                pcr: None,
            },
            TxPacket {
                vc: VcId::new(0, 65),
                len: 9180,
                arrival: Time::ZERO,
                pcr: None,
            },
        ];
        let r = run_tx(&cfg, &pkts);
        assert_eq!(r.packets_sent, 2);
        assert_eq!(r.cells_sent, 384);
        // With interleaving, each VC's cells are spaced about twice the
        // slot time on average.
        for s in r.interdeparture_us.values() {
            assert!(s.mean() > 1.0, "interleaved spacing {}", s.mean());
        }
    }

    #[test]
    fn paced_vc_does_not_block_others() {
        let mut cfg = TxConfig::paper(LineRate::Oc12);
        cfg.pacing = true;
        let slow = VcId::new(0, 100);
        let fast = VcId::new(0, 101);
        let pkts = vec![
            TxPacket {
                vc: slow,
                len: 4800,
                arrival: Time::ZERO,
                pcr: Some(1000.0),
            },
            TxPacket {
                vc: fast,
                len: 48000,
                arrival: Time::ZERO,
                pcr: None,
            },
        ];
        let r = run_tx(&cfg, &pkts);
        assert_eq!(r.packets_sent, 2);
        // The fast VC must finish long before the slow one: its last cell
        // leaves within ~1.5 ms, while the slow VC needs ~100 ms.
        // finished_at reflects the slow VC.
        assert!(r.finished_at > Time::from_ms(90));
        // Fast VC inter-departures stay near slot rate (not pacer rate).
        let f = &r.interdeparture_us[&fast];
        assert!(f.mean() < 2.0, "fast vc spacing {}", f.mean());
    }

    #[test]
    fn deterministic() {
        let cfg = TxConfig::paper(LineRate::Oc12);
        let a = run_tx(&cfg, &greedy_workload(30, 9180, vc()));
        let b = run_tx(&cfg, &greedy_workload(30, 9180, vc()));
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.cells_sent, b.cells_sent);
        assert_eq!(a.engine_busy, b.engine_busy);
    }

    #[test]
    fn fifo_peak_bounded_by_capacity() {
        let cfg = TxConfig::paper(LineRate::Oc12);
        let r = run_tx(&cfg, &greedy_workload(20, 65000, vc()));
        assert!(r.fifo_peak <= cfg.fifo_cells as u64);
        assert!(r.fifo_peak > 0);
    }

    #[test]
    fn faster_engine_raises_engine_bound_throughput() {
        let mut cfg = TxConfig::paper(LineRate::Oc12);
        cfg.partition = HwPartition::all_software();
        let slow = run_tx(&cfg, &greedy_workload(20, 40_000, vc()));
        cfg.mips = 100.0;
        let fast = run_tx(&cfg, &greedy_workload(20, 40_000, vc()));
        assert!(fast.goodput_bps > 3.0 * slow.goodput_bps);
    }
}
