//! The receive-side connection lookup: mapping an incoming cell's
//! 24-bit VPI/VCI to a small connection index.
//!
//! At 622 Mb/s the lookup happens every ~708 ns, for a key space of 2²⁴
//! — far too large for a direct table in adaptor SRAM of the era, and a
//! software hash probe eats a fifth of the engine's per-cell budget.
//! The architecture therefore provisions a small **content-addressable
//! memory**: all entries compared in parallel, one cycle, bounded
//! capacity. This module models that device (and, for the all-software
//! ablation, the cost lives in
//! [`crate::engine::TaskKind::RxVciLookup`]).
//!
//! The CAM is also where "is this VC even open?" is answered: a miss is
//! not an error in the device, it is the signal that the cell belongs to
//! no configured connection and must be dropped (counted — those drops
//! are invisible otherwise and real interfaces got this wrong).
//!
//! Since the million-VC work the entry store is an
//! [`hni_atm::VcTable`] — the sharded open-addressing table that scales
//! the same bounded-capacity, hit/miss-accounted semantics to
//! connection counts the hardware CAM never dreamed of — plus a reverse
//! index→key map so the hardware invariant *one connection index, one
//! key* is actually enforced (a real CAM read-out line can only carry
//! one match).

use hni_atm::{VcId, VcTable};
use std::collections::BTreeMap;

/// Result of a CAM lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CamResult {
    /// The key matched: connection index returned.
    Hit(u16),
    /// No entry for this key.
    Miss,
}

/// A capacity-bounded VPI/VCI → connection-index CAM.
///
/// Functionally a hash map; the *capacity bound* and the hit/miss
/// accounting are the architecturally relevant behaviour. Lookup latency
/// is one bus cycle, overlapped with header processing — it never
/// appears as engine time, which is the point of buying a CAM.
pub struct Cam {
    entries: VcTable<u16>,
    /// Reverse map: connection index → the cam key that owns it.
    /// Enforces index uniqueness (and makes `insert`'s refusal of a
    /// stolen index O(log n), with deterministic iteration for free).
    index_owner: BTreeMap<u16, u32>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl std::fmt::Debug for Cam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cam")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl Cam {
    /// A CAM with room for `capacity` simultaneous connections.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Cam {
            entries: VcTable::bounded(capacity),
            index_owner: BTreeMap::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Install a mapping. Returns `false` (and installs nothing) if the
    /// CAM is full or the index is already in use by another key.
    ///
    /// Re-programming an existing key to a new (free) index is allowed,
    /// even at capacity; the key's old index is released.
    pub fn insert(&mut self, vc: VcId, index: u16) -> bool {
        let key = vc.cam_key();
        if let Some(&owner) = self.index_owner.get(&index) {
            if owner != key {
                // One read-out line per index: refuse the steal.
                return false;
            }
        }
        match self.entries.get_mut_by_key(key as u64) {
            Some(slot) => {
                let old = *slot;
                *slot = index;
                if old != index {
                    self.index_owner.remove(&old);
                    self.index_owner.insert(index, key);
                }
                true
            }
            None => {
                if self.entries.insert(key as u64, index).is_none() {
                    return false; // capacity bound
                }
                self.index_owner.insert(index, key);
                true
            }
        }
    }

    /// Remove a mapping; returns whether it existed.
    pub fn remove(&mut self, vc: VcId) -> bool {
        match self.entries.remove(vc.cam_key() as u64) {
            Some(index) => {
                self.index_owner.remove(&index);
                true
            }
            None => false,
        }
    }

    /// Look up a cell's VC (counts hit/miss).
    pub fn lookup(&mut self, vc: VcId) -> CamResult {
        match self.entries.get_by_key(vc.cam_key() as u64) {
            Some(&idx) => {
                self.hits += 1;
                CamResult::Hit(idx)
            }
            None => {
                self.misses += 1;
                CamResult::Miss
            }
        }
    }

    /// Entries currently installed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
    /// Whether the CAM is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
    /// Lookups that matched.
    pub fn hits(&self) -> u64 {
        self.hits
    }
    /// Lookups that missed (cells for unconfigured VCs).
    pub fn misses(&self) -> u64 {
        self.misses
    }
    /// Probe/memory statistics of the backing [`hni_atm::VcTable`].
    pub fn table_stats(&self) -> hni_atm::TableStats {
        self.entries.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut cam = Cam::new(16);
        assert!(cam.insert(VcId::new(1, 100), 3));
        assert_eq!(cam.lookup(VcId::new(1, 100)), CamResult::Hit(3));
        assert_eq!(cam.lookup(VcId::new(1, 101)), CamResult::Miss);
        assert_eq!(cam.hits(), 1);
        assert_eq!(cam.misses(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut cam = Cam::new(2);
        assert!(cam.insert(VcId::new(0, 32), 0));
        assert!(cam.insert(VcId::new(0, 33), 1));
        assert!(
            !cam.insert(VcId::new(0, 34), 2),
            "third entry must be refused"
        );
        assert_eq!(cam.len(), 2);
    }

    #[test]
    fn reprogram_existing_key_allowed_at_capacity() {
        let mut cam = Cam::new(1);
        assert!(cam.insert(VcId::new(0, 32), 0));
        assert!(cam.insert(VcId::new(0, 32), 7), "re-map same key");
        assert_eq!(cam.lookup(VcId::new(0, 32)), CamResult::Hit(7));
    }

    #[test]
    fn remove_frees_space() {
        let mut cam = Cam::new(1);
        cam.insert(VcId::new(0, 32), 0);
        assert!(cam.remove(VcId::new(0, 32)));
        assert!(!cam.remove(VcId::new(0, 32)));
        assert!(cam.insert(VcId::new(0, 33), 1));
    }

    #[test]
    fn distinct_vpi_vci_do_not_collide() {
        // (vpi=1, vci=0) vs (vpi=0, vci=256) must be distinct keys —
        // guards the key packing.
        let mut cam = Cam::new(8);
        cam.insert(VcId::new(1, 0), 10);
        cam.insert(VcId::new(0, 256), 11);
        assert_eq!(cam.lookup(VcId::new(1, 0)), CamResult::Hit(10));
        assert_eq!(cam.lookup(VcId::new(0, 256)), CamResult::Hit(11));
    }

    #[test]
    fn index_collision_refused_as_documented() {
        // The doc has always promised `false` when "the index is
        // already in use by another key"; the HashMap-era code never
        // checked. Pin the now-enforced behaviour.
        let mut cam = Cam::new(8);
        assert!(cam.insert(VcId::new(0, 32), 5));
        assert!(
            !cam.insert(VcId::new(0, 33), 5),
            "index 5 is owned by another key"
        );
        assert_eq!(cam.len(), 1, "refused insert must install nothing");
        assert_eq!(cam.lookup(VcId::new(0, 33)), CamResult::Miss);
        // Same key re-asserting its own index is not a collision.
        assert!(cam.insert(VcId::new(0, 32), 5));
    }

    #[test]
    fn reprogram_releases_old_index() {
        let mut cam = Cam::new(8);
        assert!(cam.insert(VcId::new(0, 32), 1));
        assert!(cam.insert(VcId::new(0, 32), 2), "re-map to a free index");
        // Index 1 is free again for another key.
        assert!(cam.insert(VcId::new(0, 33), 1));
        // But 2 is now taken.
        assert!(!cam.insert(VcId::new(0, 34), 2));
        assert_eq!(cam.lookup(VcId::new(0, 32)), CamResult::Hit(2));
        assert_eq!(cam.lookup(VcId::new(0, 33)), CamResult::Hit(1));
    }

    #[test]
    fn remove_releases_index_for_reuse() {
        let mut cam = Cam::new(8);
        cam.insert(VcId::new(0, 32), 9);
        assert!(!cam.insert(VcId::new(0, 33), 9));
        cam.remove(VcId::new(0, 32));
        assert!(cam.insert(VcId::new(0, 33), 9), "freed index is reusable");
    }
}
