//! The receive-side connection lookup: mapping an incoming cell's
//! 24-bit VPI/VCI to a small connection index.
//!
//! At 622 Mb/s the lookup happens every ~708 ns, for a key space of 2²⁴
//! — far too large for a direct table in adaptor SRAM of the era, and a
//! software hash probe eats a fifth of the engine's per-cell budget.
//! The architecture therefore provisions a small **content-addressable
//! memory**: all entries compared in parallel, one cycle, bounded
//! capacity. This module models that device (and, for the all-software
//! ablation, the cost lives in
//! [`crate::engine::TaskKind::RxVciLookup`]).
//!
//! The CAM is also where "is this VC even open?" is answered: a miss is
//! not an error in the device, it is the signal that the cell belongs to
//! no configured connection and must be dropped (counted — those drops
//! are invisible otherwise and real interfaces got this wrong).

use hni_atm::VcId;
use std::collections::HashMap;

/// Result of a CAM lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CamResult {
    /// The key matched: connection index returned.
    Hit(u16),
    /// No entry for this key.
    Miss,
}

/// A capacity-bounded VPI/VCI → connection-index CAM.
///
/// Functionally a hash map; the *capacity bound* and the hit/miss
/// accounting are the architecturally relevant behaviour. Lookup latency
/// is one bus cycle, overlapped with header processing — it never
/// appears as engine time, which is the point of buying a CAM.
#[derive(Debug)]
pub struct Cam {
    entries: HashMap<u32, u16>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Cam {
    /// A CAM with room for `capacity` simultaneous connections.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Cam {
            entries: HashMap::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Install a mapping. Returns `false` (and installs nothing) if the
    /// CAM is full or the index is already in use by another key.
    pub fn insert(&mut self, vc: VcId, index: u16) -> bool {
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.entries.entry(vc.cam_key())
        {
            // Re-programming an existing key to a new index is allowed.
            e.insert(index);
            return true;
        }
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.insert(vc.cam_key(), index);
        true
    }

    /// Remove a mapping; returns whether it existed.
    pub fn remove(&mut self, vc: VcId) -> bool {
        self.entries.remove(&vc.cam_key()).is_some()
    }

    /// Look up a cell's VC (counts hit/miss).
    pub fn lookup(&mut self, vc: VcId) -> CamResult {
        match self.entries.get(&vc.cam_key()) {
            Some(&idx) => {
                self.hits += 1;
                CamResult::Hit(idx)
            }
            None => {
                self.misses += 1;
                CamResult::Miss
            }
        }
    }

    /// Entries currently installed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
    /// Whether the CAM is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
    /// Lookups that matched.
    pub fn hits(&self) -> u64 {
        self.hits
    }
    /// Lookups that missed (cells for unconfigured VCs).
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut cam = Cam::new(16);
        assert!(cam.insert(VcId::new(1, 100), 3));
        assert_eq!(cam.lookup(VcId::new(1, 100)), CamResult::Hit(3));
        assert_eq!(cam.lookup(VcId::new(1, 101)), CamResult::Miss);
        assert_eq!(cam.hits(), 1);
        assert_eq!(cam.misses(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut cam = Cam::new(2);
        assert!(cam.insert(VcId::new(0, 32), 0));
        assert!(cam.insert(VcId::new(0, 33), 1));
        assert!(
            !cam.insert(VcId::new(0, 34), 2),
            "third entry must be refused"
        );
        assert_eq!(cam.len(), 2);
    }

    #[test]
    fn reprogram_existing_key_allowed_at_capacity() {
        let mut cam = Cam::new(1);
        assert!(cam.insert(VcId::new(0, 32), 0));
        assert!(cam.insert(VcId::new(0, 32), 7), "re-map same key");
        assert_eq!(cam.lookup(VcId::new(0, 32)), CamResult::Hit(7));
    }

    #[test]
    fn remove_frees_space() {
        let mut cam = Cam::new(1);
        cam.insert(VcId::new(0, 32), 0);
        assert!(cam.remove(VcId::new(0, 32)));
        assert!(!cam.remove(VcId::new(0, 32)));
        assert!(cam.insert(VcId::new(0, 33), 1));
    }

    #[test]
    fn distinct_vpi_vci_do_not_collide() {
        // (vpi=1, vci=0) vs (vpi=0, vci=65536-ish patterns) must be
        // distinct keys — guards the key packing.
        let mut cam = Cam::new(8);
        cam.insert(VcId::new(1, 0), 10);
        cam.insert(VcId::new(0, 256), 11);
        assert_eq!(cam.lookup(VcId::new(1, 0)), CamResult::Hit(10));
        assert_eq!(cam.lookup(VcId::new(0, 256)), CamResult::Hit(11));
    }
}
