//! # hni-core — the host-network interface architecture
//!
//! The paper's primary contribution, reconstructed: a programmable ATM
//! host interface for a TURBOchannel-class workstation on SONET OC-3 /
//! OC-12, built around per-direction protocol engines with hardware
//! assists for the per-cell fast path.
//!
//! Two complementary faces:
//!
//! * **Timing** — [`txsim`] and [`rxsim`] are discrete-event
//!   simulations of the transmit and receive pipelines over packet
//!   *metadata*: engine instruction budgets ([`engine`]), bus/DMA burst
//!   timing ([`bus`]), FIFO backpressure, per-VC pacing, reassembly
//!   buffer pressure ([`bufpool`]), connection lookup ([`cam`]). These
//!   regenerate the paper-style delay/throughput analysis.
//! * **Data path** — [`nic`] is the byte-exact functional interface:
//!   real AAL5/AAL3-4 segmentation, real cells, real SONET TC framing,
//!   driving `hni-aal` + `hni-sonet` end to end. The integration tests
//!   and examples run packets through two of these back-to-back.
//!
//! One configuration type ([`config::NicConfig`]) feeds both.

pub mod bufpool;
pub mod bus;
pub mod cam;
pub mod config;
pub mod driver;
pub mod e2esim;
pub mod engine;
pub mod nic;
pub mod rxsim;
pub mod txsim;

pub use bufpool::{BufferPool, DiscardPolicy, PoolConfig, PoolError};
pub use bus::{Bus, BusConfig};
pub use cam::{Cam, CamResult};
pub use config::NicConfig;
pub use driver::{DriverConfig, DriverError, HostDriver, RxPacket};
pub use e2esim::{
    run_e2e, run_e2e_faulted, run_e2e_faulted_instrumented, run_e2e_instrumented, E2eReport,
};
pub use engine::{HwPartition, ProtocolEngine, TaskCosts, TaskKind};
pub use nic::{Nic, NicEvent};
pub use rxsim::{
    apply_faults, run_rx, run_rx_faulted, run_rx_faulted_instrumented, CellLedger, LinkFaults,
    RxConfig, RxReport, RxWorkload,
};
pub use txsim::{greedy_workload, run_tx, TxConfig, TxPacket, TxReport};
