//! Discrete-event simulation of the **receive pipeline**:
//!
//! ```text
//! framer ─► input cell FIFO ─► engine: HEC · VCI lookup · enqueue · CRC
//!                                   │ (per cell, into buffer pool)
//!                     last cell ─►  engine: validate
//!                                   │
//!                    DMA bursts over the bus ═► host memory
//!                                   │
//!                            engine: complete (+ interrupt post)
//! ```
//!
//! Receive is the harder direction — the paper-era consensus this
//! architecture embodies — because the interface does not choose when
//! cells arrive: at full OC-12 payload rate a cell lands every 708 ns,
//! of *any* connection, in *any* interleaving. Three distinct loss
//! mechanisms exist and are separately counted:
//!
//! * **input FIFO overrun** — the engine's per-cell work exceeds the
//!   cell slot; arrivals outrun processing and the FIFO tops out;
//! * **buffer-pool exhaustion** — too many partially reassembled frames
//!   in flight for the adaptor SRAM;
//! * (in the functional path, not here) HEC/CRC damage.
//!
//! Cells are engine work at **higher priority** than packet-level
//! validation/DMA/completion, exactly as a real design must prioritise —
//! a cell not consumed is lost, while a completion can wait.

use crate::bufpool::{BufferPool, PoolConfig};
use crate::bus::{Bus, BusConfig};
use crate::engine::{HwPartition, ProtocolEngine, TaskKind};
use hni_aal::AalType;
use hni_sim::{Duration, EventQueue, Summary, Time};
use hni_sonet::LineRate;
use hni_telemetry::{
    Activity, Component, NullProfiler, NullTracer, Profiler, Stage, TraceEvent, Tracer,
};
use std::collections::VecDeque;

/// Receive-pipeline configuration.
#[derive(Clone, Debug)]
pub struct RxConfig {
    /// Link rate cells arrive at (sets the slot clock).
    pub rate: LineRate,
    /// Engine speed in MIPS.
    pub mips: f64,
    /// Hardware/software split.
    pub partition: HwPartition,
    /// Bus parameters.
    pub bus: BusConfig,
    /// Input FIFO depth in cells.
    pub fifo_cells: usize,
    /// Reassembly buffer pool.
    pub pool: PoolConfig,
    /// Adaptation layer (cells-per-packet arithmetic).
    pub aal: AalType,
}

impl RxConfig {
    /// The architecture's design point at a given rate.
    pub fn paper(rate: LineRate) -> Self {
        RxConfig {
            rate,
            mips: 25.0,
            partition: HwPartition::paper_split(),
            bus: BusConfig::default(),
            fifo_cells: 16,
            pool: PoolConfig {
                total_buffers: 256,
                cells_per_buffer: 32,
            },
            aal: AalType::Aal5,
        }
    }
}

/// One cell arrival in a receive workload.
#[derive(Clone, Copy, Debug)]
pub struct CellArrival {
    /// Arrival time at the interface.
    pub at: Time,
    /// Which packet this cell belongs to (index into the workload's
    /// packet table).
    pub pkt: usize,
    /// Whether it is the packet's final cell.
    pub is_last: bool,
}

/// A packet in a receive workload.
#[derive(Clone, Copy, Debug)]
pub struct RxPktMeta {
    /// Connection index (CAM output).
    pub conn: u16,
    /// SDU octets the packet delivers to the host.
    pub len: usize,
    /// Cells the packet occupies.
    pub cells: usize,
}

/// A complete receive workload: cell arrivals plus packet metadata.
#[derive(Clone, Debug)]
pub struct RxWorkload {
    /// Cell arrival schedule (must be time-sorted).
    pub arrivals: Vec<CellArrival>,
    /// Packet table.
    pub pkts: Vec<RxPktMeta>,
}

impl RxWorkload {
    /// A uniform workload: `pkts_per_vc` packets of `len` octets on each
    /// of `n_vcs` connections, cells interleaved round-robin across
    /// connections, offered at `load` × the link's cell slot rate.
    pub fn uniform(
        rate: LineRate,
        aal: AalType,
        n_vcs: usize,
        pkts_per_vc: usize,
        len: usize,
        load: f64,
    ) -> Self {
        assert!(n_vcs > 0 && pkts_per_vc > 0);
        assert!(load > 0.0 && load <= 1.0);
        let cells_per_pkt = aal.cells_for_sdu(len).max(1);
        let mut pkts = Vec::with_capacity(n_vcs * pkts_per_vc);
        // Per-VC cursors: (packet index, cell index within packet).
        let mut streams: Vec<(usize, usize)> = Vec::with_capacity(n_vcs);
        for v in 0..n_vcs {
            for _ in 0..pkts_per_vc {
                pkts.push(RxPktMeta {
                    conn: v as u16,
                    len,
                    cells: cells_per_pkt,
                });
            }
            // Stream v starts at its first packet (packets are laid out
            // per-VC contiguously: v*pkts_per_vc ..).
            streams.push((v * pkts_per_vc, 0));
        }
        let interval = Duration::from_s_f64(rate.cell_slot_time().as_s_f64() / load);
        let total_cells = n_vcs * pkts_per_vc * cells_per_pkt;
        let mut arrivals = Vec::with_capacity(total_cells);
        let mut t = Time::ZERO;
        let mut v = 0usize;
        for _ in 0..total_cells {
            // Find the next VC (round-robin) that still has cells.
            let mut tries = 0;
            while tries < n_vcs {
                let (p, _c) = streams[v];
                let vc_end = (v + 1) * pkts_per_vc;
                if p < vc_end {
                    break;
                }
                v = (v + 1) % n_vcs;
                tries += 1;
            }
            let (p, c) = streams[v];
            let is_last = c + 1 == cells_per_pkt;
            arrivals.push(CellArrival {
                at: t,
                pkt: p,
                is_last,
            });
            streams[v] = if is_last { (p + 1, 0) } else { (p, c + 1) };
            v = (v + 1) % n_vcs;
            t += interval;
        }
        RxWorkload { arrivals, pkts }
    }
}

/// Results of a receive simulation run.
#[derive(Clone, Debug)]
pub struct RxReport {
    /// Cells offered by the workload.
    pub cells_offered: u64,
    /// Cells lost to input-FIFO overrun.
    pub dropped_fifo: u64,
    /// Cells lost to buffer-pool exhaustion.
    pub dropped_pool: u64,
    /// Packets fully delivered to host memory.
    pub delivered_packets: u64,
    /// SDU octets delivered.
    pub delivered_octets: u64,
    /// Packets that lost at least one cell.
    pub failed_packets: u64,
    /// Goodput in bits/second over the run.
    pub goodput_bps: f64,
    /// Engine utilization.
    pub engine_util: f64,
    /// Bus utilization.
    pub bus_util: f64,
    /// Peak input-FIFO occupancy.
    pub fifo_peak: u64,
    /// Peak reassembly buffers in use.
    pub pool_peak: u64,
    /// Mean reassembly buffers in use (time-weighted).
    pub pool_mean: f64,
    /// Packet latency (first cell arrival → completion), µs.
    pub packet_latency_us: Summary,
    /// When the last packet completed ([`Time::ZERO`] if none did).
    pub finished_at: Time,
    /// End of all simulated activity: the later of `finished_at` and
    /// the final event processed. Unlike `finished_at` this is nonzero
    /// even when overload dooms every packet, so it is the right span
    /// for utilization math and profile snapshots.
    pub run_end: Time,
}

#[derive(Clone, Copy, Debug)]
enum RTask {
    /// Per-cell work for (pkt, is_last).
    Cell(usize, bool),
    /// End-of-frame validation.
    Validate(usize),
    /// Engine part of one DMA burst.
    Burst(usize),
    /// Completion processing.
    Complete(usize),
}

#[derive(Clone, Copy, Debug)]
enum REv {
    CellArrive(usize),
    EngineDone(RTask),
    BusDone(usize),
}

struct PktState {
    cells_seen: usize,
    first_arrival: Option<Time>,
    doomed: bool,
    bursts_issued: u32,
    bursts_total: u32,
}

/// Run the receive pipeline over a workload.
pub fn run_rx(cfg: &RxConfig, wl: &RxWorkload) -> RxReport {
    run_rx_inner(cfg, wl, &mut None, &mut NullTracer, &mut NullProfiler)
}

/// Like [`run_rx`], additionally returning each packet's completion
/// time (`None` for packets that never completed).
pub fn run_rx_traced(cfg: &RxConfig, wl: &RxWorkload) -> (RxReport, Vec<Option<Time>>) {
    let mut completions = Some(vec![None; wl.pkts.len()]);
    let report = run_rx_inner(
        cfg,
        wl,
        &mut completions,
        &mut NullTracer,
        &mut NullProfiler,
    );
    (report, completions.expect("trace requested"))
}

/// Like [`run_rx_traced`], emitting a structured [`TraceEvent`] at every
/// pipeline stage boundary (cell arrival, FIFO admission/drop, per-cell
/// engine spans, reassembly appends, validation, delivery DMA,
/// completion) into `tracer`.
pub fn run_rx_instrumented(
    cfg: &RxConfig,
    wl: &RxWorkload,
    tracer: &mut dyn Tracer,
) -> (RxReport, Vec<Option<Time>>) {
    run_rx_full(cfg, wl, tracer, &mut NullProfiler)
}

/// Like [`run_rx_traced`], charging every simulated interval into the
/// cycle-accounting `profiler`: engine busy time and stalls
/// (`rx.engine`), delivery-DMA bus cycles (`rx.bus`), arriving cell
/// slots (`rx.link`), and the input-FIFO and reassembly-pool occupancy
/// gauges (`rx.fifo`, `rx.pool`).
pub fn run_rx_profiled(
    cfg: &RxConfig,
    wl: &RxWorkload,
    profiler: &mut dyn Profiler,
) -> (RxReport, Vec<Option<Time>>) {
    run_rx_full(cfg, wl, &mut NullTracer, profiler)
}

/// Both observability sinks at once — what the end-to-end composition
/// runs so one pass can feed the tracer and the profiler.
pub(crate) fn run_rx_full(
    cfg: &RxConfig,
    wl: &RxWorkload,
    tracer: &mut dyn Tracer,
    profiler: &mut dyn Profiler,
) -> (RxReport, Vec<Option<Time>>) {
    let mut completions = Some(vec![None; wl.pkts.len()]);
    let report = run_rx_inner(cfg, wl, &mut completions, tracer, profiler);
    (report, completions.expect("trace requested"))
}

fn run_rx_inner(
    cfg: &RxConfig,
    wl: &RxWorkload,
    completions: &mut Option<Vec<Option<Time>>>,
    tracer: &mut dyn Tracer,
    profiler: &mut dyn Profiler,
) -> RxReport {
    let engine = ProtocolEngine::new(cfg.mips, cfg.partition.clone());
    let mut bus = Bus::new(cfg.bus);
    let mut pool = BufferPool::new(cfg.pool);
    let mut q: EventQueue<REv> = EventQueue::new();

    for (i, a) in wl.arrivals.iter().enumerate() {
        q.schedule(a.at, REv::CellArrive(i));
    }

    let mut pkts: Vec<PktState> = wl
        .pkts
        .iter()
        .map(|m| PktState {
            cells_seen: 0,
            first_arrival: None,
            doomed: false,
            bursts_issued: 0,
            bursts_total: if m.len == 0 {
                0
            } else {
                cfg.bus.bursts_for(m.len)
            },
        })
        .collect();

    // Input FIFO holds (pkt, is_last).
    let mut fifo: VecDeque<(usize, bool)> = VecDeque::new();
    let mut fifo_peak = 0u64;
    let mut task_q: VecDeque<RTask> = VecDeque::new();
    let mut engine_busy = false;
    let mut engine_busy_total = Duration::ZERO;
    // Profiler bookkeeping (see txsim): the burst counter is cheap and
    // unconditional; the idle marker only exists while profiling.
    let mut bursts_in_flight: u32 = 0;
    let mut engine_idle_since: Option<(Time, Activity)> = None;
    let slot = cfg.rate.cell_slot_time();

    let mut dropped_fifo = 0u64;
    let mut dropped_pool = 0u64;
    let mut delivered_packets = 0u64;
    let mut delivered_octets = 0u64;
    let mut latency = Summary::new();
    let mut finished_at = Time::ZERO;

    let cell_time = engine.task_time(TaskKind::RxHec)
        + engine.task_time(TaskKind::RxVciLookup)
        + engine.task_time(TaskKind::RxCellEnqueue)
        + engine.task_time(TaskKind::RxCellCrc);

    macro_rules! kick_engine {
        ($q:expr, $now:expr) => {
            if !engine_busy {
                // Cells first — an unconsumed cell is a lost cell.
                let task = if let Some((p, last)) = fifo.pop_front() {
                    if profiler.enabled() {
                        profiler.gauge(Component::RxFifo, $now, fifo.len() as u64);
                    }
                    Some(RTask::Cell(p, last))
                } else {
                    task_q.pop_front()
                };
                if let Some(task) = task {
                    engine_busy = true;
                    let t = match task {
                        RTask::Cell(..) => cell_time,
                        RTask::Validate(_) => engine.task_time(TaskKind::RxPacketValidate),
                        RTask::Burst(_) => engine.task_time(TaskKind::RxDmaBurst),
                        RTask::Complete(_) => engine.task_time(TaskKind::RxPacketComplete),
                    };
                    engine_busy_total += t;
                    if profiler.enabled() {
                        if let Some((since, cause)) = engine_idle_since.take() {
                            profiler.charge(
                                Component::RxEngine,
                                cause,
                                since,
                                $now.saturating_since(since),
                            );
                        }
                        profiler.charge(Component::RxEngine, Activity::Busy, $now, t);
                    }
                    if tracer.enabled() {
                        // Open a span for the bundled per-cell work and the
                        // per-packet tasks (closed at EngineDone).
                        let stage = match task {
                            RTask::Cell(p, _) => Some((Stage::RxCell, p)),
                            RTask::Validate(p) => {
                                TaskKind::RxPacketValidate.trace_stage().map(|s| (s, p))
                            }
                            RTask::Complete(p) => {
                                TaskKind::RxPacketComplete.trace_stage().map(|s| (s, p))
                            }
                            RTask::Burst(_) => None,
                        };
                        if let Some((stage, p)) = stage {
                            tracer.record(
                                TraceEvent::enter($now, stage)
                                    .vc(wl.pkts[p].conn as u32)
                                    .pkt(p),
                            );
                        }
                    }
                    $q.schedule_in(t, REv::EngineDone(task));
                } else if profiler.enabled() && engine_idle_since.is_none() {
                    // Receive stalls: an outstanding delivery DMA means
                    // the completion is waiting on the bus; otherwise
                    // the engine is simply between arrivals.
                    let cause = if bursts_in_flight > 0 {
                        Activity::StalledBus
                    } else {
                        Activity::Idle
                    };
                    engine_idle_since = Some(($now, cause));
                }
            }
        };
    }

    while let Some((now, ev)) = q.pop() {
        match ev {
            REv::CellArrive(i) => {
                let a = wl.arrivals[i];
                let conn = wl.pkts[a.pkt].conn as u32;
                if profiler.enabled() {
                    // The cell occupied the line for the slot that ended
                    // at its arrival (saturating for an arrival at t=0).
                    let from = Time::from_ps(now.as_ps().saturating_sub(slot.as_ps()));
                    profiler.charge(Component::RxLink, Activity::Transfer, from, slot);
                }
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, Stage::RxCellArrive)
                            .vc(conn)
                            .pkt(a.pkt)
                            .cell(i as u64),
                    );
                }
                let st = &mut pkts[a.pkt];
                if st.first_arrival.is_none() {
                    st.first_arrival = Some(now);
                }
                if fifo.len() >= cfg.fifo_cells {
                    dropped_fifo += 1;
                    st.doomed = true;
                    if tracer.enabled() {
                        tracer.record(
                            TraceEvent::instant(now, Stage::RxFifoDrop)
                                .vc(conn)
                                .pkt(a.pkt)
                                .cell(i as u64),
                        );
                    }
                } else {
                    fifo.push_back((a.pkt, a.is_last));
                    fifo_peak = fifo_peak.max(fifo.len() as u64);
                    if profiler.enabled() {
                        profiler.gauge(Component::RxFifo, now, fifo.len() as u64);
                    }
                    if tracer.enabled() {
                        tracer.record(
                            TraceEvent::instant(now, Stage::RxFifoEnqueue)
                                .vc(conn)
                                .pkt(a.pkt)
                                .cell(i as u64)
                                .arg(fifo.len() as u64),
                        );
                    }
                }
                kick_engine!(q, now);
            }
            REv::EngineDone(task) => {
                engine_busy = false;
                match task {
                    RTask::Cell(p, is_last) => {
                        let conn = wl.pkts[p].conn as u32;
                        if tracer.enabled() {
                            tracer.record(TraceEvent::exit(now, Stage::RxCell).vc(conn).pkt(p));
                        }
                        let st = &mut pkts[p];
                        st.cells_seen += 1;
                        let appended = pool.append_cell(now, p as u32).is_ok();
                        if !appended {
                            dropped_pool += 1;
                            st.doomed = true;
                        }
                        if profiler.enabled() {
                            profiler.gauge(Component::RxPool, now, pool.in_use() as u64);
                        }
                        if tracer.enabled() {
                            let stage = if appended {
                                Stage::RxReasmAppend
                            } else {
                                Stage::RxPoolDrop
                            };
                            tracer.record(
                                TraceEvent::instant(now, stage)
                                    .vc(conn)
                                    .pkt(p)
                                    .arg(st.cells_seen as u64),
                            );
                        }
                        if is_last {
                            if st.doomed {
                                // Abandon: free whatever was chained.
                                pool.release_chain(now, p as u32);
                                if profiler.enabled() {
                                    profiler.gauge(Component::RxPool, now, pool.in_use() as u64);
                                }
                            } else {
                                if tracer.enabled() {
                                    tracer.record(
                                        TraceEvent::instant(now, Stage::RxReasmComplete)
                                            .vc(conn)
                                            .pkt(p)
                                            .arg(st.cells_seen as u64),
                                    );
                                }
                                task_q.push_back(RTask::Validate(p));
                            }
                        }
                    }
                    RTask::Validate(p) => {
                        if tracer.enabled() {
                            tracer.record(
                                TraceEvent::exit(now, Stage::RxValidate)
                                    .vc(wl.pkts[p].conn as u32)
                                    .pkt(p),
                            );
                        }
                        // Validation passed (the functional data path
                        // checks bytes; here loss is the only failure
                        // mode and doomed packets never validate).
                        let st = &mut pkts[p];
                        if st.bursts_total == 0 {
                            task_q.push_back(RTask::Complete(p));
                        } else if engine.partition.in_hardware(TaskKind::RxDmaBurst) {
                            st.bursts_issued += 1;
                            let words = cfg.bus.burst_words(wl.pkts[p].len.max(1), 0);
                            let done = bus.grant_profiled(
                                now,
                                words,
                                words as usize * cfg.bus.word_bytes,
                                Component::RxBus,
                                profiler,
                            );
                            bursts_in_flight += 1;
                            q.schedule(done, REv::BusDone(p));
                        } else {
                            st.bursts_issued += 1;
                            task_q.push_back(RTask::Burst(p));
                        }
                    }
                    RTask::Burst(p) => {
                        let bi = pkts[p].bursts_issued - 1;
                        let words = cfg.bus.burst_words(wl.pkts[p].len.max(1), bi);
                        let done = bus.grant_profiled(
                            now,
                            words,
                            words as usize * cfg.bus.word_bytes,
                            Component::RxBus,
                            profiler,
                        );
                        bursts_in_flight += 1;
                        q.schedule(done, REv::BusDone(p));
                    }
                    RTask::Complete(p) => {
                        let meta = &wl.pkts[p];
                        if tracer.enabled() {
                            let conn = meta.conn as u32;
                            tracer.record(TraceEvent::exit(now, Stage::RxComplete).vc(conn).pkt(p));
                            tracer.record(
                                TraceEvent::instant(now, Stage::CompletionPush)
                                    .vc(conn)
                                    .pkt(p)
                                    .arg(meta.len as u64),
                            );
                        }
                        pool.release_chain(now, p as u32);
                        if profiler.enabled() {
                            profiler.gauge(Component::RxPool, now, pool.in_use() as u64);
                        }
                        delivered_packets += 1;
                        delivered_octets += meta.len as u64;
                        finished_at = now;
                        if let Some(c) = completions.as_mut() {
                            c[p] = Some(now);
                        }
                        if let Some(t0) = pkts[p].first_arrival {
                            latency.record_us(now.saturating_since(t0));
                        }
                    }
                }
                kick_engine!(q, now);
            }
            REv::BusDone(p) => {
                bursts_in_flight -= 1;
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, Stage::RxDmaBurst)
                            .vc(wl.pkts[p].conn as u32)
                            .pkt(p)
                            .arg(pkts[p].bursts_issued as u64),
                    );
                }
                let st = &mut pkts[p];
                if st.bursts_issued < st.bursts_total {
                    st.bursts_issued += 1;
                    if engine.partition.in_hardware(TaskKind::RxDmaBurst) {
                        let bi = st.bursts_issued - 1;
                        let words = cfg.bus.burst_words(wl.pkts[p].len.max(1), bi);
                        let done = bus.grant_profiled(
                            now,
                            words,
                            words as usize * cfg.bus.word_bytes,
                            Component::RxBus,
                            profiler,
                        );
                        bursts_in_flight += 1;
                        q.schedule(done, REv::BusDone(p));
                    } else {
                        task_q.push_back(RTask::Burst(p));
                    }
                } else {
                    task_q.push_back(RTask::Complete(p));
                }
                kick_engine!(q, now);
            }
        }
    }

    let end = finished_at.max(q.now());
    let elapsed_s = end.saturating_since(Time::ZERO).as_s_f64();
    let failed_packets = pkts.iter().filter(|p| p.doomed).count() as u64;
    RxReport {
        cells_offered: wl.arrivals.len() as u64,
        dropped_fifo,
        dropped_pool,
        delivered_packets,
        delivered_octets,
        failed_packets,
        goodput_bps: if elapsed_s > 0.0 {
            delivered_octets as f64 * 8.0 / elapsed_s
        } else {
            0.0
        },
        engine_util: if elapsed_s > 0.0 {
            engine_busy_total.as_s_f64() / elapsed_s
        } else {
            0.0
        },
        bus_util: bus.utilization(end),
        fifo_peak,
        pool_peak: pool.peak_in_use(),
        pool_mean: pool.mean_in_use(end),
        packet_latency_us: latency,
        finished_at,
        run_end: end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_delivery_at_moderate_load() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 10, 9180, 0.8);
        let r = run_rx(&cfg, &wl);
        assert_eq!(r.delivered_packets, 40);
        assert_eq!(r.failed_packets, 0);
        assert_eq!(r.dropped_fifo, 0);
        assert_eq!(r.delivered_octets, 40 * 9180);
    }

    #[test]
    fn full_line_rate_sustained_by_paper_config() {
        // The design claim: at OC-12 and load 1.0 with big frames, the
        // split-hardware interface keeps up — no FIFO drops.
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 8, 40, 9180, 1.0);
        let r = run_rx(&cfg, &wl);
        assert_eq!(r.dropped_fifo, 0, "paper config must keep up at line rate");
        assert_eq!(r.failed_packets, 0);
        // Ceiling: payload rate × cell payload fraction × AAL efficiency.
        // (A percent-level drain tail remains: the 8 interleaved VCs all
        // complete within a few slots of each other and their delivery
        // DMAs serialize on the bus after the last cell has arrived.)
        let ceiling = LineRate::Oc12.payload_bps() * (48.0 / 53.0) * AalType::Aal5.efficiency(9180);
        assert!(
            r.goodput_bps > 0.95 * ceiling,
            "goodput {} vs ceiling {ceiling}",
            r.goodput_bps
        );
    }

    #[test]
    fn all_software_drowns_at_oc12() {
        let mut cfg = RxConfig::paper(LineRate::Oc12);
        cfg.partition = HwPartition::all_software();
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 8, 5, 9180, 1.0);
        let r = run_rx(&cfg, &wl);
        assert!(r.dropped_fifo > 0, "software per-cell work cannot keep up");
        assert!(r.failed_packets > 0);
        assert!(r.engine_util > 0.95);
    }

    #[test]
    fn all_software_survives_low_load() {
        let mut cfg = RxConfig::paper(LineRate::Oc3);
        cfg.partition = HwPartition::all_software();
        // Per-cell software work ≈ 8.08 µs (202 instr / 25 MIPS); OC-3
        // slots are 2.83 µs, so keep offered load under a third.
        let wl = RxWorkload::uniform(LineRate::Oc3, AalType::Aal5, 2, 10, 9180, 0.3);
        let r = run_rx(&cfg, &wl);
        assert_eq!(r.dropped_fifo, 0);
        assert_eq!(r.failed_packets, 0);
    }

    #[test]
    fn pool_exhaustion_with_many_interleaved_vcs() {
        let mut cfg = RxConfig::paper(LineRate::Oc12);
        // Tiny pool: 4 containers of 32 cells.
        cfg.pool = PoolConfig {
            total_buffers: 4,
            cells_per_buffer: 32,
        };
        // 64 VCs interleaving 9180-byte frames (192 cells each): every VC
        // needs ~6 containers concurrently. Must exhaust.
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 64, 1, 9180, 1.0);
        let r = run_rx(&cfg, &wl);
        assert!(r.dropped_pool > 0);
        assert!(r.failed_packets > 0);
        assert_eq!(r.pool_peak, 4);
    }

    #[test]
    fn interleaving_widens_pool_footprint() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let one_vc = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 1, 16, 9180, 1.0);
        let many_vc = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 16, 1, 9180, 1.0);
        let r1 = run_rx(&cfg, &one_vc);
        let r16 = run_rx(&cfg, &many_vc);
        assert!(
            r16.pool_peak > 4 * r1.pool_peak,
            "16-way interleave {} vs serial {}",
            r16.pool_peak,
            r1.pool_peak
        );
    }

    #[test]
    fn latency_has_sane_floor() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 1, 5, 9180, 0.9);
        let r = run_rx(&cfg, &wl);
        // A 192-cell frame takes ≥ 191 arrival intervals ≈ 150 µs just to
        // arrive; latency must exceed that and stay well under 1 ms.
        assert!(r.packet_latency_us.min() > 140.0);
        assert!(r.packet_latency_us.max() < 1000.0);
    }

    #[test]
    fn deterministic() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 10, 4096, 0.9);
        let a = run_rx(&cfg, &wl);
        let b = run_rx(&cfg, &wl);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.delivered_packets, b.delivered_packets);
    }

    #[test]
    fn workload_generator_counts() {
        let wl = RxWorkload::uniform(LineRate::Oc3, AalType::Aal5, 3, 4, 1000, 0.5);
        assert_eq!(wl.pkts.len(), 12);
        let cells_per = AalType::Aal5.cells_for_sdu(1000);
        assert_eq!(wl.arrivals.len(), 12 * cells_per);
        // Arrivals strictly increasing.
        for w in wl.arrivals.windows(2) {
            assert!(w[0].at < w[1].at);
        }
        // Exactly one last cell per packet.
        let lasts = wl.arrivals.iter().filter(|a| a.is_last).count();
        assert_eq!(lasts, 12);
    }

    #[test]
    fn small_packets_engine_bound_by_per_packet_work() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        // 1-cell packets at full rate: per-packet work (30+40 instr =
        // 2.8 µs) per 708 ns slot → cannot keep up, FIFO drops.
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 200, 40, 1.0);
        let r = run_rx(&cfg, &wl);
        assert!(
            r.dropped_fifo + r.dropped_pool > 0 && r.failed_packets > 0,
            "single-cell packets at line rate must overwhelm per-packet processing: {r:?}"
        );
    }
}
