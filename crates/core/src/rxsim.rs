//! Discrete-event simulation of the **receive pipeline**:
//!
//! ```text
//! framer ─► input cell FIFO ─► engine: HEC · VCI lookup · enqueue · CRC
//!                                   │ (per cell, into buffer pool)
//!                     last cell ─►  engine: validate
//!                                   │
//!                    DMA bursts over the bus ═► host memory
//!                                   │
//!                            engine: complete (+ interrupt post)
//! ```
//!
//! Receive is the harder direction — the paper-era consensus this
//! architecture embodies — because the interface does not choose when
//! cells arrive: at full OC-12 payload rate a cell lands every 708 ns,
//! of *any* connection, in *any* interleaving. Loss mechanisms are
//! separately counted and every cell the link injects reconciles to
//! exactly one disposition in the run's [`CellLedger`]:
//!
//! * **link faults** — a [`FaultPlan`] perturbing the arrival schedule
//!   (loss, corruption, duplication, bounded reordering);
//! * **input FIFO overrun** — the engine's per-cell work exceeds the
//!   cell slot; arrivals outrun processing and the FIFO tops out;
//! * **buffer-pool exhaustion** — too many partially reassembled frames
//!   in flight for the adaptor SRAM (with drop-tail, EPD or PPD policy
//!   deciding *which* cells pay — see [`DiscardPolicy`]);
//! * **validation failure** — corrupt payload or wrong cell count at
//!   end of frame (the CRC-32 catch-all);
//! * **reassembly expiry** — a chain stalled longer than the timeout is
//!   purged so a lost end-of-frame cell cannot pin buffers forever.
//!
//! Cells are engine work at **higher priority** than packet-level
//! validation/DMA/completion, exactly as a real design must prioritise —
//! a cell not consumed is lost, while a completion can wait.
//!
//! The expiry timer is modelled as background bookkeeping: purges free
//! buffers at the simulated instant they happen but consume no engine
//! time and never extend the measured span (`run_end`), so a faultless
//! run's report is byte-identical with the timer armed or not.

use crate::bufpool::{BufferPool, DiscardPolicy, PoolConfig, PoolError};
use crate::bus::{Bus, BusConfig};
use crate::engine::{HwPartition, ProtocolEngine, TaskKind};
use hni_aal::AalType;
use hni_sim::{BusFaultPlan, Duration, EventQueue, FaultInjector, FaultPlan, Summary, Time};
use hni_sonet::LineRate;
use hni_telemetry::{
    Activity, Component, HdrHist, NullProfiler, NullTracer, Profiler, Stage, TailReservoir,
    TraceEvent, Tracer, VcMetrics,
};
use std::collections::VecDeque;

/// Receive-pipeline configuration.
#[derive(Clone, Debug)]
pub struct RxConfig {
    /// Link rate cells arrive at (sets the slot clock).
    pub rate: LineRate,
    /// Engine speed in MIPS.
    pub mips: f64,
    /// Hardware/software split.
    pub partition: HwPartition,
    /// Bus parameters.
    pub bus: BusConfig,
    /// Input FIFO depth in cells.
    pub fifo_cells: usize,
    /// Reassembly buffer pool.
    pub pool: PoolConfig,
    /// Adaptation layer (cells-per-packet arithmetic).
    pub aal: AalType,
    /// Buffer discard policy under pool pressure.
    pub policy: DiscardPolicy,
    /// Purge reassembly chains idle this long ([`Duration::ZERO`]
    /// disables the timer).
    pub reassembly_timeout: Duration,
    /// Fault plan for the host bus (stalls / aborted bursts).
    pub bus_faults: BusFaultPlan,
}

impl RxConfig {
    /// The architecture's design point at a given rate.
    pub fn paper(rate: LineRate) -> Self {
        RxConfig {
            rate,
            mips: 25.0,
            partition: HwPartition::paper_split(),
            bus: BusConfig::default(),
            fifo_cells: 16,
            pool: PoolConfig {
                total_buffers: 256,
                cells_per_buffer: 32,
            },
            aal: AalType::Aal5,
            policy: DiscardPolicy::DropTail,
            reassembly_timeout: Duration::from_ms(10),
            bus_faults: BusFaultPlan::NONE,
        }
    }
}

/// One cell arrival in a receive workload.
#[derive(Clone, Copy, Debug)]
pub struct CellArrival {
    /// Arrival time at the interface.
    pub at: Time,
    /// Which packet this cell belongs to (index into the workload's
    /// packet table).
    pub pkt: usize,
    /// Whether it is the packet's final cell.
    pub is_last: bool,
    /// Whether the link damaged its payload (fails end-of-frame CRC).
    pub corrupted: bool,
}

/// A packet in a receive workload.
#[derive(Clone, Copy, Debug)]
pub struct RxPktMeta {
    /// Connection index (CAM output).
    pub conn: u16,
    /// SDU octets the packet delivers to the host.
    pub len: usize,
    /// Cells the packet occupies.
    pub cells: usize,
}

/// A complete receive workload: cell arrivals plus packet metadata.
#[derive(Clone, Debug)]
pub struct RxWorkload {
    /// Cell arrival schedule (must be time-sorted).
    pub arrivals: Vec<CellArrival>,
    /// Packet table.
    pub pkts: Vec<RxPktMeta>,
}

impl RxWorkload {
    /// A uniform workload: `pkts_per_vc` packets of `len` octets on each
    /// of `n_vcs` connections, cells interleaved round-robin across
    /// connections, offered at `load` × the link's cell slot rate.
    pub fn uniform(
        rate: LineRate,
        aal: AalType,
        n_vcs: usize,
        pkts_per_vc: usize,
        len: usize,
        load: f64,
    ) -> Self {
        assert!(n_vcs > 0 && pkts_per_vc > 0);
        assert!(load > 0.0 && load <= 1.0);
        let cells_per_pkt = aal.cells_for_sdu(len).max(1);
        let mut pkts = Vec::with_capacity(n_vcs * pkts_per_vc);
        // Per-VC cursors: (packet index, cell index within packet).
        let mut streams: Vec<(usize, usize)> = Vec::with_capacity(n_vcs);
        for v in 0..n_vcs {
            for _ in 0..pkts_per_vc {
                pkts.push(RxPktMeta {
                    conn: v as u16,
                    len,
                    cells: cells_per_pkt,
                });
            }
            // Stream v starts at its first packet (packets are laid out
            // per-VC contiguously: v*pkts_per_vc ..).
            streams.push((v * pkts_per_vc, 0));
        }
        let interval = Duration::from_s_f64(rate.cell_slot_time().as_s_f64() / load);
        let total_cells = n_vcs * pkts_per_vc * cells_per_pkt;
        let mut arrivals = Vec::with_capacity(total_cells);
        let mut t = Time::ZERO;
        let mut v = 0usize;
        for _ in 0..total_cells {
            // Find the next VC (round-robin) that still has cells.
            let mut tries = 0;
            while tries < n_vcs {
                let (p, _c) = streams[v];
                let vc_end = (v + 1) * pkts_per_vc;
                if p < vc_end {
                    break;
                }
                v = (v + 1) % n_vcs;
                tries += 1;
            }
            let (p, c) = streams[v];
            let is_last = c + 1 == cells_per_pkt;
            arrivals.push(CellArrival {
                at: t,
                pkt: p,
                is_last,
                corrupted: false,
            });
            streams[v] = if is_last { (p + 1, 0) } else { (p, c + 1) };
            v = (v + 1) % n_vcs;
            t += interval;
        }
        RxWorkload { arrivals, pkts }
    }
}

/// Per-cell conservation ledger: every cell the link injected ends in
/// exactly one bucket, so `reconciles()` is the chaos-test invariant.
///
/// Closed-loop transports (`hni-transport`) inject the same cell's
/// payload more than once: a retransmitted frame is a *new* set of
/// cells on the wire, each owed its own fate. Two extra fields keep the
/// invariant exact under recovery: `injected_retx` records provenance
/// (how many of `injected` were retransmissions — a subset, not a
/// fate), and `discarded_superseded` is the fate of cells that arrived
/// intact for a frame some earlier copy had already delivered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellLedger {
    /// Cells injected at the far end (arrivals + link losses).
    pub injected: u64,
    /// Of `injected`, cells that were retransmissions (second or later
    /// copies of a frame sent by a closed-loop transport). Provenance,
    /// not a fate: these cells still land in exactly one bucket below.
    pub injected_retx: u64,
    /// Cells the link itself dropped (never reached the interface).
    pub dropped_link: u64,
    /// Cells lost to input-FIFO overrun.
    pub dropped_fifo: u64,
    /// Cells lost to buffer-pool exhaustion (drop-tail).
    pub dropped_pool: u64,
    /// Cells refused by Early Packet Discard.
    pub discarded_epd: u64,
    /// Cells cut (refused or reclaimed) by Partial Packet Discard.
    pub discarded_ppd: u64,
    /// Straggler cells for frames already resolved.
    pub discarded_stale: u64,
    /// Cells of frames that failed end-of-frame validation.
    pub discarded_crc: u64,
    /// Cells of chains purged by the reassembly-expiry timer.
    pub discarded_expired: u64,
    /// Cells of doomed frames abandoned at end of frame (or when the
    /// run drained with the expiry timer disabled).
    pub discarded_abandoned: u64,
    /// Cells of frames that reassembled and validated intact but whose
    /// payload an earlier transmission had already delivered (spurious
    /// retransmission or wire duplication under a closed-loop
    /// transport). The receiver acks and discards them.
    pub discarded_superseded: u64,
    /// Cells that reached host memory inside a delivered frame.
    pub delivered_cells: u64,
}

impl CellLedger {
    /// Sum of every disposition bucket.
    pub fn accounted(&self) -> u64 {
        self.dropped_link
            + self.dropped_fifo
            + self.dropped_pool
            + self.discarded_epd
            + self.discarded_ppd
            + self.discarded_stale
            + self.discarded_crc
            + self.discarded_expired
            + self.discarded_abandoned
            + self.discarded_superseded
            + self.delivered_cells
    }

    /// The conservation invariant: no cell unaccounted, none counted
    /// twice, and retransmit provenance never exceeds what was injected.
    pub fn reconciles(&self) -> bool {
        self.accounted() == self.injected && self.injected_retx <= self.injected
    }
}

/// What the link did to a workload when a [`FaultPlan`] was applied.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Cells the original workload offered.
    pub offered: u64,
    /// Cells the link dropped.
    pub dropped: u64,
    /// Cells whose payload the link damaged.
    pub corrupted: u64,
    /// Extra copies the link injected.
    pub duplicated: u64,
    /// Cells displaced to a later slot.
    pub reordered: u64,
    /// Random draws the injector consumed (0 for [`FaultPlan::NONE`]).
    pub rng_draws: u64,
}

/// Run a workload's cells through a seeded [`FaultPlan`], producing the
/// perturbed workload the interface actually sees plus what happened on
/// the wire. Deterministic per seed; the empty plan draws no randomness
/// and returns the workload unchanged.
///
/// Semantics at the cell-schedule level: a lost cell's arrival vanishes;
/// a corrupted cell arrives flagged (it fails end-of-frame validation);
/// a duplicated cell arrives again one slot later (never as `is_last` —
/// the copy inflates the frame's cell count, which validation catches);
/// a reordered cell is displaced `displaced` slots later. Displacement
/// is detected only when it crosses the frame boundary — within a frame
/// the reassembly chain absorbs it.
pub fn apply_faults(
    wl: &RxWorkload,
    plan: &FaultPlan,
    slot: Duration,
    seed: u64,
) -> (RxWorkload, LinkFaults) {
    let mut inj = FaultInjector::seeded(*plan, seed);
    let mut lf = LinkFaults {
        offered: wl.arrivals.len() as u64,
        ..LinkFaults::default()
    };
    let mut arrivals = Vec::with_capacity(wl.arrivals.len());
    for a in &wl.arrivals {
        // An ATM cell is 53 octets on the wire.
        let fate = inj.fate(53 * 8);
        if fate.lost {
            lf.dropped += 1;
            continue;
        }
        let corrupted = a.corrupted || !fate.flipped_bits.is_empty();
        if corrupted && !a.corrupted {
            lf.corrupted += 1;
        }
        let at = a.at + slot * fate.displaced as u64;
        if fate.displaced > 0 {
            lf.reordered += 1;
        }
        arrivals.push(CellArrival {
            at,
            pkt: a.pkt,
            is_last: a.is_last,
            corrupted,
        });
        if fate.duplicated {
            lf.duplicated += 1;
            arrivals.push(CellArrival {
                at: at + slot,
                pkt: a.pkt,
                is_last: false,
                corrupted: a.corrupted,
            });
        }
    }
    // Restore time order after displacement (stable sort keeps the
    // FIFO tie-break deterministic).
    arrivals.sort_by_key(|a| a.at);
    lf.rng_draws = inj.rng_draws();
    (
        RxWorkload {
            arrivals,
            pkts: wl.pkts.clone(),
        },
        lf,
    )
}

/// Results of a receive simulation run.
#[derive(Clone, Debug)]
pub struct RxReport {
    /// Cells offered to the interface by the (post-fault) workload.
    pub cells_offered: u64,
    /// Cells lost to input-FIFO overrun.
    pub dropped_fifo: u64,
    /// Cells lost to buffer-pool exhaustion.
    pub dropped_pool: u64,
    /// Packets fully delivered to host memory.
    pub delivered_packets: u64,
    /// SDU octets delivered.
    pub delivered_octets: u64,
    /// Packets that started but failed (cell loss, discard policy,
    /// validation failure or expiry).
    pub failed_packets: u64,
    /// Goodput in bits/second over the run.
    pub goodput_bps: f64,
    /// Engine utilization.
    pub engine_util: f64,
    /// Bus utilization.
    pub bus_util: f64,
    /// Peak input-FIFO occupancy.
    pub fifo_peak: u64,
    /// Peak reassembly buffers in use.
    pub pool_peak: u64,
    /// Mean reassembly buffers in use (time-weighted).
    pub pool_mean: f64,
    /// Packet latency (first cell arrival → completion), µs.
    pub packet_latency_us: Summary,
    /// Packet latency distribution (ps): always-on log₂ histogram with
    /// p50/p90/p99/p999 bands.
    pub latency_hist: HdrHist,
    /// Tail exemplars: the slowest packets' identities plus a
    /// deterministic identity sample (always on, fixed capacity).
    pub tail: TailReservoir,
    /// Per-connection cell volume at bounded cardinality (always on).
    pub vc_cells: VcMetrics,
    /// When the last packet completed ([`Time::ZERO`] if none did).
    pub finished_at: Time,
    /// End of all simulated activity: the later of `finished_at` and
    /// the final productive event processed (expiry-timer ticks are
    /// bookkeeping and excluded). Unlike `finished_at` this is nonzero
    /// even when overload dooms every packet, so it is the right span
    /// for utilization math and profile snapshots.
    pub run_end: Time,
    /// Where every injected cell went.
    pub ledger: CellLedger,
}

#[derive(Clone, Copy, Debug)]
enum RTask {
    /// Per-cell work for (pkt, is_last).
    Cell(usize, bool),
    /// End-of-frame validation.
    Validate(usize),
    /// Engine part of one DMA burst.
    Burst(usize),
    /// Completion processing.
    Complete(usize),
}

#[derive(Clone, Copy, Debug)]
enum REv {
    CellArrive(usize),
    EngineDone(RTask),
    BusDone(usize),
    /// Reassembly-expiry timer scan (background bookkeeping).
    ExpiryTick,
}

struct PktState {
    cells_seen: usize,
    /// Cells currently stored in the frame's reassembly chain.
    retained: usize,
    first_arrival: Option<Time>,
    /// Last cell arrival for this frame (expiry clock).
    last_activity: Time,
    doomed: bool,
    /// The frame reached a final disposition (delivered or failed);
    /// anything arriving later is a straggler.
    resolved: bool,
    /// The final cell has been consumed — the frame left reassembly
    /// and is no longer the expiry timer's business.
    eof_reached: bool,
    /// The link damaged at least one of its cells.
    corrupt: bool,
    bursts_issued: u32,
    bursts_total: u32,
}

/// Run the receive pipeline over a workload.
pub fn run_rx(cfg: &RxConfig, wl: &RxWorkload) -> RxReport {
    run_rx_inner(cfg, wl, &mut None, &mut NullTracer, &mut NullProfiler)
}

/// Like [`run_rx`], additionally returning each packet's completion
/// time (`None` for packets that never completed).
pub fn run_rx_traced(cfg: &RxConfig, wl: &RxWorkload) -> (RxReport, Vec<Option<Time>>) {
    let mut completions = Some(vec![None; wl.pkts.len()]);
    let report = run_rx_inner(
        cfg,
        wl,
        &mut completions,
        &mut NullTracer,
        &mut NullProfiler,
    );
    (report, completions.expect("trace requested"))
}

/// Like [`run_rx_traced`], emitting a structured [`TraceEvent`] at every
/// pipeline stage boundary (cell arrival, FIFO admission/drop, per-cell
/// engine spans, reassembly appends, validation, delivery DMA,
/// completion) into `tracer`.
pub fn run_rx_instrumented(
    cfg: &RxConfig,
    wl: &RxWorkload,
    tracer: &mut dyn Tracer,
) -> (RxReport, Vec<Option<Time>>) {
    run_rx_full(cfg, wl, tracer, &mut NullProfiler)
}

/// Like [`run_rx_traced`], charging every simulated interval into the
/// cycle-accounting `profiler`: engine busy time and stalls
/// (`rx.engine`), delivery-DMA bus cycles (`rx.bus`), arriving cell
/// slots (`rx.link`), and the input-FIFO and reassembly-pool occupancy
/// gauges (`rx.fifo`, `rx.pool`).
pub fn run_rx_profiled(
    cfg: &RxConfig,
    wl: &RxWorkload,
    profiler: &mut dyn Profiler,
) -> (RxReport, Vec<Option<Time>>) {
    run_rx_full(cfg, wl, &mut NullTracer, profiler)
}

/// Run a workload through a seeded link [`FaultPlan`] and then the
/// receive pipeline, folding the link's own losses into the report's
/// [`CellLedger`] so the conservation invariant spans the whole path.
pub fn run_rx_faulted(
    cfg: &RxConfig,
    wl: &RxWorkload,
    plan: &FaultPlan,
    seed: u64,
) -> (RxReport, LinkFaults) {
    let (report, _, lf) =
        run_rx_faulted_full(cfg, wl, plan, seed, &mut NullTracer, &mut NullProfiler);
    (report, lf)
}

/// [`run_rx_faulted`] with a tracer attached (for metrics-registry
/// reconciliation against the ledger).
pub fn run_rx_faulted_instrumented(
    cfg: &RxConfig,
    wl: &RxWorkload,
    plan: &FaultPlan,
    seed: u64,
    tracer: &mut dyn Tracer,
) -> (RxReport, LinkFaults) {
    let (report, _, lf) = run_rx_faulted_full(cfg, wl, plan, seed, tracer, &mut NullProfiler);
    (report, lf)
}

pub(crate) fn run_rx_faulted_full(
    cfg: &RxConfig,
    wl: &RxWorkload,
    plan: &FaultPlan,
    seed: u64,
    tracer: &mut dyn Tracer,
    profiler: &mut dyn Profiler,
) -> (RxReport, Vec<Option<Time>>, LinkFaults) {
    let (fwl, lf) = apply_faults(wl, plan, cfg.rate.cell_slot_time(), seed);
    let mut completions = Some(vec![None; wl.pkts.len()]);
    let mut report = run_rx_inner(cfg, &fwl, &mut completions, tracer, profiler);
    report.ledger.injected += lf.dropped;
    report.ledger.dropped_link = lf.dropped;
    // Packets whose every cell the link swallowed never started at the
    // interface; they still failed end to end.
    let mut present = vec![false; wl.pkts.len()];
    for a in &fwl.arrivals {
        present[a.pkt] = true;
    }
    let mut offered = vec![false; wl.pkts.len()];
    for a in &wl.arrivals {
        offered[a.pkt] = true;
    }
    let vanished = offered
        .iter()
        .zip(&present)
        .filter(|(o, p)| **o && !**p)
        .count();
    report.failed_packets += vanished as u64;
    (report, completions.expect("completions requested"), lf)
}

/// Both observability sinks at once — what the end-to-end composition
/// runs so one pass can feed the tracer and the profiler.
pub(crate) fn run_rx_full(
    cfg: &RxConfig,
    wl: &RxWorkload,
    tracer: &mut dyn Tracer,
    profiler: &mut dyn Profiler,
) -> (RxReport, Vec<Option<Time>>) {
    let mut completions = Some(vec![None; wl.pkts.len()]);
    let report = run_rx_inner(cfg, wl, &mut completions, tracer, profiler);
    (report, completions.expect("trace requested"))
}

fn run_rx_inner(
    cfg: &RxConfig,
    wl: &RxWorkload,
    completions: &mut Option<Vec<Option<Time>>>,
    tracer: &mut dyn Tracer,
    profiler: &mut dyn Profiler,
) -> RxReport {
    let engine = ProtocolEngine::new(cfg.mips, &cfg.partition);
    let mut bus = Bus::with_faults(cfg.bus, cfg.bus_faults);
    let mut pool = BufferPool::with_policy(cfg.pool, cfg.policy);
    let mut q: EventQueue<REv> = EventQueue::new();

    for (i, a) in wl.arrivals.iter().enumerate() {
        q.schedule(a.at, REv::CellArrive(i));
    }

    let mut pkts: Vec<PktState> = wl
        .pkts
        .iter()
        .map(|m| PktState {
            cells_seen: 0,
            retained: 0,
            first_arrival: None,
            last_activity: Time::ZERO,
            doomed: false,
            resolved: false,
            eof_reached: false,
            corrupt: false,
            bursts_issued: 0,
            bursts_total: if m.len == 0 {
                0
            } else {
                cfg.bus.bursts_for(m.len)
            },
        })
        .collect();

    // Input FIFO holds (pkt, is_last).
    let mut fifo: VecDeque<(usize, bool)> = VecDeque::new();
    let mut fifo_peak = 0u64;
    let mut task_q: VecDeque<RTask> = VecDeque::new();
    let mut engine_busy = false;
    let mut engine_busy_total = Duration::ZERO;
    // Profiler bookkeeping (see txsim): the burst counter is cheap and
    // unconditional; the idle marker only exists while profiling.
    let mut bursts_in_flight: u32 = 0;
    let mut engine_idle_since: Option<(Time, Activity)> = None;
    let slot = cfg.rate.cell_slot_time();

    let mut ledger = CellLedger {
        injected: wl.arrivals.len() as u64,
        ..CellLedger::default()
    };
    let mut delivered_packets = 0u64;
    let mut delivered_octets = 0u64;
    let mut failed_packets = 0u64;
    let mut latency = Summary::new();
    let mut latency_hist = HdrHist::new();
    let mut tail = TailReservoir::paper();
    let mut vc_cells = VcMetrics::new();
    let mut finished_at = Time::ZERO;
    // End of *productive* simulated activity (expiry ticks excluded, so
    // a no-op timer never stretches utilization or goodput spans).
    let mut last_event = Time::ZERO;
    let expiry_on = cfg.reassembly_timeout > Duration::ZERO;
    let mut tick_pending = false;

    let cell_time = engine.task_time(TaskKind::RxHec)
        + engine.task_time(TaskKind::RxVciLookup)
        + engine.task_time(TaskKind::RxCellEnqueue)
        + engine.task_time(TaskKind::RxCellCrc);

    macro_rules! kick_engine {
        ($q:expr, $now:expr) => {
            if !engine_busy {
                // Cells first — an unconsumed cell is a lost cell.
                let task = if let Some((p, last)) = fifo.pop_front() {
                    if profiler.enabled() {
                        profiler.gauge(Component::RxFifo, $now, fifo.len() as u64);
                    }
                    Some(RTask::Cell(p, last))
                } else {
                    task_q.pop_front()
                };
                if let Some(task) = task {
                    engine_busy = true;
                    let t = match task {
                        RTask::Cell(..) => cell_time,
                        RTask::Validate(_) => engine.task_time(TaskKind::RxPacketValidate),
                        RTask::Burst(_) => engine.task_time(TaskKind::RxDmaBurst),
                        RTask::Complete(_) => engine.task_time(TaskKind::RxPacketComplete),
                    };
                    engine_busy_total += t;
                    if profiler.enabled() {
                        if let Some((since, cause)) = engine_idle_since.take() {
                            profiler.charge(
                                Component::RxEngine,
                                cause,
                                since,
                                $now.saturating_since(since),
                            );
                        }
                        profiler.charge(Component::RxEngine, Activity::Busy, $now, t);
                    }
                    if tracer.enabled() {
                        // Open a span for the bundled per-cell work and the
                        // per-packet tasks (closed at EngineDone).
                        let stage = match task {
                            RTask::Cell(p, _) => Some((Stage::RxCell, p)),
                            RTask::Validate(p) => {
                                TaskKind::RxPacketValidate.trace_stage().map(|s| (s, p))
                            }
                            RTask::Complete(p) => {
                                TaskKind::RxPacketComplete.trace_stage().map(|s| (s, p))
                            }
                            RTask::Burst(_) => None,
                        };
                        if let Some((stage, p)) = stage {
                            tracer.record(
                                TraceEvent::enter($now, stage)
                                    .vc(wl.pkts[p].conn as u32)
                                    .pkt(p),
                            );
                        }
                    }
                    $q.schedule_in(t, REv::EngineDone(task));
                } else if profiler.enabled() && engine_idle_since.is_none() {
                    // Receive stalls: an outstanding delivery DMA means
                    // the completion is waiting on the bus; otherwise
                    // the engine is simply between arrivals.
                    let cause = if bursts_in_flight > 0 {
                        Activity::StalledBus
                    } else {
                        Activity::Idle
                    };
                    engine_idle_since = Some(($now, cause));
                }
            }
        };
    }

    // Fail a frame: release whatever it holds and mark it resolved.
    // Callers must have moved `retained` into a ledger bucket first.
    macro_rules! resolve_failed {
        ($now:expr, $p:expr) => {{
            let freed = pool.release_chain($now, $p as u32);
            if freed > 0 && profiler.enabled() {
                profiler.gauge(Component::RxPool, $now, pool.in_use() as u64);
            }
            let st = &mut pkts[$p];
            st.resolved = true;
            st.doomed = true;
            failed_packets += 1;
        }};
    }

    while let Some((now, ev)) = q.pop() {
        match ev {
            REv::CellArrive(i) => {
                last_event = now;
                let a = wl.arrivals[i];
                let conn = wl.pkts[a.pkt].conn as u32;
                // Always-on per-VC accounting at the wire (53 octets per
                // arriving cell); O(K) scan, no allocation, observational.
                vc_cells.record_cell(conn, 53);
                if profiler.enabled() {
                    // The cell occupied the line for the slot that ended
                    // at its arrival (saturating for an arrival at t=0).
                    let from = Time::from_ps(now.as_ps().saturating_sub(slot.as_ps()));
                    profiler.charge(Component::RxLink, Activity::Transfer, from, slot);
                }
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, Stage::RxCellArrive)
                            .vc(conn)
                            .pkt(a.pkt)
                            .cell(i as u64),
                    );
                }
                if pkts[a.pkt].resolved {
                    // Straggler (duplicate or reordered copy arriving
                    // after the frame reached a final disposition).
                    ledger.discarded_stale += 1;
                    if tracer.enabled() {
                        tracer.record(
                            TraceEvent::instant(now, Stage::RxStaleDiscard)
                                .vc(conn)
                                .pkt(a.pkt)
                                .cell(i as u64)
                                .arg(1),
                        );
                    }
                } else {
                    let starts_frame = pkts[a.pkt].first_arrival.is_none();
                    {
                        let st = &mut pkts[a.pkt];
                        if starts_frame {
                            st.first_arrival = Some(now);
                        }
                        st.last_activity = now;
                        if a.corrupted {
                            st.corrupt = true;
                        }
                    }
                    if starts_frame && expiry_on && !tick_pending {
                        q.schedule_in(cfg.reassembly_timeout, REv::ExpiryTick);
                        tick_pending = true;
                    }
                    match pool.admit(a.pkt as u32, starts_frame) {
                        Err(why @ (PoolError::EarlyDiscard | PoolError::PartialDiscard)) => {
                            let stage = if why == PoolError::EarlyDiscard {
                                ledger.discarded_epd += 1;
                                Stage::RxEpdDiscard
                            } else {
                                ledger.discarded_ppd += 1;
                                Stage::RxPpdDiscard
                            };
                            if tracer.enabled() {
                                tracer.record(
                                    TraceEvent::instant(now, stage)
                                        .vc(conn)
                                        .pkt(a.pkt)
                                        .cell(i as u64)
                                        .arg(1),
                                );
                            }
                            if a.is_last {
                                // The frame's end came and went unseen:
                                // it can never validate.
                                pkts[a.pkt].eof_reached = true;
                                resolve_failed!(now, a.pkt);
                            }
                        }
                        // `admit` never reports Exhausted; drop-tail
                        // pressure shows up at append time instead.
                        Ok(()) | Err(PoolError::Exhausted) => {
                            if fifo.len() >= cfg.fifo_cells {
                                ledger.dropped_fifo += 1;
                                pkts[a.pkt].doomed = true;
                                if tracer.enabled() {
                                    tracer.record(
                                        TraceEvent::instant(now, Stage::RxFifoDrop)
                                            .vc(conn)
                                            .pkt(a.pkt)
                                            .cell(i as u64),
                                    );
                                }
                            } else {
                                fifo.push_back((a.pkt, a.is_last));
                                fifo_peak = fifo_peak.max(fifo.len() as u64);
                                if profiler.enabled() {
                                    profiler.gauge(Component::RxFifo, now, fifo.len() as u64);
                                }
                                if tracer.enabled() {
                                    tracer.record(
                                        TraceEvent::instant(now, Stage::RxFifoEnqueue)
                                            .vc(conn)
                                            .pkt(a.pkt)
                                            .cell(i as u64)
                                            .arg(fifo.len() as u64),
                                    );
                                }
                            }
                        }
                    }
                }
                kick_engine!(q, now);
            }
            REv::EngineDone(task) => {
                last_event = now;
                engine_busy = false;
                match task {
                    RTask::Cell(p, is_last) => {
                        let conn = wl.pkts[p].conn as u32;
                        if tracer.enabled() {
                            tracer.record(TraceEvent::exit(now, Stage::RxCell).vc(conn).pkt(p));
                        }
                        if pkts[p].resolved {
                            // The frame was resolved while this cell sat
                            // in the FIFO; its chain is gone.
                            ledger.discarded_stale += 1;
                            if tracer.enabled() {
                                tracer.record(
                                    TraceEvent::instant(now, Stage::RxStaleDiscard)
                                        .vc(conn)
                                        .pkt(p)
                                        .arg(1),
                                );
                            }
                        } else {
                            pkts[p].cells_seen += 1;
                            let result = pool.append_cell(now, p as u32);
                            let mut ppd_charge = 0u64;
                            match result {
                                Ok(()) => pkts[p].retained += 1,
                                Err(PoolError::Exhausted) => {
                                    ledger.dropped_pool += 1;
                                    pkts[p].doomed = true;
                                }
                                Err(PoolError::PartialDiscard) => {
                                    // On the triggering cell PPD reclaims
                                    // the frame's whole stored chain
                                    // (`retained` > 0 only then); the
                                    // follow-ups cost one cell each.
                                    let st = &mut pkts[p];
                                    ppd_charge = st.retained as u64 + 1;
                                    ledger.discarded_ppd += ppd_charge;
                                    st.retained = 0;
                                    st.doomed = true;
                                }
                                Err(PoolError::EarlyDiscard) => {
                                    ledger.discarded_epd += 1;
                                    pkts[p].doomed = true;
                                }
                            }
                            if profiler.enabled() {
                                profiler.gauge(Component::RxPool, now, pool.in_use() as u64);
                            }
                            if tracer.enabled() {
                                let st = &pkts[p];
                                let (stage, arg) = match result {
                                    Ok(()) => (Stage::RxReasmAppend, st.cells_seen as u64),
                                    Err(PoolError::Exhausted) => {
                                        (Stage::RxPoolDrop, st.cells_seen as u64)
                                    }
                                    Err(PoolError::PartialDiscard) => {
                                        (Stage::RxPpdDiscard, ppd_charge)
                                    }
                                    Err(PoolError::EarlyDiscard) => (Stage::RxEpdDiscard, 1),
                                };
                                tracer.record(
                                    TraceEvent::instant(now, stage).vc(conn).pkt(p).arg(arg),
                                );
                            }
                            if is_last {
                                pkts[p].eof_reached = true;
                                if pkts[p].doomed {
                                    // Abandon: free whatever was chained.
                                    ledger.discarded_abandoned += pkts[p].retained as u64;
                                    pkts[p].retained = 0;
                                    resolve_failed!(now, p);
                                } else {
                                    if tracer.enabled() {
                                        tracer.record(
                                            TraceEvent::instant(now, Stage::RxReasmComplete)
                                                .vc(conn)
                                                .pkt(p)
                                                .arg(pkts[p].cells_seen as u64),
                                        );
                                    }
                                    task_q.push_back(RTask::Validate(p));
                                }
                            }
                        }
                    }
                    RTask::Validate(p) => {
                        if tracer.enabled() {
                            tracer.record(
                                TraceEvent::exit(now, Stage::RxValidate)
                                    .vc(wl.pkts[p].conn as u32)
                                    .pkt(p),
                            );
                        }
                        let expected = wl.pkts[p].cells;
                        let st = &pkts[p];
                        if !st.resolved && (st.doomed || st.corrupt || st.cells_seen != expected) {
                            // The CRC-32 catch-all: damaged payload, or a
                            // cell count the length field contradicts
                            // (duplicate slipped in / straggler missing).
                            let retained = pkts[p].retained as u64;
                            ledger.discarded_crc += retained;
                            pkts[p].retained = 0;
                            if tracer.enabled() {
                                tracer.record(
                                    TraceEvent::instant(now, Stage::RxValidateFail)
                                        .vc(wl.pkts[p].conn as u32)
                                        .pkt(p)
                                        .arg(retained),
                                );
                            }
                            resolve_failed!(now, p);
                        } else if !st.resolved {
                            let st = &mut pkts[p];
                            if st.bursts_total == 0 {
                                task_q.push_back(RTask::Complete(p));
                            } else if engine.partition.in_hardware(TaskKind::RxDmaBurst) {
                                st.bursts_issued += 1;
                                let words = cfg.bus.burst_words(wl.pkts[p].len.max(1), 0);
                                let done = bus.grant_profiled(
                                    now,
                                    words,
                                    words as usize * cfg.bus.word_bytes,
                                    Component::RxBus,
                                    profiler,
                                );
                                bursts_in_flight += 1;
                                q.schedule(done, REv::BusDone(p));
                            } else {
                                st.bursts_issued += 1;
                                task_q.push_back(RTask::Burst(p));
                            }
                        }
                    }
                    RTask::Burst(p) => {
                        let bi = pkts[p].bursts_issued - 1;
                        let words = cfg.bus.burst_words(wl.pkts[p].len.max(1), bi);
                        let done = bus.grant_profiled(
                            now,
                            words,
                            words as usize * cfg.bus.word_bytes,
                            Component::RxBus,
                            profiler,
                        );
                        bursts_in_flight += 1;
                        q.schedule(done, REv::BusDone(p));
                    }
                    RTask::Complete(p) => {
                        let meta = &wl.pkts[p];
                        if tracer.enabled() {
                            let conn = meta.conn as u32;
                            tracer.record(TraceEvent::exit(now, Stage::RxComplete).vc(conn).pkt(p));
                            tracer.record(
                                TraceEvent::instant(now, Stage::CompletionPush)
                                    .vc(conn)
                                    .pkt(p)
                                    .arg(meta.len as u64),
                            );
                        }
                        pool.release_chain(now, p as u32);
                        if profiler.enabled() {
                            profiler.gauge(Component::RxPool, now, pool.in_use() as u64);
                        }
                        let st = &mut pkts[p];
                        ledger.delivered_cells += st.retained as u64;
                        st.retained = 0;
                        st.resolved = true;
                        delivered_packets += 1;
                        delivered_octets += meta.len as u64;
                        finished_at = now;
                        if let Some(c) = completions.as_mut() {
                            c[p] = Some(now);
                        }
                        if let Some(t0) = pkts[p].first_arrival {
                            let lat = now.saturating_since(t0);
                            latency.record_us(lat);
                            latency_hist.record_duration(lat);
                            tail.record(meta.conn as u32, p as u32, lat, now);
                        }
                    }
                }
                kick_engine!(q, now);
            }
            REv::BusDone(p) => {
                last_event = now;
                bursts_in_flight -= 1;
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, Stage::RxDmaBurst)
                            .vc(wl.pkts[p].conn as u32)
                            .pkt(p)
                            .arg(pkts[p].bursts_issued as u64),
                    );
                }
                let st = &mut pkts[p];
                if st.bursts_issued < st.bursts_total {
                    st.bursts_issued += 1;
                    if engine.partition.in_hardware(TaskKind::RxDmaBurst) {
                        let bi = st.bursts_issued - 1;
                        let words = cfg.bus.burst_words(wl.pkts[p].len.max(1), bi);
                        let done = bus.grant_profiled(
                            now,
                            words,
                            words as usize * cfg.bus.word_bytes,
                            Component::RxBus,
                            profiler,
                        );
                        bursts_in_flight += 1;
                        q.schedule(done, REv::BusDone(p));
                    } else {
                        task_q.push_back(RTask::Burst(p));
                    }
                } else {
                    task_q.push_back(RTask::Complete(p));
                }
                kick_engine!(q, now);
            }
            REv::ExpiryTick => {
                // Background purge: no engine time, no `last_event`.
                tick_pending = false;
                let mut any_waiting = false;
                let mut expired = Vec::new();
                for (p, st) in pkts.iter().enumerate() {
                    if st.resolved || st.eof_reached || st.first_arrival.is_none() {
                        continue;
                    }
                    if now.saturating_since(st.last_activity) >= cfg.reassembly_timeout {
                        expired.push(p);
                    } else {
                        any_waiting = true;
                    }
                }
                for p in expired {
                    let retained = pkts[p].retained as u64;
                    ledger.discarded_expired += retained;
                    pkts[p].retained = 0;
                    if tracer.enabled() {
                        tracer.record(
                            TraceEvent::instant(now, Stage::RxReasmExpire)
                                .vc(wl.pkts[p].conn as u32)
                                .pkt(p)
                                .arg(retained),
                        );
                    }
                    resolve_failed!(now, p);
                }
                if any_waiting {
                    // Half-timeout cadence bounds detection latency at
                    // 1.5 × the timeout without per-frame timers.
                    q.schedule_in(
                        Duration::from_ps((cfg.reassembly_timeout.as_ps() / 2).max(1)),
                        REv::ExpiryTick,
                    );
                    tick_pending = true;
                }
            }
        }
    }

    let end = finished_at.max(last_event);
    // With the expiry timer disabled, frames stalled mid-reassembly are
    // still open when the queue drains; account them so the ledger
    // always reconciles.
    let abandoned: Vec<usize> = pkts
        .iter()
        .enumerate()
        .filter(|(_, st)| !st.resolved && st.first_arrival.is_some())
        .map(|(p, _)| p)
        .collect();
    for p in abandoned {
        ledger.discarded_abandoned += pkts[p].retained as u64;
        pkts[p].retained = 0;
        resolve_failed!(end, p);
    }
    let elapsed_s = end.saturating_since(Time::ZERO).as_s_f64();
    RxReport {
        cells_offered: wl.arrivals.len() as u64,
        dropped_fifo: ledger.dropped_fifo,
        dropped_pool: ledger.dropped_pool,
        delivered_packets,
        delivered_octets,
        failed_packets,
        goodput_bps: if elapsed_s > 0.0 {
            delivered_octets as f64 * 8.0 / elapsed_s
        } else {
            0.0
        },
        engine_util: if elapsed_s > 0.0 {
            engine_busy_total.as_s_f64() / elapsed_s
        } else {
            0.0
        },
        bus_util: bus.utilization(end),
        fifo_peak,
        pool_peak: pool.peak_in_use(),
        pool_mean: pool.mean_in_use(end),
        packet_latency_us: latency,
        latency_hist,
        tail,
        vc_cells,
        finished_at,
        run_end: end,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_delivery_at_moderate_load() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 10, 9180, 0.8);
        let r = run_rx(&cfg, &wl);
        assert_eq!(r.delivered_packets, 40);
        assert_eq!(r.failed_packets, 0);
        assert_eq!(r.dropped_fifo, 0);
        assert_eq!(r.delivered_octets, 40 * 9180);
        assert!(r.ledger.reconciles(), "{:?}", r.ledger);
        assert_eq!(r.ledger.delivered_cells, r.ledger.injected);
    }

    #[test]
    fn full_line_rate_sustained_by_paper_config() {
        // The design claim: at OC-12 and load 1.0 with big frames, the
        // split-hardware interface keeps up — no FIFO drops.
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 8, 40, 9180, 1.0);
        let r = run_rx(&cfg, &wl);
        assert_eq!(r.dropped_fifo, 0, "paper config must keep up at line rate");
        assert_eq!(r.failed_packets, 0);
        // Ceiling: payload rate × cell payload fraction × AAL efficiency.
        // (A percent-level drain tail remains: the 8 interleaved VCs all
        // complete within a few slots of each other and their delivery
        // DMAs serialize on the bus after the last cell has arrived.)
        let ceiling = LineRate::Oc12.payload_bps() * (48.0 / 53.0) * AalType::Aal5.efficiency(9180);
        assert!(
            r.goodput_bps > 0.95 * ceiling,
            "goodput {} vs ceiling {ceiling}",
            r.goodput_bps
        );
    }

    #[test]
    fn all_software_drowns_at_oc12() {
        let mut cfg = RxConfig::paper(LineRate::Oc12);
        cfg.partition = HwPartition::all_software();
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 8, 5, 9180, 1.0);
        let r = run_rx(&cfg, &wl);
        assert!(r.dropped_fifo > 0, "software per-cell work cannot keep up");
        assert!(r.failed_packets > 0);
        assert!(r.engine_util > 0.95);
        assert!(r.ledger.reconciles(), "{:?}", r.ledger);
    }

    #[test]
    fn all_software_survives_low_load() {
        let mut cfg = RxConfig::paper(LineRate::Oc3);
        cfg.partition = HwPartition::all_software();
        // Per-cell software work ≈ 8.08 µs (202 instr / 25 MIPS); OC-3
        // slots are 2.83 µs, so keep offered load under a third.
        let wl = RxWorkload::uniform(LineRate::Oc3, AalType::Aal5, 2, 10, 9180, 0.3);
        let r = run_rx(&cfg, &wl);
        assert_eq!(r.dropped_fifo, 0);
        assert_eq!(r.failed_packets, 0);
    }

    #[test]
    fn pool_exhaustion_with_many_interleaved_vcs() {
        let mut cfg = RxConfig::paper(LineRate::Oc12);
        // Tiny pool: 4 containers of 32 cells.
        cfg.pool = PoolConfig {
            total_buffers: 4,
            cells_per_buffer: 32,
        };
        // 64 VCs interleaving 9180-byte frames (192 cells each): every VC
        // needs ~6 containers concurrently. Must exhaust.
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 64, 1, 9180, 1.0);
        let r = run_rx(&cfg, &wl);
        assert!(r.dropped_pool > 0);
        assert!(r.failed_packets > 0);
        assert_eq!(r.pool_peak, 4);
        assert!(r.ledger.reconciles(), "{:?}", r.ledger);
    }

    #[test]
    fn epd_beats_drop_tail_when_pool_starves() {
        // Same starved pool as above; EPD refuses whole frames at the
        // door instead of shredding every frame a little.
        let mut dt = RxConfig::paper(LineRate::Oc12);
        dt.pool = PoolConfig {
            total_buffers: 16,
            cells_per_buffer: 32,
        };
        let mut epd = dt.clone();
        // 9180-octet frames span 6 buffers, so a 16-buffer pool fits two
        // whole frames: the threshold must leave admitted frames room to
        // GROW, not just room to start. Drop-tail instead lets all 64
        // VCs start chains that can never finish.
        epd.policy = DiscardPolicy::Epd { threshold: 2 };
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 64, 4, 9180, 1.0);
        let r_dt = run_rx(&dt, &wl);
        let r_epd = run_rx(&epd, &wl);
        assert!(r_epd.ledger.discarded_epd > 0);
        assert!(r_dt.ledger.reconciles(), "{:?}", r_dt.ledger);
        assert!(r_epd.ledger.reconciles(), "{:?}", r_epd.ledger);
        assert!(
            r_epd.delivered_packets > r_dt.delivered_packets,
            "EPD {} vs drop-tail {}",
            r_epd.delivered_packets,
            r_dt.delivered_packets
        );
    }

    #[test]
    fn ppd_reclaims_doomed_chains() {
        let mut cfg = RxConfig::paper(LineRate::Oc12);
        cfg.pool = PoolConfig {
            total_buffers: 8,
            cells_per_buffer: 32,
        };
        cfg.policy = DiscardPolicy::Ppd;
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 64, 2, 9180, 1.0);
        let r = run_rx(&cfg, &wl);
        assert!(r.ledger.discarded_ppd > 0);
        assert_eq!(r.ledger.dropped_pool, 0, "PPD converts exhaustion");
        assert!(r.ledger.reconciles(), "{:?}", r.ledger);
    }

    #[test]
    fn expiry_purges_stalled_chain_and_frees_buffers() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        // One frame whose last cell never arrives: 5 of 6 cells.
        let pkts = vec![RxPktMeta {
            conn: 0,
            len: 240,
            cells: 6,
        }];
        let mut arrivals = Vec::new();
        for c in 0..5usize {
            arrivals.push(CellArrival {
                at: Time::from_ns(708 * (c as u64 + 1)),
                pkt: 0,
                is_last: false,
                corrupted: false,
            });
        }
        let wl = RxWorkload { arrivals, pkts };
        let r = run_rx(&cfg, &wl);
        assert_eq!(r.delivered_packets, 0);
        assert_eq!(r.failed_packets, 1);
        assert_eq!(r.ledger.discarded_expired, 5);
        assert!(r.ledger.reconciles(), "{:?}", r.ledger);
        // The purge is bookkeeping: it must not stretch the run.
        assert!(r.run_end < Time::from_ms(1), "run_end {:?}", r.run_end);
    }

    #[test]
    fn expiry_disabled_still_reconciles() {
        let mut cfg = RxConfig::paper(LineRate::Oc12);
        cfg.reassembly_timeout = Duration::ZERO;
        let pkts = vec![RxPktMeta {
            conn: 0,
            len: 240,
            cells: 6,
        }];
        let arrivals = (0..5usize)
            .map(|c| CellArrival {
                at: Time::from_ns(708 * (c as u64 + 1)),
                pkt: 0,
                is_last: false,
                corrupted: false,
            })
            .collect();
        let wl = RxWorkload { arrivals, pkts };
        let r = run_rx(&cfg, &wl);
        assert_eq!(r.failed_packets, 1);
        assert_eq!(r.ledger.discarded_abandoned, 5);
        assert!(r.ledger.reconciles(), "{:?}", r.ledger);
    }

    #[test]
    fn corrupt_cell_fails_validation() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let mut wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 1, 2, 4096, 0.8);
        wl.arrivals[1].corrupted = true;
        let r = run_rx(&cfg, &wl);
        assert_eq!(r.delivered_packets, 1);
        assert_eq!(r.failed_packets, 1);
        assert!(r.ledger.discarded_crc > 0);
        assert!(r.ledger.reconciles(), "{:?}", r.ledger);
    }

    #[test]
    fn faulted_run_reconciles_and_is_deterministic() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 8, 6, 9180, 0.9);
        let plan = FaultPlan::iid(0.005, 1e-5)
            .with_duplication(0.01)
            .with_reorder(0.02, 4);
        let (r1, lf1) = run_rx_faulted(&cfg, &wl, &plan, 42);
        let (r2, lf2) = run_rx_faulted(&cfg, &wl, &plan, 42);
        assert_eq!(lf1, lf2);
        assert_eq!(r1.ledger, r2.ledger);
        assert!(lf1.dropped > 0, "0.5% loss over 9216 cells");
        assert_eq!(r1.ledger.dropped_link, lf1.dropped);
        assert_eq!(
            r1.ledger.injected,
            wl.arrivals.len() as u64 + lf1.duplicated
        );
        assert!(r1.ledger.reconciles(), "{:?}", r1.ledger);
        assert!(r1.delivered_packets < 48, "some frames must fail");
        assert!(
            r1.delivered_packets > 0,
            "some frames must survive 0.5% loss"
        );
    }

    #[test]
    fn faultless_plan_is_byte_identical_and_draw_free() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 10, 9180, 0.9);
        let plain = run_rx(&cfg, &wl);
        let (faulted, lf) = run_rx_faulted(&cfg, &wl, &FaultPlan::NONE, 7);
        assert_eq!(lf.rng_draws, 0, "empty plan must not touch the RNG");
        assert_eq!(format!("{plain:?}"), format!("{faulted:?}"));
    }

    #[test]
    fn interleaving_widens_pool_footprint() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let one_vc = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 1, 16, 9180, 1.0);
        let many_vc = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 16, 1, 9180, 1.0);
        let r1 = run_rx(&cfg, &one_vc);
        let r16 = run_rx(&cfg, &many_vc);
        assert!(
            r16.pool_peak > 4 * r1.pool_peak,
            "16-way interleave {} vs serial {}",
            r16.pool_peak,
            r1.pool_peak
        );
    }

    #[test]
    fn latency_has_sane_floor() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 1, 5, 9180, 0.9);
        let r = run_rx(&cfg, &wl);
        // A 192-cell frame takes ≥ 191 arrival intervals ≈ 150 µs just to
        // arrive; latency must exceed that and stay well under 1 ms.
        assert!(r.packet_latency_us.min() > 140.0);
        assert!(r.packet_latency_us.max() < 1000.0);
    }

    #[test]
    fn deterministic() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 10, 4096, 0.9);
        let a = run_rx(&cfg, &wl);
        let b = run_rx(&cfg, &wl);
        assert_eq!(a.finished_at, b.finished_at);
        assert_eq!(a.delivered_packets, b.delivered_packets);
    }

    #[test]
    fn workload_generator_counts() {
        let wl = RxWorkload::uniform(LineRate::Oc3, AalType::Aal5, 3, 4, 1000, 0.5);
        assert_eq!(wl.pkts.len(), 12);
        let cells_per = AalType::Aal5.cells_for_sdu(1000);
        assert_eq!(wl.arrivals.len(), 12 * cells_per);
        // Arrivals strictly increasing.
        for w in wl.arrivals.windows(2) {
            assert!(w[0].at < w[1].at);
        }
        // Exactly one last cell per packet.
        let lasts = wl.arrivals.iter().filter(|a| a.is_last).count();
        assert_eq!(lasts, 12);
    }

    #[test]
    fn small_packets_engine_bound_by_per_packet_work() {
        let cfg = RxConfig::paper(LineRate::Oc12);
        // 1-cell packets at full rate: per-packet work (30+40 instr =
        // 2.8 µs) per 708 ns slot → cannot keep up, FIFO drops.
        let wl = RxWorkload::uniform(LineRate::Oc12, AalType::Aal5, 4, 200, 40, 1.0);
        let r = run_rx(&cfg, &wl);
        assert!(
            r.dropped_fifo + r.dropped_pool > 0 && r.failed_packets > 0,
            "single-cell packets at line rate must overwhelm per-packet processing: {r:?}"
        );
        assert!(r.ledger.reconciles(), "{:?}", r.ledger);
    }
}
