//! Adaptor reassembly memory: the buffer pool receive-side cells land in
//! while their frame completes.
//!
//! The receive pipeline cannot know a frame's length until its last cell
//! arrives, and cells of many VCs interleave arbitrarily — so adaptor
//! memory is organised as a pool of fixed-size buffers chained per
//! connection, with a free list. Two organisations are supported,
//! matching the options the era's designs weighed:
//!
//! * **cells_per_buffer = 1** — a linked list of single-cell buffers:
//!   no internal fragmentation, one pointer dereference per cell.
//! * **cells_per_buffer = k** (e.g. 32) — container buffers: k cell
//!   payloads plus a validity map per buffer; fewer, larger allocations,
//!   some waste at frame tails.
//!
//! The pool tracks exactly what buffer-sizing decisions need: buffers in
//! use over time (time-weighted mean and peak) and allocation failures
//! (a failure means a cell had nowhere to land — the frame is lost to
//! *memory* pressure, not link errors; real interfaces under-provisioned
//! this and the loss was mysterious at the time).
//!
//! ## Discard policies
//!
//! Plain drop-tail turns memory pressure into AAL5 goodput collapse:
//! the pool keeps accepting cells of frames that are already doomed
//! (one of their cells found no buffer), so under overload almost every
//! buffer holds a fragment that will fail its CRC. The two classic
//! remedies from the ATM traffic-management literature are supported as
//! a [`DiscardPolicy`]:
//!
//! * **EPD** (Early Packet Discard): refuse *whole new frames* at
//!   admission once occupancy crosses a threshold, keeping headroom for
//!   frames already in flight to complete.
//! * **PPD** (Partial Packet Discard): the moment one cell of a frame
//!   is lost to exhaustion, reclaim the frame's buffers immediately and
//!   refuse the rest of its cells — don't store what can't validate.
//!
//! The pool dooms the frame's chain key in both cases and counts every
//! refused cell per policy, so callers can reconcile cells to reasons.

use hni_sim::{OccupancyTracker, Time};
use std::collections::HashMap;

/// Identifies one buffer chain: one frame under reassembly (or awaiting
/// delivery DMA). Chains are per-*frame*, not per-connection — with
/// pipelined completion, a connection's next frame starts arriving while
/// the previous one still owns its buffers.
pub type ChainKey = u32;

/// Pool organisation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Total buffers in adaptor memory.
    pub total_buffers: usize,
    /// Cell payloads per buffer (1 = per-cell linked list; >1 = containers).
    pub cells_per_buffer: usize,
}

impl PoolConfig {
    /// Octets of adaptor SRAM this configuration occupies, counting the
    /// 48-octet payload slots plus per-buffer overhead (next pointer,
    /// validity bitmap rounded to whole octets).
    pub fn sram_octets(&self) -> usize {
        let per_buffer = self.cells_per_buffer * 48 + 4 + self.cells_per_buffer.div_ceil(8);
        self.total_buffers * per_buffer
    }
}

/// Why a cell could not be stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// The free list is empty (drop-tail: the frame is now doomed but
    /// its siblings keep consuming buffers).
    Exhausted,
    /// Early Packet Discard refused the frame at admission — occupancy
    /// had crossed the threshold when its first cell arrived.
    EarlyDiscard,
    /// Partial Packet Discard refused the cell — an earlier cell of the
    /// same frame was lost to exhaustion, so the tail is discarded and
    /// the frame's buffers were already reclaimed.
    PartialDiscard,
}

/// What the pool does when memory pressure bites.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DiscardPolicy {
    /// Accept every cell until the free list is empty; doomed frames
    /// keep consuming buffers. The baseline that collapses under load.
    #[default]
    DropTail,
    /// Early Packet Discard: refuse new frames once `threshold` buffers
    /// are in use (frames already admitted still get buffers).
    Epd {
        /// Occupancy (buffers in use) at which new frames are refused.
        threshold: usize,
    },
    /// Partial Packet Discard: on the first exhaustion loss within a
    /// frame, reclaim its buffers and refuse the rest of its cells.
    Ppd,
}

struct Chain {
    buffers: usize,
    cells_in_tail: usize,
}

/// The operational buffer pool.
pub struct BufferPool {
    cfg: PoolConfig,
    policy: DiscardPolicy,
    free: usize,
    chains: HashMap<ChainKey, Chain>,
    doomed: HashMap<ChainKey, PoolError>,
    occupancy: OccupancyTracker,
    alloc_failures: u64,
    cells_stored: u64,
    epd_discards: u64,
    ppd_discards: u64,
    ppd_reclaimed: u64,
}

impl BufferPool {
    /// A drop-tail pool per `cfg`, all buffers free.
    pub fn new(cfg: PoolConfig) -> Self {
        BufferPool::with_policy(cfg, DiscardPolicy::DropTail)
    }

    /// A pool running the given discard policy.
    pub fn with_policy(cfg: PoolConfig, policy: DiscardPolicy) -> Self {
        assert!(cfg.total_buffers > 0 && cfg.cells_per_buffer > 0);
        if let DiscardPolicy::Epd { threshold } = policy {
            assert!(
                threshold > 0 && threshold <= cfg.total_buffers,
                "EPD threshold {threshold} outside 1..={}",
                cfg.total_buffers
            );
        }
        BufferPool {
            cfg,
            policy,
            free: cfg.total_buffers,
            chains: HashMap::new(),
            doomed: HashMap::new(),
            occupancy: OccupancyTracker::new(),
            alloc_failures: 0,
            cells_stored: 0,
            epd_discards: 0,
            ppd_discards: 0,
            ppd_reclaimed: 0,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// Discard policy in force.
    pub fn policy(&self) -> DiscardPolicy {
        self.policy
    }

    /// Admission check, to be called when a cell *arrives* (before any
    /// engine work is spent on it). `starts_frame` marks the frame's
    /// first cell. Under EPD a new frame is refused outright when
    /// occupancy has crossed the threshold; cells of frames the policy
    /// has already doomed are refused with the dooming reason. Each
    /// refusal counts one cell against the responsible policy counter.
    pub fn admit(&mut self, conn: ChainKey, starts_frame: bool) -> Result<(), PoolError> {
        if let Some(&why) = self.doomed.get(&conn) {
            match why {
                PoolError::EarlyDiscard => self.epd_discards += 1,
                PoolError::PartialDiscard => self.ppd_discards += 1,
                PoolError::Exhausted => {}
            }
            return Err(why);
        }
        if starts_frame {
            if let DiscardPolicy::Epd { threshold } = self.policy {
                if self.in_use() >= threshold {
                    self.doomed.insert(conn, PoolError::EarlyDiscard);
                    self.epd_discards += 1;
                    return Err(PoolError::EarlyDiscard);
                }
            }
        }
        Ok(())
    }

    /// Store one cell on chain `conn` at time `now`.
    pub fn append_cell(&mut self, now: Time, conn: ChainKey) -> Result<(), PoolError> {
        if let Some(&why) = self.doomed.get(&conn) {
            // A doomed frame's cell slipped past admission (e.g. it was
            // already in the FIFO): refuse it here, same accounting.
            match why {
                PoolError::EarlyDiscard => self.epd_discards += 1,
                PoolError::PartialDiscard => self.ppd_discards += 1,
                PoolError::Exhausted => {}
            }
            return Err(why);
        }
        let needs_buffer = match self.chains.get(&conn) {
            Some(chain) => chain.cells_in_tail == self.cfg.cells_per_buffer,
            None => true,
        };
        if needs_buffer {
            if self.free == 0 {
                self.alloc_failures += 1;
                if self.policy == DiscardPolicy::Ppd {
                    // Don't store what can't validate: reclaim the
                    // frame's buffers now and doom its tail. The
                    // triggering cell counts against PPD too (it is
                    // refused) as well as against alloc_failures (it
                    // did find the pool empty).
                    self.ppd_reclaimed += self.release_chain(now, conn) as u64;
                    self.doomed.insert(conn, PoolError::PartialDiscard);
                    self.ppd_discards += 1;
                    return Err(PoolError::PartialDiscard);
                }
                return Err(PoolError::Exhausted);
            }
            self.free -= 1;
            let in_use = (self.cfg.total_buffers - self.free) as u64;
            self.occupancy.set(now, in_use);
            let chain = self.chains.entry(conn).or_insert(Chain {
                buffers: 0,
                cells_in_tail: 0,
            });
            chain.buffers += 1;
            chain.cells_in_tail = 0;
        }
        let chain = self.chains.get_mut(&conn).expect("chain ensured above");
        chain.cells_in_tail += 1;
        self.cells_stored += 1;
        Ok(())
    }

    /// Release a whole chain (frame delivered or abandoned). Also clears
    /// any policy doom on the key, so the key can be reused for a later
    /// frame. Returns the number of buffers freed.
    pub fn release_chain(&mut self, now: Time, conn: ChainKey) -> usize {
        self.doomed.remove(&conn);
        match self.chains.remove(&conn) {
            None => 0,
            Some(chain) => {
                self.free += chain.buffers;
                let in_use = (self.cfg.total_buffers - self.free) as u64;
                self.occupancy.set(now, in_use);
                chain.buffers
            }
        }
    }

    /// Chain keys currently holding buffers whose *first* buffer was
    /// allocated — i.e. frames under reassembly. Sorted for determinism.
    pub fn active_chains(&self) -> Vec<ChainKey> {
        let mut keys: Vec<ChainKey> = self.chains.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Is this chain key currently doomed by a discard policy?
    pub fn is_doomed(&self, conn: ChainKey) -> bool {
        self.doomed.contains_key(&conn)
    }

    /// Buffers currently free.
    pub fn free_buffers(&self) -> usize {
        self.free
    }
    /// Buffers currently chained to connections.
    pub fn in_use(&self) -> usize {
        self.cfg.total_buffers - self.free
    }
    /// Cells a given connection currently holds (0 if no chain).
    pub fn cells_of(&self, conn: ChainKey) -> usize {
        self.chains
            .get(&conn)
            .map(|c| (c.buffers - 1) * self.cfg.cells_per_buffer + c.cells_in_tail)
            .unwrap_or(0)
    }
    /// Peak buffers in use.
    pub fn peak_in_use(&self) -> u64 {
        self.occupancy.peak()
    }
    /// Time-weighted mean buffers in use over `[0, end]`.
    pub fn mean_in_use(&self, end: Time) -> f64 {
        self.occupancy.mean(end)
    }
    /// The time-weighted occupancy tracker itself, for callers that
    /// want the full gauge statistics (peak *and* mean in one place).
    pub fn occupancy(&self) -> &OccupancyTracker {
        &self.occupancy
    }
    /// Cells that found no buffer.
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }
    /// Cells stored successfully.
    pub fn cells_stored(&self) -> u64 {
        self.cells_stored
    }
    /// Cells refused by Early Packet Discard.
    pub fn epd_discards(&self) -> u64 {
        self.epd_discards
    }
    /// Cells refused by Partial Packet Discard.
    pub fn ppd_discards(&self) -> u64 {
        self.ppd_discards
    }
    /// Buffers PPD reclaimed from frames it cut short.
    pub fn ppd_reclaimed_buffers(&self) -> u64 {
        self.ppd_reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(total: usize, k: usize) -> BufferPool {
        BufferPool::new(PoolConfig {
            total_buffers: total,
            cells_per_buffer: k,
        })
    }

    #[test]
    fn single_cell_buffers_one_per_cell() {
        let mut p = pool(10, 1);
        for _ in 0..4 {
            p.append_cell(Time::ZERO, 0).unwrap();
        }
        assert_eq!(p.in_use(), 4);
        assert_eq!(p.cells_of(0), 4);
        assert_eq!(p.release_chain(Time::ZERO, 0), 4);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn container_buffers_amortize() {
        let mut p = pool(10, 32);
        for _ in 0..33 {
            p.append_cell(Time::ZERO, 0).unwrap();
        }
        assert_eq!(p.in_use(), 2, "33 cells need two 32-cell containers");
        assert_eq!(p.cells_of(0), 33);
    }

    #[test]
    fn exhaustion_reported_and_counted() {
        let mut p = pool(2, 1);
        p.append_cell(Time::ZERO, 0).unwrap();
        p.append_cell(Time::ZERO, 1).unwrap();
        assert_eq!(p.append_cell(Time::ZERO, 2), Err(PoolError::Exhausted));
        assert_eq!(p.alloc_failures(), 1);
        // Releasing frees space again.
        p.release_chain(Time::ZERO, 0);
        assert!(p.append_cell(Time::ZERO, 2).is_ok());
    }

    #[test]
    fn chains_are_per_connection() {
        let mut p = pool(10, 32);
        p.append_cell(Time::ZERO, 0).unwrap();
        p.append_cell(Time::ZERO, 1).unwrap();
        // Two connections never share a container.
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.cells_of(0), 1);
        assert_eq!(p.cells_of(1), 1);
    }

    #[test]
    fn occupancy_statistics() {
        let mut p = pool(10, 1);
        p.append_cell(Time::ZERO, 0).unwrap();
        p.append_cell(Time::ZERO, 0).unwrap();
        p.release_chain(Time::from_us(1), 0);
        assert_eq!(p.peak_in_use(), 2);
        // 2 buffers for 1 µs, 0 for 1 µs → mean 1.
        let mean = p.mean_in_use(Time::from_us(2));
        assert!((mean - 1.0).abs() < 1e-9, "{mean}");
        // The raw tracker agrees with the convenience accessors.
        assert_eq!(p.occupancy().peak(), p.peak_in_use());
    }

    #[test]
    fn sram_accounting() {
        // 256 single-cell buffers: 256 × (48 + 4 + 1) = 13,568 octets.
        let single = PoolConfig {
            total_buffers: 256,
            cells_per_buffer: 1,
        };
        assert_eq!(single.sram_octets(), 256 * 53);
        // 8 × 32-cell containers: 8 × (1536 + 4 + 4) = 12,352.
        let containers = PoolConfig {
            total_buffers: 8,
            cells_per_buffer: 32,
        };
        assert_eq!(containers.sram_octets(), 8 * 1544);
    }

    #[test]
    fn release_unknown_chain_is_zero() {
        let mut p = pool(4, 1);
        assert_eq!(p.release_chain(Time::ZERO, 9), 0);
    }

    #[test]
    fn drop_tail_admits_everything() {
        let mut p = pool(2, 1);
        assert_eq!(p.policy(), DiscardPolicy::DropTail);
        p.append_cell(Time::ZERO, 0).unwrap();
        p.append_cell(Time::ZERO, 1).unwrap();
        // Admission never refuses under drop-tail, even when full.
        assert!(p.admit(2, true).is_ok());
        assert_eq!(p.append_cell(Time::ZERO, 2), Err(PoolError::Exhausted));
        // And the doomed set stays empty: siblings still try (and fail).
        assert!(!p.is_doomed(2));
        assert_eq!(p.append_cell(Time::ZERO, 2), Err(PoolError::Exhausted));
        assert_eq!(p.alloc_failures(), 2);
    }

    #[test]
    fn epd_refuses_new_frames_over_threshold() {
        let mut p = BufferPool::with_policy(
            PoolConfig {
                total_buffers: 4,
                cells_per_buffer: 1,
            },
            DiscardPolicy::Epd { threshold: 2 },
        );
        p.admit(0, true).unwrap();
        p.append_cell(Time::ZERO, 0).unwrap();
        p.admit(1, true).unwrap();
        p.append_cell(Time::ZERO, 1).unwrap();
        // Occupancy 2 ≥ threshold: frame 2 is refused at its first cell…
        assert_eq!(p.admit(2, true), Err(PoolError::EarlyDiscard));
        assert!(p.is_doomed(2));
        // …and every later cell of it, whether mid-frame or not.
        assert_eq!(p.admit(2, false), Err(PoolError::EarlyDiscard));
        assert_eq!(p.epd_discards(), 2);
        // Frames already admitted still get buffers (the whole point).
        assert!(p.admit(0, false).is_ok());
        p.append_cell(Time::ZERO, 0).unwrap();
        // Release clears the doom so the key is reusable.
        p.release_chain(Time::ZERO, 2);
        assert!(!p.is_doomed(2));
        p.release_chain(Time::ZERO, 0);
        p.release_chain(Time::ZERO, 1);
        assert!(p.admit(2, true).is_ok());
    }

    #[test]
    fn ppd_reclaims_and_dooms_the_tail() {
        let mut p = BufferPool::with_policy(
            PoolConfig {
                total_buffers: 3,
                cells_per_buffer: 1,
            },
            DiscardPolicy::Ppd,
        );
        // Frame 0 takes two buffers, frame 1 one: pool full.
        p.append_cell(Time::ZERO, 0).unwrap();
        p.append_cell(Time::ZERO, 0).unwrap();
        p.append_cell(Time::ZERO, 1).unwrap();
        // Frame 0's next cell finds no buffer: PPD reclaims both of its
        // buffers immediately and dooms the rest of the frame.
        assert_eq!(
            p.append_cell(Time::from_us(1), 0),
            Err(PoolError::PartialDiscard)
        );
        assert_eq!(p.free_buffers(), 2, "frame 0's buffers reclaimed");
        assert_eq!(p.ppd_reclaimed_buffers(), 2);
        assert!(p.is_doomed(0));
        assert_eq!(p.admit(0, false), Err(PoolError::PartialDiscard));
        assert_eq!(
            p.append_cell(Time::from_us(1), 0),
            Err(PoolError::PartialDiscard)
        );
        assert_eq!(p.ppd_discards(), 3);
        // The reclaimed space lets other frames proceed.
        p.append_cell(Time::from_us(2), 2).unwrap();
        p.append_cell(Time::from_us(2), 2).unwrap();
    }

    #[test]
    fn active_chains_sorted_for_determinism() {
        let mut p = pool(8, 1);
        for k in [5u32, 1, 3] {
            p.append_cell(Time::ZERO, k).unwrap();
        }
        assert_eq!(p.active_chains(), vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "EPD threshold")]
    fn epd_threshold_must_fit_pool() {
        BufferPool::with_policy(
            PoolConfig {
                total_buffers: 4,
                cells_per_buffer: 1,
            },
            DiscardPolicy::Epd { threshold: 5 },
        );
    }
}
