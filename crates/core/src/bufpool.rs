//! Adaptor reassembly memory: the buffer pool receive-side cells land in
//! while their frame completes.
//!
//! The receive pipeline cannot know a frame's length until its last cell
//! arrives, and cells of many VCs interleave arbitrarily — so adaptor
//! memory is organised as a pool of fixed-size buffers chained per
//! connection, with a free list. Two organisations are supported,
//! matching the options the era's designs weighed:
//!
//! * **cells_per_buffer = 1** — a linked list of single-cell buffers:
//!   no internal fragmentation, one pointer dereference per cell.
//! * **cells_per_buffer = k** (e.g. 32) — container buffers: k cell
//!   payloads plus a validity map per buffer; fewer, larger allocations,
//!   some waste at frame tails.
//!
//! The pool tracks exactly what buffer-sizing decisions need: buffers in
//! use over time (time-weighted mean and peak) and allocation failures
//! (a failure means a cell had nowhere to land — the frame is lost to
//! *memory* pressure, not link errors; real interfaces under-provisioned
//! this and the loss was mysterious at the time).

use hni_sim::{OccupancyTracker, Time};
use std::collections::HashMap;

/// Identifies one buffer chain: one frame under reassembly (or awaiting
/// delivery DMA). Chains are per-*frame*, not per-connection — with
/// pipelined completion, a connection's next frame starts arriving while
/// the previous one still owns its buffers.
pub type ChainKey = u32;

/// Pool organisation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Total buffers in adaptor memory.
    pub total_buffers: usize,
    /// Cell payloads per buffer (1 = per-cell linked list; >1 = containers).
    pub cells_per_buffer: usize,
}

impl PoolConfig {
    /// Octets of adaptor SRAM this configuration occupies, counting the
    /// 48-octet payload slots plus per-buffer overhead (next pointer,
    /// validity bitmap rounded to whole octets).
    pub fn sram_octets(&self) -> usize {
        let per_buffer = self.cells_per_buffer * 48 + 4 + self.cells_per_buffer.div_ceil(8);
        self.total_buffers * per_buffer
    }
}

/// Why a cell could not be stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// The free list is empty.
    Exhausted,
}

struct Chain {
    buffers: usize,
    cells_in_tail: usize,
}

/// The operational buffer pool.
pub struct BufferPool {
    cfg: PoolConfig,
    free: usize,
    chains: HashMap<ChainKey, Chain>,
    occupancy: OccupancyTracker,
    alloc_failures: u64,
    cells_stored: u64,
}

impl BufferPool {
    /// A pool per `cfg`, all buffers free.
    pub fn new(cfg: PoolConfig) -> Self {
        assert!(cfg.total_buffers > 0 && cfg.cells_per_buffer > 0);
        BufferPool {
            cfg,
            free: cfg.total_buffers,
            chains: HashMap::new(),
            occupancy: OccupancyTracker::new(),
            alloc_failures: 0,
            cells_stored: 0,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// Store one cell on chain `conn` at time `now`.
    pub fn append_cell(&mut self, now: Time, conn: ChainKey) -> Result<(), PoolError> {
        let needs_buffer = match self.chains.get(&conn) {
            Some(chain) => chain.cells_in_tail == self.cfg.cells_per_buffer,
            None => true,
        };
        if needs_buffer {
            if self.free == 0 {
                self.alloc_failures += 1;
                return Err(PoolError::Exhausted);
            }
            self.free -= 1;
            let in_use = (self.cfg.total_buffers - self.free) as u64;
            self.occupancy.set(now, in_use);
            let chain = self.chains.entry(conn).or_insert(Chain {
                buffers: 0,
                cells_in_tail: 0,
            });
            chain.buffers += 1;
            chain.cells_in_tail = 0;
        }
        let chain = self.chains.get_mut(&conn).expect("chain ensured above");
        chain.cells_in_tail += 1;
        self.cells_stored += 1;
        Ok(())
    }

    /// Release a whole chain (frame delivered or abandoned). Returns the number of buffers freed.
    pub fn release_chain(&mut self, now: Time, conn: ChainKey) -> usize {
        match self.chains.remove(&conn) {
            None => 0,
            Some(chain) => {
                self.free += chain.buffers;
                let in_use = (self.cfg.total_buffers - self.free) as u64;
                self.occupancy.set(now, in_use);
                chain.buffers
            }
        }
    }

    /// Buffers currently free.
    pub fn free_buffers(&self) -> usize {
        self.free
    }
    /// Buffers currently chained to connections.
    pub fn in_use(&self) -> usize {
        self.cfg.total_buffers - self.free
    }
    /// Cells a given connection currently holds (0 if no chain).
    pub fn cells_of(&self, conn: ChainKey) -> usize {
        self.chains
            .get(&conn)
            .map(|c| (c.buffers - 1) * self.cfg.cells_per_buffer + c.cells_in_tail)
            .unwrap_or(0)
    }
    /// Peak buffers in use.
    pub fn peak_in_use(&self) -> u64 {
        self.occupancy.peak()
    }
    /// Time-weighted mean buffers in use over `[0, end]`.
    pub fn mean_in_use(&self, end: Time) -> f64 {
        self.occupancy.mean(end)
    }
    /// The time-weighted occupancy tracker itself, for callers that
    /// want the full gauge statistics (peak *and* mean in one place).
    pub fn occupancy(&self) -> &OccupancyTracker {
        &self.occupancy
    }
    /// Cells that found no buffer.
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }
    /// Cells stored successfully.
    pub fn cells_stored(&self) -> u64 {
        self.cells_stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(total: usize, k: usize) -> BufferPool {
        BufferPool::new(PoolConfig {
            total_buffers: total,
            cells_per_buffer: k,
        })
    }

    #[test]
    fn single_cell_buffers_one_per_cell() {
        let mut p = pool(10, 1);
        for _ in 0..4 {
            p.append_cell(Time::ZERO, 0).unwrap();
        }
        assert_eq!(p.in_use(), 4);
        assert_eq!(p.cells_of(0), 4);
        assert_eq!(p.release_chain(Time::ZERO, 0), 4);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn container_buffers_amortize() {
        let mut p = pool(10, 32);
        for _ in 0..33 {
            p.append_cell(Time::ZERO, 0).unwrap();
        }
        assert_eq!(p.in_use(), 2, "33 cells need two 32-cell containers");
        assert_eq!(p.cells_of(0), 33);
    }

    #[test]
    fn exhaustion_reported_and_counted() {
        let mut p = pool(2, 1);
        p.append_cell(Time::ZERO, 0).unwrap();
        p.append_cell(Time::ZERO, 1).unwrap();
        assert_eq!(p.append_cell(Time::ZERO, 2), Err(PoolError::Exhausted));
        assert_eq!(p.alloc_failures(), 1);
        // Releasing frees space again.
        p.release_chain(Time::ZERO, 0);
        assert!(p.append_cell(Time::ZERO, 2).is_ok());
    }

    #[test]
    fn chains_are_per_connection() {
        let mut p = pool(10, 32);
        p.append_cell(Time::ZERO, 0).unwrap();
        p.append_cell(Time::ZERO, 1).unwrap();
        // Two connections never share a container.
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.cells_of(0), 1);
        assert_eq!(p.cells_of(1), 1);
    }

    #[test]
    fn occupancy_statistics() {
        let mut p = pool(10, 1);
        p.append_cell(Time::ZERO, 0).unwrap();
        p.append_cell(Time::ZERO, 0).unwrap();
        p.release_chain(Time::from_us(1), 0);
        assert_eq!(p.peak_in_use(), 2);
        // 2 buffers for 1 µs, 0 for 1 µs → mean 1.
        let mean = p.mean_in_use(Time::from_us(2));
        assert!((mean - 1.0).abs() < 1e-9, "{mean}");
        // The raw tracker agrees with the convenience accessors.
        assert_eq!(p.occupancy().peak(), p.peak_in_use());
    }

    #[test]
    fn sram_accounting() {
        // 256 single-cell buffers: 256 × (48 + 4 + 1) = 13,568 octets.
        let single = PoolConfig {
            total_buffers: 256,
            cells_per_buffer: 1,
        };
        assert_eq!(single.sram_octets(), 256 * 53);
        // 8 × 32-cell containers: 8 × (1536 + 4 + 4) = 12,352.
        let containers = PoolConfig {
            total_buffers: 8,
            cells_per_buffer: 32,
        };
        assert_eq!(containers.sram_octets(), 8 * 1544);
    }

    #[test]
    fn release_unknown_chain_is_zero() {
        let mut p = pool(4, 1);
        assert_eq!(p.release_chain(Time::ZERO, 9), 0);
    }
}
