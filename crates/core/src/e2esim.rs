//! End-to-end timing composition: transmit pipeline → propagation →
//! receive pipeline, as one measurement.
//!
//! The closed-form latency breakdown (R-F3) sums component terms for an
//! *unloaded* path. This composition replays the transmit simulation's
//! actual cell departure times — including every engine, bus, FIFO and
//! pacing interaction — into the receive simulation as the arrival
//! schedule, so end-to-end latency and its *distribution under load*
//! come out of the same machinery the throughput experiments use.
//!
//! What the composition deliberately keeps: the ordering and spacing of
//! cells on the wire (that IS the link). What it abstracts: the SONET
//! frame boundaries (cells ride a continuous slot stream; framing
//! overhead is already accounted in the slot rate).

use crate::rxsim::{
    run_rx_faulted_full, run_rx_full, CellArrival, LinkFaults, RxConfig, RxPktMeta, RxWorkload,
};
use crate::txsim::{run_tx_full, TxConfig, TxPacket};
use hni_aal::AalType;
use hni_sim::{Duration, FaultPlan, Summary, Time};
use hni_telemetry::{HdrHist, NullProfiler, NullTracer, Profiler, TailReservoir, Tracer};

/// End-to-end results.
#[derive(Clone, Debug)]
pub struct E2eReport {
    /// Packets offered.
    pub offered: u64,
    /// Packets delivered into host B memory.
    pub delivered: u64,
    /// Descriptor-at-A → completion-at-B latency, µs.
    pub latency_us: Summary,
    /// End-to-end latency distribution (ps): always-on log₂ histogram
    /// with p50/p90/p99/p999 bands and exact max.
    pub latency_hist: HdrHist,
    /// Tail exemplars for the end-to-end latency: slowest packets'
    /// identities plus a deterministic identity sample. Joins back to
    /// traces/waterfalls via the packet id (always on, fixed capacity).
    pub tail: TailReservoir,
    /// End-to-end goodput, bits/s.
    pub goodput_bps: f64,
    /// The transmit-side report.
    pub tx: crate::txsim::TxReport,
    /// The receive-side report.
    pub rx: crate::rxsim::RxReport,
}

/// Run packets end to end: transmit pipeline at A, `propagation` of
/// fibre, receive pipeline at B.
pub fn run_e2e(
    tx_cfg: &TxConfig,
    rx_cfg: &RxConfig,
    packets: &[TxPacket],
    propagation: Duration,
) -> E2eReport {
    run_e2e_full(
        tx_cfg,
        rx_cfg,
        packets,
        propagation,
        &mut NullTracer,
        &mut NullProfiler,
    )
}

/// [`run_e2e`] with a tracer observing both pipeline halves on one
/// shared timeline: receive-side events carry wire-arrival clocks, so a
/// single trace stream spans descriptor fetch at A through completion
/// at B (the R-F3 waterfall's raw material).
pub fn run_e2e_instrumented(
    tx_cfg: &TxConfig,
    rx_cfg: &RxConfig,
    packets: &[TxPacket],
    propagation: Duration,
    tracer: &mut dyn Tracer,
) -> E2eReport {
    run_e2e_full(
        tx_cfg,
        rx_cfg,
        packets,
        propagation,
        tracer,
        &mut NullProfiler,
    )
}

/// [`run_e2e`] with a profiler charging both pipeline halves onto one
/// shared clock. The transmit adaptor's resources appear as `tx.*`, the
/// receive adaptor's as `rx.*`, so a single profile ranks all nine
/// path resources against each other — the bottleneck table R-O1 uses.
pub fn run_e2e_profiled(
    tx_cfg: &TxConfig,
    rx_cfg: &RxConfig,
    packets: &[TxPacket],
    propagation: Duration,
    profiler: &mut dyn Profiler,
) -> E2eReport {
    run_e2e_full(
        tx_cfg,
        rx_cfg,
        packets,
        propagation,
        &mut NullTracer,
        profiler,
    )
}

/// [`run_e2e`] with a seeded [`FaultPlan`] standing between the two
/// adaptors: the transmit pipeline's actual departures pass through the
/// fault process (loss, corruption, duplication, reordering) before
/// becoming the receive pipeline's arrivals. Returns what the link did
/// alongside the report so callers can reconcile the cell ledger across
/// the whole path. `FaultPlan::NONE` reproduces [`run_e2e`] exactly —
/// byte-identical reports, zero RNG draws.
pub fn run_e2e_faulted(
    tx_cfg: &TxConfig,
    rx_cfg: &RxConfig,
    packets: &[TxPacket],
    propagation: Duration,
    plan: &FaultPlan,
    seed: u64,
) -> (E2eReport, LinkFaults) {
    run_e2e_faulted_full(
        tx_cfg,
        rx_cfg,
        packets,
        propagation,
        plan,
        seed,
        &mut NullTracer,
        &mut NullProfiler,
    )
}

/// [`run_e2e_faulted`] with a tracer attached, so the metrics registry
/// built from the trace can be reconciled against the cell ledger.
pub fn run_e2e_faulted_instrumented(
    tx_cfg: &TxConfig,
    rx_cfg: &RxConfig,
    packets: &[TxPacket],
    propagation: Duration,
    plan: &FaultPlan,
    seed: u64,
    tracer: &mut dyn Tracer,
) -> (E2eReport, LinkFaults) {
    run_e2e_faulted_full(
        tx_cfg,
        rx_cfg,
        packets,
        propagation,
        plan,
        seed,
        tracer,
        &mut NullProfiler,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_e2e_faulted_full(
    tx_cfg: &TxConfig,
    rx_cfg: &RxConfig,
    packets: &[TxPacket],
    propagation: Duration,
    plan: &FaultPlan,
    seed: u64,
    tracer: &mut dyn Tracer,
    profiler: &mut dyn Profiler,
) -> (E2eReport, LinkFaults) {
    assert_eq!(
        tx_cfg.aal, rx_cfg.aal,
        "both ends must speak the same adaptation layer"
    );
    let (tx_report, departures) = run_tx_full(tx_cfg, packets, tracer, profiler);
    let wl = rx_workload_from_departures(tx_cfg.aal, packets, &departures, propagation);
    let (rx_report, completions, lf) =
        run_rx_faulted_full(rx_cfg, &wl, plan, seed, tracer, profiler);
    (
        assemble_report(packets, tx_report, rx_report, &completions),
        lf,
    )
}

/// The full-instrumentation entry: tracer and profiler together.
pub(crate) fn run_e2e_full(
    tx_cfg: &TxConfig,
    rx_cfg: &RxConfig,
    packets: &[TxPacket],
    propagation: Duration,
    tracer: &mut dyn Tracer,
    profiler: &mut dyn Profiler,
) -> E2eReport {
    assert_eq!(
        tx_cfg.aal, rx_cfg.aal,
        "both ends must speak the same adaptation layer"
    );
    let (tx_report, departures) = run_tx_full(tx_cfg, packets, tracer, profiler);
    let wl = rx_workload_from_departures(tx_cfg.aal, packets, &departures, propagation);
    let (rx_report, completions) = run_rx_full(rx_cfg, &wl, tracer, profiler);
    assemble_report(packets, tx_report, rx_report, &completions)
}

/// Turn the transmit side's cell departures into the receive side's
/// arrival schedule: connection indices assigned per VC, cell counts
/// from the AAL arithmetic, arrival clocks shifted by `propagation`.
fn rx_workload_from_departures(
    aal: AalType,
    packets: &[TxPacket],
    departures: &[crate::txsim::CellDeparture],
    propagation: Duration,
) -> RxWorkload {
    // VC → connection index through the sharded connection table (same
    // assignment order as the old HashMap entry API: first-seen wins).
    let mut conn_of: hni_atm::VcTable<u16> = hni_atm::VcTable::new();
    let pkts: Vec<RxPktMeta> = packets
        .iter()
        .map(|p| {
            let next = conn_of.len() as u16;
            let conn = *conn_of
                .get_or_insert_with(p.vc.cam_key() as u64, || next)
                .expect("unbounded table never refuses")
                .1;
            RxPktMeta {
                conn,
                len: p.len,
                cells: aal_cells(aal, p.len),
            }
        })
        .collect();
    let arrivals: Vec<CellArrival> = departures
        .iter()
        .map(|d| CellArrival {
            at: d.at + propagation,
            pkt: d.pkt,
            is_last: d.is_last,
            corrupted: false,
        })
        .collect();
    RxWorkload { arrivals, pkts }
}

/// Fold the two half-pipeline reports and the per-packet completion
/// clocks into the end-to-end measurement.
fn assemble_report(
    packets: &[TxPacket],
    tx_report: crate::txsim::TxReport,
    rx_report: crate::rxsim::RxReport,
    completions: &[Option<Time>],
) -> E2eReport {
    let mut latency = Summary::new();
    let mut latency_hist = HdrHist::new();
    let mut tail = TailReservoir::paper();
    let mut delivered_octets = 0u64;
    for (i, done) in completions.iter().enumerate() {
        if let Some(t) = done {
            let lat = t.saturating_since(packets[i].arrival);
            latency.record_us(lat);
            latency_hist.record_duration(lat);
            tail.record(packets[i].vc.cam_key(), i as u32, lat, *t);
            delivered_octets += packets[i].len as u64;
        }
    }
    let end = rx_report.finished_at;
    let elapsed = end.saturating_since(Time::ZERO).as_s_f64();
    E2eReport {
        offered: packets.len() as u64,
        delivered: rx_report.delivered_packets,
        latency_us: latency,
        latency_hist,
        tail,
        goodput_bps: if elapsed > 0.0 {
            delivered_octets as f64 * 8.0 / elapsed
        } else {
            0.0
        },
        tx: tx_report,
        rx: rx_report,
    }
}

fn aal_cells(aal: AalType, len: usize) -> usize {
    aal.cells_for_sdu(len).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txsim::greedy_workload;
    use hni_atm::VcId;
    use hni_sonet::LineRate;

    fn paper_pair() -> (TxConfig, RxConfig) {
        (
            TxConfig::paper(LineRate::Oc12),
            RxConfig::paper(LineRate::Oc12),
        )
    }

    #[test]
    fn everything_arrives_unloaded() {
        let (txc, rxc) = paper_pair();
        let r = run_e2e(
            &txc,
            &rxc,
            &greedy_workload(10, 9180, VcId::new(0, 32)),
            Duration::from_us(5),
        );
        assert_eq!(r.delivered, 10);
        assert_eq!(r.rx.failed_packets, 0);
        assert!(r.latency_us.count() == 10);
    }

    #[test]
    fn single_packet_latency_close_to_analytic_total() {
        let (txc, rxc) = paper_pair();
        let prop = Duration::from_us(5);
        let r = run_e2e(
            &txc,
            &rxc,
            &greedy_workload(1, 9180, VcId::new(0, 32)),
            prop,
        );
        let analytic = hni_analysis_total_us(9180, prop);
        let measured = r.latency_us.mean();
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.15,
            "e2e sim {measured} µs vs analytic {analytic} µs"
        );
    }

    /// Recompute the analytic total here rather than depending on
    /// hni-analysis (which depends on this crate).
    fn hni_analysis_total_us(len: usize, prop: Duration) -> f64 {
        use crate::bus::BusConfig;
        use crate::engine::{HwPartition, ProtocolEngine, TaskKind};
        let e = ProtocolEngine::new(25.0, &HwPartition::paper_split());
        let bus = BusConfig::default();
        let cells = AalType::Aal5.cells_for_sdu(len);
        let mut total = e.task_time(TaskKind::TxPacketSetup)
            + e.task_time(TaskKind::TxDmaBurst)
            + bus.burst_time(bus.burst_words(len, 0))
            + e.task_time(TaskKind::TxCellSegment)
            + LineRate::Oc12.cell_slot_time() * cells as u64
            + prop
            + e.task_time(TaskKind::RxCellEnqueue)
            + e.task_time(TaskKind::RxPacketValidate)
            + e.task_time(TaskKind::RxPacketComplete);
        for b in 0..bus.bursts_for(len) {
            total += e.task_time(TaskKind::RxDmaBurst) + bus.burst_time(bus.burst_words(len, b));
        }
        total.as_us_f64()
    }

    #[test]
    fn propagation_adds_linearly() {
        let (txc, rxc) = paper_pair();
        let near = run_e2e(
            &txc,
            &rxc,
            &greedy_workload(1, 4096, VcId::new(0, 32)),
            Duration::from_us(5),
        );
        let far = run_e2e(
            &txc,
            &rxc,
            &greedy_workload(1, 4096, VcId::new(0, 32)),
            Duration::from_ms(5),
        );
        let delta = far.latency_us.mean() - near.latency_us.mean();
        assert!((delta - 4995.0).abs() < 1.0, "delta {delta}");
    }

    #[test]
    fn latency_under_load_exceeds_unloaded() {
        let (txc, rxc) = paper_pair();
        let unloaded = run_e2e(
            &txc,
            &rxc,
            &greedy_workload(1, 9180, VcId::new(0, 32)),
            Duration::ZERO,
        );
        let loaded = run_e2e(
            &txc,
            &rxc,
            &greedy_workload(40, 9180, VcId::new(0, 32)),
            Duration::ZERO,
        );
        // Queueing: the mean latency of a deep backlog is far above one
        // packet's pipeline latency (packets wait for the link).
        assert!(
            loaded.latency_us.mean() > 3.0 * unloaded.latency_us.mean(),
            "loaded {} vs unloaded {}",
            loaded.latency_us.mean(),
            unloaded.latency_us.mean()
        );
        // And the max is near the whole transfer duration.
        assert!(loaded.latency_us.max() > 10.0 * unloaded.latency_us.mean());
    }

    #[test]
    fn faultless_plan_reproduces_clean_e2e_exactly() {
        let (txc, rxc) = paper_pair();
        let pkts = greedy_workload(12, 9180, VcId::new(0, 32));
        let clean = run_e2e(&txc, &rxc, &pkts, Duration::from_us(5));
        let (faulted, lf) =
            run_e2e_faulted(&txc, &rxc, &pkts, Duration::from_us(5), &FaultPlan::NONE, 1);
        assert_eq!(lf.rng_draws, 0, "faultless path must not touch the RNG");
        assert_eq!(format!("{clean:?}"), format!("{faulted:?}"));
    }

    #[test]
    fn faulted_e2e_loses_frames_and_reconciles() {
        let (txc, rxc) = paper_pair();
        let pkts = greedy_workload(40, 9180, VcId::new(0, 32));
        let (r, lf) = run_e2e_faulted(
            &txc,
            &rxc,
            &pkts,
            Duration::from_us(5),
            &FaultPlan::loss(0.01),
            7,
        );
        assert!(lf.dropped > 0, "1% loss over 40 jumbo frames should hit");
        assert!(r.delivered < r.offered);
        assert_eq!(r.delivered + r.rx.failed_packets, r.offered);
        assert!(
            r.rx.ledger.reconciles(),
            "cell ledger must balance: {:?}",
            r.rx.ledger
        );
    }

    #[test]
    fn e2e_conserves_packets_across_vcs() {
        let (txc, rxc) = paper_pair();
        let mut pkts = Vec::new();
        for v in 0..6u16 {
            for i in 0..5usize {
                pkts.push(TxPacket {
                    vc: VcId::new(0, 40 + v),
                    len: 1000 + i * 500,
                    arrival: Time::from_us((v as u64) * 7 + i as u64),
                    pcr: None,
                });
            }
        }
        let r = run_e2e(&txc, &rxc, &pkts, Duration::from_us(25));
        assert_eq!(r.delivered, 30);
        assert_eq!(r.offered, 30);
    }
}
