//! The functional (byte-exact) host interface.
//!
//! Where [`crate::txsim`]/[`crate::rxsim`] answer "how fast", this
//! module answers "exactly which bytes": real AAL segmentation and
//! reassembly, real 53-octet cells, real SONET framing with scrambling
//! and parity — the full data path a packet crosses between host memory
//! and the optical line, with every error-detection layer live.
//!
//! Two `Nic`s connected back-to-back (optionally through a lossy
//! [`hni_sim::Link`]) form the canonical end-to-end setup used by the
//! integration tests and the runnable examples:
//!
//! ```
//! use hni_core::{Nic, NicConfig, NicEvent};
//! use hni_atm::VcId;
//! use hni_sim::Time;
//! use hni_sonet::LineRate;
//!
//! let cfg = NicConfig::paper(LineRate::Oc3);
//! let mut a = Nic::new(cfg.clone());
//! let mut b = Nic::new(cfg);
//! let vc = VcId::new(0, 42);
//! a.open_vc(vc).unwrap();
//! b.open_vc(vc).unwrap();
//!
//! // Let b's frame aligner and cell delineator lock onto a's signal
//! // (a real receiver is in sync long before traffic starts).
//! for _ in 0..12 {
//!     let idle_frame = a.frame_tick();
//!     b.receive_line_octets(&idle_frame, Time::ZERO);
//! }
//!
//! a.send(vc, b"hello down the fibre".to_vec(), Time::ZERO).unwrap();
//! // Move SONET frames from a to b until the packet surfaces.
//! let mut got = None;
//! for _ in 0..20 {
//!     let frame = a.frame_tick();
//!     b.receive_line_octets(&frame, Time::ZERO);
//!     if let Some(NicEvent::PacketReceived { data, .. }) = b.poll() {
//!         got = Some(data);
//!         break;
//!     }
//! }
//! assert_eq!(got.as_deref(), Some(&b"hello down the fibre"[..]));
//! ```

use crate::cam::{Cam, CamResult};
use crate::config::NicConfig;
use hni_aal::aal34::{Aal34Reassembler, Aal34Segmenter};
use hni_aal::aal5::{self, Aal5Reassembler};
use hni_aal::{AalType, ReassemblyFailure};
use hni_atm::{Cell, CellRef, CellSlab, VcId, CELL_SIZE};
use hni_sim::link::apply_bit_errors;
use hni_sim::{FaultInjector, Time, UnitFate};
use hni_sonet::{TcReceiver, TcTransmitter};
use hni_telemetry::{NullTracer, Stage, TraceEvent, Tracer, VcMetrics};
use std::collections::VecDeque;

/// What the interface reports up to the host driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NicEvent {
    /// A complete, validated SDU arrived.
    PacketReceived {
        /// Connection it arrived on.
        vc: VcId,
        /// AAL3/4 MID (0 for AAL5).
        mid: u16,
        /// The SDU.
        data: Vec<u8>,
        /// AAL5 user-to-user octet (0 for AAL3/4).
        uu: u8,
    },
    /// A frame under reassembly was abandoned.
    ReceiveError(ReassemblyFailure),
    /// A cell arrived for a VC with no CAM entry and was dropped.
    UnknownVc(VcId),
    /// A far-end reply to an OAM F5 loopback we sent arrived on `vc`
    /// with the correlation tag we chose.
    OamLoopbackReply {
        /// The verified connection.
        vc: VcId,
        /// The correlation tag from the request.
        tag: u32,
    },
}

/// Errors the host-facing API can return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NicError {
    /// The VC has no CAM entry (open it first).
    VcNotOpen,
    /// The CAM is full.
    CamFull,
    /// SDU exceeds the configured maximum.
    SduTooLarge,
}

impl core::fmt::Display for NicError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NicError::VcNotOpen => write!(f, "VC not open"),
            NicError::CamFull => write!(f, "connection table full"),
            NicError::SduTooLarge => write!(f, "SDU exceeds maximum"),
        }
    }
}

impl std::error::Error for NicError {}

/// The functional host-network interface.
pub struct Nic {
    cfg: NicConfig,
    cam: Cam,
    next_conn_index: u16,
    // Transmit side.
    tc_tx: TcTransmitter,
    seg34: Aal34Segmenter,
    // Receive side.
    tc_rx: TcReceiver,
    reasm5: Aal5Reassembler,
    reasm34: Aal34Reassembler,
    events: VecDeque<NicEvent>,
    // Last time the receive path ran the reassembly-expiry scan.
    last_expiry_scan: Time,
    // Transmit-side cell arena + handle scratch: segmentation goes
    // through the slab, so steady-state sends allocate nothing per cell.
    tx_slab: CellSlab,
    tx_refs: Vec<CellRef>,
    // Receive-side scratch for cells emerging from the TC receiver,
    // reused across line deliveries.
    rx_cells: Vec<Cell>,
    // Counters.
    sdus_sent: u64,
    cells_sent: u64,
    sdus_received: u64,
    unknown_vc_cells: u64,
    // Always-on per-VC receive accounting at bounded cardinality
    // (sharded exact totals + space-saving top-K heavy hitters).
    rx_vc_metrics: VcMetrics,
}

impl Nic {
    /// Build an interface per `cfg`.
    pub fn new(cfg: NicConfig) -> Self {
        Nic {
            cam: Cam::new(cfg.cam_capacity),
            next_conn_index: 0,
            tc_tx: TcTransmitter::new(cfg.rate),
            seg34: Aal34Segmenter::new(),
            tc_rx: TcReceiver::new(cfg.rate),
            reasm5: Aal5Reassembler::new(cfg.max_sdu, cfg.reassembly_timeout),
            reasm34: Aal34Reassembler::new(cfg.max_sdu, cfg.reassembly_timeout),
            events: VecDeque::new(),
            last_expiry_scan: Time::ZERO,
            tx_slab: CellSlab::new(),
            tx_refs: Vec::new(),
            rx_cells: Vec::new(),
            sdus_sent: 0,
            cells_sent: 0,
            sdus_received: 0,
            unknown_vc_cells: 0,
            rx_vc_metrics: VcMetrics::new(),
            cfg,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Open a connection: installs the CAM entry both directions use.
    pub fn open_vc(&mut self, vc: VcId) -> Result<(), NicError> {
        let idx = self.next_conn_index;
        if self.cam.insert(vc, idx) {
            self.next_conn_index = self.next_conn_index.wrapping_add(1);
            Ok(())
        } else {
            Err(NicError::CamFull)
        }
    }

    /// Close a connection.
    pub fn close_vc(&mut self, vc: VcId) -> bool {
        self.cam.remove(vc)
    }

    /// Segment and queue an SDU for transmission on `vc`.
    ///
    /// AAL3/4 connections use MID 0 by default; see
    /// [`Nic::send_with_mid`].
    pub fn send(&mut self, vc: VcId, sdu: Vec<u8>, now: Time) -> Result<(), NicError> {
        self.send_with_mid(vc, 0, sdu, now)
    }

    /// Segment and queue an SDU with an explicit AAL3/4 MID.
    pub fn send_with_mid(
        &mut self,
        vc: VcId,
        mid: u16,
        sdu: Vec<u8>,
        _now: Time,
    ) -> Result<(), NicError> {
        if matches!(self.cam.lookup(vc), CamResult::Miss) {
            return Err(NicError::VcNotOpen);
        }
        if sdu.len() > self.cfg.max_sdu {
            return Err(NicError::SduTooLarge);
        }
        // Segment through the cell slab: byte-identical to the Vec path
        // (same segmentation core) but allocation-free once warmed up.
        let mut refs = std::mem::take(&mut self.tx_refs);
        refs.clear();
        match self.cfg.aal {
            AalType::Aal5 => aal5::segment_into(vc, &sdu, 0, &mut self.tx_slab, &mut refs),
            AalType::Aal34 => self
                .seg34
                .segment_into(vc, mid, &sdu, &mut self.tx_slab, &mut refs),
        }
        for &r in &refs {
            self.tc_tx.push_cell(self.tx_slab.get(r));
            self.cells_sent += 1;
        }
        self.tx_slab.free_all(&refs);
        self.tx_refs = refs;
        self.sdus_sent += 1;
        Ok(())
    }

    /// Produce the next 125 µs SONET frame for the line (call every
    /// frame time; idle cells fill the slack).
    pub fn frame_tick(&mut self) -> Vec<u8> {
        self.tc_tx.pull_frame()
    }

    /// Send an OAM F5 end-to-end loopback request on `vc`. The far end
    /// echoes it; the reply surfaces as [`NicEvent::OamLoopbackReply`]
    /// with the same `tag` — the era's standard connectivity check on a
    /// PVC (no signalling channel to ask).
    pub fn send_oam_loopback(&mut self, vc: VcId, tag: u32) -> Result<(), NicError> {
        if matches!(self.cam.lookup(vc), CamResult::Miss) {
            return Err(NicError::VcNotOpen);
        }
        let cell = hni_atm::OamCell::loopback_request(tag).emit(vc);
        self.tc_tx.push_cell(&cell);
        self.cells_sent += 1;
        Ok(())
    }

    /// Handle a received OAM F5 cell: answer loopback requests, surface
    /// loopback replies. Cells failing the OAM CRC-10 or carrying other
    /// functions (AIS/RDI/CC) are counted at the codec and dropped —
    /// alarm *policy* belongs to the transmission plant, not the NIC.
    fn handle_oam(&mut self, vc: VcId, cell: &Cell) {
        let Ok(oam) = hni_atm::OamCell::parse(cell) else {
            return; // damaged or unknown OAM cell
        };
        if oam.function != hni_atm::OamFunction::Loopback {
            return;
        }
        if oam.loopback_indication {
            let reply = oam.loopback_reply().emit(vc);
            self.tc_tx.push_cell(&reply);
            self.cells_sent += 1;
        } else {
            self.events
                .push_back(NicEvent::OamLoopbackReply { vc, tag: oam.tag });
        }
    }

    /// Inject a pre-built cell directly into the transmit convergence
    /// queue, bypassing the AAL. Exists for fault-injection experiments
    /// (drop/corrupt individual cells of a frame and observe the
    /// receiver); normal traffic goes through [`Nic::send`].
    pub fn inject_cell(&mut self, cell: &Cell) {
        self.tc_tx.push_cell(cell);
        self.cells_sent += 1;
    }

    /// [`Nic::inject_cell`] through a [`FaultInjector`]: the injector
    /// decides the cell's fate (loss, payload damage, duplication) and
    /// the survivors — damaged in place when the plan says so — enter
    /// the transmit convergence queue. Returns the fate so callers can
    /// reconcile what they offered against what went on the wire.
    /// Reordering displacement is ignored at this granularity (the TC
    /// queue is strictly FIFO); use the timing simulations to study it.
    pub fn inject_cell_faulted(&mut self, cell: &Cell, inj: &mut FaultInjector) -> UnitFate {
        let fate = inj.fate((CELL_SIZE * 8) as u64);
        if fate.lost {
            return fate;
        }
        if fate.flipped_bits.is_empty() {
            self.inject_cell(cell);
        } else {
            let mut bytes = *cell.as_bytes();
            apply_bit_errors(&mut bytes, &fate.flipped_bits);
            self.inject_cell(&Cell::from_bytes(bytes));
        }
        if fate.duplicated {
            self.inject_cell(cell);
        }
        fate
    }

    /// Cells waiting for payload slots on the transmit side.
    pub fn tx_backlog_cells(&self) -> usize {
        self.tc_tx.backlog_cells()
    }

    /// Feed octets received from the line; events become available via
    /// [`Nic::poll`].
    pub fn receive_line_octets(&mut self, octets: &[u8], now: Time) {
        self.receive_line_octets_instrumented(octets, now, &mut NullTracer)
    }

    /// [`Nic::receive_line_octets`] with a tracer observing the per-cell
    /// receive boundaries the functional path crosses discretely: HEC
    /// acceptance (delineation hands the cell up) and the CAM / VCI
    /// lookup (arg = 1 hit, 0 miss).
    pub fn receive_line_octets_instrumented(
        &mut self,
        octets: &[u8],
        now: Time,
        tracer: &mut dyn Tracer,
    ) {
        // The cell scratch is a reused field: no per-delivery allocation
        // once the working set is warm. Taken out of `self` so the
        // per-cell handler can borrow the rest of the interface.
        let mut cells = std::mem::take(&mut self.rx_cells);
        cells.clear();
        self.tc_rx.push_bytes(octets, &mut cells);
        for cell in &cells {
            if tracer.enabled() {
                // A cell only emerges from the TC receiver once its HEC
                // passed inside cell delineation.
                tracer.record(TraceEvent::instant(now, Stage::RxHec));
            }
            self.receive_cell(cell, now, tracer);
        }
        self.rx_cells = cells;
        self.maybe_expire(now);
    }

    /// Accept a burst of slab-backed cells directly at the ATM layer
    /// (past SONET framing and delineation) — the batched receive entry
    /// point: one dispatch per burst instead of one per cell, the
    /// software analogue of the paper's burst-oriented hardware moves.
    /// Cell handling (CAM, OAM, reassembly, events, expiry cadence) is
    /// the per-cell path, so results are byte-identical to feeding the
    /// cells one at a time.
    pub fn rx_burst(&mut self, refs: &[CellRef], slab: &CellSlab, now: Time) {
        self.rx_burst_instrumented(refs, slab, now, &mut NullTracer)
    }

    /// [`Nic::rx_burst`] with a tracer observing the same per-cell
    /// boundaries as the line-octet path, so profiles charge batched
    /// activity identically.
    pub fn rx_burst_instrumented(
        &mut self,
        refs: &[CellRef],
        slab: &CellSlab,
        now: Time,
        tracer: &mut dyn Tracer,
    ) {
        for &r in refs {
            self.receive_cell(slab.get(r), now, tracer);
        }
        self.maybe_expire(now);
    }

    /// The per-cell receive body shared by every entry point: CAM
    /// lookup, OAM handling, reassembly, event generation.
    fn receive_cell(&mut self, cell: &Cell, now: Time, tracer: &mut dyn Tracer) {
        let Ok(header) = cell.header() else { return };
        let vc = header.vc();
        // Always-on per-VC accounting before any disposition: unknown-VC
        // and OAM cells count toward their VC's volume too.
        self.rx_vc_metrics
            .record_cell(vc.cam_key(), CELL_SIZE as u64);
        let miss = matches!(self.cam.lookup(vc), CamResult::Miss);
        if tracer.enabled() {
            tracer.record(
                TraceEvent::instant(now, Stage::RxCamLookup)
                    .vc(vc.cam_key())
                    .arg(u64::from(!miss)),
            );
        }
        if miss {
            self.unknown_vc_cells += 1;
            self.events.push_back(NicEvent::UnknownVc(vc));
            return;
        }
        if matches!(
            header.pti,
            hni_atm::Pti::OamEndToEnd | hni_atm::Pti::OamSegment
        ) {
            self.handle_oam(vc, cell);
            return;
        }
        let outcome = match self.cfg.aal {
            AalType::Aal5 => self.reasm5.push(cell, now),
            AalType::Aal34 => self.reasm34.push(cell, now),
        };
        match outcome {
            None => {}
            Some(Ok(sdu)) => {
                self.sdus_received += 1;
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, Stage::RxReasmComplete)
                            .vc(sdu.vc.cam_key())
                            .arg(sdu.data.len() as u64),
                    );
                }
                self.events.push_back(NicEvent::PacketReceived {
                    vc: sdu.vc,
                    mid: sdu.mid,
                    data: sdu.data,
                    uu: sdu.user_to_user,
                });
            }
            Some(Err(failure)) => {
                self.events.push_back(NicEvent::ReceiveError(failure));
            }
        }
    }

    /// Enforce the reassembly timeout; call periodically with the clock.
    /// Purges **both** reassemblers — a partial AAL3/4 frame must not
    /// sit forever just because the interface is configured for AAL5
    /// (and vice versa); idle per-VC state is a leak either way.
    pub fn expire(&mut self, now: Time) {
        for f in self.reasm5.expire(now) {
            self.events.push_back(NicEvent::ReceiveError(f));
        }
        for f in self.reasm34.expire(now) {
            self.events.push_back(NicEvent::ReceiveError(f));
        }
    }

    /// Run [`Nic::expire`] if at least half the reassembly timeout has
    /// passed since the last scan. The receive path calls this on every
    /// line delivery, so stalled chains surface as timeout errors
    /// without the host having to drive a separate clock; the
    /// half-timeout cadence keeps the scan off the per-cell fast path.
    fn maybe_expire(&mut self, now: Time) {
        let timeout = self.cfg.reassembly_timeout;
        if timeout > hni_sim::Duration::ZERO
            && now.saturating_since(self.last_expiry_scan).as_ps() >= timeout.as_ps() / 2
        {
            self.last_expiry_scan = now;
            self.expire(now);
        }
    }

    /// Next pending event, if any.
    pub fn poll(&mut self) -> Option<NicEvent> {
        self.events.pop_front()
    }

    /// Hand a delivered SDU buffer (from [`NicEvent::PacketReceived`])
    /// back to the receive path for reuse. Optional; closing the loop
    /// makes the steady-state receive path allocation-free per frame.
    pub fn recycle_sdu_buffer(&mut self, buf: Vec<u8>) {
        self.reasm5.recycle(buf);
    }

    /// SDUs accepted for transmission.
    pub fn sdus_sent(&self) -> u64 {
        self.sdus_sent
    }
    /// Cells queued to the line.
    pub fn cells_sent(&self) -> u64 {
        self.cells_sent
    }
    /// SDUs delivered to the host.
    pub fn sdus_received(&self) -> u64 {
        self.sdus_received
    }
    /// Cells dropped for lacking a CAM entry.
    pub fn unknown_vc_cells(&self) -> u64 {
        self.unknown_vc_cells
    }
    /// Always-on per-VC receive metrics: exact sharded cell/byte
    /// totals plus the space-saving top-K heavy hitters.
    pub fn rx_vc_metrics(&self) -> &VcMetrics {
        &self.rx_vc_metrics
    }
    /// Receive-side TC statistics.
    pub fn tc_receiver(&self) -> &TcReceiver {
        &self.tc_rx
    }
    /// Transmit-side TC statistics.
    pub fn tc_transmitter(&self) -> &TcTransmitter {
        &self.tc_tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hni_sonet::LineRate;

    fn pair(aal: AalType) -> (Nic, Nic, VcId) {
        let mut cfg = NicConfig::paper(LineRate::Oc3);
        cfg.aal = aal;
        let a = Nic::new(cfg.clone());
        let b = Nic::new(cfg);
        (a, b, VcId::new(0, 77))
    }

    fn pump(a: &mut Nic, b: &mut Nic, frames: usize) -> Vec<NicEvent> {
        let mut evs = Vec::new();
        for _ in 0..frames {
            let f = a.frame_tick();
            b.receive_line_octets(&f, Time::ZERO);
            while let Some(e) = b.poll() {
                evs.push(e);
            }
        }
        evs
    }

    #[test]
    fn end_to_end_aal5() {
        let (mut a, mut b, vc) = pair(AalType::Aal5);
        a.open_vc(vc).unwrap();
        b.open_vc(vc).unwrap();
        // Warm up delineation with idle frames.
        pump(&mut a, &mut b, 12);
        let payload: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        a.send(vc, payload.clone(), Time::ZERO).unwrap();
        let evs = pump(&mut a, &mut b, 10);
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            NicEvent::PacketReceived { vc: v, data, .. } => {
                assert_eq!(*v, vc);
                assert_eq!(*data, payload);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn end_to_end_aal34_with_mids() {
        let (mut a, mut b, vc) = pair(AalType::Aal34);
        a.open_vc(vc).unwrap();
        b.open_vc(vc).unwrap();
        pump(&mut a, &mut b, 12);
        a.send_with_mid(vc, 3, vec![0xAA; 500], Time::ZERO).unwrap();
        a.send_with_mid(vc, 9, vec![0xBB; 500], Time::ZERO).unwrap();
        let evs = pump(&mut a, &mut b, 10);
        assert_eq!(evs.len(), 2);
        let mids: Vec<u16> = evs
            .iter()
            .map(|e| match e {
                NicEvent::PacketReceived { mid, .. } => *mid,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(mids.contains(&3) && mids.contains(&9));
    }

    #[test]
    fn send_requires_open_vc() {
        let (mut a, _, vc) = pair(AalType::Aal5);
        assert_eq!(a.send(vc, vec![1], Time::ZERO), Err(NicError::VcNotOpen));
        a.open_vc(vc).unwrap();
        assert!(a.send(vc, vec![1], Time::ZERO).is_ok());
    }

    #[test]
    fn oversize_sdu_rejected() {
        let (mut a, _, vc) = pair(AalType::Aal5);
        a.open_vc(vc).unwrap();
        assert_eq!(
            a.send(vc, vec![0; 70_000], Time::ZERO),
            Err(NicError::SduTooLarge)
        );
    }

    #[test]
    fn unknown_vc_cells_dropped_and_reported() {
        let (mut a, mut b, vc) = pair(AalType::Aal5);
        a.open_vc(vc).unwrap();
        // b never opens the VC.
        pump(&mut a, &mut b, 12);
        a.send(vc, vec![1, 2, 3], Time::ZERO).unwrap();
        let evs = pump(&mut a, &mut b, 5);
        assert!(evs
            .iter()
            .all(|e| matches!(e, NicEvent::UnknownVc(v) if *v == vc)));
        assert!(b.unknown_vc_cells() > 0);
        assert_eq!(b.sdus_received(), 0);
    }

    #[test]
    fn many_packets_many_vcs() {
        let (mut a, mut b, _) = pair(AalType::Aal5);
        let vcs: Vec<VcId> = (0..8).map(|i| VcId::new(0, 100 + i)).collect();
        for &vc in &vcs {
            a.open_vc(vc).unwrap();
            b.open_vc(vc).unwrap();
        }
        pump(&mut a, &mut b, 12);
        for (i, &vc) in vcs.iter().enumerate() {
            a.send(vc, vec![i as u8; 300 + i * 17], Time::ZERO).unwrap();
        }
        let evs = pump(&mut a, &mut b, 10);
        assert_eq!(evs.len(), 8);
        for e in &evs {
            match e {
                NicEvent::PacketReceived { vc, data, .. } => {
                    let i = (vc.vci - 100) as usize;
                    assert_eq!(data.len(), 300 + i * 17);
                    assert!(data.iter().all(|&x| x == i as u8));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn expire_surfaces_timeouts() {
        let (mut a, mut b, vc) = pair(AalType::Aal5);
        a.open_vc(vc).unwrap();
        b.open_vc(vc).unwrap();
        pump(&mut a, &mut b, 12);
        // Send a large SDU but only deliver its first frame's worth of
        // cells, then let the timeout fire.
        a.send(vc, vec![7; 40_000], Time::ZERO).unwrap();
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
        b.expire(Time::from_ms(100));
        let mut saw_timeout = false;
        while let Some(e) = b.poll() {
            if let NicEvent::ReceiveError(f) = e {
                assert_eq!(f.error, hni_aal::ReassemblyError::Timeout);
                saw_timeout = true;
            }
        }
        assert!(saw_timeout);
    }

    #[test]
    fn aal34_idle_chain_expires_without_explicit_clock() {
        let (mut a, mut b, vc) = pair(AalType::Aal34);
        a.open_vc(vc).unwrap();
        b.open_vc(vc).unwrap();
        pump(&mut a, &mut b, 12);
        // A large MID-tagged SDU: deliver only its first frame's worth
        // of cells, then lose the rest on the "line" — a stalled chain
        // that used to sit in the reassembler forever unless the host
        // remembered to call expire() itself.
        a.send_with_mid(vc, 4, vec![9; 40_000], Time::ZERO).unwrap();
        let f = a.frame_tick();
        b.receive_line_octets(&f, Time::ZERO);
        while a.tx_backlog_cells() > 0 {
            let _lost = a.frame_tick();
        }
        // No explicit expire(): the receive path's own timer must
        // surface the timeout as idle line frames keep arriving.
        let mut saw_timeout = false;
        for ms in 1..=4u64 {
            let f = a.frame_tick();
            b.receive_line_octets(&f, Time::from_ms(6 * ms));
            while let Some(e) = b.poll() {
                if let NicEvent::ReceiveError(f) = e {
                    assert_eq!(f.error, hni_aal::ReassemblyError::Timeout);
                    saw_timeout = true;
                }
            }
        }
        assert!(
            saw_timeout,
            "idle AAL3/4 chain must expire via the rx-path timer"
        );
    }

    #[test]
    fn faulted_injection_accounts_for_every_cell() {
        let (mut a, mut b, vc) = pair(AalType::Aal5);
        a.open_vc(vc).unwrap();
        b.open_vc(vc).unwrap();
        pump(&mut a, &mut b, 12);
        let mut inj = hni_sim::FaultInjector::seeded(
            hni_sim::FaultPlan::iid(0.05, 1e-5).with_duplication(0.02),
            11,
        );
        let n_frames = 40u64;
        let (mut offered, mut lost, mut dup) = (0u64, 0u64, 0u64);
        for i in 0..n_frames as usize {
            let payload: Vec<u8> = (0..2048).map(|j| ((i + j) % 256) as u8).collect();
            for cell in hni_aal::aal5::segment(vc, &payload, 0) {
                offered += 1;
                let fate = a.inject_cell_faulted(&cell, &mut inj);
                if fate.lost {
                    lost += 1;
                } else if fate.duplicated {
                    dup += 1;
                }
            }
        }
        assert!(lost > 0, "5% loss over {offered} cells should hit");
        // Every offered cell is either dropped before the queue or
        // queued (twice, if duplicated) — nothing vanishes unaccounted.
        assert_eq!(a.cells_sent(), offered - lost + dup);
        let (mut ok, mut failed) = (0u64, 0u64);
        let mut evs = pump(&mut a, &mut b, 200);
        evs.extend(pump(&mut a, &mut b, 4));
        for e in &evs {
            match e {
                NicEvent::PacketReceived { .. } => ok += 1,
                NicEvent::ReceiveError(_) => failed += 1,
                _ => {}
            }
        }
        assert!(ok > 0, "some frames must survive 5% loss");
        assert!(failed > 0, "some frames must die to loss/corruption");
        assert!(ok + failed <= n_frames + lost + dup);
    }

    #[test]
    fn rx_burst_matches_per_cell_line_path() {
        // Same traffic through (a) the SONET line path and (b) the
        // batched rx_burst entry point: identical packets, events and
        // counters at the ATM layer and above.
        let (mut a, mut line_rx, vc) = pair(AalType::Aal5);
        let (_, mut burst_rx, _) = pair(AalType::Aal5);
        a.open_vc(vc).unwrap();
        line_rx.open_vc(vc).unwrap();
        burst_rx.open_vc(vc).unwrap();
        pump(&mut a, &mut line_rx, 12);

        let payloads: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                (0..800 + i * 37)
                    .map(|j| ((i * 31 + j) % 256) as u8)
                    .collect()
            })
            .collect();
        let mut slab = CellSlab::new();
        let mut refs = Vec::new();
        for p in &payloads {
            a.send(vc, p.clone(), Time::ZERO).unwrap();
            aal5::segment_into(vc, p, 0, &mut slab, &mut refs);
        }
        let line_evs = pump(&mut a, &mut line_rx, 10);
        burst_rx.rx_burst(&refs, &slab, Time::ZERO);
        let mut burst_evs = Vec::new();
        while let Some(e) = burst_rx.poll() {
            burst_evs.push(e);
        }
        assert_eq!(line_evs, burst_evs);
        assert_eq!(line_rx.sdus_received(), burst_rx.sdus_received());
    }

    #[test]
    fn cam_capacity_limits_open_vcs() {
        let mut cfg = NicConfig::paper(LineRate::Oc3);
        cfg.cam_capacity = 2;
        let mut nic = Nic::new(cfg);
        nic.open_vc(VcId::new(0, 32)).unwrap();
        nic.open_vc(VcId::new(0, 33)).unwrap();
        assert_eq!(nic.open_vc(VcId::new(0, 34)), Err(NicError::CamFull));
        nic.close_vc(VcId::new(0, 32));
        assert!(nic.open_vc(VcId::new(0, 34)).is_ok());
    }
}

#[cfg(test)]
mod oam_tests {
    use super::*;
    use hni_aal::AalType;
    use hni_sonet::LineRate;

    #[test]
    fn oam_loopback_round_trip() {
        let mut cfg = NicConfig::paper(LineRate::Oc3);
        cfg.aal = AalType::Aal5;
        let mut a = Nic::new(cfg.clone());
        let mut b = Nic::new(cfg);
        let vc = VcId::new(0, 88);
        a.open_vc(vc).unwrap();
        b.open_vc(vc).unwrap();
        // Sync both directions.
        for _ in 0..12 {
            let fa = a.frame_tick();
            let fb = b.frame_tick();
            b.receive_line_octets(&fa, Time::ZERO);
            a.receive_line_octets(&fb, Time::ZERO);
        }
        a.send_oam_loopback(vc, 0xDEADBEEF).unwrap();
        let mut got = None;
        for _ in 0..20 {
            let fa = a.frame_tick();
            let fb = b.frame_tick();
            b.receive_line_octets(&fa, Time::ZERO);
            a.receive_line_octets(&fb, Time::ZERO);
            while b.poll().is_some() {}
            while let Some(e) = a.poll() {
                if let NicEvent::OamLoopbackReply { vc: v, tag } = e {
                    got = Some((v, tag));
                }
            }
            if got.is_some() {
                break;
            }
        }
        assert_eq!(got, Some((vc, 0xDEADBEEF)));
    }

    #[test]
    fn oam_requires_open_vc() {
        let mut nic = Nic::new(NicConfig::paper(LineRate::Oc3));
        assert_eq!(
            nic.send_oam_loopback(VcId::new(0, 5), 1),
            Err(NicError::VcNotOpen)
        );
    }

    #[test]
    fn oam_cells_do_not_disturb_reassembly() {
        let mut cfg = NicConfig::paper(LineRate::Oc3);
        cfg.aal = AalType::Aal5;
        let mut a = Nic::new(cfg.clone());
        let mut b = Nic::new(cfg);
        let vc = VcId::new(0, 89);
        a.open_vc(vc).unwrap();
        b.open_vc(vc).unwrap();
        for _ in 0..12 {
            let f = a.frame_tick();
            b.receive_line_octets(&f, Time::ZERO);
        }
        // Interleave an OAM cell into the middle of a data frame's cells.
        a.send(vc, vec![5u8; 1000], Time::ZERO).unwrap();
        a.send_oam_loopback(vc, 7).unwrap();
        a.send(vc, vec![6u8; 1000], Time::ZERO).unwrap();
        let mut data = Vec::new();
        for _ in 0..10 {
            let f = a.frame_tick();
            b.receive_line_octets(&f, Time::ZERO);
            while let Some(e) = b.poll() {
                if let NicEvent::PacketReceived { data: d, .. } = e {
                    data.push(d);
                }
            }
        }
        assert_eq!(data.len(), 2);
        assert_eq!(data[0], vec![5u8; 1000]);
        assert_eq!(data[1], vec![6u8; 1000]);
    }
}
