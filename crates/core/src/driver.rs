//! The host driver: descriptor rings and interrupts around the
//! functional NIC.
//!
//! [`crate::nic::Nic`] is the adaptor; this is the kernel module that
//! owns it. It adds the three resource disciplines every real driver
//! imposes, each observable in tests:
//!
//! * **Transmit ring** — a bounded descriptor ring. When it fills
//!   (the line is slower than the application), `send` returns
//!   [`DriverError::TxRingFull`] and the application must back off:
//!   flow control by allocation, the only kind a dumb kernel had.
//! * **Receive buffers** — the driver pre-posts a fixed pool of host
//!   buffers. A packet arriving with no free buffer is dropped *by the
//!   host* (counted separately from every wire-level loss); buffers
//!   return to the pool when the application consumes the packet.
//! * **Interrupt coalescing** — completed receive packets are announced
//!   in batches: an interrupt fires when `max_batch` packets are
//!   pending or `max_delay` has passed since the first unannounced one.
//!   The application only sees packets at interrupts, trading latency
//!   for per-interrupt overhead exactly as R-F2's host table prices it.

use crate::nic::{Nic, NicError, NicEvent};
use hni_atm::VcId;
use hni_sim::{Duration, Time};
use hni_telemetry::{NullTracer, Stage, TraceEvent, Tracer};
use std::collections::VecDeque;

/// Driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct DriverConfig {
    /// Transmit descriptor ring depth (packets in flight to the line).
    pub tx_ring: usize,
    /// Pre-posted receive buffers (packets the host can hold before the
    /// application reads them).
    pub rx_buffers: usize,
    /// Interrupt after this many pending receive packets.
    pub coalesce_packets: usize,
    /// ... or after this delay past the first pending packet.
    pub coalesce_delay: Duration,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            tx_ring: 32,
            rx_buffers: 64,
            coalesce_packets: 8,
            coalesce_delay: Duration::from_ms(1),
        }
    }
}

/// Driver-level errors (the NIC's own errors pass through).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverError {
    /// The transmit ring is full — try again after the line drains.
    TxRingFull,
    /// Underlying interface error.
    Nic(NicError),
}

impl core::fmt::Display for DriverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DriverError::TxRingFull => write!(f, "transmit ring full"),
            DriverError::Nic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// A received packet as the application sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RxPacket {
    /// Connection it arrived on.
    pub vc: VcId,
    /// The SDU.
    pub data: Vec<u8>,
    /// When the driver's interrupt announced it.
    pub announced_at: Time,
}

/// The driver wrapping a [`Nic`].
pub struct HostDriver {
    nic: Nic,
    cfg: DriverConfig,
    /// SDUs accepted but not yet handed to the NIC's segmenter — the
    /// descriptor ring (each entry = one in-flight packet until its
    /// cells clear the TC queue).
    tx_inflight: VecDeque<usize>, // cell counts per in-flight packet
    /// Packets reassembled but not yet announced by an interrupt.
    pending_rx: VecDeque<RxPacket>,
    /// Packets announced, awaiting application consumption (each holds
    /// one rx buffer).
    announced_rx: VecDeque<RxPacket>,
    first_pending_at: Option<Time>,
    interrupts: u64,
    host_drops: u64,
}

impl HostDriver {
    /// Attach a driver to an interface.
    pub fn new(nic: Nic, cfg: DriverConfig) -> Self {
        assert!(cfg.tx_ring > 0 && cfg.rx_buffers > 0 && cfg.coalesce_packets > 0);
        HostDriver {
            nic,
            cfg,
            tx_inflight: VecDeque::new(),
            pending_rx: VecDeque::new(),
            announced_rx: VecDeque::new(),
            first_pending_at: None,
            interrupts: 0,
            host_drops: 0,
        }
    }

    /// The wrapped interface (for VC management, OAM, statistics).
    pub fn nic_mut(&mut self) -> &mut Nic {
        &mut self.nic
    }
    /// Read-only interface access.
    pub fn nic(&self) -> &Nic {
        &self.nic
    }

    /// Interrupts taken so far.
    pub fn interrupts(&self) -> u64 {
        self.interrupts
    }
    /// Packets the host dropped for lack of receive buffers.
    pub fn host_drops(&self) -> u64 {
        self.host_drops
    }
    /// Transmit descriptors currently in flight.
    pub fn tx_in_flight(&self) -> usize {
        self.tx_inflight.len()
    }

    /// Send an SDU: occupies one transmit descriptor until the packet's
    /// cells have cleared the interface's transmit queue.
    pub fn send(&mut self, vc: VcId, sdu: Vec<u8>, now: Time) -> Result<(), DriverError> {
        self.reclaim_tx_descriptors();
        if self.tx_inflight.len() >= self.cfg.tx_ring {
            return Err(DriverError::TxRingFull);
        }
        let cells_before = self.nic.tx_backlog_cells();
        self.nic.send(vc, sdu, now).map_err(DriverError::Nic)?;
        let cells = self.nic.tx_backlog_cells() - cells_before;
        self.tx_inflight.push_back(cells);
        Ok(())
    }

    /// Free descriptors whose cells have left for the line.
    fn reclaim_tx_descriptors(&mut self) {
        // Descriptors complete in FIFO order as the TC queue drains: the
        // backlog tells how many cells of the *newest* descriptors are
        // still queued.
        let mut backlog = self.nic.tx_backlog_cells();
        let mut still_inflight = VecDeque::new();
        while let Some(cells) = self.tx_inflight.pop_back() {
            if backlog == 0 {
                // This descriptor's cells are all on the line: complete.
                continue;
            }
            let consumed = backlog.min(cells);
            backlog -= consumed;
            still_inflight.push_front(cells);
        }
        self.tx_inflight = still_inflight;
    }

    /// Clock tick: emit the next SONET frame for the line and update
    /// descriptor state.
    pub fn frame_tick(&mut self, now: Time) -> Vec<u8> {
        self.frame_tick_instrumented(now, &mut NullTracer)
    }

    /// [`HostDriver::frame_tick`] with a tracer observing the interrupt
    /// path.
    pub fn frame_tick_instrumented(&mut self, now: Time, tracer: &mut dyn Tracer) -> Vec<u8> {
        let frame = self.nic.frame_tick();
        self.reclaim_tx_descriptors();
        self.maybe_interrupt(now, tracer);
        frame
    }

    /// Feed received line octets; packets surface at interrupt time via
    /// [`HostDriver::poll_rx`].
    pub fn receive_line_octets(&mut self, octets: &[u8], now: Time) {
        self.receive_line_octets_instrumented(octets, now, &mut NullTracer)
    }

    /// [`HostDriver::receive_line_octets`] with a tracer observing
    /// completion-queue pushes and the coalesced-interrupt path.
    pub fn receive_line_octets_instrumented(
        &mut self,
        octets: &[u8],
        now: Time,
        tracer: &mut dyn Tracer,
    ) {
        self.nic
            .receive_line_octets_instrumented(octets, now, tracer);
        self.nic.expire(now);
        while let Some(ev) = self.nic.poll() {
            if let NicEvent::PacketReceived { vc, data, .. } = ev {
                // A packet needs a host buffer from arrival, announced
                // or not.
                if self.pending_rx.len() + self.announced_rx.len() >= self.cfg.rx_buffers {
                    self.host_drops += 1;
                    continue;
                }
                if self.first_pending_at.is_none() {
                    self.first_pending_at = Some(now);
                }
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, Stage::CompletionPush)
                            .vc(vc.cam_key())
                            .arg(data.len() as u64),
                    );
                }
                self.pending_rx.push_back(RxPacket {
                    vc,
                    data,
                    announced_at: Time::MAX, // set at interrupt
                });
            }
            // Reassembly errors / unknown VCs are adaptor statistics;
            // a fuller driver would log them.
        }
        self.maybe_interrupt(now, tracer);
    }

    /// Fire the coalesced interrupt if due.
    fn maybe_interrupt(&mut self, now: Time, tracer: &mut dyn Tracer) {
        let due_count = self.pending_rx.len() >= self.cfg.coalesce_packets;
        let due_time = matches!(self.first_pending_at, Some(t0) if now.saturating_since(t0) >= self.cfg.coalesce_delay);
        if !self.pending_rx.is_empty() && (due_count || due_time) {
            self.interrupts += 1;
            if tracer.enabled() {
                tracer
                    .record(TraceEvent::instant(now, Stage::Isr).arg(self.pending_rx.len() as u64));
            }
            while let Some(mut p) = self.pending_rx.pop_front() {
                p.announced_at = now;
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(now, Stage::HostDeliver)
                            .vc(p.vc.cam_key())
                            .arg(p.data.len() as u64),
                    );
                }
                self.announced_rx.push_back(p);
            }
            self.first_pending_at = None;
        }
    }

    /// Application read: take the next announced packet, returning its
    /// buffer to the pool.
    pub fn poll_rx(&mut self) -> Option<RxPacket> {
        self.announced_rx.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NicConfig;
    use hni_sonet::LineRate;

    fn pair(cfg: DriverConfig) -> (HostDriver, HostDriver, VcId) {
        let ncfg = NicConfig::paper(LineRate::Oc3);
        let mut a = HostDriver::new(Nic::new(ncfg.clone()), cfg);
        let mut b = HostDriver::new(Nic::new(ncfg), cfg);
        let vc = VcId::new(0, 66);
        a.nic_mut().open_vc(vc).unwrap();
        b.nic_mut().open_vc(vc).unwrap();
        for _ in 0..12 {
            let f = a.frame_tick(Time::ZERO);
            b.receive_line_octets(&f, Time::ZERO);
        }
        (a, b, vc)
    }

    #[test]
    fn transfer_through_driver() {
        let (mut a, mut b, vc) = pair(DriverConfig::default());
        for i in 0..5u8 {
            a.send(vc, vec![i; 500], Time::ZERO).unwrap();
        }
        let mut got = Vec::new();
        for i in 0..20u64 {
            let now = Time::from_us(125 * i);
            let f = a.frame_tick(now);
            b.receive_line_octets(&f, now);
            while let Some(p) = b.poll_rx() {
                got.push(p);
            }
        }
        assert_eq!(got.len(), 5);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(p.data, vec![i as u8; 500]);
            assert_eq!(p.vc, vc);
        }
    }

    #[test]
    fn tx_ring_backpressure() {
        let cfg = DriverConfig {
            tx_ring: 4,
            ..DriverConfig::default()
        };
        let (mut a, _b, vc) = pair(cfg);
        // Large packets: an OC-3 frame carries ~44 cells; a 9180-octet
        // packet is 192 cells, so the ring fills before the line drains.
        let mut accepted = 0;
        let mut refused = 0;
        for _ in 0..10 {
            match a.send(vc, vec![0; 9180], Time::ZERO) {
                Ok(()) => accepted += 1,
                Err(DriverError::TxRingFull) => refused += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(refused, 6);
        // Draining the line frees descriptors.
        for i in 0..40u64 {
            let _ = a.frame_tick(Time::from_us(125 * i));
        }
        assert_eq!(a.tx_in_flight(), 0);
        assert!(a.send(vc, vec![0; 9180], Time::from_ms(6)).is_ok());
    }

    #[test]
    fn interrupt_coalescing_batches() {
        let cfg = DriverConfig {
            coalesce_packets: 4,
            coalesce_delay: Duration::from_ms(100),
            ..DriverConfig::default()
        };
        let (mut a, mut b, vc) = pair(cfg);
        // One packet per frame: pending count builds across frames, so
        // the count threshold (4) governs. (Packets arriving in the same
        // frame share one interrupt — the handler drains all it finds.)
        let mut seen = 0;
        for i in 0..10u64 {
            let now = Time::from_us(125 * i);
            if i < 8 {
                a.send(vc, vec![i as u8; 100], now).unwrap();
            }
            let f = a.frame_tick(now);
            b.receive_line_octets(&f, now);
            while b.poll_rx().is_some() {
                seen += 1;
            }
        }
        assert_eq!(seen, 8);
        // 8 packets in batches of 4 → exactly 2 interrupts.
        assert_eq!(b.interrupts(), 2);
    }

    #[test]
    fn coalescing_timer_announces_stragglers() {
        let cfg = DriverConfig {
            coalesce_packets: 100,
            coalesce_delay: Duration::from_us(300),
            ..DriverConfig::default()
        };
        let (mut a, mut b, vc) = pair(cfg);
        a.send(vc, vec![7; 100], Time::ZERO).unwrap();
        let mut got = None;
        for i in 0..10u64 {
            let now = Time::from_us(125 * i);
            let f = a.frame_tick(now);
            b.receive_line_octets(&f, now);
            if let Some(p) = b.poll_rx() {
                got = Some((p, now));
                break;
            }
        }
        let (p, at) = got.expect("timer must announce the lone packet");
        // Announced by the delay bound, not the count.
        assert!(at >= Time::from_us(300));
        assert_eq!(p.announced_at, at);
        assert_eq!(b.interrupts(), 1);
    }

    #[test]
    fn rx_buffer_exhaustion_drops_at_host() {
        let cfg = DriverConfig {
            rx_buffers: 3,
            coalesce_packets: 1,
            ..DriverConfig::default()
        };
        let (mut a, mut b, vc) = pair(cfg);
        for i in 0..8u8 {
            a.send(vc, vec![i; 100], Time::ZERO).unwrap();
        }
        // Pump everything across but never consume at the application.
        for i in 0..10u64 {
            let now = Time::from_us(125 * i);
            let f = a.frame_tick(now);
            b.receive_line_octets(&f, now);
        }
        assert_eq!(b.host_drops(), 5, "3 buffers, 8 packets → 5 host drops");
        // Consuming frees buffers; new traffic flows again.
        let mut freed = 0;
        while b.poll_rx().is_some() {
            freed += 1;
        }
        assert_eq!(freed, 3);
        a.send(vc, vec![99; 100], Time::from_ms(2)).unwrap();
        let mut got_new = false;
        for i in 11..20u64 {
            let now = Time::from_us(125 * i);
            let f = a.frame_tick(now);
            b.receive_line_octets(&f, now);
            while let Some(p) = b.poll_rx() {
                if p.data == vec![99; 100] {
                    got_new = true;
                }
            }
        }
        assert!(got_new);
    }
}
