//! The host bus: a TURBOchannel-class 32-bit synchronous I/O channel
//! with burst DMA.
//!
//! The interface moves every packet across this bus twice-removed from
//! the link: transmit data is DMA-read out of host memory, received
//! frames are DMA-written back in. The bus is therefore the third
//! candidate bottleneck (with the engine and the link), and the one
//! whose efficiency depends on a *tunable* — the burst size:
//!
//! ```text
//!   burst of w words costs (setup + w + turnaround) cycles
//!   efficiency = w / (setup + w + turnaround)
//! ```
//!
//! At the default 25 MHz × 4-byte words the peak is 100 MB/s = 800 Mb/s;
//! with 5 + 2 overhead cycles, an 8-word burst delivers only 53% of
//! that — less than OC-12 needs — while a 64-word burst delivers 90%.
//! Finding that crossover is experiment R-F6.
//!
//! The bus is a serial resource shared by the transmit and receive DMA
//! engines; requests are served strictly in arrival order (FCFS — the
//! fairness the real channel's central arbiter provided round-robin is
//! approximated by the fine interleaving of cell-scale requests).

use hni_sim::{BusFaultPlan, Duration, Rng, Time};
use hni_telemetry::{Activity, Component, Profiler};

/// Bus timing and width parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BusConfig {
    /// Bus clock in MHz (one word transfers per cycle while bursting).
    pub clock_mhz: f64,
    /// Bytes per bus word.
    pub word_bytes: usize,
    /// Cycles of address/arbitration setup before each burst.
    pub burst_setup_cycles: u32,
    /// Dead cycles after each burst (bus turnaround).
    pub turnaround_cycles: u32,
    /// Maximum words per burst.
    pub max_burst_words: u32,
}

impl Default for BusConfig {
    fn default() -> Self {
        // TURBOchannel-class: 25 MHz, 32-bit, modest burst ceiling.
        BusConfig {
            clock_mhz: 25.0,
            word_bytes: 4,
            burst_setup_cycles: 5,
            turnaround_cycles: 2,
            max_burst_words: 32,
        }
    }
}

impl BusConfig {
    /// Duration of one bus cycle.
    pub fn cycle(&self) -> Duration {
        Duration::from_s_f64(1.0 / (self.clock_mhz * 1e6))
    }

    /// Peak (zero-overhead) bandwidth in bytes/second.
    pub fn peak_bytes_per_second(&self) -> f64 {
        self.clock_mhz * 1e6 * self.word_bytes as f64
    }

    /// Time one burst of `words` data words occupies the bus.
    pub fn burst_time(&self, words: u32) -> Duration {
        assert!(words > 0 && words <= self.max_burst_words);
        self.cycle()
            .times((self.burst_setup_cycles + words + self.turnaround_cycles) as u64)
    }

    /// Effective data bandwidth (bytes/s) when all bursts carry `words`.
    pub fn effective_bytes_per_second(&self, words: u32) -> f64 {
        let t = self.burst_time(words).as_s_f64();
        (words as usize * self.word_bytes) as f64 / t
    }

    /// Number of bursts to move `bytes` (last burst may be short).
    pub fn bursts_for(&self, bytes: usize) -> u32 {
        let per = self.max_burst_words as usize * self.word_bytes;
        bytes.div_ceil(per).max(1) as u32
    }

    /// Words in burst number `i` (0-based) of a `bytes`-byte transfer.
    pub fn burst_words(&self, bytes: usize, i: u32) -> u32 {
        let per = self.max_burst_words as usize * self.word_bytes;
        let start = i as usize * per;
        debug_assert!(start < bytes.max(1));
        let remain = bytes.saturating_sub(start).min(per);
        (remain.div_ceil(self.word_bytes) as u32).max(1)
    }
}

/// The serial bus resource: hands out time grants FCFS.
///
/// Faults are opt-in via [`Bus::with_faults`]: a seeded
/// [`BusFaultPlan`] can stall arbitration for extra cycles before a
/// burst, or abort a burst so it runs twice (the bus stays busy for
/// both attempts). A fault-free bus draws zero random values — the
/// plain constructor and the empty plan are bit-identical in behaviour.
#[derive(Debug)]
pub struct Bus {
    cfg: BusConfig,
    faults: BusFaultPlan,
    rng: Rng,
    next_free: Time,
    busy: Duration,
    grants: u64,
    bytes_moved: u64,
    stalls: u64,
    retries: u64,
}

impl Bus {
    /// A free, fault-free bus with the given parameters.
    pub fn new(cfg: BusConfig) -> Self {
        Bus::with_faults(cfg, BusFaultPlan::NONE)
    }

    /// A bus whose grants suffer the given fault plan (seeded from the
    /// plan itself, so the whole scenario is one value).
    pub fn with_faults(cfg: BusConfig, faults: BusFaultPlan) -> Self {
        faults.validate();
        Bus {
            cfg,
            faults,
            rng: Rng::new(faults.seed),
            next_free: Time::ZERO,
            busy: Duration::ZERO,
            grants: 0,
            bytes_moved: 0,
            stalls: 0,
            retries: 0,
        }
    }

    /// Parameters in force.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// The fault plan in force (the empty plan for [`Bus::new`]).
    pub fn faults(&self) -> &BusFaultPlan {
        &self.faults
    }

    /// Draw this grant's faults: extra stall time before the burst and
    /// whether the burst aborts and retries. Free when the plan is
    /// empty.
    fn draw_faults(&mut self) -> (Duration, bool) {
        if self.faults.is_none() {
            return (Duration::ZERO, false);
        }
        let stall = if self.rng.chance(self.faults.stall_probability) {
            self.stalls += 1;
            self.cfg.cycle().times(self.faults.stall_cycles as u64)
        } else {
            Duration::ZERO
        };
        let retry = self.rng.chance(self.faults.retry_probability);
        if retry {
            self.retries += 1;
        }
        (stall, retry)
    }

    fn commit(&mut self, start: Time, held: Duration, bytes: usize) -> Time {
        self.next_free = start + held;
        self.busy += held;
        self.grants += 1;
        self.bytes_moved += bytes as u64;
        self.next_free
    }

    /// Request the bus at `now` for a burst of `words` data words
    /// carrying `bytes` payload bytes. Returns when the burst completes
    /// (including any injected stall or retry).
    pub fn grant(&mut self, now: Time, words: u32, bytes: usize) -> Time {
        let start = now.max(self.next_free);
        let (stall, retry) = self.draw_faults();
        let burst = self.cfg.burst_time(words);
        let held = stall + burst + if retry { burst } else { Duration::ZERO };
        self.commit(start, held, bytes)
    }

    /// [`Bus::grant`] with cycle accounting: the burst's setup and
    /// turnaround cycles are charged as [`Activity::Arbitration`] and
    /// its data cycles as [`Activity::Transfer`] on `component`
    /// (`TxBus` or `RxBus`, since each adaptor has its own channel).
    /// Charges start when the burst actually begins — after any FCFS
    /// queueing delay — so bus charges never overlap.
    pub fn grant_profiled(
        &mut self,
        now: Time,
        words: u32,
        bytes: usize,
        component: Component,
        profiler: &mut dyn Profiler,
    ) -> Time {
        if !profiler.enabled() {
            return self.grant(now, words, bytes);
        }
        let start = now.max(self.next_free);
        let (stall, retry) = self.draw_faults();
        let cycle = self.cfg.cycle();
        let setup = cycle.times(self.cfg.burst_setup_cycles as u64);
        let data = cycle.times(words as u64);
        let turnaround = cycle.times(self.cfg.turnaround_cycles as u64);
        let mut cursor = start;
        if stall > Duration::ZERO {
            // An injected stall is arbitration the burst lost.
            profiler.charge(component, Activity::Arbitration, cursor, stall);
            cursor += stall;
        }
        for _ in 0..if retry { 2 } else { 1 } {
            profiler.charge(component, Activity::Arbitration, cursor, setup);
            profiler.charge(component, Activity::Transfer, cursor + setup, data);
            profiler.charge(
                component,
                Activity::Arbitration,
                cursor + setup + data,
                turnaround,
            );
            cursor += setup + data + turnaround;
        }
        let held = cursor.saturating_since(start);
        self.commit(start, held, bytes)
    }

    /// Earliest instant a new request could start.
    pub fn next_free(&self) -> Time {
        self.next_free
    }
    /// Total time the bus has been occupied.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }
    /// Bursts granted.
    pub fn grants(&self) -> u64 {
        self.grants
    }
    /// Payload bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }
    /// Grants that suffered an injected arbitration stall.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
    /// Grants whose burst aborted and ran twice.
    pub fn retries(&self) -> u64 {
        self.retries
    }
    /// Random values the fault plan has consumed — zero for a
    /// fault-free bus, always.
    pub fn fault_rng_draws(&self) -> u64 {
        self.rng.draws()
    }
    /// Utilization over `[0, end]`.
    pub fn utilization(&self, end: Time) -> f64 {
        if end == Time::ZERO {
            0.0
        } else {
            self.busy.as_s_f64() / end.saturating_since(Time::ZERO).as_s_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidth() {
        let cfg = BusConfig::default();
        assert_eq!(cfg.peak_bytes_per_second(), 100e6); // 100 MB/s
        assert_eq!(cfg.cycle(), Duration::from_ns(40));
    }

    #[test]
    fn burst_time_includes_overhead() {
        let cfg = BusConfig::default();
        // 5 setup + 8 words + 2 turnaround = 15 cycles × 40 ns = 600 ns.
        assert_eq!(cfg.burst_time(8), Duration::from_ns(600));
    }

    #[test]
    fn efficiency_rises_with_burst_size() {
        let cfg = BusConfig {
            max_burst_words: 128,
            ..BusConfig::default()
        };
        let e8 = cfg.effective_bytes_per_second(8);
        let e32 = cfg.effective_bytes_per_second(32);
        let e128 = cfg.effective_bytes_per_second(128);
        assert!(e8 < e32 && e32 < e128);
        // 8 words: 32 bytes / 600 ns = 53.3 MB/s.
        assert!((e8 - 53.33e6).abs() < 0.1e6);
        // Asymptote: 100 MB/s.
        assert!(e128 > 94e6);
    }

    #[test]
    fn oc12_needs_large_bursts() {
        // OC-12 payload is 599.04 Mb/s ≈ 74.88 MB/s; an 8-word burst
        // regime (53 MB/s) cannot carry it, 32-word (82 MB/s) can.
        let cfg = BusConfig {
            max_burst_words: 128,
            ..BusConfig::default()
        };
        let need = 599.04e6 / 8.0;
        assert!(cfg.effective_bytes_per_second(8) < need);
        assert!(cfg.effective_bytes_per_second(32) > need);
    }

    #[test]
    fn bursts_for_and_words() {
        let cfg = BusConfig::default(); // 128 bytes per full burst
        assert_eq!(cfg.bursts_for(128), 1);
        assert_eq!(cfg.bursts_for(129), 2);
        assert_eq!(
            cfg.bursts_for(0),
            1,
            "zero-length still needs a descriptor touch"
        );
        assert_eq!(cfg.burst_words(129, 0), 32);
        assert_eq!(cfg.burst_words(129, 1), 1); // 1 byte → 1 word
        assert_eq!(cfg.burst_words(130, 1), 1);
        assert_eq!(cfg.burst_words(133, 1), 2);
    }

    #[test]
    fn bus_serializes_fcfs() {
        let mut bus = Bus::new(BusConfig::default());
        let end1 = bus.grant(Time::ZERO, 8, 32); // 600 ns
        let end2 = bus.grant(Time::ZERO, 8, 32); // queued behind
        assert_eq!(end1, Time::from_ns(600));
        assert_eq!(end2, Time::from_ns(1200));
        assert_eq!(bus.grants(), 2);
        assert_eq!(bus.bytes_moved(), 64);
        assert_eq!(bus.busy_time(), Duration::from_ns(1200));
    }

    #[test]
    fn profiled_grant_matches_plain_and_splits_overhead() {
        use hni_telemetry::{CycleProfiler, NullProfiler};

        let mut plain = Bus::new(BusConfig::default());
        let mut profiled = Bus::new(BusConfig::default());
        let mut prof = CycleProfiler::new();
        let e1 = plain.grant(Time::ZERO, 8, 32);
        let e2 = profiled.grant_profiled(Time::ZERO, 8, 32, Component::TxBus, &mut prof);
        assert_eq!(e1, e2);
        assert_eq!(plain.busy_time(), profiled.busy_time());
        let p = prof.snapshot(e2);
        // 8 data cycles × 40 ns, 7 overhead cycles × 40 ns.
        assert_eq!(
            p.total(Component::TxBus, Activity::Transfer),
            Duration::from_ns(320)
        );
        assert_eq!(
            p.total(Component::TxBus, Activity::Arbitration),
            Duration::from_ns(280)
        );
        // Transfer + arbitration account for the whole grant.
        assert_eq!(p.active_time(Component::TxBus), profiled.busy_time());

        // With the NullProfiler the call degenerates to grant().
        let mut off = Bus::new(BusConfig::default());
        let e3 = off.grant_profiled(Time::ZERO, 8, 32, Component::TxBus, &mut NullProfiler);
        assert_eq!(e3, e1);
    }

    #[test]
    fn profiled_grant_charges_from_queued_start() {
        use hni_telemetry::CycleProfiler;

        let mut bus = Bus::new(BusConfig::default());
        let mut prof = CycleProfiler::with_window(Duration::from_ns(600));
        bus.grant_profiled(Time::ZERO, 8, 32, Component::RxBus, &mut prof);
        // Requested at 0 but queued behind the first burst: charges must
        // land in [600, 1200) ns, i.e. the second 600 ns window.
        bus.grant_profiled(Time::ZERO, 8, 32, Component::RxBus, &mut prof);
        let p = prof.snapshot(Time::from_ns(1200));
        let s = p.series(Component::RxBus);
        assert_eq!(s.busy(0), Duration::from_ns(600));
        assert_eq!(s.busy(1), Duration::from_ns(600));
    }

    #[test]
    fn fault_free_bus_draws_no_randomness() {
        let mut bus = Bus::new(BusConfig::default());
        for _ in 0..1000 {
            bus.grant(Time::ZERO, 8, 32);
        }
        assert_eq!(bus.fault_rng_draws(), 0);
        assert_eq!(bus.stalls() + bus.retries(), 0);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_plain_bus() {
        let mut plain = Bus::new(BusConfig::default());
        let mut faulty = Bus::with_faults(BusConfig::default(), BusFaultPlan::NONE);
        for i in 0..100u64 {
            let a = plain.grant(Time::from_ns(i * 50), 8, 32);
            let b = faulty.grant(Time::from_ns(i * 50), 8, 32);
            assert_eq!(a, b);
        }
        assert_eq!(plain.busy_time(), faulty.busy_time());
    }

    #[test]
    fn stalls_add_exactly_their_cycles() {
        let plan = BusFaultPlan {
            stall_probability: 1.0,
            stall_cycles: 10,
            retry_probability: 0.0,
            seed: 5,
        };
        let mut bus = Bus::with_faults(BusConfig::default(), plan);
        // 15 burst cycles + 10 stall cycles = 25 × 40 ns.
        let end = bus.grant(Time::ZERO, 8, 32);
        assert_eq!(end, Time::from_ns(1000));
        assert_eq!(bus.stalls(), 1);
    }

    #[test]
    fn retries_double_the_burst() {
        let plan = BusFaultPlan {
            stall_probability: 0.0,
            stall_cycles: 0,
            retry_probability: 1.0,
            seed: 5,
        };
        let mut bus = Bus::with_faults(BusConfig::default(), plan);
        let end = bus.grant(Time::ZERO, 8, 32);
        assert_eq!(end, Time::from_ns(1200), "burst runs twice");
        assert_eq!(bus.retries(), 1);
        assert_eq!(bus.busy_time(), Duration::from_ns(1200));
    }

    #[test]
    fn faulty_grants_deterministic_and_profiled_matches_plain() {
        use hni_telemetry::CycleProfiler;
        let plan = BusFaultPlan {
            stall_probability: 0.3,
            stall_cycles: 6,
            retry_probability: 0.2,
            seed: 42,
        };
        let run = |profiled: bool| {
            let mut bus = Bus::with_faults(BusConfig::default(), plan);
            let mut prof = CycleProfiler::new();
            (0..200u64)
                .map(|i| {
                    if profiled {
                        bus.grant_profiled(
                            Time::from_ns(i * 2000),
                            8,
                            32,
                            Component::RxBus,
                            &mut prof,
                        )
                    } else {
                        bus.grant(Time::from_ns(i * 2000), 8, 32)
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(false), "not deterministic");
        // The profiled path draws the same faults in the same order.
        assert_eq!(run(false), run(true), "profiling perturbed the faults");
    }

    #[test]
    fn profiled_fault_charges_cover_the_whole_grant() {
        use hni_telemetry::CycleProfiler;
        let plan = BusFaultPlan {
            stall_probability: 1.0,
            stall_cycles: 10,
            retry_probability: 1.0,
            seed: 9,
        };
        let mut bus = Bus::with_faults(BusConfig::default(), plan);
        let mut prof = CycleProfiler::new();
        let end = bus.grant_profiled(Time::ZERO, 8, 32, Component::RxBus, &mut prof);
        let p = prof.snapshot(end);
        assert_eq!(p.active_time(Component::RxBus), bus.busy_time());
        // Two data phases of 8 cycles each.
        assert_eq!(
            p.total(Component::RxBus, Activity::Transfer),
            Duration::from_ns(2 * 320)
        );
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut bus = Bus::new(BusConfig::default());
        bus.grant(Time::ZERO, 8, 32);
        bus.grant(Time::from_us(10), 8, 32);
        assert_eq!(bus.busy_time(), Duration::from_ns(1200));
        let util = bus.utilization(Time::from_us(10) + Duration::from_ns(600));
        assert!((util - 1200.0 / 10_600.0).abs() < 1e-9);
    }
}
