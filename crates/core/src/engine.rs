//! The protocol engine: an instruction-cost model of the i960-class RISC
//! microcontroller that runs each direction of the interface.
//!
//! The architecture's central bet is that an **off-the-shelf programmable
//! processor plus a few hardware assists** can keep up with ATM at
//! 622 Mb/s, preserving the flexibility (new AALs, changed policies) that
//! full-custom silicon gives up. Whether the bet pays off is pure
//! arithmetic: each per-cell task costs some instructions; the engine
//! executes a given MIPS; a cell slot at 622 Mb/s payload rate lasts
//! ~708 ns. This module is that arithmetic, made executable.
//!
//! Every fast-path task the interface performs is an entry in
//! [`TaskKind`]; its software cost in instructions is a field of
//! [`TaskCosts`] (a *parameter table*, estimated the way the papers of
//! the era did it — from assembly-level pseudo-code — and overridable);
//! a [`HwPartition`] says which tasks have been moved into dedicated
//! hardware, making them free of engine instructions (the hardware
//! latency is modelled where the hardware lives: CRC in the data path,
//! CAM in [`crate::cam`], DMA in [`crate::bus`]).
//!
//! The same tables drive both the closed-form analysis (`hni-analysis`)
//! and the discrete-event pipeline simulations ([`crate::txsim`],
//! [`crate::rxsim`]) — one source of truth, two evaluation methods.

use hni_sim::Duration;

/// Every engine task on the transmit or receive fast path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TaskKind {
    // ---- transmit side ----
    /// Per packet: fetch & validate the descriptor, set up segmentation
    /// state (lengths, VC, AAL trailer skeleton), program the DMA engine.
    TxPacketSetup,
    /// Per DMA burst: manage the host-memory read (addresses, counts).
    TxDmaBurst,
    /// Per cell: advance segmentation pointers, build the cell header,
    /// track remaining length, decide last-cell handling.
    TxCellSegment,
    /// Per cell: fold 48 payload octets into the frame CRC-32 in
    /// software (zero when the CRC assist owns it).
    TxCellCrc,
    /// Per cell: compute the header HEC in software (zero with assist).
    TxHec,
    /// Per packet: close out — final trailer/CRC store into the last
    /// cell, descriptor ring update, host notification.
    TxPacketComplete,
    // ---- receive side ----
    /// Per cell: verify (and possibly correct) the HEC in software.
    RxHec,
    /// Per cell: map VPI/VCI to a connection record in software (hash
    /// probe); zero when the CAM owns it.
    RxVciLookup,
    /// Per cell: append the payload to the connection's reassembly
    /// buffer chain, update valid bits / byte count.
    RxCellEnqueue,
    /// Per cell: fold the payload into the running CRC-32 in software.
    RxCellCrc,
    /// Per packet: end-of-frame validation — length check, CRC residue,
    /// trailer parse.
    RxPacketValidate,
    /// Per DMA burst: manage the host-memory write.
    RxDmaBurst,
    /// Per packet: completion-ring entry, interrupt posting decision.
    RxPacketComplete,
}

impl TaskKind {
    /// All tasks, in presentation order (transmit first).
    pub const ALL: [TaskKind; 13] = [
        TaskKind::TxPacketSetup,
        TaskKind::TxDmaBurst,
        TaskKind::TxCellSegment,
        TaskKind::TxCellCrc,
        TaskKind::TxHec,
        TaskKind::TxPacketComplete,
        TaskKind::RxHec,
        TaskKind::RxVciLookup,
        TaskKind::RxCellEnqueue,
        TaskKind::RxCellCrc,
        TaskKind::RxPacketValidate,
        TaskKind::RxDmaBurst,
        TaskKind::RxPacketComplete,
    ];

    /// Whether this task runs once per cell (vs per packet or per burst).
    pub fn is_per_cell(self) -> bool {
        matches!(
            self,
            TaskKind::TxCellSegment
                | TaskKind::TxCellCrc
                | TaskKind::TxHec
                | TaskKind::RxHec
                | TaskKind::RxVciLookup
                | TaskKind::RxCellEnqueue
                | TaskKind::RxCellCrc
        )
    }

    /// Whether this task runs once per packet.
    pub fn is_per_packet(self) -> bool {
        matches!(
            self,
            TaskKind::TxPacketSetup
                | TaskKind::TxPacketComplete
                | TaskKind::RxPacketValidate
                | TaskKind::RxPacketComplete
        )
    }

    /// Whether this is a transmit-side task.
    pub fn is_tx(self) -> bool {
        matches!(
            self,
            TaskKind::TxPacketSetup
                | TaskKind::TxDmaBurst
                | TaskKind::TxCellSegment
                | TaskKind::TxCellCrc
                | TaskKind::TxHec
                | TaskKind::TxPacketComplete
        )
    }

    /// The telemetry stage tag this task's engine span is recorded
    /// under, for tasks that map one-to-one onto a pipeline stage.
    /// `None` for tasks folded into a bundled span (the CRC and HEC
    /// assists ride inside the per-cell segmentation / receive spans).
    pub fn trace_stage(self) -> Option<hni_telemetry::Stage> {
        use hni_telemetry::Stage;
        match self {
            TaskKind::TxPacketSetup => Some(Stage::TxSetup),
            TaskKind::TxDmaBurst => Some(Stage::TxDmaBurst),
            TaskKind::TxCellSegment => Some(Stage::TxSegment),
            TaskKind::TxCellCrc | TaskKind::TxHec => None,
            TaskKind::TxPacketComplete => Some(Stage::TxComplete),
            TaskKind::RxHec => Some(Stage::RxHec),
            TaskKind::RxVciLookup => Some(Stage::RxCamLookup),
            TaskKind::RxCellEnqueue | TaskKind::RxCellCrc => None,
            TaskKind::RxPacketValidate => Some(Stage::RxValidate),
            TaskKind::RxDmaBurst => Some(Stage::RxDmaBurst),
            TaskKind::RxPacketComplete => Some(Stage::RxComplete),
        }
    }

    /// The profiler component this task's engine time is charged to:
    /// the transmit or receive protocol engine.
    pub fn profile_component(self) -> hni_telemetry::Component {
        if self.is_tx() {
            hni_telemetry::Component::TxEngine
        } else {
            hni_telemetry::Component::RxEngine
        }
    }

    /// Short human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::TxPacketSetup => "tx pkt setup",
            TaskKind::TxDmaBurst => "tx dma burst",
            TaskKind::TxCellSegment => "tx cell segment",
            TaskKind::TxCellCrc => "tx cell crc32",
            TaskKind::TxHec => "tx hec",
            TaskKind::TxPacketComplete => "tx pkt complete",
            TaskKind::RxHec => "rx hec",
            TaskKind::RxVciLookup => "rx vci lookup",
            TaskKind::RxCellEnqueue => "rx cell enqueue",
            TaskKind::RxCellCrc => "rx cell crc32",
            TaskKind::RxPacketValidate => "rx pkt validate",
            TaskKind::RxDmaBurst => "rx dma burst",
            TaskKind::RxPacketComplete => "rx pkt complete",
        }
    }
}

/// Software instruction counts per task — the parameter table the whole
/// evaluation rests on. Estimated at assembly level for a 32-bit RISC
/// with single-cycle ALU ops: loads/stores dominate the list work; the
/// CRC costs assume a byte-at-a-time table loop (≈3 instructions per
/// octet plus loop overhead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskCosts {
    /// Instructions for [`TaskKind::TxPacketSetup`].
    pub tx_packet_setup: u32,
    /// Instructions per DMA burst on transmit.
    pub tx_dma_burst: u32,
    /// Instructions per transmitted cell (segmentation control).
    pub tx_cell_segment: u32,
    /// Instructions per cell of software CRC-32 (48 octets).
    pub tx_cell_crc: u32,
    /// Instructions per cell of software HEC generation.
    pub tx_hec: u32,
    /// Instructions for [`TaskKind::TxPacketComplete`].
    pub tx_packet_complete: u32,
    /// Instructions per cell of software HEC check.
    pub rx_hec: u32,
    /// Instructions per cell of software VCI lookup.
    pub rx_vci_lookup: u32,
    /// Instructions per cell of reassembly list append.
    pub rx_cell_enqueue: u32,
    /// Instructions per cell of software CRC-32 accumulation.
    pub rx_cell_crc: u32,
    /// Instructions for [`TaskKind::RxPacketValidate`].
    pub rx_packet_validate: u32,
    /// Instructions per DMA burst on receive.
    pub rx_dma_burst: u32,
    /// Instructions for [`TaskKind::RxPacketComplete`].
    pub rx_packet_complete: u32,
}

impl Default for TaskCosts {
    fn default() -> Self {
        TaskCosts {
            tx_packet_setup: 60,
            tx_dma_burst: 8,
            tx_cell_segment: 12,
            tx_cell_crc: 150,
            tx_hec: 10,
            tx_packet_complete: 25,
            rx_hec: 12,
            rx_vci_lookup: 25,
            rx_cell_enqueue: 15,
            rx_cell_crc: 150,
            rx_packet_validate: 30,
            rx_dma_burst: 8,
            rx_packet_complete: 40,
        }
    }
}

impl TaskCosts {
    /// Software instruction count for `task`.
    pub fn instructions(&self, task: TaskKind) -> u32 {
        match task {
            TaskKind::TxPacketSetup => self.tx_packet_setup,
            TaskKind::TxDmaBurst => self.tx_dma_burst,
            TaskKind::TxCellSegment => self.tx_cell_segment,
            TaskKind::TxCellCrc => self.tx_cell_crc,
            TaskKind::TxHec => self.tx_hec,
            TaskKind::TxPacketComplete => self.tx_packet_complete,
            TaskKind::RxHec => self.rx_hec,
            TaskKind::RxVciLookup => self.rx_vci_lookup,
            TaskKind::RxCellEnqueue => self.rx_cell_enqueue,
            TaskKind::RxCellCrc => self.rx_cell_crc,
            TaskKind::RxPacketValidate => self.rx_packet_validate,
            TaskKind::RxDmaBurst => self.rx_dma_burst,
            TaskKind::RxPacketComplete => self.rx_packet_complete,
        }
    }
}

/// Which tasks have been moved into dedicated hardware.
///
/// A task in hardware costs the engine zero instructions; its latency is
/// modelled by the hardware component itself (pipelined CRC and HEC
/// assists keep up with the data path by construction; CAM and DMA have
/// their own models).
///
/// Internally a 13-bit set (one bit per [`TaskKind`]), so the partition
/// is `Copy`: simulation configs hand it around by value and per-run
/// engine construction costs nothing — no per-run clone of a task list.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HwPartition {
    hw: u16,
    /// Display name for tables.
    pub name: &'static str,
}

/// The bit assigned to `task` in a partition's task set (declaration
/// order, matching [`TaskKind::ALL`]).
const fn task_bit(task: TaskKind) -> u16 {
    1 << task as u16
}

impl HwPartition {
    /// Everything in engine software — the strawman that shows why
    /// assists exist.
    pub fn all_software() -> Self {
        HwPartition {
            hw: 0,
            name: "all-software",
        }
    }

    /// The architecture's design point: CRC-32, HEC, VCI CAM and the DMA
    /// burst sequencer in hardware; all *control* (segmentation state,
    /// list management, validation, completion) in engine software.
    pub fn paper_split() -> Self {
        HwPartition {
            hw: task_bit(TaskKind::TxCellCrc)
                | task_bit(TaskKind::TxHec)
                | task_bit(TaskKind::RxHec)
                | task_bit(TaskKind::RxCellCrc)
                | task_bit(TaskKind::RxVciLookup)
                | task_bit(TaskKind::TxDmaBurst)
                | task_bit(TaskKind::RxDmaBurst),
            name: "paper-split",
        }
    }

    /// Everything per-cell in hardware; the engine only touches packets.
    /// The upper bound a full-custom datapath would approach.
    pub fn full_hardware() -> Self {
        let hw = TaskKind::ALL
            .into_iter()
            .filter(|t| !t.is_per_packet())
            .fold(0, |acc, t| acc | task_bit(t));
        HwPartition {
            hw,
            name: "full-hardware",
        }
    }

    /// Builder: this partition with `task` additionally in hardware
    /// (for ablation studies walking the design space one assist at a
    /// time). The result is named "custom".
    pub fn plus_hardware(mut self, task: TaskKind) -> Self {
        self.hw |= task_bit(task);
        self.name = "custom";
        self
    }

    /// Is `task` implemented in hardware?
    pub fn in_hardware(&self, task: TaskKind) -> bool {
        self.hw & task_bit(task) != 0
    }

    /// The tasks in hardware, in [`TaskKind::ALL`] order.
    pub fn hardware_tasks(&self) -> impl Iterator<Item = TaskKind> + '_ {
        TaskKind::ALL.into_iter().filter(|&t| self.in_hardware(t))
    }

    /// Engine instructions `task` costs under this partition.
    pub fn engine_instructions(&self, costs: &TaskCosts, task: TaskKind) -> u32 {
        if self.in_hardware(task) {
            0
        } else {
            costs.instructions(task)
        }
    }
}

impl core::fmt::Debug for HwPartition {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HwPartition")
            .field("hw", &self.hardware_tasks().collect::<Vec<_>>())
            .field("name", &self.name)
            .finish()
    }
}

/// The engine itself: a serial processor executing `mips` million
/// instructions per second.
#[derive(Clone, Debug)]
pub struct ProtocolEngine {
    /// Millions of instructions per second the engine sustains.
    pub mips: f64,
    /// The instruction-cost table in force.
    pub costs: TaskCosts,
    /// The hardware/software split in force.
    pub partition: HwPartition,
}

impl ProtocolEngine {
    /// An engine at `mips` with default costs and the given partition.
    /// Takes the partition by reference — constructing an engine per
    /// simulated run copies a small bitmask, nothing more.
    pub fn new(mips: f64, partition: &HwPartition) -> Self {
        assert!(mips > 0.0);
        ProtocolEngine {
            mips,
            costs: TaskCosts::default(),
            partition: *partition,
        }
    }

    /// Time to execute `task` once.
    pub fn task_time(&self, task: TaskKind) -> Duration {
        let instr = self.partition.engine_instructions(&self.costs, task);
        self.instr_time(instr)
    }

    /// Time to execute `instr` instructions.
    pub fn instr_time(&self, instr: u32) -> Duration {
        // instr / (mips · 10⁶ /s) seconds → ps.
        Duration::from_ps(((instr as f64) * 1e6 / self.mips).round() as u64)
    }

    /// Engine instructions consumed per *cell* on the transmit path
    /// (excluding per-packet and per-burst work).
    pub fn tx_per_cell_instructions(&self) -> u32 {
        [
            TaskKind::TxCellSegment,
            TaskKind::TxCellCrc,
            TaskKind::TxHec,
        ]
        .into_iter()
        .map(|t| self.partition.engine_instructions(&self.costs, t))
        .sum()
    }

    /// Engine instructions consumed per *cell* on the receive path.
    pub fn rx_per_cell_instructions(&self) -> u32 {
        [
            TaskKind::RxHec,
            TaskKind::RxVciLookup,
            TaskKind::RxCellEnqueue,
            TaskKind::RxCellCrc,
        ]
        .into_iter()
        .map(|t| self.partition.engine_instructions(&self.costs, t))
        .sum()
    }

    /// Engine instructions consumed per *packet* on transmit (setup +
    /// complete, excluding per-burst DMA management).
    pub fn tx_per_packet_instructions(&self) -> u32 {
        [TaskKind::TxPacketSetup, TaskKind::TxPacketComplete]
            .into_iter()
            .map(|t| self.partition.engine_instructions(&self.costs, t))
            .sum()
    }

    /// Engine instructions consumed per *packet* on receive.
    pub fn rx_per_packet_instructions(&self) -> u32 {
        [TaskKind::RxPacketValidate, TaskKind::RxPacketComplete]
            .into_iter()
            .map(|t| self.partition.engine_instructions(&self.costs, t))
            .sum()
    }

    /// Instructions available per cell slot at the given payload rate —
    /// the budget line every per-cell figure is compared against.
    pub fn instructions_per_slot(&self, slot: Duration) -> f64 {
        self.mips * slot.as_s_f64() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hni_sim::Duration;

    #[test]
    fn per_cell_per_packet_partition_is_complete() {
        for t in TaskKind::ALL {
            let classes = [
                t.is_per_cell(),
                t.is_per_packet(),
                matches!(t, TaskKind::TxDmaBurst | TaskKind::RxDmaBurst),
            ];
            assert_eq!(classes.iter().filter(|&&c| c).count(), 1, "{t:?}");
        }
    }

    #[test]
    fn hardware_tasks_cost_zero() {
        let e = ProtocolEngine::new(25.0, &HwPartition::paper_split());
        assert_eq!(e.task_time(TaskKind::RxCellCrc), Duration::ZERO);
        assert!(e.task_time(TaskKind::RxCellEnqueue) > Duration::ZERO);
    }

    #[test]
    fn task_time_arithmetic() {
        // 25 MIPS → 40 ns per instruction; enqueue = 15 instr = 600 ns.
        let e = ProtocolEngine::new(25.0, &HwPartition::all_software());
        assert_eq!(e.task_time(TaskKind::RxCellEnqueue), Duration::from_ns(600));
    }

    #[test]
    fn partitions_are_ordered_by_cell_cost() {
        let sw = ProtocolEngine::new(25.0, &HwPartition::all_software());
        let split = ProtocolEngine::new(25.0, &HwPartition::paper_split());
        let hw = ProtocolEngine::new(25.0, &HwPartition::full_hardware());
        assert!(sw.rx_per_cell_instructions() > split.rx_per_cell_instructions());
        assert!(split.rx_per_cell_instructions() > hw.rx_per_cell_instructions());
        assert_eq!(hw.rx_per_cell_instructions(), 0);
        assert!(sw.tx_per_cell_instructions() > split.tx_per_cell_instructions());
    }

    #[test]
    fn per_packet_work_never_in_hardware_presets() {
        for p in [
            HwPartition::all_software(),
            HwPartition::paper_split(),
            HwPartition::full_hardware(),
        ] {
            for t in TaskKind::ALL.into_iter().filter(|t| t.is_per_packet()) {
                assert!(!p.in_hardware(t), "{t:?} in {}", p.name);
            }
        }
    }

    #[test]
    fn budget_headline_numbers() {
        // The paper-era headline: a 25 MIPS engine has ~17 instructions
        // per 681.6 ns line-rate cell time at 622 Mb/s.
        let e = ProtocolEngine::new(25.0, &HwPartition::paper_split());
        let budget = e.instructions_per_slot(Duration::from_ps(681_584));
        assert!((budget - 17.04).abs() < 0.01, "{budget}");
        // At 155 Mb/s the same engine has ~68.
        let budget3 = e.instructions_per_slot(Duration::from_ps(2_726_337));
        assert!((budget3 - 68.16).abs() < 0.01, "{budget3}");
    }

    #[test]
    fn split_rx_cell_cost_fits_oc12_budget_but_software_does_not() {
        // The architecture's whole argument, as a test: with assists, the
        // per-cell receive work of a 25 MIPS engine fits in an OC-12 cell
        // slot; all-software doesn't fit even at OC-3.
        let split = ProtocolEngine::new(25.0, &HwPartition::paper_split());
        let sw = ProtocolEngine::new(25.0, &HwPartition::all_software());
        let oc12_budget = split.instructions_per_slot(Duration::from_ps(707_799)); // OC-12 payload slot
        let oc3_budget = sw.instructions_per_slot(Duration::from_ps(2_831_197)); // OC-3 payload slot
        assert!((split.rx_per_cell_instructions() as f64) < oc12_budget);
        assert!((sw.rx_per_cell_instructions() as f64) > oc3_budget);
    }

    #[test]
    fn bundled_tasks_have_no_own_stage() {
        // CRC and HEC assists ride inside the segmentation / per-cell
        // receive spans; everything else tags its own stage.
        for t in TaskKind::ALL {
            let bundled = matches!(
                t,
                TaskKind::TxCellCrc
                    | TaskKind::TxHec
                    | TaskKind::RxCellEnqueue
                    | TaskKind::RxCellCrc
            );
            assert_eq!(t.trace_stage().is_none(), bundled, "{t:?}");
        }
    }

    #[test]
    fn profile_component_follows_direction() {
        use hni_telemetry::Component;
        for t in TaskKind::ALL {
            let expect = if t.is_tx() {
                Component::TxEngine
            } else {
                Component::RxEngine
            };
            assert_eq!(t.profile_component(), expect, "{t:?}");
        }
    }

    #[test]
    fn instructions_lookup_matches_fields() {
        let c = TaskCosts::default();
        assert_eq!(c.instructions(TaskKind::TxPacketSetup), c.tx_packet_setup);
        assert_eq!(
            c.instructions(TaskKind::RxPacketComplete),
            c.rx_packet_complete
        );
    }
}
