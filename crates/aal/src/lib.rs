//! # hni-aal — ATM adaptation layers
//!
//! Segmentation and reassembly between variable-length service data units
//! (SDUs — the packets the host hands the interface) and fixed 48-octet
//! cell payloads. Two adaptation layers are implemented, matching the two
//! the host-interface literature of the era weighs against each other:
//!
//! * [`aal5`] — the Simple and Efficient Adaptation Layer: no per-cell
//!   overhead, an 8-octet CPCS trailer (UU/CPI/Length/CRC-32) in the last
//!   cell, end-of-frame signalled by the PTI user-indication bit. All 48
//!   payload octets carry data → higher efficiency, but errors are only
//!   detected at frame end.
//! * [`aal1`] — AAL1: constant-bit-rate circuit emulation — a 1-octet
//!   SAR header (sequence count protected by CRC-3 + parity) over a
//!   47-octet slice of a byte stream; loss is *detected and compensated*
//!   (fill insertion), never retransmitted, preserving stream timing.
//! * [`aal34`] — AAL3/4: 4 octets of SAR overhead per cell (ST/SN/MID
//!   header, LI/CRC-10 trailer) leaving 44 octets of payload, plus a
//!   CPCS header/trailer (BTag/ETag/BAsize/Length). Costlier, but each
//!   cell is individually checked (CRC-10) and sequence-numbered, errors
//!   are detected mid-frame, and the MID field lets frames from multiple
//!   sources interleave on one VC.
//!
//! The CRCs live in [`crc`]: both a bit-by-bit reference and table-driven
//! implementations, cross-checked in tests (the table version is what the
//! hardware-assist model in `hni-core` charges zero engine instructions
//! for).
//!
//! Reassembly is per-VC (and per-MID for AAL3/4), with an explicit error
//! taxonomy ([`ReassemblyError`]) covering every way a frame can die:
//! CRC failure, length mismatch, sequence gaps, oversize, interleaving
//! violations, and receiver-driven timeout.

pub mod aal1;
pub mod aal34;
pub mod aal5;
pub mod crc;

use core::fmt;
use hni_atm::VcId;

/// Which adaptation layer a connection uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AalType {
    /// AAL5: 48 data octets per cell, frame-level CRC-32.
    Aal5,
    /// AAL3/4: 44 data octets per cell, cell-level CRC-10, MID muxing.
    Aal34,
}

impl AalType {
    /// Data octets carried per cell payload.
    pub fn payload_per_cell(self) -> usize {
        match self {
            AalType::Aal5 => 48,
            AalType::Aal34 => 44,
        }
    }

    /// Number of cells needed to carry an SDU of `len` octets.
    pub fn cells_for_sdu(self, len: usize) -> usize {
        match self {
            // Payload + 8-octet trailer, padded to a multiple of 48.
            AalType::Aal5 => (len + aal5::TRAILER_SIZE).div_ceil(48),
            // CPCS adds 4 header + pad(0..3) + 4 trailer octets, then 44
            // octets ride in each cell.
            AalType::Aal34 => {
                let cpcs = aal34::cpcs_pdu_len(len);
                cpcs.div_ceil(44)
            }
        }
    }

    /// Fraction of link payload capacity that is SDU data for SDUs of
    /// `len` octets (cell payloads only; cell headers are accounted at
    /// the ATM layer).
    pub fn efficiency(self, len: usize) -> f64 {
        let cells = self.cells_for_sdu(len);
        if cells == 0 {
            return 0.0;
        }
        len as f64 / (cells * 48) as f64
    }
}

impl fmt::Display for AalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AalType::Aal5 => write!(f, "AAL5"),
            AalType::Aal34 => write!(f, "AAL3/4"),
        }
    }
}

/// Why a frame under reassembly was abandoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReassemblyError {
    /// Frame-level CRC-32 mismatch (AAL5).
    Crc32,
    /// Cell-level CRC-10 mismatch (AAL3/4).
    Crc10,
    /// Length field disagrees with the octets actually received.
    LengthMismatch,
    /// SAR sequence number discontinuity (AAL3/4) — a cell was lost.
    SequenceGap,
    /// Frame exceeds the receiver's maximum SDU size.
    TooLong,
    /// A continuation/end cell arrived with no frame in progress.
    NoFrameInProgress,
    /// A begin cell arrived while a frame was already in progress
    /// (the in-progress frame is the casualty).
    UnexpectedBegin,
    /// BTag in the CPCS header does not match ETag in the trailer (AAL3/4).
    TagMismatch,
    /// CPCS header/trailer was malformed (AAL3/4).
    MalformedCpcs,
    /// The receiver's reassembly timer expired.
    Timeout,
}

impl fmt::Display for ReassemblyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReassemblyError::Crc32 => "CPCS CRC-32 mismatch",
            ReassemblyError::Crc10 => "SAR CRC-10 mismatch",
            ReassemblyError::LengthMismatch => "length field mismatch",
            ReassemblyError::SequenceGap => "SAR sequence number gap",
            ReassemblyError::TooLong => "frame exceeds maximum SDU size",
            ReassemblyError::NoFrameInProgress => "continuation without begin",
            ReassemblyError::UnexpectedBegin => "begin while frame in progress",
            ReassemblyError::TagMismatch => "BTag/ETag mismatch",
            ReassemblyError::MalformedCpcs => "malformed CPCS envelope",
            ReassemblyError::Timeout => "reassembly timeout",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ReassemblyError {}

/// A successfully reassembled SDU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReassembledSdu {
    /// The VC it arrived on.
    pub vc: VcId,
    /// AAL3/4 multiplexing identifier (0 for AAL5).
    pub mid: u16,
    /// The SDU octets.
    pub data: Vec<u8>,
    /// AAL5 CPCS-UU byte (0 for AAL3/4).
    pub user_to_user: u8,
}

/// A reassembly failure report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReassemblyFailure {
    /// The VC the frame was arriving on.
    pub vc: VcId,
    /// AAL3/4 multiplexing identifier (0 for AAL5).
    pub mid: u16,
    /// What killed the frame.
    pub error: ReassemblyError,
    /// Octets of partial frame discarded.
    pub discarded_octets: usize,
}

/// The outcome of offering one cell to a reassembler.
pub type ReassemblyOutcome = Option<Result<ReassembledSdu, ReassemblyFailure>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_for_sdu_aal5_boundaries() {
        // 40 data + 8 trailer = 48 → exactly 1 cell.
        assert_eq!(AalType::Aal5.cells_for_sdu(40), 1);
        // 41 data + 8 trailer = 49 → 2 cells.
        assert_eq!(AalType::Aal5.cells_for_sdu(41), 2);
        // Classic IP MTU over AAL5: 9180 → (9180+8)/48 → 192 cells.
        assert_eq!(AalType::Aal5.cells_for_sdu(9180), 192);
        // Maximum AAL5 SDU.
        assert_eq!(AalType::Aal5.cells_for_sdu(65535), 1366);
    }

    #[test]
    fn cells_for_sdu_aal34() {
        // 36 data: CPCS = 4 + 36 + 0 pad + 4 = 44 → 1 cell (SSM).
        assert_eq!(AalType::Aal34.cells_for_sdu(36), 1);
        // 37 data: CPCS = 4 + 37 + 3 + 4 = 48 → 2 cells.
        assert_eq!(AalType::Aal34.cells_for_sdu(37), 2);
    }

    #[test]
    fn efficiency_ordering() {
        // AAL5 is strictly more efficient for large frames.
        let e5 = AalType::Aal5.efficiency(9180);
        let e34 = AalType::Aal34.efficiency(9180);
        assert!(e5 > e34, "e5={e5} e34={e34}");
        assert!(e5 > 0.95);
        assert!(e34 < 0.92);
    }

    #[test]
    fn zero_length_sdu_efficiency_is_zero() {
        assert_eq!(AalType::Aal5.efficiency(0), 0.0);
    }
}
