//! AAL3/4 — the heavyweight adaptation layer (ITU-T I.363, types 3/4
//! common part).
//!
//! Every cell carries 4 octets of SAR overhead around 44 octets of
//! payload:
//!
//! ```text
//!  SAR-PDU (48 octets = one cell payload)
//! ┌────┬────┬─────┬──────────────────┬────┬────────┐
//! │ ST │ SN │ MID │     payload      │ LI │ CRC-10 │
//! │ 2b │ 4b │ 10b │    44 octets     │ 6b │  10b   │
//! └────┴────┴─────┴──────────────────┴────┴────────┘
//! ```
//!
//! * **ST** segment type: BOM (begin), COM (continue), EOM (end), SSM
//!   (single-segment message).
//! * **SN** 4-bit sequence number, continuous per (VC, MID) stream —
//!   detects individual lost cells *immediately*, unlike AAL5.
//! * **MID** multiplexing identifier: frames from up to 1024 sources may
//!   interleave on one VC.
//! * **CRC-10** per cell: corruption is caught per cell, so a damaged
//!   frame is abandoned early instead of hauling dead cells to frame end.
//!
//! The CPCS-PDU wraps the SDU with a 4-octet header (CPI, BTag, BAsize)
//! and 4-octet trailer (AL, ETag, Length), padded to 32-bit alignment.
//! BTag must equal ETag — a second, independent guard against frame
//! merging.
//!
//! The cost of all this armour: 44/48 payload ratio and ~4 octets CPCS
//! envelope — the efficiency the R-F5 experiment trades off against
//! AAL5's fragility under loss.

use crate::crc::crc10;
use crate::{ReassembledSdu, ReassemblyError, ReassemblyFailure, ReassemblyOutcome};
use hni_atm::{Cell, CellRef, CellSlab, HeaderRepr, VcId, VcTable, PAYLOAD_SIZE};
use hni_sim::{Duration, Time};

/// SAR payload octets per cell.
pub const SAR_PAYLOAD: usize = 44;
/// CPCS header + trailer octets.
pub const CPCS_ENVELOPE: usize = 8;
/// Largest SDU (16-bit CPCS length field).
pub const MAX_SDU: usize = 65535;
/// Number of distinct MID values.
pub const MID_VALUES: u16 = 1024;

/// Segment type field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentType {
    /// Beginning of message.
    Bom,
    /// Continuation of message.
    Com,
    /// End of message.
    Eom,
    /// Single-segment message.
    Ssm,
}

impl SegmentType {
    fn to_bits(self) -> u8 {
        match self {
            SegmentType::Com => 0b00,
            SegmentType::Eom => 0b01,
            SegmentType::Bom => 0b10,
            SegmentType::Ssm => 0b11,
        }
    }
    fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => SegmentType::Com,
            0b01 => SegmentType::Eom,
            0b10 => SegmentType::Bom,
            _ => SegmentType::Ssm,
        }
    }
}

/// Decoded SAR-PDU fields (zero-copy view over the 48 payload octets).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SarPdu {
    /// Segment type.
    pub st: SegmentType,
    /// Sequence number (4 bits).
    pub sn: u8,
    /// Multiplexing identifier (10 bits).
    pub mid: u16,
    /// Length indicator: valid octets in the payload field.
    pub li: u8,
}

impl SarPdu {
    /// Parse the SAR fields from a 48-octet cell payload, verifying the
    /// CRC-10. Returns `None` on CRC failure.
    pub fn parse(payload48: &[u8]) -> Option<(SarPdu, [u8; SAR_PAYLOAD])> {
        debug_assert_eq!(payload48.len(), PAYLOAD_SIZE);
        if crc10(payload48) != 0 {
            return None;
        }
        let st = SegmentType::from_bits(payload48[0] >> 6);
        let sn = (payload48[0] >> 2) & 0x0F;
        let mid = (((payload48[0] & 0b11) as u16) << 8) | payload48[1] as u16;
        let li = payload48[46] >> 2;
        let mut body = [0u8; SAR_PAYLOAD];
        body.copy_from_slice(&payload48[2..46]);
        Some((SarPdu { st, sn, mid, li }, body))
    }

    /// Emit a complete 48-octet SAR-PDU (computes the CRC-10).
    pub fn emit(&self, body: &[u8; SAR_PAYLOAD]) -> [u8; PAYLOAD_SIZE] {
        let mut out = [0u8; PAYLOAD_SIZE];
        out[0] =
            (self.st.to_bits() << 6) | ((self.sn & 0x0F) << 2) | ((self.mid >> 8) as u8 & 0b11);
        out[1] = self.mid as u8;
        out[2..46].copy_from_slice(body);
        out[46] = self.li << 2;
        out[47] = 0;
        // The CRC covers the 374 bits preceding it (header, payload, LI).
        let c = crate::crc::crc10_bits(&out, 46 * 8 + 6);
        out[46] |= (c >> 8) as u8;
        out[47] = c as u8;
        out
    }
}

/// CPCS-PDU length (multiple of 4) for an SDU of `len` octets:
/// 4-octet header + padded payload + 4-octet trailer.
pub fn cpcs_pdu_len(len: usize) -> usize {
    CPCS_ENVELOPE + len.div_ceil(4) * 4
}

/// Pack a (VC, MID) stream identity into one [`VcTable`] key: the
/// 24-bit cam key shifted above the 10-bit MID. Unique by construction
/// (MID < 1024 is asserted at every entry point).
#[inline]
fn stream_key(vc: VcId, mid: u16) -> u64 {
    debug_assert!(mid < MID_VALUES);
    ((vc.cam_key() as u64) << 10) | mid as u64
}

/// Recover the (VC, MID) pair from a [`stream_key`].
#[inline]
fn stream_unkey(key: u64) -> (VcId, u16) {
    (
        VcId::new((key >> 26) as u16, (key >> 10) as u16),
        (key & 0x3FF) as u16,
    )
}

/// The AAL3/4 segmenter. Stateful: sequence numbers run continuously per
/// (VC, MID) stream and BTag/ETag values increment per frame, as a real
/// transmitter's would.
#[derive(Default)]
pub struct Aal34Segmenter {
    /// Per-(VC, MID) transmit counters in the sharded VC table (the SN
    /// runs per cell, the BTag/ETag per frame).
    streams: VcTable<MidState>,
    /// Reusable CPCS build buffer: after the first frame of the working
    /// set, segmentation allocates nothing per frame (and nothing per
    /// cell on the slab path).
    cpcs: Vec<u8>,
}

impl Aal34Segmenter {
    /// New segmenter with all sequence numbers at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Segment `sdu` for transmission on `vc` with multiplexing id `mid`.
    ///
    /// # Panics
    /// If `sdu.len() > MAX_SDU` or `mid >= 1024`.
    pub fn segment(&mut self, vc: VcId, mid: u16, sdu: &[u8]) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(crate::AalType::Aal34.cells_for_sdu(sdu.len()));
        self.segment_with(vc, mid, sdu, |header, payload| {
            cells.push(
                Cell::new(header, payload).expect("UNI header for user VC is always encodable"),
            );
        });
        cells
    }

    /// Segment into slab-backed cells, appending one [`CellRef`] per cell
    /// to `out`. Byte-identical to [`Aal34Segmenter::segment`] (same
    /// core); zero heap allocations per cell on a warmed-up slab.
    pub fn segment_into(
        &mut self,
        vc: VcId,
        mid: u16,
        sdu: &[u8],
        slab: &mut CellSlab,
        out: &mut Vec<CellRef>,
    ) {
        self.segment_with(vc, mid, sdu, |header, payload| {
            let (r, cell) = slab.alloc_mut();
            cell.set_header(header)
                .expect("UNI header for user VC is always encodable");
            cell.payload_mut().copy_from_slice(payload);
            out.push(r);
        });
    }

    /// Segment a burst of SDUs (all on `vc`/`mid`) into the slab in one
    /// call; handles are appended to `out` in SDU order.
    pub fn segment_burst(
        &mut self,
        vc: VcId,
        mid: u16,
        sdus: &[&[u8]],
        slab: &mut CellSlab,
        out: &mut Vec<CellRef>,
    ) {
        for sdu in sdus {
            self.segment_into(vc, mid, sdu, slab, out);
        }
    }

    /// The segmentation core shared by the `Vec<Cell>` and slab paths:
    /// builds the CPCS-PDU in the reusable scratch buffer and emits each
    /// SAR-PDU through `emit`.
    fn segment_with(
        &mut self,
        vc: VcId,
        mid: u16,
        sdu: &[u8],
        mut emit: impl FnMut(&HeaderRepr, &[u8; PAYLOAD_SIZE]),
    ) {
        assert!(sdu.len() <= MAX_SDU, "SDU exceeds AAL3/4 maximum");
        assert!(mid < MID_VALUES, "MID is a 10-bit field");
        let key = stream_key(vc, mid);

        let tag = {
            let (_, st) = self
                .streams
                .get_or_insert_with(key, MidState::default)
                .expect("unbounded table never refuses");
            let cur = st.tag;
            st.tag = st.tag.wrapping_add(1);
            cur
        };

        // Build the CPCS-PDU.
        let pad = (4 - sdu.len() % 4) % 4;
        let mut cpcs = std::mem::take(&mut self.cpcs);
        cpcs.clear();
        cpcs.push(0); // CPI = 0
        cpcs.push(tag); // BTag
        cpcs.extend_from_slice(&(sdu.len() as u16).to_be_bytes()); // BAsize
        cpcs.extend_from_slice(sdu);
        cpcs.extend(std::iter::repeat_n(0u8, pad));
        cpcs.push(0); // AL
        cpcs.push(tag); // ETag
        cpcs.extend_from_slice(&(sdu.len() as u16).to_be_bytes()); // Length
        debug_assert_eq!(cpcs.len(), cpcs_pdu_len(sdu.len()));

        // Slice into SAR payloads.
        let n = cpcs.len().div_ceil(SAR_PAYLOAD);
        for (i, chunk) in cpcs.chunks(SAR_PAYLOAD).enumerate() {
            let st = match (n, i) {
                (1, _) => SegmentType::Ssm,
                (_, 0) => SegmentType::Bom,
                (_, i) if i == n - 1 => SegmentType::Eom,
                _ => SegmentType::Com,
            };
            let sn = {
                let st = self
                    .streams
                    .get_mut_by_key(key)
                    .expect("stream state installed above");
                let cur = st.sn;
                st.sn = (st.sn + 1) & 0x0F;
                cur
            };
            let mut body = [0u8; SAR_PAYLOAD];
            body[..chunk.len()].copy_from_slice(chunk);
            let sar = SarPdu {
                st,
                sn,
                mid,
                li: chunk.len() as u8,
            };
            let payload = sar.emit(&body);
            // AAL3/4 does not use the PTI end bit; all cells are plain data.
            emit(&HeaderRepr::data(vc, false), &payload);
        }
        self.cpcs = cpcs; // hand the scratch buffer back for reuse
    }
}

/// Per-(VC, MID) transmit-side counters.
#[derive(Default)]
struct MidState {
    sn: u8,
    tag: u8,
}

struct FrameState {
    buf: Vec<u8>,
    next_sn: u8,
    started_at: Time,
}

/// The AAL3/4 reassembler: per-(VC, MID) state machines with CRC-10,
/// sequence-number, tag and length validation.
pub struct Aal34Reassembler {
    /// In-progress frames, keyed by [`stream_key`] in the sharded VC
    /// table — AAL3/4's 1024-way MID interleave multiplies the live key
    /// count, which is exactly what the table is built to absorb.
    frames: VcTable<FrameState>,
    max_sdu: usize,
    timeout: Duration,
    completed: u64,
    failed: u64,
    crc_discards: u64,
}

impl Aal34Reassembler {
    /// A reassembler accepting SDUs up to `max_sdu` octets, abandoning
    /// frames older than `timeout`.
    pub fn new(max_sdu: usize, timeout: Duration) -> Self {
        Aal34Reassembler {
            frames: VcTable::new(),
            max_sdu: max_sdu.min(MAX_SDU),
            timeout,
            completed: 0,
            failed: 0,
            crc_discards: 0,
        }
    }

    /// Frames successfully delivered.
    pub fn completed(&self) -> u64 {
        self.completed
    }
    /// Frames abandoned (all causes).
    pub fn failed(&self) -> u64 {
        self.failed
    }
    /// Cells dropped on CRC-10 alone (may or may not have killed a frame).
    pub fn crc_discards(&self) -> u64 {
        self.crc_discards
    }
    /// (VC, MID) streams with a frame in progress.
    pub fn in_progress(&self) -> usize {
        self.frames.len()
    }
    /// Octets currently buffered.
    pub fn buffered_octets(&self) -> usize {
        self.frames.iter().map(|(_, f)| f.buf.len()).sum()
    }

    /// Probe/memory statistics of the backing [`VcTable`].
    pub fn table_stats(&self) -> hni_atm::TableStats {
        self.frames.stats()
    }

    fn fail(
        &mut self,
        key: (VcId, u16),
        error: ReassemblyError,
        extra_octets: usize,
    ) -> ReassemblyOutcome {
        let discarded = self
            .frames
            .remove(stream_key(key.0, key.1))
            .map(|f| f.buf.len())
            .unwrap_or(0)
            + extra_octets;
        self.failed += 1;
        Some(Err(ReassemblyFailure {
            vc: key.0,
            mid: key.1,
            error,
            discarded_octets: discarded,
        }))
    }

    /// Offer one cell.
    pub fn push(&mut self, cell: &Cell, now: Time) -> ReassemblyOutcome {
        let header = match cell.header() {
            Ok(h) => h,
            Err(_) => return None,
        };
        if !header.pti.is_user_data() {
            return None;
        }
        let vc = header.vc();

        let Some((sar, body)) = SarPdu::parse(cell.payload()) else {
            // CRC-10 failure: we cannot even trust the MID field. The cell
            // is dropped; any in-progress frame on this VC will be caught
            // by its SN check or timeout. This mirrors the hardware, which
            // discards the cell before demultiplexing.
            self.crc_discards += 1;
            return None;
        };
        let key = (vc, sar.mid);
        let skey = stream_key(vc, sar.mid);

        match sar.st {
            SegmentType::Ssm => {
                let mut outcome = None;
                if self.frames.find(skey).is_some() {
                    outcome = self.fail(key, ReassemblyError::UnexpectedBegin, 0);
                }
                let li = sar.li as usize;
                if !(CPCS_ENVELOPE..=SAR_PAYLOAD).contains(&li) {
                    return self.fail(key, ReassemblyError::MalformedCpcs, li);
                }
                let res = self.validate_cpcs(key, body[..li].to_vec());
                // If we had to kill an in-progress frame, that report takes
                // precedence; the SSM result is still produced next push in
                // real streams — here we privilege the failure report.
                outcome.or(res)
            }
            SegmentType::Bom => {
                let mut first_failure = None;
                if self.frames.find(skey).is_some() {
                    first_failure = self.fail(key, ReassemblyError::UnexpectedBegin, 0);
                }
                if sar.li as usize != SAR_PAYLOAD {
                    return first_failure.or_else(|| {
                        self.fail(key, ReassemblyError::MalformedCpcs, sar.li as usize)
                    });
                }
                self.frames.insert(
                    skey,
                    FrameState {
                        buf: body.to_vec(),
                        next_sn: (sar.sn + 1) & 0x0F,
                        started_at: now,
                    },
                );
                first_failure
            }
            SegmentType::Com | SegmentType::Eom => {
                let Some(frame) = self.frames.get_mut_by_key(skey) else {
                    return self.fail(key, ReassemblyError::NoFrameInProgress, sar.li as usize);
                };
                if sar.sn != frame.next_sn {
                    return self.fail(key, ReassemblyError::SequenceGap, 0);
                }
                frame.next_sn = (sar.sn + 1) & 0x0F;

                let li = sar.li as usize;
                match sar.st {
                    SegmentType::Com => {
                        if li != SAR_PAYLOAD {
                            return self.fail(key, ReassemblyError::MalformedCpcs, 0);
                        }
                        frame.buf.extend_from_slice(&body);
                        if frame.buf.len() > cpcs_pdu_len(self.max_sdu) {
                            return self.fail(key, ReassemblyError::TooLong, 0);
                        }
                        None
                    }
                    SegmentType::Eom => {
                        if !(4..=SAR_PAYLOAD).contains(&li) {
                            return self.fail(key, ReassemblyError::MalformedCpcs, 0);
                        }
                        frame.buf.extend_from_slice(&body[..li]);
                        let frame = self.frames.remove(skey).expect("frame just updated");
                        self.validate_cpcs(key, frame.buf)
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Validate a complete CPCS-PDU and produce the SDU.
    fn validate_cpcs(&mut self, key: (VcId, u16), cpcs: Vec<u8>) -> ReassemblyOutcome {
        if cpcs.len() < CPCS_ENVELOPE || !cpcs.len().is_multiple_of(4) {
            self.failed += 1;
            return Some(Err(ReassemblyFailure {
                vc: key.0,
                mid: key.1,
                error: ReassemblyError::MalformedCpcs,
                discarded_octets: cpcs.len(),
            }));
        }
        let cpi = cpcs[0];
        let btag = cpcs[1];
        let basize = u16::from_be_bytes([cpcs[2], cpcs[3]]) as usize;
        let t = &cpcs[cpcs.len() - 4..];
        let _al = t[0];
        let etag = t[1];
        let length = u16::from_be_bytes([t[2], t[3]]) as usize;

        let fail = |error| {
            Some(Err(ReassemblyFailure {
                vc: key.0,
                mid: key.1,
                error,
                discarded_octets: cpcs.len(),
            }))
        };
        if cpi != 0 {
            self.failed += 1;
            return fail(ReassemblyError::MalformedCpcs);
        }
        if btag != etag {
            self.failed += 1;
            return fail(ReassemblyError::TagMismatch);
        }
        if length > self.max_sdu || basize < length || cpcs_pdu_len(length) != cpcs.len() {
            self.failed += 1;
            return fail(ReassemblyError::LengthMismatch);
        }

        self.completed += 1;
        Some(Ok(ReassembledSdu {
            vc: key.0,
            mid: key.1,
            data: cpcs[4..4 + length].to_vec(),
            user_to_user: 0,
        }))
    }

    /// Offer a burst of slab-backed cells, appending every completed SDU
    /// or failure report to `out` in arrival order (the batched
    /// counterpart of per-cell [`Aal34Reassembler::push`]).
    pub fn deliver_burst(
        &mut self,
        refs: &[CellRef],
        slab: &CellSlab,
        now: Time,
        out: &mut Vec<Result<ReassembledSdu, ReassemblyFailure>>,
    ) {
        for &r in refs {
            if let Some(outcome) = self.push(slab.get(r), now) {
                out.push(outcome);
            }
        }
    }

    /// Abandon timed-out frames.
    pub fn expire(&mut self, now: Time) -> Vec<ReassemblyFailure> {
        let timeout = self.timeout;
        let expired: Vec<u64> = self
            .frames
            .iter()
            .filter(|(_, f)| now.saturating_since(f.started_at) > timeout)
            .map(|(k, _)| k)
            .collect();
        expired
            .into_iter()
            .map(|key| {
                let f = self.frames.remove(key).expect("key from iteration");
                self.failed += 1;
                let (vc, mid) = stream_unkey(key);
                ReassemblyFailure {
                    vc,
                    mid,
                    error: ReassemblyError::Timeout,
                    discarded_octets: f.buf.len(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VcId {
        VcId::new(2, 200)
    }

    fn reasm() -> Aal34Reassembler {
        Aal34Reassembler::new(MAX_SDU, Duration::from_ms(10))
    }

    fn roundtrip(sdu: &[u8]) -> ReassembledSdu {
        let mut seg = Aal34Segmenter::new();
        let cells = seg.segment(vc(), 7, sdu);
        let mut r = reasm();
        let mut done = None;
        for c in &cells {
            if let Some(out) = r.push(c, Time::ZERO) {
                done = Some(out);
            }
        }
        done.expect("frame should complete")
            .expect("frame should be valid")
    }

    #[test]
    fn roundtrip_multi_cell() {
        let sdu: Vec<u8> = (0..500).map(|i| i as u8).collect();
        let out = roundtrip(&sdu);
        assert_eq!(out.data, sdu);
        assert_eq!(out.mid, 7);
    }

    #[test]
    fn roundtrip_single_segment() {
        // ≤36 octets fits in one SSM cell.
        let sdu = b"ssm fits in one cell";
        let out = roundtrip(sdu);
        assert_eq!(out.data, sdu);
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(roundtrip(&[]).data, Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_boundaries() {
        for len in [35, 36, 37, 79, 80, 81, 100, 1000] {
            let sdu: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            assert_eq!(roundtrip(&sdu).data, sdu, "len {len}");
        }
    }

    #[test]
    fn segment_types_correct() {
        let mut seg = Aal34Segmenter::new();
        let cells = seg.segment(vc(), 0, &[0u8; 200]); // CPCS 208 → 5 cells
        let sts: Vec<SegmentType> = cells
            .iter()
            .map(|c| SarPdu::parse(c.payload()).unwrap().0.st)
            .collect();
        assert_eq!(sts[0], SegmentType::Bom);
        assert_eq!(*sts.last().unwrap(), SegmentType::Eom);
        assert!(sts[1..sts.len() - 1]
            .iter()
            .all(|&st| st == SegmentType::Com));
    }

    #[test]
    fn sequence_numbers_continuous_mod_16() {
        let mut seg = Aal34Segmenter::new();
        let cells = seg.segment(vc(), 0, &[0u8; 2000]);
        let sns: Vec<u8> = cells
            .iter()
            .map(|c| SarPdu::parse(c.payload()).unwrap().0.sn)
            .collect();
        for (i, &sn) in sns.iter().enumerate() {
            assert_eq!(sn, (i % 16) as u8);
        }
        // SN continues across frames on the same (vc, mid).
        let more = seg.segment(vc(), 0, &[0u8; 44]);
        let first_sn = SarPdu::parse(more[0].payload()).unwrap().0.sn;
        assert_eq!(first_sn as usize, sns.len() % 16);
    }

    #[test]
    fn lost_com_cell_detected_as_gap() {
        let mut seg = Aal34Segmenter::new();
        let cells = seg.segment(vc(), 3, &[1u8; 500]);
        let mut r = reasm();
        let mut outcome = None;
        for (i, c) in cells.iter().enumerate() {
            if i == 2 {
                continue;
            }
            if let Some(o) = r.push(c, Time::ZERO) {
                outcome = Some(o);
                break;
            }
        }
        // Detected at the very next cell — not at frame end.
        let failure = outcome.unwrap().unwrap_err();
        assert_eq!(failure.error, ReassemblyError::SequenceGap);
        assert_eq!(failure.mid, 3);
    }

    #[test]
    fn corrupted_cell_dropped_by_crc10() {
        let mut seg = Aal34Segmenter::new();
        let mut cells = seg.segment(vc(), 0, &[2u8; 500]);
        cells[1].payload_mut()[10] ^= 0x40;
        let mut r = reasm();
        let mut failure = None;
        for c in &cells {
            if let Some(Err(f)) = r.push(c, Time::ZERO) {
                failure = Some(f);
                break;
            }
        }
        // The corrupt cell is silently dropped (CRC-10), and the *next*
        // cell trips the sequence-number check.
        assert_eq!(r.crc_discards(), 1);
        assert_eq!(failure.unwrap().error, ReassemblyError::SequenceGap);
    }

    #[test]
    fn interleaved_mids_on_one_vc() {
        // The whole point of the MID field: two frames interleave on one
        // VC and both reassemble.
        let mut seg = Aal34Segmenter::new();
        let sdu_a: Vec<u8> = vec![0xAA; 300];
        let sdu_b: Vec<u8> = vec![0xBB; 300];
        let ca = seg.segment(vc(), 1, &sdu_a);
        let cb = seg.segment(vc(), 2, &sdu_b);
        let mut r = reasm();
        let mut got = Vec::new();
        for i in 0..ca.len().max(cb.len()) {
            for cells in [&ca, &cb] {
                if let Some(c) = cells.get(i) {
                    if let Some(Ok(sdu)) = r.push(c, Time::ZERO) {
                        got.push(sdu);
                    }
                }
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got.iter().find(|s| s.mid == 1).unwrap().data, sdu_a);
        assert_eq!(got.iter().find(|s| s.mid == 2).unwrap().data, sdu_b);
    }

    #[test]
    fn com_without_bom_rejected() {
        let mut seg = Aal34Segmenter::new();
        let cells = seg.segment(vc(), 0, &[1u8; 500]);
        let mut r = reasm();
        let out = r.push(&cells[1], Time::ZERO); // a COM cell, no BOM
        assert_eq!(
            out.unwrap().unwrap_err().error,
            ReassemblyError::NoFrameInProgress
        );
    }

    #[test]
    fn bom_during_frame_reports_unexpected_begin() {
        let mut seg = Aal34Segmenter::new();
        let f1 = seg.segment(vc(), 0, &[1u8; 500]);
        let f2 = seg.segment(vc(), 0, &[2u8; 500]);
        let mut r = reasm();
        r.push(&f1[0], Time::ZERO);
        r.push(&f1[1], Time::ZERO);
        let out = r.push(&f2[0], Time::ZERO); // new BOM mid-frame
        assert_eq!(
            out.unwrap().unwrap_err().error,
            ReassemblyError::UnexpectedBegin
        );
        // ... and the new frame proceeds normally afterwards.
        let mut done = None;
        for c in &f2[1..] {
            if let Some(o) = r.push(c, Time::ZERO) {
                done = Some(o);
            }
        }
        assert_eq!(done.unwrap().unwrap().data, vec![2u8; 500]);
    }

    #[test]
    fn tag_mismatch_detected() {
        // Craft a frame whose EOM carries a different ETag by splicing
        // cells from two frames at the right SN offset: frame A's BOM/COMs
        // with frame B's EOM won't have matching tags. Simpler: corrupt
        // the ETag octet and re-CRC the cell.
        let mut seg = Aal34Segmenter::new();
        let cells = seg.segment(vc(), 0, &[3u8; 100]); // CPCS 108 → 3 cells
        let mut r = reasm();
        r.push(&cells[0], Time::ZERO);
        r.push(&cells[1], Time::ZERO);
        // Rebuild the EOM with a tampered ETag.
        let (sar, mut body) = SarPdu::parse(cells[2].payload()).unwrap();
        // CPCS so far: 88 octets in BOM+COM; EOM carries the remaining 20:
        // 16 payload+pad, then AL, ETag, Length(2). ETag is at offset
        // li-3 within the body.
        let etag_off = sar.li as usize - 3;
        body[etag_off] ^= 0xFF;
        let new_payload = sar.emit(&body);
        let mut tampered = cells[2].clone();
        tampered.payload_mut().copy_from_slice(&new_payload);
        let out = r.push(&tampered, Time::ZERO);
        assert_eq!(
            out.unwrap().unwrap_err().error,
            ReassemblyError::TagMismatch
        );
    }

    #[test]
    fn timeout_expires_stalled_frames() {
        let mut seg = Aal34Segmenter::new();
        let cells = seg.segment(vc(), 5, &[1u8; 500]);
        let mut r = Aal34Reassembler::new(MAX_SDU, Duration::from_us(50));
        r.push(&cells[0], Time::ZERO);
        let fails = r.expire(Time::from_us(100));
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].error, ReassemblyError::Timeout);
        assert_eq!(fails[0].mid, 5);
    }

    #[test]
    fn sar_pdu_field_roundtrip() {
        for (st, sn, mid, li) in [
            (SegmentType::Bom, 0u8, 0u16, 44u8),
            (SegmentType::Com, 15, 1023, 44),
            (SegmentType::Eom, 7, 512, 4),
            (SegmentType::Ssm, 3, 999, 36),
        ] {
            let body = [0x5Au8; SAR_PAYLOAD];
            let pdu = SarPdu { st, sn, mid, li };
            let bytes = pdu.emit(&body);
            let (parsed, pbody) = SarPdu::parse(&bytes).expect("CRC must verify");
            assert_eq!(parsed, pdu);
            assert_eq!(pbody, body);
        }
    }

    #[test]
    fn slab_path_matches_vec_path_byte_for_byte() {
        for len in [0usize, 1, 36, 37, 80, 500, 2000] {
            let sdu: Vec<u8> = (0..len).map(|i| (i * 11 % 256) as u8).collect();
            // Two segmenters in the same state produce the same SN/tag
            // sequences; one drives the Vec path, one the slab path.
            let mut seg_a = Aal34Segmenter::new();
            let mut seg_b = Aal34Segmenter::new();
            let vec_cells = seg_a.segment(vc(), 9, &sdu);
            let mut slab = CellSlab::new();
            let mut refs = Vec::new();
            seg_b.segment_into(vc(), 9, &sdu, &mut slab, &mut refs);
            assert_eq!(vec_cells.len(), refs.len(), "len {len}");
            for (c, &r) in vec_cells.iter().zip(&refs) {
                assert_eq!(c.as_bytes(), slab.get(r).as_bytes(), "len {len}");
            }
        }
    }

    #[test]
    fn deliver_burst_roundtrip() {
        let sdu: Vec<u8> = (0..700).map(|i| (i % 250) as u8).collect();
        let mut seg = Aal34Segmenter::new();
        let mut slab = CellSlab::new();
        let mut refs = Vec::new();
        seg.segment_burst(vc(), 4, &[&sdu, &sdu], &mut slab, &mut refs);
        let mut r = reasm();
        let mut out = Vec::new();
        r.deliver_burst(&refs, &slab, Time::ZERO, &mut out);
        assert_eq!(out.len(), 2);
        for o in out {
            assert_eq!(o.expect("valid frame").data, sdu);
        }
    }

    #[test]
    fn max_sdu_enforced() {
        let mut seg = Aal34Segmenter::new();
        let cells = seg.segment(vc(), 0, &vec![0u8; 5000]);
        let mut r = Aal34Reassembler::new(1000, Duration::from_ms(1));
        let mut failure = None;
        for c in &cells {
            if let Some(Err(f)) = r.push(c, Time::ZERO) {
                failure = Some(f);
                break;
            }
        }
        assert_eq!(failure.unwrap().error, ReassemblyError::TooLong);
    }
}
