//! CRC-10 (AAL3/4 SAR) and CRC-32 (AAL5 CPCS).
//!
//! Each CRC ships in two forms: a bit-by-bit *reference* implementation
//! transcribed directly from the polynomial arithmetic, and a table-driven
//! implementation used everywhere else. Tests assert they agree on random
//! inputs; the reference exists so that the fast path is checkable against
//! something independently convincing.
//!
//! * **CRC-10** — re-exported from [`hni_atm::crc10`] (the ATM layer
//!   owns it: OAM trailers use the same code). Computed over the whole
//!   SAR-PDU with the CRC field zeroed (I.363 §2).
//! * **CRC-32** — g(x) = the IEEE 802.3 polynomial, MSB-first
//!   (non-reflected), initial value all-ones, final complement — the
//!   AAL5 convention (I.363.5). Note this is *not* the reflected
//!   Ethernet-software convention; bit order matters.

// CRC-10 lives in `hni_atm::crc10` (the OAM trailer uses it too);
// re-exported here because the AAL3/4 SAR trailer is its other consumer
// and existing code imports it from this module.
pub use hni_atm::crc10::{crc10, crc10_bits, crc10_reference, POLY10};

/// CRC-32 polynomial, MSB-first (x³² implicit).
pub const POLY32: u32 = 0x04C1_1DB7;

/// Bit-by-bit CRC-32 reference (MSB-first, init all-ones, final
/// complement — the AAL5 convention).
pub fn crc32_reference(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        for i in (0..8).rev() {
            let bit = ((byte >> i) & 1) as u32;
            let top = (crc >> 31) & 1;
            crc <<= 1;
            if top ^ bit != 0 {
                crc ^= POLY32;
            }
        }
    }
    !crc
}

/// Slicing-by-8 tables (MSB-first form). `CRC32_TABLES[0]` is the
/// classic byte-at-a-time table; `CRC32_TABLES[k][b]` is the
/// contribution of byte value `b` sitting `k` positions earlier in an
/// 8-byte chunk (`CRC32_TABLES[k-1][b]` advanced through one zero
/// byte). Eight bytes then fold as eight *independent* lookups XORed
/// together — no serial dependency between table walks.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u32) << 24;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 0x8000_0000 != 0 {
                (crc << 1) ^ POLY32
            } else {
                crc << 1
            };
            b += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev << 8) ^ t[0][(prev >> 24) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

/// The byte-at-a-time table, kept under its historical name for the pin
/// tests and the remainder loop.
const CRC32_TABLE: [u32; 256] = CRC32_TABLES[0];

/// Fold `data` into a raw (un-complemented) CRC-32 state, eight bytes
/// per step where possible.
#[inline]
fn crc32_fold(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        crc = CRC32_TABLES[7][(c[0] ^ (crc >> 24) as u8) as usize]
            ^ CRC32_TABLES[6][(c[1] ^ (crc >> 16) as u8) as usize]
            ^ CRC32_TABLES[5][(c[2] ^ (crc >> 8) as u8) as usize]
            ^ CRC32_TABLES[4][(c[3] ^ crc as u8) as usize]
            ^ CRC32_TABLES[3][c[4] as usize]
            ^ CRC32_TABLES[2][c[5] as usize]
            ^ CRC32_TABLES[1][c[6] as usize]
            ^ CRC32_TABLES[0][c[7] as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc << 8) ^ CRC32_TABLE[(((crc >> 24) as u8) ^ byte) as usize];
    }
    crc
}

/// Table-driven CRC-32 (AAL5 convention), slice-by-8.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_fold(0xFFFF_FFFF, data)
}

/// Incremental CRC-32 for streaming use (segmentation computes the frame
/// CRC as cells are produced, never needing the whole frame in one
/// buffer — exactly what the adaptor hardware does).
#[derive(Clone, Copy, Debug)]
pub struct Crc32Accumulator {
    state: u32,
}

impl Default for Crc32Accumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32Accumulator {
    /// Fresh accumulator (all-ones preset).
    pub fn new() -> Self {
        Crc32Accumulator { state: 0xFFFF_FFFF }
    }

    /// Fold in more octets (slice-by-8 kernel; chunk boundaries do not
    /// affect the result).
    pub fn update(&mut self, data: &[u8]) {
        self.state = crc32_fold(self.state, data);
    }

    /// Final CRC value (complemented). The accumulator may keep being
    /// updated afterwards; `finish` is non-destructive.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic byte generator (avoid dev-dep cycles).
    fn pseudo_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn crc10_table_matches_reference() {
        for seed in 0..50u64 {
            let data = pseudo_bytes(seed, (seed as usize % 96) + 1);
            assert_eq!(crc10(&data), crc10_reference(&data), "seed {seed}");
        }
    }

    #[test]
    fn crc32_table_matches_reference() {
        for seed in 0..50u64 {
            let data = pseudo_bytes(seed + 1000, (seed as usize % 200) + 1);
            assert_eq!(crc32(&data), crc32_reference(&data), "seed {seed}");
        }
    }

    /// Pin the CRC-32 table against published vectors, independently of
    /// the in-repo reference: AAL5's CRC-32 is the MSB-first form (init
    /// all-ones, complemented result — the CRC-32/BZIP2 parameters over
    /// the standard 0x04C11DB7 polynomial).
    #[test]
    fn crc32_table_pinned_to_known_good_vectors() {
        assert_eq!(crc32(b"123456789"), 0xFC89_1918);
        assert_eq!(crc32_reference(b"123456789"), 0xFC89_1918);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(&[0x00; 40]), 0x8DBC_3797);
        // Spot entries and the whole-table sum.
        assert_eq!(CRC32_TABLE[0], 0);
        assert_eq!(CRC32_TABLE[1], POLY32);
        assert_eq!(CRC32_TABLE[255], 0xB1F7_40B4);
        let sum: u64 = CRC32_TABLE.iter().map(|&e| e as u64).sum();
        assert_eq!(sum, 549_755_813_760);
    }

    #[test]
    fn crc32_accumulator_matches_oneshot() {
        let data = pseudo_bytes(7, 300);
        let mut acc = Crc32Accumulator::new();
        for chunk in data.chunks(48) {
            acc.update(chunk);
        }
        assert_eq!(acc.finish(), crc32(&data));
    }

    #[test]
    fn crc32_slice_by_8_agrees_at_every_length_and_split() {
        // Exercise the 8-byte kernel's remainder handling at every
        // length mod 8, and prove accumulator chunk boundaries (which
        // change where the slice-by-8 chunks fall) never matter.
        let data = pseudo_bytes(42, 64);
        for len in 0..=data.len() {
            let expect = crc32_reference(&data[..len]);
            assert_eq!(crc32(&data[..len]), expect, "len {len}");
            for split in [1usize, 3, 5, 7, 8, 11, 13] {
                let mut acc = Crc32Accumulator::new();
                for chunk in data[..len].chunks(split) {
                    acc.update(chunk);
                }
                assert_eq!(acc.finish(), expect, "len {len} split {split}");
            }
        }
    }

    #[test]
    fn crc10_is_in_range() {
        for seed in 0..20u64 {
            let data = pseudo_bytes(seed + 99, 48);
            assert!(crc10(&data) < 1024);
        }
    }

    #[test]
    fn crc10_appended_residual_is_zero() {
        // Property of this CRC convention (no init, no xor-out): a
        // codeword formed as message-bits ∥ CRC checks to zero. Emulate
        // the SAR trailer layout: 46 message octets, 6 LI bits, then the
        // 10 CRC bits — the CRC is computed over the 374 bits preceding
        // it (bit-granular), and the completed 48 octets check to zero
        // with the plain byte-wise CRC.
        let msg = pseudo_bytes(3, 46);
        let li: u8 = 0b101010;
        let mut whole = msg.clone();
        whole.push(li << 2); // LI in the top 6 bits, CRC bits zero
        whole.push(0);
        let c = crc10_bits(&whole, 46 * 8 + 6);
        let n = whole.len();
        whole[n - 2] |= (c >> 8) as u8;
        whole[n - 1] = c as u8;
        assert_eq!(crc10(&whole), 0);
    }

    #[test]
    fn crc10_bits_byte_aligned_matches_bytewise() {
        let data = pseudo_bytes(21, 48);
        assert_eq!(crc10_bits(&data, 48 * 8), crc10(&data));
        assert_eq!(crc10_bits(&data, 24 * 8), crc10(&data[..24]));
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let data = pseudo_bytes(11, 96);
        let c = crc32(&data);
        for bit in 0..(96 * 8) {
            let mut tampered = data.clone();
            tampered[bit / 8] ^= 0x80 >> (bit % 8);
            assert_ne!(crc32(&tampered), c, "bit {bit} undetected");
        }
    }

    #[test]
    fn crc10_detects_any_single_bit_flip() {
        let data = pseudo_bytes(13, 48);
        let c = crc10(&data);
        for bit in 0..(48 * 8) {
            let mut tampered = data.clone();
            tampered[bit / 8] ^= 0x80 >> (bit % 8);
            assert_ne!(crc10(&tampered), c, "bit {bit} undetected");
        }
    }

    #[test]
    fn crc32_known_vector() {
        // AAL5 convention applied to the 40-octet all-zero CPCS body:
        // cross-checked against the bitwise reference (which is the
        // polynomial definition transcribed) — this pins the table
        // construction and conventions forever.
        let zeros = [0u8; 40];
        assert_eq!(crc32(&zeros), crc32_reference(&zeros));
        // And empirically: CRC of empty input is 0 per this convention?
        // No: init all-ones complemented through zero octets stays
        // 0xFFFFFFFF, complement = 0... the empty-input value:
        assert_eq!(crc32(&[]), !0xFFFF_FFFFu32);
    }
}
