//! AAL1 — constant-bit-rate circuit emulation (ITU-T I.363.1).
//!
//! AAL1 carries an unstructured byte *stream* (voice trunks, video) at a
//! constant rate. Each cell spends one octet on the SAR header and
//! carries 47 octets of stream:
//!
//! ```text
//!  ┌─────┬────────────────┬──────────────────────────────┐
//!  │ CSI │ SC (3-bit seq) │ SNP: CRC-3 over CSI+SC, then │
//!  │ 1b  │                │ even parity over all 7 bits  │
//!  └─────┴────────────────┴──────────────────────────────┘   + 47 octets
//! ```
//!
//! The 3-bit sequence count cannot *recover* anything — there are no
//! retransmissions in a constant-rate circuit — but it detects lost and
//! misinserted cells so the receiver can compensate (insert fill for
//! lost payload, discard strays) and keep the stream's *timing*
//! skeleton intact. The SN field itself is protected by the SNP (a
//! CRC-3 plus even parity, distance 3 over 8 bits) so a corrupted
//! header is not mistaken for a sequence jump.
//!
//! Scope: unstructured data transfer service. The structured-data
//! pointer format and SRTS clock recovery are out of scope (they address
//! plesiochronous clocking, which this workspace's links don't model).

use hni_atm::{Cell, HeaderRepr, VcId, PAYLOAD_SIZE};

/// Stream octets carried per cell.
pub const PAYLOAD_PER_CELL: usize = 47;

/// CRC-3 generator x³ + x + 1 over the 4 SN bits (CSI ∥ SC).
fn crc3(sn_bits: u8) -> u8 {
    debug_assert!(sn_bits < 16);
    let mut reg: u8 = 0;
    for i in (0..4).rev() {
        let bit = (sn_bits >> i) & 1;
        let top = (reg >> 2) & 1;
        reg = (reg << 1) & 0b111;
        if top ^ bit != 0 {
            reg ^= 0b011;
        }
    }
    reg
}

/// Encode the SAR header octet for (csi, sc).
pub fn encode_header(csi: bool, sc: u8) -> u8 {
    debug_assert!(sc < 8);
    let sn = ((csi as u8) << 3) | sc;
    let mut octet = (sn << 4) | (crc3(sn) << 1);
    // Even parity over the whole octet.
    if (octet.count_ones() & 1) == 1 {
        octet |= 1;
    }
    octet
}

/// Decode and verify a SAR header octet. Returns `(csi, sc)` or `None`
/// if the SNP check fails.
pub fn decode_header(octet: u8) -> Option<(bool, u8)> {
    if octet.count_ones() & 1 != 0 {
        return None; // parity
    }
    let sn = octet >> 4;
    if crc3(sn) != (octet >> 1) & 0b111 {
        return None; // CRC-3
    }
    Some((sn & 0b1000 != 0, sn & 0b111))
}

/// Segments a byte stream into AAL1 cells.
pub struct Aal1Segmenter {
    vc: VcId,
    sc: u8,
    buffered: Vec<u8>,
    cells_emitted: u64,
}

impl Aal1Segmenter {
    /// A segmenter for `vc` starting at sequence count 0.
    pub fn new(vc: VcId) -> Self {
        Aal1Segmenter {
            vc,
            sc: 0,
            buffered: Vec::new(),
            cells_emitted: 0,
        }
    }

    /// Offer stream octets; complete cells are appended to `out`.
    /// Octets short of a full 47-octet payload stay buffered.
    pub fn push(&mut self, data: &[u8], out: &mut Vec<Cell>) {
        self.buffered.extend_from_slice(data);
        while self.buffered.len() >= PAYLOAD_PER_CELL {
            let mut payload = [0u8; PAYLOAD_SIZE];
            payload[0] = encode_header(false, self.sc);
            payload[1..].copy_from_slice(&self.buffered[..PAYLOAD_PER_CELL]);
            self.buffered.drain(..PAYLOAD_PER_CELL);
            out.push(
                Cell::new(&HeaderRepr::data(self.vc, false), &payload)
                    .expect("user VC header encodable"),
            );
            self.sc = (self.sc + 1) & 0b111;
            self.cells_emitted += 1;
        }
    }

    /// Stream octets awaiting a full cell.
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }
    /// Cells emitted so far.
    pub fn cells_emitted(&self) -> u64 {
        self.cells_emitted
    }
}

/// What the receiver noticed about the sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aal1Event {
    /// `n` cells (1–6) were lost; fill octets were substituted so the
    /// stream keeps its length/timing.
    CellsLost(u8),
    /// A cell whose header failed the SNP check was discarded (its
    /// payload position is treated as lost).
    HeaderDamaged,
}

/// Reassembles the byte stream, detecting losses by sequence count.
pub struct Aal1Receiver {
    expected_sc: Option<u8>,
    /// Octet substituted for lost payload (silence / mid-scale grey).
    pub fill_octet: u8,
    stream: Vec<u8>,
    events: Vec<Aal1Event>,
    cells_ok: u64,
    cells_lost: u64,
    cells_damaged: u64,
}

impl Default for Aal1Receiver {
    fn default() -> Self {
        Self::new()
    }
}

impl Aal1Receiver {
    /// A receiver awaiting the first cell.
    pub fn new() -> Self {
        Aal1Receiver {
            expected_sc: None,
            fill_octet: 0,
            stream: Vec::new(),
            events: Vec::new(),
            cells_ok: 0,
            cells_lost: 0,
            cells_damaged: 0,
        }
    }

    /// Offer one cell's payload (the caller has already demultiplexed
    /// the VC).
    pub fn push(&mut self, cell: &Cell) {
        let payload = cell.payload();
        let Some((_csi, sc)) = decode_header(payload[0]) else {
            // Unusable header: the safest interpretation is one lost
            // position (we cannot trust the sequence field).
            self.events.push(Aal1Event::HeaderDamaged);
            self.cells_damaged += 1;
            self.stream
                .extend(std::iter::repeat_n(self.fill_octet, PAYLOAD_PER_CELL));
            if let Some(e) = self.expected_sc {
                self.expected_sc = Some((e + 1) & 0b111);
            }
            return;
        };
        if let Some(expected) = self.expected_sc {
            let gap = (sc + 8 - expected) & 0b111;
            if gap != 0 {
                // `gap` cells went missing (ambiguous mod 8; 1..=7 is
                // reported as-is — an 8-cell loss aliases to 0 and is
                // undetectable, a known AAL1 limitation).
                self.events.push(Aal1Event::CellsLost(gap));
                self.cells_lost += gap as u64;
                self.stream.extend(std::iter::repeat_n(
                    self.fill_octet,
                    PAYLOAD_PER_CELL * gap as usize,
                ));
            }
        }
        self.stream.extend_from_slice(&payload[1..]);
        self.expected_sc = Some((sc + 1) & 0b111);
        self.cells_ok += 1;
    }

    /// Take the reassembled stream so far (drains).
    pub fn take_stream(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.stream)
    }
    /// Take the pending events (drains).
    pub fn take_events(&mut self) -> Vec<Aal1Event> {
        std::mem::take(&mut self.events)
    }
    /// Cells accepted.
    pub fn cells_ok(&self) -> u64 {
        self.cells_ok
    }
    /// Cells inferred lost.
    pub fn cells_lost(&self) -> u64 {
        self.cells_lost
    }
    /// Cells with damaged headers.
    pub fn cells_damaged(&self) -> u64 {
        self.cells_damaged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VcId {
        VcId::new(0, 300)
    }

    #[test]
    fn header_roundtrip_all_values() {
        for csi in [false, true] {
            for sc in 0..8 {
                let h = encode_header(csi, sc);
                assert_eq!(decode_header(h), Some((csi, sc)));
                assert_eq!(h.count_ones() % 2, 0, "even parity");
            }
        }
    }

    #[test]
    fn header_detects_every_single_bit_error() {
        for csi in [false, true] {
            for sc in 0..8 {
                let h = encode_header(csi, sc);
                for bit in 0..8 {
                    let bad = h ^ (1 << bit);
                    assert_eq!(decode_header(bad), None, "h={h:08b} bit={bit}");
                }
            }
        }
    }

    #[test]
    fn header_detects_every_double_bit_error() {
        // CRC-3 + parity give distance ≥ 3 over the 8-bit codeword.
        for sc in 0..8 {
            let h = encode_header(false, sc);
            for b1 in 0..8 {
                for b2 in (b1 + 1)..8 {
                    let bad = h ^ (1 << b1) ^ (1 << b2);
                    // A double error may alias to ANOTHER valid header —
                    // distance 3 only guarantees it's not undetected as
                    // the SAME one. What must never happen: decoding back
                    // to the original (that would be an undetected error).
                    if let Some((c, s)) = decode_header(bad) {
                        assert!((c, s) != (false, sc), "double error undetected for sc={sc}");
                    }
                }
            }
        }
    }

    #[test]
    fn stream_roundtrip() {
        let data: Vec<u8> = (0..47 * 10).map(|i| (i % 256) as u8).collect();
        let mut seg = Aal1Segmenter::new(vc());
        let mut cells = Vec::new();
        seg.push(&data, &mut cells);
        assert_eq!(cells.len(), 10);
        let mut rx = Aal1Receiver::new();
        for c in &cells {
            rx.push(c);
        }
        assert_eq!(rx.take_stream(), data);
        assert!(rx.take_events().is_empty());
    }

    #[test]
    fn partial_cells_stay_buffered() {
        let mut seg = Aal1Segmenter::new(vc());
        let mut cells = Vec::new();
        seg.push(&[1u8; 46], &mut cells);
        assert!(cells.is_empty());
        assert_eq!(seg.buffered(), 46);
        seg.push(&[2u8; 2], &mut cells);
        assert_eq!(cells.len(), 1);
        assert_eq!(seg.buffered(), 1);
    }

    #[test]
    fn sequence_counts_wrap_mod_8() {
        let mut seg = Aal1Segmenter::new(vc());
        let mut cells = Vec::new();
        seg.push(&vec![0u8; 47 * 20], &mut cells);
        for (i, c) in cells.iter().enumerate() {
            let (_, sc) = decode_header(c.payload()[0]).unwrap();
            assert_eq!(sc as usize, i % 8);
        }
    }

    #[test]
    fn lost_cells_detected_and_filled() {
        let data: Vec<u8> = (0..47 * 8).map(|i| (i % 251) as u8).collect();
        let mut seg = Aal1Segmenter::new(vc());
        let mut cells = Vec::new();
        seg.push(&data, &mut cells);
        let mut rx = Aal1Receiver::new();
        rx.fill_octet = 0xEE;
        for (i, c) in cells.iter().enumerate() {
            if i == 3 || i == 4 {
                continue; // lose two consecutive cells
            }
            rx.push(c);
        }
        assert_eq!(rx.take_events(), vec![Aal1Event::CellsLost(2)]);
        let stream = rx.take_stream();
        assert_eq!(stream.len(), data.len(), "timing skeleton preserved");
        // Fill where the loss was, original data elsewhere.
        assert_eq!(&stream[..47 * 3], &data[..47 * 3]);
        assert!(stream[47 * 3..47 * 5].iter().all(|&b| b == 0xEE));
        assert_eq!(&stream[47 * 5..], &data[47 * 5..]);
        assert_eq!(rx.cells_lost(), 2);
    }

    #[test]
    fn damaged_header_is_one_lost_position() {
        let mut seg = Aal1Segmenter::new(vc());
        let mut cells = Vec::new();
        seg.push(&[7u8; 47 * 4], &mut cells);
        // Corrupt the SAR header of cell 1 (single bit → SNP catches it).
        cells[1].payload_mut()[0] ^= 0x10;
        let mut rx = Aal1Receiver::new();
        for c in &cells {
            rx.push(c);
        }
        assert_eq!(rx.cells_damaged(), 1);
        assert_eq!(rx.take_stream().len(), 47 * 4);
        assert_eq!(rx.take_events(), vec![Aal1Event::HeaderDamaged]);
    }

    #[test]
    fn efficiency_between_aal5_and_aal34() {
        // AAL1 carries 47/48 of each payload: between AAL3/4 (44) and
        // AAL5 (48), as the overhead ordering goes.
        const { assert!(PAYLOAD_PER_CELL > 44 && PAYLOAD_PER_CELL < 48) };
    }
}
