//! AAL5 — the Simple and Efficient Adaptation Layer (ITU-T I.363.5).
//!
//! The CPCS-PDU is the SDU followed by 0–47 pad octets and an 8-octet
//! trailer, sized to a multiple of 48:
//!
//! ```text
//! ┌────────────┬─────────┬────┬─────┬────────┬────────┐
//! │  SDU data  │   PAD   │ UU │ CPI │ Length │ CRC-32 │
//! │  0..65535  │  0..47  │ 1  │  1  │   2    │   4    │
//! └────────────┴─────────┴────┴─────┴────────┴────────┘
//! ```
//!
//! Segmentation slices the CPCS-PDU into 48-octet cell payloads; the only
//! per-cell marking is the PTI user-indication bit on the final cell.
//! This is why AAL5 won: zero per-cell overhead, trivial segmentation
//! hardware — and why its failure mode is coarse: *any* lost or corrupted
//! cell is only discovered at frame end, by the CRC-32/Length check, and
//! costs the whole frame.
//!
//! The reassembler here is per-VC. Cell interleaving across frames on one
//! VC is impossible in AAL5 by construction (no MID field), which the
//! error taxonomy reflects.

use crate::crc::{crc32, Crc32Accumulator};
use crate::{ReassembledSdu, ReassemblyError, ReassemblyFailure, ReassemblyOutcome};
use hni_atm::{Cell, CellRef, CellSlab, HeaderRepr, VcId, VcTable, PAYLOAD_SIZE};
use hni_sim::{Duration, Time};

/// CPCS trailer size in octets.
pub const TRAILER_SIZE: usize = 8;
/// Largest SDU AAL5 can carry (16-bit length field; 0 means 65536 is NOT
/// used here — we follow the common convention that 0 marks an abort).
pub const MAX_SDU: usize = 65535;
/// Cells in the largest possible CPCS-PDU.
pub const MAX_CELLS: usize = (MAX_SDU + TRAILER_SIZE).div_ceil(PAYLOAD_SIZE); // 1366

/// All-zero pad source (the pad is at most 47 octets).
const ZERO_PAD: [u8; PAYLOAD_SIZE] = [0u8; PAYLOAD_SIZE];

/// Reassembly buffers kept for reuse; beyond this they are dropped.
const SPARE_POOL_LIMIT: usize = 64;

/// Segment an SDU into ATM cells on `vc`.
///
/// Returns the cell sequence; the final cell has the PTI end-of-frame
/// bit set. `uu` is the CPCS user-to-user octet carried transparently.
///
/// ```
/// use hni_aal::aal5::{segment, Aal5Reassembler};
/// use hni_atm::VcId;
/// use hni_sim::{Duration, Time};
///
/// let vc = VcId::new(0, 42);
/// let cells = segment(vc, b"a small packet", 0x00);
/// assert_eq!(cells.len(), 1); // 14 B + 8 B trailer fits one cell
///
/// let mut reasm = Aal5Reassembler::new(65535, Duration::from_ms(10));
/// let sdu = reasm.push(&cells[0], Time::ZERO).unwrap().unwrap();
/// assert_eq!(sdu.data, b"a small packet");
/// ```
///
/// # Panics
/// If `sdu.len() > MAX_SDU`.
pub fn segment(vc: VcId, sdu: &[u8], uu: u8) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(crate::AalType::Aal5.cells_for_sdu(sdu.len()));
    segment_with(vc, sdu, uu, |header, payload| {
        cells.push(Cell::new(header, payload).expect("UNI header for user VC is always encodable"));
    });
    cells
}

/// Segment an SDU into slab-backed cells on `vc`, appending one
/// [`CellRef`] handle per cell to `out`.
///
/// Byte-identical to [`segment`] — the same core builds both — but on a
/// warmed-up slab the steady state performs zero heap allocations per
/// cell. This is the fast-path form the batched pipeline uses.
pub fn segment_into(vc: VcId, sdu: &[u8], uu: u8, slab: &mut CellSlab, out: &mut Vec<CellRef>) {
    segment_with(vc, sdu, uu, |header, payload| {
        let (r, cell) = slab.alloc_mut();
        cell.set_header(header)
            .expect("UNI header for user VC is always encodable");
        cell.payload_mut().copy_from_slice(payload);
        out.push(r);
    });
}

/// Segment a burst of SDUs on `vc` into the slab in one call,
/// amortizing per-call dispatch the way the paper's hardware assists
/// amortize per-cell protocol processing. Handles are appended to `out`
/// in SDU order.
pub fn segment_burst(
    vc: VcId,
    sdus: &[&[u8]],
    uu: u8,
    slab: &mut CellSlab,
    out: &mut Vec<CellRef>,
) {
    for sdu in sdus {
        segment_into(vc, sdu, uu, slab, out);
    }
}

/// The segmentation core: computes the CPCS trailer and emits each
/// 48-octet payload (with its header repr) through `emit`. Both the
/// `Vec<Cell>` path and the slab path share this, which is what makes
/// them byte-identical by construction.
fn segment_with(
    vc: VcId,
    sdu: &[u8],
    uu: u8,
    mut emit: impl FnMut(&HeaderRepr, &[u8; PAYLOAD_SIZE]),
) {
    assert!(sdu.len() <= MAX_SDU, "SDU exceeds AAL5 maximum");
    let total = cpcs_pdu_len(sdu.len());
    let n_cells = total / PAYLOAD_SIZE;
    let pad = total - sdu.len() - TRAILER_SIZE;

    // Build the trailer; CRC covers SDU ∥ pad ∥ first 4 trailer octets.
    let mut crc = Crc32Accumulator::new();
    crc.update(sdu);
    crc.update(&ZERO_PAD[..pad]);
    let mut trailer = [0u8; TRAILER_SIZE];
    trailer[0] = uu;
    trailer[1] = 0; // CPI: must be 0
    trailer[2] = (sdu.len() >> 8) as u8;
    trailer[3] = sdu.len() as u8;
    crc.update(&trailer[..4]);
    let c = crc.finish();
    trailer[4..].copy_from_slice(&c.to_be_bytes());

    let mut payload = [0u8; PAYLOAD_SIZE];
    for i in 0..n_cells {
        let start = i * PAYLOAD_SIZE;
        // Assemble this cell's 48 octets from SDU/pad/trailer regions.
        for (j, slot) in payload.iter_mut().enumerate() {
            let pos = start + j;
            *slot = if pos < sdu.len() {
                sdu[pos]
            } else if pos < sdu.len() + pad {
                0
            } else {
                trailer[pos - sdu.len() - pad]
            };
        }
        let last = i == n_cells - 1;
        emit(&HeaderRepr::data(vc, last), &payload);
    }
}

/// Total CPCS-PDU length (a multiple of 48) for an SDU of `len` octets.
pub fn cpcs_pdu_len(len: usize) -> usize {
    (len + TRAILER_SIZE).div_ceil(PAYLOAD_SIZE) * PAYLOAD_SIZE
}

/// Per-VC reassembly state.
struct VcState {
    buf: Vec<u8>,
    cells: usize,
    started_at: Time,
}

/// AAL5 reassembler for any number of VCs.
///
/// Offer every user-data cell via [`Aal5Reassembler::push`]; call
/// [`Aal5Reassembler::expire`] periodically to enforce the reassembly
/// timeout. Statistics count completions and every failure class.
pub struct Aal5Reassembler {
    /// Per-VC frame state in the sharded open-addressing table, keyed
    /// on the packed 24-bit cam key — the same structure the CAM model
    /// uses, so a million in-progress VCs cost flat lookups and ~bytes,
    /// not `HashMap` buckets.
    vcs: VcTable<VcState>,
    max_sdu: usize,
    timeout: Duration,
    completed: u64,
    failed: u64,
    /// Retired frame buffers kept warm for reuse: a steady-state stream
    /// of frames allocates nothing per frame once the pool has seen the
    /// working set. Completed SDUs leave with their buffer; callers on
    /// the fast path hand it back via [`Aal5Reassembler::recycle`].
    spare: Vec<Vec<u8>>,
}

impl Aal5Reassembler {
    /// A reassembler accepting SDUs up to `max_sdu` octets and abandoning
    /// frames older than `timeout`.
    pub fn new(max_sdu: usize, timeout: Duration) -> Self {
        Aal5Reassembler {
            vcs: VcTable::new(),
            max_sdu: max_sdu.min(MAX_SDU),
            timeout,
            completed: 0,
            failed: 0,
            spare: Vec::new(),
        }
    }

    /// Hand an SDU buffer (from a delivered [`ReassembledSdu`]) back for
    /// reuse. Optional — dropping the buffer is always correct — but the
    /// zero-alloc steady state needs the working set to circulate.
    pub fn recycle(&mut self, buf: Vec<u8>) {
        self.stash(buf);
    }

    fn stash(&mut self, mut buf: Vec<u8>) {
        if self.spare.len() < SPARE_POOL_LIMIT {
            buf.clear();
            self.spare.push(buf);
        }
    }

    /// Frames successfully delivered.
    pub fn completed(&self) -> u64 {
        self.completed
    }
    /// Frames abandoned (all causes).
    pub fn failed(&self) -> u64 {
        self.failed
    }
    /// VCs with a frame currently in progress.
    pub fn in_progress(&self) -> usize {
        self.vcs.len()
    }
    /// Octets currently buffered across all VCs.
    pub fn buffered_octets(&self) -> usize {
        self.vcs.iter().map(|(_, s)| s.buf.len()).sum()
    }

    /// Probe/memory statistics of the backing [`VcTable`].
    pub fn table_stats(&self) -> hni_atm::TableStats {
        self.vcs.stats()
    }

    /// Offer one cell. Returns a completed SDU, a failure report, or
    /// nothing (mid-frame).
    pub fn push(&mut self, cell: &Cell, now: Time) -> ReassemblyOutcome {
        let header = match cell.header() {
            Ok(h) => h,
            Err(_) => return None, // undecodable header: not ours to count
        };
        if !header.pti.is_user_data() {
            return None; // OAM/RM cells don't participate in reassembly
        }
        let vc = header.vc();
        let key = vc.cam_key() as u64;
        let spare = &mut self.spare;
        let (_, state) = self
            .vcs
            .get_or_insert_with(key, || VcState {
                buf: spare.pop().unwrap_or_default(),
                cells: 0,
                started_at: now,
            })
            .expect("unbounded table never refuses");
        state.buf.extend_from_slice(cell.payload());
        state.cells += 1;

        // Oversize guard: largest legal CPCS-PDU for our max_sdu.
        let limit = cpcs_pdu_len(self.max_sdu);
        if state.buf.len() > limit {
            let state = self.vcs.remove(key).expect("state just inserted");
            let discarded = state.buf.len();
            self.stash(state.buf);
            self.failed += 1;
            return Some(Err(ReassemblyFailure {
                vc,
                mid: 0,
                error: ReassemblyError::TooLong,
                discarded_octets: discarded,
            }));
        }

        if !header.pti.is_last() {
            return None;
        }

        // Final cell: validate the CPCS-PDU.
        let state = self.vcs.remove(key).expect("state just inserted");
        let mut pdu = state.buf;
        debug_assert!(pdu.len().is_multiple_of(PAYLOAD_SIZE));

        let trailer = &pdu[pdu.len() - TRAILER_SIZE..];
        let uu = trailer[0];
        let length = ((trailer[2] as usize) << 8) | trailer[3] as usize;
        let stored_crc = u32::from_be_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);

        let computed = crc32(&pdu[..pdu.len() - 4]);
        if computed != stored_crc {
            self.failed += 1;
            let discarded = pdu.len();
            self.stash(pdu);
            return Some(Err(ReassemblyFailure {
                vc,
                mid: 0,
                error: ReassemblyError::Crc32,
                discarded_octets: discarded,
            }));
        }
        // Length must reconstruct the same number of cells: the pad is
        // 0..47, i.e. length + 8 must round up to exactly pdu.len().
        if length > self.max_sdu || cpcs_pdu_len(length) != pdu.len() {
            self.failed += 1;
            let discarded = pdu.len();
            self.stash(pdu);
            return Some(Err(ReassemblyFailure {
                vc,
                mid: 0,
                error: ReassemblyError::LengthMismatch,
                discarded_octets: discarded,
            }));
        }

        self.completed += 1;
        // Truncate in place: the SDU leaves with the frame buffer (same
        // bytes as a copy, no allocation); `recycle` brings it back.
        pdu.truncate(length);
        Some(Ok(ReassembledSdu {
            vc,
            mid: 0,
            data: pdu,
            user_to_user: uu,
        }))
    }

    /// Offer a burst of slab-backed cells, appending every completed SDU
    /// or failure report to `out` in arrival order. Mid-frame cells
    /// produce nothing, exactly as with per-cell [`Aal5Reassembler::push`].
    pub fn deliver_burst(
        &mut self,
        refs: &[CellRef],
        slab: &CellSlab,
        now: Time,
        out: &mut Vec<Result<ReassembledSdu, ReassemblyFailure>>,
    ) {
        for &r in refs {
            if let Some(outcome) = self.push(slab.get(r), now) {
                out.push(outcome);
            }
        }
    }

    /// Abandon every frame whose first cell arrived more than the timeout
    /// ago. Returns one failure report per abandoned frame.
    pub fn expire(&mut self, now: Time) -> Vec<ReassemblyFailure> {
        let timeout = self.timeout;
        let expired: Vec<u64> = self
            .vcs
            .iter()
            .filter(|(_, s)| now.saturating_since(s.started_at) > timeout)
            .map(|(key, _)| key)
            .collect();
        expired
            .into_iter()
            .map(|key| {
                let s = self.vcs.remove(key).expect("key from iteration");
                self.failed += 1;
                let discarded = s.buf.len();
                self.stash(s.buf);
                ReassemblyFailure {
                    vc: VcId::new((key >> 16) as u16, key as u16),
                    mid: 0,
                    error: ReassemblyError::Timeout,
                    discarded_octets: discarded,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VcId {
        VcId::new(1, 100)
    }

    fn reasm() -> Aal5Reassembler {
        Aal5Reassembler::new(MAX_SDU, Duration::from_ms(10))
    }

    fn roundtrip(sdu: &[u8]) -> ReassembledSdu {
        let cells = segment(vc(), sdu, 0x5A);
        let mut r = reasm();
        let mut done = None;
        for c in &cells {
            if let Some(out) = r.push(c, Time::ZERO) {
                done = Some(out);
            }
        }
        done.expect("frame should complete")
            .expect("frame should be valid")
    }

    #[test]
    fn roundtrip_small() {
        let sdu = b"hello, aurora";
        let out = roundtrip(sdu);
        assert_eq!(out.data, sdu);
        assert_eq!(out.user_to_user, 0x5A);
        assert_eq!(out.vc, vc());
    }

    #[test]
    fn roundtrip_empty_sdu() {
        let out = roundtrip(&[]);
        assert!(out.data.is_empty());
    }

    #[test]
    fn roundtrip_exact_cell_boundaries() {
        for len in [39, 40, 41, 47, 48, 95, 96, 97] {
            let sdu: Vec<u8> = (0..len).map(|i| i as u8).collect();
            assert_eq!(roundtrip(&sdu).data, sdu, "len {len}");
        }
    }

    #[test]
    fn roundtrip_large() {
        let sdu: Vec<u8> = (0..40_000).map(|i| (i * 7 % 256) as u8).collect();
        assert_eq!(roundtrip(&sdu).data, sdu);
    }

    #[test]
    fn cell_count_matches_formula() {
        for len in [0, 1, 40, 41, 1000, 9180, 65535] {
            let cells = segment(vc(), &vec![0xAB; len], 0);
            assert_eq!(
                cells.len(),
                crate::AalType::Aal5.cells_for_sdu(len),
                "len {len}"
            );
        }
    }

    #[test]
    fn only_final_cell_marked() {
        let cells = segment(vc(), &[1; 200], 0);
        for (i, c) in cells.iter().enumerate() {
            let last = c.header().unwrap().pti.is_last();
            assert_eq!(last, i == cells.len() - 1);
        }
    }

    #[test]
    fn lost_middle_cell_detected() {
        let sdu: Vec<u8> = (0..500).map(|i| i as u8).collect();
        let cells = segment(vc(), &sdu, 0);
        let mut r = reasm();
        let mut outcome = None;
        for (i, c) in cells.iter().enumerate() {
            if i == 3 {
                continue; // lose one cell
            }
            if let Some(o) = r.push(c, Time::ZERO) {
                outcome = Some(o);
            }
        }
        let failure = outcome.unwrap().unwrap_err();
        // A lost 48-octet chunk shifts everything: either CRC or length
        // catches it. (CRC virtually always.)
        assert!(
            matches!(
                failure.error,
                ReassemblyError::Crc32 | ReassemblyError::LengthMismatch
            ),
            "got {:?}",
            failure.error
        );
        assert_eq!(r.failed(), 1);
    }

    #[test]
    fn lost_final_cell_merges_frames() {
        // Losing the last cell of frame A makes frame A's cells prepend
        // frame B — the classic AAL5 failure. The combined frame must be
        // rejected when B completes.
        let a = segment(vc(), &[1u8; 100], 0);
        let b = segment(vc(), &[2u8; 100], 0);
        let mut r = reasm();
        let mut outcome = None;
        for c in a.iter().take(a.len() - 1).chain(b.iter()) {
            if let Some(o) = r.push(c, Time::ZERO) {
                outcome = Some(o);
            }
        }
        assert!(outcome.unwrap().is_err());
    }

    #[test]
    fn corrupted_payload_detected() {
        let sdu: Vec<u8> = (0..300).map(|i| i as u8).collect();
        let mut cells = segment(vc(), &sdu, 0);
        cells[2].payload_mut()[10] ^= 0x01;
        let mut r = reasm();
        let mut outcome = None;
        for c in &cells {
            if let Some(o) = r.push(c, Time::ZERO) {
                outcome = Some(o);
            }
        }
        assert_eq!(outcome.unwrap().unwrap_err().error, ReassemblyError::Crc32);
    }

    #[test]
    fn interleaved_vcs_reassemble_independently() {
        let vc_a = VcId::new(0, 32);
        let vc_b = VcId::new(0, 33);
        let sdu_a: Vec<u8> = vec![0xAA; 200];
        let sdu_b: Vec<u8> = vec![0xBB; 200];
        let ca = segment(vc_a, &sdu_a, 0);
        let cb = segment(vc_b, &sdu_b, 0);
        let mut r = reasm();
        let mut got = Vec::new();
        // Interleave cell streams.
        for i in 0..ca.len().max(cb.len()) {
            for cells in [&ca, &cb] {
                if let Some(c) = cells.get(i) {
                    if let Some(Ok(sdu)) = r.push(c, Time::ZERO) {
                        got.push(sdu);
                    }
                }
            }
        }
        assert_eq!(got.len(), 2);
        let a = got.iter().find(|s| s.vc == vc_a).unwrap();
        let b = got.iter().find(|s| s.vc == vc_b).unwrap();
        assert_eq!(a.data, sdu_a);
        assert_eq!(b.data, sdu_b);
    }

    #[test]
    fn timeout_expires_stalled_frames() {
        let cells = segment(vc(), &[9u8; 500], 0);
        let mut r = Aal5Reassembler::new(MAX_SDU, Duration::from_us(100));
        r.push(&cells[0], Time::ZERO);
        r.push(&cells[1], Time::from_us(10));
        assert!(r.expire(Time::from_us(50)).is_empty());
        let failures = r.expire(Time::from_us(200));
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].error, ReassemblyError::Timeout);
        assert_eq!(failures[0].discarded_octets, 96);
        assert_eq!(r.in_progress(), 0);
    }

    #[test]
    fn oversize_frame_rejected_midstream() {
        // Max SDU 100 → limit = cpcs_pdu_len(100) = 144 octets = 3 cells.
        let mut r = Aal5Reassembler::new(100, Duration::from_ms(1));
        let cells = segment(vc(), &[1u8; 500], 0); // 11 cells, never "last" early
        let mut failure = None;
        for c in &cells {
            if let Some(Err(f)) = r.push(c, Time::ZERO) {
                failure = Some(f);
                break;
            }
        }
        assert_eq!(failure.unwrap().error, ReassemblyError::TooLong);
    }

    #[test]
    fn oam_cells_ignored() {
        let mut r = reasm();
        let cell = Cell::new(
            &HeaderRepr {
                pti: hni_atm::Pti::OamSegment,
                ..HeaderRepr::data(vc(), false)
            },
            &[0u8; PAYLOAD_SIZE],
        )
        .unwrap();
        assert!(r.push(&cell, Time::ZERO).is_none());
        assert_eq!(r.in_progress(), 0);
    }

    #[test]
    fn slab_path_matches_vec_path_byte_for_byte() {
        for len in [0usize, 1, 40, 41, 96, 500, 9180] {
            let sdu: Vec<u8> = (0..len).map(|i| (i * 13 % 256) as u8).collect();
            let vec_cells = segment(vc(), &sdu, 0x77);
            let mut slab = CellSlab::new();
            let mut refs = Vec::new();
            segment_into(vc(), &sdu, 0x77, &mut slab, &mut refs);
            assert_eq!(vec_cells.len(), refs.len(), "len {len}");
            for (c, &r) in vec_cells.iter().zip(&refs) {
                assert_eq!(c.as_bytes(), slab.get(r).as_bytes(), "len {len}");
            }
        }
    }

    #[test]
    fn deliver_burst_roundtrip_and_recycle() {
        let sdu: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let mut slab = CellSlab::new();
        let mut refs = Vec::new();
        segment_burst(vc(), &[&sdu, &sdu], 0x01, &mut slab, &mut refs);
        let mut r = reasm();
        let mut out = Vec::new();
        r.deliver_burst(&refs, &slab, Time::ZERO, &mut out);
        assert_eq!(out.len(), 2);
        for o in out {
            let got = o.expect("valid frame");
            assert_eq!(got.data, sdu);
            r.recycle(got.data);
        }
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn steady_state_reuses_frame_buffers() {
        let sdu = vec![0x42u8; 1000];
        let mut slab = CellSlab::new();
        let mut r = reasm();
        let mut refs = Vec::new();
        let mut out = Vec::new();
        for _ in 0..20 {
            refs.clear();
            segment_into(vc(), &sdu, 0, &mut slab, &mut refs);
            r.deliver_burst(&refs, &slab, Time::ZERO, &mut out);
            slab.free_all(&refs);
            let got = out.pop().unwrap().unwrap();
            assert_eq!(got.data, sdu);
            r.recycle(got.data);
        }
        // Slab warmed on the first frame, then constant.
        assert_eq!(slab.growth_events(), refs.len() as u64);
        assert_eq!(r.completed(), 20);
    }

    #[test]
    fn buffered_octets_accounting() {
        let cells = segment(vc(), &[1u8; 500], 0);
        let mut r = reasm();
        r.push(&cells[0], Time::ZERO);
        r.push(&cells[1], Time::ZERO);
        assert_eq!(r.buffered_octets(), 96);
    }
}
