//! Property-based tests for the adaptation layers.

use hni_aal::aal34::{Aal34Reassembler, Aal34Segmenter};
use hni_aal::aal5::{self, Aal5Reassembler};
use hni_aal::crc::{crc10, crc10_reference, crc32, crc32_reference, Crc32Accumulator};
use hni_aal::{AalType, ReassemblyError};
use hni_atm::VcId;
use hni_sim::{Duration, Time};
use proptest::prelude::*;

fn reasm5() -> Aal5Reassembler {
    Aal5Reassembler::new(65535, Duration::from_ms(100))
}
fn reasm34() -> Aal34Reassembler {
    Aal34Reassembler::new(65535, Duration::from_ms(100))
}

proptest! {
    /// AAL5 roundtrips any payload.
    #[test]
    fn aal5_roundtrip(sdu in proptest::collection::vec(any::<u8>(), 0..12_000),
                      uu in any::<u8>()) {
        let vc = VcId::new(0, 77);
        let cells = aal5::segment(vc, &sdu, uu);
        prop_assert_eq!(cells.len(), AalType::Aal5.cells_for_sdu(sdu.len()));
        let mut r = reasm5();
        let mut out = None;
        for c in &cells {
            if let Some(o) = r.push(c, Time::ZERO) {
                out = Some(o);
            }
        }
        let got = out.unwrap().unwrap();
        prop_assert_eq!(got.data, sdu);
        prop_assert_eq!(got.user_to_user, uu);
    }

    /// AAL3/4 roundtrips any payload on any MID.
    #[test]
    fn aal34_roundtrip(sdu in proptest::collection::vec(any::<u8>(), 0..8_000),
                       mid in 0u16..1024) {
        let vc = VcId::new(2, 40);
        let mut seg = Aal34Segmenter::new();
        let cells = seg.segment(vc, mid, &sdu);
        prop_assert_eq!(cells.len(), AalType::Aal34.cells_for_sdu(sdu.len()).max(1));
        let mut r = reasm34();
        let mut out = None;
        for c in &cells {
            if let Some(o) = r.push(c, Time::ZERO) {
                out = Some(o);
            }
        }
        let got = out.unwrap().unwrap();
        prop_assert_eq!(got.data, sdu);
        prop_assert_eq!(got.mid, mid);
    }

    /// Dropping any single cell of a multi-cell AAL5 frame is detected —
    /// never silently delivered wrong.
    #[test]
    fn aal5_any_lost_cell_detected(len in 100usize..6_000, drop_frac in 0.0f64..1.0) {
        let sdu: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
        let vc = VcId::new(0, 50);
        let cells = aal5::segment(vc, &sdu, 0);
        prop_assume!(cells.len() >= 2);
        let drop = ((cells.len() - 1) as f64 * drop_frac) as usize;
        let mut r = reasm5();
        let mut outcomes = Vec::new();
        for (i, c) in cells.iter().enumerate() {
            if i == drop { continue; }
            if let Some(o) = r.push(c, Time::ZERO) {
                outcomes.push(o);
            }
        }
        // Either nothing completed (dropped the last cell) or it failed.
        for o in outcomes {
            prop_assert!(o.is_err(), "lost cell must not deliver");
        }
    }

    /// Corrupting any single byte of any cell payload of an AAL5 frame
    /// is caught by the CRC-32 (or length check).
    #[test]
    fn aal5_any_corruption_detected(len in 50usize..3_000, cell_i in any::<prop::sample::Index>(),
                                    byte_i in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let sdu: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
        let vc = VcId::new(0, 51);
        let mut cells = aal5::segment(vc, &sdu, 0);
        let ci = cell_i.index(cells.len());
        let bi = byte_i.index(48);
        cells[ci].payload_mut()[bi] ^= flip;
        let mut r = reasm5();
        let mut outcome = None;
        for c in &cells {
            if let Some(o) = r.push(c, Time::ZERO) {
                outcome = Some(o);
            }
        }
        prop_assert!(outcome.unwrap().is_err(), "payload corruption must be caught");
    }

    /// Dropping any single cell of a multi-cell AAL3/4 frame is caught —
    /// by SN gap (interior) or timeout-or-tag (edges), never delivered.
    #[test]
    fn aal34_any_lost_cell_detected(len in 200usize..5_000, drop_frac in 0.0f64..1.0) {
        let sdu: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
        let vc = VcId::new(1, 60);
        let mut seg = Aal34Segmenter::new();
        let cells = seg.segment(vc, 5, &sdu);
        prop_assume!(cells.len() >= 2);
        let drop = ((cells.len() - 1) as f64 * drop_frac) as usize;
        let mut r = reasm34();
        let mut delivered = false;
        for (i, c) in cells.iter().enumerate() {
            if i == drop { continue; }
            if let Some(Ok(_)) = r.push(c, Time::ZERO) {
                delivered = true;
            }
        }
        // Frame must not deliver; it either errored or is still pending
        // (timeout would catch it).
        prop_assert!(!delivered);
    }

    /// Table-driven CRCs match the bitwise references on any input.
    #[test]
    fn crc_tables_match_reference(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(crc10(&data), crc10_reference(&data));
        prop_assert_eq!(crc32(&data), crc32_reference(&data));
    }

    /// The streaming CRC-32 accumulator equals the one-shot CRC for any
    /// chunking of any input.
    #[test]
    fn crc32_accumulator_chunking(data in proptest::collection::vec(any::<u8>(), 0..1024),
                                  chunk in 1usize..97) {
        let mut acc = Crc32Accumulator::new();
        for piece in data.chunks(chunk) {
            acc.update(piece);
        }
        prop_assert_eq!(acc.finish(), crc32(&data));
    }

    /// Two frames interleaved on different MIDs of one VC both deliver.
    #[test]
    fn aal34_mid_interleave(a_len in 100usize..2_000, b_len in 100usize..2_000,
                            seed in any::<u64>()) {
        let vc = VcId::new(0, 70);
        let sdu_a: Vec<u8> = (0..a_len).map(|i| (i % 256) as u8).collect();
        let sdu_b: Vec<u8> = (0..b_len).map(|i| ((i + 128) % 256) as u8).collect();
        let mut seg = Aal34Segmenter::new();
        let ca = seg.segment(vc, 1, &sdu_a);
        let cb = seg.segment(vc, 2, &sdu_b);
        // Deterministic pseudo-random interleave.
        let mut rng = hni_sim::Rng::new(seed);
        let (mut i, mut j) = (0, 0);
        let mut r = reasm34();
        let mut got = Vec::new();
        while i < ca.len() || j < cb.len() {
            let take_a = j >= cb.len() || (i < ca.len() && rng.chance(0.5));
            let c = if take_a { let c = &ca[i]; i += 1; c } else { let c = &cb[j]; j += 1; c };
            if let Some(Ok(sdu)) = r.push(c, Time::ZERO) {
                got.push(sdu);
            }
        }
        prop_assert_eq!(got.len(), 2);
        let a = got.iter().find(|s| s.mid == 1).unwrap();
        let b = got.iter().find(|s| s.mid == 2).unwrap();
        prop_assert_eq!(&a.data, &sdu_a);
        prop_assert_eq!(&b.data, &sdu_b);
    }

    /// cells_for_sdu is exact for both AALs.
    #[test]
    fn cell_count_formula(len in 0usize..20_000) {
        let vc = VcId::new(0, 32);
        prop_assert_eq!(
            aal5::segment(vc, &vec![0u8; len], 0).len(),
            AalType::Aal5.cells_for_sdu(len)
        );
        let mut seg = Aal34Segmenter::new();
        prop_assert_eq!(
            seg.segment(vc, 0, &vec![0u8; len]).len(),
            AalType::Aal34.cells_for_sdu(len).max(1)
        );
    }
}

/// Deterministic (non-proptest) guard: an AAL5 frame whose last cell is
/// lost merges into the next frame and must fail there.
#[test]
fn aal5_frame_merge_is_always_caught() {
    let vc = VcId::new(0, 80);
    for len in [50usize, 500, 1000] {
        let a = aal5::segment(vc, &vec![1u8; len], 0);
        let b = aal5::segment(vc, &vec![2u8; len], 0);
        let mut r = reasm5();
        let mut outcome = None;
        for c in a.iter().take(a.len() - 1).chain(b.iter()) {
            if let Some(o) = r.push(c, Time::ZERO) {
                outcome = Some(o);
            }
        }
        let failure = outcome.unwrap().unwrap_err();
        assert!(matches!(
            failure.error,
            ReassemblyError::Crc32 | ReassemblyError::LengthMismatch
        ));
    }
}

proptest! {
    /// AAL1 streams roundtrip for any chunking of any data.
    #[test]
    fn aal1_roundtrip(data in proptest::collection::vec(any::<u8>(), 47..4700),
                      chunk in 1usize..200) {
        use hni_aal::aal1::{Aal1Receiver, Aal1Segmenter, PAYLOAD_PER_CELL};
        let vc = VcId::new(0, 310);
        let mut seg = Aal1Segmenter::new(vc);
        let mut cells = Vec::new();
        for piece in data.chunks(chunk) {
            seg.push(piece, &mut cells);
        }
        let whole_cells = data.len() / PAYLOAD_PER_CELL;
        prop_assert_eq!(cells.len(), whole_cells);
        prop_assert_eq!(seg.buffered(), data.len() % PAYLOAD_PER_CELL);
        let mut rx = Aal1Receiver::new();
        for c in &cells {
            rx.push(c);
        }
        prop_assert_eq!(rx.take_stream(), &data[..whole_cells * PAYLOAD_PER_CELL]);
        prop_assert_eq!(rx.cells_lost(), 0);
    }

    /// Dropping any burst of 1..=7 consecutive AAL1 cells is detected
    /// exactly and compensated with exactly the right amount of fill.
    #[test]
    fn aal1_loss_detection_exact(n_cells in 10usize..40, start in 1usize..8, gap in 1usize..=7) {
        use hni_aal::aal1::{Aal1Event, Aal1Receiver, Aal1Segmenter, PAYLOAD_PER_CELL};
        prop_assume!(start + gap < n_cells);
        let vc = VcId::new(0, 311);
        let data: Vec<u8> = (0..n_cells * PAYLOAD_PER_CELL).map(|i| (i % 251) as u8).collect();
        let mut seg = Aal1Segmenter::new(vc);
        let mut cells = Vec::new();
        seg.push(&data, &mut cells);
        let mut rx = Aal1Receiver::new();
        rx.fill_octet = 0xFF;
        for (i, c) in cells.iter().enumerate() {
            if i >= start && i < start + gap {
                continue;
            }
            rx.push(c);
        }
        prop_assert_eq!(rx.cells_lost(), gap as u64);
        prop_assert_eq!(rx.take_events(), vec![Aal1Event::CellsLost(gap as u8)]);
        let stream = rx.take_stream();
        prop_assert_eq!(stream.len(), data.len(), "timing skeleton");
        // Exact fill placement.
        let lo = start * PAYLOAD_PER_CELL;
        let hi = (start + gap) * PAYLOAD_PER_CELL;
        prop_assert_eq!(&stream[..lo], &data[..lo]);
        prop_assert!(stream[lo..hi].iter().all(|&b| b == 0xFF));
        prop_assert_eq!(&stream[hi..], &data[hi..]);
    }
}
