//! Application traffic models.
//!
//! Sources produce `(time, length)` schedules the benchmark harness
//! feeds to the transmit path or the host receive model. Three shapes
//! cover the evaluation's workloads:
//!
//! * [`GreedySource`] — a bulk transfer: everything queued at t = 0
//!   (throughput experiments);
//! * [`CbrSource`] — constant bit rate, e.g. uncompressed or
//!   rate-controlled video (pacing/jitter experiments);
//! * [`PoissonSource`] — bursty request traffic (latency-under-load).

use hni_sim::{Duration, Rng, Time};

/// Bulk transfer: `count` packets of `len` octets, all available at t=0.
#[derive(Clone, Copy, Debug)]
pub struct GreedySource {
    /// Number of packets.
    pub count: usize,
    /// Packet length, octets.
    pub len: usize,
}

impl GreedySource {
    /// The arrival schedule.
    pub fn schedule(&self) -> Vec<(Time, usize)> {
        (0..self.count).map(|_| (Time::ZERO, self.len)).collect()
    }
}

/// Constant-bit-rate stream: fixed-size packets at fixed intervals.
#[derive(Clone, Copy, Debug)]
pub struct CbrSource {
    /// Packet length, octets.
    pub len: usize,
    /// Stream rate in bits/second.
    pub rate_bps: f64,
    /// Stream duration.
    pub duration: Duration,
}

impl CbrSource {
    /// Interval between packets.
    pub fn interval(&self) -> Duration {
        Duration::from_s_f64(self.len as f64 * 8.0 / self.rate_bps)
    }

    /// The arrival schedule.
    pub fn schedule(&self) -> Vec<(Time, usize)> {
        let interval = self.interval();
        let n = (self.duration.as_s_f64() / interval.as_s_f64()).floor() as usize;
        (0..n)
            .map(|i| (Time::ZERO + interval * i as u64, self.len))
            .collect()
    }
}

/// Poisson arrivals with exponentially distributed gaps.
#[derive(Clone, Debug)]
pub struct PoissonSource {
    /// Packet length, octets.
    pub len: usize,
    /// Mean packets per second.
    pub rate_pps: f64,
    /// Number of packets to draw.
    pub count: usize,
}

impl PoissonSource {
    /// The arrival schedule (deterministic for a given RNG).
    pub fn schedule(&self, rng: &mut Rng) -> Vec<(Time, usize)> {
        let mut t = Time::ZERO;
        (0..self.count)
            .map(|_| {
                let gap = rng.exponential(1.0 / self.rate_pps);
                t += Duration::from_s_f64(gap);
                (t, self.len)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_all_at_zero() {
        let s = GreedySource { count: 5, len: 100 }.schedule();
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|&(t, l)| t == Time::ZERO && l == 100));
    }

    #[test]
    fn cbr_spacing_and_rate() {
        // 1500-octet packets at 12 Mb/s → 1 ms apart.
        let src = CbrSource {
            len: 1500,
            rate_bps: 12e6,
            duration: Duration::from_ms(10),
        };
        assert_eq!(src.interval(), Duration::from_ms(1));
        let s = src.schedule();
        assert_eq!(s.len(), 10);
        assert_eq!(s[3].0, Time::from_ms(3));
    }

    #[test]
    fn poisson_mean_rate_close() {
        let src = PoissonSource {
            len: 512,
            rate_pps: 1000.0,
            count: 20_000,
        };
        let mut rng = Rng::new(77);
        let s = src.schedule(&mut rng);
        let span = s.last().unwrap().0.as_s_f64();
        let rate = s.len() as f64 / span;
        assert!((rate - 1000.0).abs() < 30.0, "rate {rate}");
        // Strictly increasing times.
        for w in s.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        let src = PoissonSource {
            len: 1,
            rate_pps: 10.0,
            count: 100,
        };
        let a = src.schedule(&mut Rng::new(5));
        let b = src.schedule(&mut Rng::new(5));
        assert_eq!(a, b);
    }
}
