//! What *sending* costs the host kernel (the transmit mirror of
//! [`crate::driver`]).
//!
//! Per transmitted packet the host pays: the send syscall and socket
//! work, optionally a copy into pinned DMA-able buffers (before
//! scatter/gather DMA, user pages couldn't be handed to the device
//! directly), a descriptor post, and later a completion interrupt
//! share. The copy-vs-gather question is the transmit twin of the
//! receive side's copy-vs-remap question, and resolves the same way:
//! at OC-12 rates the per-byte cost is the whole game.

use crate::cpu::HostCpu;
use hni_sim::Duration;

/// Transmit-side driver cost table.
#[derive(Clone, Copy, Debug)]
pub struct TxDriverCosts {
    /// Send syscall entry/exit + socket bookkeeping, instructions.
    pub syscall_instr: u64,
    /// Building and posting the transmit descriptor.
    pub descriptor_instr: u64,
    /// Handling the transmit-complete notification (amortized share).
    pub completion_instr: u64,
    /// Whether payload is copied into pinned DMA buffers (true) or the
    /// interface gathers directly from user pages (false).
    pub copy_to_pinned: bool,
}

impl Default for TxDriverCosts {
    fn default() -> Self {
        TxDriverCosts {
            syscall_instr: 400,
            descriptor_instr: 60,
            completion_instr: 50,
            copy_to_pinned: true,
        }
    }
}

/// The transmit-side host model.
#[derive(Clone, Copy, Debug)]
pub struct TxHostModel {
    /// The CPU doing the work.
    pub cpu: HostCpu,
    /// Cost table.
    pub costs: TxDriverCosts,
}

impl TxHostModel {
    /// A workstation with default costs.
    pub fn workstation() -> Self {
        TxHostModel {
            cpu: HostCpu::workstation(),
            costs: TxDriverCosts::default(),
        }
    }

    /// CPU time to send one packet of `bytes` octets.
    pub fn per_packet_time(&self, bytes: usize) -> Duration {
        let mut t = self.cpu.instr_time(
            self.costs.syscall_instr + self.costs.descriptor_instr + self.costs.completion_instr,
        );
        if self.costs.copy_to_pinned {
            t += self.cpu.copy_time(bytes);
        }
        t
    }

    /// Goodput at which the CPU saturates for fixed-size packets.
    pub fn saturation_bps(&self, bytes: usize) -> f64 {
        bytes as f64 * 8.0 / self.per_packet_time(bytes).as_s_f64()
    }

    /// CPU utilization to sustain `offered_bps` with `bytes`-octet
    /// packets (>1 = infeasible).
    pub fn cpu_util_at(&self, offered_bps: f64, bytes: usize) -> f64 {
        let pkts = offered_bps / (bytes as f64 * 8.0);
        pkts * self.per_packet_time(bytes).as_s_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_bound_at_oc12() {
        // With copies into pinned buffers, even an infinitely fast NIC
        // can't save the host at OC-12: copy at 50 MB/s = 400 Mb/s tops,
        // minus per-packet work.
        let m = TxHostModel::workstation();
        assert!(m.saturation_bps(9180) < 400e6);
        assert!(m.cpu_util_at(599.04e6, 9180) > 1.0);
    }

    #[test]
    fn gather_dma_removes_the_byte_cost() {
        let mut m = TxHostModel::workstation();
        m.costs.copy_to_pinned = false;
        // Only per-packet instructions remain: 510 instr = 20.4 µs →
        // ~49k pkts/s → 3.6 Gb/s of 9180-octet packets.
        assert!(m.saturation_bps(9180) > 1e9);
        assert!(m.cpu_util_at(599.04e6, 9180) < 0.2);
    }

    #[test]
    fn small_packets_are_syscall_bound_either_way() {
        let copy = TxHostModel::workstation();
        let mut gather = TxHostModel::workstation();
        gather.costs.copy_to_pinned = false;
        // 64-byte packets: the copy is 1.28 µs vs 20.4 µs of instructions
        // — gather saves little.
        let ratio = copy.per_packet_time(64).as_s_f64() / gather.per_packet_time(64).as_s_f64();
        assert!(ratio < 1.1, "ratio {ratio}");
    }

    #[test]
    fn per_packet_time_monotone_in_size_with_copy() {
        let m = TxHostModel::workstation();
        assert!(m.per_packet_time(100) < m.per_packet_time(10_000));
    }
}
