//! The baseline the architecture displaces: **host-software SAR** with a
//! dumb (cell-FIFO) interface.
//!
//! Before on-board segmentation engines, the obvious ATM interface was a
//! pair of cell FIFOs on the bus: the *host CPU* builds every 53-octet
//! cell — segmentation arithmetic, header, HEC, the frame CRC — and
//! pushes it to the device with programmed I/O, word by word; receive is
//! the mirror image. The per-cell cost lands entirely on the CPU that is
//! also supposed to run the application.
//!
//! This module prices that design with the same style of cost table as
//! the adaptor engine, so experiment R-F4 can put the two architectures
//! on one axis: host CPU utilization versus offered throughput.

use crate::cpu::HostCpu;
use hni_sim::{Duration, Time};
use hni_telemetry::{Activity, Profiler};

/// Cost table for host-software SAR (instructions, except data touching).
#[derive(Clone, Copy, Debug)]
pub struct SoftSarCosts {
    /// Per packet: socket/stack entry, AAL trailer setup.
    pub per_packet_instr: u64,
    /// Per cell: segmentation arithmetic, header build, HEC.
    pub per_cell_instr: u64,
    /// Per cell: programmed-I/O words pushed to the device FIFO
    /// (53 octets → 14 words, each a full uncached bus access).
    pub pio_words_per_cell: u64,
    /// Bus access time per PIO word (uncached, ~handshake-limited).
    pub pio_word_time: Duration,
    /// Whether the CRC-32 is computed by the host (true for AAL5 on a
    /// dumb interface — nobody else is there to do it).
    pub host_crc: bool,
}

impl Default for SoftSarCosts {
    fn default() -> Self {
        SoftSarCosts {
            per_packet_instr: 300,
            per_cell_instr: 40,
            pio_words_per_cell: 14,
            pio_word_time: Duration::from_ns(400),
            host_crc: true,
        }
    }
}

/// The host-software SAR model.
#[derive(Clone, Copy, Debug)]
pub struct SoftSar {
    /// The CPU doing all of it.
    pub cpu: HostCpu,
    /// Cost table.
    pub costs: SoftSarCosts,
}

impl SoftSar {
    /// Baseline on a workstation.
    pub fn workstation() -> Self {
        SoftSar {
            cpu: HostCpu::workstation(),
            costs: SoftSarCosts::default(),
        }
    }

    /// CPU time to segment and emit one packet of `len` octets
    /// (`cells` = cells it occupies).
    pub fn packet_time(&self, len: usize, cells: usize) -> Duration {
        let mut t = self.cpu.instr_time(self.costs.per_packet_instr);
        t += self
            .cpu
            .instr_time(self.costs.per_cell_instr * cells as u64);
        // PIO: every cell crosses the bus a word at a time.
        t += self.costs.pio_word_time * (self.costs.pio_words_per_cell * cells as u64);
        if self.costs.host_crc {
            // CRC touches every payload octet once at copy-like speed
            // (table lookup per octet ≈ memory-bound).
            t += self.cpu.copy_time(len);
        }
        t
    }

    /// [`SoftSar::packet_time`] with cycle accounting: segmentation
    /// instructions and the CRC pass are charged as `(host.cpu, sar)`,
    /// the programmed-I/O word pushes as `(host.cpu, driver)`, laid out
    /// sequentially from `start`. Returns the identical total duration.
    pub fn packet_time_profiled(
        &self,
        len: usize,
        cells: usize,
        start: Time,
        profiler: &mut dyn Profiler,
    ) -> Duration {
        if !profiler.enabled() {
            return self.packet_time(len, cells);
        }
        // Same two instr_time calls as packet_time so the picosecond
        // roundings agree and the totals are bit-identical.
        let seg = self.cpu.instr_time(self.costs.per_packet_instr)
            + self
                .cpu
                .instr_time(self.costs.per_cell_instr * cells as u64);
        let pio = self.costs.pio_word_time * (self.costs.pio_words_per_cell * cells as u64);
        let mut cursor = start;
        profiler.charge(
            hni_telemetry::Component::HostCpu,
            Activity::Sar,
            cursor,
            seg,
        );
        cursor += seg;
        profiler.charge(
            hni_telemetry::Component::HostCpu,
            Activity::Driver,
            cursor,
            pio,
        );
        cursor += pio;
        let mut total = seg + pio;
        if self.costs.host_crc {
            let crc = self.cpu.copy_time(len);
            profiler.charge(
                hni_telemetry::Component::HostCpu,
                Activity::Sar,
                cursor,
                crc,
            );
            total += crc;
        }
        total
    }

    /// Maximum goodput (bits/s) the host can sustain doing SAR itself,
    /// for fixed `len`-octet packets, spending the whole CPU on it.
    pub fn max_goodput_bps(&self, len: usize, cells: usize) -> f64 {
        (len as f64 * 8.0) / self.packet_time(len, cells).as_s_f64()
    }

    /// CPU utilization needed to sustain `offered_bps` of goodput with
    /// `len`-octet packets (may exceed 1.0 = infeasible).
    pub fn cpu_util_at(&self, offered_bps: f64, len: usize, cells: usize) -> f64 {
        let pkts_per_s = offered_bps / (len as f64 * 8.0);
        pkts_per_s * self.packet_time(len, cells).as_s_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEN: usize = 9180;
    const CELLS: usize = 192; // AAL5 cells for 9180 octets

    #[test]
    fn host_sar_cannot_reach_oc3() {
        // The motivating fact: a 25 MIPS workstation doing SAR in
        // software tops out well below 149.76 Mb/s payload rate.
        let s = SoftSar::workstation();
        let max = s.max_goodput_bps(LEN, CELLS);
        assert!(
            max < 100e6,
            "host SAR should be < 100 Mb/s, got {:.1} Mb/s",
            max / 1e6
        );
        assert!(max > 10e6, "but not absurdly slow: {:.1} Mb/s", max / 1e6);
    }

    #[test]
    fn util_scales_linearly_with_load() {
        let s = SoftSar::workstation();
        let u1 = s.cpu_util_at(10e6, LEN, CELLS);
        let u2 = s.cpu_util_at(20e6, LEN, CELLS);
        assert!((u2 - 2.0 * u1).abs() < 1e-9);
    }

    #[test]
    fn oc12_is_infeasible() {
        let s = SoftSar::workstation();
        assert!(s.cpu_util_at(599.04e6, LEN, CELLS) > 1.0);
    }

    #[test]
    fn crc_dominates_large_packets() {
        let mut s = SoftSar::workstation();
        let with_crc = s.packet_time(LEN, CELLS);
        s.costs.host_crc = false;
        let without = s.packet_time(LEN, CELLS);
        assert!(with_crc > without);
        assert!(
            (with_crc - without).as_us_f64() > 100.0,
            "CRC of 9180 B at copy speed ≈ 183 µs"
        );
    }

    #[test]
    fn profiled_packet_time_is_identical_and_splits_sar_from_pio() {
        use hni_telemetry::{Component, CycleProfiler, NullProfiler};

        let s = SoftSar::workstation();
        let plain = s.packet_time(LEN, CELLS);
        let mut prof = CycleProfiler::new();
        let profiled = s.packet_time_profiled(LEN, CELLS, Time::ZERO, &mut prof);
        assert_eq!(plain, profiled);
        let p = prof.snapshot(Time::ZERO + plain);
        // Every charged interval is accounted: sar + driver == total.
        assert_eq!(p.active_time(Component::HostCpu), plain);
        // PIO alone is the driver share.
        let pio = s.costs.pio_word_time * (s.costs.pio_words_per_cell * CELLS as u64);
        assert_eq!(p.total(Component::HostCpu, Activity::Driver), pio);
        assert_eq!(p.total(Component::HostCpu, Activity::Sar), plain - pio);

        // Null path degenerates to packet_time.
        assert_eq!(
            s.packet_time_profiled(LEN, CELLS, Time::ZERO, &mut NullProfiler),
            plain
        );
    }

    #[test]
    fn pio_cost_is_material() {
        // 192 cells × 14 words × 400 ns ≈ 1.08 ms per packet — PIO alone
        // caps goodput near 68 Mb/s. This is why DMA mattered.
        let s = SoftSar::workstation();
        let pio = s.costs.pio_word_time * (s.costs.pio_words_per_cell * CELLS as u64);
        assert!((pio.as_us_f64() - 1075.2).abs() < 0.1);
    }
}
