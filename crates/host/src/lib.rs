//! # hni-host — the workstation on the other side of the bus
//!
//! The host interface exists because the *host* is slow: a
//! workstation-class CPU of the era sustains a few tens of MIPS and its
//! memory system moves tens of megabytes per second. This crate models
//! that machine — the second half of every end-to-end number in the
//! evaluation:
//!
//! * [`cpu`] — CPU instruction rate and memory-copy bandwidth.
//! * [`driver`] — what receiving a packet costs the kernel: interrupt
//!   entry/exit, descriptor ring work, protocol stack, and delivery to
//!   the application by copy or by page remap; interrupt coalescing.
//! * [`txhost`] — what *sending* costs: syscall, descriptor post,
//!   copy-into-pinned vs gather DMA.
//! * [`softsar`] — the baseline architecture the paper argues against:
//!   segmentation and reassembly done *by the host CPU itself*, with
//!   per-cell programmed I/O to a dumb interface.
//! * [`app`] — application traffic models (greedy, CBR, Poisson) used
//!   as workload generators by the benchmark harness.

pub mod app;
pub mod cpu;
pub mod driver;
pub mod softsar;
pub mod txhost;

pub use app::{CbrSource, GreedySource, PoissonSource};
pub use cpu::HostCpu;
pub use driver::{DriverCosts, HostRxReport, InterruptMode, RxHostModel};
pub use softsar::SoftSar;
pub use txhost::{TxDriverCosts, TxHostModel};
