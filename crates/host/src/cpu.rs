//! The host CPU: instruction rate and memory bandwidth.

use hni_sim::Duration;

/// A workstation-class CPU.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostCpu {
    /// Sustained millions of instructions per second.
    pub mips: f64,
    /// Memory-to-memory copy bandwidth, bytes/second (the number that
    /// bounds every data-touching operation: copies, checksums in
    /// software, SAR done on the host).
    pub copy_bytes_per_second: f64,
}

impl HostCpu {
    /// A DECstation-5000-class workstation: ~25 MIPS, ~50 MB/s copy.
    pub fn workstation() -> Self {
        HostCpu {
            mips: 25.0,
            copy_bytes_per_second: 50e6,
        }
    }

    /// A generously provisioned server of the same era.
    pub fn server() -> Self {
        HostCpu {
            mips: 100.0,
            copy_bytes_per_second: 150e6,
        }
    }

    /// Time to execute `instr` instructions.
    pub fn instr_time(&self, instr: u64) -> Duration {
        Duration::from_s_f64(instr as f64 / (self.mips * 1e6))
    }

    /// Time to copy `bytes` bytes memory-to-memory.
    pub fn copy_time(&self, bytes: usize) -> Duration {
        Duration::from_s_f64(bytes as f64 / self.copy_bytes_per_second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_time_arithmetic() {
        let cpu = HostCpu::workstation();
        // 25 MIPS → 1000 instructions in 40 µs.
        assert_eq!(cpu.instr_time(1000), Duration::from_us(40));
    }

    #[test]
    fn copy_time_arithmetic() {
        let cpu = HostCpu::workstation();
        // 50 MB/s → 9180 bytes in 183.6 µs.
        let t = cpu.copy_time(9180);
        assert!((t.as_us_f64() - 183.6).abs() < 0.01, "{t}");
    }

    #[test]
    fn server_is_faster() {
        let w = HostCpu::workstation();
        let s = HostCpu::server();
        assert!(s.instr_time(1000) < w.instr_time(1000));
        assert!(s.copy_time(1000) < w.copy_time(1000));
    }
}
