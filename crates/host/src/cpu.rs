//! The host CPU: instruction rate and memory bandwidth.

use hni_sim::{Duration, Time};
use hni_telemetry::{Activity, Component, Profiler};

/// A workstation-class CPU.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostCpu {
    /// Sustained millions of instructions per second.
    pub mips: f64,
    /// Memory-to-memory copy bandwidth, bytes/second (the number that
    /// bounds every data-touching operation: copies, checksums in
    /// software, SAR done on the host).
    pub copy_bytes_per_second: f64,
}

impl HostCpu {
    /// A DECstation-5000-class workstation: ~25 MIPS, ~50 MB/s copy.
    pub fn workstation() -> Self {
        HostCpu {
            mips: 25.0,
            copy_bytes_per_second: 50e6,
        }
    }

    /// A generously provisioned server of the same era.
    pub fn server() -> Self {
        HostCpu {
            mips: 100.0,
            copy_bytes_per_second: 150e6,
        }
    }

    /// Time to execute `instr` instructions.
    pub fn instr_time(&self, instr: u64) -> Duration {
        Duration::from_s_f64(instr as f64 / (self.mips * 1e6))
    }

    /// Time to copy `bytes` bytes memory-to-memory.
    pub fn copy_time(&self, bytes: usize) -> Duration {
        Duration::from_s_f64(bytes as f64 / self.copy_bytes_per_second)
    }

    /// [`HostCpu::instr_time`], charging the interval to the profiler as
    /// `(host.cpu, activity)` starting at `now`. Returns the same
    /// duration as the unprofiled call.
    pub fn instr_time_profiled(
        &self,
        instr: u64,
        now: Time,
        activity: Activity,
        profiler: &mut dyn Profiler,
    ) -> Duration {
        let t = self.instr_time(instr);
        if profiler.enabled() {
            profiler.charge(Component::HostCpu, activity, now, t);
        }
        t
    }

    /// [`HostCpu::copy_time`], charging the interval to the profiler as
    /// `(host.cpu, activity)` starting at `now`.
    pub fn copy_time_profiled(
        &self,
        bytes: usize,
        now: Time,
        activity: Activity,
        profiler: &mut dyn Profiler,
    ) -> Duration {
        let t = self.copy_time(bytes);
        if profiler.enabled() {
            profiler.charge(Component::HostCpu, activity, now, t);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_time_arithmetic() {
        let cpu = HostCpu::workstation();
        // 25 MIPS → 1000 instructions in 40 µs.
        assert_eq!(cpu.instr_time(1000), Duration::from_us(40));
    }

    #[test]
    fn copy_time_arithmetic() {
        let cpu = HostCpu::workstation();
        // 50 MB/s → 9180 bytes in 183.6 µs.
        let t = cpu.copy_time(9180);
        assert!((t.as_us_f64() - 183.6).abs() < 0.01, "{t}");
    }

    #[test]
    fn server_is_faster() {
        let w = HostCpu::workstation();
        let s = HostCpu::server();
        assert!(s.instr_time(1000) < w.instr_time(1000));
        assert!(s.copy_time(1000) < w.copy_time(1000));
    }

    #[test]
    fn profiled_times_match_plain_and_charge_host_cpu() {
        use hni_telemetry::{CycleProfiler, NullProfiler};

        let cpu = HostCpu::workstation();
        let mut prof = CycleProfiler::new();
        let t1 = cpu.instr_time_profiled(1000, Time::ZERO, Activity::Sar, &mut prof);
        assert_eq!(t1, cpu.instr_time(1000));
        let t2 = cpu.copy_time_profiled(5000, Time::ZERO + t1, Activity::Driver, &mut prof);
        assert_eq!(t2, cpu.copy_time(5000));
        let p = prof.snapshot(Time::ZERO + t1 + t2);
        assert_eq!(p.total(Component::HostCpu, Activity::Sar), t1);
        assert_eq!(p.total(Component::HostCpu, Activity::Driver), t2);
        assert_eq!(p.active_time(Component::HostCpu), t1 + t2);

        // Null path returns identical durations.
        let mut off = NullProfiler;
        assert_eq!(
            cpu.instr_time_profiled(1000, Time::ZERO, Activity::Sar, &mut off),
            t1
        );
    }
}
