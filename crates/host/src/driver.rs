//! What receiving packets costs the host kernel.
//!
//! Per received packet the host pays, serially on its one CPU:
//!
//! * a share of an **interrupt** (entry/exit + ring scan) — the share
//!   depends on coalescing: one interrupt per packet, or one per batch;
//! * **descriptor management** (refill the ring, unmap the buffer);
//! * **protocol stack** processing (headers, demux, socket queue);
//! * **delivery** to user space — a memory copy (bytes/bandwidth), or a
//!   constant-cost page remap when the interface deposited the packet
//!   page-aligned (the zero-copy delivery the host-interface design
//!   enables by reassembling frames contiguously in host memory).
//!
//! [`RxHostModel::process`] replays an arrival schedule against a serial
//! CPU and reports utilization, completion backlog and the throughput
//! bound — the host half of experiments R-F2 and R-F4.

use crate::cpu::HostCpu;
use hni_sim::{Duration, Summary, Time};
use hni_telemetry::{NullTracer, Stage, TraceEvent, Tracer};

/// Driver cost parameters, in host instructions (except the copy, which
/// is bandwidth-bound).
#[derive(Clone, Copy, Debug)]
pub struct DriverCosts {
    /// Interrupt entry, ring scan, exit (per interrupt, not per packet).
    pub isr_instr: u64,
    /// Descriptor/buffer management per packet.
    pub descriptor_instr: u64,
    /// Protocol stack per packet.
    pub stack_instr: u64,
    /// Page-remap delivery per packet (used when `copy_delivery` false).
    pub remap_instr: u64,
    /// Whether delivery copies the payload (true) or remaps pages.
    pub copy_delivery: bool,
}

impl Default for DriverCosts {
    fn default() -> Self {
        DriverCosts {
            isr_instr: 400,
            descriptor_instr: 75,
            stack_instr: 350,
            remap_instr: 250,
            copy_delivery: true,
        }
    }
}

/// Interrupt generation policy at the interface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InterruptMode {
    /// Interrupt on every completed packet.
    PerPacket,
    /// Interrupt when `max_packets` have accumulated or `max_delay` has
    /// passed since the first unannounced packet.
    Coalesced {
        /// Packet-count threshold.
        max_packets: usize,
        /// Latency bound.
        max_delay: Duration,
    },
}

/// Outcome of replaying an arrival schedule on the host.
#[derive(Clone, Debug)]
pub struct HostRxReport {
    /// Packets processed.
    pub packets: u64,
    /// Interrupts taken.
    pub interrupts: u64,
    /// Total CPU busy time.
    pub cpu_busy: Duration,
    /// CPU utilization over the span of the schedule.
    pub cpu_util: f64,
    /// Host-added latency per packet (arrival → application), µs.
    pub latency_us: Summary,
    /// Octets delivered to applications.
    pub delivered_octets: u64,
    /// Time the last packet reached its application.
    pub finished_at: Time,
}

/// Replays packet arrivals against the host CPU.
#[derive(Clone, Debug)]
pub struct RxHostModel {
    /// The CPU doing the work.
    pub cpu: HostCpu,
    /// Cost table.
    pub costs: DriverCosts,
    /// Interrupt policy.
    pub interrupts: InterruptMode,
}

impl RxHostModel {
    /// Per-packet CPU time excluding the interrupt share.
    pub fn per_packet_time(&self, bytes: usize) -> Duration {
        let mut t = self
            .cpu
            .instr_time(self.costs.descriptor_instr + self.costs.stack_instr);
        if self.costs.copy_delivery {
            t += self.cpu.copy_time(bytes);
        } else {
            t += self.cpu.instr_time(self.costs.remap_instr);
        }
        t
    }

    /// The packet rate at which the CPU saturates, for fixed-size
    /// packets (interrupt share included).
    pub fn saturation_packets_per_second(&self, bytes: usize) -> f64 {
        let isr_share = match self.interrupts {
            InterruptMode::PerPacket => self.cpu.instr_time(self.costs.isr_instr),
            InterruptMode::Coalesced { max_packets, .. } => Duration::from_ps(
                self.cpu.instr_time(self.costs.isr_instr).as_ps() / max_packets as u64,
            ),
        };
        1.0 / (self.per_packet_time(bytes) + isr_share).as_s_f64()
    }

    /// Replay `arrivals` (time-sorted `(time, bytes)` pairs): a serial
    /// CPU takes interrupts per the policy and processes packets FIFO.
    pub fn process(&self, arrivals: &[(Time, usize)]) -> HostRxReport {
        self.process_instrumented(arrivals, &mut NullTracer)
    }

    /// [`RxHostModel::process`] with a tracer observing each interrupt
    /// (arg = batch size) and each application hand-off (arg = bytes).
    pub fn process_instrumented(
        &self,
        arrivals: &[(Time, usize)],
        tracer: &mut dyn Tracer,
    ) -> HostRxReport {
        let mut cpu_free = Time::ZERO;
        let mut cpu_busy = Duration::ZERO;
        let mut interrupts = 0u64;
        let mut latency = Summary::new();
        let mut delivered = 0u64;
        let mut finished_at = Time::ZERO;

        // Determine interrupt times and the packets each announces.
        let mut batches: Vec<(Time, Vec<usize>)> = Vec::new();
        match self.interrupts {
            InterruptMode::PerPacket => {
                for (i, &(t, _)) in arrivals.iter().enumerate() {
                    batches.push((t, vec![i]));
                }
            }
            InterruptMode::Coalesced {
                max_packets,
                max_delay,
            } => {
                let mut pending: Vec<usize> = Vec::new();
                let mut first_pending: Option<Time> = None;
                for (i, &(t, _)) in arrivals.iter().enumerate() {
                    // Fire a timer interrupt for older pending packets if
                    // the delay bound expires before this arrival.
                    if let Some(t0) = first_pending {
                        if t > t0 + max_delay && !pending.is_empty() {
                            batches.push((t0 + max_delay, std::mem::take(&mut pending)));
                            first_pending = None;
                        }
                    }
                    if first_pending.is_none() {
                        first_pending = Some(t);
                    }
                    pending.push(i);
                    if pending.len() >= max_packets {
                        batches.push((t, std::mem::take(&mut pending)));
                        first_pending = None;
                    }
                }
                if !pending.is_empty() {
                    let t0 = first_pending.expect("pending implies a first arrival");
                    batches.push((t0 + max_delay, pending));
                }
            }
        }

        for (t_int, pkt_idxs) in batches {
            interrupts += 1;
            let start = t_int.max(cpu_free);
            let mut t = start;
            if tracer.enabled() {
                tracer.record(TraceEvent::instant(start, Stage::Isr).arg(pkt_idxs.len() as u64));
            }
            let isr = self.cpu.instr_time(self.costs.isr_instr);
            t += isr;
            cpu_busy += isr;
            for i in pkt_idxs {
                let (arr, bytes) = arrivals[i];
                let work = self.per_packet_time(bytes);
                t += work;
                cpu_busy += work;
                latency.record_us(t.saturating_since(arr));
                delivered += bytes as u64;
                finished_at = t;
                if tracer.enabled() {
                    tracer.record(
                        TraceEvent::instant(t, Stage::HostDeliver)
                            .pkt(i)
                            .arg(bytes as u64),
                    );
                }
            }
            cpu_free = t;
        }

        let span = finished_at.max(arrivals.last().map(|&(t, _)| t).unwrap_or(Time::ZERO));
        HostRxReport {
            packets: arrivals.len() as u64,
            interrupts,
            cpu_busy,
            cpu_util: if span > Time::ZERO {
                cpu_busy.as_s_f64() / span.saturating_since(Time::ZERO).as_s_f64()
            } else {
                0.0
            },
            latency_us: latency,
            delivered_octets: delivered,
            finished_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(mode: InterruptMode, copy: bool) -> RxHostModel {
        RxHostModel {
            cpu: HostCpu::workstation(),
            costs: DriverCosts {
                copy_delivery: copy,
                ..DriverCosts::default()
            },
            interrupts: mode,
        }
    }

    fn arrivals(n: usize, gap: Duration, bytes: usize) -> Vec<(Time, usize)> {
        (0..n)
            .map(|i| (Time::ZERO + gap * i as u64, bytes))
            .collect()
    }

    #[test]
    fn per_packet_interrupts_counted() {
        let m = model(InterruptMode::PerPacket, true);
        let r = m.process(&arrivals(10, Duration::from_ms(1), 1500));
        assert_eq!(r.packets, 10);
        assert_eq!(r.interrupts, 10);
        assert_eq!(r.delivered_octets, 15_000);
    }

    #[test]
    fn coalescing_reduces_interrupts() {
        let mode = InterruptMode::Coalesced {
            max_packets: 8,
            max_delay: Duration::from_ms(1),
        };
        let m = model(mode, true);
        // 64 packets arriving 10 µs apart: batches of 8 fill quickly.
        let r = m.process(&arrivals(64, Duration::from_us(10), 1500));
        assert_eq!(r.interrupts, 8);
        // Same arrivals per-packet: 8× the interrupts, more CPU.
        let r_pp = model(InterruptMode::PerPacket, true).process(&arrivals(
            64,
            Duration::from_us(10),
            1500,
        ));
        assert_eq!(r_pp.interrupts, 64);
        assert!(r_pp.cpu_busy > r.cpu_busy);
    }

    #[test]
    fn coalescing_timer_bounds_latency() {
        let mode = InterruptMode::Coalesced {
            max_packets: 100,
            max_delay: Duration::from_us(500),
        };
        let m = model(mode, true);
        // A single lonely packet must still be announced after max_delay.
        let r = m.process(&[(Time::ZERO, 1500)]);
        assert_eq!(r.interrupts, 1);
        assert!(r.latency_us.min() >= 500.0, "min {}", r.latency_us.min());
        assert!(r.latency_us.max() < 600.0);
    }

    #[test]
    fn remap_beats_copy_for_large_packets() {
        let copy = model(InterruptMode::PerPacket, true);
        let remap = model(InterruptMode::PerPacket, false);
        assert!(remap.per_packet_time(60_000) < copy.per_packet_time(60_000));
        // For packets smaller than remap_instr worth of copying, copy wins.
        // remap = 250 instr = 10 µs; copy of 64 B = 1.28 µs.
        assert!(copy.per_packet_time(64) < remap.per_packet_time(64));
    }

    #[test]
    fn saturation_rate_orders_by_packet_size() {
        let m = model(InterruptMode::PerPacket, true);
        assert!(m.saturation_packets_per_second(64) > m.saturation_packets_per_second(9180));
    }

    #[test]
    fn overload_backlogs_cpu() {
        let m = model(InterruptMode::PerPacket, true);
        // Packets arriving far faster than the CPU can take them.
        let r = m.process(&arrivals(100, Duration::from_us(1), 9180));
        assert!(r.cpu_util > 0.99, "util {}", r.cpu_util);
        // Latency grows with queue position: max ≫ min.
        assert!(r.latency_us.max() > 10.0 * r.latency_us.min());
    }

    #[test]
    fn empty_schedule() {
        let m = model(InterruptMode::PerPacket, true);
        let r = m.process(&[]);
        assert_eq!(r.packets, 0);
        assert_eq!(r.interrupts, 0);
        assert_eq!(r.cpu_util, 0.0);
    }
}
